// The paper's motivating example (Figure 2): dijkstra's outer loop reuses a
// linked-list work queue and a path-cost table, creating false dependences
// between every pair of iterations. This example walks through what the
// pipeline decides — the heap assignment of Figure 4, the value-predicted
// queue pointer, the short-lived list nodes — and verifies that 8-worker
// speculative execution reproduces the sequential output byte for byte.
//
//	go run ./examples/dijkstra
package main

import (
	"fmt"
	"log"

	"privateer/internal/core"
	"privateer/internal/progs"
	"privateer/internal/specrt"
)

func main() {
	p := progs.Dijkstra()
	in := p.Train

	// Sequential run: the ground truth.
	_, seqOut, err := core.RunSequential(p.Build(in))
	if err != nil {
		log.Fatal(err)
	}

	// The automatic pipeline.
	par, err := core.Parallelize(p.Build(in), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== compiler decisions (compare with Figures 2 and 4) ===")
	fmt.Print(par.Summary())
	for _, ri := range par.Regions {
		for _, pl := range ri.Assign.Predictions {
			fmt.Printf("value prediction: @%s+%d is speculated %#x at iteration boundaries\n",
				pl.Global.Name, pl.Offset, pl.Value)
		}
		fmt.Printf("speculation plan: value=%v control=%v io-deferral=%v\n",
			ri.Plan.NeedsValuePrediction, ri.Plan.NeedsControlSpec, ri.Plan.NeedsIODeferral)
	}

	// Parallel run.
	rt, _, err := core.Run(par, specrt.Config{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== runtime (section 5) ===")
	fmt.Printf("checkpoints: %d, misspeculations: %d\n", rt.Stats.Checkpoints, rt.Stats.Misspecs)
	fmt.Printf("privacy validation: %d reads (%d bytes), %d writes (%d bytes)\n",
		rt.Stats.PrivReadChecks, rt.Stats.PrivReadBytes,
		rt.Stats.PrivWriteChecks, rt.Stats.PrivWriteBytes)
	fmt.Printf("separation checks: %d, deferred output operations: %d\n",
		rt.Stats.SeparationChecks, rt.Stats.DeferredIO)

	if rt.Output() != seqOut {
		log.Fatalf("output mismatch!\nparallel:\n%s\nsequential:\n%s", rt.Output(), seqOut)
	}
	fmt.Println("\nparallel output matches sequential output exactly:")
	fmt.Print(rt.Output())
}
