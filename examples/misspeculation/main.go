// Misspeculation and recovery (sections 5.2-5.3, Figure 5): this example
// injects artificial misspeculation into a parallel run — as the paper does
// for Figure 9 — and shows the runtime squashing the failed checkpoint
// interval, restoring the last valid checkpoint, re-executing sequentially
// past the misspeculated iteration, and resuming parallel execution, all
// while producing exactly the sequential program's output.
//
//	go run ./examples/misspeculation
package main

import (
	"fmt"
	"log"

	"privateer/internal/core"
	"privateer/internal/progs"
	"privateer/internal/specrt"
)

func main() {
	p := progs.EncMD5()
	in := progs.Input{Name: "demo", N: 24, M: 256}

	_, seqOut, err := core.RunSequential(p.Build(in))
	if err != nil {
		log.Fatal(err)
	}

	par, err := core.Parallelize(p.Build(in), core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("rate      misspecs  recoveries  recovered-output-correct")
	for _, rate := range []float64{0, 0.10, 0.25} {
		rt, _, err := core.Run(par, specrt.Config{
			Workers:          6,
			CheckpointPeriod: 4,
			MisspecRate:      rate,
			Seed:             7,
		})
		if err != nil {
			log.Fatal(err)
		}
		ok := rt.Output() == seqOut
		fmt.Printf("%-8.2f  %-8d  %-10d  %v\n",
			rate, rt.Stats.Misspecs, rt.Stats.Recoveries, ok)
		if !ok {
			log.Fatal("recovery failed to restore sequential semantics")
		}
	}
	fmt.Println("\nevery run, even with one in four iterations misspeculating,")
	fmt.Println("committed exactly the sequential program's 24 MD5 digests.")
}
