// Reductions: the Reduction Criterion (section 3) admits accumulators
// updated by a single associative, commutative operator. This example
// builds a loop with three reductions — an integer sum, a float sum and an
// integer minimum — plus a histogram array reduction, and shows the runtime
// expanding each into per-worker copies initialized to the operator's
// identity and merged at checkpoints.
//
//	go run ./examples/reduction
package main

import (
	"fmt"
	"log"

	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/specrt"
)

func buildProgram(n int64) *ir.Module {
	m := ir.NewModule("reduction")
	sum := m.NewGlobal("sum", 8)
	fsum := m.NewGlobal("fsum", 8)
	best := m.NewGlobal("best", 8)
	best.Init = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f} // MaxInt64
	hist := m.NewGlobal("hist", 16*8)

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
		v := b.Mul(b.Ld(iv), b.Ld(iv))
		// sum += i*i
		sumAddr := b.Global(sum)
		b.Store(b.Add(b.Load(sumAddr, 8), v), sumAddr, 8)
		// fsum += sqrt(i)
		fAddr := b.Global(fsum)
		b.StoreF(b.FAdd(b.LoadF(fAddr), b.Builtin("sqrt", ir.F64, b.SIToFP(b.Ld(iv)))), fAddr)
		// best = min(best, (i-137)^2)
		d := b.Mul(b.Sub(b.Ld(iv), b.I(137)), b.Sub(b.Ld(iv), b.I(137)))
		bAddr := b.Global(best)
		cur := b.Load(bAddr, 8)
		b.Store(b.Select(b.SLt(d, cur), d, cur), bAddr, 8)
		// hist[i%16] += 1 (an array reduction)
		slot := b.Add(b.Global(hist), b.Mul(b.SRem(b.Ld(iv), b.I(16)), b.I(8)))
		b.Store(b.Add(b.Load(slot, 8), b.I(1)), slot, 8)
	})
	b.Ret(b.Load(b.Global(sum), 8))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

func main() {
	const n = 500

	seqVal, _, err := core.RunSequential(buildProgram(n))
	if err != nil {
		log.Fatal(err)
	}

	par, err := core.Parallelize(buildProgram(n), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== heap assignment ===")
	fmt.Print(par.Summary())

	for _, workers := range []int{1, 4, 16} {
		rt, got, err := core.Run(par, specrt.Config{Workers: workers})
		if err != nil {
			log.Fatal(err)
		}
		status := "OK"
		if got != seqVal {
			status = fmt.Sprintf("MISMATCH (want %d)", seqVal)
		}
		fmt.Printf("workers=%-2d sum=%-12d misspecs=%d  %s\n",
			workers, got, rt.Stats.Misspecs, status)
	}

	// The reduction operators recognized:
	for _, ri := range par.Regions {
		fmt.Println("\nreduction operators:")
		for o, k := range ri.Assign.ReduxOps {
			fmt.Printf("  %-8s via %s\n", o, k)
		}
	}
}
