// Quickstart: build a small program with the IR builder, let Privateer
// privatize and parallelize its hot loop automatically, and check that the
// parallel execution matches the sequential one.
//
// The loop reuses a scratch buffer across iterations — a false dependence
// that blocks non-speculative parallelization but that speculative
// privatization removes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/specrt"
)

// buildProgram returns a module computing, for each of n rows, a polynomial
// over a reused scratch buffer, accumulating a checksum.
func buildProgram(n int64) *ir.Module {
	m := ir.NewModule("quickstart")
	scratch := m.NewGlobal("scratch", 64*8) // reused every iteration
	sum := m.NewGlobal("sum", 8)            // a reduction

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("row", b.I(0), b.I(n), func(row *ir.Instr) {
		// Fill the scratch buffer (a fresh value set per iteration: the
		// privatization criterion holds even though the storage is shared).
		b.For("i", b.I(0), b.I(64), func(iv *ir.Instr) {
			slot := b.Add(b.Global(scratch), b.Mul(b.Ld(iv), b.I(8)))
			v := b.Add(b.Mul(b.Ld(row), b.I(31)), b.Mul(b.Ld(iv), b.Ld(iv)))
			b.Store(v, slot, 8)
		})
		// Consume it: sum += scratch[row%64] * scratch[(row+7)%64].
		a := b.Load(b.Add(b.Global(scratch), b.Mul(b.SRem(b.Ld(row), b.I(64)), b.I(8))), 8)
		c := b.Load(b.Add(b.Global(scratch),
			b.Mul(b.SRem(b.Add(b.Ld(row), b.I(7)), b.I(64)), b.I(8))), 8)
		sumAddr := b.Global(sum)
		b.Store(b.Add(b.Load(sumAddr, 8), b.Mul(a, c)), sumAddr, 8)
	})
	b.Ret(b.Load(b.Global(sum), 8))

	if err := ir.Verify(m); err != nil {
		log.Fatalf("bad module: %v", err)
	}
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn) // mem2reg: scalars become SSA registers
	}
	return m
}

func main() {
	const n = 200

	// Sequential reference.
	seqVal, _, err := core.RunSequential(buildProgram(n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential result: %d\n", seqVal)

	// The fully automatic pipeline: profile -> classify -> select ->
	// transform -> DOALL.
	par, err := core.Parallelize(buildProgram(n), core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(par.Summary())

	// Run speculatively with 8 workers.
	rt, parVal, err := core.Run(par, specrt.Config{Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel result:   %d  (checkpoints=%d, misspeculations=%d)\n",
		parVal, rt.Stats.Checkpoints, rt.Stats.Misspecs)
	if parVal != seqVal {
		log.Fatal("MISMATCH: speculation broke the program")
	}
	fmt.Println("results match: speculative privatization preserved the semantics")
}
