// Package privateer reproduces "Speculative Separation for Privatization
// and Reductions" (Johnson, Kim, Prabhu, Zaks, August — PLDI 2012) as a
// self-contained Go system: a compiler IR and pass pipeline, profilers, the
// five-way heap classification, the privatizing transformation, a
// speculative DOALL runtime with shadow-memory privacy validation,
// checkpointing and recovery, the five benchmark programs of the paper's
// evaluation, and a harness regenerating every table and figure.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and substitution table, and EXPERIMENTS.md for measured
// results. The package tree lives under internal/; cmd/privateer,
// cmd/privateer-bench and cmd/privateer-dump are the executables, and
// examples/ holds runnable walkthroughs.
package privateer
