package privateer

// Benchmarks regenerating the paper's tables and figures, one testing.B
// benchmark per experiment (DESIGN.md's experiment index). They run the
// scaled-down QuickConfig (train inputs) so `go test -bench=.` completes in
// seconds; use cmd/privateer-bench for the full ref-input sweep.
//
// Each benchmark reports the experiment's headline numbers through
// b.ReportMetric, so the shapes (Privateer speedup vs DOALL-only, privacy
// overhead share, degradation under misspeculation) appear directly in the
// bench output.

import (
	"testing"

	"privateer/internal/bench"
	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/progs"
	"privateer/internal/specrt"
	"privateer/internal/vm"
)

// suite builds one shared quick suite per benchmark process.
var sharedSuite *bench.Suite

func getSuite(b *testing.B) *bench.Suite {
	b.Helper()
	if sharedSuite == nil {
		s, err := bench.NewSuite(bench.QuickConfig())
		if err != nil {
			b.Fatal(err)
		}
		sharedSuite = s
	}
	return sharedSuite
}

// BenchmarkTable1 renders the qualitative comparison matrix.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(bench.Table1()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable3 collects the per-program dynamic details.
func BenchmarkTable3(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) == 0 {
			b.Fatal("no rows")
		}
		b.ReportMetric(float64(r.Rows[0].Checkpoints), "checkpoints")
	}
}

// BenchmarkFig6 sweeps worker counts and reports the top geomean speedup.
func BenchmarkFig6(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Geomeans[len(r.Geomeans)-1], "geomean-speedup")
	}
}

// BenchmarkFig7 compares DOALL-only with Privateer.
func BenchmarkFig7(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig7()
		if err != nil {
			b.Fatal(err)
		}
		doall, priv := r.Geomeans()
		b.ReportMetric(doall, "doall-only-geomean")
		b.ReportMetric(priv, "privateer-geomean")
	}
}

// BenchmarkFig8 measures the overhead decomposition.
func BenchmarkFig8(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		// Report dijkstra's privacy-read share at the largest sweep point:
		// the paper's dominant validation overhead.
		bd := r.Breakdowns["dijkstra"]
		if len(bd) > 0 {
			b.ReportMetric(bd[len(bd)-1].PrivReadPct, "dijkstra-privread-%")
		}
	}
}

// BenchmarkFig9 measures degradation under injected misspeculation.
func BenchmarkFig9(b *testing.B) {
	s := getSuite(b)
	for i := 0; i < b.N; i++ {
		r, err := s.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		base := r.Speedups[r.ProgramOrder[0]][0]
		worst := r.Speedups[r.ProgramOrder[0]][len(r.Rates)-1]
		if base > 0 {
			b.ReportMetric(worst/base, "retained-speedup-fraction")
		}
	}
}

// --- component micro-benchmarks ---

// BenchmarkInterpreter measures raw interpretation speed on the quickstart
// kernel (instructions per second appear as steps/op via b.ReportMetric).
func BenchmarkInterpreter(b *testing.B) {
	p := progs.Dijkstra()
	mod := p.Build(p.Train)
	b.ResetTimer()
	var steps int64
	for i := 0; i < b.N; i++ {
		it := interp.New(mod, vm.NewAddressSpace())
		if _, err := it.Run(); err != nil {
			b.Fatal(err)
		}
		steps = it.Steps
	}
	b.ReportMetric(float64(steps), "steps/run")
}

// BenchmarkCOWClone measures address-space cloning, the runtime's spawn
// primitive.
func BenchmarkCOWClone(b *testing.B) {
	as := vm.NewAddressSpace()
	base, err := as.Alloc(ir.HeapPrivate, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	for off := uint64(0); off < 1<<20; off += vm.PageSize {
		if err := as.Write(base+off, 8, off); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := as.Clone()
		_ = c
	}
}

// BenchmarkPrivacyValidation measures the shadow-memory fast phase through
// a full speculative run of the most privacy-intensive benchmark.
func BenchmarkPrivacyValidation(b *testing.B) {
	p := progs.Dijkstra()
	par, err := core.Parallelize(p.Build(p.Train), core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt, _, err := core.Run(par, specrt.Config{Workers: 4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rt.Stats.PrivReadChecks+rt.Stats.PrivWriteChecks), "privacy-checks")
	}
}

// BenchmarkProfiler measures the instrumented profiling run.
func BenchmarkProfiler(b *testing.B) {
	p := progs.EncMD5()
	for i := 0; i < b.N; i++ {
		if _, err := core.Parallelize(p.Build(p.Train), core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
