module privateer

go 1.22
