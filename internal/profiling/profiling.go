// Package profiling implements Privateer's profilers (section 4.1 of the
// paper): the pointer-to-object profiler that connects dynamic pointer
// addresses to memory-object names via an interval map, the object-lifetime
// profiler that identifies short-lived objects, the memory flow-dependence
// profiler that finds loop-carried flow dependences, the value-prediction
// profiler, and the execution-time profiler that ranks hot loops.
//
// All profilers attach to a single instrumented interpretation of the
// program on a training input and produce one Profile consumed by the
// classification and transformation stages.
package profiling

import (
	"fmt"
	"sort"
	"strings"

	"privateer/internal/interp"
	"privateer/internal/intervalmap"
	"privateer/internal/ir"
	"privateer/internal/vm"
)

// Object names a memory object by its static allocation site: a module
// global, or a malloc/alloca instruction. This is the unit at which heap
// assignments are expressed and allocation sites are rewritten. Dynamic
// contexts (which call path created the object) refine lifetime analysis and
// reporting but are folded into the site before classification, since one
// static site can only be rewritten one way.
type Object struct {
	// Global is set for module globals.
	Global *ir.Global
	// Site is set for dynamic allocation sites (malloc/alloca).
	Site *ir.Instr
}

// IsZero reports whether o names nothing.
func (o Object) IsZero() bool { return o.Global == nil && o.Site == nil }

func (o Object) String() string {
	switch {
	case o.Global != nil:
		return "@" + o.Global.Name
	case o.Site != nil:
		name := o.Site.Name
		if name == "" {
			name = o.Site.String()
		}
		return o.Site.Blk.Fn.Name + ":" + name
	default:
		return "<none>"
	}
}

// ObjectSet is a set of memory objects.
type ObjectSet map[Object]bool

// Add inserts o and reports whether it was new.
func (s ObjectSet) Add(o Object) bool {
	if s[o] {
		return false
	}
	s[o] = true
	return true
}

// Union adds every element of t to s.
func (s ObjectSet) Union(t ObjectSet) {
	for o := range t {
		s[o] = true
	}
}

// Names returns the sorted object names, for deterministic reports.
func (s ObjectSet) Names() []string {
	var ns []string
	for o := range s {
		ns = append(ns, o.String())
	}
	sort.Strings(ns)
	return ns
}

// Dep is one observed loop-carried memory flow dependence: Dst read a value
// that Src wrote in an earlier iteration of the profiled loop.
type Dep struct {
	// Src is the store instruction.
	Src *ir.Instr
	// Dst is the load instruction.
	Dst *ir.Instr
	// Object is the memory object carrying the dependence.
	Object Object
	// Count is how many times the dependence manifested.
	Count int64
}

// ConstInfo summarizes the value-prediction profile of one load.
type ConstInfo struct {
	// Value is the first loaded value.
	Value uint64
	// Stable is true while every observed load returned Value.
	Stable bool
	// Count is the number of observed executions.
	Count int64
}

// CarriedReadInfo profiles the *carried* occurrences of a load: executions
// that returned a value written in an earlier iteration. When every carried
// occurrence reads the same value from the same fixed location, the
// dependence can be removed by value-prediction speculation (the paper's
// "linked list is empty at the beginning of each iteration").
type CarriedReadInfo struct {
	// Addr is the address of the first carried occurrence.
	Addr uint64
	// Value is the value of the first carried occurrence.
	Value uint64
	// Size is the access width.
	Size int64
	// Object is the memory object holding the location.
	Object Object
	// Offset is Addr's offset within Object.
	Offset uint64
	// Stable is true while every carried occurrence matches Addr/Value.
	Stable bool
	// Count is the number of carried occurrences.
	Count int64
}

// LoopInfo aggregates per-loop execution statistics.
type LoopInfo struct {
	// Loop is the profiled loop.
	Loop *ir.Loop
	// Invocations counts entries into the loop from outside.
	Invocations int64
	// Iterations counts total header trips across invocations.
	Iterations int64
	// Steps approximates dynamic instructions spent inside the loop,
	// including callees (the execution-time profile).
	Steps int64
}

// Profile is the combined result of one profiling run.
type Profile struct {
	// Mod is the profiled module.
	Mod *ir.Module
	// Loops maps each detected loop to its statistics.
	Loops map[*ir.Loop]*LoopInfo
	// AllLoops lists loops of every function, for iteration.
	AllLoops []*ir.Loop
	// PointsTo maps each memory-touching instruction to every object its
	// address operand referenced during profiling (the pointer-to-object
	// profile).
	PointsTo map[*ir.Instr]ObjectSet
	// CarriedFlow lists observed loop-carried memory flow dependences per
	// loop.
	CarriedFlow map[*ir.Loop][]*Dep
	// ShortLivedViolations records, per loop, allocation sites whose
	// objects were seen to outlive a single iteration (or be accessed
	// without having been allocated in the current iteration).
	ShortLivedViolations map[*ir.Loop]ObjectSet
	// AllocatedIn records, per loop, sites that allocated at least one
	// object during some iteration of the loop.
	AllocatedIn map[*ir.Loop]ObjectSet
	// LoadConst is the value-prediction profile of every load executed
	// inside at least one loop.
	LoadConst map[*ir.Instr]*ConstInfo
	// CarriedReads profiles the carried occurrences of loads, per loop.
	CarriedReads map[*ir.Loop]map[*ir.Instr]*CarriedReadInfo
	// Contexts records, per allocation site, the distinct dynamic contexts
	// in which it allocated (reporting only).
	Contexts map[Object]map[string]int64
	// BlockRuns counts executions of every basic block, for control
	// speculation: blocks never executed during training are speculated
	// unreachable and guarded with misspec at transform time.
	BlockRuns map[*ir.Block]int64
	// Steps is the whole-program dynamic instruction count.
	Steps int64
}

// IsShortLived implements Profile.isShortLived(o, L) from Algorithm 1: true
// if o allocated inside L, never outlived an iteration, and was never
// accessed outside the iteration that allocated it.
func (p *Profile) IsShortLived(o Object, l *ir.Loop) bool {
	return p.AllocatedIn[l][o] && !p.ShortLivedViolations[l][o]
}

// MapPointerToObjects implements Profile.mapPointerToObjects(p) from
// Algorithm 2 for the address operand of instruction in.
func (p *Profile) MapPointerToObjects(in *ir.Instr) ObjectSet {
	return p.PointsTo[in]
}

// HotLoops returns loops sorted by descending execution-time share,
// filtering out loops that never iterated.
func (p *Profile) HotLoops() []*LoopInfo {
	var infos []*LoopInfo
	for _, l := range p.AllLoops {
		if li := p.Loops[l]; li != nil && li.Iterations > 0 {
			infos = append(infos, li)
		}
	}
	sort.Slice(infos, func(i, j int) bool {
		if infos[i].Steps != infos[j].Steps {
			return infos[i].Steps > infos[j].Steps
		}
		return infos[i].Loop.String() < infos[j].Loop.String()
	})
	return infos
}

// loopInst is one dynamic activation of a loop.
type loopInst struct {
	loop  *ir.Loop
	depth int
	iter  int64
	// writes maps byte address to the last write in this invocation.
	writes map[uint64]writeRec
	// liveAllocs maps objects allocated during the current invocation to
	// the iteration that allocated them.
	liveAllocs map[uint64]allocRec
}

type writeRec struct {
	iter  int64
	instr *ir.Instr
}

type allocRec struct {
	iter int64
	obj  Object
}

// Profiler instruments an interpreter and accumulates a Profile.
type Profiler struct {
	prof *Profile

	loopsByHeader map[*ir.Block]*ir.Loop
	loopsOf       map[*ir.Block][]*ir.Loop // innermost-first

	objects  intervalmap.Map[Object]
	stack    []*loopInst
	depIndex map[*ir.Loop]map[[2]*ir.Instr]*Dep
}

// NewProfiler prepares a profiler for mod, computing loop structure for
// every function.
func NewProfiler(mod *ir.Module) *Profiler {
	p := &Profiler{
		prof: &Profile{
			Mod:                  mod,
			Loops:                map[*ir.Loop]*LoopInfo{},
			PointsTo:             map[*ir.Instr]ObjectSet{},
			CarriedFlow:          map[*ir.Loop][]*Dep{},
			ShortLivedViolations: map[*ir.Loop]ObjectSet{},
			AllocatedIn:          map[*ir.Loop]ObjectSet{},
			LoadConst:            map[*ir.Instr]*ConstInfo{},
			CarriedReads:         map[*ir.Loop]map[*ir.Instr]*CarriedReadInfo{},
			Contexts:             map[Object]map[string]int64{},
			BlockRuns:            map[*ir.Block]int64{},
		},
		loopsByHeader: map[*ir.Block]*ir.Loop{},
		loopsOf:       map[*ir.Block][]*ir.Loop{},
		depIndex:      map[*ir.Loop]map[[2]*ir.Instr]*Dep{},
	}
	for _, f := range mod.SortedFuncs() {
		f.Recompute()
		dt := ir.BuildDomTree(f)
		loops := ir.FindLoops(f, dt)
		for _, l := range loops {
			p.loopsByHeader[l.Header] = l
			p.prof.AllLoops = append(p.prof.AllLoops, l)
			p.prof.Loops[l] = &LoopInfo{Loop: l}
			p.prof.ShortLivedViolations[l] = ObjectSet{}
			p.prof.AllocatedIn[l] = ObjectSet{}
			p.depIndex[l] = map[[2]*ir.Instr]*Dep{}
			p.prof.CarriedReads[l] = map[*ir.Instr]*CarriedReadInfo{}
			for _, b := range l.Blocks {
				p.loopsOf[b] = append(p.loopsOf[b], l)
			}
		}
		// Innermost (deepest) first.
		for _, lst := range p.loopsOf {
			sort.Slice(lst, func(i, j int) bool { return lst[i].Depth > lst[j].Depth })
		}
	}
	return p
}

// Attach installs profiling hooks on it. The interpreter must execute the
// same module the profiler was built for.
func (p *Profiler) Attach(it *interp.Interp) error {
	if err := it.LayOutGlobals(); err != nil {
		return err
	}
	for _, name := range it.Mod.GlobalNames() {
		g := it.Mod.Globals[name]
		addr := it.GlobalAddr(g)
		p.objects.Insert(addr, addr+uint64(g.Size), Object{Global: g})
	}
	it.Hooks.OnBlock = p.onBlock
	it.Hooks.OnEnter = p.onEnter
	it.Hooks.OnExit = p.onExit
	it.Hooks.OnLoad = p.onLoad
	it.Hooks.OnStore = p.onStore
	it.Hooks.OnAlloc = p.onAlloc
	it.Hooks.OnFree = p.onFree
	return nil
}

// Profile finalizes and returns the accumulated profile.
func (p *Profiler) Profile(steps int64) *Profile {
	for l, idx := range p.depIndex {
		var deps []*Dep
		for _, d := range idx {
			deps = append(deps, d)
		}
		sort.Slice(deps, func(i, j int) bool {
			if deps[i].Count != deps[j].Count {
				return deps[i].Count > deps[j].Count
			}
			return deps[i].Object.String() < deps[j].Object.String()
		})
		p.prof.CarriedFlow[l] = deps
	}
	p.prof.Steps = steps
	return p.prof
}

// Run profiles mod end-to-end on a fresh address space: it interprets the
// entry function with args under full instrumentation and returns the
// profile.
func Run(mod *ir.Module, args ...uint64) (*Profile, error) {
	p := NewProfiler(mod)
	it := interp.New(mod, vm.NewAddressSpace())
	if err := p.Attach(it); err != nil {
		return nil, err
	}
	if _, err := it.Run(args...); err != nil {
		return nil, fmt.Errorf("profiling run: %w", err)
	}
	return p.Profile(it.Steps), nil
}

func (p *Profiler) context(fr *interp.Frame) string {
	var parts []string
	for f := fr; f != nil; f = f.Caller {
		parts = append(parts, f.Fn.Name)
	}
	// Reverse to outermost-first.
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, ">")
}

func (p *Profiler) onEnter(fr *interp.Frame) {
	p.prof.BlockRuns[fr.Fn.Entry()]++
}

func (p *Profiler) onBlock(fr *interp.Frame, from, to *ir.Block) {
	p.prof.BlockRuns[to]++
	// Pop loop instances of this frame that do not contain the target.
	for len(p.stack) > 0 {
		top := p.stack[len(p.stack)-1]
		if top.depth != fr.Depth || top.loop.Contains(to) {
			break
		}
		p.popInstance(top)
		p.stack = p.stack[:len(p.stack)-1]
	}
	// Entering a header: either a back edge (iteration) or a fresh
	// invocation.
	if l := p.loopsByHeader[to]; l != nil {
		top := p.topFor(fr.Depth)
		if top != nil && top.loop == l {
			if l.Contains(from) {
				p.iterBoundary(top)
				top.iter++
				p.prof.Loops[l].Iterations++
			}
			// A jump to the header from outside while the instance is
			// active cannot happen in reducible CFGs.
		} else {
			inst := &loopInst{
				loop:       l,
				depth:      fr.Depth,
				writes:     map[uint64]writeRec{},
				liveAllocs: map[uint64]allocRec{},
			}
			p.stack = append(p.stack, inst)
			li := p.prof.Loops[l]
			li.Invocations++
			li.Iterations++
		}
	}
	// Execution-time profile: attribute the target block's work to every
	// active loop.
	cost := int64(len(to.Instrs))
	for _, inst := range p.stack {
		p.prof.Loops[inst.loop].Steps += cost
	}
}

func (p *Profiler) topFor(depth int) *loopInst {
	if len(p.stack) == 0 {
		return nil
	}
	top := p.stack[len(p.stack)-1]
	if top.depth != depth {
		return nil
	}
	return top
}

// iterBoundary handles end-of-iteration bookkeeping for inst: objects still
// live that were allocated during the finished iteration violate the
// short-lived property.
func (p *Profiler) iterBoundary(inst *loopInst) {
	for addr, rec := range inst.liveAllocs {
		if rec.iter <= inst.iter {
			p.prof.ShortLivedViolations[inst.loop].Add(rec.obj)
			delete(inst.liveAllocs, addr)
		}
	}
}

func (p *Profiler) popInstance(inst *loopInst) {
	// Anything still live at loop exit outlived its iteration.
	for _, rec := range inst.liveAllocs {
		p.prof.ShortLivedViolations[inst.loop].Add(rec.obj)
	}
}

func (p *Profiler) onExit(fr *interp.Frame) {
	for len(p.stack) > 0 {
		top := p.stack[len(p.stack)-1]
		if top.depth < fr.Depth {
			break
		}
		p.popInstance(top)
		p.stack = p.stack[:len(p.stack)-1]
	}
}

func (p *Profiler) resolve(addr uint64) Object {
	o, _ := p.objects.Lookup(addr)
	return o
}

func (p *Profiler) recordPointsTo(in *ir.Instr, o Object) {
	if o.IsZero() {
		return
	}
	set := p.prof.PointsTo[in]
	if set == nil {
		set = ObjectSet{}
		p.prof.PointsTo[in] = set
	}
	set.Add(o)
}

func (p *Profiler) onLoad(fr *interp.Frame, in *ir.Instr, addr uint64, size int64) {
	obj := p.resolve(addr)
	p.recordPointsTo(in, obj)
	// Value-prediction profile: only meaningful inside loops.
	if len(p.stack) > 0 && in.Op == ir.OpLoad {
		ci := p.prof.LoadConst[in]
		val := fr.Value(in)
		if ci == nil {
			p.prof.LoadConst[in] = &ConstInfo{Value: val, Stable: true, Count: 1}
		} else {
			ci.Count++
			if ci.Value != val {
				ci.Stable = false
			}
		}
	}
	for _, inst := range p.stack {
		// Flow-dependence profile at byte granularity.
		carried := false
		for b := addr; b < addr+uint64(size); b++ {
			if wr, ok := inst.writes[b]; ok && wr.iter < inst.iter {
				p.recordDep(inst.loop, wr.instr, in, obj)
				carried = true
			}
		}
		if carried {
			p.recordCarriedRead(inst.loop, in, addr, size, fr.Value(in), obj)
		}
		// Short-lived property: accessing an object of a site that
		// allocates inside this loop, outside the iteration that
		// allocated it, is a violation.
		p.checkAccessLifetime(inst, addr, obj)
	}
}

// recordCarriedRead updates the value-prediction profile of a carried read
// occurrence.
func (p *Profiler) recordCarriedRead(l *ir.Loop, in *ir.Instr, addr uint64, size int64, val uint64, obj Object) {
	m := p.prof.CarriedReads[l]
	if m == nil {
		return
	}
	ci := m[in]
	if ci == nil {
		var off uint64
		if lo, _, ok := p.objects.Bounds(addr); ok {
			off = addr - lo
		}
		m[in] = &CarriedReadInfo{
			Addr: addr, Value: val, Size: size, Object: obj, Offset: off,
			Stable: true, Count: 1,
		}
		return
	}
	ci.Count++
	if ci.Addr != addr || ci.Value != val {
		ci.Stable = false
	}
}

func (p *Profiler) onStore(fr *interp.Frame, in *ir.Instr, addr uint64, size int64) {
	obj := p.resolve(addr)
	p.recordPointsTo(in, obj)
	for _, inst := range p.stack {
		for b := addr; b < addr+uint64(size); b++ {
			inst.writes[b] = writeRec{iter: inst.iter, instr: in}
		}
		p.checkAccessLifetime(inst, addr, obj)
	}
}

// checkAccessLifetime flags short-lived violations: the object is from a
// site that allocates within inst's loop, but this access is to an instance
// not allocated in the current iteration.
func (p *Profiler) checkAccessLifetime(inst *loopInst, addr uint64, obj Object) {
	if obj.IsZero() || obj.Global != nil {
		return
	}
	lo, _, ok := p.objects.Bounds(addr)
	if !ok {
		return
	}
	if rec, live := inst.liveAllocs[lo]; live {
		if rec.iter != inst.iter {
			// Covered by iterBoundary, but double-check cheaply.
			p.prof.ShortLivedViolations[inst.loop].Add(obj)
		}
		return
	}
	// Accessed inside the loop without having been allocated in the
	// current iteration: if this site ever allocates inside the loop, the
	// site cannot be short-lived.
	if p.prof.AllocatedIn[inst.loop][obj] {
		p.prof.ShortLivedViolations[inst.loop].Add(obj)
	}
}

func (p *Profiler) recordDep(l *ir.Loop, src, dst *ir.Instr, obj Object) {
	key := [2]*ir.Instr{src, dst}
	d := p.depIndex[l][key]
	if d == nil {
		d = &Dep{Src: src, Dst: dst, Object: obj}
		p.depIndex[l][key] = d
	}
	d.Count++
}

func (p *Profiler) onAlloc(fr *interp.Frame, in *ir.Instr, addr, size uint64) {
	obj := Object{Site: in}
	p.objects.Insert(addr, addr+size, obj)
	ctx := p.context(fr)
	cm := p.prof.Contexts[obj]
	if cm == nil {
		cm = map[string]int64{}
		p.prof.Contexts[obj] = cm
	}
	cm[ctx]++
	for _, inst := range p.stack {
		p.prof.AllocatedIn[inst.loop].Add(obj)
		inst.liveAllocs[addr] = allocRec{iter: inst.iter, obj: obj}
	}
}

func (p *Profiler) onFree(fr *interp.Frame, in *ir.Instr, addr uint64) {
	obj, ok := p.objects.Remove(addr)
	if !ok {
		return
	}
	if in != nil {
		p.recordPointsTo(in, obj)
	}
	for _, inst := range p.stack {
		if rec, live := inst.liveAllocs[addr]; live {
			if rec.iter != inst.iter {
				p.prof.ShortLivedViolations[inst.loop].Add(obj)
			}
			delete(inst.liveAllocs, addr)
		} else if p.prof.AllocatedIn[inst.loop][obj] {
			// Freed inside the loop, but allocated before this
			// invocation: outlived an iteration.
			p.prof.ShortLivedViolations[inst.loop].Add(obj)
		}
	}
}
