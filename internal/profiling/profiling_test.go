package profiling

import (
	"testing"

	"privateer/internal/ir"
)

// buildReuseLoop builds the canonical privatizable pattern:
//
//	for (i=0; i<outer; i++) {
//	    for (j=0; j<inner; j++) scratch[j] = i+j;   // init each iteration
//	    node = malloc(16); node->v = scratch[0]; sum += node->v; free(node);
//	}
//
// scratch is reused across iterations (false dependences only: every read is
// preceded by a same-iteration write), node is short-lived, sum is a genuine
// loop-carried flow dependence.
func buildReuseLoop(t *testing.T, outer, inner int64) (*ir.Module, *ir.Global, *ir.Global) {
	t.Helper()
	m := ir.NewModule("reuse")
	scratch := m.NewGlobal("scratch", inner*8)
	sum := m.NewGlobal("sum", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(outer), func(iv *ir.Instr) {
		b.For("j", b.I(0), b.I(inner), func(jv *ir.Instr) {
			slot := b.Add(b.Global(scratch), b.Mul(b.Ld(jv), b.I(8)))
			b.Store(b.Add(b.Ld(iv), b.Ld(jv)), slot, 8)
		})
		node := b.Malloc("node", b.I(16))
		b.Store(b.Load(b.Global(scratch), 8), node, 8)
		sumAddr := b.Global(sum)
		b.Store(b.Add(b.Load(sumAddr, 8), b.Load(node, 8)), sumAddr, 8)
		b.Free(node)
	})
	b.Ret(b.Load(b.Global(sum), 8))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	ir.PromoteAllocas(f)
	return m, scratch, sum
}

// outerLoopOf returns the depth-1 loop of main.
func outerLoopOf(t *testing.T, p *Profile) *ir.Loop {
	t.Helper()
	for _, l := range p.AllLoops {
		if l.Depth == 1 && l.Header.Fn.Name == "main" {
			return l
		}
	}
	t.Fatal("no outer loop found")
	return nil
}

func TestLoopCountsAndHotRanking(t *testing.T) {
	m, _, _ := buildReuseLoop(t, 10, 7)
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	outer := outerLoopOf(t, p)
	li := p.Loops[outer]
	if li.Invocations != 1 {
		t.Errorf("outer invocations = %d, want 1", li.Invocations)
	}
	if li.Iterations != 11 { // 10 trips + final header test
		t.Errorf("outer iterations = %d, want 11", li.Iterations)
	}
	hot := p.HotLoops()
	if len(hot) != 2 {
		t.Fatalf("hot loops = %d, want 2", len(hot))
	}
	if hot[0].Loop != outer {
		t.Errorf("hottest loop should be the outer loop, got %s", hot[0].Loop)
	}
}

func TestPointsToResolvesObjects(t *testing.T) {
	m, scratch, sum := buildReuseLoop(t, 5, 4)
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	sawScratch, sawSum, sawNode := false, false, false
	for _, set := range p.PointsTo {
		for o := range set {
			switch {
			case o.Global == scratch:
				sawScratch = true
			case o.Global == sum:
				sawSum = true
			case o.Site != nil && o.Site.Name == "node":
				sawNode = true
			}
		}
	}
	if !sawScratch || !sawSum || !sawNode {
		t.Errorf("points-to missing objects: scratch=%v sum=%v node=%v",
			sawScratch, sawSum, sawNode)
	}
}

func TestCarriedFlowOnlyThroughSum(t *testing.T) {
	m, scratch, sum := buildReuseLoop(t, 6, 4)
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	outer := outerLoopOf(t, p)
	deps := p.CarriedFlow[outer]
	if len(deps) == 0 {
		t.Fatal("expected a carried flow dependence through sum")
	}
	for _, d := range deps {
		if d.Object.Global == scratch {
			t.Errorf("false carried dep through scratch (reused, not flowed): %+v", d)
		}
		if d.Object.Global != sum {
			t.Errorf("unexpected carried dep through %s", d.Object)
		}
	}
}

func TestShortLivedDetection(t *testing.T) {
	m, _, _ := buildReuseLoop(t, 6, 4)
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	outer := outerLoopOf(t, p)
	var node Object
	for o := range p.AllocatedIn[outer] {
		if o.Site != nil && o.Site.Name == "node" {
			node = o
		}
	}
	if node.IsZero() {
		t.Fatal("node site not recorded as allocated in loop")
	}
	if !p.IsShortLived(node, outer) {
		t.Errorf("node should be short-lived; violations: %v",
			p.ShortLivedViolations[outer].Names())
	}
}

func TestEscapingObjectNotShortLived(t *testing.T) {
	// Object allocated in iteration i, freed in iteration i+1.
	m := ir.NewModule("escape")
	hold := m.NewGlobal("hold", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Store(b.P(0), b.Global(hold), 8)
	b.For("i", b.I(0), b.I(8), func(_ *ir.Instr) {
		prev := b.LoadPtr(b.Global(hold))
		b.If(b.Ne(prev, b.P(0)), func() {
			b.Free(b.LoadPtr(b.Global(hold)))
		}, nil)
		n := b.Malloc("node", b.I(16))
		b.Store(n, b.Global(hold), 8)
	})
	b.Free(b.LoadPtr(b.Global(hold)))
	b.Ret(b.I(0))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	ir.PromoteAllocas(f)
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	outer := outerLoopOf(t, p)
	for o := range p.AllocatedIn[outer] {
		if o.Site != nil && o.Site.Name == "node" {
			if p.IsShortLived(o, outer) {
				t.Error("object freed in the next iteration must not be short-lived")
			}
		}
	}
}

func TestValuePredictionProfile(t *testing.T) {
	// head is always NULL when read at iteration start (dijkstra's queue
	// pattern): stable constant. sum varies: unstable.
	m := ir.NewModule("vp")
	head := m.NewGlobal("head", 8)
	sum := m.NewGlobal("sum", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	var headLoad, sumLoad *ir.Instr
	b.For("i", b.I(0), b.I(5), func(iv *ir.Instr) {
		headLoad = b.LoadPtr(b.Global(head))
		b.If(b.Ne(headLoad, b.P(0)), func() {
			b.Store(b.P(0), b.Global(head), 8)
		}, nil)
		sumLoad = b.Load(b.Global(sum), 8)
		b.Store(b.Add(sumLoad, b.Ld(iv)), b.Global(sum), 8)
	})
	b.Ret(b.I(0))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	ir.PromoteAllocas(f)
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	hc := p.LoadConst[headLoad]
	if hc == nil || !hc.Stable || hc.Value != 0 {
		t.Errorf("head load profile = %+v, want stable 0", hc)
	}
	sc := p.LoadConst[sumLoad]
	if sc == nil || sc.Stable {
		t.Errorf("sum load profile = %+v, want unstable", sc)
	}
}

func TestCalleeAccessesAttributedToLoop(t *testing.T) {
	// The loop calls a helper that writes a global; the dependence and
	// points-to data must still be attributed to the loop.
	m := ir.NewModule("callee")
	g := m.NewGlobal("acc", 8)
	helper := m.NewFunc("bump", ir.Void)
	{
		hb := ir.NewBuilder(helper)
		addr := hb.Global(g)
		hb.Store(hb.Add(hb.Load(addr, 8), hb.I(1)), addr, 8)
		hb.Ret()
	}
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(4), func(_ *ir.Instr) {
		b.Call(helper)
	})
	b.Ret(b.Load(b.Global(g), 8))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	ir.PromoteAllocas(f)
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	outer := outerLoopOf(t, p)
	found := false
	for _, d := range p.CarriedFlow[outer] {
		if d.Object.Global == g {
			found = true
		}
	}
	if !found {
		t.Error("carried dependence through callee not attributed to loop")
	}
}

func TestContextsRecorded(t *testing.T) {
	m := ir.NewModule("ctx")
	mk := m.NewFunc("mk", ir.Ptr)
	{
		hb := ir.NewBuilder(mk)
		n := hb.Malloc("node", hb.I(8))
		hb.Ret(n)
	}
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	a := b.Call(mk)
	b.Free(a)
	b.Ret(b.I(0))
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	for o, ctxs := range p.Contexts {
		if o.Site != nil && o.Site.Name == "node" {
			if _, ok := ctxs["main>mk"]; !ok {
				t.Errorf("context map = %v, want main>mk", ctxs)
			}
			return
		}
	}
	t.Error("no context recorded for node site")
}

func TestBlockRunsCounted(t *testing.T) {
	m := ir.NewModule("blocks")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	cold := b.NewBlock("cold")
	warm := b.NewBlock("warm")
	exit := b.NewBlock("exit")
	b.CondBr(b.I(0), cold, warm)
	b.SetBlock(cold)
	b.Br(exit)
	b.SetBlock(warm)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(b.I(0))
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	if p.BlockRuns[cold] != 0 {
		t.Errorf("cold block counted %d runs", p.BlockRuns[cold])
	}
	if p.BlockRuns[warm] != 1 || p.BlockRuns[f.Entry()] != 1 {
		t.Errorf("warm=%d entry=%d", p.BlockRuns[warm], p.BlockRuns[f.Entry()])
	}
}

func TestCarriedReadProfileStability(t *testing.T) {
	// head is read-before-write each iteration with the constant NULL:
	// CarriedReads must mark it stable with the right address and offset.
	m := ir.NewModule("cr")
	q := m.NewGlobal("q", 16)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	var tailLoad *ir.Instr
	b.For("i", b.I(0), b.I(6), func(iv *ir.Instr) {
		tailLoad = b.LoadPtr(b.Add(b.Global(q), b.I(8)))
		_ = tailLoad
		b.Store(b.Ld(iv), b.Add(b.Global(q), b.I(8)), 8)
		b.Store(b.I(0), b.Add(b.Global(q), b.I(8)), 8) // reset to 0
	})
	b.Ret(b.I(0))
	ir.PromoteAllocas(f)
	p, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	outer := outerLoopOf(t, p)
	cr := p.CarriedReads[outer][tailLoad]
	if cr == nil {
		t.Fatal("no carried-read record")
	}
	if !cr.Stable || cr.Value != 0 || cr.Offset != 8 || cr.Object.Global != q {
		t.Errorf("carried read = %+v", cr)
	}
}

func TestObjectStringForms(t *testing.T) {
	g := &ir.Global{Name: "glob"}
	if (Object{Global: g}).String() != "@glob" {
		t.Error("global object string")
	}
	if !(Object{}).IsZero() || (Object{Global: g}).IsZero() {
		t.Error("IsZero wrong")
	}
	if (Object{}).String() != "<none>" {
		t.Error("zero object string")
	}
}

func TestHotLoopsDeterministicOrder(t *testing.T) {
	m, _, _ := buildReuseLoop(t, 6, 4)
	p1, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	// Two runs over the same module produce the same ordering.
	p2, err := Run(m)
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := p1.HotLoops(), p2.HotLoops()
	if len(h1) != len(h2) {
		t.Fatal("hot loop count differs")
	}
	for i := range h1 {
		// Each Run recomputes loop structure, so compare by name.
		if h1[i].Loop.String() != h2[i].Loop.String() {
			t.Errorf("hot loop order differs at %d: %s vs %s",
				i, h1[i].Loop, h2[i].Loop)
		}
	}
}
