package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"privateer/internal/obs"
)

// SubmitRequest is the POST /submit body.
type SubmitRequest struct {
	// Tenant attributes the job ("" = "default").
	Tenant string `json:"tenant"`
	// Prog names one of the five benchmark programs.
	Prog string `json:"prog"`
	// Input is the input class: train, ref (default), alt or huge.
	Input string `json:"input"`
}

// errorReply is the JSON body of every non-2xx API response.
type errorReply struct {
	Error string `json:"error"`
}

// Mount registers the service API on srv's listener, alongside the
// introspection endpoints: POST /submit, GET /poll?id=..., GET /service,
// GET /jobs/{id}/trace, GET /debug/flight. It also installs the readiness
// probe backing /readyz, which flips to 503 during Drain. Call before
// srv.Start.
func (s *Service) Mount(srv *obs.Server) {
	srv.Handle("/submit", http.HandlerFunc(s.handleSubmit))
	srv.Handle("/poll", http.HandlerFunc(s.handlePoll))
	srv.Handle("/service", http.HandlerFunc(s.handleSnapshot))
	srv.Handle("/jobs/", http.HandlerFunc(s.handleJobTrace))
	srv.Handle("/debug/flight", http.HandlerFunc(s.handleFlight))
	srv.SetReady(func() bool { return !s.drainFlag.Load() })
}

// writeJSON renders v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleSubmit admits a job: 202 with the job snapshot, 400 on a malformed
// body or unknown program, 429 on quota or queue backpressure (with
// Retry-After), 503 once draining.
func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorReply{"POST only"})
		return
	}
	var req SubmitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorReply{"bad JSON: " + err.Error()})
		return
	}
	job, err := s.Submit(req.Tenant, req.Prog, req.Input)
	if err != nil {
		var unknown *UnknownProgramError
		var quota *QuotaError
		var full *QueueFullError
		switch {
		case errors.As(err, &unknown):
			writeJSON(w, http.StatusBadRequest, errorReply{err.Error()})
		case errors.As(err, &quota), errors.As(err, &full):
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusTooManyRequests, errorReply{err.Error()})
		case errors.Is(err, ErrDraining):
			writeJSON(w, http.StatusServiceUnavailable, errorReply{err.Error()})
		default:
			writeJSON(w, http.StatusInternalServerError, errorReply{err.Error()})
		}
		return
	}
	writeJSON(w, http.StatusAccepted, s.View(job))
}

// handlePoll reports one job: 200 with the snapshot, 404 for an unknown
// ID, 400 without one.
func (s *Service) handlePoll(w http.ResponseWriter, r *http.Request) {
	id := r.URL.Query().Get("id")
	if id == "" {
		writeJSON(w, http.StatusBadRequest, errorReply{"missing id parameter"})
		return
	}
	job, ok := s.Job(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorReply{"no job " + id})
		return
	}
	writeJSON(w, http.StatusOK, s.View(job))
}

// handleSnapshot reports service-level state (queue, tenants, pools).
func (s *Service) handleSnapshot(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

// handleJobTrace serves GET /jobs/{id}/trace: the job's retained event
// stream as Chrome trace_event JSON (load in chrome://tracing or
// Perfetto), 404 for an unknown job or one submitted with tracing
// disabled, 400 for any other /jobs/ path shape.
func (s *Service) handleJobTrace(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(strings.TrimPrefix(r.URL.Path, "/jobs/"), "/"), "/")
	if len(parts) != 2 || parts[0] == "" || parts[1] != "trace" {
		writeJSON(w, http.StatusBadRequest, errorReply{"want /jobs/{id}/trace"})
		return
	}
	id := parts[0]
	events, ok := s.Trace(id)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorReply{"no trace for job " + id})
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = obs.WriteJobTrace(w, id, events)
}

// handleFlight serves GET /debug/flight: the flight recorder's retained
// postmortems (newest first) with capture counts by reason.
func (s *Service) handleFlight(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.flight.State())
}
