package service

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// progNames are the five served benchmarks.
var progNames = []string{"052.alvinn", "dijkstra", "blackscholes", "swaptions", "enc-md5"}

// waitDone blocks until j is terminal (bounded).
func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("job %s never finished", j.ID)
	}
}

// soloReference runs one job per program on an otherwise idle service and
// returns the per-program (ret, output) the concurrent runs must reproduce.
func soloReference(t *testing.T, s *Service) map[string]JobView {
	t.Helper()
	refs := map[string]JobView{}
	for _, name := range progNames {
		j, err := s.Submit("reference", name, "train")
		if err != nil {
			t.Fatalf("solo %s: %v", name, err)
		}
		waitDone(t, j)
		v := s.View(j)
		if v.State != StateDone {
			t.Fatalf("solo %s: %s (%s)", name, v.State, v.Error)
		}
		refs[name] = v
	}
	return refs
}

// TestConcurrentTenantsBitIdentical is the ISSUE's hammer: >= 32 concurrent
// invocations of different programs over one shared Program cache and
// warmed worker pool, every tenant's output byte-identical to a solo run
// and no cross-tenant stats bleed. Run under -race in CI.
func TestConcurrentTenantsBitIdentical(t *testing.T) {
	s := New(Config{Workers: 3, Concurrency: 8, QueueDepth: 64})
	defer s.Drain()
	refs := soloReference(t, s)

	// 8 tenants x 5 programs = 40 concurrent invocations; each tenant
	// runs every program once so any cross-tenant mixup is visible as a
	// wrong output.
	type sub struct {
		tenant string
		prog   string
		job    *Job
	}
	var subs []sub
	for ten := 0; ten < 8; ten++ {
		for _, name := range progNames {
			tenant := fmt.Sprintf("tenant-%d", ten)
			j, err := s.Submit(tenant, name, "train")
			if err != nil {
				t.Fatalf("submit %s/%s: %v", tenant, name, err)
			}
			subs = append(subs, sub{tenant, name, j})
		}
	}
	for _, sb := range subs {
		waitDone(t, sb.job)
		v := s.View(sb.job)
		if v.State != StateDone {
			t.Fatalf("%s/%s: state %s (%s)", sb.tenant, sb.prog, v.State, v.Error)
		}
		ref := refs[sb.prog]
		if v.Ret != ref.Ret || v.Output != ref.Output {
			t.Errorf("%s/%s: output diverged from solo run (ret %d vs %d)",
				sb.tenant, sb.prog, v.Ret, ref.Ret)
		}
		// Tracing is on by default; every job under the hammer must still
		// carry a usable trace (outputs above prove it changed nothing).
		if events, ok := s.Trace(sb.job.ID); !ok || len(events) == 0 {
			t.Errorf("%s/%s: no trace recorded under concurrency", sb.tenant, sb.prog)
		} else if len(v.PhaseNS) == 0 {
			t.Errorf("%s/%s: empty phase breakdown", sb.tenant, sb.prog)
		}
	}

	// No cross-tenant stats bleed: each tenant's accounting shows exactly
	// its own five jobs, all completed, none inflight.
	sn := s.Snapshot()
	for ten := 0; ten < 8; ten++ {
		tc, ok := sn.Tenants[fmt.Sprintf("tenant-%d", ten)]
		if !ok {
			t.Fatalf("tenant-%d missing from snapshot", ten)
		}
		if tc.Submitted != 5 || tc.Completed != 5 || tc.Failed != 0 || tc.Inflight != 0 {
			t.Errorf("tenant-%d counts bled: %+v", ten, tc)
		}
	}

	// The warmed pool must actually have been reused across invocations.
	var reuses int64
	for _, pv := range sn.Programs {
		reuses += pv.Pool.Reuses
	}
	if reuses == 0 {
		t.Error("no warmed-pool reuse across 45 invocations")
	}
}

// waitRunning polls until j has left the queue.
func waitRunning(t *testing.T, s *Service, j *Job) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for s.View(j).State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestGracefulDrain: the in-flight invocation completes, still-queued jobs
// fail with ErrDraining, and later submissions are refused.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 2, Concurrency: 1, QueueDepth: 16})
	// Pin the first job in flight so the queue behind it is deterministic.
	hold := make(chan struct{})
	s.holdRunner = hold
	first, err := s.Submit("t0", "dijkstra", "train")
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, first)
	var queued []*Job
	for i := 0; i < 4; i++ {
		j, err := s.Submit("t0", "dijkstra", "train")
		if err != nil {
			t.Fatalf("queued %d: %v", i, err)
		}
		queued = append(queued, j)
	}
	drained := make(chan struct{})
	go func() { s.Drain(); close(drained) }()
	deadline := time.Now().Add(time.Minute)
	for !s.Snapshot().Draining {
		if time.Now().After(deadline) {
			t.Fatal("drain never began")
		}
		time.Sleep(time.Millisecond)
	}
	close(hold)
	select {
	case <-drained:
	case <-time.After(time.Minute):
		t.Fatal("drain never completed")
	}

	if v := s.View(first); v.State != StateDone {
		t.Fatalf("in-flight job did not complete: %s (%s)", v.State, v.Error)
	}
	for i, j := range queued {
		v := s.View(j)
		if v.State != StateFailed || v.Error != ErrDraining.Error() {
			t.Fatalf("queued job %d: state %s error %q, want drain rejection", i, v.State, v.Error)
		}
	}
	if _, err := s.Submit("t0", "dijkstra", "train"); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: %v, want ErrDraining", err)
	}
	sn := s.Snapshot()
	if !sn.Draining {
		t.Fatal("snapshot does not report draining")
	}
}

// TestAdmissionControl covers the typed rejections: unknown programs,
// per-tenant quotas, and queue-full backpressure.
func TestAdmissionControl(t *testing.T) {
	s := New(Config{Workers: 2, Concurrency: 1, QueueDepth: 1, TenantInflight: 2})
	hold := make(chan struct{})
	s.holdRunner = hold
	defer func() {
		close(hold)
		s.Drain()
	}()

	var unknown *UnknownProgramError
	if _, err := s.Submit("t", "no-such-prog", "train"); !errors.As(err, &unknown) {
		t.Fatalf("unknown program: %v", err)
	}
	if _, err := s.Submit("t", "dijkstra", "no-such-input"); !errors.As(err, &unknown) {
		t.Fatalf("unknown input: %v", err)
	}

	// Fill the tenant's quota: one pinned in flight plus one queued. Wait
	// for the runner to pick up the first job so the second lands in the
	// (depth-1) queue, not a race.
	busy, err := s.Submit("quota-tenant", "dijkstra", "train")
	if err != nil {
		t.Fatal(err)
	}
	waitRunning(t, s, busy)
	if _, err := s.Submit("quota-tenant", "dijkstra", "train"); err != nil {
		t.Fatal(err)
	}
	var quota *QuotaError
	if _, err := s.Submit("quota-tenant", "dijkstra", "train"); !errors.As(err, &quota) {
		t.Fatalf("over-quota submit: %v", err)
	}
	// Another tenant is admitted on its own quota — but the queue (depth
	// 1) already holds the first tenant's waiting job.
	var full *QueueFullError
	if _, err := s.Submit("other-tenant", "dijkstra", "train"); !errors.As(err, &full) {
		t.Fatalf("queue-full submit: %v", err)
	}
}
