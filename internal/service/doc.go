// Package service turns the speculative runtime into a long-running
// multi-tenant region service: many concurrent region invocations over
// shared immutable state (one decoded interp.Program and one warmed
// specrt.WorkerPool per compiled program), with per-invocation address
// spaces, stats and tenant-labeled metrics keeping tenants isolated from
// one another.
//
// A Service owns a bounded job queue with admission control (per-tenant
// inflight quotas, queue-full backpressure, typed rejection errors) and a
// fixed set of runner goroutines, each executing one invocation at a time
// through core.Run. Drain performs a graceful shutdown: new submissions
// are refused, jobs still queued fail with ErrDraining, and in-flight
// invocations run to completion.
//
// The HTTP surface (Mount) exposes the service through the obs.Server's
// listener as a submit/poll JSON API — POST /submit, GET /poll?id=...,
// GET /service — documented with curl examples in docs/OPERATIONS.md.
package service
