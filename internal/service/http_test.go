package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"privateer/internal/obs"
)

// startAPI mounts a fresh service on an obs.Server bound to a free port and
// returns the service plus the base URL.
func startAPI(t *testing.T, cfg Config) (*Service, string) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg.Metrics = reg
	s := New(cfg)
	srv := obs.NewServer(reg)
	s.Mount(srv)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		s.Drain()
		_ = srv.Close()
	})
	return s, "http://" + addr
}

// submitHTTP POSTs a SubmitRequest and decodes the JSON reply.
func submitHTTP(t *testing.T, base string, req SubmitRequest) (int, JobView, errorReply) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(base+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /submit: %v", err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	var view JobView
	var fail errorReply
	if resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(buf.Bytes(), &view); err != nil {
			t.Fatalf("decode job view: %v (%s)", err, buf.String())
		}
	} else if err := json.Unmarshal(buf.Bytes(), &fail); err != nil {
		t.Fatalf("decode error reply: %v (%s)", err, buf.String())
	}
	return resp.StatusCode, view, fail
}

// TestHTTPSubmitPoll drives a job through the full HTTP lifecycle:
// 202 on submit, poll until done, and a sane /service snapshot.
func TestHTTPSubmitPoll(t *testing.T) {
	_, base := startAPI(t, Config{Workers: 2, Concurrency: 2, QueueDepth: 8})

	code, view, _ := submitHTTP(t, base, SubmitRequest{Tenant: "ops", Prog: "dijkstra", Input: "train"})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if view.ID == "" || view.Tenant != "ops" {
		t.Fatalf("submit view: %+v", view)
	}

	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(fmt.Sprintf("%s/poll?id=%s", base, view.ID))
		if err != nil {
			t.Fatalf("GET /poll: %v", err)
		}
		var polled JobView
		err = json.NewDecoder(resp.Body).Decode(&polled)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode poll: %v", err)
		}
		if polled.State == StateDone {
			if polled.Output == "" {
				t.Fatal("done job has empty output")
			}
			break
		}
		if polled.State == StateFailed {
			t.Fatalf("job failed: %s", polled.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", polled.State)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/service")
	if err != nil {
		t.Fatalf("GET /service: %v", err)
	}
	var sn Snapshot
	err = json.NewDecoder(resp.Body).Decode(&sn)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("decode snapshot: %v", err)
	}
	if sn.Jobs != 1 {
		t.Fatalf("snapshot jobs = %d, want 1", sn.Jobs)
	}
	if tc, ok := sn.Tenants["ops"]; !ok || tc.Completed != 1 {
		t.Fatalf("snapshot tenants: %+v", sn.Tenants)
	}
}

// TestHTTPErrors covers the API's failure statuses: wrong method, bad JSON,
// unknown program, missing/unknown poll IDs, and 503 once draining.
func TestHTTPErrors(t *testing.T) {
	s, base := startAPI(t, Config{Workers: 2, Concurrency: 1, QueueDepth: 4})

	if resp, err := http.Get(base + "/submit"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /submit: %d", resp.StatusCode)
		}
	}

	if resp, err := http.Post(base+"/submit", "application/json", bytes.NewReader([]byte("{"))); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad JSON: %d", resp.StatusCode)
		}
	}

	if code, _, fail := submitHTTP(t, base, SubmitRequest{Prog: "no-such"}); code != http.StatusBadRequest || fail.Error == "" {
		t.Fatalf("unknown program: %d %+v", code, fail)
	}

	for _, url := range []string{base + "/poll", base + "/poll?id=j999999"} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s: %d", url, resp.StatusCode)
		}
	}

	s.Drain()
	if code, _, _ := submitHTTP(t, base, SubmitRequest{Prog: "dijkstra", Input: "train"}); code != http.StatusServiceUnavailable {
		t.Fatalf("draining submit: %d", code)
	}
}

// TestHTTPBackpressure asserts 429 + Retry-After for queue-full rejections.
func TestHTTPBackpressure(t *testing.T) {
	s, base := startAPI(t, Config{Workers: 2, Concurrency: 1, QueueDepth: 1})
	hold := make(chan struct{})
	s.holdRunner = hold
	defer close(hold)

	code, view, _ := submitHTTP(t, base, SubmitRequest{Tenant: "a", Prog: "dijkstra", Input: "train"})
	if code != http.StatusAccepted {
		t.Fatalf("first submit: %d", code)
	}
	waitRunning(t, s, mustJob(t, s, view.ID))
	if code, _, _ := submitHTTP(t, base, SubmitRequest{Tenant: "b", Prog: "dijkstra", Input: "train"}); code != http.StatusAccepted {
		t.Fatalf("queued submit: %d", code)
	}
	body, _ := json.Marshal(SubmitRequest{Tenant: "c", Prog: "dijkstra", Input: "train"})
	resp, err := http.Post(base+"/submit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("backpressure submit: %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}

// mustJob resolves an ID the HTTP API returned back to the job handle.
func mustJob(t *testing.T, s *Service, id string) *Job {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s not found", id)
	}
	return j
}
