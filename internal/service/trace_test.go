package service

import (
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"

	"privateer/internal/obs"
)

// requiredPhases are the lifecycle phases every clean synchronous job must
// exhibit in its trace (recovery only appears when something misspeculated).
var requiredPhases = []string{
	obs.PhaseQueued, obs.PhaseSpawn, obs.PhaseRun,
	obs.PhaseValidate, obs.PhaseMerge, obs.PhaseCommit,
}

// TestJobTraceEndToEnd: a completed job's trace must contain every
// lifecycle phase, the /poll view must carry the same breakdown, and the
// numbers must be internally consistent.
func TestJobTraceEndToEnd(t *testing.T) {
	s := New(Config{Workers: 4, Concurrency: 1})
	defer s.Drain()
	job, err := s.Submit("t1", "dijkstra", "train")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	v := s.View(job)
	if v.State != StateDone {
		t.Fatalf("job %s: %s", v.State, v.Error)
	}
	if v.TraceID != job.ID {
		t.Fatalf("trace id %q, want job id %q", v.TraceID, job.ID)
	}
	for _, ph := range requiredPhases {
		if _, ok := v.PhaseNS[ph]; !ok {
			t.Errorf("JobView.PhaseNS missing phase %s: %v", ph, v.PhaseNS)
		}
	}
	events, ok := s.Trace(job.ID)
	if !ok || len(events) == 0 {
		t.Fatalf("no trace for job %s", job.ID)
	}
	if v.TraceEvents != int64(len(events)) || v.TraceDropped != 0 {
		t.Errorf("trace accounting: view says %d events %d dropped, ring holds %d",
			v.TraceEvents, v.TraceDropped, len(events))
	}
	got := obs.PhaseTotals(obs.SummarizePhases(events))
	for ph, ns := range v.PhaseNS {
		if got[ph] != ns {
			t.Errorf("phase %s: view %d ns, trace %d ns", ph, ns, got[ph])
		}
	}
	// An untraced job reports no trace.
	if _, ok := s.Trace("j999999"); ok {
		t.Error("unknown job must have no trace")
	}
}

// TestPlantedMisspecFlight: a service run with injected misspeculation
// must surface postmortems in the flight recorder carrying misspec counts
// and allocation-site attribution.
func TestPlantedMisspecFlight(t *testing.T) {
	s := New(Config{Workers: 4, Concurrency: 1, MisspecRate: 0.5, Seed: 7})
	defer s.Drain()
	job, err := s.Submit("t1", "dijkstra", "train")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	v := s.View(job)
	if v.State != StateDone {
		t.Fatalf("job %s: %s", v.State, v.Error)
	}
	if v.Misspecs == 0 {
		t.Fatal("planted misspeculation did not fire; raise MisspecRate")
	}
	st := s.Flight().State()
	if st.Total == 0 {
		t.Fatal("flight recorder captured nothing")
	}
	var pm *obs.Postmortem
	for i := range st.Postmortems {
		if st.Postmortems[i].JobID == job.ID {
			pm = &st.Postmortems[i]
			break
		}
	}
	if pm == nil {
		t.Fatalf("no postmortem for job %s in %d captures", job.ID, st.Retained)
	}
	if pm.Reason != "misspec" && pm.Reason != "fallback" {
		t.Errorf("postmortem reason %q", pm.Reason)
	}
	if pm.Misspecs == 0 {
		t.Error("postmortem carries no misspeculation count")
	}
	if len(pm.Attribution) == 0 {
		t.Error("postmortem carries no allocation-site attribution")
	}
	for _, at := range pm.Attribution {
		if at.Cause == "" || at.Count == 0 {
			t.Errorf("empty attribution row %+v", at)
		}
	}
	if len(pm.Events) == 0 || pm.TotalEvents == 0 {
		t.Error("postmortem carries no event snapshot")
	}
	if len(pm.Phases) == 0 {
		t.Error("postmortem carries no phase breakdown")
	}
}

// TestTraceOverflowDropAccounting (-race): concurrent jobs on deliberately
// tiny rings must account every overwritten event — the postmortem's
// captured-event count must equal exactly total minus dropped, and the
// service counters must equal the per-job sums.
func TestTraceOverflowDropAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(Config{
		Workers: 4, Concurrency: 4, Metrics: reg,
		TraceCapacity:    8, // far below the ~40 events a job emits
		PostmortemEvents: 64,
		MisspecRate:      0.5, Seed: 7, // every job lands in the recorder
	})
	defer s.Drain()

	const jobs = 12
	var wg sync.WaitGroup
	jl := make([]*Job, jobs)
	for i := 0; i < jobs; i++ {
		job, err := s.Submit("hammer", "dijkstra", "train")
		if err != nil {
			t.Fatal(err)
		}
		jl[i] = job
		wg.Add(1)
		go func(j *Job) { defer wg.Done(); <-j.Done() }(job)
	}
	wg.Wait()

	var sumTotal, sumDropped int64
	for _, job := range jl {
		v := s.View(job)
		if v.State != StateDone {
			t.Fatalf("job %s %s: %s", job.ID, v.State, v.Error)
		}
		if v.TraceDropped == 0 {
			t.Errorf("job %s: ring of 8 did not overflow (total %d)", job.ID, v.TraceEvents)
		}
		events, _ := s.Trace(job.ID)
		if got, want := int64(len(events)), v.TraceEvents-v.TraceDropped; got != want {
			t.Errorf("job %s: retained %d events, want total-dropped = %d", job.ID, got, want)
		}
		sumTotal += v.TraceEvents
		sumDropped += v.TraceDropped
	}

	// The flight recorder must have captured exactly what the ring still
	// held: total minus dropped, since PostmortemEvents exceeds the ring.
	st := s.Flight().State()
	byJob := map[string]obs.Postmortem{}
	for _, pm := range st.Postmortems {
		byJob[pm.JobID] = pm
	}
	for _, job := range jl {
		pm, ok := byJob[job.ID]
		if !ok {
			continue // evicted by a later capture; the retained ones must balance
		}
		if got, want := int64(len(pm.Events)), pm.TotalEvents-pm.DroppedEvents; got != want {
			t.Errorf("postmortem %s: %d events captured, want %d (total %d - dropped %d)",
				job.ID, got, want, pm.TotalEvents, pm.DroppedEvents)
		}
		if pm.DroppedEvents == 0 {
			t.Errorf("postmortem %s reports no drops from an overflowed ring", job.ID)
		}
	}

	// Service-level counters aggregate the same accounting.
	if got := reg.Counter("privateer_service_trace_events_total", "").Value(); got != sumTotal {
		t.Errorf("trace_events_total %d, want %d", got, sumTotal)
	}
	if got := reg.Counter("privateer_service_trace_dropped_events_total", "").Value(); got != sumDropped {
		t.Errorf("trace_dropped_events_total %d, want %d", got, sumDropped)
	}
}

// TestTracingDisabled: a negative TraceCapacity must disable per-job
// tracing without disturbing the job lifecycle.
func TestTracingDisabled(t *testing.T) {
	s := New(Config{Workers: 2, Concurrency: 1, TraceCapacity: -1})
	defer s.Drain()
	job, err := s.Submit("t1", "dijkstra", "train")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	v := s.View(job)
	if v.State != StateDone {
		t.Fatalf("job %s: %s", v.State, v.Error)
	}
	if v.TraceID != "" || v.TraceEvents != 0 || len(v.PhaseNS) != 0 {
		t.Errorf("untraced job leaked trace state: %+v", v)
	}
	if _, ok := s.Trace(job.ID); ok {
		t.Error("Trace must report false for an untraced job")
	}
}

// TestHTTPJobTraceAndFlight: the /jobs/{id}/trace endpoint must serve
// Chrome-shaped JSON with every lifecycle phase, reject malformed paths
// with 400 and unknown jobs with 404; /debug/flight must serve the
// recorder state.
func TestHTTPJobTraceAndFlight(t *testing.T) {
	s, base := startAPI(t, Config{Workers: 4, Concurrency: 1, MisspecRate: 0.5, Seed: 7})
	code, view, _ := submitHTTP(t, base, SubmitRequest{Tenant: "t1", Prog: "dijkstra", Input: "train"})
	if code != http.StatusAccepted {
		t.Fatalf("submit status %d", code)
	}
	job := mustJob(t, s, view.ID)
	waitDone(t, job)

	resp, err := http.Get(base + "/jobs/" + view.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s/trace: %d (%s)", view.ID, resp.StatusCode, body)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string `json:"name"`
			Phase string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Phase == "X" {
			seen[ev.Name] = true
		}
	}
	for _, ph := range requiredPhases {
		if !seen["phase: "+ph] {
			t.Errorf("trace missing synthesized slice for phase %s", ph)
		}
	}

	for path, want := range map[string]int{
		"/jobs/zzz/trace":           http.StatusNotFound,
		"/jobs/" + view.ID:          http.StatusBadRequest,
		"/jobs/" + view.ID + "/nah": http.StatusBadRequest,
	} {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: %d, want %d", path, resp.StatusCode, want)
		}
	}

	resp, err = http.Get(base + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	var st obs.FlightState
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/flight: %d, %v", resp.StatusCode, err)
	}
	if st.Total == 0 || len(st.Postmortems) == 0 {
		t.Errorf("flight state empty after a misspeculating job: %+v", st)
	}
}

// TestReadyzFlipsOnDrain: the readiness probe must answer 200 while
// serving and 503 once a drain begins.
func TestReadyzFlipsOnDrain(t *testing.T) {
	s, base := startAPI(t, Config{Workers: 2, Concurrency: 1})
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/readyz before drain: %d", resp.StatusCode)
	}
	if resp2, err := http.Get(base + "/healthz"); err != nil || resp2.StatusCode != http.StatusOK {
		t.Fatalf("/healthz: %v", err)
	} else {
		resp2.Body.Close()
	}
	s.Drain()
	resp, err = http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/readyz during drain: %d, want 503", resp.StatusCode)
	}
}
