package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/obs"
	"privateer/internal/progs"
	"privateer/internal/specrt"
)

// Defaults for Config's zero values.
const (
	// DefaultQueueDepth bounds the pending-job queue.
	DefaultQueueDepth = 64
	// DefaultConcurrency is the number of runner goroutines (concurrent
	// region invocations).
	DefaultConcurrency = 4
	// DefaultWorkers is the speculative worker fleet per invocation.
	DefaultWorkers = 4
	// DefaultTraceCapacity bounds each job's trace event ring. Per-job
	// tracing is always on; the ring grows lazily, so a short job costs
	// only the events it actually emits.
	DefaultTraceCapacity = 2048
)

// ErrDraining rejects work submitted (or still queued) after Drain began.
var ErrDraining = errors.New("service draining: not accepting jobs")

// QueueFullError rejects a submission that found the bounded queue at
// capacity: the client should back off and retry.
type QueueFullError struct {
	// Depth is the queue's capacity.
	Depth int
}

// Error describes the rejection, naming the saturated depth.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("queue full (depth %d): retry later", e.Depth)
}

// QuotaError rejects a submission that would exceed the tenant's inflight
// quota (queued + running jobs).
type QuotaError struct {
	// Tenant is the over-quota tenant.
	Tenant string
	// Limit is the tenant's inflight cap.
	Limit int
}

// Error describes the rejection, naming the tenant and its cap.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q at inflight quota (%d jobs)", e.Tenant, e.Limit)
}

// UnknownProgramError rejects a submission naming a program or input class
// the service does not serve.
type UnknownProgramError struct {
	// Name is the unrecognized program or input name.
	Name string
}

// Error describes the rejection, naming the unrecognized identifier.
func (e *UnknownProgramError) Error() string {
	return fmt.Sprintf("unknown program or input %q", e.Name)
}

// Config sizes a Service. Zero values select the defaults above.
type Config struct {
	// Workers is the speculative worker fleet per region invocation.
	Workers int
	// Concurrency is the number of runner goroutines: at most this many
	// region invocations execute at once.
	Concurrency int
	// QueueDepth bounds pending (admitted but not yet running) jobs;
	// submissions beyond it fail with QueueFullError.
	QueueDepth int
	// TenantInflight caps one tenant's queued-plus-running jobs; 0 means
	// no per-tenant quota.
	TenantInflight int
	// PoolSlots is the warmed worker-pool capacity per compiled program
	// (0 selects specrt.DefaultPoolSlots).
	PoolSlots int
	// Pipeline enables the pipelined committer inside each invocation.
	Pipeline bool
	// Metrics, when non-nil, receives the service's tenant-labeled metric
	// families alongside each invocation's runtime collectors.
	Metrics *obs.Registry
	// TraceCapacity bounds each job's trace event ring: 0 selects
	// DefaultTraceCapacity, negative disables per-job tracing entirely
	// (the obsoverhead benchmark's baseline leg uses that).
	TraceCapacity int
	// FlightEntries bounds the postmortem flight recorder ring (0 selects
	// obs.DefaultFlightEntries).
	FlightEntries int
	// PostmortemEvents bounds how many trailing trace events one
	// postmortem snapshots (0 selects obs.DefaultPostmortemEvents).
	PostmortemEvents int
	// MisspecRate injects artificial misspeculation into every invocation
	// at the given per-iteration probability (forwarded to the runtime) —
	// an operator drill knob for exercising the flight recorder.
	MisspecRate float64
	// Seed makes misspeculation injection deterministic.
	Seed uint64
}

// Job states reported by JobView.State.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one admitted region invocation. Mutable fields are guarded by the
// owning Service's mutex; external readers use View or Done.
type Job struct {
	// ID is the service-assigned job identifier.
	ID string
	// Tenant attributes the job to its submitter.
	Tenant string
	// Prog names the benchmark program to run.
	Prog string
	// Input is the program's input class.
	Input string

	state      string
	ret        uint64
	output     string
	errMsg     string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	warmSpawns int64
	done       chan struct{}

	// Per-job flight-recorder state: the bounded event ring the job's
	// tracer feeds (the job ID is the trace ID), and the derived phase
	// breakdown settled at finish.
	trace        *obs.Collector
	tracer       *obs.Tracer
	phases       []obs.PhaseSpan
	traceTotal   int64
	traceDropped int64
	misspecs     int64
	fallbacks    int64
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is a point-in-time JSON snapshot of a job.
type JobView struct {
	// ID is the service-assigned job identifier.
	ID string `json:"id"`
	// Tenant attributes the job to its submitter.
	Tenant string `json:"tenant"`
	// Prog names the benchmark program.
	Prog string `json:"prog"`
	// Input is the program's input class.
	Input string `json:"input"`
	// State is queued, running, done or failed.
	State string `json:"state"`
	// Ret is the invocation's return value; meaningful when done.
	Ret uint64 `json:"ret"`
	// Output is the program's collected output; meaningful when done.
	Output string `json:"output,omitempty"`
	// Error describes a failed job.
	Error string `json:"error,omitempty"`
	// QueueNS is time spent queued before a runner picked the job up.
	QueueNS int64 `json:"queue_ns"`
	// WallNS is time spent executing (so far, for a running job).
	WallNS int64 `json:"wall_ns"`
	// WarmSpawns counts this invocation's pool-satisfied worker spawns.
	WarmSpawns int64 `json:"warm_spawns"`
	// TraceID is the job's trace identifier (the job ID) when per-job
	// tracing is enabled; GET /jobs/{id}/trace serves the full stream.
	TraceID string `json:"trace_id,omitempty"`
	// PhaseNS breaks the job's time down by lifecycle phase (queued,
	// spawn, run, validate, merge, commit, recovery → summed span
	// nanoseconds); settled when the job reaches a terminal state.
	PhaseNS map[string]int64 `json:"phase_ns,omitempty"`
	// Misspecs counts the run's detected misspeculations.
	Misspecs int64 `json:"misspecs"`
	// TraceEvents is how many trace events the job emitted in all.
	TraceEvents int64 `json:"trace_events"`
	// TraceDropped is how many of those the bounded ring overwrote
	// before they could be read.
	TraceDropped int64 `json:"trace_dropped"`
}

// compiled is the shared immutable state for one (program, input) pair:
// the parallelized module, its process-wide decoded Program, and the
// warmed worker pool every invocation of it draws from.
type compiled struct {
	once sync.Once
	par  *core.Parallelized
	prog *interp.Program
	pool *specrt.WorkerPool
	err  error
}

// tenantCounts aggregates one tenant's job traffic for Snapshot.
type tenantCounts struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Inflight  int64 `json:"inflight"`
}

// Service is the multi-tenant region service: admission control in front
// of a bounded queue drained by a fixed runner fleet.
type Service struct {
	cfg Config

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	tenants  map[string]*tenantCounts
	programs map[string]*compiled

	queue     chan *Job
	drainFlag atomic.Bool
	// holdRunner, when non-nil, blocks each runner after it marks a job
	// running and before it executes — a seam for tests that need a job
	// pinned in flight (set before the first Submit; closed to release).
	holdRunner chan struct{}
	wg         sync.WaitGroup
	nextID     atomic.Int64
	inflight   atomic.Int64

	flight *obs.FlightRecorder

	mSubmitted    func(tenant string) obs.Counter
	mCompleted    func(tenant string) obs.Counter
	mFailed       func(tenant string) obs.Counter
	mRejected     func(reason string) obs.Counter
	mPhase        func(tenant, phase string) *obs.Histogram
	mInflight     obs.Gauge
	mWallNS       *obs.Histogram
	mQueueWait    *obs.Histogram
	mE2E          *obs.Histogram
	mWarm         obs.Counter
	mTraceEvents  obs.Counter
	mTraceDropped obs.Counter
}

// New starts a service: runner goroutines launch immediately and block on
// the empty queue. Shut down with Drain.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = DefaultConcurrency
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	s := &Service{
		cfg:      cfg,
		jobs:     map[string]*Job{},
		tenants:  map[string]*tenantCounts{},
		programs: map[string]*compiled{},
		queue:    make(chan *Job, cfg.QueueDepth),
	}
	reg := cfg.Metrics
	s.mSubmitted = func(t string) obs.Counter {
		return reg.Counter("privateer_service_jobs_submitted_total",
			"Jobs admitted into the queue, by tenant.", "tenant", t)
	}
	s.mCompleted = func(t string) obs.Counter {
		return reg.Counter("privateer_service_jobs_completed_total",
			"Jobs finished successfully, by tenant.", "tenant", t)
	}
	s.mFailed = func(t string) obs.Counter {
		return reg.Counter("privateer_service_jobs_failed_total",
			"Jobs that reached a terminal error, by tenant.", "tenant", t)
	}
	s.mRejected = func(reason string) obs.Counter {
		return reg.Counter("privateer_service_jobs_rejected_total",
			"Submissions refused at admission, by reason (unknown_program, quota, queue_full, draining).",
			"reason", reason)
	}
	s.mPhase = func(tenant, phase string) *obs.Histogram {
		return reg.Histogram("privateer_service_phase_ns",
			"Per-job lifecycle-phase latency in nanoseconds, by tenant and phase (queued, spawn, run, validate, merge, commit, recovery).",
			obs.LatencyBuckets, "tenant", tenant, "phase", phase)
	}
	s.mInflight = reg.Gauge("privateer_service_inflight",
		"Region invocations currently executing.")
	s.mWallNS = reg.Histogram("privateer_service_job_wall_ns",
		"Wall-clock nanoseconds per job from admission to terminal state.", nil)
	s.mQueueWait = reg.Histogram("privateer_service_queue_wait_ns",
		"Nanoseconds each job waited in the queue before a runner picked it up.",
		obs.LatencyBuckets)
	s.mE2E = reg.Histogram("privateer_service_e2e_ns",
		"End-to-end nanoseconds per job, submission to terminal state.",
		obs.LatencyBuckets)
	s.mWarm = reg.Counter("privateer_service_warm_spawns_total",
		"Worker spawns satisfied from warmed pools across all invocations.")
	s.mTraceEvents = reg.Counter("privateer_service_trace_events_total",
		"Trace events emitted across all per-job rings, including overwritten ones.")
	s.mTraceDropped = reg.Counter("privateer_service_trace_dropped_events_total",
		"Trace events the bounded per-job rings overwrote before they could be read.")
	s.flight = obs.NewFlightRecorder(cfg.FlightEntries)
	s.flight.PublishMetrics(reg)
	reg.GaugeFunc("privateer_service_queue_depth",
		"Jobs admitted but not yet running.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("privateer_service_draining",
		"1 while a graceful drain is in progress, else 0.",
		func() float64 {
			if s.drainFlag.Load() {
				return 1
			}
			return 0
		})
	for i := 0; i < cfg.Concurrency; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// lookup validates a program/input pair against the benchmark registry.
func lookup(prog, input string) (*progs.Program, progs.Input, error) {
	p := progs.ByName(prog)
	if p == nil {
		return nil, progs.Input{}, &UnknownProgramError{Name: prog}
	}
	switch input {
	case "train":
		return p, p.Train, nil
	case "", "ref":
		return p, p.Ref, nil
	case "alt":
		return p, p.Alt, nil
	case "huge":
		return p, p.Huge, nil
	}
	return nil, progs.Input{}, &UnknownProgramError{Name: input}
}

// Submit admits a job or returns a typed rejection: UnknownProgramError,
// QuotaError, QueueFullError or ErrDraining. tenant "" is the tenant
// "default"; input "" is the ref input class.
func (s *Service) Submit(tenant, prog, input string) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	if input == "" {
		input = "ref"
	}
	if _, _, err := lookup(prog, input); err != nil {
		s.mRejected("unknown_program").Inc()
		s.recordRejection(tenant, prog, input, err)
		return nil, err
	}
	job := &Job{
		Tenant: tenant, Prog: prog, Input: input,
		state: StateQueued, submitted: time.Now(),
		done: make(chan struct{}),
	}
	// Tracing is per job and on by default: the tracer's timebase starts
	// here, so queue wait is the first thing the trace sees. The job ID
	// (assigned under the lock below) doubles as the trace ID.
	if s.cfg.TraceCapacity >= 0 {
		capacity := s.cfg.TraceCapacity
		if capacity == 0 {
			capacity = DefaultTraceCapacity
		}
		job.trace = obs.NewCollector(capacity)
		job.tracer = obs.NewTracer(job.trace)
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.mRejected("draining").Inc()
		s.recordRejection(tenant, prog, input, ErrDraining)
		return nil, ErrDraining
	}
	tc := s.tenants[tenant]
	if tc == nil {
		tc = &tenantCounts{}
		s.tenants[tenant] = tc
	}
	if q := s.cfg.TenantInflight; q > 0 && tc.Inflight >= int64(q) {
		s.mu.Unlock()
		s.mRejected("quota").Inc()
		s.recordRejection(tenant, prog, input, &QuotaError{Tenant: tenant, Limit: q})
		return nil, &QuotaError{Tenant: tenant, Limit: q}
	}
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		s.mRejected("queue_full").Inc()
		s.recordRejection(tenant, prog, input, &QueueFullError{Depth: cap(s.queue)})
		return nil, &QueueFullError{Depth: cap(s.queue)}
	}
	job.ID = fmt.Sprintf("j%06d", s.nextID.Add(1))
	s.jobs[job.ID] = job
	tc.Submitted++
	tc.Inflight++
	s.mu.Unlock()
	s.mSubmitted(tenant).Inc()
	return job, nil
}

// Job returns the job with the given ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// View snapshots j for reporting.
func (s *Service) View(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := JobView{
		ID: j.ID, Tenant: j.Tenant, Prog: j.Prog, Input: j.Input,
		State: j.state, Ret: j.ret, Output: j.output, Error: j.errMsg,
		WarmSpawns: j.warmSpawns, Misspecs: j.misspecs,
		PhaseNS:     obs.PhaseTotals(j.phases),
		TraceEvents: j.traceTotal, TraceDropped: j.traceDropped,
	}
	if j.trace != nil {
		v.TraceID = j.ID
	}
	switch j.state {
	case StateQueued:
		v.QueueNS = int64(time.Since(j.submitted))
	case StateRunning:
		v.QueueNS = int64(j.started.Sub(j.submitted))
		v.WallNS = int64(time.Since(j.started))
	default:
		v.QueueNS = int64(j.started.Sub(j.submitted))
		v.WallNS = int64(j.finished.Sub(j.started))
	}
	return v
}

// Drain performs a graceful shutdown: no new submissions, still-queued
// jobs fail with ErrDraining, in-flight invocations run to completion.
// Returns when every runner has exited; idempotent.
func (s *Service) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.drainFlag.Store(true)
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// runner drains the queue, executing one invocation at a time.
func (s *Service) runner() {
	defer s.wg.Done()
	for job := range s.queue {
		if s.drainFlag.Load() {
			// Admitted before the drain, never started: typed rejection.
			s.finish(job, runResult{err: ErrDraining})
			continue
		}
		s.run(job)
	}
}

// compiledFor returns (compiling on first use) the shared artifacts for a
// program/input pair.
func (s *Service) compiledFor(prog, input string) (*compiled, error) {
	key := prog + "/" + input
	s.mu.Lock()
	c := s.programs[key]
	if c == nil {
		c = &compiled{}
		s.programs[key] = c
	}
	s.mu.Unlock()
	c.once.Do(func() {
		p, in, err := lookup(prog, input)
		if err != nil {
			c.err = err
			return
		}
		par, err := core.Parallelize(p.Build(in), core.Options{})
		if err != nil {
			c.err = fmt.Errorf("compiling %s/%s: %w", prog, input, err)
			return
		}
		c.par = par
		c.prog = interp.SharedProgram(par.Mod)
		c.pool = specrt.NewWorkerPool(s.cfg.PoolSlots)
	})
	return c, c.err
}

// run executes one admitted job through the speculative runtime.
func (s *Service) run(job *Job) {
	s.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	s.mu.Unlock()
	// The queue-wait phase closes the moment a runner picks the job up;
	// its span runs from the tracer's epoch (submission) to now.
	if tr := job.tracer; tr.On() {
		tr.Emit(obs.Event{Kind: obs.KJobPhase, TimeNS: 0, DurNS: tr.Now(),
			Invocation: -1, Worker: -1, Iter: -1, Cause: obs.PhaseQueued})
	}
	if s.holdRunner != nil {
		<-s.holdRunner
	}
	s.inflight.Add(1)
	s.mInflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.mInflight.Add(-1)
	}()

	c, err := s.compiledFor(job.Prog, job.Input)
	if err != nil {
		s.finish(job, runResult{err: err})
		return
	}
	rt, ret, err := core.Run(c.par, specrt.Config{
		Workers:     s.cfg.Workers,
		Pipeline:    s.cfg.Pipeline,
		Program:     c.prog,
		Pool:        c.pool,
		Metrics:     s.cfg.Metrics,
		Trace:       job.tracer,
		MisspecRate: s.cfg.MisspecRate,
		Seed:        s.cfg.Seed,
	})
	res := runResult{ret: ret, err: err}
	if rt != nil {
		res.out = rt.Output()
		st := rt.Stats.Snapshot()
		res.warm = st.WarmSpawns
		res.misspecs = st.Misspecs
		res.fallbacks = st.SequentialFallbacks
		res.sites = rt.MisspecSites()
	}
	s.finish(job, res)
}

// runResult carries one invocation's outcome into finish: the return
// value and output, warm-spawn and misspeculation accounting, the
// misspeculation-attribution table, and the terminal error if any.
type runResult struct {
	ret       uint64
	out       string
	warm      int64
	misspecs  int64
	fallbacks int64
	sites     []specrt.MisspecSiteRow
	err       error
}

// finish moves a job to its terminal state and settles the accounting:
// tenant counters, latency histograms, the job's phase breakdown, and —
// when the job misspeculated, fell back, or failed — a flight-recorder
// postmortem.
func (s *Service) finish(job *Job, res runResult) {
	now := time.Now()
	var phases []obs.PhaseSpan
	if job.trace != nil {
		phases = obs.SummarizePhases(job.trace.Events())
	}
	s.mu.Lock()
	if job.started.IsZero() {
		job.started = now
	}
	job.finished = now
	job.ret = res.ret
	job.output = res.out
	job.warmSpawns = res.warm
	job.misspecs = res.misspecs
	job.fallbacks = res.fallbacks
	job.phases = phases
	if job.trace != nil {
		job.traceTotal = job.trace.Total()
		job.traceDropped = job.trace.Dropped()
	}
	tc := s.tenants[job.Tenant]
	tc.Inflight--
	if res.err != nil {
		job.state = StateFailed
		job.errMsg = res.err.Error()
		tc.Failed++
	} else {
		job.state = StateDone
		tc.Completed++
	}
	wall := int64(now.Sub(job.submitted))
	queueWait := int64(job.started.Sub(job.submitted))
	traceTotal, traceDropped := job.traceTotal, job.traceDropped
	s.mu.Unlock()
	if res.err != nil {
		s.mFailed(job.Tenant).Inc()
	} else {
		s.mCompleted(job.Tenant).Inc()
	}
	s.mWallNS.Observe(wall)
	s.mQueueWait.Observe(queueWait)
	s.mE2E.Observe(wall)
	s.mWarm.Add(res.warm)
	s.mTraceEvents.Add(traceTotal)
	s.mTraceDropped.Add(traceDropped)
	for _, ps := range phases {
		s.mPhase(job.Tenant, ps.Phase).Observe(ps.NS)
	}
	if reason := postmortemReason(res); reason != "" {
		s.recordPostmortem(job, res, reason)
	}
	close(job.done)
}

// postmortemReason classifies a finished job for the flight recorder, or
// returns "" for a clean run that needs no capture.
func postmortemReason(res runResult) string {
	switch {
	case errors.Is(res.err, ErrDraining):
		return "rejected"
	case res.err != nil:
		return "failed"
	case res.fallbacks > 0:
		return "fallback"
	case res.misspecs > 0:
		return "misspec"
	}
	return ""
}

// postmortemTail bounds a postmortem's event snapshot to the configured
// trailing window.
func (s *Service) postmortemTail(events []obs.Event) []obs.Event {
	limit := s.cfg.PostmortemEvents
	if limit <= 0 {
		limit = obs.DefaultPostmortemEvents
	}
	if len(events) > limit {
		events = events[len(events)-limit:]
	}
	return events
}

// recordPostmortem snapshots a troubled job — trace tail, phase breakdown,
// misspeculation attribution — into the flight recorder.
func (s *Service) recordPostmortem(job *Job, res runResult, reason string) {
	pm := obs.Postmortem{
		JobID: job.ID, Tenant: job.Tenant, Prog: job.Prog, Input: job.Input,
		Reason: reason, UnixNS: time.Now().UnixNano(),
		Misspecs: res.misspecs, Fallbacks: res.fallbacks,
		Phases: job.phases,
	}
	if res.err != nil {
		pm.Error = res.err.Error()
	}
	if job.trace != nil {
		pm.Events = s.postmortemTail(job.trace.Events())
		pm.TotalEvents = job.trace.Total()
		pm.DroppedEvents = job.trace.Dropped()
	}
	for _, row := range res.sites {
		pm.Attribution = append(pm.Attribution, obs.MisspecAttribution{
			Region: row.Region, Cause: row.Cause, Site: row.Site,
			Object: row.Object, Count: row.Count,
		})
	}
	s.flight.Record(pm)
}

// recordRejection captures an admission rejection in the flight recorder:
// no job ID was ever assigned, but the tenant's refused work is still
// evidence worth keeping.
func (s *Service) recordRejection(tenant, prog, input string, err error) {
	s.flight.Record(obs.Postmortem{
		Tenant: tenant, Prog: prog, Input: input,
		Reason: "rejected", Error: err.Error(),
		UnixNS: time.Now().UnixNano(),
	})
}

// Trace returns a completed or in-flight job's retained trace events. The
// second result is false when the ID is unknown or the job was submitted
// with tracing disabled.
func (s *Service) Trace(id string) ([]obs.Event, bool) {
	s.mu.Lock()
	job := s.jobs[id]
	s.mu.Unlock()
	if job == nil || job.trace == nil {
		return nil, false
	}
	return job.trace.Events(), true
}

// Flight returns the service's flight recorder.
func (s *Service) Flight() *obs.FlightRecorder { return s.flight }

// PoolView is one compiled program's pool traffic in a Snapshot.
type PoolView struct {
	// Program is the "prog/input" cache key.
	Program string `json:"program"`
	// Pool is the warmed worker pool's traffic counters.
	Pool specrt.WorkerPoolStats `json:"pool"`
}

// Snapshot is the service-level state document served at /service.
type Snapshot struct {
	// Draining is true once a graceful drain has begun.
	Draining bool `json:"draining"`
	// QueueDepth is the number of admitted-but-not-running jobs.
	QueueDepth int `json:"queue_depth"`
	// QueueCap is the queue's bound.
	QueueCap int `json:"queue_cap"`
	// Inflight is the number of invocations executing right now.
	Inflight int64 `json:"inflight"`
	// Jobs counts every job the service still remembers.
	Jobs int `json:"jobs"`
	// Tenants maps tenant name to its traffic counts.
	Tenants map[string]tenantCounts `json:"tenants"`
	// Programs lists the compiled-program cache with per-program warmed
	// pool traffic, sorted by cache key.
	Programs []PoolView `json:"programs"`
}

// Snapshot reports the service's current state.
func (s *Service) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := Snapshot{
		Draining:   s.draining,
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Inflight:   s.inflight.Load(),
		Jobs:       len(s.jobs),
		Tenants:    map[string]tenantCounts{},
	}
	for name, tc := range s.tenants {
		sn.Tenants[name] = *tc
	}
	for key, c := range s.programs {
		pv := PoolView{Program: key}
		if c.pool != nil {
			pv.Pool = c.pool.Snapshot()
		}
		sn.Programs = append(sn.Programs, pv)
	}
	sort.Slice(sn.Programs, func(i, j int) bool {
		return sn.Programs[i].Program < sn.Programs[j].Program
	})
	return sn
}
