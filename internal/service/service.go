package service

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/obs"
	"privateer/internal/progs"
	"privateer/internal/specrt"
)

// Defaults for Config's zero values.
const (
	// DefaultQueueDepth bounds the pending-job queue.
	DefaultQueueDepth = 64
	// DefaultConcurrency is the number of runner goroutines (concurrent
	// region invocations).
	DefaultConcurrency = 4
	// DefaultWorkers is the speculative worker fleet per invocation.
	DefaultWorkers = 4
)

// ErrDraining rejects work submitted (or still queued) after Drain began.
var ErrDraining = errors.New("service draining: not accepting jobs")

// QueueFullError rejects a submission that found the bounded queue at
// capacity: the client should back off and retry.
type QueueFullError struct {
	// Depth is the queue's capacity.
	Depth int
}

// Error describes the rejection, naming the saturated depth.
func (e *QueueFullError) Error() string {
	return fmt.Sprintf("queue full (depth %d): retry later", e.Depth)
}

// QuotaError rejects a submission that would exceed the tenant's inflight
// quota (queued + running jobs).
type QuotaError struct {
	// Tenant is the over-quota tenant.
	Tenant string
	// Limit is the tenant's inflight cap.
	Limit int
}

// Error describes the rejection, naming the tenant and its cap.
func (e *QuotaError) Error() string {
	return fmt.Sprintf("tenant %q at inflight quota (%d jobs)", e.Tenant, e.Limit)
}

// UnknownProgramError rejects a submission naming a program or input class
// the service does not serve.
type UnknownProgramError struct {
	// Name is the unrecognized program or input name.
	Name string
}

// Error describes the rejection, naming the unrecognized identifier.
func (e *UnknownProgramError) Error() string {
	return fmt.Sprintf("unknown program or input %q", e.Name)
}

// Config sizes a Service. Zero values select the defaults above.
type Config struct {
	// Workers is the speculative worker fleet per region invocation.
	Workers int
	// Concurrency is the number of runner goroutines: at most this many
	// region invocations execute at once.
	Concurrency int
	// QueueDepth bounds pending (admitted but not yet running) jobs;
	// submissions beyond it fail with QueueFullError.
	QueueDepth int
	// TenantInflight caps one tenant's queued-plus-running jobs; 0 means
	// no per-tenant quota.
	TenantInflight int
	// PoolSlots is the warmed worker-pool capacity per compiled program
	// (0 selects specrt.DefaultPoolSlots).
	PoolSlots int
	// Pipeline enables the pipelined committer inside each invocation.
	Pipeline bool
	// Metrics, when non-nil, receives the service's tenant-labeled metric
	// families alongside each invocation's runtime collectors.
	Metrics *obs.Registry
}

// Job states reported by JobView.State.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one admitted region invocation. Mutable fields are guarded by the
// owning Service's mutex; external readers use View or Done.
type Job struct {
	// ID is the service-assigned job identifier.
	ID string
	// Tenant attributes the job to its submitter.
	Tenant string
	// Prog names the benchmark program to run.
	Prog string
	// Input is the program's input class.
	Input string

	state      string
	ret        uint64
	output     string
	errMsg     string
	submitted  time.Time
	started    time.Time
	finished   time.Time
	warmSpawns int64
	done       chan struct{}
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// JobView is a point-in-time JSON snapshot of a job.
type JobView struct {
	// ID is the service-assigned job identifier.
	ID string `json:"id"`
	// Tenant attributes the job to its submitter.
	Tenant string `json:"tenant"`
	// Prog names the benchmark program.
	Prog string `json:"prog"`
	// Input is the program's input class.
	Input string `json:"input"`
	// State is queued, running, done or failed.
	State string `json:"state"`
	// Ret is the invocation's return value; meaningful when done.
	Ret uint64 `json:"ret"`
	// Output is the program's collected output; meaningful when done.
	Output string `json:"output,omitempty"`
	// Error describes a failed job.
	Error string `json:"error,omitempty"`
	// QueueNS is time spent queued before a runner picked the job up.
	QueueNS int64 `json:"queue_ns"`
	// WallNS is time spent executing (so far, for a running job).
	WallNS int64 `json:"wall_ns"`
	// WarmSpawns counts this invocation's pool-satisfied worker spawns.
	WarmSpawns int64 `json:"warm_spawns"`
}

// compiled is the shared immutable state for one (program, input) pair:
// the parallelized module, its process-wide decoded Program, and the
// warmed worker pool every invocation of it draws from.
type compiled struct {
	once sync.Once
	par  *core.Parallelized
	prog *interp.Program
	pool *specrt.WorkerPool
	err  error
}

// tenantCounts aggregates one tenant's job traffic for Snapshot.
type tenantCounts struct {
	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Inflight  int64 `json:"inflight"`
}

// Service is the multi-tenant region service: admission control in front
// of a bounded queue drained by a fixed runner fleet.
type Service struct {
	cfg Config

	mu       sync.Mutex
	draining bool
	jobs     map[string]*Job
	tenants  map[string]*tenantCounts
	programs map[string]*compiled

	queue     chan *Job
	drainFlag atomic.Bool
	// holdRunner, when non-nil, blocks each runner after it marks a job
	// running and before it executes — a seam for tests that need a job
	// pinned in flight (set before the first Submit; closed to release).
	holdRunner chan struct{}
	wg         sync.WaitGroup
	nextID     atomic.Int64
	inflight   atomic.Int64

	mSubmitted func(tenant string) obs.Counter
	mCompleted func(tenant string) obs.Counter
	mFailed    func(tenant string) obs.Counter
	mRejected  func(reason string) obs.Counter
	mInflight  obs.Gauge
	mWallNS    *obs.Histogram
	mWarm      obs.Counter
}

// New starts a service: runner goroutines launch immediately and block on
// the empty queue. Shut down with Drain.
func New(cfg Config) *Service {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = DefaultConcurrency
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	s := &Service{
		cfg:      cfg,
		jobs:     map[string]*Job{},
		tenants:  map[string]*tenantCounts{},
		programs: map[string]*compiled{},
		queue:    make(chan *Job, cfg.QueueDepth),
	}
	reg := cfg.Metrics
	s.mSubmitted = func(t string) obs.Counter {
		return reg.Counter("privateer_service_jobs_submitted_total",
			"Jobs admitted into the queue, by tenant.", "tenant", t)
	}
	s.mCompleted = func(t string) obs.Counter {
		return reg.Counter("privateer_service_jobs_completed_total",
			"Jobs finished successfully, by tenant.", "tenant", t)
	}
	s.mFailed = func(t string) obs.Counter {
		return reg.Counter("privateer_service_jobs_failed_total",
			"Jobs that reached a terminal error, by tenant.", "tenant", t)
	}
	s.mRejected = func(reason string) obs.Counter {
		return reg.Counter("privateer_service_jobs_rejected_total",
			"Submissions refused at admission, by reason (unknown_program, quota, queue_full, draining).",
			"reason", reason)
	}
	s.mInflight = reg.Gauge("privateer_service_inflight",
		"Region invocations currently executing.")
	s.mWallNS = reg.Histogram("privateer_service_job_wall_ns",
		"Wall-clock nanoseconds per job from admission to terminal state.", nil)
	s.mWarm = reg.Counter("privateer_service_warm_spawns_total",
		"Worker spawns satisfied from warmed pools across all invocations.")
	reg.GaugeFunc("privateer_service_queue_depth",
		"Jobs admitted but not yet running.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc("privateer_service_draining",
		"1 while a graceful drain is in progress, else 0.",
		func() float64 {
			if s.drainFlag.Load() {
				return 1
			}
			return 0
		})
	for i := 0; i < cfg.Concurrency; i++ {
		s.wg.Add(1)
		go s.runner()
	}
	return s
}

// lookup validates a program/input pair against the benchmark registry.
func lookup(prog, input string) (*progs.Program, progs.Input, error) {
	p := progs.ByName(prog)
	if p == nil {
		return nil, progs.Input{}, &UnknownProgramError{Name: prog}
	}
	switch input {
	case "train":
		return p, p.Train, nil
	case "", "ref":
		return p, p.Ref, nil
	case "alt":
		return p, p.Alt, nil
	case "huge":
		return p, p.Huge, nil
	}
	return nil, progs.Input{}, &UnknownProgramError{Name: input}
}

// Submit admits a job or returns a typed rejection: UnknownProgramError,
// QuotaError, QueueFullError or ErrDraining. tenant "" is the tenant
// "default"; input "" is the ref input class.
func (s *Service) Submit(tenant, prog, input string) (*Job, error) {
	if tenant == "" {
		tenant = "default"
	}
	if input == "" {
		input = "ref"
	}
	if _, _, err := lookup(prog, input); err != nil {
		s.mRejected("unknown_program").Inc()
		return nil, err
	}
	job := &Job{
		Tenant: tenant, Prog: prog, Input: input,
		state: StateQueued, submitted: time.Now(),
		done: make(chan struct{}),
	}
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.mRejected("draining").Inc()
		return nil, ErrDraining
	}
	tc := s.tenants[tenant]
	if tc == nil {
		tc = &tenantCounts{}
		s.tenants[tenant] = tc
	}
	if q := s.cfg.TenantInflight; q > 0 && tc.Inflight >= int64(q) {
		s.mu.Unlock()
		s.mRejected("quota").Inc()
		return nil, &QuotaError{Tenant: tenant, Limit: q}
	}
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		s.mRejected("queue_full").Inc()
		return nil, &QueueFullError{Depth: cap(s.queue)}
	}
	job.ID = fmt.Sprintf("j%06d", s.nextID.Add(1))
	s.jobs[job.ID] = job
	tc.Submitted++
	tc.Inflight++
	s.mu.Unlock()
	s.mSubmitted(tenant).Inc()
	return job, nil
}

// Job returns the job with the given ID.
func (s *Service) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// View snapshots j for reporting.
func (s *Service) View(j *Job) JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := JobView{
		ID: j.ID, Tenant: j.Tenant, Prog: j.Prog, Input: j.Input,
		State: j.state, Ret: j.ret, Output: j.output, Error: j.errMsg,
		WarmSpawns: j.warmSpawns,
	}
	switch j.state {
	case StateQueued:
		v.QueueNS = int64(time.Since(j.submitted))
	case StateRunning:
		v.QueueNS = int64(j.started.Sub(j.submitted))
		v.WallNS = int64(time.Since(j.started))
	default:
		v.QueueNS = int64(j.started.Sub(j.submitted))
		v.WallNS = int64(j.finished.Sub(j.started))
	}
	return v
}

// Drain performs a graceful shutdown: no new submissions, still-queued
// jobs fail with ErrDraining, in-flight invocations run to completion.
// Returns when every runner has exited; idempotent.
func (s *Service) Drain() {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		s.drainFlag.Store(true)
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// runner drains the queue, executing one invocation at a time.
func (s *Service) runner() {
	defer s.wg.Done()
	for job := range s.queue {
		if s.drainFlag.Load() {
			// Admitted before the drain, never started: typed rejection.
			s.finish(job, 0, "", 0, ErrDraining)
			continue
		}
		s.run(job)
	}
}

// compiledFor returns (compiling on first use) the shared artifacts for a
// program/input pair.
func (s *Service) compiledFor(prog, input string) (*compiled, error) {
	key := prog + "/" + input
	s.mu.Lock()
	c := s.programs[key]
	if c == nil {
		c = &compiled{}
		s.programs[key] = c
	}
	s.mu.Unlock()
	c.once.Do(func() {
		p, in, err := lookup(prog, input)
		if err != nil {
			c.err = err
			return
		}
		par, err := core.Parallelize(p.Build(in), core.Options{})
		if err != nil {
			c.err = fmt.Errorf("compiling %s/%s: %w", prog, input, err)
			return
		}
		c.par = par
		c.prog = interp.SharedProgram(par.Mod)
		c.pool = specrt.NewWorkerPool(s.cfg.PoolSlots)
	})
	return c, c.err
}

// run executes one admitted job through the speculative runtime.
func (s *Service) run(job *Job) {
	s.mu.Lock()
	job.state = StateRunning
	job.started = time.Now()
	s.mu.Unlock()
	if s.holdRunner != nil {
		<-s.holdRunner
	}
	s.inflight.Add(1)
	s.mInflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		s.mInflight.Add(-1)
	}()

	c, err := s.compiledFor(job.Prog, job.Input)
	if err != nil {
		s.finish(job, 0, "", 0, err)
		return
	}
	rt, ret, err := core.Run(c.par, specrt.Config{
		Workers:  s.cfg.Workers,
		Pipeline: s.cfg.Pipeline,
		Program:  c.prog,
		Pool:     c.pool,
		Metrics:  s.cfg.Metrics,
	})
	var out string
	var warm int64
	if rt != nil {
		out = rt.Output()
		warm = rt.Stats.Snapshot().WarmSpawns
	}
	s.finish(job, ret, out, warm, err)
}

// finish moves a job to its terminal state and settles the accounting.
func (s *Service) finish(job *Job, ret uint64, out string, warm int64, err error) {
	now := time.Now()
	s.mu.Lock()
	if job.started.IsZero() {
		job.started = now
	}
	job.finished = now
	job.ret = ret
	job.output = out
	job.warmSpawns = warm
	tc := s.tenants[job.Tenant]
	tc.Inflight--
	if err != nil {
		job.state = StateFailed
		job.errMsg = err.Error()
		tc.Failed++
	} else {
		job.state = StateDone
		tc.Completed++
	}
	wall := int64(now.Sub(job.submitted))
	s.mu.Unlock()
	if err != nil {
		s.mFailed(job.Tenant).Inc()
	} else {
		s.mCompleted(job.Tenant).Inc()
	}
	s.mWallNS.Observe(wall)
	s.mWarm.Add(warm)
	close(job.done)
}

// PoolView is one compiled program's pool traffic in a Snapshot.
type PoolView struct {
	// Program is the "prog/input" cache key.
	Program string `json:"program"`
	// Pool is the warmed worker pool's traffic counters.
	Pool specrt.WorkerPoolStats `json:"pool"`
}

// Snapshot is the service-level state document served at /service.
type Snapshot struct {
	// Draining is true once a graceful drain has begun.
	Draining bool `json:"draining"`
	// QueueDepth is the number of admitted-but-not-running jobs.
	QueueDepth int `json:"queue_depth"`
	// QueueCap is the queue's bound.
	QueueCap int `json:"queue_cap"`
	// Inflight is the number of invocations executing right now.
	Inflight int64 `json:"inflight"`
	// Jobs counts every job the service still remembers.
	Jobs int `json:"jobs"`
	// Tenants maps tenant name to its traffic counts.
	Tenants map[string]tenantCounts `json:"tenants"`
	// Programs lists the compiled-program cache with per-program warmed
	// pool traffic, sorted by cache key.
	Programs []PoolView `json:"programs"`
}

// Snapshot reports the service's current state.
func (s *Service) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := Snapshot{
		Draining:   s.draining,
		QueueDepth: len(s.queue),
		QueueCap:   cap(s.queue),
		Inflight:   s.inflight.Load(),
		Jobs:       len(s.jobs),
		Tenants:    map[string]tenantCounts{},
	}
	for name, tc := range s.tenants {
		sn.Tenants[name] = *tc
	}
	for key, c := range s.programs {
		pv := PoolView{Program: key}
		if c.pool != nil {
			pv.Pool = c.pool.Snapshot()
		}
		sn.Programs = append(sn.Programs, pv)
	}
	sort.Slice(sn.Programs, func(i, j int) bool {
		return sn.Programs[i].Program < sn.Programs[j].Program
	})
	return sn
}
