// Package classify implements section 4.2 of the paper: computing the read,
// write and reduction footprints of a loop (Algorithm 2, getFootprint) and
// partitioning the loop's memory footprint into the five logical heaps —
// short-lived, reduction, unrestricted, private and read-only (Algorithm 1,
// classify). The result is a heap assignment, the compiler artifact that the
// privatizing transformation and the runtime system share.
package classify

import (
	"fmt"
	"sort"
	"strings"

	"privateer/internal/analysis"
	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// Footprint is the result of Algorithm 2 for one loop or one instruction:
// the sets of memory objects read, written, and updated by syntactic
// reduction sequences.
type Footprint struct {
	// Read holds objects read by non-reduction loads.
	Read profiling.ObjectSet
	// Write holds objects written by non-reduction stores.
	Write profiling.ObjectSet
	// Redux holds objects accessed only via load-op-store sequences with a
	// single associative, commutative operator.
	Redux profiling.ObjectSet
	// ReduxOps records the reduction operator per object (for heap
	// initialization and merging at run time).
	ReduxOps map[profiling.Object]ir.ReduxKind
}

func newFootprint() *Footprint {
	return &Footprint{
		Read:     profiling.ObjectSet{},
		Write:    profiling.ObjectSet{},
		Redux:    profiling.ObjectSet{},
		ReduxOps: map[profiling.Object]ir.ReduxKind{},
	}
}

// Assignment is a heap assignment: the five-way partition of a loop's
// memory footprint (Figure 4 of the paper), plus the supporting facts the
// transformation needs.
type Assignment struct {
	// Loop is the classified loop.
	Loop *ir.Loop
	// ShortLived, Redux, Unrestricted, Private and ReadOnly partition the
	// footprint.
	ShortLived   profiling.ObjectSet // iteration-lifetime allocations
	Redux        profiling.ObjectSet // reduction accumulators
	Unrestricted profiling.ObjectSet // everything the other heaps reject
	Private      profiling.ObjectSet // privatizable (write-before-read)
	ReadOnly     profiling.ObjectSet // never written in the region
	// ReduxOps gives the operator for each reduction object.
	ReduxOps map[profiling.Object]ir.ReduxKind
	// ReduxSizes gives the element size (bytes) of each reduction object's
	// updates, for identity initialization.
	ReduxSizes map[profiling.Object]int64
	// PredictableLoads lists loads whose every *carried* occurrence read
	// one stable value from one fixed global location during profiling;
	// value-prediction speculation removes those dependences (dijkstra's
	// empty-queue pattern). The value maps the load to its prediction.
	PredictableLoads map[*ir.Instr]uint64
	// Predictions lists the distinct predicted locations; the
	// transformation validates and re-establishes each at the start of
	// every iteration (the paper's end-of-iteration queue-empty checks).
	Predictions []PredictedLocation
	// Footprint is the loop's full footprint from Algorithm 2.
	Footprint *Footprint
	// Sep carries the static separation prover's verdicts for this loop:
	// the proven subset of each heap's objects, by rule. Nil when the
	// prover did not run. The transformation drops checks for proven
	// objects and the runtime drops their shadow machinery; the dynamic
	// profile and runtime oracles audit every claim recorded here.
	Sep *analysis.SepResult
}

// ProvenFor reports whether o's heap assignment is statically proven, so
// its dynamic machinery can be dropped rather than merely elided.
func (a *Assignment) ProvenFor(o profiling.Object) bool {
	return a.Sep != nil && a.Sep.ProvenFor(o, a.HeapOf(o))
}

// HeapOf returns the heap kind assigned to object o, or HeapSystem if o is
// outside the loop's footprint.
func (a *Assignment) HeapOf(o profiling.Object) ir.HeapKind {
	switch {
	case a.ShortLived[o]:
		return ir.HeapShortLived
	case a.Redux[o]:
		return ir.HeapRedux
	case a.Unrestricted[o]:
		return ir.HeapUnrestricted
	case a.Private[o]:
		return ir.HeapPrivate
	case a.ReadOnly[o]:
		return ir.HeapReadOnly
	default:
		return ir.HeapSystem
	}
}

// Objects returns every object in the assignment with its heap, sorted by
// name for deterministic reports.
func (a *Assignment) Objects() []ObjectHeap {
	var all []ObjectHeap
	add := func(s profiling.ObjectSet, h ir.HeapKind) {
		for o := range s {
			all = append(all, ObjectHeap{Object: o, Heap: h})
		}
	}
	add(a.ShortLived, ir.HeapShortLived)
	add(a.Redux, ir.HeapRedux)
	add(a.Unrestricted, ir.HeapUnrestricted)
	add(a.Private, ir.HeapPrivate)
	add(a.ReadOnly, ir.HeapReadOnly)
	sort.Slice(all, func(i, j int) bool { return all[i].Object.String() < all[j].Object.String() })
	return all
}

// ObjectHeap pairs an object with its assigned heap.
type ObjectHeap struct {
	Object profiling.Object // the allocation site or global
	Heap   ir.HeapKind      // its assigned logical heap
}

// PredictedLocation is a fixed global location whose value at iteration
// boundaries is speculated constant.
type PredictedLocation struct {
	// Global holds the location.
	Global *ir.Global
	// Offset is the byte offset within the global.
	Offset uint64
	// Size is the access width.
	Size int64
	// Value is the predicted constant.
	Value uint64
	// Typ is the type predicted loads produced (Ptr or I64).
	Typ ir.Type
}

// String renders the assignment like the paper's Figure 4.
func (a *Assignment) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "heap assignment for %s:\n", a.Loop)
	row := func(name string, s profiling.ObjectSet) {
		fmt.Fprintf(&sb, "  %-12s {%s}\n", name+":", strings.Join(s.Names(), ", "))
	}
	row("short-lived", a.ShortLived)
	row("redux", a.Redux)
	row("unrestricted", a.Unrestricted)
	row("private", a.Private)
	row("read-only", a.ReadOnly)
	return sb.String()
}

// reduxPattern reports whether load in participates in a reduction sequence:
// there is a store to the same address value whose stored operand is a
// single associative-commutative operation over the loaded value, e.g.
// v = load p; v' = v + x; store v', p. It returns the operator kind and the
// access size.
func reduxPattern(load *ir.Instr) (ir.ReduxKind, int64, bool) {
	if load.Op != ir.OpLoad {
		return ir.ReduxNone, 0, false
	}
	addr := load.Args[0]
	// Find a store to the same address value in the same function.
	var found ir.ReduxKind
	var size int64
	load.Blk.Fn.Instrs(func(in *ir.Instr) {
		if in.Op != ir.OpStore || in.Args[1] != addr || found != ir.ReduxNone {
			return
		}
		op, isInstr := in.Args[0].(*ir.Instr)
		if !isInstr {
			return
		}
		kind := reduxOpKind(op)
		if kind == ir.ReduxNone {
			return
		}
		// One operand of the update must be the loaded value.
		usesLoad := false
		for _, a := range op.Args {
			if a == ir.Value(load) {
				usesLoad = true
			}
		}
		if usesLoad {
			found = kind
			size = in.Size
		}
	})
	return found, size, found != ir.ReduxNone
}

// reduxOpKind maps an instruction to the reduction operator it implements,
// if associative and commutative.
func reduxOpKind(in *ir.Instr) ir.ReduxKind {
	switch in.Op {
	case ir.OpAdd:
		return ir.ReduxAddI64
	case ir.OpFAdd:
		return ir.ReduxAddF64
	case ir.OpSelect:
		// min/max idiom: select(a < b, a, b) over a load.
		cond, isInstr := in.Args[0].(*ir.Instr)
		if !isInstr {
			return ir.ReduxNone
		}
		switch cond.Op {
		case ir.OpSLt, ir.OpSLe:
			return ir.ReduxMinI64
		case ir.OpSGt, ir.OpSGe:
			return ir.ReduxMaxI64
		case ir.OpFLt, ir.OpFLe:
			return ir.ReduxMinF64
		case ir.OpFGt, ir.OpFGe:
			return ir.ReduxMaxF64
		}
	}
	return ir.ReduxNone
}

// GetFootprint implements Algorithm 2 for the instruction sequence of loop l,
// recurring into direct callees. The pointer-to-object profile resolves each
// access to the objects it touched.
func GetFootprint(l *ir.Loop, prof *profiling.Profile) *Footprint {
	fp := newFootprint()
	seen := map[*ir.Function]bool{}
	var scan func(instrs []*ir.Instr)
	scanFunc := func(f *ir.Function) {
		if seen[f] {
			return
		}
		seen[f] = true
		for _, b := range f.Blocks {
			scan(b.Instrs)
		}
	}
	scan = func(instrs []*ir.Instr) {
		for _, in := range instrs {
			switch in.Op {
			case ir.OpLoad:
				objs := prof.MapPointerToObjects(in)
				if kind, size, isRedux := reduxPattern(in); isRedux {
					for o := range objs {
						fp.Redux.Add(o)
						fp.ReduxOps[o] = kind
						_ = size
					}
				} else {
					fp.Read.Union(objs)
				}
			case ir.OpStore:
				objs := prof.MapPointerToObjects(in)
				if isReduxStore(in) {
					for o := range objs {
						fp.Redux.Add(o)
					}
				} else {
					fp.Write.Union(objs)
				}
			case ir.OpMemCopy:
				// Reads src, writes dst; the profile records both under
				// the one instruction, so include it in both sets.
				fp.Read.Union(prof.MapPointerToObjects(in))
				fp.Write.Union(prof.MapPointerToObjects(in))
			case ir.OpMemSet:
				fp.Write.Union(prof.MapPointerToObjects(in))
			case ir.OpCall:
				scanFunc(in.Callee)
			}
		}
	}
	for _, b := range l.Blocks {
		scan(b.Instrs)
	}
	return fp
}

// isReduxStore reports whether in is the store side of a reduction sequence.
func isReduxStore(st *ir.Instr) bool {
	op, isInstr := st.Args[0].(*ir.Instr)
	if !isInstr {
		return false
	}
	kind := reduxOpKind(op)
	if kind == ir.ReduxNone {
		return false
	}
	// One operand of the update must be a load from the same address.
	for _, a := range op.Args {
		if ld, isLoad := a.(*ir.Instr); isLoad && ld.Op == ir.OpLoad && ld.Args[0] == st.Args[1] {
			return true
		}
		// min/max via select: operands are (cond, a, b) where one of a/b
		// loads from the address.
		if op.Op == ir.OpSelect {
			if ld, isLoad := a.(*ir.Instr); isLoad && ld.Op == ir.OpLoad && ld.Args[0] == st.Args[1] {
				return true
			}
		}
	}
	return false
}

// instrFootprint computes the footprint of a single instruction (the
// getFootprint(a) calls inside Algorithm 1), recurring into callees.
func instrFootprint(in *ir.Instr, prof *profiling.Profile) *Footprint {
	fp := newFootprint()
	switch in.Op {
	case ir.OpLoad:
		objs := prof.MapPointerToObjects(in)
		if _, _, isRedux := reduxPattern(in); isRedux {
			fp.Redux.Union(objs)
		} else {
			fp.Read.Union(objs)
		}
	case ir.OpStore:
		objs := prof.MapPointerToObjects(in)
		if isReduxStore(in) {
			fp.Redux.Union(objs)
		} else {
			fp.Write.Union(objs)
		}
	case ir.OpMemCopy:
		fp.Read.Union(prof.MapPointerToObjects(in))
		fp.Write.Union(prof.MapPointerToObjects(in))
	case ir.OpMemSet:
		fp.Write.Union(prof.MapPointerToObjects(in))
	case ir.OpCall:
		seen := map[*ir.Function]bool{}
		var scanFunc func(f *ir.Function)
		scanFunc = func(f *ir.Function) {
			if seen[f] {
				return
			}
			seen[f] = true
			f.Instrs(func(cin *ir.Instr) {
				if cin.Op == ir.OpCall {
					scanFunc(cin.Callee)
					return
				}
				sub := instrFootprint(cin, prof)
				fp.Read.Union(sub.Read)
				fp.Write.Union(sub.Write)
				fp.Redux.Union(sub.Redux)
			})
		}
		scanFunc(in.Callee)
	}
	return fp
}

// Options tunes classification, for ablation studies.
type Options struct {
	// DisableValuePrediction turns off the value-prediction refinement:
	// carried dependences through stably-constant locations force their
	// objects into the unrestricted heap instead.
	DisableValuePrediction bool
}

// Classify implements Algorithm 1: it partitions loop l's footprint into the
// five heaps using the profile's lifetime, dependence and value information.
func Classify(l *ir.Loop, prof *profiling.Profile) *Assignment {
	return ClassifyOpts(l, prof, Options{})
}

// ClassifyOpts is Classify with explicit options.
func ClassifyOpts(l *ir.Loop, prof *profiling.Profile, opts Options) *Assignment {
	a := &Assignment{
		Loop:             l,
		ShortLived:       profiling.ObjectSet{},
		Redux:            profiling.ObjectSet{},
		Unrestricted:     profiling.ObjectSet{},
		Private:          profiling.ObjectSet{},
		ReadOnly:         profiling.ObjectSet{},
		ReduxOps:         map[profiling.Object]ir.ReduxKind{},
		ReduxSizes:       map[profiling.Object]int64{},
		PredictableLoads: map[*ir.Instr]uint64{},
	}
	fp := GetFootprint(l, prof)
	a.Footprint = fp

	// foreach object in Write ∪ Read: short-lived per the lifetime profile.
	for o := range union(fp.Write, fp.Read, fp.Redux) {
		if prof.IsShortLived(o, l) {
			a.ShortLived.Add(o)
		}
	}
	// foreach object in ReduxFootprint: reduction candidates must not be
	// read or written by non-reduction accesses elsewhere in the loop.
	for o := range fp.Redux {
		if a.ShortLived[o] {
			continue
		}
		if !fp.Read[o] && !fp.Write[o] {
			a.Redux.Add(o)
			a.ReduxOps[o] = fp.ReduxOps[o]
		}
	}

	// Value-predictable loads: carried flow dependences whose destination
	// load always read the same value from the same fixed global location
	// can be removed by value-prediction speculation instead of forcing
	// objects into the unrestricted heap.
	predictable := map[*ir.Instr]bool{}
	seenLoc := map[PredictedLocation]bool{}
	for _, d := range prof.CarriedFlow[l] {
		if opts.DisableValuePrediction {
			break
		}
		cr := prof.CarriedReads[l][d.Dst]
		if cr == nil || !cr.Stable || cr.Object.Global == nil {
			continue
		}
		// Reduction and short-lived objects already absorb their carried
		// dependences, and their worker-local values legitimately differ
		// from the sequential ones (identity-initialized accumulators,
		// per-iteration instances) — predicting them would misspeculate
		// on every iteration.
		if a.Redux[cr.Object] || a.ShortLived[cr.Object] {
			continue
		}
		predictable[d.Dst] = true
		a.PredictableLoads[d.Dst] = cr.Value
		loc := PredictedLocation{
			Global: cr.Object.Global, Offset: cr.Offset, Size: cr.Size,
			Value: cr.Value, Typ: d.Dst.Type(),
		}
		if !seenLoc[loc] {
			seenLoc[loc] = true
			a.Predictions = append(a.Predictions, loc)
		}
	}
	sort.Slice(a.Predictions, func(i, j int) bool {
		pi, pj := a.Predictions[i], a.Predictions[j]
		if pi.Global != pj.Global {
			return pi.Global.Name < pj.Global.Name
		}
		return pi.Offset < pj.Offset
	})

	// Cross-iteration memory flow dependences put their objects in the
	// unrestricted heap, unless already short-lived or reduction, or
	// removable by value prediction.
	for _, d := range prof.CarriedFlow[l] {
		if predictable[d.Dst] {
			continue
		}
		src := instrFootprint(d.Src, prof)
		dst := instrFootprint(d.Dst, prof)
		// F = (Wa ∪ Xa) ∩ (Rb ∪ Xb)
		for o := range union(src.Write, src.Redux) {
			if dst.Read[o] || dst.Redux[o] {
				if !a.ShortLived[o] && !a.Redux[o] {
					a.Unrestricted.Add(o)
				}
			}
		}
	}

	// Private = Write \ ShortLived \ Unrestricted \ Redux.
	for o := range fp.Write {
		if !a.ShortLived[o] && !a.Unrestricted[o] && !a.Redux[o] {
			a.Private.Add(o)
		}
	}
	// ReadOnly = Read \ everything else.
	for o := range fp.Read {
		if !a.ShortLived[o] && !a.Unrestricted[o] && !a.Redux[o] && !a.Private[o] {
			a.ReadOnly.Add(o)
		}
	}

	// Record reduction element sizes from the update instructions.
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpLoad {
				if kind, size, isRedux := reduxPattern(in); isRedux {
					for o := range prof.MapPointerToObjects(in) {
						if a.Redux[o] {
							a.ReduxSizes[o] = size
							if a.ReduxOps[o] == ir.ReduxNone {
								a.ReduxOps[o] = kind
							}
						}
					}
				}
			}
		}
	}
	return a
}

func union(sets ...profiling.ObjectSet) profiling.ObjectSet {
	u := profiling.ObjectSet{}
	for _, s := range sets {
		u.Union(s)
	}
	return u
}
