package classify

import (
	"testing"

	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// outerLoop returns main's depth-1 loop.
func outerLoop(t *testing.T, p *profiling.Profile) *ir.Loop {
	t.Helper()
	for _, l := range p.AllLoops {
		if l.Depth == 1 && l.Header.Fn.Name == "main" {
			return l
		}
	}
	t.Fatal("no outer loop")
	return nil
}

func findGlobal(a *Assignment, g *ir.Global) ir.HeapKind {
	return a.HeapOf(profiling.Object{Global: g})
}

// buildPrivatizable: scratch reused (init then read each iteration), node
// short-lived, adj read-only, sum reduction.
func buildPrivatizable(t *testing.T) (*ir.Module, map[string]*ir.Global) {
	t.Helper()
	m := ir.NewModule("cls")
	gs := map[string]*ir.Global{
		"scratch": m.NewGlobal("scratch", 8*8),
		"adj":     m.NewGlobal("adj", 8*8),
		"sum":     m.NewGlobal("sum", 8),
	}
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(10), func(iv *ir.Instr) {
		// write scratch[j] = adj[j] + i
		b.For("j", b.I(0), b.I(8), func(jv *ir.Instr) {
			aSlot := b.Add(b.Global(gs["adj"]), b.Mul(b.Ld(jv), b.I(8)))
			sSlot := b.Add(b.Global(gs["scratch"]), b.Mul(b.Ld(jv), b.I(8)))
			b.Store(b.Add(b.Load(aSlot, 8), b.Ld(iv)), sSlot, 8)
		})
		// node = malloc; node->v = scratch[0]; sum += node->v; free(node)
		node := b.Malloc("node", b.I(16))
		b.Store(b.Load(b.Global(gs["scratch"]), 8), node, 8)
		sumAddr := b.Global(gs["sum"])
		ld := b.Load(sumAddr, 8)
		b.Store(b.Add(ld, b.Load(node, 8)), sumAddr, 8)
		b.Free(node)
	})
	b.Ret(b.Load(b.Global(gs["sum"]), 8))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	ir.PromoteAllocas(f)
	return m, gs
}

func TestClassifyFiveWayPartition(t *testing.T) {
	m, gs := buildPrivatizable(t)
	p, err := profiling.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	l := outerLoop(t, p)
	a := Classify(l, p)

	if h := findGlobal(a, gs["scratch"]); h != ir.HeapPrivate {
		t.Errorf("scratch assigned to %s, want private\n%s", h, a)
	}
	if h := findGlobal(a, gs["adj"]); h != ir.HeapReadOnly {
		t.Errorf("adj assigned to %s, want read-only\n%s", h, a)
	}
	if h := findGlobal(a, gs["sum"]); h != ir.HeapRedux {
		t.Errorf("sum assigned to %s, want redux\n%s", h, a)
	}
	// The node site must be short-lived.
	foundNode := false
	for o := range a.ShortLived {
		if o.Site != nil && o.Site.Name == "node" {
			foundNode = true
		}
	}
	if !foundNode {
		t.Errorf("node not short-lived\n%s", a)
	}
	if op := a.ReduxOps[profiling.Object{Global: gs["sum"]}]; op != ir.ReduxAddI64 {
		t.Errorf("sum reduction op = %s, want add.i64", op)
	}
}

func TestClassifyGenuineCarriedDepIsUnrestricted(t *testing.T) {
	// acc[i%4] += acc[(i+1)%4]: reads values written in earlier iterations
	// through varying addresses; neither reduction (mixed access) nor
	// predictable.
	m := ir.NewModule("carried")
	acc := m.NewGlobal("acc", 32)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(16), func(iv *ir.Instr) {
		src := b.Add(b.Global(acc), b.Mul(b.SRem(b.Add(b.Ld(iv), b.I(1)), b.I(4)), b.I(8)))
		dst := b.Add(b.Global(acc), b.Mul(b.SRem(b.Ld(iv), b.I(4)), b.I(8)))
		v := b.Load(src, 8)
		b.Store(b.Add(v, b.Ld(iv)), dst, 8)
	})
	b.Ret(b.Load(b.Global(acc), 8))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	ir.PromoteAllocas(f)
	p, err := profiling.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	l := outerLoop(t, p)
	a := Classify(l, p)
	if h := findGlobal(a, acc); h != ir.HeapUnrestricted {
		t.Errorf("acc assigned to %s, want unrestricted\n%s", h, a)
	}
}

func TestClassifyPredictableLoadEnablesPrivatization(t *testing.T) {
	// The dijkstra queue pattern: head is read at iteration start and is
	// always NULL there; inside the iteration it is set and cleared.
	m := ir.NewModule("vp")
	head := m.NewGlobal("head", 8)
	work := m.NewGlobal("work", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(12), func(iv *ir.Instr) {
		h0 := b.LoadPtr(b.Global(head))
		b.If(b.Eq(h0, b.P(0)), func() {
			n := b.Malloc("qnode", b.I(16))
			b.Store(b.Ld(iv), n, 8)
			b.Store(n, b.Global(head), 8)
		}, nil)
		// drain
		cur := b.LoadPtr(b.Global(head))
		b.Store(b.Load(cur, 8), b.Global(work), 8)
		b.Free(cur)
		b.Store(b.P(0), b.Global(head), 8)
	})
	b.Ret(b.Load(b.Global(work), 8))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	ir.PromoteAllocas(f)
	p, err := profiling.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	l := outerLoop(t, p)
	a := Classify(l, p)
	if h := findGlobal(a, head); h != ir.HeapPrivate {
		t.Errorf("head assigned to %s, want private (via value prediction)\n%s", h, a)
	}
	if len(a.PredictableLoads) == 0 {
		t.Error("no predictable loads recorded")
	}
	for _, v := range a.PredictableLoads {
		if v != 0 {
			t.Errorf("predicted value %d, want 0 (NULL)", v)
		}
	}
}

func TestGetFootprintRecursesIntoCallees(t *testing.T) {
	m := ir.NewModule("callee")
	g := m.NewGlobal("data", 8)
	helper := m.NewFunc("write_it", ir.Void)
	{
		hb := ir.NewBuilder(helper)
		hb.Store(hb.I(1), hb.Global(g), 8)
		hb.Ret()
	}
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(3), func(_ *ir.Instr) {
		b.Call(helper)
	})
	b.Ret(b.I(0))
	ir.PromoteAllocas(f)
	p, err := profiling.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	l := outerLoop(t, p)
	fp := GetFootprint(l, p)
	if !fp.Write[profiling.Object{Global: g}] {
		t.Errorf("callee write not in footprint: %v", fp.Write.Names())
	}
}

func TestClassifyMinReduction(t *testing.T) {
	m := ir.NewModule("minred")
	best := m.NewGlobal("best", 8)
	best.Init = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f} // MaxInt64
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(10), func(iv *ir.Instr) {
		v := b.Mul(b.Sub(b.I(5), b.Ld(iv)), b.Sub(b.I(5), b.Ld(iv)))
		addr := b.Global(best)
		cur := b.Load(addr, 8)
		upd := b.Select(b.SLt(v, cur), v, cur)
		b.Store(upd, addr, 8)
	})
	b.Ret(b.Load(b.Global(best), 8))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	ir.PromoteAllocas(f)
	p, err := profiling.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	l := outerLoop(t, p)
	a := Classify(l, p)
	if h := findGlobal(a, best); h != ir.HeapRedux {
		t.Errorf("best assigned to %s, want redux\n%s", h, a)
	}
	if op := a.ReduxOps[profiling.Object{Global: best}]; op != ir.ReduxMinI64 {
		t.Errorf("op = %s, want min.i64", op)
	}
}

func TestAssignmentStringAndObjects(t *testing.T) {
	m, _ := buildPrivatizable(t)
	p, err := profiling.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	a := Classify(outerLoop(t, p), p)
	if len(a.Objects()) < 4 {
		t.Errorf("Objects() too small: %v", a.Objects())
	}
	s := a.String()
	for _, want := range []string{"short-lived", "redux", "private", "read-only", "@scratch"} {
		if !containsStr(s, want) {
			t.Errorf("assignment string missing %q:\n%s", want, s)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
