// Package deps builds the optimistic program-dependence view that drives
// loop selection (section 4.3 of the paper). Two analyses share one
// vocabulary of Blockers:
//
//   - StaticBlockers judges a loop the way the non-speculative DOALL-only
//     baseline does: conservative points-to facts plus affine
//     disambiguation, no profile, no speculation.
//   - SpeculativeBlockers judges a loop after Privateer's refinement rules:
//     separated heaps cannot conflict; private, short-lived and reduction
//     footprints carry no loop-carried dependences; stable loads are
//     removed by value prediction; unexecuted blocks are removed by control
//     speculation; output operations are deferred.
package deps

import (
	"fmt"

	"privateer/internal/analysis"
	"privateer/internal/classify"
	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// BlockerKind classifies why a loop cannot be DOALL-parallelized.
type BlockerKind uint8

const (
	// BlockerNoIV: the loop has no canonical induction variable.
	BlockerNoIV BlockerKind = iota
	// BlockerScalarCarried: a header phi other than the IV carries a value
	// between iterations.
	BlockerScalarCarried
	// BlockerLiveOut: a value computed in the loop is used after it.
	BlockerLiveOut
	// BlockerMemory: a (possible) loop-carried memory dependence.
	BlockerMemory
	// BlockerIO: an output operation whose order must be preserved.
	BlockerIO
	// BlockerUnrestrictedHeap: an access touches an object assigned to the
	// unrestricted heap.
	BlockerUnrestrictedHeap
)

// String names the blocker kind for diagnostics.
func (k BlockerKind) String() string {
	switch k {
	case BlockerNoIV:
		return "no canonical induction variable"
	case BlockerScalarCarried:
		return "loop-carried scalar"
	case BlockerLiveOut:
		return "live-out value"
	case BlockerMemory:
		return "loop-carried memory dependence"
	case BlockerIO:
		return "ordered output operation"
	case BlockerUnrestrictedHeap:
		return "unrestricted-heap access"
	}
	return fmt.Sprintf("blocker(%d)", uint8(k))
}

// Blocker is one reason a loop resists DOALL parallelization.
type Blocker struct {
	// Kind classifies the blocker.
	Kind BlockerKind
	// Src and Dst are the implicated instructions (Dst may be nil).
	Src, Dst *ir.Instr
	// Note carries extra diagnostics.
	Note string
}

// String renders the blocker with its source instruction and note.
func (b Blocker) String() string {
	s := b.Kind.String()
	if b.Src != nil {
		s += ": " + b.Src.Format()
	}
	if b.Dst != nil {
		s += " <-> " + b.Dst.Format()
	}
	if b.Note != "" {
		s += " (" + b.Note + ")"
	}
	return s
}

// memOps collects the memory-touching instructions of l's body and of every
// function transitively callable from it. The bool result per instruction
// reports whether it executes in the loop's own function (where affine
// reasoning against the loop IV applies).
func memOps(l *ir.Loop) (own []*ir.Instr, callee []*ir.Instr, prints []*ir.Instr) {
	seen := map[*ir.Function]bool{}
	var scanFunc func(f *ir.Function)
	scanFunc = func(f *ir.Function) {
		if seen[f] {
			return
		}
		seen[f] = true
		f.Instrs(func(in *ir.Instr) {
			switch in.Op {
			case ir.OpLoad, ir.OpStore, ir.OpMemSet, ir.OpMemCopy:
				callee = append(callee, in)
			case ir.OpPrint:
				prints = append(prints, in)
			case ir.OpCall:
				scanFunc(in.Callee)
			}
		})
	}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad, ir.OpStore, ir.OpMemSet, ir.OpMemCopy:
				own = append(own, in)
			case ir.OpPrint:
				prints = append(prints, in)
			case ir.OpCall:
				scanFunc(in.Callee)
			}
		}
	}
	return own, callee, prints
}

// writesMem reports whether in writes memory; reads likewise.
func writesMem(in *ir.Instr) bool { return in.Op.Writes() }

// addrOf returns the address operand of a memory op.
func addrOf(in *ir.Instr) ir.Value {
	switch in.Op {
	case ir.OpLoad, ir.OpMemSet:
		return in.Args[0]
	case ir.OpStore:
		return in.Args[1]
	case ir.OpMemCopy:
		return in.Args[0] // destination; source handled separately
	}
	return nil
}

// sizeOf returns a conservative footprint width for affine reasoning.
func sizeOf(in *ir.Instr) int64 {
	if in.Op == ir.OpLoad || in.Op == ir.OpStore {
		return in.Size
	}
	return 1 << 30 // memset/memcopy widths are dynamic: assume huge
}

// scalarBlockers finds non-IV header phis and live-outs, shared by both
// analyses.
func scalarBlockers(l *ir.Loop, iv *ir.InductionVar) []Blocker {
	var out []Blocker
	for _, in := range l.Header.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		if iv != nil && in == iv.Phi {
			continue
		}
		out = append(out, Blocker{Kind: BlockerScalarCarried, Src: in})
	}
	// Live-outs: instructions in the loop used by instructions outside it.
	inLoop := map[*ir.Instr]bool{}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			inLoop[in] = true
		}
	}
	f := l.Header.Fn
	f.Instrs(func(user *ir.Instr) {
		if inLoop[user] {
			return
		}
		for _, a := range user.Args {
			def, isInstr := a.(*ir.Instr)
			if !isInstr || !inLoop[def] {
				continue
			}
			if iv != nil && def == iv.Phi {
				continue // the IV's final value is computable
			}
			out = append(out, Blocker{Kind: BlockerLiveOut, Src: def, Dst: user})
		}
	})
	return out
}

// StaticBlockers returns every obstacle the non-speculative baseline sees in
// loop l, given whole-module points-to facts. An empty result means the
// DOALL-only compiler may parallelize l.
func StaticBlockers(l *ir.Loop, pt *analysis.PointsTo) []Blocker {
	var out []Blocker
	iv := ir.FindInductionVar(l)
	if iv == nil {
		out = append(out, Blocker{Kind: BlockerNoIV})
	}
	out = append(out, scalarBlockers(l, iv)...)

	own, callee, prints := memOps(l)
	for _, p := range prints {
		out = append(out, Blocker{Kind: BlockerIO, Src: p})
	}

	affine := map[*ir.Instr]analysis.Affine{}
	if iv != nil {
		for _, in := range own {
			if a, ok := analysis.DecomposeAffine(l, iv, addrOf(in)); ok {
				affine[in] = a
			}
		}
	}
	all := append(append([]*ir.Instr(nil), own...), callee...)
	fnOf := func(in *ir.Instr) *ir.Function { return in.Blk.Fn }
	for i, a := range all {
		for _, b := range all[i:] {
			if !writesMem(a) && !writesMem(b) {
				continue
			}
			// Affine disambiguation only applies to accesses in the
			// loop's own function.
			fa, okA := affine[a]
			fb, okB := affine[b]
			if okA && okB && analysis.NoCarriedOverlap(fa, fb, sizeOf(a), sizeOf(b)) {
				continue
			}
			// Points-to disjointness, on the stripped base values: the
			// shared analysis.UnderlyingObject walk peels interior-pointer
			// arithmetic so the query lands on the allocation the points-to
			// sets actually track.
			ua := analysis.UnderlyingObject(addrOf(a))
			ub := analysis.UnderlyingObject(addrOf(b))
			if !pt.MayAlias(fnOf(a), ua, fnOf(b), ub) {
				continue
			}
			out = append(out, Blocker{Kind: BlockerMemory, Src: a, Dst: b})
		}
	}
	return out
}

// Plan is the result of the speculative judgment: remaining blockers plus
// the extra speculation kinds the transformation must apply (the "Extras"
// column of Table 3).
type Plan struct {
	// Blockers lists obstacles that survive every refinement; the loop is
	// speculatively DOALL-able iff it is empty.
	Blockers []Blocker
	// NeedsValuePrediction is true when stable loads must be guarded.
	NeedsValuePrediction bool
	// NeedsControlSpec is true when unprofiled blocks must be fenced with
	// misspeculation guards.
	NeedsControlSpec bool
	// NeedsIODeferral is true when output operations must be buffered and
	// committed in order.
	NeedsIODeferral bool
	// ColdBlocks lists the blocks to fence when NeedsControlSpec.
	ColdBlocks []*ir.Block
}

// SpeculativeBlockers judges loop l after privatization: the heap
// assignment's refinement rules remove the dependences that the private,
// short-lived, reduction and read-only heaps absorb.
func SpeculativeBlockers(l *ir.Loop, prof *profiling.Profile, a *classify.Assignment) *Plan {
	plan := &Plan{}
	iv := ir.FindInductionVar(l)
	if iv == nil {
		plan.Blockers = append(plan.Blockers, Blocker{Kind: BlockerNoIV})
	}
	plan.Blockers = append(plan.Blockers, scalarBlockers(l, iv)...)

	own, callee, prints := memOps(l)
	if len(prints) > 0 {
		plan.NeedsIODeferral = true
	}

	cold := coldBlocks(l, prof)
	if len(cold) > 0 {
		plan.NeedsControlSpec = true
		plan.ColdBlocks = cold
	}
	coldSet := map[*ir.Block]bool{}
	for _, b := range cold {
		coldSet[b] = true
	}
	if len(a.PredictableLoads) > 0 {
		plan.NeedsValuePrediction = true
	}

	// Every executed access must land in a heap that absorbs loop-carried
	// dependences (private/short-lived/redux), is immutable (read-only),
	// or the loop is not parallelizable.
	for _, in := range append(append([]*ir.Instr(nil), own...), callee...) {
		if coldSet[in.Blk] {
			continue // control speculation removes this path
		}
		for o := range prof.MapPointerToObjects(in) {
			switch a.HeapOf(o) {
			case ir.HeapUnrestricted:
				plan.Blockers = append(plan.Blockers, Blocker{
					Kind: BlockerUnrestrictedHeap, Src: in, Note: o.String()})
			case ir.HeapSystem:
				plan.Blockers = append(plan.Blockers, Blocker{
					Kind: BlockerMemory, Src: in,
					Note: "object " + o.String() + " outside the heap assignment"})
			}
		}
	}
	return plan
}

// coldBlocks returns blocks of l (and of functions it calls) that never
// executed during profiling; control speculation fences them.
func coldBlocks(l *ir.Loop, prof *profiling.Profile) []*ir.Block {
	var cold []*ir.Block
	seen := map[*ir.Function]bool{}
	var scanFunc func(f *ir.Function)
	consider := func(b *ir.Block) {
		if prof.BlockRuns[b] == 0 {
			cold = append(cold, b)
		}
	}
	scanFunc = func(f *ir.Function) {
		if seen[f] {
			return
		}
		seen[f] = true
		for _, b := range f.Blocks {
			consider(b)
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall {
					scanFunc(in.Callee)
				}
			}
		}
	}
	for _, b := range l.Blocks {
		consider(b)
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				scanFunc(in.Callee)
			}
		}
	}
	return cold
}
