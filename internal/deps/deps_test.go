package deps

import (
	"testing"

	"privateer/internal/analysis"
	"privateer/internal/classify"
	"privateer/internal/ir"
	"privateer/internal/profiling"
)

func outerLoop(t *testing.T, m *ir.Module, fname string) *ir.Loop {
	t.Helper()
	f := m.Funcs[fname]
	f.Recompute()
	dt := ir.BuildDomTree(f)
	for _, l := range ir.FindLoops(f, dt) {
		if l.Depth == 1 {
			return l
		}
	}
	t.Fatalf("no loop in %s", fname)
	return nil
}

// TestStaticAffineArrayLoopIsDOALLable: out[i] = in[i] * 2 has no carried
// dependence and the static baseline must see that (the blackscholes inner
// loop pattern).
func TestStaticAffineArrayLoopIsDOALLable(t *testing.T) {
	m := ir.NewModule("affine")
	src := m.NewGlobal("src", 64*8)
	dst := m.NewGlobal("dst", 64*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(64), func(iv *ir.Instr) {
		s := b.Add(b.Global(src), b.Mul(b.Ld(iv), b.I(8)))
		d := b.Add(b.Global(dst), b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Mul(b.Load(s, 8), b.I(2)), d, 8)
	})
	b.Ret(b.I(0))
	ir.PromoteAllocas(f)
	pt := analysis.ComputePointsTo(m)
	l := outerLoop(t, m, "main")
	if bl := StaticBlockers(l, pt); len(bl) != 0 {
		t.Errorf("affine loop wrongly blocked: %v", bl)
	}
}

// TestStaticPointerChasingBlocks: the dijkstra pattern (reused global array
// written and read each iteration at data-dependent indices) must block the
// static baseline.
func TestStaticPointerChasingBlocks(t *testing.T) {
	m := ir.NewModule("reuse")
	tbl := m.NewGlobal("tbl", 64*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		// idx depends on memory: defeats affine reasoning.
		idx := b.Load(b.Global(tbl), 8)
		slot := b.Add(b.Global(tbl), b.Mul(b.SRem(idx, b.I(64)), b.I(8)))
		b.Store(b.Ld(iv), slot, 8)
	})
	b.Ret(b.I(0))
	ir.PromoteAllocas(f)
	pt := analysis.ComputePointsTo(m)
	l := outerLoop(t, m, "main")
	found := false
	for _, bl := range StaticBlockers(l, pt) {
		if bl.Kind == BlockerMemory {
			found = true
		}
	}
	if !found {
		t.Error("static analysis failed to block a data-dependent update loop")
	}
}

func TestStaticScalarCarriedBlocks(t *testing.T) {
	// sum += i as a register (post-mem2reg) is a non-IV header phi.
	m := ir.NewModule("scalar")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	acc := b.Local("acc")
	b.St(b.I(0), acc)
	b.For("i", b.I(0), b.I(10), func(iv *ir.Instr) {
		b.St(b.Add(b.Ld(acc), b.Ld(iv)), acc)
	})
	b.Ret(b.Ld(acc))
	ir.PromoteAllocas(f)
	pt := analysis.ComputePointsTo(m)
	l := outerLoop(t, m, "main")
	kinds := map[BlockerKind]bool{}
	for _, bl := range StaticBlockers(l, pt) {
		kinds[bl.Kind] = true
	}
	if !kinds[BlockerScalarCarried] && !kinds[BlockerLiveOut] {
		t.Errorf("scalar accumulation not blocked: %v", kinds)
	}
}

func TestStaticIOBlocks(t *testing.T) {
	m := ir.NewModule("io")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(4), func(iv *ir.Instr) {
		b.Print("%d\n", b.Ld(iv))
	})
	b.Ret(b.I(0))
	ir.PromoteAllocas(f)
	pt := analysis.ComputePointsTo(m)
	l := outerLoop(t, m, "main")
	found := false
	for _, bl := range StaticBlockers(l, pt) {
		if bl.Kind == BlockerIO {
			found = true
		}
	}
	if !found {
		t.Error("print inside loop not reported as blocker")
	}
}

// speculativePlan profiles m, classifies main's outer loop and runs the
// speculative judgment.
func speculativePlan(t *testing.T, m *ir.Module) (*Plan, *classify.Assignment) {
	t.Helper()
	p, err := profiling.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	var outer *ir.Loop
	for _, l := range p.AllLoops {
		if l.Depth == 1 && l.Header.Fn.Name == "main" {
			outer = l
		}
	}
	if outer == nil {
		t.Fatal("no outer loop")
	}
	a := classify.Classify(outer, p)
	return SpeculativeBlockers(outer, p, a), a
}

func TestSpeculativeAcceptsReuseLoop(t *testing.T) {
	// The privatizable pattern that statically blocks: reused scratch
	// array + short-lived nodes + reduction.
	m := ir.NewModule("spec")
	scratch := m.NewGlobal("scratch", 8*8)
	sum := m.NewGlobal("sum", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(10), func(iv *ir.Instr) {
		b.For("j", b.I(0), b.I(8), func(jv *ir.Instr) {
			slot := b.Add(b.Global(scratch), b.Mul(b.Ld(jv), b.I(8)))
			b.Store(b.Add(b.Ld(iv), b.Ld(jv)), slot, 8)
		})
		n := b.Malloc("node", b.I(16))
		b.Store(b.Load(b.Global(scratch), 8), n, 8)
		sumAddr := b.Global(sum)
		b.Store(b.Add(b.Load(sumAddr, 8), b.Load(n, 8)), sumAddr, 8)
		b.Free(n)
	})
	b.Ret(b.Load(b.Global(sum), 8))
	ir.PromoteAllocas(f)
	// Statically blocked...
	pt := analysis.ComputePointsTo(m)
	l := outerLoop(t, m, "main")
	staticBlocked := false
	for _, bl := range StaticBlockers(l, pt) {
		if bl.Kind == BlockerMemory {
			staticBlocked = true
		}
	}
	if !staticBlocked {
		t.Error("reuse loop should block the static baseline")
	}
	// ...but speculatively clean.
	plan, _ := speculativePlan(t, m)
	if len(plan.Blockers) != 0 {
		t.Errorf("speculative blockers remain: %v", plan.Blockers)
	}
}

func TestSpeculativeRejectsTrueDependence(t *testing.T) {
	// A genuine recurrence: tbl[i] = tbl[i-1] + 1.
	m := ir.NewModule("recur")
	tbl := m.NewGlobal("tbl", 65*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(1), b.I(64), func(iv *ir.Instr) {
		prev := b.Add(b.Global(tbl), b.Mul(b.Sub(b.Ld(iv), b.I(1)), b.I(8)))
		cur := b.Add(b.Global(tbl), b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Add(b.Load(prev, 8), b.I(1)), cur, 8)
	})
	b.Ret(b.Load(b.Global(tbl), 8))
	ir.PromoteAllocas(f)
	plan, a := speculativePlan(t, m)
	if len(plan.Blockers) == 0 {
		t.Errorf("true recurrence accepted; assignment:\n%s", a)
	}
}

func TestSpeculativePlanExtras(t *testing.T) {
	// Loop with I/O and a cold error path: needs deferral + control spec.
	m := ir.NewModule("extras")
	data := m.NewGlobal("data", 8*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		slot := b.Add(b.Global(data), b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Ld(iv), slot, 8)
		b.If(b.SGt(b.Ld(iv), b.I(100)), func() {
			b.Print("error!\n") // never taken during profiling
		}, nil)
		b.Print("val %d\n", b.Load(slot, 8))
	})
	b.Ret(b.I(0))
	ir.PromoteAllocas(f)
	plan, _ := speculativePlan(t, m)
	if !plan.NeedsIODeferral {
		t.Error("I/O deferral not planned")
	}
	if !plan.NeedsControlSpec || len(plan.ColdBlocks) == 0 {
		t.Error("control speculation not planned for the cold branch")
	}
	if len(plan.Blockers) != 0 {
		t.Errorf("unexpected blockers: %v", plan.Blockers)
	}
}
