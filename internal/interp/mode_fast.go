//go:build !slowpath

package interp

// defaultDecode selects the pre-decoded dispatch executor for new
// interpreters. Build with -tags=slowpath to flip every interpreter to the
// tree-walking reference executor (the original implementation) for
// differential testing.
const defaultDecode = true
