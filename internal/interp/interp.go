// Package interp executes Privateer IR over the simulated address space.
//
// It stands in for native execution of compiled code: every dynamic event
// the paper's profilers and runtime observe (loads, stores, allocations,
// block transfers, iteration boundaries, misspeculation checks) is surfaced
// through the Hooks structure, so the pointer-to-object profiler, the
// dependence profiler and the speculative runtime attach to the same program
// without modifying it.
package interp

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/vm"
)

// MisspecError marks a speculation violation: the enclosing worker should
// squash, not crash. It wraps the triggering check for diagnostics.
type MisspecError struct {
	// Instr is the check that fired (may be nil for injected misspeculation).
	Instr *ir.Instr
	// Reason describes the violated speculative property.
	Reason string
	// Addr is the faulting address when the violation concerns a specific
	// memory location (privacy and separation checks); 0 otherwise. The
	// runtime uses it to attribute misspeculations to allocation sites.
	Addr uint64
}

func (e *MisspecError) Error() string {
	if e.Instr != nil {
		return fmt.Sprintf("misspeculation: %s (%s)", e.Reason, e.Instr.Format())
	}
	return "misspeculation: " + e.Reason
}

// Site names the instruction that detected the violation, or "" when the
// misspeculation has no syntactic site (injection, lifetime checks).
func (e *MisspecError) Site() string {
	if e.Instr == nil {
		return ""
	}
	return e.Instr.Format()
}

// IsMisspec reports whether err is (or wraps) a misspeculation.
func IsMisspec(err error) bool {
	var m *MisspecError
	return errors.As(err, &m)
}

// Frame is one activation record.
type Frame struct {
	// Fn is the executing function.
	Fn *ir.Function
	// Depth is the call-stack depth (entry function = 0).
	Depth int
	// Caller is the parent frame, nil for the entry.
	Caller *Frame

	vals    []uint64
	allocas []uint64
}

// Value returns the current dynamic value of v in this frame.
func (fr *Frame) Value(v ir.Value) uint64 { return fr.vals[v.ValueID()] }

// Hooks let profilers and the speculative runtime observe and intercept
// execution. Any field may be nil. Check hooks return an error (typically a
// *MisspecError) to abort the current Run.
type Hooks struct {
	// OnBlock fires on every control transfer between basic blocks.
	OnBlock func(fr *Frame, from, to *ir.Block)
	// OnEnter and OnExit bracket function activations.
	OnEnter func(fr *Frame)
	OnExit  func(fr *Frame)
	// OnLoad and OnStore fire after a successful memory access.
	OnLoad  func(fr *Frame, in *ir.Instr, addr uint64, size int64)
	OnStore func(fr *Frame, in *ir.Instr, addr uint64, size int64)
	// OnAlloc fires after malloc/alloca/h_alloc; OnFree before free/h_dealloc.
	OnAlloc func(fr *Frame, in *ir.Instr, addr, size uint64)
	OnFree  func(fr *Frame, in *ir.Instr, addr uint64)
	// OnPrint intercepts formatted output; return true if handled
	// (e.g. deferred into the speculative I/O queue).
	OnPrint func(in *ir.Instr, text string) bool
	// CallOverride intercepts direct calls; return handled=true to supply
	// the result instead of interpreting the callee. The speculative
	// runtime uses it to take over parallel-region functions.
	CallOverride func(fr *Frame, in *ir.Instr, callee *ir.Function, args []uint64) (ret uint64, handled bool, err error)
	// CheckHeap validates a separation check; default checks the tag.
	CheckHeap func(in *ir.Instr, addr uint64) error
	// PrivateRead and PrivateWrite validate privacy checks.
	PrivateRead  func(in *ir.Instr, addr uint64, size int64) error
	PrivateWrite func(in *ir.Instr, addr uint64, size int64) error
	// PrivateReadSpan and PrivateWriteSpan validate span-level privacy
	// checks: count elements of size bytes starting at addr, stride bytes
	// apart (count <= 0 is a no-op).
	PrivateReadSpan  func(in *ir.Instr, addr uint64, count, stride, size int64) error
	PrivateWriteSpan func(in *ir.Instr, addr uint64, count, stride, size int64) error
	// ReduxWrite observes a reduction update.
	ReduxWrite func(in *ir.Instr, addr uint64, size int64) error
	// Predict validates a value prediction; default misspeculates on
	// mismatch.
	Predict func(in *ir.Instr, actual, expected uint64) error
	// Misspec handles an unconditional misspeculation instruction.
	Misspec func(in *ir.Instr) error
}

// Interp executes functions of one module against one address space.
type Interp struct {
	// Mod is the program.
	Mod *ir.Module
	// AS is the memory image.
	AS *vm.AddressSpace
	// Hooks observe execution; may be zero.
	Hooks Hooks
	// Out receives formatted output not claimed by Hooks.OnPrint.
	Out *strings.Builder
	// StepLimit aborts runaway programs; 0 means the default (2^40).
	StepLimit int64
	// Steps counts executed instructions.
	Steps int64
	// MaxDepth bounds recursion; 0 means the default (4096).
	MaxDepth int
	// Prof, when non-nil, enables the sampling per-opcode profiler (see
	// opprof.go). Multiple interpreters may share one profiler; setting it
	// costs one extra hook-mask bit in the dispatch loop.
	Prof *OpProfiler

	globalsLaidOut bool
	globalAddrs    map[*ir.Global]uint64

	// prog is the shared pre-decoded form of Mod (see decode.go).
	// Interpreters built with NewShared reuse the creator's cache, so each
	// function decodes once per run rather than once per worker.
	prog *Program
	// treeWalk forces the tree-walking reference executor; the pre-decoded
	// dispatch loop is the default. Differential tests (and -tags=slowpath
	// builds) flip it to compare the two paths.
	treeWalk bool
	// hookMask is the active-hook bitmask of the current activation (see
	// exec_fast.go); recomputed on every call so the dispatch loop tests a
	// register instead of thirteen function pointers per instruction.
	hookMask uint32
	// profNext is the Steps value at which the next profiler sample is due,
	// profLastSteps the Steps value at the previous sample (the window in
	// between is attributed to the sampled opcode), and profLast the
	// previous sample's timestamp.
	profNext      int64
	profLastSteps int64
	profLast      time.Time
	// profArmed records that the profiler thresholds were initialized for
	// the current outermost activation.
	profArmed bool
}

// New returns an interpreter for mod over as.
func New(mod *ir.Module, as *vm.AddressSpace) *Interp {
	return &Interp{Mod: mod, AS: as, Out: &strings.Builder{}, globalAddrs: map[*ir.Global]uint64{},
		prog: NewProgram(mod), treeWalk: !defaultDecode}
}

// NewShared returns an interpreter over as that reuses prog's decode cache.
// The speculative runtime constructs its workers this way so the master's
// decoded functions are shared rather than re-derived per worker.
func NewShared(prog *Program, as *vm.AddressSpace) *Interp {
	it := New(prog.Mod, as)
	it.prog = prog
	return it
}

// Program exposes the interpreter's decode cache for sharing via NewShared.
func (it *Interp) Program() *Program { return it.prog }

// Recycle resets a pooled interpreter for a fresh activation over as, which
// the caller has already re-targeted (vm.AddressSpace.RecloneFrom): hooks,
// output, step counters, profiler arming and the adopted global layout are
// cleared, while the shared decode cache and the map capacity grown on
// earlier runs are retained. The speculative runtime's warmed worker pool
// uses it so a reused worker observes nothing from the invocation that
// previously ran on it; the caller re-adopts a layout and reinstalls hooks
// exactly as it would on a freshly constructed interpreter.
func (it *Interp) Recycle(as *vm.AddressSpace) {
	it.AS = as
	it.Hooks = Hooks{}
	it.Out.Reset()
	it.StepLimit = 0
	it.Steps = 0
	it.MaxDepth = 0
	it.Prof = nil
	it.globalsLaidOut = false
	clear(it.globalAddrs)
	it.hookMask = 0
	it.profNext = 0
	it.profLastSteps = 0
	it.profLast = time.Time{}
	it.profArmed = false
}

// SetTrace wires a trace identity through the interpreter's address space:
// every event the memory system and runtime emit on behalf of this
// interpreter carries worker as its worker id and inv as its invocation.
// The region service threads each job's tracer down through here so a
// job's events land in that job's ring and nowhere else; tr == nil detaches
// tracing. worker -1 marks the master/runtime, inv -1 means "outside any
// invocation yet".
func (it *Interp) SetTrace(tr *obs.Tracer, worker int, inv int64) {
	it.AS.Trace = tr
	it.AS.TraceWorker = worker
	it.AS.TraceInv = inv
}

// SetTreeWalk forces (true) or releases (false) the tree-walking reference
// executor. Differential tests use it to check the decoded dispatch path
// against the original semantics instruction for instruction.
func (it *Interp) SetTreeWalk(on bool) { it.treeWalk = on }

// LayOutGlobals allocates every module global into its assigned heap and
// writes initial contents. It runs automatically before the first call; the
// privatizing transformation's "initializer before main" is this step with
// non-system heap assignments.
func (it *Interp) LayOutGlobals() error {
	if it.globalsLaidOut {
		return nil
	}
	for _, name := range it.Mod.GlobalNames() {
		g := it.Mod.Globals[name]
		addr, err := it.AS.Alloc(g.Heap, uint64(g.Size))
		if err != nil {
			return fmt.Errorf("laying out global %s: %w", g.Name, err)
		}
		if len(g.Init) > 0 {
			if err := it.AS.WriteBytes(addr, g.Init); err != nil {
				return fmt.Errorf("initializing global %s: %w", g.Name, err)
			}
		}
		it.globalAddrs[g] = addr
	}
	it.globalsLaidOut = true
	return nil
}

// GlobalAddr returns the runtime address of g (after layout).
func (it *Interp) GlobalAddr(g *ir.Global) uint64 { return it.globalAddrs[g] }

// SetGlobalAddr overrides g's address; the speculative runtime uses this to
// share one layout across worker interpreters.
func (it *Interp) SetGlobalAddr(g *ir.Global, addr uint64) {
	it.globalAddrs[g] = addr
	it.globalsLaidOut = true
}

// GlobalLayout exports the full global->address table.
func (it *Interp) GlobalLayout() map[*ir.Global]uint64 { return it.globalAddrs }

// AdoptLayout installs a previously exported global layout.
func (it *Interp) AdoptLayout(layout map[*ir.Global]uint64) {
	for g, a := range layout {
		it.globalAddrs[g] = a
	}
	it.globalsLaidOut = true
}

// Run executes the module entry function with the given arguments.
func (it *Interp) Run(args ...uint64) (uint64, error) {
	entry := it.Mod.Entry()
	if entry == nil {
		return 0, fmt.Errorf("interp: module %s has no entry %q", it.Mod.Name, it.Mod.EntryName)
	}
	return it.Call(entry, args...)
}

// Call executes fn with args and returns its result.
func (it *Interp) Call(fn *ir.Function, args ...uint64) (uint64, error) {
	if err := it.LayOutGlobals(); err != nil {
		return 0, err
	}
	return it.call(fn, args, nil)
}

func (it *Interp) call(fn *ir.Function, args []uint64, caller *Frame) (uint64, error) {
	maxDepth := it.MaxDepth
	if maxDepth == 0 {
		maxDepth = 4096
	}
	depth := 0
	if caller != nil {
		depth = caller.Depth + 1
	}
	if depth >= maxDepth {
		return 0, fmt.Errorf("interp: call depth %d exceeded in %s", maxDepth, fn.Name)
	}
	if len(args) != len(fn.Params) {
		return 0, fmt.Errorf("interp: %s wants %d args, got %d", fn.Name, len(fn.Params), len(args))
	}
	var profSteps0 int64
	if it.Prof != nil {
		if !it.profArmed {
			it.profArmed = true
			it.profNext = it.Steps + it.Prof.sampleEvery
			it.profLastSteps = it.Steps
		}
		profSteps0 = it.Steps
	}
	var df *decodedFunc
	nvals := fn.NumValues()
	if !it.treeWalk {
		// Decoded frames carry the function's folded-constant pool in the
		// tail of the value array (see decode.go).
		df = it.prog.decodedFor(fn)
		nvals = df.frameSize
	}
	fr := &Frame{Fn: fn, Depth: depth, Caller: caller, vals: make([]uint64, nvals)}
	for i, p := range fn.Params {
		fr.vals[p.ValueID()] = args[i]
	}
	if df != nil && len(df.pool) > 0 {
		copy(fr.vals[len(fr.vals)-len(df.pool):], df.pool)
	}
	if it.Hooks.OnEnter != nil {
		it.Hooks.OnEnter(fr)
	}
	var ret uint64
	var err error
	if df == nil {
		ret, err = it.exec(fr)
	} else {
		it.hookMask = it.computeHookMask()
		ret, err = it.execDecoded(fr, df)
	}
	// Release stack allocations regardless of how the activation ends.
	for _, a := range fr.allocas {
		if it.Hooks.OnFree != nil {
			it.Hooks.OnFree(fr, nil, a)
		}
		if ferr := it.AS.Free(a); ferr != nil && err == nil {
			err = ferr
		}
	}
	if it.Hooks.OnExit != nil {
		it.Hooks.OnExit(fr)
	}
	if it.Prof != nil {
		it.Prof.noteCall(fn, it.Steps-profSteps0)
		if caller == nil {
			// Outermost activation done: drop the sampling baseline so a
			// later activation does not inherit a stale window.
			it.profLast = time.Time{}
			it.profArmed = false
		}
	}
	return ret, err
}

// stepLimit returns the effective step budget.
func (it *Interp) stepLimit() int64 {
	if it.StepLimit > 0 {
		return it.StepLimit
	}
	return 1 << 40
}

func (it *Interp) exec(fr *Frame) (uint64, error) {
	block := fr.Fn.Entry()
	var prev *ir.Block
	limit := it.stepLimit()
	for {
		// Evaluate phis as a parallel copy based on the incoming edge.
		nPhis := 0
		for _, in := range block.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			nPhis++
		}
		if nPhis > 0 {
			var tmp [8]uint64
			vals := tmp[:0]
			for _, in := range block.Instrs[:nPhis] {
				v, err := it.phiValue(fr, in, prev)
				if err != nil {
					return 0, err
				}
				vals = append(vals, v)
			}
			for i, in := range block.Instrs[:nPhis] {
				fr.vals[in.ValueID()] = vals[i]
			}
		}
		for _, in := range block.Instrs[nPhis:] {
			it.Steps++
			if it.Steps > limit {
				return 0, fmt.Errorf("interp: step limit %d exceeded in %s", limit, fr.Fn.Name)
			}
			if it.Prof != nil && it.Steps >= it.profNext {
				it.profSample(fr, in.Op)
			}
			switch in.Op {
			case ir.OpRet:
				if len(in.Args) == 1 {
					return fr.vals[in.Args[0].ValueID()], nil
				}
				return 0, nil
			case ir.OpBr:
				next := in.Targets[0]
				if it.Hooks.OnBlock != nil {
					it.Hooks.OnBlock(fr, block, next)
				}
				prev, block = block, next
			case ir.OpCondBr:
				next := in.Targets[1]
				if fr.vals[in.Args[0].ValueID()] != 0 {
					next = in.Targets[0]
				}
				if it.Hooks.OnBlock != nil {
					it.Hooks.OnBlock(fr, block, next)
				}
				prev, block = block, next
			default:
				if err := it.execInstr(fr, in); err != nil {
					return 0, err
				}
				continue
			}
			break // control transferred
		}
	}
}

func (it *Interp) phiValue(fr *Frame, phi *ir.Instr, prev *ir.Block) (uint64, error) {
	for i, p := range phi.Preds {
		if p == prev {
			return fr.vals[phi.Args[i].ValueID()], nil
		}
	}
	return 0, fmt.Errorf("interp: phi %s in %s.%s has no incoming for predecessor %v",
		phi, fr.Fn.Name, phi.Blk.Name, prev)
}

func f64(w uint64) float64  { return math.Float64frombits(w) }
func bits(f float64) uint64 { return math.Float64bits(f) }
func b2w(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func (it *Interp) execInstr(fr *Frame, in *ir.Instr) error {
	arg := func(i int) uint64 { return fr.vals[in.Args[i].ValueID()] }
	set := func(v uint64) { fr.vals[in.ValueID()] = v }
	switch in.Op {
	case ir.OpConst, ir.OpFConst:
		set(in.Const)
	case ir.OpSIToFP:
		set(bits(float64(int64(arg(0)))))
	case ir.OpFPToSI:
		set(uint64(int64(f64(arg(0)))))
	case ir.OpAdd:
		set(arg(0) + arg(1))
	case ir.OpSub:
		set(arg(0) - arg(1))
	case ir.OpMul:
		set(arg(0) * arg(1))
	case ir.OpSDiv:
		if arg(1) == 0 {
			return fmt.Errorf("interp: division by zero (%s)", in.Format())
		}
		set(uint64(int64(arg(0)) / int64(arg(1))))
	case ir.OpUDiv:
		if arg(1) == 0 {
			return fmt.Errorf("interp: division by zero (%s)", in.Format())
		}
		set(arg(0) / arg(1))
	case ir.OpSRem:
		if arg(1) == 0 {
			return fmt.Errorf("interp: remainder by zero (%s)", in.Format())
		}
		set(uint64(int64(arg(0)) % int64(arg(1))))
	case ir.OpURem:
		if arg(1) == 0 {
			return fmt.Errorf("interp: remainder by zero (%s)", in.Format())
		}
		set(arg(0) % arg(1))
	case ir.OpAnd:
		set(arg(0) & arg(1))
	case ir.OpOr:
		set(arg(0) | arg(1))
	case ir.OpXor:
		set(arg(0) ^ arg(1))
	case ir.OpShl:
		set(arg(0) << (arg(1) & 63))
	case ir.OpLShr:
		set(arg(0) >> (arg(1) & 63))
	case ir.OpAShr:
		set(uint64(int64(arg(0)) >> (arg(1) & 63)))
	case ir.OpEq:
		set(b2w(arg(0) == arg(1)))
	case ir.OpNe:
		set(b2w(arg(0) != arg(1)))
	case ir.OpSLt:
		set(b2w(int64(arg(0)) < int64(arg(1))))
	case ir.OpSLe:
		set(b2w(int64(arg(0)) <= int64(arg(1))))
	case ir.OpSGt:
		set(b2w(int64(arg(0)) > int64(arg(1))))
	case ir.OpSGe:
		set(b2w(int64(arg(0)) >= int64(arg(1))))
	case ir.OpULt:
		set(b2w(arg(0) < arg(1)))
	case ir.OpUGe:
		set(b2w(arg(0) >= arg(1)))
	case ir.OpFAdd:
		set(bits(f64(arg(0)) + f64(arg(1))))
	case ir.OpFSub:
		set(bits(f64(arg(0)) - f64(arg(1))))
	case ir.OpFMul:
		set(bits(f64(arg(0)) * f64(arg(1))))
	case ir.OpFDiv:
		set(bits(f64(arg(0)) / f64(arg(1))))
	case ir.OpFEq:
		set(b2w(f64(arg(0)) == f64(arg(1))))
	case ir.OpFLt:
		set(b2w(f64(arg(0)) < f64(arg(1))))
	case ir.OpFLe:
		set(b2w(f64(arg(0)) <= f64(arg(1))))
	case ir.OpFGt:
		set(b2w(f64(arg(0)) > f64(arg(1))))
	case ir.OpFGe:
		set(b2w(f64(arg(0)) >= f64(arg(1))))
	case ir.OpSelect:
		if arg(0) != 0 {
			set(arg(1))
		} else {
			set(arg(2))
		}
	case ir.OpPtrToInt, ir.OpIntToPtr:
		set(arg(0))
	case ir.OpLoad:
		addr := arg(0)
		v, err := it.AS.Read(addr, in.Size)
		if err != nil {
			return err
		}
		set(v)
		if it.Hooks.OnLoad != nil {
			it.Hooks.OnLoad(fr, in, addr, in.Size)
		}
	case ir.OpStore:
		addr := arg(1)
		if err := it.AS.Write(addr, in.Size, arg(0)); err != nil {
			return err
		}
		if it.Hooks.OnStore != nil {
			it.Hooks.OnStore(fr, in, addr, in.Size)
		}
	case ir.OpAlloca:
		addr, err := it.AS.Alloc(ir.HeapSystem, uint64(in.Size))
		if err != nil {
			return err
		}
		fr.allocas = append(fr.allocas, addr)
		set(addr)
		if it.Hooks.OnAlloc != nil {
			it.Hooks.OnAlloc(fr, in, addr, uint64(in.Size))
		}
	case ir.OpMalloc:
		size := arg(0)
		addr, err := it.AS.Alloc(ir.HeapSystem, size)
		if err != nil {
			return err
		}
		set(addr)
		if it.Hooks.OnAlloc != nil {
			it.Hooks.OnAlloc(fr, in, addr, size)
		}
	case ir.OpHAlloc:
		size := arg(0)
		addr, err := it.AS.Alloc(in.Heap, size)
		if err != nil {
			return err
		}
		set(addr)
		if it.Hooks.OnAlloc != nil {
			it.Hooks.OnAlloc(fr, in, addr, size)
		}
	case ir.OpFree, ir.OpHDealloc:
		addr := arg(0)
		if it.Hooks.OnFree != nil {
			it.Hooks.OnFree(fr, in, addr)
		}
		if err := it.AS.Free(addr); err != nil {
			return err
		}
	case ir.OpGlobal:
		set(it.globalAddrs[in.GlobalRef])
	case ir.OpMemSet:
		addr, n, b := arg(0), arg(1), byte(arg(2))
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = b
		}
		if err := it.AS.WriteBytes(addr, buf); err != nil {
			return err
		}
		if it.Hooks.OnStore != nil {
			it.Hooks.OnStore(fr, in, addr, int64(n))
		}
	case ir.OpMemCopy:
		dst, src, n := arg(0), arg(1), arg(2)
		buf := make([]byte, n)
		if err := it.AS.ReadBytes(src, buf); err != nil {
			return err
		}
		if it.Hooks.OnLoad != nil {
			it.Hooks.OnLoad(fr, in, src, int64(n))
		}
		if err := it.AS.WriteBytes(dst, buf); err != nil {
			return err
		}
		if it.Hooks.OnStore != nil {
			it.Hooks.OnStore(fr, in, dst, int64(n))
		}
	case ir.OpCall:
		args := make([]uint64, len(in.Args))
		for i := range in.Args {
			args[i] = arg(i)
		}
		if it.Hooks.CallOverride != nil {
			v, handled, err := it.Hooks.CallOverride(fr, in, in.Callee, args)
			if err != nil {
				return err
			}
			if handled {
				set(v)
				return nil
			}
		}
		v, err := it.call(in.Callee, args, fr)
		if err != nil {
			return err
		}
		set(v)
	case ir.OpBuiltin:
		v, err := it.builtin(in, fr)
		if err != nil {
			return err
		}
		set(v)
	case ir.OpPrint:
		text := formatPrint(in, fr)
		if it.Hooks.OnPrint == nil || !it.Hooks.OnPrint(in, text) {
			if it.Out == nil {
				it.Out = &strings.Builder{}
			}
			it.Out.WriteString(text)
		}
	case ir.OpCheckHeap:
		addr := arg(0)
		if it.Hooks.CheckHeap != nil {
			return it.Hooks.CheckHeap(in, addr)
		}
		if addr != 0 && ir.HeapOf(addr) != in.Heap {
			return &MisspecError{Instr: in, Addr: addr, Reason: fmt.Sprintf(
				"separation violated: %#x is in %s, expected %s", addr, ir.HeapOf(addr), in.Heap)}
		}
	case ir.OpPrivateRead:
		if it.Hooks.PrivateRead != nil {
			return it.Hooks.PrivateRead(in, arg(0), in.Size)
		}
	case ir.OpPrivateWrite:
		if it.Hooks.PrivateWrite != nil {
			return it.Hooks.PrivateWrite(in, arg(0), in.Size)
		}
	case ir.OpPrivateReadSpan:
		if it.Hooks.PrivateReadSpan != nil {
			return it.Hooks.PrivateReadSpan(in, arg(0), int64(arg(1)), int64(arg(2)), in.Size)
		}
	case ir.OpPrivateWriteSpan:
		if it.Hooks.PrivateWriteSpan != nil {
			return it.Hooks.PrivateWriteSpan(in, arg(0), int64(arg(1)), int64(arg(2)), in.Size)
		}
	case ir.OpReduxWrite:
		if it.Hooks.ReduxWrite != nil {
			return it.Hooks.ReduxWrite(in, arg(0), in.Size)
		}
	case ir.OpPredict:
		if it.Hooks.Predict != nil {
			return it.Hooks.Predict(in, arg(0), arg(1))
		}
		if arg(0) != arg(1) {
			return &MisspecError{Instr: in, Reason: fmt.Sprintf(
				"value prediction failed: %d != %d", arg(0), arg(1))}
		}
	case ir.OpMisspec:
		if it.Hooks.Misspec != nil {
			return it.Hooks.Misspec(in)
		}
		return &MisspecError{Instr: in, Reason: "explicit misspec"}
	default:
		return fmt.Errorf("interp: cannot execute %s", in.Format())
	}
	return nil
}

func (it *Interp) builtin(in *ir.Instr, fr *Frame) (uint64, error) {
	arg := func(i int) float64 { return f64(fr.vals[in.Args[i].ValueID()]) }
	switch in.Builtin {
	case "sqrt":
		return bits(math.Sqrt(arg(0))), nil
	case "exp":
		return bits(math.Exp(arg(0))), nil
	case "log":
		return bits(math.Log(arg(0))), nil
	case "pow":
		return bits(math.Pow(arg(0), arg(1))), nil
	case "fabs":
		return bits(math.Abs(arg(0))), nil
	case "floor":
		return bits(math.Floor(arg(0))), nil
	case "sin":
		return bits(math.Sin(arg(0))), nil
	case "cos":
		return bits(math.Cos(arg(0))), nil
	default:
		return 0, fmt.Errorf("interp: unknown builtin %q", in.Builtin)
	}
}

// formatPrint renders an OpPrint: verbs %d, %u, %x, %f, %g, %c and %%.
func formatPrint(in *ir.Instr, fr *Frame) string {
	var sb strings.Builder
	s := in.Str
	argi := 0
	nextArg := func() uint64 {
		if argi < len(in.Args) {
			v := fr.vals[in.Args[argi].ValueID()]
			argi++
			return v
		}
		return 0
	}
	for i := 0; i < len(s); i++ {
		if s[i] != '%' || i+1 >= len(s) {
			sb.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'd':
			fmt.Fprintf(&sb, "%d", int64(nextArg()))
		case 'u':
			fmt.Fprintf(&sb, "%d", nextArg())
		case 'x':
			fmt.Fprintf(&sb, "%x", nextArg())
		case 'f':
			fmt.Fprintf(&sb, "%.6f", f64(nextArg()))
		case 'g':
			fmt.Fprintf(&sb, "%g", f64(nextArg()))
		case 'c':
			sb.WriteByte(byte(nextArg()))
		case '%':
			sb.WriteByte('%')
		default:
			sb.WriteByte('%')
			sb.WriteByte(s[i])
		}
	}
	return sb.String()
}
