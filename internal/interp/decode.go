package interp

import (
	"math"
	"sync"

	"privateer/internal/ir"
)

// This file implements the pre-decoder: it flattens a function's blocks into
// a linear code array whose instructions carry pre-resolved operand value
// slots (small integers indexing the frame's value array), constants folded
// into an operand pool, and pre-computed branch targets and φ-edge parallel
// copies. Decoding runs once per function per Program; every interpreter
// sharing the Program (the speculative runtime's master, workers and
// recovery interpreter) executes the same decoded form.

// noSlot marks an absent operand slot (e.g. a void return).
const noSlot = math.MinInt32

// Program is the shared decoded form of one module. All interpreters
// constructed over the same Program reuse its per-function decode cache, so
// parallel workers pay the decode cost once instead of re-deriving operand
// walks every instruction.
type Program struct {
	// Mod is the module this program decodes.
	Mod *ir.Module

	funcs sync.Map // *ir.Function -> *decodedFunc
}

// NewProgram returns an empty decode cache for mod. Functions decode lazily
// on first call.
func NewProgram(mod *ir.Module) *Program { return &Program{Mod: mod} }

// progCache is the process-wide module->Program table behind SharedProgram.
var progCache sync.Map // *ir.Module -> *Program

// SharedProgram returns the process-wide decoded Program for mod, creating
// it on first use. Concurrent region invocations over the same module (the
// multi-tenant service's steady state) share one decode cache this way, so
// each function decodes once per process rather than once per invocation.
// The module must not be mutated once it is executing through a shared
// Program; compile-time passes run before the first invocation.
func SharedProgram(mod *ir.Module) *Program {
	if v, ok := progCache.Load(mod); ok {
		return v.(*Program)
	}
	v, _ := progCache.LoadOrStore(mod, NewProgram(mod))
	return v.(*Program)
}

// decodedFor returns the decoded form of fn, decoding (or re-decoding after
// IR mutation) as needed. Concurrent first calls may race to decode the same
// function; LoadOrStore makes them converge on a single decoded object, so
// interpreters sharing the Program never observe two forms of one function.
func (p *Program) decodedFor(fn *ir.Function) *decodedFunc {
	if v, ok := p.funcs.Load(fn); ok {
		df := v.(*decodedFunc)
		if df.shapeMatches(fn) {
			return df
		}
		// The IR changed shape since the cached decode (a mutation pass ran
		// between invocations): replace the stale entry.
		df = decodeFunc(fn)
		p.funcs.Store(fn, df)
		return df
	}
	df := decodeFunc(fn)
	if v, raced := p.funcs.LoadOrStore(fn, df); raced {
		if cached := v.(*decodedFunc); cached.shapeMatches(fn) {
			return cached
		}
	}
	return df
}

// dinstr is one decoded instruction. Operand fields a, b, c index the
// frame's value array when non-negative; a negative operand ^i names entry i
// of the function's constant pool (a constant folded at decode time).
type dinstr struct {
	op  ir.Op
	dst int32
	// a, b, c are the first three operand slots (most ops use at most
	// three; wider ops read through in.Args on the fallback path).
	a, b, c int32
	// t0, t1 are decoded branch-target pcs for terminators (t0 also serves
	// OpBr; t0/t1 are the true/false targets of OpCondBr).
	t0, t1 int32
	// e0, e1 index the function's φ-edge copy lists for the corresponding
	// branch targets; -1 when the target block has no φs.
	e0, e1 int32
	// size is the access width (loads, stores, checks) or alloca size.
	size int64
	// cnst is the literal of OpConst/OpFConst.
	cnst uint64
	// in is the original instruction, for hooks, errors and wide operand
	// lists.
	in *ir.Instr
}

// phiCopy is one assignment of an edge's parallel φ-copy.
type phiCopy struct{ dst, src int32 }

// phiEdge is the decoded φ behavior of one CFG edge: the parallel copies to
// perform when control transfers along it, or the φ that makes the transfer
// invalid (no incoming value for the edge's source block).
type phiEdge struct {
	copies []phiCopy
	// badPhi, when non-nil, is the first φ of the target block with no
	// incoming value for this edge; taking the edge reproduces the
	// interpreter's "no incoming for predecessor" error.
	badPhi *ir.Instr
}

// decodedFunc is the executable form of one function.
type decodedFunc struct {
	fn    *ir.Function
	code  []dinstr
	edges []phiEdge
	pool  []uint64
	// frameSize is NumValues plus the pool length: frames for decoded
	// execution append the folded constants to the tail of the value array,
	// so an operand read is a single index with no slot-vs-pool branch.
	frameSize int
	// entryPhi is the first leading φ of the entry block, if any; entering
	// the function then fails exactly as the tree-walking executor does.
	entryPhi *ir.Instr

	// Shape fingerprint: decoding is invalidated if the function's block
	// count, instruction count or value-ID horizon changes (every IR
	// mutation pass alters at least one of these).
	shapeBlocks int
	shapeInstrs int
	shapeValues int
}

func fnShape(fn *ir.Function) (blocks, instrs, values int) {
	blocks = len(fn.Blocks)
	for _, b := range fn.Blocks {
		instrs += len(b.Instrs)
	}
	return blocks, instrs, fn.NumValues()
}

func (df *decodedFunc) shapeMatches(fn *ir.Function) bool {
	b, i, v := fnShape(fn)
	return df.shapeBlocks == b && df.shapeInstrs == i && df.shapeValues == v
}

// leadingPhis counts the φ instructions at the head of b (the only ones the
// executor treats as φs, matching the tree-walking executor).
func leadingPhis(b *ir.Block) int {
	n := 0
	for _, in := range b.Instrs {
		if in.Op != ir.OpPhi {
			break
		}
		n++
	}
	return n
}

// decoder carries per-function decode state.
type decoder struct {
	df *decodedFunc
	// poolIdx dedupes folded constants by value.
	poolIdx map[uint64]int32
	// blockConsts maps constants defined earlier in the current block to
	// their instructions; only those fold (a constant's slot is written when
	// the constant executes, so folding across blocks could change the
	// behavior of use-before-def programs the verifier does not reject).
	blockConsts map[*ir.Instr]bool
}

// slotOf resolves operand v to a frame slot or, for a constant already
// defined in the current block, a folded pool reference.
func (d *decoder) slotOf(v ir.Value) int32 {
	if in, ok := v.(*ir.Instr); ok && d.blockConsts[in] {
		idx, have := d.poolIdx[in.Const]
		if !have {
			idx = int32(len(d.df.pool))
			d.df.pool = append(d.df.pool, in.Const)
			d.poolIdx[in.Const] = idx
		}
		return ^idx
	}
	return int32(v.ValueID())
}

// edgeFor builds (or reuses nothing — edges are per branch-target) the
// φ-copy list for the CFG edge from -> to.
func (d *decoder) edgeFor(from, to *ir.Block) int32 {
	n := leadingPhis(to)
	if n == 0 {
		return -1
	}
	e := phiEdge{}
	for _, phi := range to.Instrs[:n] {
		src := int32(0)
		found := false
		for i, p := range phi.Preds {
			if p == from {
				src = d.slotOf(phi.Args[i])
				found = true
				break
			}
		}
		if !found {
			e.badPhi = phi
			break
		}
		e.copies = append(e.copies, phiCopy{dst: int32(phi.ValueID()), src: src})
	}
	d.df.edges = append(d.df.edges, e)
	return int32(len(d.df.edges) - 1)
}

// decodeFunc flattens fn into its decoded form.
func decodeFunc(fn *ir.Function) *decodedFunc {
	df := &decodedFunc{fn: fn}
	df.shapeBlocks, df.shapeInstrs, df.shapeValues = fnShape(fn)

	starts := make(map[*ir.Block]int32, len(fn.Blocks))
	pc := int32(0)
	for _, b := range fn.Blocks {
		starts[b] = pc
		pc += int32(len(b.Instrs) - leadingPhis(b))
		if b.Terminator() == nil {
			pc++ // synthetic guard (see below)
		}
	}
	if len(fn.Blocks) > 0 && leadingPhis(fn.Entry()) > 0 {
		df.entryPhi = fn.Entry().Instrs[0]
	}

	d := &decoder{df: df, poolIdx: map[uint64]int32{}}
	df.code = make([]dinstr, 0, pc)
	for _, b := range fn.Blocks {
		d.blockConsts = map[*ir.Instr]bool{}
		for _, in := range b.Instrs[leadingPhis(b):] {
			di := dinstr{op: in.Op, dst: int32(in.ValueID()), a: noSlot, b: noSlot, c: noSlot,
				e0: -1, e1: -1, size: in.Size, cnst: in.Const, in: in}
			switch in.Op {
			case ir.OpBr:
				di.t0 = starts[in.Targets[0]]
				di.e0 = d.edgeFor(b, in.Targets[0])
			case ir.OpCondBr:
				di.a = d.slotOf(in.Args[0])
				di.t0 = starts[in.Targets[0]]
				di.t1 = starts[in.Targets[1]]
				di.e0 = d.edgeFor(b, in.Targets[0])
				di.e1 = d.edgeFor(b, in.Targets[1])
			case ir.OpRet:
				if len(in.Args) == 1 {
					di.a = d.slotOf(in.Args[0])
				}
			case ir.OpPhi:
				// A φ below a non-φ instruction: the executor rejects it
				// at runtime via the fallback path.
			default:
				// Pre-resolve up to three operands; wider instructions
				// (calls, prints, memset/memcopy) read through in.Args.
				if len(in.Args) > 0 {
					di.a = d.slotOf(in.Args[0])
				}
				if len(in.Args) > 1 {
					di.b = d.slotOf(in.Args[1])
				}
				if len(in.Args) > 2 {
					di.c = d.slotOf(in.Args[2])
				}
			}
			df.code = append(df.code, di)
			if in.Op == ir.OpConst || in.Op == ir.OpFConst {
				d.blockConsts[in] = true
			}
		}
		if b.Terminator() == nil {
			// Unterminated block (invalid IR): stop with an error instead
			// of falling through into the next block's code.
			df.code = append(df.code, dinstr{op: ir.OpInvalid, dst: noSlot,
				a: noSlot, b: noSlot, c: noSlot, e0: -1, e1: -1})
		}
	}

	// Rebase folded-constant references: the executor's frames carry the
	// pool in the tail of the value array (vals[NumValues:]), so pool entry
	// i lives at slot NumValues+i and operand reads need no pool branch.
	nv := int32(fn.NumValues())
	rebase := func(s int32) int32 {
		if s < 0 && s != noSlot {
			return nv + ^s
		}
		return s
	}
	for i := range df.code {
		di := &df.code[i]
		di.a, di.b, di.c = rebase(di.a), rebase(di.b), rebase(di.c)
	}
	for i := range df.edges {
		for j := range df.edges[i].copies {
			df.edges[i].copies[j].src = rebase(df.edges[i].copies[j].src)
		}
	}
	df.frameSize = fn.NumValues() + len(df.pool)
	return df
}
