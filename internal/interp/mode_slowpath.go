//go:build slowpath

package interp

// defaultDecode is false under -tags=slowpath: every interpreter uses the
// tree-walking reference executor instead of the pre-decoded dispatch loop.
const defaultDecode = false
