package interp

import (
	"math"
	"testing"

	"privateer/internal/ir"
	"privateer/internal/vm"
)

func TestUnsignedOps(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		big := b.Sub(b.I(0), b.I(1)) // all ones
		q := b.UDiv(big, b.I(3))     // huge
		r := b.URem(big, b.I(10))    // 5 (2^64-1 mod 10)
		lt := b.ULt(b.I(1), big)     // 1
		ge := b.UGe(big, b.I(1))     // 1
		b.Ret(b.Add(b.Add(lt, ge), b.Add(b.SRem(q, b.I(1000)), r)))
	})
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(1 + 1 + ((^uint64(0))/3)%1000 + (^uint64(0))%10)
	if v != want {
		t.Errorf("got %d want %d", v, want)
	}
}

func TestShiftAndBitOps(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		x := b.Shl(b.I(1), b.I(40))
		y := b.LShr(x, b.I(8))
		z := b.Xor(b.Or(x, y), b.And(x, y))
		b.Ret(z)
	})
	if err != nil {
		t.Fatal(err)
	}
	x := uint64(1) << 40
	y := x >> 8
	if v != (x|y)^(x&y) {
		t.Errorf("got %#x", v)
	}
}

func TestConversions(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		f := b.SIToFP(b.I(-7))
		i := b.FPToSI(b.FMul(f, b.Flt(2.5))) // -17.5 -> -17
		p := b.IntToPtrVal(b.I(12345))
		pi := b.PtrToInt(p)
		b.Ret(b.Add(i, pi))
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(v) != -17+12345 {
		t.Errorf("got %d", int64(v))
	}
}

func TestBuiltinsCoverage(t *testing.T) {
	cases := []struct {
		name string
		arg  float64
		want float64
	}{
		{"sqrt", 9, 3},
		{"exp", 0, 1},
		{"log", 1, 0},
		{"fabs", -2.5, 2.5},
		{"floor", 2.9, 2},
		{"sin", 0, 0},
		{"cos", 0, 1},
	}
	for _, c := range cases {
		m := ir.NewModule("t")
		f := m.NewFunc("main", ir.F64)
		b := ir.NewBuilder(f)
		b.Ret(b.Builtin(c.name, ir.F64, b.Flt(c.arg)))
		it := New(m, vm.NewAddressSpace())
		v, err := it.Run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if math.Float64frombits(v) != c.want {
			t.Errorf("%s(%g) = %g, want %g", c.name, c.arg, math.Float64frombits(v), c.want)
		}
	}
	// pow takes two args.
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.F64)
	b := ir.NewBuilder(f)
	b.Ret(b.Builtin("pow", ir.F64, b.Flt(2), b.Flt(10)))
	v, err := New(m, vm.NewAddressSpace()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64frombits(v) != 1024 {
		t.Errorf("pow(2,10) = %g", math.Float64frombits(v))
	}
	// Unknown builtin errors.
	m2 := ir.NewModule("t")
	f2 := m2.NewFunc("main", ir.F64)
	b2 := ir.NewBuilder(f2)
	b2.Ret(b2.Builtin("frobnicate", ir.F64, b2.Flt(1)))
	if _, err := New(m2, vm.NewAddressSpace()).Run(); err == nil {
		t.Error("unknown builtin accepted")
	}
}

func TestGlobalLayoutSharing(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("shared", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.Load(b.Global(g), 8))
	as := vm.NewAddressSpace()
	it1 := New(m, as)
	if err := it1.LayOutGlobals(); err != nil {
		t.Fatal(err)
	}
	addr := it1.GlobalAddr(g)
	if err := as.Write(addr, 8, 777); err != nil {
		t.Fatal(err)
	}
	// A second interpreter adopting the layout sees the same address.
	it2 := New(m, as)
	it2.AdoptLayout(it1.GlobalLayout())
	v, err := it2.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 777 {
		t.Errorf("adopted layout read %d, want 777", v)
	}
	// SetGlobalAddr overrides a single entry.
	it3 := New(m, as)
	other, _ := as.Alloc(ir.HeapSystem, 8)
	if err := as.Write(other, 8, 42); err != nil {
		t.Fatal(err)
	}
	it3.SetGlobalAddr(g, other)
	if v, _ := it3.Run(); v != 42 {
		t.Errorf("SetGlobalAddr read %d, want 42", v)
	}
}

func TestCallOverride(t *testing.T) {
	m := ir.NewModule("t")
	callee := m.NewFunc("magic", ir.I64)
	cb := ir.NewBuilder(callee)
	cb.Ret(cb.I(1)) // real body returns 1
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.Call(callee))
	it := New(m, vm.NewAddressSpace())
	it.Hooks.CallOverride = func(fr *Frame, in *ir.Instr, cal *ir.Function, args []uint64) (uint64, bool, error) {
		if cal == callee {
			return 99, true, nil
		}
		return 0, false, nil
	}
	v, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 99 {
		t.Errorf("override not applied: %d", v)
	}
}

func TestStepsAccounting(t *testing.T) {
	_, it, err := run(t, func(m *ir.Module, b *ir.Builder) {
		b.For("i", b.I(0), b.I(100), func(_ *ir.Instr) {})
		b.Ret(b.I(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	if it.Steps < 100 {
		t.Errorf("steps = %d, want >= 100", it.Steps)
	}
}

func TestRecursionDepthLimit(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.Call(f)) // infinite recursion
	it := New(m, vm.NewAddressSpace())
	it.MaxDepth = 64
	if _, err := it.Run(); err == nil {
		t.Error("infinite recursion not stopped")
	}
}
