package interp

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/ir"
)

// DefaultSampleEvery is the profiler's default sampling period: one
// wall-clock sample per this many executed instructions. Large enough
// that the time.Now() cost vanishes, small enough to attribute time
// within a single checkpoint interval.
const DefaultSampleEvery = 1024

// OpProfiler is a sampling per-opcode, per-function execution profiler.
// One profiler is shared by every interpreter of a run (master, workers,
// recovery). Every sampleEvery executed instructions the interpreter takes
// one sample: the instruction window since the previous sample is
// attributed to the opcode the sample landed on, and the wall time since
// the previous sample is attributed to that opcode and the current
// function. Because sampling is by instruction count, the expected share
// of windows landing on an opcode equals its share of the instruction
// stream, so Executed converges on the true per-opcode counts — it is an
// unbiased estimate, not an exact count. The fast path pays only one
// register compare per instruction. All methods are safe for concurrent
// use.
type OpProfiler struct {
	sampleEvery int64
	opExec      [ir.NumOps]int64 // atomic; estimated executed instructions per opcode
	opSamples   [ir.NumOps]int64 // atomic; samples per opcode
	opSampleNS  [ir.NumOps]int64 // atomic; sampled wall time per opcode
	fns         sync.Map         // *ir.Function -> *funcProf
}

// funcProf accumulates one IR function's profile; all fields atomic.
type funcProf struct {
	calls    int64
	steps    int64
	samples  int64
	sampleNS int64
}

// NewOpProfiler returns a profiler sampling wall time every sampleEvery
// executed instructions; sampleEvery <= 0 selects DefaultSampleEvery.
func NewOpProfiler(sampleEvery int64) *OpProfiler {
	if sampleEvery <= 0 {
		sampleEvery = DefaultSampleEvery
	}
	return &OpProfiler{sampleEvery: sampleEvery}
}

// fnProf finds or creates fn's profile record.
func (p *OpProfiler) fnProf(fn *ir.Function) *funcProf {
	if v, ok := p.fns.Load(fn); ok {
		return v.(*funcProf)
	}
	v, _ := p.fns.LoadOrStore(fn, &funcProf{})
	return v.(*funcProf)
}

// noteCall records one completed activation of fn with its inclusive
// executed-instruction count.
func (p *OpProfiler) noteCall(fn *ir.Function, steps int64) {
	fp := p.fnProf(fn)
	atomic.AddInt64(&fp.calls, 1)
	atomic.AddInt64(&fp.steps, steps)
}

// profSample takes one sample: the instruction window and (when a previous
// timestamp exists) the wall time since the last sample are attributed to
// op, and the interpreter's next-sample step threshold is rearmed. Callers
// must have synced it.Steps first.
func (it *Interp) profSample(fr *Frame, op ir.Op) {
	p := it.Prof
	if win := it.Steps - it.profLastSteps; win > 0 {
		atomic.AddInt64(&p.opExec[op], win)
	}
	it.profLastSteps = it.Steps
	it.profNext = it.Steps + p.sampleEvery
	now := time.Now()
	if !it.profLast.IsZero() {
		d := now.Sub(it.profLast).Nanoseconds()
		atomic.AddInt64(&p.opSampleNS[op], d)
		atomic.AddInt64(&p.opSamples[op], 1)
		fp := p.fnProf(fr.Fn)
		atomic.AddInt64(&fp.samples, 1)
		atomic.AddInt64(&fp.sampleNS, d)
	}
	it.profLast = now
}

// OpProfRow is one opcode's profile snapshot.
type OpProfRow struct {
	// Op is the opcode mnemonic.
	Op string
	// Executed is the estimated executed-instruction count (the sum of
	// sampling windows attributed to this opcode).
	Executed int64
	// Samples counts wall-time samples landing on this opcode.
	Samples int64
	// SampledNS is the wall time statistically attributed to this opcode.
	SampledNS int64
}

// FuncProfRow is one IR function's profile snapshot.
type FuncProfRow struct {
	// Fn is the function name.
	Fn string
	// Calls counts completed activations.
	Calls int64
	// Steps is the inclusive executed-instruction total.
	Steps int64
	// Samples counts wall-time samples taken inside the function.
	Samples int64
	// SampledNS is the wall time statistically attributed to the function.
	SampledNS int64
}

// Ops snapshots the nonzero per-opcode rows, busiest first.
func (p *OpProfiler) Ops() []OpProfRow {
	if p == nil {
		return nil
	}
	rows := make([]OpProfRow, 0, 32)
	for op := 0; op < ir.NumOps; op++ {
		n := atomic.LoadInt64(&p.opExec[op])
		s := atomic.LoadInt64(&p.opSamples[op])
		if n == 0 && s == 0 {
			continue
		}
		rows = append(rows, OpProfRow{
			Op:        ir.Op(op).String(),
			Executed:  n,
			Samples:   s,
			SampledNS: atomic.LoadInt64(&p.opSampleNS[op]),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Executed != rows[j].Executed {
			return rows[i].Executed > rows[j].Executed
		}
		return rows[i].Op < rows[j].Op
	})
	return rows
}

// Funcs snapshots the per-function rows, heaviest (by steps) first.
func (p *OpProfiler) Funcs() []FuncProfRow {
	if p == nil {
		return nil
	}
	var rows []FuncProfRow
	p.fns.Range(func(k, v any) bool {
		fn := k.(*ir.Function)
		fp := v.(*funcProf)
		rows = append(rows, FuncProfRow{
			Fn:        fn.Name,
			Calls:     atomic.LoadInt64(&fp.calls),
			Steps:     atomic.LoadInt64(&fp.steps),
			Samples:   atomic.LoadInt64(&fp.samples),
			SampledNS: atomic.LoadInt64(&fp.sampleNS),
		})
		return true
	})
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Steps != rows[j].Steps {
			return rows[i].Steps > rows[j].Steps
		}
		return rows[i].Fn < rows[j].Fn
	})
	return rows
}

// TotalExecuted sums the per-opcode estimated executed-instruction counts.
// It trails the true executed total by at most one sampling window per
// interpreter (the tail after each interpreter's last sample).
func (p *OpProfiler) TotalExecuted() int64 {
	if p == nil {
		return 0
	}
	var t int64
	for op := 0; op < ir.NumOps; op++ {
		t += atomic.LoadInt64(&p.opExec[op])
	}
	return t
}
