package interp

import (
	"fmt"
	"strings"
	"testing"

	"privateer/internal/ir"
	"privateer/internal/vm"
)

// run builds a module with build, verifies it, promotes allocas, and
// executes main, returning the result, the interpreter and any error.
func run(t *testing.T, build func(m *ir.Module, b *ir.Builder)) (uint64, *Interp, error) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	build(m, b)
	if err := ir.Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	if err := ir.Verify(m); err != nil {
		t.Fatalf("post-mem2reg Verify: %v", err)
	}
	it := New(m, vm.NewAddressSpace())
	v, err := it.Run()
	return v, it, err
}

func TestArithmetic(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		x := b.Mul(b.Add(b.I(3), b.I(4)), b.I(5)) // 35
		y := b.SDiv(x, b.I(2))                    // 17
		z := b.Sub(y, b.SRem(b.I(7), b.I(3)))     // 16
		b.Ret(z)
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 16 {
		t.Errorf("got %d want 16", v)
	}
}

func TestSignedOps(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		neg := b.Sub(b.I(0), b.I(10)) // -10
		q := b.SDiv(neg, b.I(3))      // -3
		lt := b.SLt(neg, b.I(0))      // 1
		sh := b.AShr(neg, b.I(1))     // -5
		b.Ret(b.Add(b.Add(q, lt), sh))
	})
	if err != nil {
		t.Fatal(err)
	}
	if int64(v) != -3+1-5 {
		t.Errorf("got %d want -7", int64(v))
	}
}

func TestFloatOps(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		x := b.FMul(b.Flt(1.5), b.Flt(4.0))            // 6.0
		y := b.FDiv(b.FAdd(x, b.Flt(2.0)), b.Flt(2.0)) // 4.0
		r := b.Builtin("sqrt", ir.F64, y)              // 2.0
		b.Ret(b.FPToSI(r))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("got %d want 2", v)
	}
}

func TestLoopSum(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		acc := b.Local("acc")
		b.St(b.I(0), acc)
		b.For("i", b.I(0), b.I(101), func(iv *ir.Instr) {
			b.St(b.Add(b.Ld(acc), b.Ld(iv)), acc)
		})
		b.Ret(b.Ld(acc))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 5050 {
		t.Errorf("got %d want 5050", v)
	}
}

func TestGlobalsAndMemory(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		g := m.NewGlobal("table", 80)
		b.For("i", b.I(0), b.I(10), func(iv *ir.Instr) {
			slot := b.Add(b.Global(g), b.Mul(b.Ld(iv), b.I(8)))
			b.Store(b.Mul(b.Ld(iv), b.Ld(iv)), slot, 8)
		})
		// Sum the table.
		acc := b.Local("acc")
		b.St(b.I(0), acc)
		b.For("j", b.I(0), b.I(10), func(iv *ir.Instr) {
			slot := b.Add(b.Global(g), b.Mul(b.Ld(iv), b.I(8)))
			b.St(b.Add(b.Ld(acc), b.Load(slot, 8)), acc)
		})
		b.Ret(b.Ld(acc))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 285 { // sum of squares 0..9
		t.Errorf("got %d want 285", v)
	}
}

func TestGlobalInitialContents(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		g := m.NewGlobal("data", 16)
		g.Init = []byte{42} // byte 0 = 42, rest zero
		b.Ret(b.Load(b.Global(g), 1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("got %d want 42", v)
	}
}

func TestMallocFreeLinkedList(t *testing.T) {
	// Build a 5-node list, sum its payloads, free it.
	v, it, err := run(t, func(m *ir.Module, b *ir.Builder) {
		head := b.Local("head")
		b.St(b.P(0), head)
		b.For("i", b.I(1), b.I(6), func(iv *ir.Instr) {
			n := b.Malloc("node", b.I(16))
			b.Store(b.Ld(iv), n, 8)                   // payload
			b.Store(b.LdP(head), b.Add(n, b.I(8)), 8) // next
			b.St(n, head)
		})
		acc := b.Local("acc")
		b.St(b.I(0), acc)
		cur := b.Local("cur")
		b.St(b.LdP(head), cur)
		b.While(func() ir.Value { return b.Ne(b.LdP(cur), b.P(0)) }, func() {
			b.St(b.Add(b.Ld(acc), b.Load(b.LdP(cur), 8)), acc)
			next := b.LoadPtr(b.Add(b.LdP(cur), b.I(8)))
			b.Free(b.LdP(cur))
			b.St(next, cur)
		})
		b.Ret(b.Ld(acc))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 15 {
		t.Errorf("got %d want 15", v)
	}
	if live := it.AS.LiveObjects(ir.HeapSystem); live != 0 {
		t.Errorf("leaked %d objects", live)
	}
}

func TestCallsAndRecursion(t *testing.T) {
	m := ir.NewModule("t")
	fib := m.NewFunc("fib", ir.I64)
	n := fib.NewParam("n", ir.I64)
	{
		b := ir.NewBuilder(fib)
		rec := b.NewBlock("rec")
		base := b.NewBlock("base")
		b.CondBr(b.SLt(n, b.I(2)), base, rec)
		b.SetBlock(base)
		b.Ret(n)
		b.SetBlock(rec)
		a := b.Call(fib, b.Sub(n, b.I(1)))
		c := b.Call(fib, b.Sub(n, b.I(2)))
		b.Ret(b.Add(a, c))
	}
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Ret(b.Call(fib, b.I(15)))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	it := New(m, vm.NewAddressSpace())
	v, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 610 {
		t.Errorf("fib(15) = %d, want 610", v)
	}
}

func TestAllocaFreedOnReturn(t *testing.T) {
	m := ir.NewModule("t")
	helper := m.NewFunc("helper", ir.I64)
	{
		b := ir.NewBuilder(helper)
		buf := b.Alloca("buf", 256)
		b.Store(b.I(7), buf, 8)
		b.Ret(b.Load(buf, 8))
	}
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	acc := b.Local("acc")
	b.St(b.I(0), acc)
	b.For("i", b.I(0), b.I(10), func(_ *ir.Instr) {
		b.St(b.Add(b.Ld(acc), b.Call(helper)), acc)
	})
	b.Ret(b.Ld(acc))
	ir.PromoteAllocas(f)
	it := New(m, vm.NewAddressSpace())
	v, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 70 {
		t.Errorf("got %d want 70", v)
	}
	if live := it.AS.LiveObjects(ir.HeapSystem); live != 0 {
		t.Errorf("stack allocations leaked: %d", live)
	}
}

func TestPrintFormatting(t *testing.T) {
	_, it, err := run(t, func(m *ir.Module, b *ir.Builder) {
		b.Print("i=%d f=%g pct=%%\n", b.I(-3), b.Flt(2.5))
		b.Ret(b.I(0))
	})
	if err != nil {
		t.Fatal(err)
	}
	got := it.Out.String()
	want := "i=-3 f=2.5 pct=%\n"
	if got != want {
		t.Errorf("print output %q, want %q", got, want)
	}
}

func TestPrintHookIntercepts(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Print("hello %d\n", b.I(1))
	b.Ret(b.I(0))
	it := New(m, vm.NewAddressSpace())
	var captured []string
	it.Hooks.OnPrint = func(in *ir.Instr, text string) bool {
		captured = append(captured, text)
		return true
	}
	if _, err := it.Run(); err != nil {
		t.Fatal(err)
	}
	if len(captured) != 1 || captured[0] != "hello 1\n" {
		t.Errorf("captured %v", captured)
	}
	if it.Out.Len() != 0 {
		t.Errorf("handled print still reached Out: %q", it.Out.String())
	}
}

func TestHAllocRoutesToHeap(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Ptr)
	b := ir.NewBuilder(f)
	p := b.HAlloc("obj", b.I(64), ir.HeapShortLived)
	b.Store(b.I(9), p, 8)
	b.HDealloc(p, ir.HeapShortLived)
	b.Ret(p)
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	it := New(m, vm.NewAddressSpace())
	addr, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if ir.HeapOf(addr) != ir.HeapShortLived {
		t.Errorf("h_alloc returned %s address", ir.HeapOf(addr))
	}
	if it.AS.LiveObjects(ir.HeapShortLived) != 0 {
		t.Error("h_dealloc did not free")
	}
}

func TestDivisionByZeroTraps(t *testing.T) {
	_, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		b.Ret(b.SDiv(b.I(1), b.I(0)))
	})
	if err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("err = %v, want division by zero", err)
	}
}

func TestStepLimit(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	loop := b.NewBlock("loop")
	b.Br(loop)
	b.SetBlock(loop)
	b.Br(loop)
	it := New(m, vm.NewAddressSpace())
	it.StepLimit = 1000
	if _, err := it.Run(); err == nil {
		t.Error("infinite loop not stopped by step limit")
	}
}

func TestMisspecErrorClassification(t *testing.T) {
	err := error(&MisspecError{Reason: "test"})
	if !IsMisspec(err) {
		t.Error("IsMisspec failed on MisspecError")
	}
	wrapped := fmt.Errorf("outer: %w", err)
	if !IsMisspec(wrapped) {
		t.Error("IsMisspec failed on wrapped MisspecError")
	}
	if IsMisspec(nil) || IsMisspec(fmt.Errorf("plain")) {
		t.Error("IsMisspec false positive")
	}
}

func TestCheckHeapDefaultValidatesTag(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	good := b.HAlloc("g", b.I(8), ir.HeapPrivate)
	b.CheckHeap(good, ir.HeapPrivate) // passes
	bad := b.HAlloc("b", b.I(8), ir.HeapReadOnly)
	b.CheckHeap(bad, ir.HeapPrivate) // must misspeculate
	b.Ret()
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	it := New(m, vm.NewAddressSpace())
	_, err := it.Run()
	if !IsMisspec(err) {
		t.Errorf("err = %v, want misspeculation", err)
	}
}

func TestPredictDefault(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunc("main", ir.Void)
	b := ir.NewBuilder(f)
	b.Predict(b.I(5), b.I(5)) // passes
	b.Predict(b.I(5), b.I(6)) // fails
	b.Ret()
	it := New(m, vm.NewAddressSpace())
	_, err := it.Run()
	if !IsMisspec(err) {
		t.Errorf("err = %v, want misspeculation", err)
	}
}

func TestMemSetAndMemCopy(t *testing.T) {
	v, _, err := run(t, func(m *ir.Module, b *ir.Builder) {
		src := b.Alloca("src", 32)
		dst := b.Alloca("dst", 32)
		b.MemSet(src, b.I(32), b.I(0x5a))
		b.MemCopy(dst, src, b.I(32))
		b.Ret(b.Load(b.Add(dst, b.I(31)), 1))
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0x5a {
		t.Errorf("got %#x want 0x5a", v)
	}
}

func TestHookObservesLoadsAndStores(t *testing.T) {
	m := ir.NewModule("t")
	g := m.NewGlobal("g", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	addr := b.Global(g)
	b.Store(b.I(1), addr, 8)
	b.Ret(b.Load(addr, 8))
	it := New(m, vm.NewAddressSpace())
	loads, stores := 0, 0
	it.Hooks.OnLoad = func(fr *Frame, in *ir.Instr, a uint64, s int64) { loads++ }
	it.Hooks.OnStore = func(fr *Frame, in *ir.Instr, a uint64, s int64) { stores++ }
	if _, err := it.Run(); err != nil {
		t.Fatal(err)
	}
	if loads != 1 || stores != 1 {
		t.Errorf("loads=%d stores=%d, want 1/1", loads, stores)
	}
}
