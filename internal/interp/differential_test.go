package interp_test

import (
	"fmt"
	"testing"

	"privateer/internal/interp"
	"privateer/internal/randprog"
	"privateer/internal/vm"
)

// TestDecodedMatchesTreeWalk runs randomly generated programs through both
// executors — the pre-decoded dispatch loop and the tree-walking reference —
// and requires bit-identical results: same return value, same output, same
// exact step count, same error.
func TestDecodedMatchesTreeWalk(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			cfg := randprog.DefaultConfig(seed)
			iters := uint64(cfg.Iterations)

			mod := randprog.Generate(cfg)
			fast := interp.New(mod, vm.NewAddressSpace())
			fastRet, fastErr := fast.Run(iters)

			slow := interp.New(randprog.Generate(cfg), vm.NewAddressSpace())
			slow.SetTreeWalk(true)
			slowRet, slowErr := slow.Run(iters)

			if (fastErr == nil) != (slowErr == nil) {
				t.Fatalf("error mismatch: decoded=%v tree-walk=%v", fastErr, slowErr)
			}
			if fastErr != nil && fastErr.Error() != slowErr.Error() {
				t.Fatalf("error text mismatch:\n decoded:   %v\n tree-walk: %v", fastErr, slowErr)
			}
			if fastRet != slowRet {
				t.Errorf("return value: decoded=%d tree-walk=%d", fastRet, slowRet)
			}
			if fast.Out.String() != slow.Out.String() {
				t.Errorf("output mismatch:\n decoded:   %.200q\n tree-walk: %.200q",
					fast.Out.String(), slow.Out.String())
			}
			if fast.Steps != slow.Steps {
				t.Errorf("step count: decoded=%d tree-walk=%d", fast.Steps, slow.Steps)
			}
		})
	}
}

// TestDecodedStepLimitParity pins that both executors abort at exactly the
// same instruction with the same error when a step budget runs out.
func TestDecodedStepLimitParity(t *testing.T) {
	cfg := randprog.DefaultConfig(3)
	iters := uint64(cfg.Iterations)
	for _, limit := range []int64{1, 10, 100, 1000} {
		fast := interp.New(randprog.Generate(cfg), vm.NewAddressSpace())
		fast.StepLimit = limit
		_, fastErr := fast.Run(iters)

		slow := interp.New(randprog.Generate(cfg), vm.NewAddressSpace())
		slow.SetTreeWalk(true)
		slow.StepLimit = limit
		_, slowErr := slow.Run(iters)

		if fastErr == nil || slowErr == nil {
			t.Fatalf("limit %d: expected both to abort, got decoded=%v tree-walk=%v",
				limit, fastErr, slowErr)
		}
		if fastErr.Error() != slowErr.Error() {
			t.Errorf("limit %d error text:\n decoded:   %v\n tree-walk: %v",
				limit, fastErr, slowErr)
		}
		if fast.Steps != slow.Steps {
			t.Errorf("limit %d steps at abort: decoded=%d tree-walk=%d",
				limit, fast.Steps, slow.Steps)
		}
	}
}

// TestSharedProgramReuse pins that interpreters sharing one decoded Program
// behave identically to interpreters that decode independently.
func TestSharedProgramReuse(t *testing.T) {
	cfg := randprog.DefaultConfig(7)
	iters := uint64(cfg.Iterations)
	mod := randprog.Generate(cfg)

	ref := interp.New(mod, vm.NewAddressSpace())
	refRet, refErr := ref.Run(iters)
	if refErr != nil {
		t.Fatalf("reference run: %v", refErr)
	}

	for i := 0; i < 3; i++ {
		it := interp.NewShared(ref.Program(), vm.NewAddressSpace())
		ret, err := it.Run(iters)
		if err != nil {
			t.Fatalf("shared run %d: %v", i, err)
		}
		if ret != refRet || it.Out.String() != ref.Out.String() || it.Steps != ref.Steps {
			t.Errorf("shared run %d diverged: ret=%d/%d steps=%d/%d",
				i, ret, refRet, it.Steps, ref.Steps)
		}
	}
}
