package interp

import (
	"fmt"
	"math"

	"privateer/internal/ir"
)

// Active-hook bitmask: computed once per activation so the decoded dispatch
// loop tests a register instead of a function pointer per hook per
// instruction. With zero hooks installed (the DOALL baseline and sequential
// reference runs) every hook branch is a single well-predicted test.
const (
	hBlock = 1 << iota
	hLoad
	hStore
	hAlloc
	hFree
	hPrint
	hCallOverride
	hCheckHeap
	hPrivRead
	hPrivWrite
	hRedux
	hPredict
	hMisspec
	hPrivReadSpan
	hPrivWriteSpan
	// hOpProf is not a Hooks field: it gates the sampling per-opcode
	// profiler (opprof.go). Unlike the other bits it is tested only at
	// activation entry and call-return resyncs — the per-instruction gate
	// is the profNext step threshold, held at MaxInt64 while the bit is
	// clear, so profiling on or off costs one register compare either way.
	hOpProf
)

// computeHookMask derives the active-hook bitmask from the Hooks structure.
// OnEnter/OnExit fire per activation, not per instruction, and keep their
// plain nil checks.
func (it *Interp) computeHookMask() uint32 {
	h := &it.Hooks
	var m uint32
	if h.OnBlock != nil {
		m |= hBlock
	}
	if h.OnLoad != nil {
		m |= hLoad
	}
	if h.OnStore != nil {
		m |= hStore
	}
	if h.OnAlloc != nil {
		m |= hAlloc
	}
	if h.OnFree != nil {
		m |= hFree
	}
	if h.OnPrint != nil {
		m |= hPrint
	}
	if h.CallOverride != nil {
		m |= hCallOverride
	}
	if h.CheckHeap != nil {
		m |= hCheckHeap
	}
	if h.PrivateRead != nil {
		m |= hPrivRead
	}
	if h.PrivateWrite != nil {
		m |= hPrivWrite
	}
	if h.ReduxWrite != nil {
		m |= hRedux
	}
	if h.Predict != nil {
		m |= hPredict
	}
	if h.Misspec != nil {
		m |= hMisspec
	}
	if h.PrivateReadSpan != nil {
		m |= hPrivReadSpan
	}
	if h.PrivateWriteSpan != nil {
		m |= hPrivWriteSpan
	}
	if it.Prof != nil {
		m |= hOpProf
	}
	return m
}

// phiEdgeError reproduces the tree-walking executor's missing-incoming
// error for a φ reached along an edge it has no value for.
func phiEdgeError(fr *Frame, phi *ir.Instr, prev *ir.Block) error {
	return fmt.Errorf("interp: phi %s in %s.%s has no incoming for predecessor %v",
		phi, fr.Fn.Name, phi.Blk.Name, prev)
}

// runEdge performs the parallel φ-copy of edge e (all reads before all
// writes, so φs may reference each other).
func runEdge(vals []uint64, e *phiEdge) {
	cs := e.copies
	if len(cs) == 1 {
		vals[cs[0].dst] = vals[cs[0].src]
		return
	}
	var tmp [8]uint64
	buf := tmp[:0]
	for i := range cs {
		buf = append(buf, vals[cs[i].src])
	}
	for i := range cs {
		vals[cs[i].dst] = buf[i]
	}
}

// execDecoded runs fr's activation over the decoded code array. It is
// observably identical to exec (the tree-walking reference executor):
// same step counts, same hook sequence, same errors, same output. Operand
// slots index fr.vals directly; folded constants live in the tail of the
// value array (copied from the decode-time pool at frame setup).
func (it *Interp) execDecoded(fr *Frame, df *decodedFunc) (uint64, error) {
	if df.entryPhi != nil {
		return 0, phiEdgeError(fr, df.entryPhi, nil)
	}
	code := df.code
	vals := fr.vals
	hooks := &it.Hooks
	mask := it.hookMask
	limit := it.stepLimit()
	steps := it.Steps
	// Hoisted profiler state: with profiling off profNext is a sentinel no
	// steps value ever reaches, so the loop needs no separate mask test.
	// With profiling on it mirrors it.profNext and is resynced wherever
	// steps is (nested activations rearm it). Either way the dispatch loop
	// pays one register compare per instruction.
	profNext := int64(math.MaxInt64)
	if mask&hOpProf != 0 {
		profNext = it.profNext
	}
	pc := int32(0)
	for {
		di := &code[pc]
		steps++
		if steps > limit {
			it.Steps = steps
			return 0, fmt.Errorf("interp: step limit %d exceeded in %s", limit, fr.Fn.Name)
		}
		if steps >= profNext {
			it.Steps = steps
			it.profSample(fr, di.op)
			profNext = it.profNext
		}
		switch di.op {
		case ir.OpConst, ir.OpFConst:
			vals[di.dst] = di.cnst
		case ir.OpAdd:
			vals[di.dst] = vals[di.a] + vals[di.b]
		case ir.OpSub:
			vals[di.dst] = vals[di.a] - vals[di.b]
		case ir.OpMul:
			vals[di.dst] = vals[di.a] * vals[di.b]
		case ir.OpSDiv:
			d := vals[di.b]
			if d == 0 {
				it.Steps = steps
				return 0, fmt.Errorf("interp: division by zero (%s)", di.in.Format())
			}
			vals[di.dst] = uint64(int64(vals[di.a]) / int64(d))
		case ir.OpUDiv:
			d := vals[di.b]
			if d == 0 {
				it.Steps = steps
				return 0, fmt.Errorf("interp: division by zero (%s)", di.in.Format())
			}
			vals[di.dst] = vals[di.a] / d
		case ir.OpSRem:
			d := vals[di.b]
			if d == 0 {
				it.Steps = steps
				return 0, fmt.Errorf("interp: remainder by zero (%s)", di.in.Format())
			}
			vals[di.dst] = uint64(int64(vals[di.a]) % int64(d))
		case ir.OpURem:
			d := vals[di.b]
			if d == 0 {
				it.Steps = steps
				return 0, fmt.Errorf("interp: remainder by zero (%s)", di.in.Format())
			}
			vals[di.dst] = vals[di.a] % d
		case ir.OpAnd:
			vals[di.dst] = vals[di.a] & vals[di.b]
		case ir.OpOr:
			vals[di.dst] = vals[di.a] | vals[di.b]
		case ir.OpXor:
			vals[di.dst] = vals[di.a] ^ vals[di.b]
		case ir.OpShl:
			vals[di.dst] = vals[di.a] << (vals[di.b] & 63)
		case ir.OpLShr:
			vals[di.dst] = vals[di.a] >> (vals[di.b] & 63)
		case ir.OpAShr:
			vals[di.dst] = uint64(int64(vals[di.a]) >> (vals[di.b] & 63))
		case ir.OpEq:
			vals[di.dst] = b2w(vals[di.a] == vals[di.b])
		case ir.OpNe:
			vals[di.dst] = b2w(vals[di.a] != vals[di.b])
		case ir.OpSLt:
			vals[di.dst] = b2w(int64(vals[di.a]) < int64(vals[di.b]))
		case ir.OpSLe:
			vals[di.dst] = b2w(int64(vals[di.a]) <= int64(vals[di.b]))
		case ir.OpSGt:
			vals[di.dst] = b2w(int64(vals[di.a]) > int64(vals[di.b]))
		case ir.OpSGe:
			vals[di.dst] = b2w(int64(vals[di.a]) >= int64(vals[di.b]))
		case ir.OpULt:
			vals[di.dst] = b2w(vals[di.a] < vals[di.b])
		case ir.OpUGe:
			vals[di.dst] = b2w(vals[di.a] >= vals[di.b])
		case ir.OpSIToFP:
			vals[di.dst] = bits(float64(int64(vals[di.a])))
		case ir.OpFPToSI:
			vals[di.dst] = uint64(int64(f64(vals[di.a])))
		case ir.OpFAdd:
			vals[di.dst] = bits(f64(vals[di.a]) + f64(vals[di.b]))
		case ir.OpFSub:
			vals[di.dst] = bits(f64(vals[di.a]) - f64(vals[di.b]))
		case ir.OpFMul:
			vals[di.dst] = bits(f64(vals[di.a]) * f64(vals[di.b]))
		case ir.OpFDiv:
			vals[di.dst] = bits(f64(vals[di.a]) / f64(vals[di.b]))
		case ir.OpFEq:
			vals[di.dst] = b2w(f64(vals[di.a]) == f64(vals[di.b]))
		case ir.OpFLt:
			vals[di.dst] = b2w(f64(vals[di.a]) < f64(vals[di.b]))
		case ir.OpFLe:
			vals[di.dst] = b2w(f64(vals[di.a]) <= f64(vals[di.b]))
		case ir.OpFGt:
			vals[di.dst] = b2w(f64(vals[di.a]) > f64(vals[di.b]))
		case ir.OpFGe:
			vals[di.dst] = b2w(f64(vals[di.a]) >= f64(vals[di.b]))
		case ir.OpSelect:
			if vals[di.a] != 0 {
				vals[di.dst] = vals[di.b]
			} else {
				vals[di.dst] = vals[di.c]
			}
		case ir.OpPtrToInt, ir.OpIntToPtr:
			vals[di.dst] = vals[di.a]
		case ir.OpLoad:
			addr := vals[di.a]
			v, err := it.AS.Read(addr, di.size)
			if err != nil {
				it.Steps = steps
				return 0, err
			}
			vals[di.dst] = v
			if mask&hLoad != 0 {
				it.Steps = steps
				hooks.OnLoad(fr, di.in, addr, di.size)
			}
		case ir.OpStore:
			addr := vals[di.b]
			if err := it.AS.Write(addr, di.size, vals[di.a]); err != nil {
				it.Steps = steps
				return 0, err
			}
			if mask&hStore != 0 {
				it.Steps = steps
				hooks.OnStore(fr, di.in, addr, di.size)
			}
		case ir.OpRet:
			it.Steps = steps
			if di.a != noSlot {
				return vals[di.a], nil
			}
			return 0, nil
		case ir.OpBr:
			if mask&hBlock != 0 {
				it.Steps = steps
				hooks.OnBlock(fr, di.in.Blk, di.in.Targets[0])
			}
			if di.e0 >= 0 {
				e := &df.edges[di.e0]
				if e.badPhi != nil {
					it.Steps = steps
					return 0, phiEdgeError(fr, e.badPhi, di.in.Blk)
				}
				runEdge(vals, e)
			}
			pc = di.t0
			continue
		case ir.OpCondBr:
			to, eid := di.t1, di.e1
			taken := vals[di.a] != 0
			if taken {
				to, eid = di.t0, di.e0
			}
			if mask&hBlock != 0 {
				tb := di.in.Targets[1]
				if taken {
					tb = di.in.Targets[0]
				}
				it.Steps = steps
				hooks.OnBlock(fr, di.in.Blk, tb)
			}
			if eid >= 0 {
				e := &df.edges[eid]
				if e.badPhi != nil {
					it.Steps = steps
					return 0, phiEdgeError(fr, e.badPhi, di.in.Blk)
				}
				runEdge(vals, e)
			}
			pc = to
			continue
		case ir.OpAlloca:
			addr, err := it.AS.Alloc(ir.HeapSystem, uint64(di.size))
			if err != nil {
				it.Steps = steps
				return 0, err
			}
			fr.allocas = append(fr.allocas, addr)
			vals[di.dst] = addr
			if mask&hAlloc != 0 {
				it.Steps = steps
				hooks.OnAlloc(fr, di.in, addr, uint64(di.size))
			}
		case ir.OpMalloc:
			size := vals[di.a]
			addr, err := it.AS.Alloc(ir.HeapSystem, size)
			if err != nil {
				it.Steps = steps
				return 0, err
			}
			vals[di.dst] = addr
			if mask&hAlloc != 0 {
				it.Steps = steps
				hooks.OnAlloc(fr, di.in, addr, size)
			}
		case ir.OpHAlloc:
			size := vals[di.a]
			addr, err := it.AS.Alloc(di.in.Heap, size)
			if err != nil {
				it.Steps = steps
				return 0, err
			}
			vals[di.dst] = addr
			if mask&hAlloc != 0 {
				it.Steps = steps
				hooks.OnAlloc(fr, di.in, addr, size)
			}
		case ir.OpFree, ir.OpHDealloc:
			addr := vals[di.a]
			if mask&hFree != 0 {
				it.Steps = steps
				hooks.OnFree(fr, di.in, addr)
			}
			if err := it.AS.Free(addr); err != nil {
				it.Steps = steps
				return 0, err
			}
		case ir.OpGlobal:
			vals[di.dst] = it.globalAddrs[di.in.GlobalRef]
		case ir.OpCall:
			in := di.in
			args := make([]uint64, len(in.Args))
			for i := range in.Args {
				args[i] = vals[in.Args[i].ValueID()]
			}
			it.Steps = steps
			if mask&hCallOverride != 0 {
				v, handled, err := hooks.CallOverride(fr, in, in.Callee, args)
				if err != nil {
					return 0, err
				}
				if handled {
					steps = it.Steps
					if mask&hOpProf != 0 {
						profNext = it.profNext
					}
					vals[di.dst] = v
					break
				}
			}
			v, err := it.call(in.Callee, args, fr)
			if err != nil {
				return 0, err
			}
			steps = it.Steps
			if mask&hOpProf != 0 {
				profNext = it.profNext
			}
			vals[di.dst] = v
		case ir.OpBuiltin:
			v, err := it.builtin(di.in, fr)
			if err != nil {
				it.Steps = steps
				return 0, err
			}
			vals[di.dst] = v
		case ir.OpCheckHeap:
			addr := vals[di.a]
			if mask&hCheckHeap != 0 {
				it.Steps = steps
				if err := hooks.CheckHeap(di.in, addr); err != nil {
					return 0, err
				}
			} else if addr != 0 && ir.HeapOf(addr) != di.in.Heap {
				it.Steps = steps
				return 0, &MisspecError{Instr: di.in, Addr: addr, Reason: fmt.Sprintf(
					"separation violated: %#x is in %s, expected %s", addr, ir.HeapOf(addr), di.in.Heap)}
			}
		case ir.OpPrivateRead:
			if mask&hPrivRead != 0 {
				it.Steps = steps
				if err := hooks.PrivateRead(di.in, vals[di.a], di.size); err != nil {
					return 0, err
				}
			}
		case ir.OpPrivateWrite:
			if mask&hPrivWrite != 0 {
				it.Steps = steps
				if err := hooks.PrivateWrite(di.in, vals[di.a], di.size); err != nil {
					return 0, err
				}
			}
		case ir.OpPrivateReadSpan:
			if mask&hPrivReadSpan != 0 {
				it.Steps = steps
				if err := hooks.PrivateReadSpan(di.in, vals[di.a],
					int64(vals[di.b]), int64(vals[di.c]), di.size); err != nil {
					return 0, err
				}
			}
		case ir.OpPrivateWriteSpan:
			if mask&hPrivWriteSpan != 0 {
				it.Steps = steps
				if err := hooks.PrivateWriteSpan(di.in, vals[di.a],
					int64(vals[di.b]), int64(vals[di.c]), di.size); err != nil {
					return 0, err
				}
			}
		case ir.OpReduxWrite:
			if mask&hRedux != 0 {
				it.Steps = steps
				if err := hooks.ReduxWrite(di.in, vals[di.a], di.size); err != nil {
					return 0, err
				}
			}
		case ir.OpPredict:
			a, b := vals[di.a], vals[di.b]
			if mask&hPredict != 0 {
				it.Steps = steps
				if err := hooks.Predict(di.in, a, b); err != nil {
					return 0, err
				}
			} else if a != b {
				it.Steps = steps
				return 0, &MisspecError{Instr: di.in, Reason: fmt.Sprintf(
					"value prediction failed: %d != %d", a, b)}
			}
		case ir.OpMisspec:
			it.Steps = steps
			if mask&hMisspec != 0 {
				if err := hooks.Misspec(di.in); err != nil {
					return 0, err
				}
			} else {
				return 0, &MisspecError{Instr: di.in, Reason: "explicit misspec"}
			}
		default:
			// Rare or wide instructions (print, memset, memcopy, stray φ)
			// execute through the reference implementation.
			if di.in == nil {
				it.Steps = steps
				return 0, fmt.Errorf("interp: unterminated block in %s", fr.Fn.Name)
			}
			it.Steps = steps
			if err := it.execInstr(fr, di.in); err != nil {
				return 0, err
			}
			steps = it.Steps
		}
		pc++
	}
}
