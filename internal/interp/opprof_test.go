package interp

import (
	"testing"

	"privateer/internal/ir"
	"privateer/internal/vm"
)

// profModule builds a loop-heavy module (sum plus a helper call per
// iteration) so the profiler sees both opcode variety and nested
// activations.
func profModule(n int64) *ir.Module {
	m := ir.NewModule("prof")
	double := m.NewFunc("double", ir.I64)
	x := double.NewParam("x", ir.I64)
	db := ir.NewBuilder(double)
	db.Ret(db.Add(x, x))
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	acc := b.Local("acc")
	b.St(b.I(0), acc)
	b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
		b.St(b.Add(b.Ld(acc), b.Call(double, b.Ld(iv))), acc)
	})
	b.Ret(b.Ld(acc))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

// runProfiled executes profModule under prof, optionally on the treewalk
// reference path, and returns the interpreter.
func runProfiled(t *testing.T, prof *OpProfiler, treeWalk bool) *Interp {
	t.Helper()
	it := New(profModule(2000), vm.NewAddressSpace())
	it.SetTreeWalk(treeWalk)
	it.Prof = prof
	v, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 2000*1999 {
		t.Fatalf("profiled run result %d, want %d", v, 2000*1999)
	}
	return it
}

// TestProfilerEstimateCoversStream: the sampled per-opcode estimate must
// total within one sampling window of the true executed count (the
// unattributed tail after the last sample), never exceed it, and the
// per-function calls/steps — which are exact — must match the run.
func TestProfilerEstimateCoversStream(t *testing.T) {
	const every = 64
	prof := NewOpProfiler(every)
	it := runProfiled(t, prof, false)
	total := prof.TotalExecuted()
	if total > it.Steps {
		t.Errorf("estimated total %d exceeds true steps %d", total, it.Steps)
	}
	if it.Steps-total > every {
		t.Errorf("estimate %d trails steps %d by more than one window (%d)",
			total, it.Steps, every)
	}
	ops := prof.Ops()
	if len(ops) == 0 {
		t.Fatal("no opcode rows after a profiled run")
	}
	var sum int64
	for _, r := range ops {
		if r.Executed < 0 {
			t.Errorf("opcode %s has negative estimate %d", r.Op, r.Executed)
		}
		sum += r.Executed
	}
	if sum != total {
		t.Errorf("row sum %d != TotalExecuted %d", sum, total)
	}
	var sawMain, sawDouble bool
	for _, f := range prof.Funcs() {
		switch f.Fn {
		case "main":
			sawMain = true
			if f.Calls != 1 {
				t.Errorf("main calls %d, want 1", f.Calls)
			}
			if f.Steps != it.Steps {
				t.Errorf("main inclusive steps %d, want %d", f.Steps, it.Steps)
			}
		case "double":
			sawDouble = true
			if f.Calls != 2000 {
				t.Errorf("double calls %d, want 2000", f.Calls)
			}
		}
	}
	if !sawMain || !sawDouble {
		t.Errorf("function rows missing main/double: %+v", prof.Funcs())
	}
}

// TestProfilerTreewalkParity: the treewalk reference path must produce the
// same exact function profile and the same estimate-coverage guarantee as
// the pre-decoded fast path.
func TestProfilerTreewalkParity(t *testing.T) {
	const every = 64
	fastProf := NewOpProfiler(every)
	fast := runProfiled(t, fastProf, false)
	treeProf := NewOpProfiler(every)
	tree := runProfiled(t, treeProf, true)
	if fast.Steps != tree.Steps {
		t.Fatalf("step parity broken: fast %d, treewalk %d", fast.Steps, tree.Steps)
	}
	if tree.Steps-treeProf.TotalExecuted() > every {
		t.Errorf("treewalk estimate %d trails steps %d by more than one window",
			treeProf.TotalExecuted(), tree.Steps)
	}
	ff, tf := fastProf.Funcs(), treeProf.Funcs()
	if len(ff) != len(tf) {
		t.Fatalf("function row count differs: fast %d, treewalk %d", len(ff), len(tf))
	}
	for i := range ff {
		if ff[i].Fn != tf[i].Fn || ff[i].Calls != tf[i].Calls || ff[i].Steps != tf[i].Steps {
			t.Errorf("function profile differs at %d: fast %+v, treewalk %+v",
				i, ff[i], tf[i])
		}
	}
}

// TestProfilerSharedAcrossInterps: one profiler observing several
// interpreter runs accumulates across all of them (the specrt runtime
// shares one profiler between master and workers).
func TestProfilerSharedAcrossInterps(t *testing.T) {
	prof := NewOpProfiler(64)
	a := runProfiled(t, prof, false)
	b := runProfiled(t, prof, false)
	total := prof.TotalExecuted()
	want := a.Steps + b.Steps
	if total > want || want-total > 2*64 {
		t.Errorf("shared estimate %d, want within two windows of %d", total, want)
	}
	// Each run built its own module, so the two mains are distinct
	// *ir.Function keys; the profile must carry both.
	var mainCalls int64
	for _, f := range prof.Funcs() {
		if f.Fn == "main" {
			mainCalls += f.Calls
		}
	}
	if mainCalls != 2 {
		t.Errorf("main calls %d across two runs, want 2", mainCalls)
	}
}

// TestProfilerNilSafe: a nil profiler reads as empty, and an interpreter
// without one runs unchanged.
func TestProfilerNilSafe(t *testing.T) {
	var p *OpProfiler
	if p.Ops() != nil || p.Funcs() != nil || p.TotalExecuted() != 0 {
		t.Error("nil profiler must read as empty")
	}
	it := New(profModule(10), vm.NewAddressSpace())
	if _, err := it.Run(); err != nil {
		t.Fatal(err)
	}
}
