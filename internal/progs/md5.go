package progs

import (
	"fmt"
	"math"
	"strings"

	"privateer/internal/ir"
)

// md5T is the MD5 sine table: T[i] = floor(2^32 * |sin(i+1)|).
func md5T() []int64 {
	t := make([]int64, 64)
	for i := 0; i < 64; i++ {
		t[i] = int64(uint32(math.Floor(4294967296 * math.Abs(math.Sin(float64(i+1))))))
	}
	return t
}

// md5Shifts is the per-round rotate table.
var md5Shifts = [64]int64{
	7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22,
	5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20,
	4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23,
	6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
}

// md5Lengths gives dataset d's length: all residues stay below 56 mod 64 so
// the two-block padding path exists but never executes (control
// speculation), matching enc-md5's "Control" extra.
func md5Lengths(datasets, blockLen int64) []int64 {
	out := make([]int64, datasets)
	for d := int64(0); d < datasets; d++ {
		out[d] = blockLen - 16*(d%3)
	}
	return out
}

// md5Offsets gives each dataset's start offset in the shared data buffer.
func md5Offsets(lengths []int64) ([]int64, int64) {
	offs := make([]int64, len(lengths))
	total := int64(0)
	for i, l := range lengths {
		offs[i] = total
		total += l
	}
	return offs, total
}

func md5Data(total int64, seed uint64) []byte {
	r := newLCG(seed)
	buf := make([]byte, total)
	for i := range buf {
		buf[i] = byte(r.next())
	}
	return buf
}

// EncMD5 is the Trimaran enc-md5 benchmark: message digests for many data
// sets, printed to standard output. The outer loop is serialized by false
// dependences on the global MD5 state object and the padding buffer
// (private) and by the printf calls (deferred I/O); the per-dataset digest
// buffer is short-lived; the two-block padding path is cold (control
// speculation).
//
// Input: N = datasets, M = base dataset length in bytes (multiple of 64).
func EncMD5() *Program {
	return &Program{
		Name: "enc-md5",
		Description: "MD5 digests over many datasets; global hash state " +
			"(private), short-lived digest buffer, control spec, deferred I/O",
		Build:     buildEncMD5,
		Reference: refEncMD5,
		Train:     Input{Name: "train", N: 6, M: 256},
		Ref:       Input{Name: "ref", N: 96, M: 768},
		Alt:       Input{Name: "alt", N: 10, M: 512},
		// ~100x the hashed data volume: 10x the datasets at 10x the base
		// length (footprint and work both scale with N*M).
		Huge: Input{Name: "huge", N: 960, M: 7680},
	}
}

// State layout in the global mdstate (16 bytes): a@0, b@4, c@8, d@12, each
// a 32-bit word.
func buildEncMD5(in Input) *ir.Module {
	datasets, blockLen := in.N, in.M
	lengths := md5Lengths(datasets, blockLen)
	offsets, total := md5Offsets(lengths)
	data := md5Data(total, 2718)

	m := ir.NewModule("enc-md5")
	gData := m.NewGlobal("data", total)
	gData.Init = data
	gT := m.NewGlobal("Ttab", 64*8)
	gT.Init = i64Init(md5T())
	gLen := m.NewGlobal("lengths", datasets*8)
	gLen.Init = i64Init(lengths)
	gOff := m.NewGlobal("offsets", datasets*8)
	gOff.Init = i64Init(offsets)
	gState := m.NewGlobal("mdstate", 16)
	gPad := m.NewGlobal("padbuf", 64)

	mask32 := int64(0xffffffff)

	// md5_transform(block): one 64-byte block into the global state.
	xform := m.NewFunc("md5_transform", ir.Void)
	pBlock := xform.NewParam("block", ir.Ptr)
	{
		b := ir.NewBuilder(xform)
		m32 := func(v ir.Value) ir.Value { return b.And(v, b.I(mask32)) }
		st := b.Global(gState)
		a0 := b.Load(st, 4)
		b0 := b.Load(b.Add(st, b.I(4)), 4)
		c0 := b.Load(b.Add(st, b.I(8)), 4)
		d0 := b.Load(b.Add(st, b.I(12)), 4)
		a, bb, c, d := ir.Value(a0), ir.Value(b0), ir.Value(c0), ir.Value(d0)
		for i := 0; i < 64; i++ {
			var fv ir.Value
			var g int64
			switch {
			case i < 16:
				// F = (b & c) | (~b & d)
				fv = b.Or(b.And(bb, c), b.And(b.Xor(bb, b.I(mask32)), d))
				g = int64(i)
			case i < 32:
				// G = (d & b) | (~d & c)
				fv = b.Or(b.And(d, bb), b.And(b.Xor(d, b.I(mask32)), c))
				g = int64(5*i+1) % 16
			case i < 48:
				// H = b ^ c ^ d
				fv = b.Xor(b.Xor(bb, c), d)
				g = int64(3*i+5) % 16
			default:
				// I = c ^ (b | ~d)
				fv = b.Xor(c, b.Or(bb, b.Xor(d, b.I(mask32))))
				g = int64(7*i) % 16
			}
			mWord := b.Load(b.Add(pBlock, b.I(g*4)), 4)
			tWord := b.Load(b.Add(b.Global(gT), b.I(int64(i)*8)), 8)
			sum := m32(b.Add(b.Add(b.Add(a, fv), tWord), mWord))
			s := md5Shifts[i]
			rot := m32(b.Or(b.Shl(sum, b.I(s)), b.LShr(sum, b.I(32-s))))
			nb := m32(b.Add(bb, rot))
			a, d, c, bb = d, c, bb, nb
		}
		b.Store(m32(b.Add(a0, a)), st, 4)
		b.Store(m32(b.Add(b0, bb)), b.Add(st, b.I(4)), 4)
		b.Store(m32(b.Add(c0, c)), b.Add(st, b.I(8)), 4)
		b.Store(m32(b.Add(d0, d)), b.Add(st, b.I(12)), 4)
		b.Ret()
	}

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("ds", b.I(0), b.I(datasets), func(dv *ir.Instr) {
		st := b.Global(gState)
		b.Store(b.I(0x67452301), st, 4)
		b.Store(b.I(0xefcdab89), b.Add(st, b.I(4)), 4)
		b.Store(b.I(0x98badcfe), b.Add(st, b.I(8)), 4)
		b.Store(b.I(0x10325476), b.Add(st, b.I(12)), 4)
		off := b.Load(b.Add(b.Global(gOff), b.Mul(b.Ld(dv), b.I(8))), 8)
		length := b.Load(b.Add(b.Global(gLen), b.Mul(b.Ld(dv), b.I(8))), 8)
		base := b.Add(b.Global(gData), off)
		nblocks := b.SDiv(length, b.I(64))
		b.For("blk", b.I(0), nblocks, func(bv *ir.Instr) {
			b.Call(xform, b.Add(base, b.Mul(b.Ld(bv), b.I(64))))
		})
		// Padding: copy the tail into the pad buffer, append 0x80, zero
		// fill, store the bit length.
		tail := b.SRem(length, b.I(64))
		tailBase := b.Add(base, b.Mul(nblocks, b.I(64)))
		b.If(b.SGe(tail, b.I(56)), func() {
			// Needs a second pad block: never taken for these inputs
			// (control speculation keeps the region parallel).
			b.Print("long tail in dataset %d\n", b.Ld(dv))
		}, nil)
		pad := b.Global(gPad)
		b.For("pz", b.I(0), b.I(64), func(zv *ir.Instr) {
			b.Store(b.I(0), b.Add(pad, b.Ld(zv)), 1)
		})
		b.For("pc", b.I(0), tail, func(cv *ir.Instr) {
			b.Store(b.Load(b.Add(tailBase, b.Ld(cv)), 1), b.Add(pad, b.Ld(cv)), 1)
		})
		b.Store(b.I(0x80), b.Add(pad, tail), 1)
		b.Store(b.Mul(length, b.I(8)), b.Add(pad, b.I(56)), 8)
		b.Call(xform, pad)
		// Short-lived digest buffer, then deferred output.
		dig := b.Malloc("digest", b.I(16))
		b.Store(b.Load(st, 4), dig, 4)
		b.Store(b.Load(b.Add(st, b.I(4)), 4), b.Add(dig, b.I(4)), 4)
		b.Store(b.Load(b.Add(st, b.I(8)), 4), b.Add(dig, b.I(8)), 4)
		b.Store(b.Load(b.Add(st, b.I(12)), 4), b.Add(dig, b.I(12)), 4)
		b.Print("%d: %x %x %x %x\n", b.Ld(dv),
			b.Load(dig, 4), b.Load(b.Add(dig, b.I(4)), 4),
			b.Load(b.Add(dig, b.I(8)), 4), b.Load(b.Add(dig, b.I(12)), 4))
		b.Free(dig)
	})
	b.Ret(b.I(0))
	finishModule(m)
	return m
}

// refMD5Transform mirrors md5_transform on native uint32 state.
func refMD5Transform(state *[4]uint32, block []byte) {
	t := md5T()
	a, bb, c, d := state[0], state[1], state[2], state[3]
	for i := 0; i < 64; i++ {
		var f uint32
		var g int
		switch {
		case i < 16:
			f = (bb & c) | (^bb & d)
			g = i
		case i < 32:
			f = (d & bb) | (^d & c)
			g = (5*i + 1) % 16
		case i < 48:
			f = bb ^ c ^ d
			g = (3*i + 5) % 16
		default:
			f = c ^ (bb | ^d)
			g = (7 * i) % 16
		}
		mw := uint32(block[g*4]) | uint32(block[g*4+1])<<8 |
			uint32(block[g*4+2])<<16 | uint32(block[g*4+3])<<24
		sum := a + f + uint32(t[i]) + mw
		s := uint(md5Shifts[i])
		rot := sum<<s | sum>>(32-s)
		nb := bb + rot
		a, d, c, bb = d, c, bb, nb
	}
	state[0] += a
	state[1] += bb
	state[2] += c
	state[3] += d
}

// RefMD5Digest computes the MD5 state words for msg with the reference
// transform (exported for the crypto/md5 cross-check in tests).
func RefMD5Digest(msg []byte) [4]uint32 {
	state := [4]uint32{0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476}
	n := len(msg) / 64
	for b := 0; b < n; b++ {
		refMD5Transform(&state, msg[b*64:(b+1)*64])
	}
	tail := msg[n*64:]
	bits := uint64(len(msg)) * 8
	if len(tail) >= 56 {
		// Two padding blocks (the cold path in the IR benchmark's inputs).
		var pad [128]byte
		copy(pad[:], tail)
		pad[len(tail)] = 0x80
		for i := 0; i < 8; i++ {
			pad[120+i] = byte(bits >> (8 * i))
		}
		refMD5Transform(&state, pad[:64])
		refMD5Transform(&state, pad[64:])
		return state
	}
	var pad [64]byte
	copy(pad[:], tail)
	pad[len(tail)] = 0x80
	for i := 0; i < 8; i++ {
		pad[56+i] = byte(bits >> (8 * i))
	}
	refMD5Transform(&state, pad[:])
	return state
}

func refEncMD5(in Input) (uint64, string) {
	datasets, blockLen := in.N, in.M
	lengths := md5Lengths(datasets, blockLen)
	offsets, total := md5Offsets(lengths)
	data := md5Data(total, 2718)
	var sb strings.Builder
	for d := int64(0); d < datasets; d++ {
		msg := data[offsets[d] : offsets[d]+lengths[d]]
		st := RefMD5Digest(msg)
		fmt.Fprintf(&sb, "%d: %x %x %x %x\n", d, st[0], st[1], st[2], st[3])
	}
	return 0, sb.String()
}
