package progs

import (
	"fmt"
	"math"
	"strings"

	"privateer/internal/ir"
)

// alvinn network dimensions: derived from the input's N (patterns); the
// layer sizes are fixed, matching the shape (not the scale) of SPEC
// 052.alvinn's road-following network.
const (
	alvinnIn  = 24
	alvinnHid = 12
	alvinnOut = 6
)

// alvinnData generates the training patterns, targets and initial weights.
func alvinnData(patterns int64, seed uint64) (inputs, targets, w1, w2 []float64) {
	r := newLCG(seed)
	inputs = make([]float64, patterns*alvinnIn)
	targets = make([]float64, patterns*alvinnOut)
	w1 = make([]float64, alvinnIn*alvinnHid)
	w2 = make([]float64, alvinnHid*alvinnOut)
	for i := range inputs {
		inputs[i] = r.float01()
	}
	for i := range targets {
		targets[i] = 0.1 + 0.8*r.float01()
	}
	for i := range w1 {
		w1[i] = 0.2*r.float01() - 0.1
	}
	for i := range w2 {
		w2[i] = 0.2*r.float01() - 0.1
	}
	return
}

// Alvinn is the SPEC 052.alvinn-style backpropagation trainer. The hot loop
// iterates over training patterns; each iteration reuses four arrays
// (activations and deltas) that live outside the loop and are passed by
// reference to callees — the pointer arithmetic that defeats static
// privatization. Weight-gradient accumulations and the total error are
// reductions. The loop is invoked once per epoch (many invocations, as in
// Table 3), with the sequential weight update between invocations.
//
// Per the substitution table in DESIGN.md, the paper's scalar local
// reduction is realized as a global accumulator: register-carried
// reductions are outside DOALL's scalar constraints in this reproduction.
//
// Input: N = patterns, M = epochs.
func Alvinn() *Program {
	return &Program{
		Name: "052.alvinn",
		Description: "backpropagation training; four reused activation/delta " +
			"arrays (private), two array reductions and one scalar reduction",
		Build:       buildAlvinn,
		Reference:   refAlvinn,
		FloatResult: true,
		Train:       Input{Name: "train", N: 24, M: 2},
		Ref:         Input{Name: "ref", N: 192, M: 8},
		Alt:         Input{Name: "alt", N: 32, M: 3},
		// 100x the pattern set (footprint scales with N); a single epoch
		// keeps total work a single-digit multiple of ref.
		Huge: Input{Name: "huge", N: 19200, M: 1},
	}
}

func buildAlvinn(in Input) *ir.Module {
	patterns, epochs := in.N, in.M
	inputs, targets, w1v, w2v := alvinnData(patterns, 1313)

	m := ir.NewModule("alvinn")
	gIn := m.NewGlobal("inputs", patterns*alvinnIn*8)
	gIn.Init = f64Init(inputs)
	gTgt := m.NewGlobal("targets", patterns*alvinnOut*8)
	gTgt.Init = f64Init(targets)
	gW1 := m.NewGlobal("w1", alvinnIn*alvinnHid*8)
	gW1.Init = f64Init(w1v)
	gW2 := m.NewGlobal("w2", alvinnHid*alvinnOut*8)
	gW2.Init = f64Init(w2v)
	gDW1 := m.NewGlobal("sumdw1", alvinnIn*alvinnHid*8)
	gDW2 := m.NewGlobal("sumdw2", alvinnHid*alvinnOut*8)
	gErr := m.NewGlobal("toterr", 8)

	// sigmoid(x) = 1 / (1 + exp(-x)): branch-free, so the region needs no
	// control speculation (alvinn's Extras column is empty).
	sig := m.NewFunc("sigmoid", ir.F64)
	sx := sig.NewParam("x", ir.F64)
	{
		b := ir.NewBuilder(sig)
		b.Ret(b.FDiv(b.Flt(1), b.FAdd(b.Flt(1), b.Builtin("exp", ir.F64, b.FSub(b.Flt(0), sx)))))
	}

	// train_one(p, hidden, out, odelta, hdelta): forward + backward pass
	// for one pattern, accumulating gradients into the reduction arrays.
	// The scratch arrays arrive as pointers (address arithmetic through
	// callees, as in the original program).
	trainOne := m.NewFunc("train_one", ir.Void)
	pP := trainOne.NewParam("p", ir.I64)
	pHid := trainOne.NewParam("hidden", ir.Ptr)
	pOut := trainOne.NewParam("out", ir.Ptr)
	pOD := trainOne.NewParam("odelta", ir.Ptr)
	pHD := trainOne.NewParam("hdelta", ir.Ptr)
	{
		b := ir.NewBuilder(trainOne)
		inBase := b.Add(b.Global(gIn), b.Mul(pP, b.I(alvinnIn*8)))
		tgtBase := b.Add(b.Global(gTgt), b.Mul(pP, b.I(alvinnOut*8)))
		// Forward: hidden layer.
		b.For("j", b.I(0), b.I(alvinnHid), func(jv *ir.Instr) {
			s := b.Local("s")
			b.St(b.Flt(0), s)
			b.For("i", b.I(0), b.I(alvinnIn), func(iv *ir.Instr) {
				x := b.LoadF(b.Add(inBase, b.Mul(b.Ld(iv), b.I(8))))
				w := b.LoadF(b.Add(b.Global(gW1),
					b.Mul(b.Add(b.Mul(b.Ld(iv), b.I(alvinnHid)), b.Ld(jv)), b.I(8))))
				b.St(b.FAdd(b.LdF(s), b.FMul(x, w)), s)
			})
			b.StoreF(b.Call(sig, b.LdF(s)), b.Add(pHid, b.Mul(b.Ld(jv), b.I(8))))
		})
		// Forward: output layer.
		b.For("k", b.I(0), b.I(alvinnOut), func(kv *ir.Instr) {
			s := b.Local("s2")
			b.St(b.Flt(0), s)
			b.For("j", b.I(0), b.I(alvinnHid), func(jv *ir.Instr) {
				h := b.LoadF(b.Add(pHid, b.Mul(b.Ld(jv), b.I(8))))
				w := b.LoadF(b.Add(b.Global(gW2),
					b.Mul(b.Add(b.Mul(b.Ld(jv), b.I(alvinnOut)), b.Ld(kv)), b.I(8))))
				b.St(b.FAdd(b.LdF(s), b.FMul(h, w)), s)
			})
			b.StoreF(b.Call(sig, b.LdF(s)), b.Add(pOut, b.Mul(b.Ld(kv), b.I(8))))
		})
		// Output deltas and the total-error reduction.
		b.For("k2", b.I(0), b.I(alvinnOut), func(kv *ir.Instr) {
			o := b.LoadF(b.Add(pOut, b.Mul(b.Ld(kv), b.I(8))))
			tgt := b.LoadF(b.Add(tgtBase, b.Mul(b.Ld(kv), b.I(8))))
			diff := b.FSub(tgt, o)
			delta := b.FMul(diff, b.FMul(o, b.FSub(b.Flt(1), o)))
			b.StoreF(delta, b.Add(pOD, b.Mul(b.Ld(kv), b.I(8))))
			errAddr := b.Global(gErr)
			b.StoreF(b.FAdd(b.LoadF(errAddr), b.FMul(diff, diff)), errAddr)
		})
		// Hidden deltas.
		b.For("j2", b.I(0), b.I(alvinnHid), func(jv *ir.Instr) {
			e := b.Local("e")
			b.St(b.Flt(0), e)
			b.For("k3", b.I(0), b.I(alvinnOut), func(kv *ir.Instr) {
				od := b.LoadF(b.Add(pOD, b.Mul(b.Ld(kv), b.I(8))))
				w := b.LoadF(b.Add(b.Global(gW2),
					b.Mul(b.Add(b.Mul(b.Ld(jv), b.I(alvinnOut)), b.Ld(kv)), b.I(8))))
				b.St(b.FAdd(b.LdF(e), b.FMul(od, w)), e)
			})
			h := b.LoadF(b.Add(pHid, b.Mul(b.Ld(jv), b.I(8))))
			b.StoreF(b.FMul(b.LdF(e), b.FMul(h, b.FSub(b.Flt(1), h))),
				b.Add(pHD, b.Mul(b.Ld(jv), b.I(8))))
		})
		// Gradient reductions.
		b.For("i2", b.I(0), b.I(alvinnIn), func(iv *ir.Instr) {
			x := b.LoadF(b.Add(inBase, b.Mul(b.Ld(iv), b.I(8))))
			b.For("j3", b.I(0), b.I(alvinnHid), func(jv *ir.Instr) {
				hd := b.LoadF(b.Add(pHD, b.Mul(b.Ld(jv), b.I(8))))
				slot := b.Add(b.Global(gDW1),
					b.Mul(b.Add(b.Mul(b.Ld(iv), b.I(alvinnHid)), b.Ld(jv)), b.I(8)))
				b.StoreF(b.FAdd(b.LoadF(slot), b.FMul(x, hd)), slot)
			})
		})
		b.For("j4", b.I(0), b.I(alvinnHid), func(jv *ir.Instr) {
			h := b.LoadF(b.Add(pHid, b.Mul(b.Ld(jv), b.I(8))))
			b.For("k4", b.I(0), b.I(alvinnOut), func(kv *ir.Instr) {
				od := b.LoadF(b.Add(pOD, b.Mul(b.Ld(kv), b.I(8))))
				slot := b.Add(b.Global(gDW2),
					b.Mul(b.Add(b.Mul(b.Ld(jv), b.I(alvinnOut)), b.Ld(kv)), b.I(8)))
				b.StoreF(b.FAdd(b.LoadF(slot), b.FMul(h, od)), slot)
			})
		})
		b.Ret()
	}

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	// The four reused scratch arrays live in main's frame, outside the hot
	// loop: the paper's four privatized stack allocations.
	hidden := b.Alloca("hidden_act", alvinnHid*8)
	out := b.Alloca("out_act", alvinnOut*8)
	odelta := b.Alloca("out_delta", alvinnOut*8)
	hdelta := b.Alloca("hid_delta", alvinnHid*8)
	b.For("epoch", b.I(0), b.I(epochs), func(_ *ir.Instr) {
		// The hot loop: one parallel invocation per epoch.
		b.For("p", b.I(0), b.I(patterns), func(pv *ir.Instr) {
			b.Call(trainOne, b.Ld(pv), hidden, out, odelta, hdelta)
		})
		// Sequential weight update between invocations.
		lr := b.Flt(0.1 / float64(patterns))
		b.For("u1", b.I(0), b.I(alvinnIn*alvinnHid), func(uv *ir.Instr) {
			w := b.Add(b.Global(gW1), b.Mul(b.Ld(uv), b.I(8)))
			d := b.Add(b.Global(gDW1), b.Mul(b.Ld(uv), b.I(8)))
			b.StoreF(b.FAdd(b.LoadF(w), b.FMul(lr, b.LoadF(d))), w)
			b.StoreF(b.Flt(0), d)
		})
		b.For("u2", b.I(0), b.I(alvinnHid*alvinnOut), func(uv *ir.Instr) {
			w := b.Add(b.Global(gW2), b.Mul(b.Ld(uv), b.I(8)))
			d := b.Add(b.Global(gDW2), b.Mul(b.Ld(uv), b.I(8)))
			b.StoreF(b.FAdd(b.LoadF(w), b.FMul(lr, b.LoadF(d))), w)
			b.StoreF(b.Flt(0), d)
		})
	})
	b.Print("total error %g\n", b.LoadF(b.Global(gErr)))
	b.Ret(b.LoadF(b.Global(gErr)))
	finishModule(m)
	return m
}

func refAlvinn(in Input) (uint64, string) {
	patterns, epochs := in.N, in.M
	inputs, targets, w1, w2 := alvinnData(patterns, 1313)
	sumdw1 := make([]float64, alvinnIn*alvinnHid)
	sumdw2 := make([]float64, alvinnHid*alvinnOut)
	hidden := make([]float64, alvinnHid)
	out := make([]float64, alvinnOut)
	odelta := make([]float64, alvinnOut)
	hdelta := make([]float64, alvinnHid)
	toterr := 0.0
	sigmoid := func(x float64) float64 { return 1 / (1 + math.Exp(0-x)) }
	for e := int64(0); e < epochs; e++ {
		for p := int64(0); p < patterns; p++ {
			inBase := p * alvinnIn
			tgtBase := p * alvinnOut
			for j := 0; j < alvinnHid; j++ {
				s := 0.0
				for i := 0; i < alvinnIn; i++ {
					s += inputs[inBase+int64(i)] * w1[i*alvinnHid+j]
				}
				hidden[j] = sigmoid(s)
			}
			for k := 0; k < alvinnOut; k++ {
				s := 0.0
				for j := 0; j < alvinnHid; j++ {
					s += hidden[j] * w2[j*alvinnOut+k]
				}
				out[k] = sigmoid(s)
			}
			for k := 0; k < alvinnOut; k++ {
				diff := targets[tgtBase+int64(k)] - out[k]
				odelta[k] = diff * (out[k] * (1 - out[k]))
				toterr += diff * diff
			}
			for j := 0; j < alvinnHid; j++ {
				ev := 0.0
				for k := 0; k < alvinnOut; k++ {
					ev += odelta[k] * w2[j*alvinnOut+k]
				}
				hdelta[j] = ev * (hidden[j] * (1 - hidden[j]))
			}
			for i := 0; i < alvinnIn; i++ {
				for j := 0; j < alvinnHid; j++ {
					sumdw1[i*alvinnHid+j] += inputs[inBase+int64(i)] * hdelta[j]
				}
			}
			for j := 0; j < alvinnHid; j++ {
				for k := 0; k < alvinnOut; k++ {
					sumdw2[j*alvinnOut+k] += hidden[j] * odelta[k]
				}
			}
		}
		lr := 0.1 / float64(patterns)
		for i := range w1 {
			w1[i] += lr * sumdw1[i]
			sumdw1[i] = 0
		}
		for i := range w2 {
			w2[i] += lr * sumdw2[i]
			sumdw2[i] = 0
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "total error %g\n", toterr)
	return f2b(toterr), sb.String()
}
