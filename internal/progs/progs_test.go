package progs

import (
	"crypto/md5"
	"encoding/binary"
	"math"
	"strconv"
	"strings"
	"testing"

	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/specrt"
)

// seqMatchesReference checks the interpreted IR program against the native
// reference on the given input.
func seqMatchesReference(t *testing.T, p *Program, in Input) {
	t.Helper()
	wantVal, wantOut := p.Reference(in)
	gotVal, gotOut, err := core.RunSequential(p.Build(in))
	if err != nil {
		t.Fatalf("%s %s: sequential run: %v", p.Name, in, err)
	}
	if !outputsMatch(p, gotOut, wantOut) {
		t.Fatalf("%s %s output mismatch:\n got: %s\nwant: %s", p.Name, in,
			clip(gotOut), clip(wantOut))
	}
	if !valuesMatch(p, gotVal, wantVal) {
		t.Fatalf("%s %s result %#x, want %#x", p.Name, in, gotVal, wantVal)
	}
}

func clip(s string) string {
	if len(s) > 400 {
		return s[:400] + "..."
	}
	return s
}

// outputsMatch compares printed output; for float-result programs numeric
// tokens compare with relative tolerance, since parallel reduction merges
// reassociate floating-point sums (as in the paper's runtime).
func outputsMatch(p *Program, got, want string) bool {
	if got == want {
		return true
	}
	if !p.FloatResult {
		return false
	}
	gt := strings.Fields(got)
	wt := strings.Fields(want)
	if len(gt) != len(wt) {
		return false
	}
	for i := range gt {
		if gt[i] == wt[i] {
			continue
		}
		g, errG := strconv.ParseFloat(gt[i], 64)
		w, errW := strconv.ParseFloat(wt[i], 64)
		if errG != nil || errW != nil {
			return false
		}
		if math.Abs(g-w) > 1e-9*(math.Abs(w)+1) {
			return false
		}
	}
	return true
}

func valuesMatch(p *Program, got, want uint64) bool {
	if !p.FloatResult {
		return got == want
	}
	g, w := math.Float64frombits(got), math.Float64frombits(want)
	if g == w {
		return true
	}
	return math.Abs(g-w) <= 1e-9*(math.Abs(w)+1)
}

func TestSequentialMatchesReference(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			seqMatchesReference(t, p, p.Train)
			seqMatchesReference(t, p, p.Alt)
		})
	}
}

func TestMD5AgainstCryptoMD5(t *testing.T) {
	r := newLCG(99)
	for _, n := range []int{0, 1, 55, 56, 63, 64, 65, 200, 1024, 1000} {
		msg := make([]byte, n)
		for i := range msg {
			msg[i] = byte(r.next())
		}
		got := RefMD5Digest(msg)
		sum := md5.Sum(msg)
		var want [4]uint32
		for i := 0; i < 4; i++ {
			want[i] = binary.LittleEndian.Uint32(sum[i*4:])
		}
		if got != want {
			t.Errorf("len %d: digest %x, want %x", n, got, want)
		}
	}
}

// parallelizeTrain runs the pipeline with the program's train input.
func parallelizeTrain(t *testing.T, p *Program, in Input) *core.Parallelized {
	t.Helper()
	m := p.Build(in)
	par, err := core.Parallelize(m, core.Options{})
	if err != nil {
		t.Fatalf("%s: Parallelize: %v", p.Name, err)
	}
	if len(par.Regions) == 0 {
		t.Fatalf("%s: no region selected:\n%s", p.Name, par.Summary())
	}
	return par
}

func TestPipelineSelectsHotLoop(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			par := parallelizeTrain(t, p, p.Train)
			if len(par.Regions) != 1 {
				t.Errorf("selected %d regions, want 1:\n%s", len(par.Regions), par.Summary())
			}
		})
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			in := p.Train
			wantVal, wantOut := p.Reference(in)
			par := parallelizeTrain(t, p, in)
			for _, workers := range []int{2, 4} {
				rt, gotVal, err := core.Run(par, specrt.Config{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if rt.Stats.Misspecs != 0 {
					t.Errorf("workers=%d: %d misspeculations on the train input",
						workers, rt.Stats.Misspecs)
				}
				if gotOut := rt.Output(); !outputsMatch(p, gotOut, wantOut) {
					t.Fatalf("workers=%d output mismatch:\n got: %s\nwant: %s",
						workers, clip(gotOut), clip(wantOut))
				}
				if !valuesMatch(p, gotVal, wantVal) {
					t.Errorf("workers=%d result %#x, want %#x", workers, gotVal, wantVal)
				}
			}
		})
	}
}

func TestParallelRefInput(t *testing.T) {
	if testing.Short() {
		t.Skip("ref inputs in -short mode")
	}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			in := p.Ref
			wantVal, wantOut := p.Reference(in)
			// Profile on train, measure on ref: the paper's methodology.
			// Program builders bake the input into the module, so the ref
			// module is profiled with its own (ref) execution; stability
			// across inputs is validated by TestProfileStability below.
			par := parallelizeTrain(t, p, in)
			rt, gotVal, err := core.Run(par, specrt.Config{Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if gotOut := rt.Output(); !outputsMatch(p, gotOut, wantOut) {
				t.Fatalf("output mismatch:\n got: %s\nwant: %s", clip(gotOut), clip(wantOut))
			}
			if !valuesMatch(p, gotVal, wantVal) {
				t.Errorf("result %#x, want %#x", gotVal, wantVal)
			}
		})
	}
}

// TestProfileStability mirrors the paper's observation that profiling with
// train and alt inputs yields the same compiler decisions: the same loops
// selected and the same heap kinds per global.
func TestProfileStability(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			a := parallelizeTrain(t, p, p.Train)
			b := parallelizeTrain(t, p, p.Alt)
			if len(a.Regions) != len(b.Regions) {
				t.Fatalf("train selected %d regions, alt %d", len(a.Regions), len(b.Regions))
			}
			ha := globalHeaps(a)
			hb := globalHeaps(b)
			for g, h := range ha {
				if hb[g] != h {
					t.Errorf("global %s: train=%s alt=%s", g, h, hb[g])
				}
			}
		})
	}
}

func globalHeaps(par *core.Parallelized) map[string]ir.HeapKind {
	out := map[string]ir.HeapKind{}
	for _, ri := range par.Regions {
		for _, oh := range ri.Assign.Objects() {
			if oh.Object.Global != nil {
				out[oh.Object.Global.Name] = oh.Heap
			}
		}
	}
	return out
}

// TestHeapAssignmentShapes checks the Table 3-style classification per
// program.
func TestHeapAssignmentShapes(t *testing.T) {
	expect := map[string]map[string]ir.HeapKind{
		"dijkstra": {
			"pathcost": ir.HeapPrivate,
			"Q":        ir.HeapPrivate,
			"adj":      ir.HeapReadOnly,
		},
		"blackscholes": {
			"chkerr":   ir.HeapPrivate,
			"sptprice": ir.HeapReadOnly,
			"otype":    ir.HeapReadOnly,
		},
		"swaptions": {
			"simerr":  ir.HeapPrivate,
			"factors": ir.HeapReadOnly,
		},
		"052.alvinn": {
			"sumdw1":  ir.HeapRedux,
			"sumdw2":  ir.HeapRedux,
			"toterr":  ir.HeapRedux,
			"w1":      ir.HeapReadOnly,
			"w2":      ir.HeapReadOnly,
			"inputs":  ir.HeapReadOnly,
			"targets": ir.HeapReadOnly,
		},
		"enc-md5": {
			"mdstate": ir.HeapPrivate,
			"padbuf":  ir.HeapPrivate,
			"data":    ir.HeapReadOnly,
			"Ttab":    ir.HeapReadOnly,
			"lengths": ir.HeapReadOnly,
			"offsets": ir.HeapReadOnly,
		},
	}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			par := parallelizeTrain(t, p, p.Train)
			heaps := globalHeaps(par)
			for g, want := range expect[p.Name] {
				if heaps[g] != want {
					t.Errorf("global %s in %s heap, want %s\n%s",
						g, heaps[g], want, par.Regions[0].Assign)
				}
			}
		})
	}
}

// TestExtrasColumns checks the speculation kinds per program against
// Table 3's Extras column (this reproduction may add I/O deferral where a
// cold path prints).
func TestExtrasColumns(t *testing.T) {
	wantValue := map[string]bool{"dijkstra": true, "blackscholes": true, "swaptions": true}
	wantControl := map[string]bool{"dijkstra": true, "swaptions": true, "enc-md5": true}
	wantIO := map[string]bool{"dijkstra": true, "enc-md5": true}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			par := parallelizeTrain(t, p, p.Train)
			plan := par.Regions[0].Plan
			if wantValue[p.Name] && !plan.NeedsValuePrediction {
				t.Error("value prediction missing")
			}
			if wantControl[p.Name] && !plan.NeedsControlSpec {
				t.Error("control speculation missing")
			}
			if wantIO[p.Name] && !plan.NeedsIODeferral {
				t.Error("I/O deferral missing")
			}
			if p.Name == "052.alvinn" {
				if plan.NeedsValuePrediction || plan.NeedsIODeferral {
					t.Error("alvinn should need no extra speculation")
				}
			}
		})
	}
}

// TestShortLivedSites checks that the expected allocation sites land in the
// short-lived heap.
func TestShortLivedSites(t *testing.T) {
	wantSites := map[string][]string{
		"dijkstra":  {"node"},
		"swaptions": {"path_matrix", "path_row", "disc_row", "payoff_vec"},
		"enc-md5":   {"digest"},
	}
	for _, p := range All() {
		want := wantSites[p.Name]
		if len(want) == 0 {
			continue
		}
		p := p
		t.Run(p.Name, func(t *testing.T) {
			par := parallelizeTrain(t, p, p.Train)
			short := map[string]bool{}
			for o := range par.Regions[0].Assign.ShortLived {
				if o.Site != nil {
					short[o.Site.Name] = true
				}
			}
			for _, name := range want {
				if !short[name] {
					t.Errorf("site %q not short-lived (have %v)", name, keys(short))
				}
			}
		})
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestByNameAndInputString(t *testing.T) {
	if ByName("dijkstra") == nil || ByName("enc-md5") == nil {
		t.Error("ByName lookup failed")
	}
	if ByName("nope") != nil {
		t.Error("ByName invented a program")
	}
	if !strings.Contains(Dijkstra().Train.String(), "train") {
		t.Error("Input.String missing name")
	}
}

// TestIRTextRoundTrip: every benchmark program formats to textual IR,
// parses back, formats identically (fixpoint), and executes identically.
func TestIRTextRoundTrip(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			m := p.Build(p.Train)
			text := ir.FormatModule(m)
			m2, err := ir.Parse(text)
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			if again := ir.FormatModule(m2); again != text {
				i := 0
				for i < len(text) && i < len(again) && text[i] == again[i] {
					i++
				}
				lo := i - 100
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("format not a fixpoint near offset %d:\n--- once ---\n...%s\n--- twice ---\n...%s",
					i, clip(text[lo:]), clip(again[lo:]))
			}
			wantVal, wantOut, err := core.RunSequential(m)
			if err != nil {
				t.Fatal(err)
			}
			gotVal, gotOut, err := core.RunSequential(m2)
			if err != nil {
				t.Fatalf("parsed module run: %v", err)
			}
			if gotVal != wantVal || gotOut != wantOut {
				t.Errorf("parsed module diverges: %#x vs %#x", gotVal, wantVal)
			}
		})
	}
}

// TestOptimizedEquivalence: the mid-end optimizer must preserve each
// benchmark's sequential behaviour, and the optimized module must still
// flow through the full speculative pipeline.
func TestOptimizedEquivalence(t *testing.T) {
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			wantVal, wantOut, err := core.RunSequential(p.Build(p.Train))
			if err != nil {
				t.Fatal(err)
			}
			m := p.Build(p.Train)
			before := countInstrs(m)
			ir.OptimizeModule(m)
			after := countInstrs(m)
			if after >= before {
				t.Errorf("optimizer did not shrink %s: %d -> %d", p.Name, before, after)
			}
			gotVal, gotOut, err := core.RunSequential(m)
			if err != nil {
				t.Fatalf("optimized run: %v", err)
			}
			if gotVal != wantVal || gotOut != wantOut {
				t.Fatalf("optimized module diverges: %#x vs %#x", gotVal, wantVal)
			}
			// The optimized module must still parallelize and agree.
			m2 := p.Build(p.Train)
			ir.OptimizeModule(m2)
			par, err := core.Parallelize(m2, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if len(par.Regions) == 0 {
				t.Fatalf("optimized %s lost its region:\n%s", p.Name, par.Summary())
			}
			rt, parVal, err := core.Run(par, specrt.Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !valuesMatch(p, parVal, wantVal) || !outputsMatch(p, rt.Output(), wantOut) {
				t.Errorf("optimized parallel run diverges (misspecs=%d)", rt.Stats.Misspecs)
			}
		})
	}
}

func countInstrs(m *ir.Module) int {
	n := 0
	for _, f := range m.SortedFuncs() {
		f.Instrs(func(*ir.Instr) { n++ })
	}
	return n
}
