package progs

import (
	"fmt"
	"strings"

	"privateer/internal/ir"
)

// dijkstraInf is the initial path cost.
const dijkstraInf = int64(1) << 40

// dijkstraAdj generates the adjacency matrix for n nodes.
func dijkstraAdj(n int64, seed uint64) []int64 {
	r := newLCG(seed)
	adj := make([]int64, n*n)
	for i := int64(0); i < n; i++ {
		for j := int64(0); j < n; j++ {
			if i == j {
				adj[i*n+j] = 0
			} else {
				adj[i*n+j] = int64(1 + r.intn(100))
			}
		}
	}
	return adj
}

// Dijkstra is the MiBench-style shortest-path benchmark of Figure 2: the
// outer loop runs Dijkstra's algorithm once per source node, reusing a
// global linked-list work queue and a global path-cost table across
// iterations. The reuse creates false dependences on every pair of
// iterations; Privateer privatizes the queue header and table, places the
// list nodes in the short-lived heap, value-predicts the empty queue at
// iteration boundaries, control-speculates the underflow path, and defers
// the per-source output.
//
// Input: N = node count (M, K unused).
func Dijkstra() *Program {
	return &Program{
		Name: "dijkstra",
		Description: "work-queue shortest paths; reused linked list + cost table " +
			"(private), short-lived nodes, value prediction, control spec, deferred I/O",
		Build:     buildDijkstra,
		Reference: refDijkstra,
		Train:     Input{Name: "train", N: 12},
		Ref:       Input{Name: "ref", N: 72},
		Alt:       Input{Name: "alt", N: 18},
		// The adjacency matrix grows with N^2 but drain work with ~N^3, so
		// dijkstra's knob stops at ~9x ref footprint to keep interpreted
		// runtime in whole seconds (the only program below ~100x).
		Huge: Input{Name: "huge", N: 216},
	}
}

func buildDijkstra(in Input) *ir.Module {
	n := in.N
	m := ir.NewModule("dijkstra")
	adj := m.NewGlobal("adj", n*n*8)
	adj.Init = i64Init(dijkstraAdj(n, 12345))
	pathcost := m.NewGlobal("pathcost", n*8)
	q := m.NewGlobal("Q", 16) // head@0, tail@8

	// enqueueQ(v): append a node at the queue tail.
	enq := m.NewFunc("enqueueQ", ir.Void)
	vParam := enq.NewParam("v", ir.I64)
	{
		b := ir.NewBuilder(enq)
		node := b.Malloc("node", b.I(16))
		b.Store(vParam, node, 8)                // node->vx = v
		b.Store(b.P(0), b.Add(node, b.I(8)), 8) // node->next = NULL
		tail := b.LoadPtr(b.Add(b.Global(q), b.I(8)))
		b.If(b.Eq(tail, b.P(0)), func() {
			b.Store(node, b.Global(q), 8) // Q.head = node
		}, func() {
			b.Store(node, b.Add(tail, b.I(8)), 8) // tail->next = node
		})
		b.Store(node, b.Add(b.Global(q), b.I(8)), 8) // Q.tail = node
		b.Ret()
	}

	// dequeueQ(): pop the queue head; the underflow path never executes.
	deq := m.NewFunc("dequeueQ", ir.I64)
	{
		b := ir.NewBuilder(deq)
		head := b.LoadPtr(b.Global(q))
		b.If(b.Eq(head, b.P(0)), func() {
			b.Print("queue underflow\n")
			b.Ret(b.I(-1))
		}, nil)
		v := b.Load(head, 8)
		next := b.LoadPtr(b.Add(head, b.I(8)))
		b.Store(next, b.Global(q), 8) // Q.head = next
		b.If(b.Eq(next, b.P(0)), func() {
			b.Store(b.P(0), b.Add(b.Global(q), b.I(8)), 8) // Q.tail = NULL
		}, nil)
		b.Free(head)
		b.Ret(v)
	}

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("src", b.I(0), b.I(n), func(sv *ir.Instr) {
		// Reset the cost table (reused across iterations: privatized).
		b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
			slot := b.Add(b.Global(pathcost), b.Mul(b.Ld(iv), b.I(8)))
			b.Store(b.I(dijkstraInf), slot, 8)
		})
		b.Store(b.I(0), b.Add(b.Global(pathcost), b.Mul(b.Ld(sv), b.I(8))), 8)
		b.Call(enq, b.Ld(sv))
		// Drain the work queue, relaxing edges.
		b.While(func() ir.Value {
			return b.Ne(b.LoadPtr(b.Global(q)), b.P(0))
		}, func() {
			v := b.Call(deq)
			d := b.Load(b.Add(b.Global(pathcost), b.Mul(v, b.I(8))), 8)
			b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
				cost := b.Load(b.Add(b.Global(adj),
					b.Mul(b.Add(b.Mul(v, b.I(n)), b.Ld(iv)), b.I(8))), 8)
				ncost := b.Add(cost, d)
				slot := b.Add(b.Global(pathcost), b.Mul(b.Ld(iv), b.I(8)))
				b.If(b.SLt(ncost, b.Load(slot, 8)), func() {
					b.Store(ncost, slot, 8)
					b.Call(enq, b.Ld(iv))
				}, nil)
			})
		})
		dst := b.SRem(b.Add(b.Ld(sv), b.I(n/2)), b.I(n))
		cost := b.Load(b.Add(b.Global(pathcost), b.Mul(dst, b.I(8))), 8)
		b.Print("%d to %d: %d\n", b.Ld(sv), dst, cost)
	})
	b.Ret(b.I(0))
	finishModule(m)
	return m
}

// refDijkstra mirrors buildDijkstra natively: same queue discipline, same
// relaxation order, same output format.
func refDijkstra(in Input) (uint64, string) {
	n := in.N
	adj := dijkstraAdj(n, 12345)
	pathcost := make([]int64, n)
	var queue []int64 // FIFO of node ids
	var sb strings.Builder
	for src := int64(0); src < n; src++ {
		for i := range pathcost {
			pathcost[i] = dijkstraInf
		}
		pathcost[src] = 0
		queue = append(queue[:0], src)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			d := pathcost[v]
			for i := int64(0); i < n; i++ {
				ncost := adj[v*n+i] + d
				if ncost < pathcost[i] {
					pathcost[i] = ncost
					queue = append(queue, i)
				}
			}
		}
		dst := (src + n/2) % n
		fmt.Fprintf(&sb, "%d to %d: %d\n", src, dst, pathcost[dst])
	}
	return 0, sb.String()
}

// finishModule promotes allocas in every function and panics on verifier
// errors — builders are internal, so failures are programming bugs.
func finishModule(m *ir.Module) {
	if err := ir.Verify(m); err != nil {
		panic(fmt.Sprintf("progs: %s invalid before mem2reg: %v", m.Name, err))
	}
	for _, f := range m.SortedFuncs() {
		ir.PromoteAllocas(f)
	}
	if err := ir.Verify(m); err != nil {
		panic(fmt.Sprintf("progs: %s invalid after mem2reg: %v", m.Name, err))
	}
}
