// Package progs contains the five benchmark programs of the paper's
// evaluation (Table 3) — dijkstra, blackscholes, swaptions, 052.alvinn and
// enc-md5 — rewritten in the repository's IR with the same loop and
// data-structure shapes that make them resist static parallelization, plus
// native Go reference implementations used to validate interpreter and
// parallel executions.
//
// The original benchmarks are C/C++ programs (MiBench, PARSEC, SPEC,
// Trimaran); inputs here are synthesized with deterministic generators so
// that train/ref/alt profiles exist without the original datasets (see
// DESIGN.md's substitution table).
package progs

import (
	"fmt"
	"math"

	"privateer/internal/ir"
)

// f2b and b2f convert between float64 and its IR word representation.
func f2b(v float64) uint64 { return math.Float64bits(v) }
func b2f(w uint64) float64 { return math.Float64frombits(w) }

// Input parameterizes a program build. The meaning of N/M/K is
// program-specific (documented per program).
type Input struct {
	// Name labels the input (train/ref/alt or custom).
	Name string
	// N, M, K are program-specific size parameters.
	N, M, K int64
}

func (in Input) String() string {
	return fmt.Sprintf("%s(N=%d,M=%d,K=%d)", in.Name, in.N, in.M, in.K)
}

// Program bundles one benchmark: the IR builder, the native reference, and
// standard inputs.
type Program struct {
	// Name is the benchmark's name as used in the paper.
	Name string
	// Description summarizes the program and why privatization is needed.
	Description string
	// Build constructs a fresh IR module for the input. Modules are
	// single-use: the pipeline transforms them in place.
	Build func(in Input) *ir.Module
	// Reference executes the same algorithm natively and returns the
	// program result and its printed output.
	Reference func(in Input) (uint64, string)
	// FloatResult marks programs whose result is a float64 bit pattern
	// (compared with tolerance: parallel reduction reassociation).
	FloatResult bool
	// Train, Ref and Alt are the paper's three input classes.
	Train, Ref, Alt Input
	// Huge is the scaled input class behind the memory-system size knob:
	// roughly two orders of magnitude more resident footprint than Ref
	// (bounded per program by interpreted runtime — see each program's
	// definition), used by the scale experiment and the soak lane.
	Huge Input
}

// All returns the five benchmarks in the paper's Table 3 order.
func All() []*Program {
	return []*Program{
		Alvinn(),
		Dijkstra(),
		Blackscholes(),
		Swaptions(),
		EncMD5(),
	}
}

// ByName returns the named benchmark or nil.
func ByName(name string) *Program {
	for _, p := range All() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// lcg is the deterministic input generator shared by builders and
// references (a 64-bit linear congruential generator).
type lcg struct{ s uint64 }

func newLCG(seed uint64) *lcg { return &lcg{s: seed*2862933555777941757 + 3037000493} }

func (r *lcg) next() uint64 {
	r.s = r.s*6364136223846793005 + 1442695040888963407
	return r.s >> 17
}

// intn returns a value in [0, n).
func (r *lcg) intn(n uint64) uint64 { return r.next() % n }

// float01 returns a float in [0, 1).
func (r *lcg) float01() float64 { return float64(r.next()%(1<<30)) / float64(1<<30) }

// putI64 appends v little-endian to buf.
func putI64(buf []byte, off int, v uint64) {
	for i := 0; i < 8; i++ {
		buf[off+i] = byte(v >> (8 * i))
	}
}

// i64Init builds a little-endian initializer for a slice of int64 values.
func i64Init(vals []int64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		putI64(buf, 8*i, uint64(v))
	}
	return buf
}

// f64Init builds a little-endian initializer for a slice of float64 values.
func f64Init(vals []float64) []byte {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		putI64(buf, 8*i, f2b(v))
	}
	return buf
}
