package progs

import (
	"fmt"
	"math"
	"strings"

	"privateer/internal/ir"
)

// blackscholesData generates option parameters: spot, strike, rate, vol,
// time and type (0 = call, 1 = put).
func blackscholesData(n int64, seed uint64) (spot, strike, rate, vol, otime []float64, otype []int64) {
	r := newLCG(seed)
	spot = make([]float64, n)
	strike = make([]float64, n)
	rate = make([]float64, n)
	vol = make([]float64, n)
	otime = make([]float64, n)
	otype = make([]int64, n)
	for i := int64(0); i < n; i++ {
		spot[i] = 50 + 100*r.float01()
		strike[i] = 50 + 100*r.float01()
		rate[i] = 0.01 + 0.09*r.float01()
		vol[i] = 0.05 + 0.55*r.float01()
		otime[i] = 0.1 + 2.0*r.float01()
		otype[i] = int64(r.intn(2))
	}
	return
}

// Blackscholes is the PARSEC option-pricing benchmark. The inner loop over
// options is embarrassingly parallel (and the static DOALL-only baseline can
// prove it), but the hotter outer loop over runs is blocked by output
// dependences on the pricing array — which is allocated in a different
// function and reached through a global pointer. Privateer privatizes the
// array and value-predicts the per-run error flag.
//
// Input: N = option count, M = runs (K unused).
func Blackscholes() *Program {
	return &Program{
		Name: "blackscholes",
		Description: "option pricing; pricing array allocated elsewhere " +
			"(private), per-run error flag (value prediction)",
		Build:       buildBlackscholes,
		Reference:   refBlackscholes,
		FloatResult: true,
		Train:       Input{Name: "train", N: 48, M: 3},
		Ref:         Input{Name: "ref", N: 768, M: 48},
		Alt:         Input{Name: "alt", N: 80, M: 5},
		// 100x the option portfolio (footprint scales with N), fewer
		// repeated runs to keep total work a single-digit multiple of ref.
		Huge: Input{Name: "huge", N: 76800, M: 4},
	}
}

func buildBlackscholes(in Input) *ir.Module {
	n, runs := in.N, in.M
	spot, strike, rate, vol, otime, otype := blackscholesData(n, 777)

	m := ir.NewModule("blackscholes")
	gSpot := m.NewGlobal("sptprice", n*8)
	gSpot.Init = f64Init(spot)
	gStrike := m.NewGlobal("strike", n*8)
	gStrike.Init = f64Init(strike)
	gRate := m.NewGlobal("rate", n*8)
	gRate.Init = f64Init(rate)
	gVol := m.NewGlobal("volatility", n*8)
	gVol.Init = f64Init(vol)
	gTime := m.NewGlobal("otime", n*8)
	gTime.Init = f64Init(otime)
	gType := m.NewGlobal("otype", n*8)
	gType.Init = i64Init(otype)
	gPrices := m.NewGlobal("prices_ptr", 8)
	gErr := m.NewGlobal("chkerr", 8)

	// CNDF(x): cumulative normal distribution (Abramowitz-Stegun
	// polynomial, as PARSEC uses).
	cndf := m.NewFunc("CNDF", ir.F64)
	x0 := cndf.NewParam("x", ir.F64)
	{
		b := ir.NewBuilder(cndf)
		sign := b.FLt(x0, b.Flt(0))
		x := b.Builtin("fabs", ir.F64, x0)
		k := b.FDiv(b.Flt(1), b.FAdd(b.Flt(1), b.FMul(b.Flt(0.2316419), x)))
		poly := b.Flt(1.330274429)
		poly = b.FAdd(b.Flt(-1.821255978), b.FMul(k, poly))
		poly = b.FAdd(b.Flt(1.781477937), b.FMul(k, poly))
		poly = b.FAdd(b.Flt(-0.356563782), b.FMul(k, poly))
		poly = b.FAdd(b.Flt(0.319381530), b.FMul(k, poly))
		poly = b.FMul(k, poly)
		expTerm := b.Builtin("exp", ir.F64, b.FMul(b.Flt(-0.5), b.FMul(x, x)))
		nd := b.FSub(b.Flt(1), b.FMul(b.FMul(b.Flt(0.3989422804014327), expTerm), poly))
		res := b.Select(sign, b.FSub(b.Flt(1), nd), nd)
		b.Ret(res)
	}

	// BlkSchls(spot, strike, rate, vol, time, otype) -> price.
	bs := m.NewFunc("BlkSchlsEqEuroNoDiv", ir.F64)
	pS := bs.NewParam("s", ir.F64)
	pK := bs.NewParam("k", ir.F64)
	pR := bs.NewParam("r", ir.F64)
	pV := bs.NewParam("v", ir.F64)
	pT := bs.NewParam("t", ir.F64)
	pO := bs.NewParam("o", ir.I64)
	{
		b := ir.NewBuilder(bs)
		sqrtT := b.Builtin("sqrt", ir.F64, pT)
		d1 := b.FDiv(
			b.FAdd(b.Builtin("log", ir.F64, b.FDiv(pS, pK)),
				b.FMul(b.FAdd(pR, b.FMul(b.Flt(0.5), b.FMul(pV, pV))), pT)),
			b.FMul(pV, sqrtT))
		d2 := b.FSub(d1, b.FMul(pV, sqrtT))
		disc := b.Builtin("exp", ir.F64, b.FMul(b.FSub(b.Flt(0), pR), pT))
		call := b.FSub(b.FMul(pS, b.Call(cndf, d1)),
			b.FMul(b.FMul(pK, disc), b.Call(cndf, d2)))
		put := b.FSub(b.FMul(b.FMul(pK, disc), b.Call(cndf, b.FSub(b.Flt(0), d2))),
			b.FMul(pS, b.Call(cndf, b.FSub(b.Flt(0), d1))))
		b.Ret(b.Select(b.Eq(pO, b.I(0)), call, put))
	}

	// setup(): the pricing array is allocated in a different function and
	// published through a global pointer, defeating layout-sensitive
	// privatization schemes.
	setup := m.NewFunc("setup", ir.Void)
	{
		b := ir.NewBuilder(setup)
		prices := b.Malloc("prices", b.I(n*8))
		b.Store(prices, b.Global(gPrices), 8)
		b.Ret()
	}

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Call(setup)
	b.For("run", b.I(0), b.I(runs), func(rv *ir.Instr) {
		// The previous run's error flag: read-before-write each iteration
		// (carried, stably zero -> value prediction).
		b.If(b.Ne(b.Load(b.Global(gErr), 8), b.I(0)), func() {
			b.Print("pricing error in run %d\n", b.Ld(rv))
		}, nil)
		prices := b.LoadPtr(b.Global(gPrices))
		// The pricing loop itself is pure (the shape the DOALL-only
		// baseline can prove independent, as in the paper).
		b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
			off := b.Mul(b.Ld(iv), b.I(8))
			price := b.Call(bs,
				b.LoadF(b.Add(b.Global(gSpot), off)),
				b.LoadF(b.Add(b.Global(gStrike), off)),
				b.LoadF(b.Add(b.Global(gRate), off)),
				b.LoadF(b.Add(b.Global(gVol), off)),
				b.LoadF(b.Add(b.Global(gTime), off)),
				b.Load(b.Add(b.Global(gType), off), 8))
			b.StoreF(price, b.Add(prices, off))
		})
		// Error scan after the pricing loop (PARSEC's ERRCHK phase).
		b.For("e", b.I(0), b.I(n), func(ev *ir.Instr) {
			pv := b.LoadF(b.Add(prices, b.Mul(b.Ld(ev), b.I(8))))
			b.If(b.FLt(pv, b.Flt(0)), func() {
				b.Store(b.I(1), b.Global(gErr), 8) // never happens
			}, nil)
		})
		b.Store(b.I(0), b.Global(gErr), 8)
	})
	// Deterministic checksum outside the parallel region.
	acc := b.Local("acc")
	b.St(b.Flt(0), acc)
	prices := b.LoadPtr(b.Global(gPrices))
	b.For("j", b.I(0), b.I(n), func(jv *ir.Instr) {
		b.St(b.FAdd(b.LdF(acc), b.LoadF(b.Add(prices, b.Mul(b.Ld(jv), b.I(8))))), acc)
	})
	b.Print("checksum %g\n", b.LdF(acc))
	b.Ret(b.LdF(acc))
	finishModule(m)
	return m
}

// refCNDF mirrors the IR CNDF with identical operation order.
func refCNDF(x float64) float64 {
	sign := x < 0
	x = math.Abs(x)
	k := 1 / (1 + 0.2316419*x)
	poly := 1.330274429
	poly = -1.821255978 + k*poly
	poly = 1.781477937 + k*poly
	poly = -0.356563782 + k*poly
	poly = 0.319381530 + k*poly
	poly = k * poly
	nd := 1 - (0.3989422804014327*math.Exp(-0.5*x*x))*poly
	if sign {
		return 1 - nd
	}
	return nd
}

func refBlkSchls(s, k, r, v, t float64, o int64) float64 {
	sqrtT := math.Sqrt(t)
	d1 := (math.Log(s/k) + (r+0.5*(v*v))*t) / (v * sqrtT)
	d2 := d1 - v*sqrtT
	disc := math.Exp((0 - r) * t)
	if o == 0 {
		return s*refCNDF(d1) - (k*disc)*refCNDF(d2)
	}
	return (k*disc)*refCNDF(0-d2) - s*refCNDF(0-d1)
}

func refBlackscholes(in Input) (uint64, string) {
	n, runs := in.N, in.M
	spot, strike, rate, vol, otime, otype := blackscholesData(n, 777)
	prices := make([]float64, n)
	for run := int64(0); run < runs; run++ {
		for i := int64(0); i < n; i++ {
			prices[i] = refBlkSchls(spot[i], strike[i], rate[i], vol[i], otime[i], otype[i])
		}
	}
	acc := 0.0
	for i := int64(0); i < n; i++ {
		acc += prices[i]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "checksum %g\n", acc)
	return f2b(acc), sb.String()
}
