package progs

import (
	"fmt"
	"math"
	"strings"

	"privateer/internal/ir"
)

// swaptionsFactors generates the volatility factor table.
func swaptionsFactors(steps int64, seed uint64) []float64 {
	r := newLCG(seed)
	fac := make([]float64, steps)
	for i := range fac {
		fac[i] = 0.05 + 0.2*r.float01()
	}
	return fac
}

// LCG constants shared by the IR program and the reference: the Monte Carlo
// paths must be bit-identical.
const (
	swapLCGMul = 6364136223846793005
	swapLCGAdd = 1442695040888963407
)

// Swaptions is the PARSEC Monte Carlo swaption pricer. Each outer-loop
// iteration prices one swaption whose parameters live in a heap-allocated
// record reached through an array of pointers — the linked/matrix data
// structures that defeat LRPD-style layout-sensitive schemes and this
// repository's static baseline. Simulation scratch (a row-pointer matrix
// and vectors) is allocated and freed within the iteration (short-lived);
// a simulation-error flag is cleared every iteration and checked at the
// next (value prediction); the error path is cold (control speculation).
//
// Input: N = swaptions, M = trials, K = time steps.
func Swaptions() *Program {
	return &Program{
		Name: "swaptions",
		Description: "Monte Carlo swaption pricing; records via pointer " +
			"indirection (private), short-lived matrices, value prediction, control spec",
		Build:       buildSwaptions,
		Reference:   refSwaptions,
		FloatResult: true,
		Train:       Input{Name: "train", N: 6, M: 6, K: 12},
		Ref:         Input{Name: "ref", N: 96, M: 16, K: 16},
		Alt:         Input{Name: "alt", N: 9, M: 8, K: 10},
		// 100x the swaption book (footprint scales with N); half the trials
		// per swaption bound the Monte-Carlo work.
		Huge: Input{Name: "huge", N: 9600, M: 8, K: 16},
	}
}

// Swaption record layout (64 bytes): strike@0, years@8, mean@16, stderr@24,
// seed@32.
func buildSwaptions(in Input) *ir.Module {
	n, trials, steps := in.N, in.M, in.K
	factors := swaptionsFactors(steps, 4242)

	m := ir.NewModule("swaptions")
	gFactors := m.NewGlobal("factors", steps*8)
	gFactors.Init = f64Init(factors)
	gArr := m.NewGlobal("swaptions_arr", n*8) // array of record pointers
	gErr := m.NewGlobal("simerr", 8)

	// setup() allocates the records and publishes them through the array.
	setup := m.NewFunc("setup", ir.Void)
	{
		b := ir.NewBuilder(setup)
		b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
			rec := b.Malloc("swaption_rec", b.I(64))
			slot := b.Add(b.Global(gArr), b.Mul(b.Ld(iv), b.I(8)))
			b.Store(rec, slot, 8)
		})
		b.Ret()
	}

	// Parameter tables (readonly).
	strikes := make([]float64, n)
	yearsT := make([]float64, n)
	seeds := make([]int64, n)
	{
		r := newLCG(909)
		for i := int64(0); i < n; i++ {
			strikes[i] = 0.02 + 0.06*r.float01()
			yearsT[i] = 1 + 9*r.float01()
			seeds[i] = int64(r.next() | 1)
		}
	}
	gStrike := m.NewGlobal("strike_tab", n*8)
	gStrike.Init = f64Init(strikes)
	gYears := m.NewGlobal("years_tab", n*8)
	gYears.Init = f64Init(yearsT)
	gSeeds := m.NewGlobal("seed_tab", n*8)
	gSeeds.Init = i64Init(seeds)

	// fill(i): copy parameters into record i (runs before the hot loop).
	fill := m.NewFunc("fill_records", ir.Void)
	{
		b := ir.NewBuilder(fill)
		b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
			off := b.Mul(b.Ld(iv), b.I(8))
			rec := b.LoadPtr(b.Add(b.Global(gArr), off))
			b.StoreF(b.LoadF(b.Add(b.Global(gStrike), off)), rec)
			b.StoreF(b.LoadF(b.Add(b.Global(gYears), off)), b.Add(rec, b.I(8)))
			b.Store(b.Load(b.Add(b.Global(gSeeds), off), 8), b.Add(rec, b.I(32)), 8)
		})
		b.Ret()
	}

	// simulate(rec): Monte Carlo pricing of one swaption, storing mean and
	// standard error into the record.
	sim := m.NewFunc("simulate", ir.Void)
	pRec := sim.NewParam("rec", ir.Ptr)
	{
		b := ir.NewBuilder(sim)
		strike := b.LoadF(pRec)
		years := b.LoadF(b.Add(pRec, b.I(8)))
		seed0 := b.Load(b.Add(pRec, b.I(32)), 8)
		// Short-lived scratch: a row-pointer matrix (2 rows: rates and
		// discounts) plus a payoff vector.
		mat := b.Malloc("path_matrix", b.I(16))
		rates := b.Malloc("path_row", b.I(steps*8))
		disc := b.Malloc("disc_row", b.I(steps*8))
		b.Store(rates, mat, 8)
		b.Store(disc, b.Add(mat, b.I(8)), 8)
		payoffs := b.Malloc("payoff_vec", b.I(trials*8))

		dt := b.FDiv(years, b.Flt(float64(steps)))
		b.For("t", b.I(0), b.I(trials), func(tv *ir.Instr) {
			seed := b.Local("seed")
			b.St(b.Add(seed0, b.Mul(b.Ld(tv), b.I(2654435761))), seed)
			rate := b.Local("rate")
			b.St(b.Flt(0.05), rate)
			df := b.Local("df")
			b.St(b.Flt(1.0), df)
			rrow := b.LoadPtr(mat)
			drow := b.LoadPtr(b.Add(mat, b.I(8)))
			b.For("s", b.I(0), b.I(steps), func(sv *ir.Instr) {
				// LCG step and uniform draw in [0,1).
				ns := b.Add(b.Mul(b.Ld(seed), b.I(swapLCGMul)), b.I(swapLCGAdd))
				b.St(ns, seed)
				u := b.FDiv(b.SIToFP(b.And(b.LShr(ns, b.I(17)), b.I((1<<30)-1))),
					b.Flt(float64(int64(1)<<30)))
				fac := b.LoadF(b.Add(b.Global(gFactors), b.Mul(b.Ld(sv), b.I(8))))
				shock := b.FMul(fac, b.FMul(b.FSub(u, b.Flt(0.5)), b.Flt(0.2)))
				nr := b.FAdd(b.LdF(rate), shock)
				b.St(nr, rate)
				b.StoreF(nr, b.Add(rrow, b.Mul(b.Ld(sv), b.I(8))))
				ndf := b.FMul(b.LdF(df), b.Builtin("exp", ir.F64,
					b.FMul(b.FSub(b.Flt(0), nr), dt)))
				b.St(ndf, df)
				b.StoreF(ndf, b.Add(drow, b.Mul(b.Ld(sv), b.I(8))))
			})
			// Payoff: discounted positive part of (avg rate - strike).
			avg := b.Local("avg")
			b.St(b.Flt(0), avg)
			b.For("s2", b.I(0), b.I(steps), func(sv *ir.Instr) {
				b.St(b.FAdd(b.LdF(avg), b.LoadF(b.Add(rrow, b.Mul(b.Ld(sv), b.I(8))))), avg)
			})
			mean := b.FDiv(b.LdF(avg), b.Flt(float64(steps)))
			raw := b.FSub(mean, strike)
			pay := b.FMul(b.Select(b.FGt(raw, b.Flt(0)), raw, b.Flt(0)), b.LdF(df))
			b.StoreF(pay, b.Add(payoffs, b.Mul(b.Ld(tv), b.I(8))))
			// A negative discounted payoff is impossible; the error path
			// never executes (control speculation).
			b.If(b.FLt(pay, b.Flt(0)), func() {
				b.Store(b.I(1), b.Global(gErr), 8)
			}, nil)
		})
		// Mean and standard error over the trials.
		sum := b.Local("sum")
		sumsq := b.Local("sumsq")
		b.St(b.Flt(0), sum)
		b.St(b.Flt(0), sumsq)
		b.For("t2", b.I(0), b.I(trials), func(tv *ir.Instr) {
			p := b.LoadF(b.Add(payoffs, b.Mul(b.Ld(tv), b.I(8))))
			b.St(b.FAdd(b.LdF(sum), p), sum)
			b.St(b.FAdd(b.LdF(sumsq), b.FMul(p, p)), sumsq)
		})
		tn := b.Flt(float64(trials))
		mean := b.FDiv(b.LdF(sum), tn)
		variance := b.FSub(b.FDiv(b.LdF(sumsq), tn), b.FMul(mean, mean))
		vfix := b.Select(b.FGt(variance, b.Flt(0)), variance, b.Flt(0))
		serr := b.FDiv(b.Builtin("sqrt", ir.F64, vfix), b.Builtin("sqrt", ir.F64, tn))
		b.StoreF(mean, b.Add(pRec, b.I(16)))
		b.StoreF(serr, b.Add(pRec, b.I(24)))
		b.Free(payoffs)
		b.Free(disc)
		b.Free(rates)
		b.Free(mat)
		b.Ret()
	}

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.Call(setup)
	b.Call(fill)
	b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
		// Last iteration's simulation-error flag (carried, stably zero).
		b.If(b.Ne(b.Load(b.Global(gErr), 8), b.I(0)), func() {
			b.Print("simulation error before swaption %d\n", b.Ld(iv))
		}, nil)
		rec := b.LoadPtr(b.Add(b.Global(gArr), b.Mul(b.Ld(iv), b.I(8))))
		b.Call(sim, rec)
		b.Store(b.I(0), b.Global(gErr), 8)
	})
	// Deterministic summary outside the region.
	acc := b.Local("acc")
	b.St(b.Flt(0), acc)
	b.For("j", b.I(0), b.I(n), func(jv *ir.Instr) {
		rec := b.LoadPtr(b.Add(b.Global(gArr), b.Mul(b.Ld(jv), b.I(8))))
		b.St(b.FAdd(b.LdF(acc), b.LoadF(b.Add(rec, b.I(16)))), acc)
	})
	b.Print("sum of means %g\n", b.LdF(acc))
	b.Ret(b.LdF(acc))
	finishModule(m)
	return m
}

func refSwaptions(in Input) (uint64, string) {
	n, trials, steps := in.N, in.M, in.K
	factors := swaptionsFactors(steps, 4242)
	strikes := make([]float64, n)
	yearsT := make([]float64, n)
	seeds := make([]int64, n)
	r := newLCG(909)
	for i := int64(0); i < n; i++ {
		strikes[i] = 0.02 + 0.06*r.float01()
		yearsT[i] = 1 + 9*r.float01()
		seeds[i] = int64(r.next() | 1)
	}
	means := make([]float64, n)
	for i := int64(0); i < n; i++ {
		strike, years, seed0 := strikes[i], yearsT[i], seeds[i]
		dt := years / float64(steps)
		payoffs := make([]float64, trials)
		for t := int64(0); t < trials; t++ {
			seed := seed0 + t*2654435761
			rate := 0.05
			df := 1.0
			avg := 0.0
			rates := make([]float64, steps)
			for s := int64(0); s < steps; s++ {
				seed = seed*swapLCGMul + swapLCGAdd
				u := float64(uint64(seed)>>17&((1<<30)-1)) / float64(int64(1)<<30)
				shock := factors[s] * ((u - 0.5) * 0.2)
				rate += shock
				rates[s] = rate
				df *= math.Exp((0 - rate) * dt)
			}
			for s := int64(0); s < steps; s++ {
				avg += rates[s]
			}
			mean := avg / float64(steps)
			raw := mean - strike
			pay := 0.0
			if raw > 0 {
				pay = raw
			}
			payoffs[t] = pay * df
		}
		sum, sumsq := 0.0, 0.0
		for t := int64(0); t < trials; t++ {
			sum += payoffs[t]
			sumsq += payoffs[t] * payoffs[t]
		}
		means[i] = sum / float64(trials)
		_ = sumsq
	}
	acc := 0.0
	for i := int64(0); i < n; i++ {
		acc += means[i]
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "sum of means %g\n", acc)
	return f2b(acc), sb.String()
}
