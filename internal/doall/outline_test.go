package doall

import (
	"testing"

	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/vm"
)

// TestOutlineCapturesLiveIns: values computed before the loop and used
// inside must arrive as region/iter parameters.
func TestOutlineCapturesLiveIns(t *testing.T) {
	m := ir.NewModule("live")
	out := m.NewGlobal("out", 64*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	scale := b.Mul(b.I(3), b.I(7)) // live-in scalar
	base := b.Global(out)          // live-in pointer
	b.For("i", b.I(0), b.I(64), func(iv *ir.Instr) {
		slot := b.Add(base, b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Mul(b.Ld(iv), scale), slot, 8)
	})
	b.Ret(b.Load(b.Add(b.Global(out), b.I(63*8)), 8))
	ir.PromoteAllocas(f)
	l, iv := firstLoop(t, m)
	r, err := Outline(m, l, iv)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumLiveIns < 2 {
		t.Errorf("live-ins = %d, want >= 2 (scale + base)", r.NumLiveIns)
	}
	// Param counts: iter has 1+live, region has 2+live.
	if got := len(r.IterFn.Params); got != 1+r.NumLiveIns {
		t.Errorf("iter params = %d", got)
	}
	if got := len(r.RegionFn.Params); got != 2+r.NumLiveIns {
		t.Errorf("region params = %d", got)
	}
	v, err := interp.New(m, vm.NewAddressSpace()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 63*21 {
		t.Errorf("result %d, want %d", v, 63*21)
	}
}

// TestOutlineReplacesIVUsesAfterLoop: the induction variable's final value
// (the limit) substitutes for uses after the loop.
func TestOutlineReplacesIVUsesAfterLoop(t *testing.T) {
	m := ir.NewModule("ivout")
	g := m.NewGlobal("g", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	counter := b.Local("i")
	b.St(b.I(0), counter)
	header := b.NewBlock("head")
	body := b.NewBlock("body")
	exit := b.NewBlock("exit")
	limit := b.I(10)
	b.Br(header)
	b.SetBlock(header)
	b.CondBr(b.SLt(b.Ld(counter), limit), body, exit)
	b.SetBlock(body)
	b.Store(b.Ld(counter), b.Global(g), 8)
	b.St(b.Add(b.Ld(counter), b.I(1)), counter)
	b.Br(header)
	b.SetBlock(exit)
	// Use the IV after the loop: must become the limit (10).
	b.Ret(b.Ld(counter))
	ir.PromoteAllocas(f)
	l, iv := firstLoop(t, m)
	if _, err := Outline(m, l, iv); err != nil {
		t.Fatal(err)
	}
	v, err := interp.New(m, vm.NewAddressSpace()).Run()
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Errorf("post-loop IV use = %d, want 10", v)
	}
}

// TestOutlineRejectsLiveOut: a loop-computed non-IV value used after the
// loop cannot be outlined.
func TestOutlineRejectsLiveOut(t *testing.T) {
	m := ir.NewModule("lo")
	g := m.NewGlobal("g", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	var last ir.Value
	b.For("i", b.I(0), b.I(5), func(iv *ir.Instr) {
		last = b.Mul(b.Ld(iv), b.I(2))
		b.Store(last, b.Global(g), 8)
	})
	b.Ret(last) // live-out!
	ir.PromoteAllocas(f)
	l, iv := firstLoop(t, m)
	if _, err := Outline(m, l, iv); err == nil {
		t.Error("live-out accepted")
	}
}

// TestRegionNamesAreUnique: outlines across modules never collide.
func TestRegionNamesAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for k := 0; k < 3; k++ {
		m := buildSquares(8)
		l, iv := firstLoop(t, m)
		r, err := Outline(m, l, iv)
		if err != nil {
			t.Fatal(err)
		}
		if seen[r.RegionFn.Name] {
			t.Errorf("duplicate region name %s", r.RegionFn.Name)
		}
		seen[r.RegionFn.Name] = true
	}
}
