package doall

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/vm"
)

// Simulated-time constants for the baseline scheduler; they mirror
// specrt's spawn/join costs (which cannot be imported here without a
// dependency cycle) so that Figure 7's comparison uses one cost model.
const (
	simSpawnPerWorker = 2500
	simJoinPerWorker  = 400
)

// BaselineStats reports timing for the non-speculative scheduler. All
// fields are updated with atomic adds so a live introspection scrape can
// snapshot them while regions execute.
type BaselineStats struct {
	// Spawn is the time spent cloning worker address spaces.
	Spawn time.Duration
	// Join is the time spent merging worker pages back.
	Join time.Duration
	// Wall is the whole invocation's duration.
	Wall time.Duration
	// Invocations counts parallel region entries.
	Invocations int64
	// SimRegionTime is the simulated time of all parallel invocations:
	// spawn + slowest worker + join per invocation (see specrt/sim.go for
	// the model).
	SimRegionTime int64
}

// Snapshot returns an atomically loaded copy of the stats, safe to call
// while the scheduler executes a region.
func (s *BaselineStats) Snapshot() BaselineStats {
	return BaselineStats{
		Spawn:         time.Duration(atomic.LoadInt64((*int64)(&s.Spawn))),
		Join:          time.Duration(atomic.LoadInt64((*int64)(&s.Join))),
		Wall:          time.Duration(atomic.LoadInt64((*int64)(&s.Wall))),
		Invocations:   atomic.LoadInt64(&s.Invocations),
		SimRegionTime: atomic.LoadInt64(&s.SimRegionTime),
	}
}

// Baseline executes a program whose loops were outlined by Outline in
// DOALL-only mode: iterations run in parallel with no privatization, no
// checks and no checkpoints. It is only sound for loops that passed
// StaticBlockers — the paper's Figure 7 comparison point.
//
// Worker isolation is per-worker COW address spaces whose privately-written
// bytes are diff-merged at the join; statically proven independence
// guarantees the merges never conflict.
type Baseline struct {
	// Workers is the worker count.
	Workers int
	// Regions maps region functions to their outlines.
	Regions map[*ir.Function]*Region
	// Stats accumulates scheduler timing.
	Stats BaselineStats
	// Trace receives region and worker lifecycle events (nil disables).
	Trace *obs.Tracer
}

// NewBaseline prepares a DOALL-only scheduler for the given regions.
func NewBaseline(workers int, regions ...*Region) *Baseline {
	m := map[*ir.Function]*Region{}
	for _, r := range regions {
		m[r.RegionFn] = r
	}
	return &Baseline{Workers: workers, Regions: m}
}

// Attach installs the region interceptor on a master interpreter.
func (bl *Baseline) Attach(master *interp.Interp) {
	master.Hooks.CallOverride = func(fr *interp.Frame, in *ir.Instr, callee *ir.Function, args []uint64) (uint64, bool, error) {
		r := bl.Regions[callee]
		if r == nil {
			return 0, false, nil
		}
		return 0, true, bl.invoke(master, r, args)
	}
}

// invoke runs one parallel region: args are (lo, hi, live-ins...).
func (bl *Baseline) invoke(master *interp.Interp, r *Region, args []uint64) error {
	t0 := time.Now()
	inv := atomic.AddInt64(&bl.Stats.Invocations, 1) - 1
	tr := bl.Trace
	if tr.On() {
		ts := tr.Now()
		defer func() {
			tr.Emit(obs.Event{Kind: obs.KRegionInvoke, TimeNS: ts, DurNS: tr.Now() - ts,
				Invocation: inv, Worker: -1, Iter: -1,
				A: int64(args[0]), B: int64(args[1]), Cause: "doall"})
		}()
	}
	lo, hi := int64(args[0]), int64(args[1])
	live := args[2:]
	if hi <= lo {
		return nil
	}
	workers := bl.Workers
	if total := hi - lo; int64(workers) > total {
		workers = int(total)
	}

	spawnStart := time.Now()
	spaces := make([]*vm.AddressSpace, workers)
	interps := make([]*interp.Interp, workers)
	for w := 0; w < workers; w++ {
		spaces[w] = master.AS.Clone()
		spaces[w].TraceWorker = w
		spaces[w].TraceInv = inv
		// Workers reuse the master's decoded program; the per-invocation
		// cost is the COW clone, not re-decoding the region functions.
		interps[w] = interp.NewShared(master.Program(), spaces[w])
		interps[w].AdoptLayout(master.GlobalLayout())
		tr.Instant(obs.Event{Kind: obs.KWorkerSpawn,
			Invocation: inv, Worker: w, Iter: -1})
	}
	atomic.AddInt64((*int64)(&bl.Stats.Spawn), int64(time.Since(spawnStart)))

	errs := make([]error, workers)
	outs := make([]string, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			it := interps[w]
			callArgs := make([]uint64, 1+len(live))
			copy(callArgs[1:], live)
			for i := lo + int64(w); i < hi; i += int64(workers) {
				callArgs[0] = uint64(i)
				if _, err := it.Call(r.IterFn, callArgs...); err != nil {
					errs[w] = fmt.Errorf("doall worker %d, iteration %d: %w", w, i, err)
					return
				}
			}
			outs[w] = it.Out.String()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	// Simulated time: spawn + slowest worker + join (no validation or
	// checkpoint costs — the point of the non-speculative baseline).
	var maxSteps int64
	for w := 0; w < workers; w++ {
		if interps[w].Steps > maxSteps {
			maxSteps = interps[w].Steps
		}
	}
	atomic.AddInt64(&bl.Stats.SimRegionTime,
		int64(workers)*(simSpawnPerWorker+simJoinPerWorker)+maxSteps)

	// Join: merge each worker's privately-written bytes into the master.
	// Diffs are taken against a snapshot of the pre-region master pages so
	// that one worker's merge does not masquerade as another's writes.
	joinStart := time.Now()
	orig := map[uint64][]byte{}
	for w := 0; w < workers; w++ {
		spaces[w].DirtyPages(func(base uint64, data []byte) {
			if _, snap := orig[base]; snap {
				return
			}
			if pg, ok := master.AS.PageData(base); ok {
				orig[base] = append([]byte(nil), pg...)
			} else {
				orig[base] = nil // never touched: all zero
			}
		})
	}
	for w := 0; w < workers; w++ {
		spaces[w].DirtyPages(func(base uint64, data []byte) {
			ob := orig[base]
			for off := 0; off < vm.PageSize; off++ {
				var o byte
				if ob != nil {
					o = ob[off]
				}
				if data[off] != o {
					// The worker wrote these bytes; statically proven
					// independence means at most one worker writes any
					// byte.
					if err := master.AS.Write(base+uint64(off), 1, uint64(data[off])); err != nil {
						return
					}
				}
			}
		})
		// DOALL-only does not defer I/O; emit worker output as produced.
		master.Out.WriteString(outs[w])
	}
	atomic.AddInt64((*int64)(&bl.Stats.Join), int64(time.Since(joinStart)))
	atomic.AddInt64((*int64)(&bl.Stats.Wall), int64(time.Since(t0)))
	return nil
}

// PublishMetrics registers pull-style collectors mirroring the scheduler's
// stats into reg (names prefixed privateer_doall_). The scheduler pays
// nothing between scrapes.
func (bl *Baseline) PublishMetrics(reg *obs.Registry) {
	inv := reg.Counter("privateer_doall_invocations_total",
		"DOALL-only parallel region entries.")
	spawn := reg.Counter("privateer_doall_spawn_ns_total",
		"DOALL-only worker address-space clone time.")
	join := reg.Counter("privateer_doall_join_ns_total",
		"DOALL-only page diff-merge time.")
	wall := reg.Counter("privateer_doall_wall_ns_total",
		"DOALL-only wall-clock time inside regions.")
	sim := reg.Counter("privateer_doall_sim_region_time_total",
		"DOALL-only simulated region time.")
	reg.RegisterCollector(func() {
		st := bl.Stats.Snapshot()
		inv.Set(st.Invocations)
		spawn.Set(int64(st.Spawn))
		join.Set(int64(st.Join))
		wall.Set(int64(st.Wall))
		sim.Set(st.SimRegionTime)
	})
}
