package doall

import (
	"testing"

	"privateer/internal/analysis"
	"privateer/internal/deps"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/vm"
)

// buildSquares builds: for i in [0,n): out[i] = i*i; plus a tail read.
func buildSquares(n int64) *ir.Module {
	m := ir.NewModule("squares")
	out := m.NewGlobal("out", n*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
		slot := b.Add(b.Global(out), b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Mul(b.Ld(iv), b.Ld(iv)), slot, 8)
	})
	acc := b.Local("acc")
	b.St(b.I(0), acc)
	b.For("j", b.I(0), b.I(n), func(jv *ir.Instr) {
		slot := b.Add(b.Global(out), b.Mul(b.Ld(jv), b.I(8)))
		b.St(b.Add(b.Ld(acc), b.Load(slot, 8)), acc)
	})
	b.Ret(b.Ld(acc))
	ir.PromoteAllocas(f)
	return m
}

// firstLoop returns main's first depth-1 loop in block order.
func firstLoop(t *testing.T, m *ir.Module) (*ir.Loop, *ir.InductionVar) {
	t.Helper()
	f := m.Funcs["main"]
	f.Recompute()
	dt := ir.BuildDomTree(f)
	loops := ir.FindLoops(f, dt)
	var best *ir.Loop
	for _, l := range loops {
		if l.Depth != 1 {
			continue
		}
		if best == nil || l.Header.Index < best.Header.Index {
			best = l
		}
	}
	if best == nil {
		t.Fatal("no loop")
	}
	iv := ir.FindInductionVar(best)
	if iv == nil {
		t.Fatal("no canonical IV")
	}
	return best, iv
}

func TestOutlineSequentialEquivalence(t *testing.T) {
	const n = 32
	want, err := interp.New(buildSquares(n), vm.NewAddressSpace()).Run()
	if err != nil {
		t.Fatal(err)
	}
	m := buildSquares(n)
	l, iv := firstLoop(t, m)
	r, err := Outline(m, l, iv)
	if err != nil {
		t.Fatalf("Outline: %v", err)
	}
	if r.RegionFn == nil || r.IterFn == nil {
		t.Fatal("region incomplete")
	}
	got, err := interp.New(m, vm.NewAddressSpace()).Run()
	if err != nil {
		t.Fatalf("outlined run: %v", err)
	}
	if got != want {
		t.Errorf("outlined result %d, want %d", got, want)
	}
}

func TestOutlineRejectsEarlyExit(t *testing.T) {
	m := ir.NewModule("brk")
	g := m.NewGlobal("g", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	// Hand-built loop with a break.
	header := b.NewBlock("head")
	body := b.NewBlock("body")
	brk := b.NewBlock("brk")
	exit := b.NewBlock("exit")
	zero := b.I(0)
	one := b.I(1)
	limit := b.I(10)
	b.Br(header)
	b.SetBlock(header)
	phi := b.Phi(ir.I64)
	cmp := b.SLt(phi, limit)
	b.CondBr(cmp, body, exit)
	b.SetBlock(body)
	v := b.Load(b.Global(g), 8)
	b.CondBr(b.Eq(v, b.I(7)), brk, header)
	// missing increment on this path; add via brk
	b.SetBlock(brk)
	b.Br(exit)
	b.SetBlock(exit)
	b.Ret(zero)
	ir.AddIncoming(phi, zero, f.Entry())
	step := &ir.Instr{}
	_ = step
	// Re-route: body branches back to header without increment would spin;
	// for this structural test we only need FindLoops + Outline rejection.
	f.Recompute()
	dt := ir.BuildDomTree(f)
	loops := ir.FindLoops(f, dt)
	if len(loops) == 0 {
		t.Skip("loop shape not detected; structural test only")
	}
	l := loops[0]
	iv := ir.FindInductionVar(l)
	if iv == nil {
		// No canonical IV is also a rejection path.
		return
	}
	ir.AddIncoming(phi, b.Add(phi, one), body)
	if _, err := Outline(m, l, iv); err == nil {
		t.Error("Outline accepted a loop with an early exit")
	}
}

func TestBaselineParallelMatchesSequential(t *testing.T) {
	const n = 64
	want, err := interp.New(buildSquares(n), vm.NewAddressSpace()).Run()
	if err != nil {
		t.Fatal(err)
	}
	m := buildSquares(n)
	l, iv := firstLoop(t, m)
	// Confirm the static baseline accepts it.
	pt := analysis.ComputePointsTo(m)
	if bl := deps.StaticBlockers(l, pt); len(bl) != 0 {
		t.Fatalf("static blockers on squares: %v", bl)
	}
	r, err := Outline(m, l, iv)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		it := interp.New(m, vm.NewAddressSpace())
		bl := NewBaseline(workers, r)
		bl.Attach(it)
		got, err := it.Run()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d: result %d, want %d", workers, got, want)
		}
		if bl.Stats.Invocations != 1 {
			t.Errorf("workers=%d: invocations = %d", workers, bl.Stats.Invocations)
		}
	}
}

func TestBaselineMoreWorkersThanIterations(t *testing.T) {
	const n = 3
	m := buildSquares(n)
	l, iv := firstLoop(t, m)
	r, err := Outline(m, l, iv)
	if err != nil {
		t.Fatal(err)
	}
	it := interp.New(m, vm.NewAddressSpace())
	NewBaseline(16, r).Attach(it)
	got, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 0+1+4 {
		t.Errorf("result %d, want 5", got)
	}
}
