// Package doall implements the DOALL parallelizing transformation applied
// after privatization (section 3.1: "The resulting speculatively privatized
// program is then amenable to automatic parallelization by parallelizing
// transformations such as DOALL").
//
// Outline restructures a canonical counted loop into two functions:
//
//	__iter_L(i, live-ins...)        one iteration of the original body
//	__region_L(lo, hi, live-ins...) a sequential driver calling __iter_L
//
// and replaces the loop in its enclosing function with a call to
// __region_L. Run sequentially, the program behaves exactly as before; the
// speculative runtime intercepts the __region_L call (via the interpreter's
// CallOverride hook) and distributes the __iter_L invocations across worker
// processes instead, exactly as the paper's runtime governs the transformed
// region.
package doall

import (
	"fmt"

	"privateer/internal/ir"
)

// Region describes one outlined parallel region.
type Region struct {
	// Fn is the function that contained the loop.
	Fn *ir.Function
	// RegionFn is the driver: params (lo, hi, live-ins...).
	RegionFn *ir.Function
	// IterFn executes one iteration: params (i, live-ins...).
	IterFn *ir.Function
	// NumLiveIns is the count of live-in parameters after lo/hi (or i).
	NumLiveIns int
	// LoopName names the original loop for reports.
	LoopName string
}

var regionSeq int

// Outline extracts loop l (with canonical induction variable iv) from its
// function. It fails if the loop has early exits, non-IV header phis, or
// body phis fed from the header — the shapes DOALL cannot handle.
func Outline(mod *ir.Module, l *ir.Loop, iv *ir.InductionVar) (*Region, error) {
	f := l.Header.Fn
	header := l.Header

	// Moved set: every loop block except the header.
	moved := map[*ir.Block]bool{}
	var movedList []*ir.Block
	for _, b := range l.Blocks {
		if b != header {
			moved[b] = true
			movedList = append(movedList, b)
		}
	}
	if len(movedList) == 0 {
		return nil, fmt.Errorf("doall: loop %s has an empty body", l)
	}
	// Reject early exits: a moved block may only branch to moved blocks or
	// back to the header.
	for _, b := range movedList {
		for _, s := range b.Succs() {
			if s != header && !moved[s] {
				return nil, fmt.Errorf("doall: loop %s has an early exit to %s", l, s.Name)
			}
		}
	}
	// Reject non-IV header phis (checked by deps, re-checked here).
	for _, in := range header.Instrs {
		if in.Op == ir.OpPhi && in != iv.Phi {
			return nil, fmt.Errorf("doall: loop %s carries scalar %s", l, in)
		}
	}
	// Reject values defined in the loop and used outside (other than the
	// IV, whose exit value is the limit).
	inLoop := map[*ir.Instr]bool{}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			inLoop[in] = true
		}
	}
	var liveOutErr error
	f.Instrs(func(user *ir.Instr) {
		if inLoop[user] || liveOutErr != nil {
			return
		}
		for i, a := range user.Args {
			def, isInstr := a.(*ir.Instr)
			if !isInstr || !inLoop[def] {
				continue
			}
			if def == iv.Phi {
				user.Args[i] = iv.Limit // final IV value
				continue
			}
			liveOutErr = fmt.Errorf("doall: loop %s has live-out %s used by %s", l, def, user.Format())
		}
	})
	if liveOutErr != nil {
		return nil, liveOutErr
	}

	// Collect live-ins: operands of moved instructions defined outside the
	// moved set (parameters of f, or instructions outside the loop body),
	// excluding the IV phi.
	var liveIns []ir.Value
	liveIndex := map[ir.Value]int{}
	for _, b := range movedList {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == ir.Value(iv.Phi) {
					continue
				}
				if def, isInstr := a.(*ir.Instr); isInstr {
					if moved[def.Blk] {
						continue
					}
					if def.Blk == header {
						return nil, fmt.Errorf("doall: body uses header-defined %s", def)
					}
				}
				if _, seen := liveIndex[a]; !seen {
					liveIndex[a] = len(liveIns)
					liveIns = append(liveIns, a)
				}
			}
		}
		// Phis fed from the header cannot be outlined.
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				continue
			}
			for _, p := range in.Preds {
				if p == header {
					return nil, fmt.Errorf("doall: body phi %s fed from loop header", in)
				}
			}
		}
	}

	regionSeq++
	suffix := fmt.Sprintf("%s_%d", f.Name, regionSeq)

	// --- Build __iter ---
	iterFn := mod.NewFunc("__iter_"+suffix, ir.Void)
	iterFn.EnsureIDCapacity(f.NumValues())
	ivParam := iterFn.NewParam("i", ir.I64)
	liveParams := make([]*ir.Param, len(liveIns))
	for i, v := range liveIns {
		liveParams[i] = iterFn.NewParam(fmt.Sprintf("live%d", i), v.Type())
	}
	// Replace the auto-created entry: body entry first, others after, plus
	// a shared return block for back edges.
	iterFn.Blocks = nil
	retBlk := &ir.Block{Name: "iter.ret", Fn: iterFn}
	order := []*ir.Block{iv.BodyEntry}
	for _, b := range movedList {
		if b != iv.BodyEntry {
			order = append(order, b)
		}
	}
	for _, b := range order {
		b.Fn = iterFn
		iterFn.Blocks = append(iterFn.Blocks, b)
	}
	iterFn.Blocks = append(iterFn.Blocks, retBlk)
	// Terminate retBlk.
	{
		bld := ir.NewBuilder(iterFn)
		bld.SetBlock(retBlk)
		bld.Ret()
	}
	// Remap operands and retarget branches to the header.
	for _, b := range order {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == ir.Value(iv.Phi) {
					in.Args[i] = ivParam
				} else if idx, isLive := liveIndex[a]; isLive {
					in.Args[i] = liveParams[idx]
				}
			}
			for i, t := range in.Targets {
				if t == header {
					in.Targets[i] = retBlk
				}
			}
		}
	}

	// --- Build __region ---
	regionFn := mod.NewFunc("__region_"+suffix, ir.Void)
	lo := regionFn.NewParam("lo", ir.I64)
	hi := regionFn.NewParam("hi", ir.I64)
	regionLive := make([]*ir.Param, len(liveIns))
	for i, v := range liveIns {
		regionLive[i] = regionFn.NewParam(fmt.Sprintf("live%d", i), v.Type())
	}
	{
		bld := ir.NewBuilder(regionFn)
		head := bld.NewBlock("head")
		body := bld.NewBlock("body")
		done := bld.NewBlock("done")
		bld.Br(head)
		bld.SetBlock(head)
		phi := bld.Phi(ir.I64)
		phi.Name = "i"
		bld.CondBr(bld.SLt(phi, hi), body, done)
		bld.SetBlock(body)
		args := make([]ir.Value, 0, 1+len(regionLive))
		args = append(args, phi)
		for _, p := range regionLive {
			args = append(args, p)
		}
		bld.Call(iterFn, args...)
		next := bld.Add(phi, bld.I(1))
		bld.Br(head)
		bld.SetBlock(done)
		bld.Ret()
		ir.AddIncoming(phi, lo, regionFn.Entry())
		ir.AddIncoming(phi, next, body)
	}

	// --- Rewrite f: drop the loop, call the region ---
	callBlk := &ir.Block{Name: "parallel." + suffix, Fn: f}
	{
		bld := ir.NewBuilder(f)
		bld.SetBlock(callBlk)
		args := make([]ir.Value, 0, 2+len(liveIns))
		args = append(args, iv.Init, iv.Limit)
		args = append(args, liveIns...)
		bld.Call(regionFn, args...)
		bld.Br(iv.ExitBlock)
	}
	// Retarget every outside branch aimed at the header, and re-home phi
	// edges that named the header as predecessor (the exit block sees
	// control arrive from the call block now).
	for _, b := range f.Blocks {
		if moved[b] || b == header {
			continue
		}
		if t := b.Terminator(); t != nil {
			for i, tgt := range t.Targets {
				if tgt == header {
					t.Targets[i] = callBlk
				}
			}
		}
		for _, in := range b.Instrs {
			if in.Op != ir.OpPhi {
				continue
			}
			for i, p := range in.Preds {
				if p == header {
					in.Preds[i] = callBlk
				}
			}
		}
	}
	// Remove the header and moved blocks from f; append the call block.
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if b == header || moved[b] {
			continue
		}
		kept = append(kept, b)
	}
	f.Blocks = append(kept, callBlk)
	f.Recompute()

	if err := ir.Verify(mod); err != nil {
		return nil, fmt.Errorf("doall: outlining broke the module: %w", err)
	}
	return &Region{
		Fn:         f,
		RegionFn:   regionFn,
		IterFn:     iterFn,
		NumLiveIns: len(liveIns),
		LoopName:   f.Name + ":" + header.Name,
	}, nil
}
