package specrt

import (
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"privateer/internal/interp"
	"privateer/internal/obs"
)

// TestSnapshotMatchesStats: after a quiesced run the atomic snapshot must
// equal the plain struct read.
func TestSnapshotMatchesStats(t *testing.T) {
	mod := buildWriterModule(16)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{Workers: 2, CheckpointPeriod: 4, MisspecRate: 0.2, Seed: 7}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got := rt.Stats.Snapshot(); got != rt.Stats {
		t.Errorf("snapshot %+v differs from quiesced stats %+v", got, rt.Stats)
	}
}

// TestScrapeWhileRunning: scraping the registry, snapshotting stats, and
// assembling the /spec document from another goroutine while regions
// execute must be safe (this is the -race regression test for pull-style
// publication) and must observe the published metric families.
func TestScrapeWhileRunning(t *testing.T) {
	mod := buildWriterModule(64)
	ri := buildRegion(t, mod)
	reg := obs.NewRegistry()
	rt := New(mod, Config{
		Workers: 3, CheckpointPeriod: 2,
		MisspecRate: 0.1, Seed: 11,
		Metrics: reg,
		OpProf:  interp.NewOpProfiler(64),
	}, ri)

	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for !stop.Load() {
			_ = rt.Stats.Snapshot()
			_ = rt.SpecSnapshot()
			reg.WriteProm(io.Discard)
			_ = reg.WriteVars(io.Discard)
		}
	}()
	for inv := 0; inv < 3; inv++ {
		if _, err := rt.Run(); err != nil {
			stop.Store(true)
			wg.Wait()
			t.Fatal(err)
		}
	}
	stop.Store(true)
	wg.Wait()

	var sb strings.Builder
	reg.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"privateer_invocations_total 3",
		"privateer_checkpoints_total",
		`privateer_heap_live_bytes{heap="`,
		"privateer_pipeline_depth",
		"privateer_misspec_rate",
		`privateer_op_executed_total{op="`,
		`privateer_fn_calls_total{fn="`,
		"privateer_region_wall_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestMisspecAttributionInjected: injected misspeculations carry no
// faulting address, so the attribution table must aggregate them under the
// bare (region, cause) key, with the count reconciling against Stats.
func TestMisspecAttributionInjected(t *testing.T) {
	mod := buildWriterModule(24)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{Workers: 2, CheckpointPeriod: 2, MisspecRate: 1.0, Seed: 3}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Misspecs == 0 {
		t.Fatal("injection produced no misspeculations")
	}
	rows := rt.MisspecSites()
	if len(rows) == 0 {
		t.Fatal("no attribution rows")
	}
	var total int64
	for _, r := range rows {
		total += r.Count
		if r.Region == "" {
			t.Errorf("row without region: %+v", r)
		}
		if r.Cause == "injected" && r.Object != "" {
			t.Errorf("injected row must have no owning object: %+v", r)
		}
	}
	if total != rt.Stats.Misspecs {
		t.Errorf("attributed %d misspeculations, stats say %d", total, rt.Stats.Misspecs)
	}
	out := FormatMisspecSites(rows)
	if !strings.Contains(out, "injected") || !strings.Contains(out, "count") {
		t.Errorf("formatted table wrong:\n%s", out)
	}
	if FormatMisspecSites(nil) != "no misspeculations recorded\n" {
		t.Error("empty table must render the no-misspeculations line")
	}
}

// TestSpecSnapshotShape: the /spec document must carry the configured
// worker count, a row per logical heap, a consistent misspeculation rate,
// and zero pipeline depth once quiesced.
func TestSpecSnapshotShape(t *testing.T) {
	mod := buildWriterModule(16)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{
		Workers: 2, CheckpointPeriod: 4,
		MisspecRate: 0.5, Seed: 9, Pipeline: true,
	}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	snap := rt.SpecSnapshot()
	if snap.Workers != 2 || !snap.Pipeline {
		t.Errorf("config fields wrong: %+v", snap)
	}
	if len(snap.Heaps) == 0 {
		t.Error("no per-heap occupancy rows")
	}
	if snap.PipelineDepth != 0 {
		t.Errorf("pipeline depth %d after quiesce, want 0", snap.PipelineDepth)
	}
	want := 0.0
	if snap.Stats.Checkpoints > 0 {
		want = float64(snap.Stats.Misspecs) / float64(snap.Stats.Checkpoints)
	}
	if snap.MisspecRate != want {
		t.Errorf("misspec rate %g, want %g", snap.MisspecRate, want)
	}
	if snap.Stats.Misspecs > 0 && len(snap.MisspecSites) == 0 {
		t.Error("misspeculations recorded but attribution table empty")
	}
}

// TestLatestSpecFollowsNewestRuntime: LatestSpec must serve the most
// recently constructed metrics-enabled runtime.
func TestLatestSpecFollowsNewestRuntime(t *testing.T) {
	mod := buildWriterModule(8)
	ri := buildRegion(t, mod)
	reg := obs.NewRegistry()
	rt := New(mod, Config{Workers: 1, CheckpointPeriod: 4, Metrics: reg}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	snap, ok := LatestSpec().(SpecSnapshot)
	if !ok {
		t.Fatalf("LatestSpec returned %T, want SpecSnapshot", LatestSpec())
	}
	if snap.Stats.Invocations != rt.Stats.Invocations {
		t.Errorf("LatestSpec invocations %d, want %d",
			snap.Stats.Invocations, rt.Stats.Invocations)
	}
}
