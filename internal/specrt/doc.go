// Package specrt is Privateer's runtime support system (section 5 of the
// paper). It manages the logical heaps and validates their speculative
// separation, validates speculative privacy through shadow-memory metadata
// (Table 2), coordinates periodic checkpoints, recovers from
// misspeculation, merges reductions, and commits deferred output — all
// under DOALL parallel execution with worker "processes" realized as
// goroutines owning copy-on-write address-space clones.
//
// # Lifecycle
//
// RT.Run interprets the transformed module on the master interpreter; each
// parallel-region call becomes RT.invoke, which executes the region as a
// sequence of speculative spans (spanState). A span spawns workers over
// COW clones of the master address space, partitions its iterations into
// checkpoint intervals of k iterations, and merges worker state into one
// checkpoint object per interval. Validation has two phases: the fast
// phase (per-access Table 2 shadow transitions inside each worker) and the
// checkpoint phase (the merge in checkpoint.addWorkerState plus the
// cross-interval chain validation in crossValidate). A valid prefix of the
// chain is installed into the master space and its deferred output
// committed; a misspeculation squashes in-flight intervals and re-executes
// from the last valid checkpoint boundary sequentially. See
// ARCHITECTURE.md at the repository root for the end-to-end walk-through.
//
// With Config.Pipeline set, validation, install, and commit run in a
// background committer goroutine that consumes each interval as soon as it
// quiesces, overlapping the master-side critical path with worker
// execution (committer.go).
//
// # Invariants
//
// Shadow metadata: every private-heap byte has a shadow byte holding
// MetaLiveIn (untouched since region entry), MetaOldWrite (written before
// the last checkpoint), MetaReadLiveIn (its live-in value was read —
// validation deferred to the checkpoint), or a MetaTSBase+n timestamp
// (written at iteration n after the last checkpoint). A byte read as
// live-in must never have been written by an earlier iteration — enforced
// within an interval by the merge, across intervals by chain validation.
//
// Reduction folds are deterministic: worker contributions are cumulative
// snapshots, folded exactly once per span, from the last valid checkpoint,
// in ascending worker-id order — so floating-point reductions are
// bit-identical run to run regardless of scheduling.
//
// Checkpoints are self-contained: each records only the bytes written in
// its own interval, so installing a chain interval by interval (pipelined)
// and installing it wholesale (synchronous) produce the same master state.
//
// Committed program output is append-only and ordered: deferred records
// commit per interval in interval order, each interval's records in
// iteration order, under RT.outMu (see the locking discipline note in
// specrt.go).
package specrt
