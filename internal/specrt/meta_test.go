package specrt

import (
	"math"
	"testing"
	"testing/quick"

	"privateer/internal/ir"
)

// TestTable2Transitions checks every row of the paper's Table 2 exactly.
func TestTable2Transitions(t *testing.T) {
	beta := TimestampFor(7, 3) // some current-iteration timestamp
	alpha := TimestampFor(5, 3)
	if alpha >= beta {
		t.Fatal("test setup: alpha must be an earlier timestamp")
	}
	type row struct {
		write   bool
		before  byte
		after   byte
		misspec bool
		comment string
	}
	rows := []row{
		{false, 0, 2, false, "read a live-in value"},
		{false, 1, 1, true, "loop-carried flow dependence"},
		{false, 2, 2, false, "read a live-in value"},
		{false, alpha, alpha, true, "loop-carried flow dependence"},
		{false, beta, beta, false, "intra-iteration (private) flow"},
		{true, 0, beta, false, "overwrite a live-in value"},
		{true, 1, beta, false, "overwrite an old write"},
		{true, 2, beta, true, "conservative false positive"},
		{true, alpha, beta, false, "overwrite a recent write"},
		{true, beta, beta, false, "overwrite a recent write (same iter)"},
	}
	for _, r := range rows {
		var after byte
		var miss bool
		if r.write {
			after, miss = WriteTransition(r.before, beta)
		} else {
			after, miss = ReadTransition(r.before, beta)
		}
		if after != r.after || miss != r.misspec {
			op := "read"
			if r.write {
				op = "write"
			}
			t.Errorf("%s(before=%d): got (%d, %v), want (%d, %v) [%s]",
				op, r.before, after, miss, r.after, r.misspec, r.comment)
		}
	}
}

func TestResetMeta(t *testing.T) {
	cases := map[byte]byte{0: 0, 1: 1, 2: 2, 3: 1, 4: 1, 200: 1, 255: 1}
	for in, want := range cases {
		if got := ResetMeta(in); got != want {
			t.Errorf("ResetMeta(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestTimestampWithinByte(t *testing.T) {
	// The full checkpoint period must stay inside a byte.
	base := int64(1000)
	for i := base; i < base+MaxCheckpointPeriod; i++ {
		ts := TimestampFor(i, base)
		if ts < MetaTSBase {
			t.Fatalf("timestamp for iter %d collides with a code: %d", i, ts)
		}
	}
}

func TestMergeByteRules(t *testing.T) {
	ts5 := TimestampFor(5, 0)
	ts9 := TimestampFor(9, 0)
	cases := []struct {
		combined, worker byte
		wantMeta         byte
		take, miss       bool
	}{
		{0, 0, 0, false, false},       // untouched
		{0, 1, 0, false, false},       // old write: merged earlier
		{0, 2, 2, false, false},       // first read-live-in
		{2, 2, 2, false, false},       // two readers agree
		{1, 2, 1, false, true},        // read live-in after old write
		{ts5, 2, ts5, false, true},    // read live-in after a write
		{0, ts5, ts5, true, false},    // first write
		{ts5, ts9, ts9, true, false},  // later iteration wins
		{ts9, ts5, ts9, false, false}, // earlier write dropped
		{2, ts5, 2, false, true},      // write after a live-in read
	}
	for _, c := range cases {
		meta, take, miss := MergeByte(c.combined, c.worker)
		if meta != c.wantMeta || take != c.take || miss != c.miss {
			t.Errorf("MergeByte(%d, %d) = (%d,%v,%v), want (%d,%v,%v)",
				c.combined, c.worker, meta, take, miss, c.wantMeta, c.take, c.miss)
		}
	}
}

func TestIdentityAndCombine(t *testing.T) {
	for _, op := range []ir.ReduxKind{ir.ReduxAddI64, ir.ReduxAddF64,
		ir.ReduxMinI64, ir.ReduxMaxI64, ir.ReduxMinF64, ir.ReduxMaxF64} {
		id, err := Identity(op, 8)
		if err != nil {
			t.Fatalf("Identity(%s): %v", op, err)
		}
		// identity ⊕ x == x
		x := make([]byte, 8)
		putUint(x, 12345)
		if op == ir.ReduxAddF64 || op == ir.ReduxMinF64 || op == ir.ReduxMaxF64 {
			putUint(x, math.Float64bits(123.5))
		}
		dst := append([]byte(nil), id...)
		if err := Combine(op, 8, dst, x); err != nil {
			t.Fatalf("Combine(%s): %v", op, err)
		}
		for i := range dst {
			if dst[i] != x[i] {
				t.Errorf("%s: identity not neutral: %v vs %v", op, dst, x)
				break
			}
		}
	}
}

// Property: Combine with add.i64 is commutative and associative over random
// byte vectors.
func TestCombineAddProperties(t *testing.T) {
	f := func(a, b, c [16]byte) bool {
		ab := a
		if Combine(ir.ReduxAddI64, 8, ab[:], b[:]) != nil {
			return false
		}
		ba := b
		if Combine(ir.ReduxAddI64, 8, ba[:], a[:]) != nil {
			return false
		}
		if ab != ba {
			return false
		}
		// (a+b)+c == a+(b+c)
		abc1 := ab
		if Combine(ir.ReduxAddI64, 8, abc1[:], c[:]) != nil {
			return false
		}
		bc := b
		if Combine(ir.ReduxAddI64, 8, bc[:], c[:]) != nil {
			return false
		}
		abc2 := a
		if Combine(ir.ReduxAddI64, 8, abc2[:], bc[:]) != nil {
			return false
		}
		return abc1 == abc2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCombineMinMax(t *testing.T) {
	a := make([]byte, 8)
	b := make([]byte, 8)
	neg5 := int64(-5)
	putUint(a, uint64(neg5))
	putUint(b, 3)
	if err := Combine(ir.ReduxMinI64, 8, a, b); err != nil {
		t.Fatal(err)
	}
	if int64(getUint(a)) != -5 {
		t.Errorf("min(-5,3) = %d", int64(getUint(a)))
	}
	neg5 = int64(-5)
	putUint(a, uint64(neg5))
	putUint(b, 3)
	if err := Combine(ir.ReduxMaxI64, 8, a, b); err != nil {
		t.Fatal(err)
	}
	if int64(getUint(a)) != 3 {
		t.Errorf("max(-5,3) = %d", int64(getUint(a)))
	}
}

func TestCombineSizeMismatch(t *testing.T) {
	if err := Combine(ir.ReduxAddI64, 8, make([]byte, 8), make([]byte, 16)); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if err := Combine(ir.ReduxAddI64, 8, make([]byte, 12), make([]byte, 12)); err == nil {
		t.Error("non-multiple length accepted")
	}
}

func TestCrossValidateDetectsInterIntervalConflict(t *testing.T) {
	// Interval 0 writes a byte; interval 1 reads it as "live-in".
	cp0 := newCheckpoint(0, 0, 10, nil)
	cp1 := newCheckpoint(1, 10, 20, cp0)
	const addr = uint64(0x5000_0000_1000) // some shadow page address
	sh0 := cp0.ownPage(cp0.shadow, addr)
	sh0[5] = TimestampFor(3, 0)
	sh1 := cp1.ownPage(cp1.shadow, addr)
	sh1[5] = MetaReadLiveIn
	if got := cp1.crossValidate(); got != 1 {
		t.Errorf("crossValidate = %d, want 1", got)
	}
	// The reverse order: read-live-in in interval 0, write in interval 1
	// (conservative violation at interval 1).
	cpA := newCheckpoint(0, 0, 10, nil)
	cpB := newCheckpoint(1, 10, 20, cpA)
	shA := cpA.ownPage(cpA.shadow, addr)
	shA[7] = MetaReadLiveIn
	shB := cpB.ownPage(cpB.shadow, addr)
	shB[7] = TimestampFor(12, 10)
	if got := cpB.crossValidate(); got != 1 {
		t.Errorf("reverse crossValidate = %d, want 1", got)
	}
	// Clean chains validate.
	cpX := newCheckpoint(0, 0, 10, nil)
	cpY := newCheckpoint(1, 10, 20, cpX)
	shX := cpX.ownPage(cpX.shadow, addr)
	shX[9] = TimestampFor(2, 0)
	shY := cpY.ownPage(cpY.shadow, addr)
	shY[9] = TimestampFor(15, 10) // write after write: fine
	if got := cpY.crossValidate(); got != -1 {
		t.Errorf("clean chain flagged at %d", got)
	}
}
