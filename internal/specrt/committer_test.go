package specrt

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"privateer/internal/classify"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/vm"
)

// TestPipelineEquivalenceClean: on a misspeculation-free workload the
// pipelined committer must produce the same result, the same final master
// state, and the same simulated-time accounting as the synchronous barrier
// path, at every worker count and checkpoint period.
func TestPipelineEquivalenceClean(t *testing.T) {
	const n = 37
	seqIt := interp.New(buildWriterModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		for _, period := range []int64{1, 3, 7, 100} {
			run := func(pipeline bool) (*RT, uint64) {
				mod := buildWriterModule(n)
				ri := buildRegion(t, mod)
				rt := New(mod, Config{
					Workers: workers, CheckpointPeriod: period, Pipeline: pipeline,
				}, ri)
				got, err := rt.Run()
				if err != nil {
					t.Fatalf("w=%d k=%d pipeline=%v: %v", workers, period, pipeline, err)
				}
				return rt, got
			}
			sync, syncGot := run(false)
			pipe, pipeGot := run(true)
			if pipeGot != want || syncGot != want {
				t.Errorf("w=%d k=%d: pipeline=%d sync=%d, want %d", workers, period, pipeGot, syncGot, want)
			}
			if pipe.Stats.Misspecs != 0 {
				t.Errorf("w=%d k=%d: pipelined run misspeculated %d times", workers, period, pipe.Stats.Misspecs)
			}
			if pipe.Output() != sync.Output() {
				t.Errorf("w=%d k=%d: output diverged", workers, period)
			}
			if pipe.Sim != sync.Sim {
				t.Errorf("w=%d k=%d: simulated accounting diverged:\npipeline %+v\nsync     %+v",
					workers, period, pipe.Sim, sync.Sim)
			}
		}
	}
}

// TestPipelineEquivalenceUnderInjection: with artificial misspeculation the
// recovery boundary is schedule-dependent, but the final result and the
// committed output must still match the sequential reference exactly.
func TestPipelineEquivalenceUnderInjection(t *testing.T) {
	const n = 48
	seqIt := interp.New(buildWriterModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 3, 7, 99} {
		for _, rate := range []float64{0.05, 0.2, 1.0} {
			mod := buildWriterModule(n)
			ri := buildRegion(t, mod)
			rt := New(mod, Config{
				Workers: 4, CheckpointPeriod: 5, Pipeline: true,
				MisspecRate: rate, Seed: seed,
			}, ri)
			got, err := rt.Run()
			if err != nil {
				t.Fatalf("seed=%d rate=%v: %v", seed, rate, err)
			}
			if got != want {
				t.Errorf("seed=%d rate=%v: result %d, want %d", seed, rate, got, want)
			}
		}
	}
}

// TestPipelineCrossIntervalGolden pins the committer's event sequence for
// the cross-interval violation module: interval 0 validates eagerly and
// commits asynchronously, interval 1's eager validation detects the
// violation, cancels the in-flight span, and recovery resumes from the
// last-committed boundary — with output byte-identical to the synchronous
// path. Only committer- and master-emitted kinds are kept: they are
// totally ordered (the committer is one goroutine, and the master emits
// recovery only after draining it), unlike worker-side events.
func TestPipelineCrossIntervalGolden(t *testing.T) {
	mod := buildCrossIntervalModule()
	ri := outlineRegion(t, mod, &classify.Assignment{})
	col := obs.NewCollector(0)
	rt := New(mod, Config{
		Workers: 2, CheckpointPeriod: 4, Pipeline: true,
		Trace: obs.NewTracer(col),
	}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := rt.Output(), "v=2\n"; got != want {
		t.Errorf("output %q, want %q (synchronous-path semantics)", got, want)
	}
	if rt.Stats.Misspecs == 0 {
		t.Error("cross-interval violation not detected eagerly")
	}
	keep := map[obs.Kind]bool{
		obs.KSpanStart: true, obs.KValidateEager: true, obs.KCommitAsync: true,
		obs.KCancel: true, obs.KMisspec: true, obs.KRecovery: true,
		obs.KSeqFallback: true, obs.KRegionInvoke: true,
	}
	var got []string
	for _, ev := range col.Events() {
		if !keep[ev.Kind] {
			continue
		}
		s := ev.Kind.String()
		if ev.Cause != "" {
			s += ":" + ev.Cause
		}
		got = append(got, s)
	}
	want := []string{
		"span-start",
		"validate-eager", "commit-async",
		"validate-eager", "misspec:privacy violated (cross-interval)",
		"cancel:privacy violated (cross-interval)",
		"recovery",
		"region-invoke",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("event sequence:\n got %v\nwant %v", got, want)
	}
	// The metrics fold must surface the new pipeline counters.
	ms := obs.Summarize(col.Events())
	for _, m := range ms {
		if m.Invocation != 0 {
			continue
		}
		if m.EagerValidations != 2 || m.AsyncCommits != 1 || m.Cancels != 1 {
			t.Errorf("pipeline metrics eager=%d async=%d cancels=%d, want 2/1/1",
				m.EagerValidations, m.AsyncCommits, m.Cancels)
		}
	}
}

// TestPipelineOverlapAccounted: on a clean multi-interval run the committer
// must overlap at least the early intervals with execution, record them as
// async commits, and credit OverlappedCommitNS.
func TestPipelineOverlapAccounted(t *testing.T) {
	const n = 200
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	col := obs.NewCollector(0)
	rt := New(mod, Config{
		Workers: 2, CheckpointPeriod: 10, Pipeline: true,
		Trace: obs.NewTracer(col),
	}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	counts := obs.CountByKind(col.Events())
	if counts[obs.KValidateEager] != 20 || counts[obs.KCommitAsync] != 20 {
		t.Errorf("eager validations %d, async commits %d, want 20 each",
			counts[obs.KValidateEager], counts[obs.KCommitAsync])
	}
	if counts[obs.KCancel] != 0 {
		t.Errorf("unexpected cancels: %d", counts[obs.KCancel])
	}
}

// TestCrossValidateShardedEquivalence: the sharded chain validation must
// report the same first-violating checkpoint as the serial walk for every
// shard count, including chains where different pages violate at different
// intervals (the answer is the minimum over pages).
func TestCrossValidateShardedEquivalence(t *testing.T) {
	pageBase := func(i int) uint64 {
		return ir.ShadowAddr(ir.HeapPrivate.Base()+uint64(i+1)*vm.PageSize) &^ uint64(vm.PageSize-1)
	}
	// A chain of 6 intervals over 32 pages: page p is written in interval
	// p%3 and read live-in in interval p%3+d (violating when d>0). Page 7
	// violates earliest (interval 1); most pages are clean.
	build := func() *checkpoint {
		var chain []*checkpoint
		var prev *checkpoint
		for id := int64(0); id < 6; id++ {
			cp := newCheckpoint(id, id*4, (id+1)*4, prev)
			chain = append(chain, cp)
			prev = cp
		}
		for p := 0; p < 32; p++ {
			base := pageBase(p)
			w := int64(p % 3)
			chain[w].ownPage(chain[w].shadow, base)[p] = MetaTSBase
			if p == 7 {
				chain[w+1].ownPage(chain[w+1].shadow, base)[p] = MetaReadLiveIn
			} else if p%5 == 0 {
				chain[w+2].ownPage(chain[w+2].shadow, base)[p] = MetaReadLiveIn
			} else {
				chain[w+1].ownPage(chain[w+1].shadow, base)[p+1] = MetaReadLiveIn // disjoint byte: clean
			}
		}
		return chain[5]
	}
	want := build().crossValidate()
	if want < 0 {
		t.Fatal("test chain should violate")
	}
	for _, shards := range []int{1, 2, 3, 8, 64} {
		if got := build().crossValidateSharded(shards); got != want {
			t.Errorf("shards=%d: first violation %d, want %d", shards, got, want)
		}
	}
	// A clean chain must stay clean at every shard count.
	clean := func() *checkpoint {
		cp0 := newCheckpoint(0, 0, 4, nil)
		cp1 := newCheckpoint(1, 4, 8, cp0)
		for p := 0; p < 32; p++ {
			cp0.ownPage(cp0.shadow, pageBase(p))[1] = MetaTSBase
			cp1.ownPage(cp1.shadow, pageBase(p))[2] = MetaReadLiveIn
		}
		return cp1
	}
	for _, shards := range []int{1, 2, 8} {
		if got := clean().crossValidateSharded(shards); got != -1 {
			t.Errorf("clean chain, shards=%d: flagged %d", shards, got)
		}
	}
}

// TestShardedMergeEquivalence: addWorkerState must produce the same merged
// checkpoint (data, shadow, verdict) whether the page scan is serial or
// sharded.
func TestShardedMergeEquivalence(t *testing.T) {
	mkWorker := func() *vm.AddressSpace {
		ws := vm.NewAddressSpace()
		for p := 0; p < 16; p++ {
			addr := ir.HeapPrivate.Base() + uint64(p)*vm.PageSize + uint64(p)
			if err := ws.Write(addr, 1, uint64(p+1)); err != nil {
				t.Fatal(err)
			}
			if err := ws.Write(ir.ShadowAddr(addr), 1, uint64(MetaTSBase)); err != nil {
				t.Fatal(err)
			}
		}
		return ws
	}
	merge := func(shards int) *checkpoint {
		cp := newCheckpoint(0, 0, 4, nil)
		ok, scanned, contributed := cp.addWorkerState(0, mkWorker(), nil, nil, nil, shards)
		if !ok || scanned == 0 || contributed != 1 {
			t.Fatalf("shards=%d: ok=%v scanned=%d contributed=%d", shards, ok, scanned, contributed)
		}
		return cp
	}
	ref := merge(1)
	for _, shards := range []int{2, 4, 8} {
		got := merge(shards)
		if len(got.data) != len(ref.data) || len(got.shadow) != len(ref.shadow) {
			t.Fatalf("shards=%d: page counts diverged", shards)
		}
		for base, pg := range ref.data {
			if fmt.Sprint(got.data[base]) != fmt.Sprint(pg) {
				t.Errorf("shards=%d: data page %#x diverged", shards, base)
			}
		}
		for base, pg := range ref.shadow {
			if fmt.Sprint(got.shadow[base]) != fmt.Sprint(pg) {
				t.Errorf("shards=%d: shadow page %#x diverged", shards, base)
			}
		}
	}
}

// TestCommitOutputRace hammers the committed-output stream from concurrent
// goroutines — the commitOne/writeOut paths the pipelined committer and the
// master share. Run under -race this pins the outMu locking discipline;
// the final stream must contain every record exactly once.
func TestCommitOutputRace(t *testing.T) {
	rt := New(ir.NewModule("empty"), Config{})
	const perG, gs = 200, 4
	var wg sync.WaitGroup
	for g := 0; g < gs; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					cp := newCheckpoint(int64(i), 0, 1, nil)
					cp.io = append(cp.io, ioRec{iter: int64(i), text: "c\n"})
					rt.commitOne(cp)
				} else {
					rt.writeOut("w\n")
				}
			}
		}(g)
	}
	wg.Wait()
	out := rt.Output()
	if got, want := strings.Count(out, "\n"), perG*gs; got != want {
		t.Errorf("committed %d records, want %d", got, want)
	}
}
