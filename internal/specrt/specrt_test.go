package specrt

import (
	"strings"
	"testing"

	"privateer/internal/analysis"
	"privateer/internal/classify"
	"privateer/internal/deps"
	"privateer/internal/doall"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/profiling"
	"privateer/internal/transform"
	"privateer/internal/vm"
)

// buildRegion compiles a module's hottest main loop into a RegionInfo for
// direct runtime tests (a miniature of core.Parallelize without the import
// cycle).
func buildRegion(t *testing.T, mod *ir.Module, trainArgs ...uint64) *RegionInfo {
	t.Helper()
	prof, err := profiling.Run(mod, trainArgs...)
	if err != nil {
		t.Fatal(err)
	}
	var loop *ir.Loop
	for _, li := range prof.HotLoops() {
		if li.Loop.Header.Fn.Name == "main" && li.Loop.Depth == 1 {
			loop = li.Loop
			break
		}
	}
	if loop == nil {
		t.Fatal("no hot main loop")
	}
	a := classify.Classify(loop, prof)
	plan := deps.SpeculativeBlockers(loop, prof, a)
	if len(plan.Blockers) > 0 {
		t.Fatalf("blockers: %v\n%s", plan.Blockers, a)
	}
	pt := analysis.ComputePointsTo(mod)
	res, err := transform.Apply(mod, loop, prof, a, plan, pt)
	if err != nil {
		t.Fatal(err)
	}
	iv := ir.FindInductionVar(loop)
	outline, err := doall.Outline(mod, loop, iv)
	if err != nil {
		t.Fatal(err)
	}
	return &RegionInfo{Outline: outline, Assign: a, Plan: plan, TStats: res.Stats}
}

// buildWriterModule: for i in [0,n): table[i%4] = i; writes cycle through
// four slots, so the final state depends on the LAST writer of each slot —
// checkpoint data selection by timestamp is what this exercises.
func buildWriterModule(n int64) *ir.Module {
	m := ir.NewModule("writer")
	table := m.NewGlobal("table", 4*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
		slot := b.Add(b.Global(table), b.Mul(b.SRem(b.Ld(iv), b.I(4)), b.I(8)))
		b.Store(b.Ld(iv), slot, 8)
	})
	acc := b.Local("acc")
	b.St(b.I(0), acc)
	b.For("j", b.I(0), b.I(4), func(jv *ir.Instr) {
		v := b.Load(b.Add(b.Global(table), b.Mul(b.Ld(jv), b.I(8))), 8)
		b.St(b.Add(b.Mul(b.Ld(acc), b.I(100)), v), acc)
	})
	b.Ret(b.Ld(acc))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

// TestLastWriterWinsAcrossWorkers: the merged private state must match the
// sequential last-writer semantics at every worker count and checkpoint
// period.
func TestLastWriterWinsAcrossWorkers(t *testing.T) {
	const n = 37 // deliberately not a multiple of workers or period
	seqIt := interp.New(buildWriterModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 5, 8} {
		for _, period := range []int64{1, 3, 7, 100} {
			mod := buildWriterModule(n)
			ri := buildRegion(t, mod)
			rt := New(mod, Config{Workers: workers, CheckpointPeriod: period}, ri)
			got, err := rt.Run()
			if err != nil {
				t.Fatalf("w=%d k=%d: %v", workers, period, err)
			}
			if got != want {
				t.Errorf("w=%d k=%d: %d, want %d", workers, period, got, want)
			}
			if rt.Stats.Misspecs != 0 {
				t.Errorf("w=%d k=%d: unexpected misspecs %d", workers, period, rt.Stats.Misspecs)
			}
		}
	}
}

// TestReadOnlyViolationRecovered: the profile sees only reads of a table,
// but the measured input writes it. The worker faults on the read-only
// heap, the runtime treats it as misspeculation and recovers sequentially.
func TestReadOnlyViolationRecovered(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("rov")
		table := m.NewGlobal("table", 8*8)
		out := m.NewGlobal("out", 8)
		f := m.NewFunc("main", ir.I64)
		f.NewParam("n", ir.I64)
		b := ir.NewBuilder(f)
		nv := f.Params[0]
		b.For("i", b.I(0), nv, func(iv *ir.Instr) {
			v := b.Load(b.Add(b.Global(table), b.Mul(b.SRem(b.Ld(iv), b.I(8)), b.I(8))), 8)
			addr := b.Global(out)
			b.Store(b.Add(b.Load(addr, 8), v), addr, 8)
			// Iterations >= 12 deface the "read-only" table.
			b.If(b.SGe(b.Ld(iv), b.I(12)), func() {
				b.Store(b.Ld(iv), b.Global(table), 8)
			}, nil)
		})
		b.Ret(b.Load(b.Global(out), 8))
		for _, fn := range m.SortedFuncs() {
			ir.PromoteAllocas(fn)
		}
		return m
	}
	seqIt := interp.New(build(), vm.NewAddressSpace())
	want, err := seqIt.Run(24)
	if err != nil {
		t.Fatal(err)
	}
	mod := build()
	ri := buildRegion(t, mod, 12) // profile only the clean prefix
	if ri.Assign.HeapOf(profiling.Object{Global: mod.Globals["table"]}) != ir.HeapReadOnly {
		t.Fatalf("table should classify read-only on the training prefix:\n%s", ri.Assign)
	}
	rt := New(mod, Config{Workers: 4, CheckpointPeriod: 4}, ri)
	got, err := rt.Run(24)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if rt.Stats.Misspecs == 0 {
		t.Error("read-only violation not detected")
	}
	if got != want {
		t.Errorf("result %d, want %d", got, want)
	}
}

// TestSquashPolicy: a misspeculation in a late interval must not discard
// earlier checkpoints — recovery re-executes only from the last valid one.
func TestSquashPolicy(t *testing.T) {
	const n = 40
	seqIt := interp.New(buildWriterModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{
		Workers: 4, CheckpointPeriod: 5,
		MisspecRate: 0.04, Seed: 99,
	}, ri)
	got, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("result %d, want %d", got, want)
	}
	if rt.Stats.Misspecs == 0 {
		t.Skip("injection produced no misspeculation for this seed")
	}
	// Recovery must be bounded: the serial re-execution cannot exceed the
	// whole loop (it re-runs at most misspecs * (period + spillover)).
	if rt.Sim.RecoverySteps <= 0 {
		t.Error("no recovery steps recorded despite misspeculation")
	}
}

// TestStatsAndOutputPlumbing exercises the remaining accessors.
func TestStatsAndOutputPlumbing(t *testing.T) {
	mod := buildWriterModule(10)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{Workers: 2}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Master() == nil {
		t.Error("Master() nil after Run")
	}
	if rt.Sim.Time() <= 0 {
		t.Error("simulated time not accounted")
	}
	if rt.Sim.IdleCost() < 0 {
		t.Error("negative idle cost")
	}
	if strings.Contains(rt.Output(), "digest") {
		t.Error("unexpected output")
	}
}

// TestAdaptivePeriodStillCorrect: halving the checkpoint period after each
// recovery must preserve results under heavy injection.
func TestAdaptivePeriodStillCorrect(t *testing.T) {
	const n = 48
	seqIt := interp.New(buildWriterModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{
		Workers: 4, CheckpointPeriod: 16, AdaptivePeriod: true,
		MisspecRate: 0.2, Seed: 3,
	}, ri)
	got, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("adaptive run: %d, want %d", got, want)
	}
	if rt.Stats.Recoveries == 0 {
		t.Skip("no recovery triggered for this seed")
	}
}

// TestSequentialFallbackPath drives the runtime into its bounded-recovery
// fallback by making every iteration misspeculate.
func TestSequentialFallbackPath(t *testing.T) {
	const n = 12
	seqIt := interp.New(buildWriterModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{Workers: 3, CheckpointPeriod: 2, MisspecRate: 1.0, Seed: 1}, ri)
	got, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("result %d, want %d", got, want)
	}
	if rt.Stats.Recoveries == 0 {
		t.Error("expected recoveries under certain misspeculation")
	}
}
