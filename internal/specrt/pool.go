package specrt

import (
	"sync"
	"sync/atomic"

	"privateer/internal/interp"
	"privateer/internal/vm"
)

// DefaultPoolSlots is the per-program warmed-slot cap a WorkerPool uses
// when constructed with a non-positive capacity: enough to keep a full
// default worker fleet warm across back-to-back invocations without
// letting an idle program pin unbounded memory.
const DefaultPoolSlots = 32

// warmSlot is one pooled worker's machinery: a released address space
// (structure and map capacity retained, contents dropped) and its
// interpreter over the shared decoded program. RecloneFrom/Recycle
// re-target both at the next invocation's master.
type warmSlot struct {
	as *vm.AddressSpace
	it *interp.Interp
}

// WorkerPool recycles warmed worker machinery across spans and region
// invocations. Spawning a worker cold allocates an address-space clone and
// an interpreter per spawn; a warmed spawn re-clones a pooled space in
// place, reusing its TLB arrays, heap-state slots and the delta-map
// capacity its allocator grew on earlier runs. Slots are keyed by decoded
// Program so an interpreter is only ever recycled onto the module it was
// built for. All methods are safe for concurrent use; the region service
// shares one pool per compiled program across every tenant running it.
type WorkerPool struct {
	mu    sync.Mutex
	slots map[*interp.Program][]*warmSlot
	// perProgram caps retained slots per decoded program.
	perProgram int

	reuses   atomic.Int64
	misses   atomic.Int64
	returned atomic.Int64
	dropped  atomic.Int64
}

// NewWorkerPool returns an empty pool retaining at most perProgram warmed
// slots per decoded program (<= 0 selects DefaultPoolSlots).
func NewWorkerPool(perProgram int) *WorkerPool {
	if perProgram <= 0 {
		perProgram = DefaultPoolSlots
	}
	return &WorkerPool{slots: map[*interp.Program][]*warmSlot{}, perProgram: perProgram}
}

// get pops a warmed slot for prog, or nil when the pool has none (the
// caller then spawns cold).
func (p *WorkerPool) get(prog *interp.Program) *warmSlot {
	p.mu.Lock()
	lst := p.slots[prog]
	if n := len(lst); n > 0 {
		s := lst[n-1]
		lst[n-1] = nil
		p.slots[prog] = lst[:n-1]
		p.mu.Unlock()
		p.reuses.Add(1)
		return s
	}
	p.mu.Unlock()
	p.misses.Add(1)
	return nil
}

// put releases a slot's address space (dropping every page and allocator
// reference from the invocation that used it, so the pool never pins a
// dead invocation's memory) and parks it for the next get; slots beyond
// the per-program cap are discarded.
func (p *WorkerPool) put(prog *interp.Program, s *warmSlot) {
	s.as.Release()
	p.mu.Lock()
	if len(p.slots[prog]) < p.perProgram {
		p.slots[prog] = append(p.slots[prog], s)
		p.mu.Unlock()
		p.returned.Add(1)
		return
	}
	p.mu.Unlock()
	p.dropped.Add(1)
}

// WorkerPoolStats is a point-in-time snapshot of a pool's traffic.
type WorkerPoolStats struct {
	// Reuses counts gets satisfied from a warmed slot.
	Reuses int64 `json:"reuses"`
	// Misses counts gets that fell through to a cold spawn.
	Misses int64 `json:"misses"`
	// Returned counts slots parked back into the pool.
	Returned int64 `json:"returned"`
	// Dropped counts slots discarded at the per-program cap.
	Dropped int64 `json:"dropped"`
	// Retained is the number of slots currently parked across all
	// programs.
	Retained int64 `json:"retained"`
}

// Snapshot returns the pool's current traffic counters.
func (p *WorkerPool) Snapshot() WorkerPoolStats {
	st := WorkerPoolStats{
		Reuses:   p.reuses.Load(),
		Misses:   p.misses.Load(),
		Returned: p.returned.Load(),
		Dropped:  p.dropped.Load(),
	}
	p.mu.Lock()
	for _, lst := range p.slots {
		st.Retained += int64(len(lst))
	}
	p.mu.Unlock()
	return st
}
