package specrt

import (
	"fmt"
	"testing"

	"privateer/internal/classify"
	"privateer/internal/deps"
	"privateer/internal/doall"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/profiling"
	"privateer/internal/vm"
)

// outlineRegion outlines a module's hottest depth-1 main loop with a
// hand-built assignment — for tests that need precise control over heap
// classification (the full classify pipeline would choose its own).
func outlineRegion(t *testing.T, mod *ir.Module, assign *classify.Assignment, args ...uint64) *RegionInfo {
	t.Helper()
	prof, err := profiling.Run(mod, args...)
	if err != nil {
		t.Fatal(err)
	}
	var loop *ir.Loop
	for _, li := range prof.HotLoops() {
		if li.Loop.Header.Fn.Name == "main" && li.Loop.Depth == 1 {
			loop = li.Loop
			break
		}
	}
	if loop == nil {
		t.Fatal("no hot main loop")
	}
	iv := ir.FindInductionVar(loop)
	outline, err := doall.Outline(mod, loop, iv)
	if err != nil {
		t.Fatal(err)
	}
	return &RegionInfo{Outline: outline, Assign: assign, Plan: &deps.Plan{}}
}

// TestPerInvocationFallback: the recovery budget must be per invocation —
// a budget of 2 under certain misspeculation yields exactly 2 recoveries
// and 1 fallback per region entry, and a later invocation starts with a
// fresh budget instead of inheriting the exhausted one.
func TestPerInvocationFallback(t *testing.T) {
	const n = 12
	seqIt := interp.New(buildWriterModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{
		Workers: 3, CheckpointPeriod: 2,
		MisspecRate: 1.0, Seed: 1, MaxRecoveries: 2,
	}, ri)
	got, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("result %d, want %d", got, want)
	}
	if rt.Stats.Recoveries != 2 {
		t.Errorf("recoveries %d, want 2 (the budget)", rt.Stats.Recoveries)
	}
	if rt.Stats.SequentialFallbacks != 1 {
		t.Errorf("fallbacks %d, want 1", rt.Stats.SequentialFallbacks)
	}
	if rt.Stats.RegionWallNS <= 0 {
		t.Error("RegionWallNS not accounted on the fallback path")
	}
	// A second invocation must get its own budget: were the budget
	// cumulative, it would fall back immediately with no new recoveries.
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Recoveries != 4 {
		t.Errorf("recoveries after second invocation %d, want 4 (2 per invocation)", rt.Stats.Recoveries)
	}
	if rt.Stats.SequentialFallbacks != 2 {
		t.Errorf("fallbacks after second invocation %d, want 2", rt.Stats.SequentialFallbacks)
	}
}

// TestUnlimitedRecoveries: a negative budget disables the fallback. The
// run is single-worker so every iteration misspeculates in its own span:
// the recovery count deterministically exceeds DefaultMaxRecoveries, which
// proves the budget really is off (the default would have fallen back).
func TestUnlimitedRecoveries(t *testing.T) {
	const n = DefaultMaxRecoveries + 8
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{
		Workers: 1, CheckpointPeriod: 1,
		MisspecRate: 1.0, Seed: 1, MaxRecoveries: -1,
	}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats.SequentialFallbacks != 0 {
		t.Errorf("fallbacks %d with unlimited budget, want 0", rt.Stats.SequentialFallbacks)
	}
	if rt.Stats.Recoveries != n {
		t.Errorf("recoveries %d, want %d (one per iteration)", rt.Stats.Recoveries, n)
	}
}

// TestReduxRegistryLifecycle: registration is keyed by address (a
// re-registration replaces the entry), deregistration removes it, and
// snapshots come out in address order.
func TestReduxRegistryLifecycle(t *testing.T) {
	rt := New(ir.NewModule("empty"), Config{})
	a := ir.HeapRedux.Base() + vm.PageSize
	b := a + 64
	rt.registerRedux(a, 8, profiling.Object{})
	rt.registerRedux(b, 16, profiling.Object{})
	if rt.reduxCount() != 2 {
		t.Fatalf("count %d, want 2", rt.reduxCount())
	}
	// Same address again: replaced, not duplicated.
	rt.registerRedux(a, 24, profiling.Object{})
	if rt.reduxCount() != 2 {
		t.Fatalf("count after re-register %d, want 2", rt.reduxCount())
	}
	snap := rt.reduxSnapshot()
	if len(snap) != 2 || snap[0].addr != a || snap[1].addr != b {
		t.Fatalf("snapshot not address-ordered: %+v", snap)
	}
	if snap[0].size != 24 {
		t.Errorf("re-registration kept stale size %d, want 24", snap[0].size)
	}
	rt.deregisterRedux(a)
	if rt.reduxCount() != 1 {
		t.Fatalf("count after deregister %d, want 1", rt.reduxCount())
	}
	if snap := rt.reduxSnapshot(); len(snap) != 1 || snap[0].addr != b {
		t.Fatalf("wrong survivor: %+v", snap)
	}
}

// buildReduxReallocModule allocates a reduction object, frees it, and
// allocates a second one — which the heap free list places at the SAME
// address — then min-reduces into it. The returned instruction is the
// second allocation site (the one the assignment must classify).
//
//	r1 = halloc(8, redux); hdealloc(r1)
//	r2 = halloc(8, redux); *r2 = 1000
//	for i in [0,12): *r2 = min(*r2, i+5)   // sequential result: 5
func buildReduxReallocModule() (*ir.Module, *ir.Instr) {
	m := ir.NewModule("redux-realloc")
	slot := m.NewGlobal("slot", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	a1 := b.HAlloc("r1", b.I(8), ir.HeapRedux)
	b.HDealloc(a1, ir.HeapRedux)
	a2 := b.HAlloc("r2", b.I(8), ir.HeapRedux)
	b.Store(b.I(1000), a2, 8)
	b.St(a2, b.Global(slot))
	b.For("i", b.I(0), b.I(12), func(iv *ir.Instr) {
		p := b.LdP(b.Global(slot))
		v := b.Load(p, 8)
		x := b.Add(b.Ld(iv), b.I(5))
		b.Store(b.Select(b.SLt(v, x), v, x), p, 8)
	})
	b.Ret(b.Load(b.LdP(b.Global(slot)), 8))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m, a2
}

// TestReduxFreeReallocRoundTrip: freeing a reduction object must drop its
// registry entry, so a reallocation at the same address is governed by the
// NEW object's operator. With a stale first-registration-wins entry the
// min-reduction would be initialized and folded as an integer sum
// (identity 0), producing 1000 instead of 5.
func TestReduxFreeReallocRoundTrip(t *testing.T) {
	mod, site2 := buildReduxReallocModule()
	assign := &classify.Assignment{
		ReduxOps:   map[profiling.Object]ir.ReduxKind{{Site: site2}: ir.ReduxMinI64},
		ReduxSizes: map[profiling.Object]int64{{Site: site2}: 8},
	}
	ri := outlineRegion(t, mod, assign)
	rt := New(mod, Config{Workers: 2, CheckpointPeriod: 4}, ri)
	got, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != 5 {
		t.Errorf("min-reduction result %d, want 5 (stale operator would give 1000)", got)
	}
	if rt.Stats.Misspecs != 0 {
		t.Errorf("unexpected misspecs %d", rt.Stats.Misspecs)
	}
	if rt.reduxCount() != 1 {
		t.Fatalf("registry holds %d objects after free+realloc, want 1", rt.reduxCount())
	}
	if snap := rt.reduxSnapshot(); snap[0].op != ir.ReduxMinI64 {
		t.Errorf("registry kept the freed object's operator %v, want %v",
			snap[0].op, ir.ReduxMinI64)
	}
}

// TestCrossValidateUnit drives the chain validation directly: a byte
// written in interval 0 and read as "live-in" in interval 1 must flag
// interval 1; disjoint bytes must not.
func TestCrossValidateUnit(t *testing.T) {
	base := ir.ShadowAddr(ir.HeapPrivate.Base()+vm.PageSize) &^ uint64(vm.PageSize-1)

	cp0 := newCheckpoint(0, 0, 4, nil)
	cp1 := newCheckpoint(1, 4, 8, cp0)
	cp0.ownPage(cp0.shadow, base)[5] = MetaTSBase // written in interval 0
	cp1.ownPage(cp1.shadow, base)[5] = MetaReadLiveIn
	if c := cp1.crossValidate(); c != 1 {
		t.Errorf("write-then-live-in-read: flagged interval %d, want 1", c)
	}

	// Read as live-in first, written later: also a violation (the earlier
	// read observed pre-region state the later write should have changed).
	cp0 = newCheckpoint(0, 0, 4, nil)
	cp1 = newCheckpoint(1, 4, 8, cp0)
	cp0.ownPage(cp0.shadow, base)[9] = MetaReadLiveIn
	cp1.ownPage(cp1.shadow, base)[9] = MetaTSBase
	if c := cp1.crossValidate(); c != 1 {
		t.Errorf("live-in-read-then-write: flagged interval %d, want 1", c)
	}

	// Disjoint bytes: clean.
	cp0 = newCheckpoint(0, 0, 4, nil)
	cp1 = newCheckpoint(1, 4, 8, cp0)
	cp0.ownPage(cp0.shadow, base)[1] = MetaTSBase
	cp1.ownPage(cp1.shadow, base)[2] = MetaReadLiveIn
	if c := cp1.crossValidate(); c != -1 {
		t.Errorf("disjoint bytes flagged interval %d, want -1", c)
	}
}

// buildCrossIntervalModule hand-instruments a loop whose only conflict
// spans checkpoint intervals: iteration 2 writes a private global that
// iteration 7 reads. Within each interval the fast phase and the merge see
// nothing wrong — only the cross-interval chain validation can catch it.
func buildCrossIntervalModule() *ir.Module {
	m := ir.NewModule("xval")
	g := m.NewGlobal("g", 8)
	g.Heap = ir.HeapPrivate
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		i := b.Ld(iv)
		b.If(b.Eq(i, b.I(2)), func() {
			p := b.Global(g)
			b.PrivateWrite(p, 8)
			b.Store(i, p, 8)
		}, nil)
		b.If(b.Eq(i, b.I(7)), func() {
			p := b.Global(g)
			b.PrivateRead(p, 8)
			b.Print("v=%d\n", b.Load(p, 8))
		}, nil)
	})
	b.Ret(b.I(0))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

// TestCrossIntervalMisspecEndToEnd: with 2 workers and period 4, the
// write at iteration 2 lands in interval 0 (worker 0) and the read at
// iteration 7 in interval 1 (worker 1) — separate address spaces, separate
// checkpoints, so only crossValidate detects the violation. Recovery must
// re-execute from the last valid checkpoint and produce the sequential
// output.
func TestCrossIntervalMisspecEndToEnd(t *testing.T) {
	mod := buildCrossIntervalModule()
	ri := outlineRegion(t, mod, &classify.Assignment{})
	rt := New(mod, Config{Workers: 2, CheckpointPeriod: 4}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Misspecs == 0 {
		t.Error("cross-interval violation not detected")
	}
	if rt.Stats.Recoveries == 0 {
		t.Error("no recovery after cross-interval misspeculation")
	}
	if got, want := rt.Output(), "v=2\n"; got != want {
		t.Errorf("output %q, want %q (sequential semantics)", got, want)
	}
}

// TestAdaptivePeriodHalving observes the halving through the event stream:
// under certain misspeculation with AdaptivePeriod, successive spans must
// start with periods 8, 4, 2, 1, 1, ...
func TestAdaptivePeriodHalving(t *testing.T) {
	const n = 20
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	col := obs.NewCollector(0)
	rt := New(mod, Config{
		Workers: 1, CheckpointPeriod: 8, AdaptivePeriod: true,
		MisspecRate: 1.0, Seed: 7, MaxRecoveries: 100,
		Trace: obs.NewTracer(col),
	}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	var periods []int64
	for _, ev := range col.Events() {
		if ev.Kind == obs.KSpanStart {
			periods = append(periods, ev.B)
		}
	}
	if len(periods) < 4 {
		t.Fatalf("only %d spans recorded", len(periods))
	}
	for i, want := range []int64{8, 4, 2, 1} {
		if periods[i] != want {
			t.Fatalf("span %d period %d, want %d (full sequence %v)", i, periods[i], want, periods)
		}
	}
	for i, p := range periods[3:] {
		if p != 1 {
			t.Errorf("span %d period %d, want floor 1", i+3, p)
		}
	}
}

// TestEventSequenceGolden pins the exact lifecycle event sequence for a
// deterministic single-worker run that misspeculates on every iteration,
// recovers twice, and falls back: the trace is an API, and reorderings are
// regressions.
func TestEventSequenceGolden(t *testing.T) {
	const n = 6
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	col := obs.NewCollector(0)
	rt := New(mod, Config{
		Workers: 1, CheckpointPeriod: 2,
		MisspecRate: 1.0, Seed: 1, MaxRecoveries: 2,
		Trace: obs.NewTracer(col),
	}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	// Only the specrt lifecycle kinds: vm-layer events (COW copies, TLB
	// flushes) interleave nondeterministically with map iteration order.
	keep := map[obs.Kind]bool{
		obs.KRegionInvoke: true, obs.KSpanStart: true, obs.KSpanEnd: true,
		obs.KPhase: true, obs.KMisspec: true, obs.KRecovery: true,
		obs.KSeqFallback: true,
	}
	var got []string
	for _, ev := range col.Events() {
		if !keep[ev.Kind] {
			continue
		}
		s := ev.Kind.String()
		if ev.Cause != "" {
			s += ":" + ev.Cause
		}
		got = append(got, s)
	}
	want := []string{
		"span-start", "phase:fast", "misspec:injected", "phase:validate", "span-end",
		"phase:recover", "recovery",
		"span-start", "phase:fast", "misspec:injected", "phase:validate", "span-end",
		"phase:recover", "recovery",
		"seq-fallback",
		"region-invoke",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("event sequence:\n got %v\nwant %v", got, want)
	}
}

// TestMetricsFromRun: the per-invocation metrics snapshot folded from a
// live run must agree with the runtime's own counters.
func TestMetricsFromRun(t *testing.T) {
	const n = 24
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	col := obs.NewCollector(0)
	rt := New(mod, Config{
		Workers: 2, CheckpointPeriod: 4,
		MisspecRate: 0.1, Seed: 5,
		Trace: obs.NewTracer(col),
	}, ri)
	if _, err := rt.Run(); err != nil {
		t.Fatal(err)
	}
	ms := obs.Summarize(col.Events())
	var m *obs.InvocationMetrics
	for i := range ms {
		if ms[i].Invocation == 0 {
			m = &ms[i]
		}
	}
	if m == nil {
		t.Fatal("no invocation-0 metrics")
	}
	if m.Misspecs != rt.Stats.Misspecs {
		t.Errorf("event misspecs %d != stats %d", m.Misspecs, rt.Stats.Misspecs)
	}
	if m.Recoveries != rt.Stats.Recoveries {
		t.Errorf("event recoveries %d != stats %d", m.Recoveries, rt.Stats.Recoveries)
	}
	if m.Fallbacks != rt.Stats.SequentialFallbacks {
		t.Errorf("event fallbacks %d != stats %d", m.Fallbacks, rt.Stats.SequentialFallbacks)
	}
	if m.Checkpoints != rt.Stats.Checkpoints {
		t.Errorf("event checkpoints %d != stats %d", m.Checkpoints, rt.Stats.Checkpoints)
	}
	if m.WallNS <= 0 {
		t.Error("no wall time folded from the region-invoke event")
	}
}
