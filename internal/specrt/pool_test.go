package specrt

import (
	"testing"

	"privateer/internal/interp"
	"privateer/internal/vm"
)

// TestWarmPoolReuseBitIdentical runs the same compiled region repeatedly
// over one shared decoded Program and warmed worker pool — the region
// service's steady state — and checks that warmed spawns happen and that
// every run's result still matches the sequential reference exactly.
func TestWarmPoolReuseBitIdentical(t *testing.T) {
	const n = 37
	seqIt := interp.New(buildWriterModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}

	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	prog := interp.SharedProgram(mod)
	pool := NewWorkerPool(0)
	const runs = 5
	for i := 0; i < runs; i++ {
		rt := New(mod, Config{Workers: 4, CheckpointPeriod: 4,
			Program: prog, Pool: pool}, ri)
		got, err := rt.Run()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("run %d: %d, want %d", i, got, want)
		}
		if rt.Stats.Misspecs != 0 {
			t.Fatalf("run %d: unexpected misspecs %d", i, rt.Stats.Misspecs)
		}
		if i > 0 && rt.Stats.WarmSpawns == 0 {
			t.Fatalf("run %d: no warmed spawns despite a populated pool", i)
		}
	}
	st := pool.Snapshot()
	if st.Reuses == 0 || st.Returned == 0 {
		t.Fatalf("pool saw no traffic: %+v", st)
	}
	if st.Retained == 0 {
		t.Fatalf("pool retained no slots after %d runs: %+v", runs, st)
	}
}

// TestWarmPoolSurvivesMisspeculation checks that recycling worker machinery
// does not disturb recovery: a run with forced misspeculation over a warmed
// pool still produces the sequential result.
func TestWarmPoolSurvivesMisspeculation(t *testing.T) {
	const n = 37
	seqIt := interp.New(buildWriterModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}
	mod := buildWriterModule(n)
	ri := buildRegion(t, mod)
	prog := interp.SharedProgram(mod)
	pool := NewWorkerPool(0)
	for i := 0; i < 3; i++ {
		rt := New(mod, Config{Workers: 3, CheckpointPeriod: 2,
			MisspecRate: 1.0, Seed: uint64(i + 1),
			Program: prog, Pool: pool}, ri)
		got, err := rt.Run()
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("run %d: %d, want %d", i, got, want)
		}
		if rt.Stats.Misspecs == 0 {
			t.Fatalf("run %d: injection produced no misspeculation", i)
		}
	}
}

// TestConfigProgramModuleMismatch: a Program decoding a different module
// must be rejected up front, not discovered as corrupt execution.
func TestConfigProgramModuleMismatch(t *testing.T) {
	mod := buildWriterModule(5)
	ri := buildRegion(t, mod)
	other := interp.SharedProgram(buildWriterModule(5))
	rt := New(mod, Config{Workers: 2, Program: other}, ri)
	if _, err := rt.Run(); err == nil {
		t.Fatal("mismatched Config.Program was not rejected")
	}
}
