package specrt

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/classify"
	"privateer/internal/deps"
	"privateer/internal/doall"
	"privateer/internal/interp"
	"privateer/internal/intervalmap"
	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/profiling"
	"privateer/internal/transform"
	"privateer/internal/vm"
)

// DefaultMaxRecoveries is the per-invocation recovery budget when
// Config.MaxRecoveries is zero. Each recovery makes forward progress, so
// the budget is a policy knob, not a liveness requirement: past it the
// invocation's remainder abandons speculation (a sequential fallback),
// trading lost parallelism for an end to churn. The value comfortably
// covers the paper's Figure 9 regime (up to ~20 expected misspeculations
// per invocation at the highest injected rate).
const DefaultMaxRecoveries = 32

// Config controls a speculative run.
type Config struct {
	// Workers is the number of worker processes.
	Workers int
	// CheckpointPeriod is the iteration count per checkpoint; 0 selects
	// automatically (about five checkpoints per invocation, capped at the
	// paper's 253-iteration metadata limit).
	CheckpointPeriod int64
	// AdaptivePeriod shrinks the checkpoint period after each recovery
	// within an invocation (halving it, floor 1), trading validation
	// overhead for less discarded work when misspeculation turns out to
	// be frequent — an extension of the paper's fixed-period policy
	// (section 5.2 discusses exactly this tension).
	AdaptivePeriod bool
	// MaxRecoveries bounds recovery episodes per invocation; past the
	// budget the invocation's remainder runs sequentially and counts as a
	// SequentialFallback. 0 selects DefaultMaxRecoveries; negative values
	// disable the budget.
	MaxRecoveries int
	// MisspecRate injects artificial misspeculation at the given
	// per-iteration probability (Figure 9). Zero disables injection.
	MisspecRate float64
	// Seed makes injection deterministic.
	Seed uint64
	// StepLimit bounds each worker's interpreter (0 = default).
	StepLimit int64
	// Pipeline enables the pipelined validator/committer: a background
	// goroutine eagerly chain-validates, installs, and commits checkpoint k
	// as soon as interval k quiesces, while workers execute interval k+1 —
	// moving validation and commit off the master's critical path (the
	// paper's separate commit process, §5.2-§5.3). Off, the span uses the
	// quiesce-then-commit barrier model. Both modes produce byte-identical
	// output and results; on misspeculation-free runs the simulated-time
	// accounting is identical too (misspeculation timing is inherently
	// schedule-dependent in either mode — recovery keeps the outcome exact).
	Pipeline bool
	// ValidateShards caps the goroutines used to shard checkpoint merge and
	// cross-interval validation scans by shadow-page range. 0 selects
	// automatically (GOMAXPROCS, capped at 8); 1 forces serial scans.
	// Results are independent of the shard count.
	ValidateShards int
	// Trace receives speculation-lifecycle events (nil disables tracing;
	// every emission site is then a single branch).
	Trace *obs.Tracer
	// Metrics, when non-nil, receives live runtime metrics: the runtime
	// registers pull-style collectors on it at construction, so a scrape
	// (obs.Server's /metrics) observes Stats, per-heap occupancy, the
	// misspeculation-by-site table, and the opcode profile while a region
	// is still executing. Nil disables publication at zero cost.
	Metrics *obs.Registry
	// OpProf, when non-nil, is shared by every interpreter the runtime
	// constructs (master, workers, recovery), enabling the sampling
	// per-opcode profiler (see interp.OpProfiler).
	OpProf *interp.OpProfiler
	// SepAudit enables the runtime oracle for static separation proofs:
	// workers observe every load and store and flag (loudly, via
	// Stats.SepAuditViolations and SepAuditReport) any access that
	// contradicts a statically-proven claim — a store into a proven
	// read-only object, or a read of a statically-privatized object's byte
	// before the iteration rewrote it. The read-only heap keeps its write
	// protection in this mode even when proofs would let it drop. A sound
	// prover never trips the oracle; it exists to catch unsound proofs
	// (see core.Options.PlantProofs) before they corrupt output silently.
	SepAudit bool
	// EagerClone selects the flat-table baseline memory mode: worker spawn
	// rebuilds the whole page table and deep-copies allocator state up
	// front, and dirty scans visit every resident entry instead of
	// following the radix table's dirty summaries. Semantically identical
	// to the default lazy mode; used by the scale experiment as its
	// before/after reference.
	EagerClone bool
	// Program, when non-nil, is the shared pre-decoded form of Mod that this
	// runtime's master, workers and recovery interpreters execute (see
	// interp.SharedProgram). Concurrent RT instances over the same module —
	// the multi-tenant region service — share one decode cache this way.
	// Program.Mod must be the runtime's module. Nil decodes privately, the
	// single-invocation default.
	Program *interp.Program
	// Pool, when non-nil, recycles warmed worker machinery (address space +
	// interpreter) across spans and invocations instead of constructing it
	// fresh on every spawn, amortizing the per-spawn allocator clone. The
	// pool is safe for concurrent use; the service shares one per compiled
	// program. Nil spawns cold every time.
	Pool *WorkerPool
}

// RegionInfo bundles the compiler artifacts for one parallel region.
type RegionInfo struct {
	// Outline is the DOALL outline (region/iter functions).
	Outline *doall.Region
	// Assign is the heap assignment.
	Assign *classify.Assignment
	// Plan is the speculation plan.
	Plan *deps.Plan
	// TStats is the transformation summary.
	TStats *transform.Stats
}

// Stats aggregates runtime events across all invocations, feeding Table 3
// and Figure 8.
type Stats struct {
	// Invocations counts parallel-region entries.
	Invocations int64
	// Checkpoints counts checkpoint objects constructed.
	Checkpoints int64
	// Misspecs counts detected misspeculations (including injected).
	Misspecs int64
	// Recoveries counts sequential recovery episodes.
	Recoveries int64
	// SequentialFallbacks counts invocations abandoned to pure sequential
	// execution after the per-invocation recovery budget was spent.
	SequentialFallbacks int64
	// PrivReadBytes totals privacy-checked read volume (Table 3's "Priv R").
	PrivReadBytes int64
	// PrivWriteBytes totals privacy-checked write volume (Table 3's
	// "Priv W").
	PrivWriteBytes int64
	// PrivReadChecks counts dynamic privacy read checks.
	PrivReadChecks int64
	// PrivWriteChecks counts dynamic privacy write checks.
	PrivWriteChecks int64
	// SeparationChecks counts dynamic check_heap executions.
	SeparationChecks int64
	// Predictions counts dynamic value-prediction checks.
	Predictions int64
	// DeferredIO counts buffered output operations.
	DeferredIO int64
	// ProvenRangeBytes totals statically-privatized object bytes captured
	// for wholesale per-interval install (objects whose privacy marks the
	// prover discharged; compare PrivWriteBytes for the tracked kind).
	ProvenRangeBytes int64
	// SepAuditViolations counts accesses the SepAudit oracle observed
	// contradicting a static separation proof. Nonzero means an unsound
	// proof reached the runtime; see RT.SepAuditReport.
	SepAuditViolations int64
	// WarmSpawns counts worker spawns satisfied from Config.Pool's warmed
	// slots (a recycled address space re-cloned in place plus a recycled
	// interpreter) rather than constructed cold.
	WarmSpawns int64
	// SpawnNS is wall-clock worker spawn time (nanoseconds, atomically
	// accumulated, like every timing field below).
	SpawnNS int64
	// JoinNS is the master-side validate/install/commit critical path after
	// workers quiesce: in synchronous mode the whole chain validation plus
	// install plus commit; in pipelined mode only the drain — whatever the
	// background committer had not already overlapped with execution.
	JoinNS int64
	// CheckpointNS is wall-clock time workers spent merging state into
	// checkpoints.
	CheckpointNS int64
	// PrivReadNS is wall-clock time in privacy read checks.
	PrivReadNS int64
	// PrivWriteNS is wall-clock time in privacy write checks.
	PrivWriteNS int64
	// WorkerBusyNS is total wall-clock worker execution time.
	WorkerBusyNS int64
	// RegionWallNS is wall-clock time inside parallel-region invocations.
	RegionWallNS int64
	// OverlappedCommitNS is wall-clock validate/install/commit time the
	// pipelined committer performed while workers were still executing —
	// work the synchronous mode would have serialized into JoinNS.
	OverlappedCommitNS int64
}

// RT is the runtime: it executes a transformed module, intercepting
// parallel-region calls and running them speculatively in parallel.
type RT struct {
	// Cfg is the run configuration.
	Cfg Config
	// Mod is the transformed module.
	Mod *ir.Module
	// Stats accumulates runtime events.
	Stats Stats
	// Sim accumulates simulated-time accounting (see sim.go).
	Sim SimStats

	regions map[*ir.Function]*RegionInfo

	// Locking discipline for committed program output.
	//
	// outMu guards out (the committed output stream) and each checkpoint's
	// committed flag transition: every writer goes through writeOut or
	// commitOne. Historically rt.out was mutated without a lock, which was
	// sound only because commit ran on the master thread after the span
	// quiesced; with Config.Pipeline the background committer writes output
	// while worker goroutines are still running, so the invariant is now
	// explicit:
	//
	//   - master thread: writes via OnPrint only outside parallel regions,
	//     and via sequentialRange only after the span (and its committer)
	//     has fully joined;
	//   - committer goroutine: writes via commitOne only between span start
	//     and its done-channel close, which span.run awaits before
	//     returning;
	//   - workers: never write out (their prints defer into worker-local
	//     buffers).
	//
	// The mutex makes the discipline checkable under -race rather than a
	// comment-only convention; at most one writer ever contends, so it
	// costs an uncontended lock per record.
	outMu  sync.Mutex
	out    strings.Builder
	master *interp.Interp

	reduxMu sync.Mutex
	// reduxObjs tracks live reduction objects keyed by base address, so
	// registration is O(1) and a free can remove its entry (a stale entry
	// would make every later worker write identity bytes into dead or
	// reallocated memory).
	reduxObjs map[uint64]reduxObj

	// sepMu guards sepObjs, the live statically-proven objects keyed by
	// base address: private-heap objects some region statically privatized
	// (their final ranges install wholesale, since their accesses carry no
	// shadow marks) and read-only-heap objects with a static proof (the
	// SepAudit oracle watches them). Registration mirrors reduxObjs:
	// globals at Run, dynamic sites via onAlloc/onFree.
	sepMu   sync.Mutex
	sepObjs map[uint64]sepObj

	// sepViolMu guards sepViols, the (bounded) detail list behind
	// Stats.SepAuditViolations.
	sepViolMu sync.Mutex
	sepViols  []string

	// occ mirrors the master address space's per-heap allocator totals in
	// atomic counters for live introspection (attached in Run).
	occ *vm.HeapOccupancy

	// siteMu guards siteMap, the live allocation-site map: master-side
	// allocations (and globals) keyed by address range, so a faulting
	// address can be attributed to the object that owns it. Worker-local
	// allocations are scratch state and are not tracked.
	siteMu  sync.Mutex
	siteMap *intervalmap.Map[string]

	// missMu guards missTable, the per-site misspeculation aggregate
	// behind MisspecSites, /spec, and privateer -why-misspec.
	missMu    sync.Mutex
	missTable map[misspecKey]int64

	// histRegionWall and histInstall are optional metric histograms
	// (nil without Config.Metrics; Observe on nil is a no-op).
	histRegionWall *obs.Histogram
	histInstall    *obs.Histogram

	// ptStats caches the master page table's radix occupancy for metric
	// scrapes. The tree itself must not be walked concurrently with
	// mutation, so the cache is refreshed only at quiescent points (region
	// invocation boundaries) and scrapes read the last snapshot.
	ptStats atomic.Pointer[vm.PageTableStats]
	// vmStats atomically publishes the master space's memory-system Stats
	// block for scrapes (set in Run once the master space exists; the block
	// itself is in atomic-update mode whenever metrics are enabled).
	vmStats atomic.Pointer[vm.Stats]

	// curInterval and doneInterval (atomic) expose the live pipeline
	// depth: the newest interval any worker has started vs. the newest
	// interval the background committer has fully retired.
	curInterval  int64
	doneInterval int64
}

// New prepares a runtime for mod with the given regions.
func New(mod *ir.Module, cfg Config, regions ...*RegionInfo) *RT {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	rt := &RT{
		Cfg: cfg, Mod: mod,
		regions:   map[*ir.Function]*RegionInfo{},
		reduxObjs: map[uint64]reduxObj{},
		sepObjs:   map[uint64]sepObj{},
		occ:       vm.NewHeapOccupancy(),
		siteMap:   &intervalmap.Map[string]{},
		missTable: map[misspecKey]int64{},
	}
	for _, r := range regions {
		rt.regions[r.Outline.RegionFn] = r
	}
	if cfg.Metrics != nil {
		rt.publishMetrics(cfg.Metrics)
		latestRT.Store(rt)
	}
	return rt
}

// Output returns everything the program printed, with deferred region
// output committed in order.
func (rt *RT) Output() string {
	rt.outMu.Lock()
	defer rt.outMu.Unlock()
	return rt.out.String()
}

// writeOut appends text to the committed output stream (see the locking
// discipline note on outMu).
func (rt *RT) writeOut(text string) {
	rt.outMu.Lock()
	rt.out.WriteString(text)
	rt.outMu.Unlock()
}

// Master exposes the main process interpreter (after Run).
func (rt *RT) Master() *interp.Interp { return rt.master }

// onAlloc tracks reduction objects allocated dynamically into the redux
// heap so worker heaps can be initialized to identity and merged, and
// records the allocation site for misspeculation attribution.
func (rt *RT) onAlloc(fr *interp.Frame, in *ir.Instr, addr, size uint64) {
	if ir.HeapOf(addr) == ir.HeapRedux && in != nil {
		rt.registerRedux(addr, int64(size), profiling.Object{Site: in})
	}
	if in != nil {
		rt.sepRegister(addr, int64(size), profiling.Object{Site: in})
		rt.trackSite(addr, size, profiling.Object{Site: in}.String())
	}
}

// onFree removes a freed reduction object from the registry: its address
// may be dead, or about to be reused by an unrelated allocation.
func (rt *RT) onFree(fr *interp.Frame, in *ir.Instr, addr uint64) {
	if ir.HeapOf(addr) == ir.HeapRedux {
		rt.deregisterRedux(addr)
	}
	rt.sepDeregister(addr)
	rt.untrackSite(addr)
}

// Run executes the program from its entry function.
func (rt *RT) Run(args ...uint64) (uint64, error) {
	var master *interp.Interp
	if p := rt.Cfg.Program; p != nil {
		if p.Mod != rt.Mod {
			return 0, fmt.Errorf("specrt: Config.Program decodes module %q, runtime executes %q",
				p.Mod.Name, rt.Mod.Name)
		}
		master = interp.NewShared(p, vm.NewAddressSpace())
	} else {
		master = interp.New(rt.Mod, vm.NewAddressSpace())
	}
	if rt.Cfg.StepLimit > 0 {
		master.StepLimit = rt.Cfg.StepLimit
	}
	rt.master = master
	master.SetTrace(rt.Cfg.Trace, -1, -1)
	master.AS.Occ = rt.occ
	master.AS.EagerClone = rt.Cfg.EagerClone
	if rt.Cfg.Metrics != nil {
		// Scrapes read the master's memory-system counters concurrently
		// with execution, so its Stats block must update atomically.
		master.AS.AtomicStats()
		rt.vmStats.Store(master.AS.Stats)
	}
	master.Prof = rt.Cfg.OpProf
	master.Hooks.OnPrint = func(in *ir.Instr, text string) bool {
		rt.writeOut(text)
		return true
	}
	master.Hooks.OnAlloc = rt.onAlloc
	master.Hooks.OnFree = rt.onFree
	master.Hooks.CallOverride = func(fr *interp.Frame, in *ir.Instr, callee *ir.Function, args []uint64) (uint64, bool, error) {
		ri := rt.regions[callee]
		if ri == nil {
			return 0, false, nil
		}
		return 0, true, rt.invoke(ri, args)
	}
	if err := master.LayOutGlobals(); err != nil {
		return 0, err
	}
	defer func() { rt.Sim.SeqSteps = master.Steps }()
	// Register global reduction objects, and every global's address range
	// for misspeculation attribution.
	for _, name := range rt.Mod.GlobalNames() {
		g := rt.Mod.Globals[name]
		if g.Heap == ir.HeapRedux {
			rt.registerRedux(master.GlobalAddr(g), g.Size, profiling.Object{Global: g})
		}
		rt.sepRegister(master.GlobalAddr(g), g.Size, profiling.Object{Global: g})
		rt.trackSite(master.GlobalAddr(g), uint64(g.Size), profiling.Object{Global: g}.String())
	}
	return master.Run(args...)
}

// registerRedux records a reduction object's operator and element size from
// whichever region's assignment classified it. Re-registering an address
// (a reallocation after a free) replaces the entry, so the new object's
// operator wins.
func (rt *RT) registerRedux(addr uint64, size int64, obj profiling.Object) {
	op := ir.ReduxAddI64
	elem := int64(8)
	for _, ri := range rt.regions {
		if k, ok := ri.Assign.ReduxOps[obj]; ok && k != ir.ReduxNone {
			op = k
			if s := ri.Assign.ReduxSizes[obj]; s != 0 {
				elem = s
			}
			break
		}
	}
	rt.reduxMu.Lock()
	rt.reduxObjs[addr] = reduxObj{addr: addr, size: size, elemSize: elem, op: op}
	rt.reduxMu.Unlock()
}

// deregisterRedux drops the reduction object at addr, if registered.
func (rt *RT) deregisterRedux(addr uint64) {
	rt.reduxMu.Lock()
	delete(rt.reduxObjs, addr)
	rt.reduxMu.Unlock()
}

// reduxSnapshot returns the live reduction objects in address order: one
// consistent, deterministic view per speculative span.
func (rt *RT) reduxSnapshot() []reduxObj {
	rt.reduxMu.Lock()
	out := make([]reduxObj, 0, len(rt.reduxObjs))
	for _, ro := range rt.reduxObjs {
		out = append(out, ro)
	}
	rt.reduxMu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}

// reduxCount returns the number of registered reduction objects (tests).
func (rt *RT) reduxCount() int {
	rt.reduxMu.Lock()
	defer rt.reduxMu.Unlock()
	return len(rt.reduxObjs)
}

// sepRegister records a private- or read-only-heap object at addr when
// some region carries a static proof the runtime acts on: a statically-
// privatized private object (wholesale range install replaces its
// dropped privacy marks) or a proven read-only object (watched by the
// SepAudit oracle, and grounds for skipping the worker-side write
// protection). Re-registering an address replaces the entry.
func (rt *RT) sepRegister(addr uint64, size int64, obj profiling.Object) {
	h := ir.HeapOf(addr)
	if h != ir.HeapPrivate && h != ir.HeapReadOnly {
		return
	}
	used := false
	for _, ri := range rt.regions {
		if ri.Assign.Sep.StaticallyPrivatized(obj) || ri.Assign.Sep.ProvenFor(obj, ir.HeapReadOnly) {
			used = true
			break
		}
	}
	if !used {
		return
	}
	rt.sepMu.Lock()
	rt.sepObjs[addr] = sepObj{obj: obj, addr: addr, size: size}
	rt.sepMu.Unlock()
}

// sepDeregister drops the proven object at addr, if registered.
func (rt *RT) sepDeregister(addr uint64) {
	rt.sepMu.Lock()
	delete(rt.sepObjs, addr)
	rt.sepMu.Unlock()
}

// sepSnapshot returns, for one region, the live statically-privatized
// ranges (whose content installs wholesale per interval) and the proven
// read-only ranges (consumed by the SepAudit oracle), each in address
// order: one consistent view per speculative span.
func (rt *RT) sepSnapshot(ri *RegionInfo) (priv, ro []provenRange) {
	rt.sepMu.Lock()
	for _, so := range rt.sepObjs {
		switch {
		case ir.HeapOf(so.addr) == ir.HeapPrivate && ri.Assign.Sep.StaticallyPrivatized(so.obj):
			priv = append(priv, provenRange{addr: so.addr, size: so.size})
		case ir.HeapOf(so.addr) == ir.HeapReadOnly && ri.Assign.Sep.ProvenFor(so.obj, ir.HeapReadOnly):
			ro = append(ro, provenRange{addr: so.addr, size: so.size})
		}
	}
	rt.sepMu.Unlock()
	sort.Slice(priv, func(i, j int) bool { return priv[i].addr < priv[j].addr })
	sort.Slice(ro, func(i, j int) bool { return ro[i].addr < ro[j].addr })
	return priv, ro
}

// roProtSkippable reports whether worker spaces for ri may skip write-
// protecting the read-only heap: the region has no unresolvable write
// and provably writes no object any region placed in the read-only heap,
// so the protection can never fire. SepAudit keeps the protection
// regardless — the oracle wants the trap as a second witness.
func (rt *RT) roProtSkippable(ri *RegionInfo) bool {
	sep := ri.Assign.Sep
	if rt.Cfg.SepAudit || sep == nil || sep.WritesUnknown {
		return false
	}
	for o := range sep.Writes {
		for _, rj := range rt.regions {
			if rj.Assign.HeapOf(o) == ir.HeapReadOnly {
				return false
			}
		}
	}
	return true
}

// noteSepViolation records one SepAudit oracle violation: counted in
// Stats, detailed (bounded) in SepAuditReport.
func (rt *RT) noteSepViolation(detail string) {
	atomic.AddInt64(&rt.Stats.SepAuditViolations, 1)
	rt.sepViolMu.Lock()
	if len(rt.sepViols) < 64 {
		rt.sepViols = append(rt.sepViols, detail)
	}
	rt.sepViolMu.Unlock()
}

// SepAuditReport returns the detail lines of every SepAudit violation
// observed so far (bounded; Stats.SepAuditViolations has the full count).
func (rt *RT) SepAuditReport() []string {
	rt.sepViolMu.Lock()
	defer rt.sepViolMu.Unlock()
	return append([]string(nil), rt.sepViols...)
}

// checkpointPeriod picks k for an invocation of total iterations.
func (rt *RT) checkpointPeriod(total int64) int64 {
	k := rt.Cfg.CheckpointPeriod
	if k <= 0 {
		k = (total + 4) / 5 // about five checkpoints per invocation
	}
	if k < 1 {
		k = 1
	}
	if k > MaxCheckpointPeriod {
		k = MaxCheckpointPeriod
	}
	return k
}

// maxRecoveries resolves the per-invocation recovery budget.
func (rt *RT) maxRecoveries() int {
	if rt.Cfg.MaxRecoveries == 0 {
		return DefaultMaxRecoveries
	}
	return rt.Cfg.MaxRecoveries
}

// invoke runs one parallel region invocation: args are (lo, hi, live-ins).
func (rt *RT) invoke(ri *RegionInfo, args []uint64) error {
	wallStart := time.Now()
	inv := atomic.AddInt64(&rt.Stats.Invocations, 1) - 1
	// Wall time accounts once, on every exit path: clean completion,
	// misspeculation-loop errors, and the sequential fallback alike.
	defer func() {
		wall := int64(time.Since(wallStart))
		atomic.AddInt64(&rt.Stats.RegionWallNS, wall)
		rt.histRegionWall.Observe(wall)
		// Workers and the committer have joined: the master space is
		// quiescent, so this is a safe point to refresh the page-table
		// snapshot metric scrapes read.
		if rt.Cfg.Metrics != nil {
			pt := rt.master.AS.PageTable()
			rt.ptStats.Store(&pt)
		}
	}()
	tr := rt.Cfg.Trace
	if tr.On() {
		t0 := tr.Now()
		defer func() {
			tr.Emit(obs.Event{Kind: obs.KRegionInvoke, TimeNS: t0, DurNS: tr.Now() - t0,
				Invocation: inv, Worker: -1, Iter: -1, A: int64(args[0]), B: int64(args[1])})
		}()
		rt.master.AS.TraceInv = inv
	}
	lo, hi := int64(args[0]), int64(args[1])
	live := args[2:]
	if hi <= lo {
		return nil
	}
	k := rt.checkpointPeriod(hi - lo)

	// The recovery budget is per invocation: a misspeculation-heavy region
	// entry falls back to sequential execution for its own remainder
	// without poisoning later invocations.
	maxRec := rt.maxRecoveries()
	recoveries := 0
	start := lo
	for start < hi {
		if maxRec > 0 && recoveries >= maxRec {
			atomic.AddInt64(&rt.Stats.SequentialFallbacks, 1)
			tr.Instant(obs.Event{Kind: obs.KSeqFallback,
				Invocation: inv, Worker: -1, Iter: -1, A: start, B: hi})
			break
		}
		span := &spanState{
			rt: rt, ri: ri, live: live,
			start: start, hi: hi, k: k,
			misspecIter: -1,
			inv:         inv,
			redux:       rt.reduxSnapshot(),
			roProtSkip:  rt.roProtSkippable(ri),
		}
		span.proven, span.provenRO = rt.sepSnapshot(ri)
		tr.Instant(obs.Event{Kind: obs.KSpanStart,
			Invocation: inv, Worker: -1, Iter: -1, A: start, B: k})
		lastValid, misspecAt, err := span.run()
		tr.Instant(obs.Event{Kind: obs.KSpanEnd,
			Invocation: inv, Worker: -1, Iter: -1, A: misspecAt, B: start})
		if err != nil {
			return err
		}
		if misspecAt < 0 {
			// Clean completion: install the final checkpoint. A pipelined
			// span (span.installed) has already installed and committed
			// everything from its background committer.
			joinStart := time.Now()
			if lastValid != nil && !span.installed {
				if err := rt.installCheckpoint(lastValid, span.redux, inv); err != nil {
					return err
				}
			}
			atomic.AddInt64(&rt.Stats.JoinNS, int64(time.Since(joinStart)))
			return nil
		}
		// Misspeculation: recover.
		recoveries++
		atomic.AddInt64(&rt.Stats.Recoveries, 1)
		if lastValid != nil && !span.installed {
			if err := rt.installCheckpoint(lastValid, span.redux, inv); err != nil {
				return err
			}
		}
		redoFrom := start
		if lastValid != nil {
			redoFrom = lastValid.limit
		}
		tr.Instant(obs.Event{Kind: obs.KPhase,
			Invocation: inv, Worker: -1, Iter: -1, Cause: "recover"})
		recStart := tr.Now()
		if err := rt.sequentialRange(ri, redoFrom, misspecAt+1, live); err != nil {
			return err
		}
		if tr.On() {
			tr.Emit(obs.Event{Kind: obs.KRecovery, TimeNS: recStart, DurNS: tr.Now() - recStart,
				Invocation: inv, Worker: -1, Iter: -1, A: redoFrom, B: misspecAt + 1})
		}
		start = misspecAt + 1
		if rt.Cfg.AdaptivePeriod && k > 1 {
			k /= 2
		}
	}
	// Fallback: run the remainder sequentially, checks disabled.
	if start < hi {
		if err := rt.sequentialRange(ri, start, hi, live); err != nil {
			return err
		}
	}
	return nil
}

// installCheckpoint applies cp's chain to the master state, accounts the
// simulated cost, and commits the chain's deferred output.
func (rt *RT) installCheckpoint(cp *checkpoint, redux []reduxObj, inv int64) error {
	tr := rt.Cfg.Trace
	t0 := tr.Now()
	bytes, err := cp.installInto(rt.master.AS, redux)
	if err != nil {
		return err
	}
	rt.histInstall.Observe(bytes)
	cost := bytes * SimInstallPerByte
	atomic.AddInt64(&rt.Sim.RegionTime, cost)
	atomic.AddInt64(&rt.Sim.CheckpointCost, cost)
	if tr.On() {
		tr.Emit(obs.Event{Kind: obs.KInstall, TimeNS: t0, DurNS: tr.Now() - t0,
			Invocation: inv, Worker: -1, Iter: cp.id, A: bytes})
	}
	rt.commitChain(cp, inv)
	return nil
}

// commitOne commits one checkpoint's deferred output in iteration order and
// marks it committed, all under outMu (see the locking discipline note),
// returning the number of records. Both the synchronous chain commit and
// the pipelined committer route through it.
func (rt *RT) commitOne(c *checkpoint) int64 {
	recs := c.sortedIO()
	rt.outMu.Lock()
	for _, rec := range recs {
		rt.out.WriteString(rec.text)
	}
	c.committed = true
	rt.outMu.Unlock()
	cost := int64(len(recs)) * SimCommitPerIO
	atomic.AddInt64(&rt.Sim.RegionTime, cost)
	atomic.AddInt64(&rt.Sim.CheckpointCost, cost)
	return int64(len(recs))
}

// commitChain commits every uncommitted checkpoint up to cp, emitting
// deferred output in order (the synchronous commit path; the pipelined
// committer instead calls commitOne per interval as each quiesces).
func (rt *RT) commitChain(cp *checkpoint, inv int64) {
	tr := rt.Cfg.Trace
	var chain []*checkpoint
	for c := cp; c != nil; c = c.prev {
		if c.committed {
			break
		}
		chain = append(chain, c)
	}
	t0 := tr.Now()
	var committed int64
	for i := len(chain) - 1; i >= 0; i-- {
		committed += rt.commitOne(chain[i])
	}
	if len(chain) > 0 && tr.On() {
		tr.Emit(obs.Event{Kind: obs.KCommit, TimeNS: t0, DurNS: tr.Now() - t0,
			Invocation: inv, Worker: -1, Iter: cp.id, A: committed})
	}
}

// installRedux folds cp's cumulative reduction contributions into the
// master state: the per-span final step of the pipelined path, whose data
// pages and output were already installed interval by interval. It accounts
// the same simulated cost and emits the same KInstall event the synchronous
// whole-chain install attributes to its reduction bytes.
func (rt *RT) installRedux(cp *checkpoint, redux []reduxObj, inv int64) error {
	tr := rt.Cfg.Trace
	t0 := tr.Now()
	bytes, err := cp.installReduxInto(rt.master.AS, redux)
	if err != nil {
		return err
	}
	rt.histInstall.Observe(bytes)
	cost := bytes * SimInstallPerByte
	atomic.AddInt64(&rt.Sim.RegionTime, cost)
	atomic.AddInt64(&rt.Sim.CheckpointCost, cost)
	if tr.On() {
		tr.Emit(obs.Event{Kind: obs.KInstall, TimeNS: t0, DurNS: tr.Now() - t0,
			Invocation: inv, Worker: -1, Iter: cp.id, A: bytes})
	}
	return nil
}

// validateShards resolves Config.ValidateShards (see its doc comment).
func (rt *RT) validateShards() int {
	s := rt.Cfg.ValidateShards
	if s == 0 {
		s = runtime.GOMAXPROCS(0)
		if s > 8 {
			s = 8
		}
	}
	if s < 1 {
		s = 1
	}
	return s
}

// sequentialRange executes iterations [from, to) non-speculatively on the
// master state with every check disabled — the recovery path, and the
// fallback mode.
func (rt *RT) sequentialRange(ri *RegionInfo, from, to int64, live []uint64) error {
	if from >= to {
		return nil
	}
	it := interp.NewShared(rt.master.Program(), rt.master.AS)
	it.AdoptLayout(rt.master.GlobalLayout())
	it.Prof = rt.Cfg.OpProf
	if rt.Cfg.StepLimit > 0 {
		it.StepLimit = rt.Cfg.StepLimit
	}
	it.Hooks.OnPrint = func(in *ir.Instr, text string) bool {
		rt.writeOut(text)
		return true
	}
	// Recovery mutates master state directly, so the redux registry must
	// track allocations and frees it performs.
	it.Hooks.OnAlloc = rt.onAlloc
	it.Hooks.OnFree = rt.onFree
	noop := func(in *ir.Instr, addr uint64, size int64) error { return nil }
	it.Hooks.PrivateRead = noop
	it.Hooks.PrivateWrite = noop
	it.Hooks.ReduxWrite = noop
	it.Hooks.CheckHeap = func(in *ir.Instr, addr uint64) error { return nil }
	it.Hooks.Predict = func(in *ir.Instr, actual, expected uint64) error { return nil }
	it.Hooks.Misspec = func(in *ir.Instr) error { return nil }
	callArgs := make([]uint64, 1+len(live))
	copy(callArgs[1:], live)
	for i := from; i < to; i++ {
		callArgs[0] = uint64(i)
		if _, err := it.Call(ri.Outline.IterFn, callArgs...); err != nil {
			return fmt.Errorf("sequential recovery at iteration %d: %w", i, err)
		}
	}
	atomic.AddInt64(&rt.Sim.RecoverySteps, it.Steps)
	return nil
}

// inject reports whether iteration i should misspeculate artificially.
func (rt *RT) inject(i int64) bool {
	if rt.Cfg.MisspecRate <= 0 {
		return false
	}
	// splitmix64 over (seed, i) for a deterministic, uniform draw.
	x := rt.Cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < rt.Cfg.MisspecRate
}
