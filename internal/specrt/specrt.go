package specrt

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/classify"
	"privateer/internal/deps"
	"privateer/internal/doall"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/profiling"
	"privateer/internal/transform"
	"privateer/internal/vm"
)

// Config controls a speculative run.
type Config struct {
	// Workers is the number of worker processes.
	Workers int
	// CheckpointPeriod is the iteration count per checkpoint; 0 selects
	// automatically (about five checkpoints per invocation, capped at the
	// paper's 253-iteration metadata limit).
	CheckpointPeriod int64
	// AdaptivePeriod shrinks the checkpoint period after each recovery
	// within an invocation (halving it, floor 1), trading validation
	// overhead for less discarded work when misspeculation turns out to
	// be frequent — an extension of the paper's fixed-period policy
	// (section 5.2 discusses exactly this tension).
	AdaptivePeriod bool
	// MisspecRate injects artificial misspeculation at the given
	// per-iteration probability (Figure 9). Zero disables injection.
	MisspecRate float64
	// Seed makes injection deterministic.
	Seed uint64
	// StepLimit bounds each worker's interpreter (0 = default).
	StepLimit int64
}

// RegionInfo bundles the compiler artifacts for one parallel region.
type RegionInfo struct {
	// Outline is the DOALL outline (region/iter functions).
	Outline *doall.Region
	// Assign is the heap assignment.
	Assign *classify.Assignment
	// Plan is the speculation plan.
	Plan *deps.Plan
	// TStats is the transformation summary.
	TStats *transform.Stats
}

// Stats aggregates runtime events across all invocations, feeding Table 3
// and Figure 8.
type Stats struct {
	// Invocations counts parallel-region entries.
	Invocations int64
	// Checkpoints counts checkpoint objects constructed.
	Checkpoints int64
	// Misspecs counts detected misspeculations (including injected).
	Misspecs int64
	// Recoveries counts sequential recovery episodes.
	Recoveries int64
	// SequentialFallbacks counts invocations abandoned to pure sequential
	// execution after repeated misspeculation.
	SequentialFallbacks int64
	// PrivReadBytes and PrivWriteBytes total privacy-checked volume
	// (Table 3's "Priv R"/"Priv W").
	PrivReadBytes  int64
	PrivWriteBytes int64
	// PrivReadChecks and PrivWriteChecks count dynamic privacy checks.
	PrivReadChecks  int64
	PrivWriteChecks int64
	// SeparationChecks counts dynamic check_heap executions.
	SeparationChecks int64
	// Predictions counts dynamic value-prediction checks.
	Predictions int64
	// DeferredIO counts buffered output operations.
	DeferredIO int64
	// Timing (nanoseconds, atomically accumulated).
	SpawnNS      int64
	JoinNS       int64
	CheckpointNS int64
	PrivReadNS   int64
	PrivWriteNS  int64
	WorkerBusyNS int64
	RegionWallNS int64
}

// RT is the runtime: it executes a transformed module, intercepting
// parallel-region calls and running them speculatively in parallel.
type RT struct {
	// Cfg is the run configuration.
	Cfg Config
	// Mod is the transformed module.
	Mod *ir.Module
	// Stats accumulates runtime events.
	Stats Stats
	// Sim accumulates simulated-time accounting (see sim.go).
	Sim SimStats

	regions map[*ir.Function]*RegionInfo
	out     strings.Builder
	master  *interp.Interp

	reduxMu   sync.Mutex
	reduxObjs []reduxObj
}

// New prepares a runtime for mod with the given regions.
func New(mod *ir.Module, cfg Config, regions ...*RegionInfo) *RT {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	rt := &RT{Cfg: cfg, Mod: mod, regions: map[*ir.Function]*RegionInfo{}}
	for _, r := range regions {
		rt.regions[r.Outline.RegionFn] = r
	}
	return rt
}

// Output returns everything the program printed, with deferred region
// output committed in order.
func (rt *RT) Output() string { return rt.out.String() }

// Master exposes the main process interpreter (after Run).
func (rt *RT) Master() *interp.Interp { return rt.master }

// Run executes the program from its entry function.
func (rt *RT) Run(args ...uint64) (uint64, error) {
	master := interp.New(rt.Mod, vm.NewAddressSpace())
	if rt.Cfg.StepLimit > 0 {
		master.StepLimit = rt.Cfg.StepLimit
	}
	rt.master = master
	master.Hooks.OnPrint = func(in *ir.Instr, text string) bool {
		rt.out.WriteString(text)
		return true
	}
	// Track reduction objects allocated dynamically into the redux heap so
	// worker heaps can be initialized to identity and merged.
	master.Hooks.OnAlloc = func(fr *interp.Frame, in *ir.Instr, addr, size uint64) {
		if ir.HeapOf(addr) == ir.HeapRedux && in != nil {
			rt.registerRedux(addr, int64(size), profiling.Object{Site: in})
		}
	}
	master.Hooks.CallOverride = func(fr *interp.Frame, in *ir.Instr, callee *ir.Function, args []uint64) (uint64, bool, error) {
		ri := rt.regions[callee]
		if ri == nil {
			return 0, false, nil
		}
		return 0, true, rt.invoke(ri, args)
	}
	if err := master.LayOutGlobals(); err != nil {
		return 0, err
	}
	defer func() { rt.Sim.SeqSteps = master.Steps }()
	// Register global reduction objects.
	for _, name := range rt.Mod.GlobalNames() {
		g := rt.Mod.Globals[name]
		if g.Heap == ir.HeapRedux {
			rt.registerRedux(master.GlobalAddr(g), g.Size, profiling.Object{Global: g})
		}
	}
	return master.Run(args...)
}

// registerRedux records a reduction object's operator and element size from
// whichever region's assignment classified it.
func (rt *RT) registerRedux(addr uint64, size int64, obj profiling.Object) {
	op := ir.ReduxAddI64
	elem := int64(8)
	for _, ri := range rt.regions {
		if k, ok := ri.Assign.ReduxOps[obj]; ok && k != ir.ReduxNone {
			op = k
			if s := ri.Assign.ReduxSizes[obj]; s != 0 {
				elem = s
			}
			break
		}
	}
	rt.reduxMu.Lock()
	defer rt.reduxMu.Unlock()
	for _, ro := range rt.reduxObjs {
		if ro.addr == addr {
			return
		}
	}
	rt.reduxObjs = append(rt.reduxObjs, reduxObj{addr: addr, size: size, elemSize: elem, op: op})
}

// checkpointPeriod picks k for an invocation of total iterations.
func (rt *RT) checkpointPeriod(total int64) int64 {
	k := rt.Cfg.CheckpointPeriod
	if k <= 0 {
		k = (total + 4) / 5 // about five checkpoints per invocation
	}
	if k < 1 {
		k = 1
	}
	if k > MaxCheckpointPeriod {
		k = MaxCheckpointPeriod
	}
	return k
}

// invoke runs one parallel region invocation: args are (lo, hi, live-ins).
func (rt *RT) invoke(ri *RegionInfo, args []uint64) error {
	wallStart := time.Now()
	atomic.AddInt64(&rt.Stats.Invocations, 1)
	lo, hi := int64(args[0]), int64(args[1])
	live := args[2:]
	if hi <= lo {
		return nil
	}
	k := rt.checkpointPeriod(hi - lo)

	const maxRecoveries = 1 << 20 // every recovery makes forward progress
	start := lo
	for start < hi {
		span := &spanState{
			rt: rt, ri: ri, live: live,
			start: start, hi: hi, k: k,
			misspecIter: -1,
		}
		lastValid, misspecAt, err := span.run()
		if err != nil {
			return err
		}
		if misspecAt < 0 {
			// Clean completion: install the final checkpoint.
			joinStart := time.Now()
			if lastValid != nil {
				bytes, err := lastValid.installInto(rt.master.AS, rt.reduxObjs)
				if err != nil {
					return err
				}
				cost := bytes * SimInstallPerByte
				atomic.AddInt64(&rt.Sim.RegionTime, cost)
				atomic.AddInt64(&rt.Sim.CheckpointCost, cost)
				rt.commitChain(lastValid)
			}
			atomic.AddInt64(&rt.Stats.JoinNS, int64(time.Since(joinStart)))
			atomic.AddInt64(&rt.Stats.RegionWallNS, int64(time.Since(wallStart)))
			return nil
		}
		// Misspeculation: recover.
		atomic.AddInt64(&rt.Stats.Recoveries, 1)
		if lastValid != nil {
			bytes, err := lastValid.installInto(rt.master.AS, rt.reduxObjs)
			if err != nil {
				return err
			}
			cost := bytes * SimInstallPerByte
			atomic.AddInt64(&rt.Sim.RegionTime, cost)
			atomic.AddInt64(&rt.Sim.CheckpointCost, cost)
			rt.commitChain(lastValid)
		}
		redoFrom := start
		if lastValid != nil {
			redoFrom = lastValid.limit
		}
		if err := rt.sequentialRange(ri, redoFrom, misspecAt+1, live); err != nil {
			return err
		}
		start = misspecAt + 1
		if rt.Cfg.AdaptivePeriod && k > 1 {
			k /= 2
		}
		if rt.Stats.Recoveries > maxRecoveries {
			atomic.AddInt64(&rt.Stats.SequentialFallbacks, 1)
			break
		}
	}
	// Single worker or fallback: run the remainder sequentially.
	if start < hi {
		if err := rt.sequentialRange(ri, start, hi, live); err != nil {
			return err
		}
	}
	atomic.AddInt64(&rt.Stats.RegionWallNS, int64(time.Since(wallStart)))
	return nil
}

// commitChain commits every uncommitted checkpoint up to cp, emitting
// deferred output in order.
func (rt *RT) commitChain(cp *checkpoint) {
	var chain []*checkpoint
	for c := cp; c != nil; c = c.prev {
		if c.committed {
			break
		}
		chain = append(chain, c)
	}
	for i := len(chain) - 1; i >= 0; i-- {
		c := chain[i]
		recs := c.sortedIO()
		for _, rec := range recs {
			rt.out.WriteString(rec.text)
		}
		cost := int64(len(recs)) * SimCommitPerIO
		atomic.AddInt64(&rt.Sim.RegionTime, cost)
		atomic.AddInt64(&rt.Sim.CheckpointCost, cost)
		c.committed = true
	}
}

// sequentialRange executes iterations [from, to) non-speculatively on the
// master state with every check disabled — the recovery path, and the
// single-worker mode.
func (rt *RT) sequentialRange(ri *RegionInfo, from, to int64, live []uint64) error {
	if from >= to {
		return nil
	}
	it := interp.NewShared(rt.master.Program(), rt.master.AS)
	it.AdoptLayout(rt.master.GlobalLayout())
	if rt.Cfg.StepLimit > 0 {
		it.StepLimit = rt.Cfg.StepLimit
	}
	it.Hooks.OnPrint = func(in *ir.Instr, text string) bool {
		rt.out.WriteString(text)
		return true
	}
	noop := func(in *ir.Instr, addr uint64, size int64) error { return nil }
	it.Hooks.PrivateRead = noop
	it.Hooks.PrivateWrite = noop
	it.Hooks.ReduxWrite = noop
	it.Hooks.CheckHeap = func(in *ir.Instr, addr uint64) error { return nil }
	it.Hooks.Predict = func(in *ir.Instr, actual, expected uint64) error { return nil }
	it.Hooks.Misspec = func(in *ir.Instr) error { return nil }
	callArgs := make([]uint64, 1+len(live))
	copy(callArgs[1:], live)
	for i := from; i < to; i++ {
		callArgs[0] = uint64(i)
		if _, err := it.Call(ri.Outline.IterFn, callArgs...); err != nil {
			return fmt.Errorf("sequential recovery at iteration %d: %w", i, err)
		}
	}
	atomic.AddInt64(&rt.Sim.RecoverySteps, it.Steps)
	return nil
}

// inject reports whether iteration i should misspeculate artificially.
func (rt *RT) inject(i int64) bool {
	if rt.Cfg.MisspecRate <= 0 {
		return false
	}
	// splitmix64 over (seed, i) for a deterministic, uniform draw.
	x := rt.Cfg.Seed ^ uint64(i)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11)/float64(1<<53) < rt.Cfg.MisspecRate
}
