package specrt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/vm"
)

// spanState coordinates one parallel execution span: from a start iteration
// to completion or to the first misspeculation (Figure 5 of the paper).
type spanState struct {
	rt   *RT
	ri   *RegionInfo
	live []uint64
	// start and hi bound the span's iterations; k is the checkpoint period.
	start, hi, k int64
	// inv is the enclosing region invocation's sequence number.
	inv int64
	// redux is the registry snapshot the span works against: one consistent,
	// address-ordered view shared by worker init, checkpoint merges and
	// install, immune to concurrent registry changes.
	redux []reduxObj
	// proven is the span's snapshot of statically-privatized ranges: their
	// accesses carry no shadow marks, so each interval's final content is
	// captured wholesale from the worker that ran the interval's last
	// iteration and installed like data pages. provenRO is the snapshot of
	// proven read-only ranges, consumed by the SepAudit oracle.
	proven   []provenRange
	provenRO []provenRange
	// roProtSkip drops the worker-side write protection of the read-only
	// heap: the region statically cannot write it (see roProtSkippable).
	roProtSkip bool

	mu          sync.Mutex
	checkpoints []*checkpoint

	// committer is the background validate/install/commit stage when
	// Config.Pipeline is set (nil in synchronous mode).
	committer *committer
	// installed marks that the span's own pipeline already installed and
	// committed its valid prefix, so invoke must not install again.
	installed bool

	// misspecIter is the earliest misspeculated iteration (-1 = none);
	// guarded by flagMu for the atomic-min update.
	flagMu      sync.Mutex
	flagged     atomic.Bool
	misspecIter int64
}

// flag records a misspeculation at iteration i by worker wid, keeping the
// earliest. addr is the faulting address when the violation concerns a
// specific memory location (0 otherwise); it feeds per-site attribution.
func (sp *spanState) flag(i int64, wid int, cause, site string, addr uint64) {
	sp.flagMu.Lock()
	if sp.misspecIter < 0 || i < sp.misspecIter {
		sp.misspecIter = i
	}
	sp.flagMu.Unlock()
	sp.flagged.Store(true)
	atomic.AddInt64(&sp.rt.Stats.Misspecs, 1)
	sp.rt.noteMisspec(sp.ri.Outline.RegionFn.Name, cause, site, addr)
	sp.rt.Cfg.Trace.Instant(obs.Event{Kind: obs.KMisspec,
		Invocation: sp.inv, Worker: wid, Iter: i, Cause: cause, Site: site,
		A: int64(addr)})
	// Wake the committer so it re-evaluates its wait condition (flagMu is
	// already released: flag never holds flagMu and the committer's mutex
	// together).
	if sp.committer != nil {
		sp.committer.wake()
	}
}

// misspecInterval returns the interval id of the earliest misspeculation,
// or -1.
func (sp *spanState) misspecInterval() int64 {
	sp.flagMu.Lock()
	defer sp.flagMu.Unlock()
	if sp.misspecIter < 0 {
		return -1
	}
	return (sp.misspecIter - sp.start) / sp.k
}

// checkpointFor returns the checkpoint object for interval c, creating the
// chain lazily. The first worker to reach an interval allocates its object.
func (sp *spanState) checkpointFor(c int64) *checkpoint {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for int64(len(sp.checkpoints)) <= c {
		id := int64(len(sp.checkpoints))
		var prev *checkpoint
		if id > 0 {
			prev = sp.checkpoints[id-1]
		}
		base := sp.start + id*sp.k
		limit := base + sp.k
		if limit > sp.hi {
			limit = sp.hi
		}
		sp.checkpoints = append(sp.checkpoints, newCheckpoint(id, base, limit, prev))
		atomic.AddInt64(&sp.rt.Stats.Checkpoints, 1)
		sp.rt.Cfg.Trace.Instant(obs.Event{Kind: obs.KCheckpoint,
			Invocation: sp.inv, Worker: -1, Iter: id, A: base, B: limit})
	}
	return sp.checkpoints[c]
}

// validate runs the second-phase cross-interval chain validation over the
// checkpoints up to last, with tracing. The scan is sharded by shadow-page
// range (Config.ValidateShards); the verdict is shard-count independent. It
// returns the first violating interval id (-1 = clean) and the faulting
// private-heap address (0 when clean).
func (sp *spanState) validate(last *checkpoint) (int64, uint64) {
	tr := sp.rt.Cfg.Trace
	t0 := tr.Now()
	c, addr := last.crossValidateShardedAddr(sp.rt.validateShards())
	if tr.On() {
		tr.Emit(obs.Event{Kind: obs.KValidate, TimeNS: t0, DurNS: tr.Now() - t0,
			Invocation: sp.inv, Worker: -1, Iter: last.id, A: c})
	}
	return c, addr
}

// run executes the span. It returns the last fully valid checkpoint (nil if
// none completed), the earliest misspeculated iteration (-1 for a clean
// finish), and any hard error.
func (sp *spanState) run() (*checkpoint, int64, error) {
	rt := sp.rt
	// Live pipeline depth is meaningful only while this span runs.
	defer rt.resetIntervalDepth()
	tr := rt.Cfg.Trace
	workers := rt.Cfg.Workers
	if total := sp.hi - sp.start; int64(workers) > total {
		workers = int(total)
	}
	nIntervals := (sp.hi - sp.start + sp.k - 1) / sp.k
	tr.Instant(obs.Event{Kind: obs.KPhase,
		Invocation: sp.inv, Worker: -1, Iter: -1, Cause: "fast"})
	spawnStart := time.Now()
	warm0 := atomic.LoadInt64(&rt.Stats.WarmSpawns)
	trSpawn := tr.Now()
	ws := make([]*worker, workers)
	for w := 0; w < workers; w++ {
		wk, err := newWorker(sp, w, workers)
		if err != nil {
			return nil, -1, err
		}
		ws[w] = wk
		tr.Instant(obs.Event{Kind: obs.KWorkerSpawn,
			Invocation: sp.inv, Worker: w, Iter: -1})
	}
	atomic.AddInt64(&rt.Stats.SpawnNS, int64(time.Since(spawnStart)))
	if tr.On() {
		// One fleet-level spawn span on the runtime lane, attributing the
		// whole privatization step and how much of it the warmed pool
		// satisfied; the per-worker instants above fall inside it.
		warm := atomic.LoadInt64(&rt.Stats.WarmSpawns) - warm0
		cause := "cold"
		switch {
		case workers > 0 && warm == int64(workers):
			cause = "warm"
		case warm > 0:
			cause = "mixed"
		}
		tr.Emit(obs.Event{Kind: obs.KSpawn, TimeNS: trSpawn, DurNS: tr.Now() - trSpawn,
			Invocation: sp.inv, Worker: -1, Iter: -1, A: warm, B: int64(workers), Cause: cause})
	}

	// Pipelined mode: start the background committer before the workers, so
	// interval 0 can validate and commit the moment it quiesces.
	if rt.Cfg.Pipeline {
		sp.committer = newCommitter(sp, workers, nIntervals)
		go sp.committer.run()
	}

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			t0 := tr.Now()
			errs[w] = ws[w].run()
			if tr.On() {
				tr.Emit(obs.Event{Kind: obs.KWorkerJoin, TimeNS: t0, DurNS: tr.Now() - t0,
					Invocation: sp.inv, Worker: w, Iter: -1})
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if co := sp.committer; co != nil {
				co.cancel()
				<-co.done
			}
			return nil, -1, err
		}
	}

	// Simulated-time accounting: the span costs its spawn plus the slowest
	// worker, and consumes capacity on every worker for its whole duration.
	spawn := int64(workers) * SimSpawnPerWorker
	join := int64(workers) * SimJoinPerWorker
	var maxW int64
	sim := &rt.Sim
	for _, w := range ws {
		t := w.simTime()
		if t > maxW {
			maxW = t
		}
		atomic.AddInt64(&sim.UsefulSteps, w.it.Steps)
		atomic.AddInt64(&sim.PrivReadCost, w.simPrivRead)
		atomic.AddInt64(&sim.PrivWriteCost, w.simPrivWrite)
		atomic.AddInt64(&sim.CheckpointCost, w.simCheckpoint)
		atomic.AddInt64(&sim.OtherCheckCost, w.simOther)
	}
	spanTime := spawn + maxW + join
	atomic.AddInt64(&sim.RegionTime, spanTime)
	atomic.AddInt64(&sim.RegionCapacity, int64(workers)*spanTime)
	atomic.AddInt64(&sim.SpawnCost, spawn+join)

	// Warmed-space recycling: every checkpoint contribution copied state
	// out of the worker spaces (addWorkerState owns its pages and buffers;
	// nothing downstream retains a worker-space reference), so once the
	// fleet has joined the machinery can park in the pool for the next
	// span's spawns.
	if pool := rt.Cfg.Pool; pool != nil {
		prog := rt.master.Program()
		for _, w := range ws {
			pool.put(prog, &warmSlot{as: w.as, it: w.it})
		}
	}

	tr.Instant(obs.Event{Kind: obs.KPhase,
		Invocation: sp.inv, Worker: -1, Iter: -1, Cause: "validate"})
	if co := sp.committer; co != nil {
		return sp.finishPipelined(co)
	}
	return sp.finishSync(nIntervals)
}

// finishSync is the barrier-model span finish: the span has fully quiesced,
// and the master now chain-validates every checkpoint on its critical path
// (install and commit follow in invoke). Validation time accrues to
// Stats.JoinNS.
func (sp *spanState) finishSync(nIntervals int64) (*checkpoint, int64, error) {
	rt := sp.rt
	tr := rt.Cfg.Trace
	joinStart := time.Now()
	defer func() {
		atomic.AddInt64(&rt.Stats.JoinNS, int64(time.Since(joinStart)))
	}()
	if !sp.flagged.Load() {
		last := sp.checkpointFor(nIntervals - 1)
		// Second-phase cross-interval privacy validation over the whole
		// chain (the span has quiesced, so every contribution is in).
		if c, addr := sp.validate(last); c >= 0 {
			atomic.AddInt64(&rt.Stats.Misspecs, 1)
			rt.noteMisspec(sp.ri.Outline.RegionFn.Name,
				"privacy violated (cross-interval)", "", addr)
			tr.Instant(obs.Event{Kind: obs.KMisspec, Invocation: sp.inv,
				Worker: -1, Iter: sp.checkpointFor(c).limit - 1,
				Cause: "privacy violated (cross-interval)", A: int64(addr)})
			lv, at := sp.resolveMisspec(c, sp.checkpointFor(c).limit-1)
			return lv, at, nil
		}
		return last, -1, nil
	}
	mi := sp.misspecInterval()
	sp.flagMu.Lock()
	iter := sp.misspecIter
	sp.flagMu.Unlock()
	// The valid prefix may itself hide a cross-interval violation; take
	// the earliest.
	if mi > 0 {
		if c, addr := sp.validate(sp.checkpointFor(mi - 1)); c >= 0 && c < mi {
			atomic.AddInt64(&rt.Stats.Misspecs, 1)
			rt.noteMisspec(sp.ri.Outline.RegionFn.Name,
				"privacy violated (cross-interval)", "", addr)
			tr.Instant(obs.Event{Kind: obs.KMisspec, Invocation: sp.inv,
				Worker: -1, Iter: sp.checkpointFor(c).limit - 1,
				Cause: "privacy violated (cross-interval)", A: int64(addr)})
			lv, at := sp.resolveMisspec(c, sp.checkpointFor(c).limit-1)
			return lv, at, nil
		}
	}
	lv, at := sp.resolveMisspec(mi, iter)
	return lv, at, nil
}

// finishPipelined drains the background committer. Most of the validate/
// install/commit work already happened while workers executed; only this
// drain — the tail intervals still in flight plus the single end-of-span
// reduction fold — sits on the master's critical path and accrues to
// Stats.JoinNS. The committer has eagerly chain-validated every installed
// interval, so no prefix re-validation is needed here: a cross-interval
// violation anywhere in the prefix already flagged the span with the
// earliest violating iteration.
func (sp *spanState) finishPipelined(co *committer) (*checkpoint, int64, error) {
	rt := sp.rt
	joinStart := time.Now()
	defer func() {
		atomic.AddInt64(&rt.Stats.JoinNS, int64(time.Since(joinStart)))
	}()
	co.finishWorkers()
	<-co.done
	if co.err != nil {
		return nil, -1, co.err
	}
	last := co.lastInstalled
	// Reductions fold exactly once per span, from the last installed
	// checkpoint, in worker-id order (contributions are cumulative).
	if last != nil {
		if err := rt.installRedux(last, sp.redux, sp.inv); err != nil {
			return nil, -1, err
		}
	}
	// Data pages and deferred output are already installed and committed
	// interval by interval; tell invoke not to install again.
	sp.installed = true
	if !sp.flagged.Load() {
		return last, -1, nil
	}
	sp.flagMu.Lock()
	iter := sp.misspecIter
	sp.flagMu.Unlock()
	return last, iter, nil
}

// resolveMisspec returns the last valid checkpoint before interval mi and
// the iteration recovery must re-execute through.
func (sp *spanState) resolveMisspec(mi, iter int64) (*checkpoint, int64) {
	var lastValid *checkpoint
	if mi > 0 {
		lastValid = sp.checkpointFor(mi - 1)
	}
	return lastValid, iter
}

// worker is one speculative worker process.
type worker struct {
	sp      *spanState
	id      int
	stride  int
	as      *vm.AddressSpace
	it      *interp.Interp
	curIter int64
	curTS   byte
	io      []ioRec

	shortBaseline int

	// SepAudit oracle state: the byte addresses of statically-privatized
	// ranges the current iteration has written so far (auditIter tells
	// which iteration the set reflects; it resets lazily on change).
	auditWr   map[uint64]bool
	auditIter int64

	// Simulated-time accounting (see sim.go).
	simPrivRead   int64
	simPrivWrite  int64
	simCheckpoint int64
	simOther      int64
}

// simTime returns the worker's total simulated busy time.
func (w *worker) simTime() int64 {
	return w.it.Steps + w.simPrivRead + w.simPrivWrite + w.simCheckpoint + w.simOther
}

func newWorker(sp *spanState, id, stride int) (*worker, error) {
	rt := sp.rt
	w := &worker{sp: sp, id: id, stride: stride}
	// Workers share the master's Stats so fork-style page-copy counts
	// aggregate across the fleet (Figure 8 accounting). A warmed spawn
	// re-clones a pooled address space over this master in place and
	// recycles its interpreter — same semantics as the cold path below,
	// minus the per-spawn allocation of TLB arrays, heap states and maps.
	if pool := rt.Cfg.Pool; pool != nil {
		if slot := pool.get(rt.master.Program()); slot != nil {
			slot.as.RecloneFrom(rt.master.AS)
			slot.it.Recycle(slot.as)
			w.as, w.it = slot.as, slot.it
			atomic.AddInt64(&rt.Stats.WarmSpawns, 1)
		}
	}
	if w.as == nil {
		w.as = rt.master.AS.CloneSharingStats()
		// Sharing the master's decoded program means each region function
		// is pre-decoded once per run, not once per worker per span.
		w.it = interp.NewShared(rt.master.Program(), w.as)
	}
	w.it.SetTrace(rt.Cfg.Trace, id, sp.inv)
	// Workers see the read-only heap as truly read-only, and the
	// reduction heap starts at the operator's identity. A failure here
	// means the worker would speculate from a corrupt base state — that is
	// a hard error, not something to discover later as a bogus result.
	// When the prover showed the region cannot write that heap at all,
	// the protection is dead weight and is skipped (audit mode keeps it).
	if !sp.roProtSkip {
		w.as.SetProt(ir.HeapReadOnly, vm.ProtRead)
	}
	for _, ro := range sp.redux {
		ident, err := Identity(ro.op, ro.elemSize)
		if err != nil {
			return nil, fmt.Errorf("specrt: worker %d: redux %#x identity: %w", id, ro.addr, err)
		}
		for off := int64(0); off < ro.size; off += ro.elemSize {
			if err := w.as.WriteBytes(ro.addr+uint64(off), ident); err != nil {
				return nil, fmt.Errorf("specrt: worker %d: redux %#x init: %w", id, ro.addr, err)
			}
		}
	}
	w.it.AdoptLayout(rt.master.GlobalLayout())
	w.it.Prof = rt.Cfg.OpProf
	if rt.Cfg.StepLimit > 0 {
		w.it.StepLimit = rt.Cfg.StepLimit
	}
	w.shortBaseline = w.as.LiveObjects(ir.HeapShortLived)
	w.installHooks()
	return w, nil
}

func (w *worker) installHooks() {
	rt := w.sp.rt
	h := &w.it.Hooks
	h.PrivateRead = func(in *ir.Instr, addr uint64, size int64) error {
		t0 := time.Now()
		err := w.privAccess(addr, size, false)
		w.simPrivRead += size * SimPrivacyPerByte
		atomic.AddInt64(&rt.Stats.PrivReadNS, int64(time.Since(t0)))
		atomic.AddInt64(&rt.Stats.PrivReadBytes, size)
		atomic.AddInt64(&rt.Stats.PrivReadChecks, 1)
		return err
	}
	h.PrivateWrite = func(in *ir.Instr, addr uint64, size int64) error {
		t0 := time.Now()
		err := w.privAccess(addr, size, true)
		w.simPrivWrite += size * SimPrivacyPerByte
		atomic.AddInt64(&rt.Stats.PrivWriteNS, int64(time.Since(t0)))
		atomic.AddInt64(&rt.Stats.PrivWriteBytes, size)
		atomic.AddInt64(&rt.Stats.PrivWriteChecks, 1)
		return err
	}
	h.PrivateReadSpan = func(in *ir.Instr, addr uint64, count, stride, size int64) error {
		t0 := time.Now()
		err := w.privSpan(addr, count, stride, size, false)
		bytes := count * size
		if bytes < 0 {
			bytes = 0
		}
		w.simPrivRead += bytes * SimPrivacyPerByte
		atomic.AddInt64(&rt.Stats.PrivReadNS, int64(time.Since(t0)))
		atomic.AddInt64(&rt.Stats.PrivReadBytes, bytes)
		atomic.AddInt64(&rt.Stats.PrivReadChecks, 1)
		return err
	}
	h.PrivateWriteSpan = func(in *ir.Instr, addr uint64, count, stride, size int64) error {
		t0 := time.Now()
		err := w.privSpan(addr, count, stride, size, true)
		bytes := count * size
		if bytes < 0 {
			bytes = 0
		}
		w.simPrivWrite += bytes * SimPrivacyPerByte
		atomic.AddInt64(&rt.Stats.PrivWriteNS, int64(time.Since(t0)))
		atomic.AddInt64(&rt.Stats.PrivWriteBytes, bytes)
		atomic.AddInt64(&rt.Stats.PrivWriteChecks, 1)
		return err
	}
	h.CheckHeap = func(in *ir.Instr, addr uint64) error {
		atomic.AddInt64(&rt.Stats.SeparationChecks, 1)
		w.simOther += SimSeparationCheck
		if addr != 0 && ir.HeapOf(addr) != in.Heap {
			return &interp.MisspecError{Instr: in, Addr: addr, Reason: "separation violated"}
		}
		return nil
	}
	h.Predict = func(in *ir.Instr, actual, expected uint64) error {
		atomic.AddInt64(&rt.Stats.Predictions, 1)
		w.simOther += SimPredict
		if actual != expected {
			return &interp.MisspecError{Instr: in, Reason: "value prediction failed"}
		}
		return nil
	}
	h.Misspec = func(in *ir.Instr) error {
		return &interp.MisspecError{Instr: in, Reason: "control speculation violated"}
	}
	h.ReduxWrite = func(in *ir.Instr, addr uint64, size int64) error {
		// Separation into the redux heap is validated by check_heap; the
		// marker feeds accounting only.
		return nil
	}
	h.OnPrint = func(in *ir.Instr, text string) bool {
		w.io = append(w.io, ioRec{iter: w.curIter, text: text})
		atomic.AddInt64(&rt.Stats.DeferredIO, 1)
		return true
	}
	if rt.Cfg.SepAudit && (len(w.sp.proven) > 0 || len(w.sp.provenRO) > 0) {
		w.installAuditHooks()
	}
}

// overlapRange intersects [addr, addr+size) with one proven range,
// returning the overlapping byte range (empty when disjoint).
func overlapRange(pr provenRange, addr uint64, size int64) (uint64, uint64) {
	lo, hi := addr, addr+uint64(size)
	if pr.addr > lo {
		lo = pr.addr
	}
	if end := pr.addr + uint64(pr.size); end < hi {
		hi = end
	}
	return lo, hi
}

// installAuditHooks arms the SepAudit oracle on this worker: every load
// and store is checked against the span's statically-proven ranges. A
// store into a proven read-only object, or a read of a statically-
// privatized byte the current iteration has not (re)written, contradicts
// the static claim that justified dropping its dynamic machinery — the
// oracle counts it loudly instead of letting the corruption stay silent.
// A sound prover never trips either condition: proofs guarantee no region
// write targets a proven read-only object and every read of a privatized
// object is dominated by same-iteration covering writes.
func (w *worker) installAuditHooks() {
	rt := w.sp.rt
	h := &w.it.Hooks
	w.auditWr = map[uint64]bool{}
	w.auditIter = -1 << 62
	syncIter := func() {
		if w.auditIter != w.curIter {
			w.auditIter = w.curIter
			for b := range w.auditWr {
				delete(w.auditWr, b)
			}
		}
	}
	h.OnStore = func(fr *interp.Frame, in *ir.Instr, addr uint64, size int64) {
		syncIter()
		for _, pr := range w.sp.proven {
			lo, hi := overlapRange(pr, addr, size)
			for b := lo; b < hi; b++ {
				w.auditWr[b] = true
			}
		}
		for _, pr := range w.sp.provenRO {
			if lo, hi := overlapRange(pr, addr, size); lo < hi {
				rt.noteSepViolation(fmt.Sprintf(
					"iter %d: store %s writes proven read-only range [%#x,%#x)",
					w.curIter, in, lo, hi))
			}
		}
	}
	h.OnLoad = func(fr *interp.Frame, in *ir.Instr, addr uint64, size int64) {
		syncIter()
		for _, pr := range w.sp.proven {
			lo, hi := overlapRange(pr, addr, size)
			for b := lo; b < hi; b++ {
				if !w.auditWr[b] {
					rt.noteSepViolation(fmt.Sprintf(
						"iter %d: load %s reads statically-privatized byte %#x before the iteration rewrote it",
						w.curIter, in, b))
					break
				}
			}
		}
	}
}

// privAccess applies Table 2 transitions to every byte of the access. An
// access that straddles a page boundary marks metadata on every page it
// touches; privRange splits the run per page.
func (w *worker) privAccess(addr uint64, size int64, isWrite bool) error {
	return w.privRange(addr, size, isWrite)
}

// privSpan applies Table 2 transitions for a span op: count elements of
// size bytes each, consecutive elements stride bytes apart. A dense span
// (stride == size) collapses to one contiguous range; count <= 0 is a
// no-op, which lets promoted checks use a dynamically computed trip count
// without proving the loop is entered.
func (w *worker) privSpan(addr uint64, count, stride, size int64, isWrite bool) error {
	if count <= 0 || size <= 0 {
		return nil
	}
	if stride == size {
		return w.privRange(addr, count*size, isWrite)
	}
	for k := int64(0); k < count; k++ {
		if err := w.privRange(addr+uint64(k)*uint64(stride), size, isWrite); err != nil {
			return err
		}
	}
	return nil
}

// privRange marks [addr, addr+n) with one page-table resolution per shadow
// page instead of one per byte: the page is pinned writable once and the
// transitions run over its backing slice directly.
func (w *worker) privRange(addr uint64, n int64, isWrite bool) error {
	for n > 0 {
		sh := ir.ShadowAddr(addr)
		off := int64(sh & (vm.PageSize - 1))
		chunk := int64(vm.PageSize) - off
		if chunk > n {
			chunk = n
		}
		data, err := w.as.WritablePage(sh)
		if err != nil {
			return err
		}
		seg := data[off : off+chunk]
		for i := range seg {
			m := seg[i]
			var newMeta byte
			var miss bool
			if isWrite {
				newMeta, miss = WriteTransition(m, w.curTS)
			} else {
				newMeta, miss = ReadTransition(m, w.curTS)
			}
			if miss {
				return &interp.MisspecError{Reason: "privacy violated (fast phase)", Addr: addr + uint64(i)}
			}
			if newMeta != m {
				seg[i] = newMeta
			}
		}
		addr += uint64(chunk)
		n -= chunk
	}
	return nil
}

// resetShadow collapses the worker's timestamps to old-write after a
// checkpoint contribution. The dirty walk covers every shadow page (all of
// them are worker-created, hence dirty) without scanning the rest of the
// footprint; words holding no timestamp are skipped eight bytes at a time.
func (w *worker) resetShadow() {
	w.as.DirtyHeapPages(ir.HeapShadow, func(base uint64, data []byte) {
		for i := 0; i < len(data); i += 8 {
			if !wordHasTS(binary.LittleEndian.Uint64(data[i:])) {
				continue
			}
			for j := i; j < i+8; j++ {
				if data[j] >= MetaTSBase {
					data[j] = MetaOldWrite
				}
			}
		}
	})
}

// misspecCause classifies a squashing error for the trace: the violated
// property, the instruction that detected it, and the faulting address when
// the violation concerns one (0 otherwise).
func misspecCause(err error) (cause, site string, addr uint64) {
	var m *interp.MisspecError
	if errors.As(err, &m) {
		return m.Reason, m.Site(), m.Addr
	}
	var fault *vm.Fault
	if errors.As(err, &fault) {
		return "memory protection fault", fmt.Sprintf("%#x", fault.Addr), fault.Addr
	}
	return err.Error(), "", 0
}

// run executes the worker's share of the span: cyclically assigned
// iterations, a checkpoint contribution per interval, misspeculation checks
// after every iteration.
func (w *worker) run() error {
	sp := w.sp
	rt := sp.rt
	tr := rt.Cfg.Trace
	busyStart := time.Now()
	defer func() {
		atomic.AddInt64(&rt.Stats.WorkerBusyNS, int64(time.Since(busyStart)))
	}()
	callArgs := make([]uint64, 1+len(sp.live))
	copy(callArgs[1:], sp.live)

	nIntervals := (sp.hi - sp.start + sp.k - 1) / sp.k
	for c := int64(0); c < nIntervals; c++ {
		if sp.committer != nil {
			// Pipeline backpressure: stay within pipelineDepth intervals of
			// the committer (see its doc comment).
			sp.committer.throttle(c)
		}
		rt.noteIntervalStart(c)
		if sp.flagged.Load() {
			if mi := sp.misspecInterval(); mi >= 0 && c >= mi {
				return nil // squash: past the failed checkpoint
			}
		}
		base := sp.start + c*sp.k
		limit := base + sp.k
		if limit > sp.hi {
			limit = sp.hi
		}
		for i := base + int64(w.id); i < limit; i += int64(w.stride) {
			w.curIter = i
			w.curTS = TimestampFor(i, base)
			callArgs[0] = uint64(i)
			_, err := w.it.Call(sp.ri.Outline.IterFn, callArgs...)
			if err != nil {
				var fault *vm.Fault
				if interp.IsMisspec(err) || errors.As(err, &fault) {
					// Memory-protection faults during speculation (a store
					// into the read-only heap, say) are misspeculations:
					// the paper's workers take the same path on SIGSEGV.
					cause, site, faddr := misspecCause(err)
					if rt.Cfg.SepAudit && faddr != 0 {
						// The hooks fire only after a successful access, so a
						// store rejected by the read-only page protection is
						// audited here: faulting inside a proven range means
						// the static claim itself was wrong.
						for _, pr := range sp.provenRO {
							if faddr >= pr.addr && faddr < pr.addr+uint64(pr.size) {
								rt.noteSepViolation(fmt.Sprintf(
									"iter %d: %s at %#x inside proven read-only range [%#x,%#x)",
									i, cause, faddr, pr.addr, pr.addr+uint64(pr.size)))
								break
							}
						}
					}
					sp.flag(i, w.id, cause, site, faddr)
					return nil
				}
				return err
			}
			// Object-lifetime speculation: short-lived objects must die
			// by the end of their iteration.
			w.simOther += SimShortLivedCheck
			if w.as.LiveObjects(ir.HeapShortLived) != w.shortBaseline {
				sp.flag(i, w.id, "short-lived object escaped", "", 0)
				return nil
			}
			// Artificial misspeculation injection (Figure 9).
			if rt.inject(i) {
				sp.flag(i, w.id, "injected", "", 0)
				return nil
			}
			// Consult the global flag after each iteration.
			if sp.flagged.Load() {
				if mi := sp.misspecInterval(); mi >= 0 && c >= mi {
					return nil
				}
			}
		}
		// Contribute this interval's state to its checkpoint. A merge
		// violation must flag the span BEFORE the contribution is announced
		// to the committer, or the committer could see the interval quiesce
		// and install it without observing the flag.
		cpStart := time.Now()
		trC := tr.Now()
		cp := sp.checkpointFor(c)
		// Under cyclic assignment the interval's last iteration (limit-1)
		// belongs to exactly one worker; only its view of the statically-
		// privatized ranges is the interval's sequential final content.
		var proven []provenRange
		if len(sp.proven) > 0 && int64(w.id) == (limit-1-base)%int64(w.stride) {
			proven = sp.proven
			for _, pr := range proven {
				atomic.AddInt64(&rt.Stats.ProvenRangeBytes, pr.size)
			}
		}
		ok, scanned, _ := cp.addWorkerState(w.id, w.as, sp.redux, proven, w.io, rt.validateShards())
		w.simCheckpoint += scanned * SimCheckpointPerByte
		w.io = nil
		w.resetShadow()
		atomic.AddInt64(&rt.Stats.CheckpointNS, int64(time.Since(cpStart)))
		tr.Emit(obs.Event{Kind: obs.KContribute, TimeNS: trC, DurNS: tr.Now() - trC,
			Invocation: sp.inv, Worker: w.id, Iter: c, A: scanned})
		if !ok {
			sp.flag(base, w.id, "privacy violated (merge)", "",
				atomic.LoadUint64(&cp.missAddr))
			if sp.committer != nil {
				sp.committer.noteContribution(c)
			}
			return nil
		}
		if sp.committer != nil {
			sp.committer.noteContribution(c)
		}
	}
	return nil
}
