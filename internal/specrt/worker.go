package specrt

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/vm"
)

// spanState coordinates one parallel execution span: from a start iteration
// to completion or to the first misspeculation (Figure 5 of the paper).
type spanState struct {
	rt   *RT
	ri   *RegionInfo
	live []uint64
	// start and hi bound the span's iterations; k is the checkpoint period.
	start, hi, k int64

	mu          sync.Mutex
	checkpoints []*checkpoint

	// misspecIter is the earliest misspeculated iteration (-1 = none);
	// guarded by flagMu for the atomic-min update.
	flagMu      sync.Mutex
	flagged     atomic.Bool
	misspecIter int64
}

// flag records a misspeculation at iteration i, keeping the earliest.
func (sp *spanState) flag(i int64) {
	sp.flagMu.Lock()
	if sp.misspecIter < 0 || i < sp.misspecIter {
		sp.misspecIter = i
	}
	sp.flagMu.Unlock()
	sp.flagged.Store(true)
	atomic.AddInt64(&sp.rt.Stats.Misspecs, 1)
}

// misspecInterval returns the interval id of the earliest misspeculation,
// or -1.
func (sp *spanState) misspecInterval() int64 {
	sp.flagMu.Lock()
	defer sp.flagMu.Unlock()
	if sp.misspecIter < 0 {
		return -1
	}
	return (sp.misspecIter - sp.start) / sp.k
}

// checkpointFor returns the checkpoint object for interval c, creating the
// chain lazily. The first worker to reach an interval allocates its object.
func (sp *spanState) checkpointFor(c int64) *checkpoint {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for int64(len(sp.checkpoints)) <= c {
		id := int64(len(sp.checkpoints))
		var prev *checkpoint
		if id > 0 {
			prev = sp.checkpoints[id-1]
		}
		base := sp.start + id*sp.k
		limit := base + sp.k
		if limit > sp.hi {
			limit = sp.hi
		}
		sp.checkpoints = append(sp.checkpoints, newCheckpoint(id, base, limit, prev))
		atomic.AddInt64(&sp.rt.Stats.Checkpoints, 1)
	}
	return sp.checkpoints[c]
}

// run executes the span. It returns the last fully valid checkpoint (nil if
// none completed), the earliest misspeculated iteration (-1 for a clean
// finish), and any hard error.
func (sp *spanState) run() (*checkpoint, int64, error) {
	rt := sp.rt
	workers := rt.Cfg.Workers
	if total := sp.hi - sp.start; int64(workers) > total {
		workers = int(total)
	}
	spawnStart := time.Now()
	ws := make([]*worker, workers)
	for w := 0; w < workers; w++ {
		ws[w] = newWorker(sp, w, workers)
	}
	atomic.AddInt64(&rt.Stats.SpawnNS, int64(time.Since(spawnStart)))

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			errs[w] = ws[w].run()
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, -1, err
		}
	}

	// Simulated-time accounting: the span costs its spawn plus the slowest
	// worker, and consumes capacity on every worker for its whole duration.
	spawn := int64(workers) * SimSpawnPerWorker
	join := int64(workers) * SimJoinPerWorker
	var maxW int64
	sim := &rt.Sim
	for _, w := range ws {
		t := w.simTime()
		if t > maxW {
			maxW = t
		}
		atomic.AddInt64(&sim.UsefulSteps, w.it.Steps)
		atomic.AddInt64(&sim.PrivReadCost, w.simPrivRead)
		atomic.AddInt64(&sim.PrivWriteCost, w.simPrivWrite)
		atomic.AddInt64(&sim.CheckpointCost, w.simCheckpoint)
		atomic.AddInt64(&sim.OtherCheckCost, w.simOther)
	}
	spanTime := spawn + maxW + join
	atomic.AddInt64(&sim.RegionTime, spanTime)
	atomic.AddInt64(&sim.RegionCapacity, int64(workers)*spanTime)
	atomic.AddInt64(&sim.SpawnCost, spawn+join)

	nIntervals := (sp.hi - sp.start + sp.k - 1) / sp.k
	if !sp.flagged.Load() {
		last := sp.checkpointFor(nIntervals - 1)
		// Second-phase cross-interval privacy validation over the whole
		// chain (the span has quiesced, so every contribution is in).
		if c := last.crossValidate(); c >= 0 {
			atomic.AddInt64(&rt.Stats.Misspecs, 1)
			lv, at := sp.resolveMisspec(c, sp.checkpointFor(c).limit-1)
			return lv, at, nil
		}
		return last, -1, nil
	}
	mi := sp.misspecInterval()
	sp.flagMu.Lock()
	iter := sp.misspecIter
	sp.flagMu.Unlock()
	// The valid prefix may itself hide a cross-interval violation; take
	// the earliest.
	if mi > 0 {
		if c := sp.checkpointFor(mi - 1).crossValidate(); c >= 0 && c < mi {
			atomic.AddInt64(&rt.Stats.Misspecs, 1)
			lv, at := sp.resolveMisspec(c, sp.checkpointFor(c).limit-1)
			return lv, at, nil
		}
	}
	lv, at := sp.resolveMisspec(mi, iter)
	return lv, at, nil
}

// resolveMisspec returns the last valid checkpoint before interval mi and
// the iteration recovery must re-execute through.
func (sp *spanState) resolveMisspec(mi, iter int64) (*checkpoint, int64) {
	var lastValid *checkpoint
	if mi > 0 {
		lastValid = sp.checkpointFor(mi - 1)
	}
	return lastValid, iter
}

// worker is one speculative worker process.
type worker struct {
	sp      *spanState
	id      int
	stride  int
	as      *vm.AddressSpace
	it      *interp.Interp
	curIter int64
	curTS   byte
	io      []ioRec

	shortBaseline int

	// Simulated-time accounting (see sim.go).
	simPrivRead   int64
	simPrivWrite  int64
	simCheckpoint int64
	simOther      int64
}

// simTime returns the worker's total simulated busy time.
func (w *worker) simTime() int64 {
	return w.it.Steps + w.simPrivRead + w.simPrivWrite + w.simCheckpoint + w.simOther
}

func newWorker(sp *spanState, id, stride int) *worker {
	rt := sp.rt
	w := &worker{sp: sp, id: id, stride: stride}
	// Workers share the master's Stats so fork-style page-copy counts
	// aggregate across the fleet (Figure 8 accounting).
	w.as = rt.master.AS.CloneSharingStats()
	// Workers see the read-only heap as truly read-only, and the
	// reduction heap starts at the operator's identity.
	w.as.SetProt(ir.HeapReadOnly, vm.ProtRead)
	for _, ro := range rt.reduxObjs {
		ident, err := Identity(ro.op, ro.elemSize)
		if err != nil {
			continue
		}
		for off := int64(0); off < ro.size; off += ro.elemSize {
			// Errors here surface later as read failures; ignore.
			_ = w.as.WriteBytes(ro.addr+uint64(off), ident)
		}
	}
	// Sharing the master's decoded program means each region function is
	// pre-decoded once per run, not once per worker per span.
	w.it = interp.NewShared(rt.master.Program(), w.as)
	w.it.AdoptLayout(rt.master.GlobalLayout())
	if rt.Cfg.StepLimit > 0 {
		w.it.StepLimit = rt.Cfg.StepLimit
	}
	w.shortBaseline = w.as.LiveObjects(ir.HeapShortLived)
	w.installHooks()
	return w
}

func (w *worker) installHooks() {
	rt := w.sp.rt
	h := &w.it.Hooks
	h.PrivateRead = func(in *ir.Instr, addr uint64, size int64) error {
		t0 := time.Now()
		err := w.privAccess(addr, size, false)
		w.simPrivRead += size * SimPrivacyPerByte
		atomic.AddInt64(&rt.Stats.PrivReadNS, int64(time.Since(t0)))
		atomic.AddInt64(&rt.Stats.PrivReadBytes, size)
		atomic.AddInt64(&rt.Stats.PrivReadChecks, 1)
		return err
	}
	h.PrivateWrite = func(in *ir.Instr, addr uint64, size int64) error {
		t0 := time.Now()
		err := w.privAccess(addr, size, true)
		w.simPrivWrite += size * SimPrivacyPerByte
		atomic.AddInt64(&rt.Stats.PrivWriteNS, int64(time.Since(t0)))
		atomic.AddInt64(&rt.Stats.PrivWriteBytes, size)
		atomic.AddInt64(&rt.Stats.PrivWriteChecks, 1)
		return err
	}
	h.CheckHeap = func(in *ir.Instr, addr uint64) error {
		atomic.AddInt64(&rt.Stats.SeparationChecks, 1)
		w.simOther += SimSeparationCheck
		if addr != 0 && ir.HeapOf(addr) != in.Heap {
			return &interp.MisspecError{Instr: in, Reason: "separation violated"}
		}
		return nil
	}
	h.Predict = func(in *ir.Instr, actual, expected uint64) error {
		atomic.AddInt64(&rt.Stats.Predictions, 1)
		w.simOther += SimPredict
		if actual != expected {
			return &interp.MisspecError{Instr: in, Reason: "value prediction failed"}
		}
		return nil
	}
	h.Misspec = func(in *ir.Instr) error {
		return &interp.MisspecError{Instr: in, Reason: "control speculation violated"}
	}
	h.ReduxWrite = func(in *ir.Instr, addr uint64, size int64) error {
		// Separation into the redux heap is validated by check_heap; the
		// marker feeds accounting only.
		return nil
	}
	h.OnPrint = func(in *ir.Instr, text string) bool {
		w.io = append(w.io, ioRec{iter: w.curIter, text: text})
		atomic.AddInt64(&rt.Stats.DeferredIO, 1)
		return true
	}
}

// privAccess applies Table 2 transitions to every byte of the access.
func (w *worker) privAccess(addr uint64, size int64, isWrite bool) error {
	for b := addr; b < addr+uint64(size); b++ {
		sh := ir.ShadowAddr(b)
		meta, err := w.as.Read(sh, 1)
		if err != nil {
			return err
		}
		var newMeta byte
		var miss bool
		if isWrite {
			newMeta, miss = WriteTransition(byte(meta), w.curTS)
		} else {
			newMeta, miss = ReadTransition(byte(meta), w.curTS)
		}
		if miss {
			return &interp.MisspecError{Reason: "privacy violated (fast phase)"}
		}
		if newMeta != byte(meta) {
			if err := w.as.Write(sh, 1, uint64(newMeta)); err != nil {
				return err
			}
		}
	}
	return nil
}

// resetShadow collapses the worker's timestamps to old-write after a
// checkpoint contribution.
func (w *worker) resetShadow() {
	w.as.HeapPages(ir.HeapShadow, func(base uint64, data []byte) {
		for i, m := range data {
			if m >= MetaTSBase {
				data[i] = MetaOldWrite
			}
		}
	})
}

// run executes the worker's share of the span: cyclically assigned
// iterations, a checkpoint contribution per interval, misspeculation checks
// after every iteration.
func (w *worker) run() error {
	sp := w.sp
	rt := sp.rt
	busyStart := time.Now()
	defer func() {
		atomic.AddInt64(&rt.Stats.WorkerBusyNS, int64(time.Since(busyStart)))
	}()
	callArgs := make([]uint64, 1+len(sp.live))
	copy(callArgs[1:], sp.live)

	nIntervals := (sp.hi - sp.start + sp.k - 1) / sp.k
	for c := int64(0); c < nIntervals; c++ {
		if sp.flagged.Load() {
			if mi := sp.misspecInterval(); mi >= 0 && c >= mi {
				return nil // squash: past the failed checkpoint
			}
		}
		base := sp.start + c*sp.k
		limit := base + sp.k
		if limit > sp.hi {
			limit = sp.hi
		}
		for i := base + int64(w.id); i < limit; i += int64(w.stride) {
			w.curIter = i
			w.curTS = TimestampFor(i, base)
			callArgs[0] = uint64(i)
			_, err := w.it.Call(sp.ri.Outline.IterFn, callArgs...)
			if err != nil {
				var fault *vm.Fault
				if interp.IsMisspec(err) || errors.As(err, &fault) {
					// Memory-protection faults during speculation (a store
					// into the read-only heap, say) are misspeculations:
					// the paper's workers take the same path on SIGSEGV.
					sp.flag(i)
					return nil
				}
				return err
			}
			// Object-lifetime speculation: short-lived objects must die
			// by the end of their iteration.
			w.simOther += SimShortLivedCheck
			if w.as.LiveObjects(ir.HeapShortLived) != w.shortBaseline {
				sp.flag(i)
				return nil
			}
			// Artificial misspeculation injection (Figure 9).
			if rt.inject(i) {
				sp.flag(i)
				return nil
			}
			// Consult the global flag after each iteration.
			if sp.flagged.Load() {
				if mi := sp.misspecInterval(); mi >= 0 && c >= mi {
					return nil
				}
			}
		}
		// Contribute this interval's state to its checkpoint.
		cpStart := time.Now()
		cp := sp.checkpointFor(c)
		ok, scanned := cp.addWorkerState(w.id, w.as, rt.reduxObjs, w.io)
		w.simCheckpoint += scanned * SimCheckpointPerByte
		w.io = nil
		w.resetShadow()
		atomic.AddInt64(&rt.Stats.CheckpointNS, int64(time.Since(cpStart)))
		if !ok {
			sp.flag(base) // conservatively restart the whole interval
			return nil
		}
	}
	return nil
}
