package specrt

import (
	"testing"

	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/vm"
)

// buildMemsetModule: for i in [0,n): memset(buf, i+1, len(buf)) with
// len(buf) > PageSize, then read one of the filled bytes back. After the
// loop, main loads words from both sides of the page boundary inside buf,
// so the returned value observes whether the checkpoint merge committed
// the *whole* privatized write-back — including the part of the fill that
// lives on the second page.
func buildMemsetModule(n int64) *ir.Module {
	const bufSize = vm.PageSize + 256
	m := ir.NewModule("memset")
	buf := m.NewGlobal("buf", bufSize)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
		b.MemSet(b.Global(buf), b.I(bufSize), b.Add(b.Ld(iv), b.I(1)))
		// Read part of the fill back and store it again: the object is
		// written-then-read every iteration, the privatization pattern.
		v := b.Load(b.Add(b.Global(buf), b.I(vm.PageSize+128)), 8)
		b.Store(v, b.Global(buf), 8)
	})
	lo := b.Load(b.Global(buf), 8)
	hi := b.Load(b.Add(b.Global(buf), b.I(vm.PageSize+120)), 8)
	b.Ret(b.Add(lo, hi))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

// TestCrossPageMemsetCommitsSecondPage is the regression test for
// first-page-only shadow marking: a private fill that straddles a page
// boundary must mark shadow metadata on every page it touches, or the
// merge silently drops the second page's bytes and the master's state
// diverges from sequential execution after the loop.
func TestCrossPageMemsetCommitsSecondPage(t *testing.T) {
	const n = 9
	seqIt := interp.New(buildMemsetModule(n), vm.NewAddressSpace())
	want, err := seqIt.Run()
	if err != nil {
		t.Fatal(err)
	}
	mod := buildMemsetModule(n)
	ri := buildRegion(t, mod)
	rt := New(mod, Config{Workers: 4, CheckpointPeriod: 2}, ri)
	got, err := rt.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("speculative result %#x, want sequential %#x "+
			"(second-page bytes of the fill were not committed)", got, want)
	}
	if rt.Stats.Misspecs != 0 {
		t.Errorf("unexpected misspecs %d", rt.Stats.Misspecs)
	}
}

// TestPrivRangeCrossPageShadow drives the worker's shadow-marking range
// walk directly across a page boundary and checks every byte's metadata
// lands, the neighbours stay untouched, and the second shadow page is
// observed dirty.
func TestPrivRangeCrossPageShadow(t *testing.T) {
	as := vm.NewAddressSpace()
	base, err := as.Alloc(ir.HeapPrivate, 2*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	w := &worker{as: as, curTS: MetaTSBase}
	// An 8-byte access with 3 bytes on the first page, 5 on the second.
	pb := (base + vm.PageSize) &^ (vm.PageSize - 1)
	addr := pb - 3
	if err := w.privRange(addr, 8, true); err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 8; k++ {
		m, err := as.Read(ir.ShadowAddr(addr+k), 1)
		if err != nil {
			t.Fatal(err)
		}
		if byte(m) != MetaTSBase {
			t.Errorf("shadow byte %d (addr %#x): meta %#x, want ts %#x",
				k, addr+k, m, MetaTSBase)
		}
	}
	for _, nb := range []uint64{addr - 1, addr + 8} {
		m, err := as.Read(ir.ShadowAddr(nb), 1)
		if err != nil {
			t.Fatal(err)
		}
		if byte(m) != MetaLiveIn {
			t.Errorf("neighbour %#x: meta %#x, want live-in", nb, m)
		}
	}
	secondDirty := false
	as.DirtyHeapPages(ir.HeapShadow, func(pageBase uint64, data []byte) {
		if pageBase == ir.ShadowAddr(pb)&^uint64(vm.PageSize-1) {
			secondDirty = true
		}
	})
	if !secondDirty {
		t.Error("second shadow page not dirty after cross-page private write")
	}
}
