package specrt

import (
	"sort"
	"sync"

	"privateer/internal/ir"
	"privateer/internal/vm"
)

// ioRec is one deferred output operation, ordered by iteration.
type ioRec struct {
	iter int64
	text string
}

// reduxObj describes one registered reduction object.
type reduxObj struct {
	addr     uint64
	size     int64
	elemSize int64
	op       ir.ReduxKind
}

// checkpoint is one checkpoint object (section 5.2): the merged speculative
// state for one iteration interval. Each checkpoint is self-contained — it
// records only the bytes touched during its own interval — so workers can
// contribute to different checkpoints concurrently without ordering
// constraints ("a fast worker proceeds to subsequent work units without
// waiting"). Conflicts *within* an interval are detected during the merge;
// conflicts *across* intervals are caught by a chain-validation pass when
// the span quiesces, before anything commits.
type checkpoint struct {
	mu sync.Mutex
	// id is the interval index within the span.
	id int64
	// base and limit bound the interval's iterations [base, limit).
	base, limit int64
	// prev is the previous checkpoint in the chain (nil for the first).
	prev *checkpoint

	// data holds merged private-heap byte values for bytes written this
	// interval; shadow holds the interval's combined metadata (zero =
	// untouched this interval).
	data   map[uint64][]byte
	shadow map[uint64][]byte
	// redux holds each worker's contribution per reduction object, keyed
	// by worker id; snapshots are cumulative per worker, so an object's
	// contributions reflect all iterations up to this interval. They are
	// folded together in worker-id order at install time: combination
	// order must not depend on goroutine scheduling, or floating-point
	// reductions would produce schedule-dependent low bits.
	redux map[uint64]map[int][]byte
	// io collects deferred output of the interval.
	io []ioRec
	// contributed counts workers that added their state.
	contributed int
	// misspec marks a violation detected during merging.
	misspec bool
	// committed marks the checkpoint non-speculative.
	committed bool
}

func newCheckpoint(id, base, limit int64, prev *checkpoint) *checkpoint {
	return &checkpoint{
		id: id, base: base, limit: limit, prev: prev,
		data:   map[uint64][]byte{},
		shadow: map[uint64][]byte{},
		redux:  map[uint64]map[int][]byte{},
	}
}

func (cp *checkpoint) ownPage(m map[uint64][]byte, base uint64) []byte {
	pg, ok := m[base]
	if !ok {
		pg = make([]byte, vm.PageSize)
		m[base] = pg
	}
	return pg
}

// addWorkerState merges one worker's speculative state into the checkpoint:
// the second phase of privacy validation plus data selection by timestamp.
// The worker's shadow must reflect the current interval only (timestamps
// are relative to cp.base). It returns false if the merge detects a privacy
// violation.
func (cp *checkpoint) addWorkerState(wid int, ws *vm.AddressSpace, reduxObjs []reduxObj, io []ioRec) (bool, int64) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ok := true
	var scanned int64
	ws.HeapPages(ir.HeapShadow, func(shBase uint64, shData []byte) {
		scanned += vm.PageSize
		privBase := shBase &^ ir.ShadowBit
		var combinedSh, combinedData, privData []byte
		for off := 0; off < vm.PageSize; off++ {
			wm := shData[off]
			if wm == MetaLiveIn || wm == MetaOldWrite {
				continue // untouched this interval / merged earlier
			}
			if combinedSh == nil {
				combinedSh = cp.ownPage(cp.shadow, shBase)
				combinedData = cp.ownPage(cp.data, privBase)
			}
			newMeta, takeData, miss := MergeByte(combinedSh[off], wm)
			if miss {
				ok = false
				cp.misspec = true
			}
			combinedSh[off] = newMeta
			if takeData {
				if privData == nil {
					if pd, have := ws.PageData(privBase); have {
						privData = pd
					} else {
						privData = make([]byte, vm.PageSize)
					}
				}
				combinedData[off] = privData[off]
			}
		}
	})
	for _, ro := range reduxObjs {
		buf := make([]byte, ro.size)
		if err := ws.ReadBytes(ro.addr, buf); err != nil {
			ok = false
			cp.misspec = true
			continue
		}
		contribs, have := cp.redux[ro.addr]
		if !have {
			contribs = map[int][]byte{}
			cp.redux[ro.addr] = contribs
		}
		contribs[wid] = buf
	}
	cp.io = append(cp.io, io...)
	cp.contributed++
	return ok, scanned
}

// reduxTotal folds the checkpoint's contributions for ro in ascending
// worker-id order, starting from the operator's identity. The fixed fold
// order keeps floating-point reductions bit-deterministic regardless of the
// order workers happened to contribute. Returns nil if no worker
// contributed.
func (cp *checkpoint) reduxTotal(ro reduxObj) ([]byte, error) {
	contribs := cp.redux[ro.addr]
	if len(contribs) == 0 {
		return nil, nil
	}
	id, err := Identity(ro.op, ro.elemSize)
	if err != nil {
		return nil, err
	}
	acc := make([]byte, ro.size)
	for off := int64(0); off < ro.size; off += ro.elemSize {
		copy(acc[off:off+ro.elemSize], id)
	}
	wids := make([]int, 0, len(contribs))
	for w := range contribs {
		wids = append(wids, w)
	}
	sort.Ints(wids)
	for _, w := range wids {
		if err := Combine(ro.op, ro.elemSize, acc, contribs[w]); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// sortedIO returns the interval's deferred output in iteration order.
func (cp *checkpoint) sortedIO() []ioRec {
	out := append([]ioRec(nil), cp.io...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].iter < out[j].iter })
	return out
}

// chain returns the checkpoints from the first interval through cp, oldest
// first.
func (cp *checkpoint) chain() []*checkpoint {
	var out []*checkpoint
	for c := cp; c != nil; c = c.prev {
		out = append(out, c)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// crossValidate detects privacy violations spanning checkpoint intervals:
// a byte read as live-in after some earlier interval wrote it (or vice
// versa). It walks the chain oldest-first, carrying collapsed metadata, and
// returns the id of the first violating checkpoint, or -1. Call only after
// the span has quiesced.
func (cp *checkpoint) crossValidate() int64 {
	carried := map[uint64][]byte{} // shadow page base -> collapsed meta
	for _, c := range cp.chain() {
		for base, sh := range c.shadow {
			prev, have := carried[base]
			if !have {
				prev = make([]byte, vm.PageSize)
				carried[base] = prev
			}
			for off, m := range sh {
				if m == MetaLiveIn {
					continue
				}
				if m == MetaReadLiveIn && prev[off] == MetaOldWrite {
					return c.id // read "live-in" of a byte written earlier
				}
				if m >= MetaTSBase && prev[off] == MetaReadLiveIn {
					return c.id // write after a live-in read
				}
				if m == MetaReadLiveIn {
					if prev[off] != MetaOldWrite {
						prev[off] = MetaReadLiveIn
					}
				} else {
					prev[off] = MetaOldWrite
				}
			}
		}
	}
	return -1
}

// installInto applies the chain's merged private state and reduction totals
// to the master address space: the simulated equivalent of installing a
// checkpoint's heap images via mmap.
func (cp *checkpoint) installInto(master *vm.AddressSpace, reduxObjs []reduxObj) (int64, error) {
	var bytes int64
	for _, c := range cp.chain() {
		for base, sh := range c.shadow {
			privBase := base &^ ir.ShadowBit
			data := c.data[privBase]
			if data == nil {
				continue
			}
			for off, m := range sh {
				if m < MetaTSBase {
					continue
				}
				if err := master.Write(privBase+uint64(off), 1, uint64(data[off])); err != nil {
					return bytes, err
				}
				bytes++
			}
		}
	}
	for _, ro := range reduxObjs {
		contrib, err := cp.reduxTotal(ro)
		if err != nil {
			return bytes, err
		}
		if contrib == nil {
			continue
		}
		cur := make([]byte, ro.size)
		if err := master.ReadBytes(ro.addr, cur); err != nil {
			return bytes, err
		}
		if err := Combine(ro.op, ro.elemSize, cur, contrib); err != nil {
			return bytes, err
		}
		if err := master.WriteBytes(ro.addr, cur); err != nil {
			return bytes, err
		}
		bytes += ro.size
	}
	return bytes, nil
}
