package specrt

import (
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"privateer/internal/ir"
	"privateer/internal/profiling"
	"privateer/internal/vm"
)

// ioRec is one deferred output operation, ordered by iteration.
type ioRec struct {
	iter int64
	text string
}

// reduxObj describes one registered reduction object.
type reduxObj struct {
	addr     uint64
	size     int64
	elemSize int64
	op       ir.ReduxKind
}

// sepObj is one registry entry for a statically-proven object (see
// RT.sepRegister): the object identity decides which regions' spans act
// on it and how.
type sepObj struct {
	obj  profiling.Object
	addr uint64
	size int64
}

// provenRange is one statically-proven object's address range as a span
// sees it: a privatized range to install wholesale, or a read-only range
// the SepAudit oracle watches.
type provenRange struct {
	addr uint64
	size int64
}

// checkpoint is one checkpoint object (section 5.2): the merged speculative
// state for one iteration interval. Each checkpoint is self-contained — it
// records only the bytes touched during its own interval — so workers can
// contribute to different checkpoints concurrently without ordering
// constraints ("a fast worker proceeds to subsequent work units without
// waiting"). Conflicts *within* an interval are detected during the merge;
// conflicts *across* intervals are caught by a chain-validation pass when
// the span quiesces, before anything commits.
type checkpoint struct {
	// mu serializes whole-merge operations: one worker's addWorkerState at a
	// time per checkpoint (the merge's page scan may itself be sharded across
	// goroutines under mu; see pageMu).
	mu sync.Mutex
	// pageMu guards insertion into the data and shadow page maps when one
	// merge's page scan is sharded across goroutines. Distinct shards always
	// work on distinct page bases, so page contents need no lock — only the
	// map headers do.
	pageMu sync.Mutex
	// id is the interval index within the span.
	id int64
	// base and limit bound the interval's iterations [base, limit).
	base, limit int64
	// prev is the previous checkpoint in the chain (nil for the first).
	prev *checkpoint

	// data holds merged private-heap byte values for bytes written this
	// interval; shadow holds the interval's combined metadata (zero =
	// untouched this interval).
	data   map[uint64][]byte
	shadow map[uint64][]byte
	// redux holds each worker's contribution per reduction object, keyed
	// by worker id; snapshots are cumulative per worker, so an object's
	// contributions reflect all iterations up to this interval. They are
	// folded together in worker-id order at install time: combination
	// order must not depend on goroutine scheduling, or floating-point
	// reductions would produce schedule-dependent low bits.
	redux map[uint64]map[int][]byte
	// proven holds the content of each statically-privatized object at
	// the end of this interval, keyed by base address. Exactly one worker
	// contributes it — the one whose cyclic assignment ran the interval's
	// last iteration — because the full-overwrite proof makes that
	// iteration's content the sequential state after the interval.
	proven map[uint64][]byte
	// io collects deferred output of the interval.
	io []ioRec
	// contributed counts workers that added their state.
	contributed int
	// misspec marks a violation detected during merging.
	misspec bool
	// missAddr records the first faulting private-heap address observed by a
	// merge (CAS-once; 0 = none recorded). Page 0 is never mapped, so 0 is
	// unambiguous. Feeds misspeculation attribution; best-effort only.
	missAddr uint64
	// committed marks the checkpoint non-speculative.
	committed bool
}

// noteMissAddr records addr as the checkpoint's first observed faulting
// address, keeping an earlier recording if one raced in first.
func (cp *checkpoint) noteMissAddr(addr uint64) {
	if addr != 0 {
		atomic.CompareAndSwapUint64(&cp.missAddr, 0, addr)
	}
}

func newCheckpoint(id, base, limit int64, prev *checkpoint) *checkpoint {
	return &checkpoint{
		id: id, base: base, limit: limit, prev: prev,
		data:   map[uint64][]byte{},
		shadow: map[uint64][]byte{},
		redux:  map[uint64]map[int][]byte{},
		proven: map[uint64][]byte{},
	}
}

// ownPage returns the checkpoint-owned page at base in m, creating it on
// first use. Map insertion is guarded by pageMu so that a sharded merge scan
// (several goroutines, disjoint page bases) can create pages concurrently.
func (cp *checkpoint) ownPage(m map[uint64][]byte, base uint64) []byte {
	cp.pageMu.Lock()
	pg, ok := m[base]
	if !ok {
		pg = make([]byte, vm.PageSize)
		m[base] = pg
	}
	cp.pageMu.Unlock()
	return pg
}

// shadowPage is one worker shadow page queued for merging.
type shadowPage struct {
	base uint64
	data []byte
}

// mergeShadowPage merges one worker shadow page into the checkpoint's
// combined view and returns the private-heap address of the first privacy
// violation the merge detects (0 = clean). Distinct shadow pages touch
// distinct combined pages, so concurrent calls on different pages are safe.
func (cp *checkpoint) mergeShadowPage(ws *vm.AddressSpace, pg shadowPage) uint64 {
	var missAddr uint64
	privBase := pg.base &^ ir.ShadowBit
	var combinedSh, combinedData, privData []byte
	for w := 0; w < vm.PageSize; w += 8 {
		// A word of untouched/old-write bytes contributes nothing to the
		// merge; span-promoted checks leave long dense runs of such words,
		// so the scan walks summaries eight bytes at a time.
		if !wordTouched(binary.LittleEndian.Uint64(pg.data[w:])) {
			continue
		}
		for off := w; off < w+8; off++ {
			wm := pg.data[off]
			if wm == MetaLiveIn || wm == MetaOldWrite {
				continue // untouched this interval / merged earlier
			}
			if combinedSh == nil {
				combinedSh = cp.ownPage(cp.shadow, pg.base)
				combinedData = cp.ownPage(cp.data, privBase)
			}
			newMeta, takeData, m := MergeByte(combinedSh[off], wm)
			if m && missAddr == 0 {
				missAddr = privBase + uint64(off)
			}
			combinedSh[off] = newMeta
			if takeData {
				if privData == nil {
					if pd, have := ws.PageData(privBase); have {
						privData = pd
					} else {
						privData = make([]byte, vm.PageSize)
					}
				}
				combinedData[off] = privData[off]
			}
		}
	}
	return missAddr
}

// addWorkerState merges one worker's speculative state into the checkpoint:
// the second phase of privacy validation plus data selection by timestamp.
// The worker's shadow must reflect the current interval only (timestamps
// are relative to cp.base). The page-level scan is sharded across up to
// shards goroutines by shadow-page range; the result is independent of the
// sharding because every shadow page maps to its own combined page. proven
// is non-nil only for the worker that executed the interval's last
// iteration: its view of each statically-privatized range is snapshotted
// as the interval's final content. It returns ok=false if the merge
// detects a privacy violation, the number of shadow bytes scanned, and
// the total number of workers that have contributed (including this one).
func (cp *checkpoint) addWorkerState(wid int, ws *vm.AddressSpace, reduxObjs []reduxObj, proven []provenRange, io []ioRec, shards int) (bool, int64, int) {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	ok := true
	var pages []shadowPage
	// Summary-guided scan: every shadow page in a worker space was created
	// by the worker itself (the master never writes shadow state, and clones
	// inherit none), so the dirty walk visits exactly the pages a full heap
	// scan would — while skipping the untouched subtrees of the master's
	// footprint outright.
	ws.DirtyHeapPages(ir.HeapShadow, func(shBase uint64, shData []byte) {
		pages = append(pages, shadowPage{base: shBase, data: shData})
	})
	scanned := int64(len(pages)) * vm.PageSize
	if shards <= 1 || len(pages) < 2*shards {
		for _, pg := range pages {
			if a := cp.mergeShadowPage(ws, pg); a != 0 {
				ok = false
				cp.noteMissAddr(a)
			}
		}
	} else {
		var missed atomic.Bool
		var wg sync.WaitGroup
		chunk := (len(pages) + shards - 1) / shards
		for lo := 0; lo < len(pages); lo += chunk {
			hi := lo + chunk
			if hi > len(pages) {
				hi = len(pages)
			}
			wg.Add(1)
			go func(part []shadowPage) {
				defer wg.Done()
				for _, pg := range part {
					if a := cp.mergeShadowPage(ws, pg); a != 0 {
						missed.Store(true)
						cp.noteMissAddr(a)
					}
				}
			}(pages[lo:hi])
		}
		wg.Wait()
		if missed.Load() {
			ok = false
		}
	}
	if !ok {
		cp.misspec = true
	}
	for _, ro := range reduxObjs {
		buf := make([]byte, ro.size)
		if err := ws.ReadBytes(ro.addr, buf); err != nil {
			ok = false
			cp.misspec = true
			cp.noteMissAddr(ro.addr)
			continue
		}
		contribs, have := cp.redux[ro.addr]
		if !have {
			contribs = map[int][]byte{}
			cp.redux[ro.addr] = contribs
		}
		contribs[wid] = buf
	}
	for _, pr := range proven {
		buf := make([]byte, pr.size)
		if err := ws.ReadBytes(pr.addr, buf); err != nil {
			ok = false
			cp.misspec = true
			cp.noteMissAddr(pr.addr)
			continue
		}
		cp.proven[pr.addr] = buf
	}
	cp.io = append(cp.io, io...)
	cp.contributed++
	return ok, scanned, cp.contributed
}

// reduxTotal folds the checkpoint's contributions for ro in ascending
// worker-id order, starting from the operator's identity. The fixed fold
// order keeps floating-point reductions bit-deterministic regardless of the
// order workers happened to contribute. Returns nil if no worker
// contributed.
func (cp *checkpoint) reduxTotal(ro reduxObj) ([]byte, error) {
	contribs := cp.redux[ro.addr]
	if len(contribs) == 0 {
		return nil, nil
	}
	id, err := Identity(ro.op, ro.elemSize)
	if err != nil {
		return nil, err
	}
	acc := make([]byte, ro.size)
	for off := int64(0); off < ro.size; off += ro.elemSize {
		copy(acc[off:off+ro.elemSize], id)
	}
	wids := make([]int, 0, len(contribs))
	for w := range contribs {
		wids = append(wids, w)
	}
	sort.Ints(wids)
	for _, w := range wids {
		if err := Combine(ro.op, ro.elemSize, acc, contribs[w]); err != nil {
			return nil, err
		}
	}
	return acc, nil
}

// sortedIO returns the interval's deferred output in iteration order.
func (cp *checkpoint) sortedIO() []ioRec {
	out := append([]ioRec(nil), cp.io...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].iter < out[j].iter })
	return out
}

// chain returns the checkpoints from the first interval through cp, oldest
// first.
func (cp *checkpoint) chain() []*checkpoint {
	var out []*checkpoint
	for c := cp; c != nil; c = c.prev {
		out = append(out, c)
	}
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// carryValidatePage folds one interval's shadow page sh into the carried
// (collapsed) metadata prev for the same page and returns the page offset of
// the first cross-interval privacy violation the fold observes (-1 = clean):
// a byte read as live-in after some earlier interval wrote it, or written
// after some earlier interval read it as live-in. prev is mutated in place;
// on a violation it is left partially folded, which is fine because
// validation aborts the span.
func carryValidatePage(prev, sh []byte) int {
	for off := 0; off < len(sh); off++ {
		// Only MetaLiveIn (0) bytes are no-ops here — an all-zero word can
		// be skipped whole. (MetaOldWrite must still fold into prev.)
		if off&7 == 0 && off+8 <= len(sh) &&
			binary.LittleEndian.Uint64(sh[off:]) == 0 {
			off += 7
			continue
		}
		m := sh[off]
		if m == MetaLiveIn {
			continue
		}
		if m == MetaReadLiveIn && prev[off] == MetaOldWrite {
			return off // read "live-in" of a byte written earlier
		}
		if m >= MetaTSBase && prev[off] == MetaReadLiveIn {
			return off // write after a live-in read
		}
		if m == MetaReadLiveIn {
			if prev[off] != MetaOldWrite {
				prev[off] = MetaReadLiveIn
			}
		} else {
			prev[off] = MetaOldWrite
		}
	}
	return -1
}

// crossValidate detects privacy violations spanning checkpoint intervals.
// It walks the chain oldest-first, carrying collapsed metadata, and returns
// the id of the first violating checkpoint, or -1. Call only after the span
// has quiesced. This is the serial reference; crossValidateSharded gives
// the same answer with the scan parallelized by shadow-page range.
func (cp *checkpoint) crossValidate() int64 {
	id, _ := cp.crossValidateAddr()
	return id
}

// crossValidateAddr is crossValidate extended with the private-heap address
// of the first violating byte (0 when no violation).
func (cp *checkpoint) crossValidateAddr() (int64, uint64) {
	carried := map[uint64][]byte{} // shadow page base -> collapsed meta
	for _, c := range cp.chain() {
		for base, sh := range c.shadow {
			prev, have := carried[base]
			if !have {
				prev = make([]byte, vm.PageSize)
				carried[base] = prev
			}
			if off := carryValidatePage(prev, sh); off >= 0 {
				return c.id, (base &^ ir.ShadowBit) + uint64(off)
			}
		}
	}
	return -1, 0
}

// crossValidateSharded is crossValidate with the page scans distributed
// over up to shards goroutines.
func (cp *checkpoint) crossValidateSharded(shards int) int64 {
	id, _ := cp.crossValidateShardedAddr(shards)
	return id
}

// crossValidateShardedAddr is crossValidateSharded extended with a faulting
// address. Every shadow page base carries its own collapsed metadata
// independently of all other pages, so the chain can be validated per page;
// the first violating checkpoint overall is the minimum first-violating
// checkpoint over all pages, which makes the id identical to the serial
// walk regardless of scheduling. The reported address is the one found by
// the winning page's fold (any page tying on the minimum id may win).
func (cp *checkpoint) crossValidateShardedAddr(shards int) (int64, uint64) {
	chain := cp.chain()
	seen := map[uint64]bool{}
	var bases []uint64
	for _, c := range chain {
		for base := range c.shadow {
			if !seen[base] {
				seen[base] = true
				bases = append(bases, base)
			}
		}
	}
	if shards <= 1 || len(bases) < 2*shards {
		return cp.crossValidateAddr()
	}
	// validateBase walks the whole chain for one page base and returns the
	// id of the first checkpoint whose fold violates plus the faulting
	// address, or (-1, 0).
	validateBase := func(base uint64) (int64, uint64) {
		prev := make([]byte, vm.PageSize)
		for _, c := range chain {
			if sh, ok := c.shadow[base]; ok {
				if off := carryValidatePage(prev, sh); off >= 0 {
					return c.id, (base &^ ir.ShadowBit) + uint64(off)
				}
			}
		}
		return -1, 0
	}
	first := int64(-1)
	var firstAddr uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	chunk := (len(bases) + shards - 1) / shards
	for lo := 0; lo < len(bases); lo += chunk {
		hi := lo + chunk
		if hi > len(bases) {
			hi = len(bases)
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			local := int64(-1)
			var localAddr uint64
			for _, base := range part {
				if v, a := validateBase(base); v >= 0 && (local < 0 || v < local) {
					local, localAddr = v, a
				}
			}
			if local >= 0 {
				mu.Lock()
				if first < 0 || local < first {
					first, firstAddr = local, localAddr
				}
				mu.Unlock()
			}
		}(bases[lo:hi])
	}
	wg.Wait()
	return first, firstAddr
}

// installOwnDataInto applies only this checkpoint's merged private-heap
// bytes (not its predecessors', not reductions) to the master address
// space. The pipelined committer installs intervals one at a time with it;
// installInto composes it over a whole chain.
func (cp *checkpoint) installOwnDataInto(master *vm.AddressSpace) (int64, error) {
	var bytes int64
	for base, sh := range cp.shadow {
		privBase := base &^ ir.ShadowBit
		data := cp.data[privBase]
		if data == nil {
			continue
		}
		off := 0
		for off < len(sh) {
			if off&7 == 0 && off+8 <= len(sh) &&
				!wordHasTS(binary.LittleEndian.Uint64(sh[off:])) {
				off += 8 // no surviving write in this word
				continue
			}
			if sh[off] < MetaTSBase {
				off++
				continue
			}
			// Batch the contiguous run of surviving bytes into one write.
			run := off + 1
			for run < len(sh) && sh[run] >= MetaTSBase {
				run++
			}
			if err := master.WriteBytes(privBase+uint64(off), data[off:run]); err != nil {
				return bytes, err
			}
			bytes += int64(run - off)
			off = run
		}
	}
	// Statically-privatized objects carry no shadow marks; their interval-
	// final content was snapshotted wholesale from the worker that ran the
	// interval's last iteration. It installs after the merged per-byte data
	// deliberately: a stray marked write to such an object (a multi-target
	// access that kept its marks) from an earlier iteration is dead under
	// the full-overwrite proof, so the snapshot must win.
	if len(cp.proven) > 0 {
		addrs := make([]uint64, 0, len(cp.proven))
		for addr := range cp.proven {
			addrs = append(addrs, addr)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, addr := range addrs {
			buf := cp.proven[addr]
			if err := master.WriteBytes(addr, buf); err != nil {
				return bytes, err
			}
			bytes += int64(len(buf))
		}
	}
	return bytes, nil
}

// installReduxInto folds the checkpoint's reduction totals into the master
// address space. Worker redux contributions are cumulative (a worker's
// snapshot at interval k covers all of its iterations through k), so this
// must run exactly once per span, against the LAST valid checkpoint — never
// per interval.
func (cp *checkpoint) installReduxInto(master *vm.AddressSpace, reduxObjs []reduxObj) (int64, error) {
	var bytes int64
	for _, ro := range reduxObjs {
		contrib, err := cp.reduxTotal(ro)
		if err != nil {
			return bytes, err
		}
		if contrib == nil {
			continue
		}
		cur := make([]byte, ro.size)
		if err := master.ReadBytes(ro.addr, cur); err != nil {
			return bytes, err
		}
		if err := Combine(ro.op, ro.elemSize, cur, contrib); err != nil {
			return bytes, err
		}
		if err := master.WriteBytes(ro.addr, cur); err != nil {
			return bytes, err
		}
		bytes += ro.size
	}
	return bytes, nil
}

// installInto applies the chain's merged private state and reduction totals
// to the master address space: the simulated equivalent of installing a
// checkpoint's heap images via mmap. This is the synchronous (quiesce-then-
// commit) install; the pipelined committer reaches the same final state via
// per-interval installOwnDataInto calls plus one installReduxInto.
func (cp *checkpoint) installInto(master *vm.AddressSpace, reduxObjs []reduxObj) (int64, error) {
	var bytes int64
	for _, c := range cp.chain() {
		b, err := c.installOwnDataInto(master)
		bytes += b
		if err != nil {
			return bytes, err
		}
	}
	b, err := cp.installReduxInto(master, reduxObjs)
	bytes += b
	return bytes, err
}
