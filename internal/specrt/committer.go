package specrt

// The pipelined validator/committer (Config.Pipeline).
//
// The synchronous span lifecycle is a barrier model: every worker finishes
// every interval, the span quiesces, and only then does the master cross-
// validate the whole checkpoint chain, install it, and commit deferred
// output — all on the critical path (the paper's §5.2-§5.3 runs commit in a
// separate process precisely to avoid this). The committer converts the
// lifecycle into a producer/consumer pipeline: workers produce quiesced
// checkpoints (interval k quiesces when all workers have contributed their
// interval-k state), and a single background goroutine consumes them in
// interval order — eagerly chain-validating interval k, installing its data
// into the master address space, and committing its deferred output while
// the workers are still executing interval k+1.
//
// Safety of the overlapped install: workers execute against copy-on-write
// clones taken from the master at span start; a radix page-table node
// reachable from two or more address spaces is never mutated (vm's
// range-COW invariant), so the committer's writes to the master path-copy
// shared subtrees into privately owned nodes and can never be observed by a
// running worker. The master thread itself
// is blocked inside invoke() for the whole span, so the committer is the
// only goroutine touching master state and the deferred-output stream
// (rt.out, guarded by rt.outMu — see the locking discipline note in
// specrt.go).
//
// Equivalence with the synchronous path:
//   - Validation. carryValidatePage is shared by both paths, and the
//     committer folds intervals oldest-first, so the first violation it sees
//     is the same "earliest violating checkpoint" the synchronous
//     crossValidate reports.
//   - Data. Checkpoints are self-contained (each records only bytes written
//     in its own interval), so installing them one by one in interval order
//     writes exactly the bytes the synchronous whole-chain install writes.
//   - Reductions. Worker redux snapshots are cumulative, so the fold happens
//     exactly once per span, from the last installed checkpoint, in
//     worker-id order — identical to the synchronous fold (and therefore
//     bit-deterministic for floating-point operators).
//   - Output. The committer commits deferred I/O per interval in interval
//     order, each interval's records in iteration order: byte-identical to
//     the synchronous chain commit.
//
// Misspeculation. A violation discovered during eager validation of
// interval k flags the span (sp.flag), which in-flight workers observe at
// their next iteration boundary and squash — in-flight speculative
// intervals are cancelled, and the last installed checkpoint's limit is the
// recovery boundary handed back to invoke(). A worker-detected
// misspeculation at interval m likewise stops the committer before interval
// m; intervals below m still quiesce (workers keep contributing them) and
// are validated and installed, matching the synchronous path's prefix
// install.

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/vm"
)

// pipelineDepth bounds how many intervals workers may run ahead of the
// committer. The backpressure serves two purposes: it bounds the memory
// held by quiesced-but-uncommitted checkpoints, and it guarantees the
// committer actually interleaves with execution even when every hardware
// thread is saturated by workers (without it, on a fully loaded host the
// committer can starve until the span quiesces, degenerating the pipeline
// back into a barrier). Depth 2 keeps one interval in flight in each stage
// plus one of slack.
const pipelineDepth = 2

// committer is the background validate/install/commit stage of one
// pipelined span. Exactly one committer goroutine runs per span.
type committer struct {
	sp *spanState
	// workers is the number of contributions that quiesce an interval.
	workers int
	// nIntervals is the span's checkpoint count.
	nIntervals int64

	// mu guards the fields below and pairs with cond: workers signal
	// contributions, flags and completion; the committer waits for interval
	// quiescence. Lock order: mu may be held while taking sp.flagMu (via
	// misspecInterval); the reverse never happens — sp.flag wakes the
	// committer only after releasing flagMu.
	mu   sync.Mutex
	cond *sync.Cond
	// contributed counts per-interval worker contributions.
	contributed []int
	// workersDone is set once every worker goroutine has returned: no more
	// contributions can arrive.
	workersDone bool
	// canceled aborts the committer (worker hard error).
	canceled bool
	// doneThrough counts intervals fully validated, installed, and
	// committed; workers throttle against it (see pipelineDepth).
	doneThrough int64
	// stopped is set when the committer goroutine exits, releasing any
	// worker still blocked in throttle.
	stopped bool

	// carried is the eager cross-interval validation state: collapsed
	// metadata per shadow page base, folded interval by interval. carriedMu
	// guards map insertion when one interval's fold is sharded.
	carried   map[uint64][]byte
	carriedMu sync.Mutex

	// lastInstalled is the newest checkpoint whose data has been installed
	// and whose output has been committed (nil if none). Written only by the
	// committer goroutine; read by the span only after <-done.
	lastInstalled *checkpoint
	// err is a hard (non-misspeculation) failure; same access discipline.
	err error
	// done closes when the committer goroutine exits.
	done chan struct{}
}

func newCommitter(sp *spanState, workers int, nIntervals int64) *committer {
	co := &committer{
		sp: sp, workers: workers, nIntervals: nIntervals,
		contributed: make([]int, nIntervals),
		carried:     map[uint64][]byte{},
		done:        make(chan struct{}),
	}
	co.cond = sync.NewCond(&co.mu)
	return co
}

// noteContribution records one worker contribution to interval c and wakes
// the committer. Workers call it after addWorkerState returns (and after
// flagging any merge violation, so the flag is visible before the interval
// appears quiesced).
func (co *committer) noteContribution(c int64) {
	co.mu.Lock()
	co.contributed[c]++
	quiesced := co.contributed[c] >= co.workers
	co.mu.Unlock()
	co.cond.Broadcast()
	if quiesced {
		// The interval just became consumable; yield the processor so the
		// committer can start on it promptly even when workers saturate
		// every hardware thread.
		runtime.Gosched()
	}
}

// throttle blocks a worker about to start interval c until the committer is
// within pipelineDepth intervals of it (or no longer running). See
// pipelineDepth for why the bound exists.
func (co *committer) throttle(c int64) {
	co.mu.Lock()
	defer co.mu.Unlock()
	for c-co.doneThrough > pipelineDepth && !co.stopped && !co.canceled {
		if co.sp.flagged.Load() {
			if mi := co.sp.misspecInterval(); mi >= 0 && mi <= c {
				return // the worker will squash at its next check
			}
		}
		co.cond.Wait()
	}
}

// wake re-evaluates the committer's wait condition (called by sp.flag).
func (co *committer) wake() { co.cond.Broadcast() }

// finishWorkers marks the worker fleet as joined: intervals that have not
// quiesced never will.
func (co *committer) finishWorkers() {
	co.mu.Lock()
	co.workersDone = true
	co.mu.Unlock()
	co.cond.Broadcast()
}

// cancel aborts the committer without further installs (hard error paths).
func (co *committer) cancel() {
	co.mu.Lock()
	co.canceled = true
	co.mu.Unlock()
	co.cond.Broadcast()
}

// waitQuiesced blocks until interval c has every worker's contribution and
// no misspeculation at or below c is flagged. It returns false when the
// committer should stop instead: cancellation, a flag at interval <= c, or
// worker completion without c quiescing (a squashed tail interval).
func (co *committer) waitQuiesced(c int64) bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	for {
		if co.canceled {
			return false
		}
		if co.sp.flagged.Load() {
			if mi := co.sp.misspecInterval(); mi >= 0 && mi <= c {
				return false
			}
		}
		if co.contributed[c] >= co.workers {
			return true
		}
		if co.workersDone {
			return false
		}
		co.cond.Wait()
	}
}

// overlapped reports whether workers are still executing (used to classify
// committer busy time as overlapped vs. drain).
func (co *committer) overlapped() bool {
	co.mu.Lock()
	defer co.mu.Unlock()
	return !co.workersDone
}

// validateInterval folds checkpoint cp's shadow pages into the carried
// cross-interval state and returns cp.id plus the faulting private-heap
// address on a violation, (-1, 0) when clean. The fold is sharded across
// goroutines by shadow-page range; pages fold independently, so the verdict
// does not depend on the sharding (the reported address is whichever
// violating page recorded first).
func (co *committer) validateInterval(cp *checkpoint) (int64, uint64) {
	carriedPage := func(base uint64) []byte {
		co.carriedMu.Lock()
		prev, have := co.carried[base]
		if !have {
			prev = make([]byte, vm.PageSize)
			co.carried[base] = prev
		}
		co.carriedMu.Unlock()
		return prev
	}
	shards := co.sp.rt.validateShards()
	if shards <= 1 || len(cp.shadow) < 2*shards {
		for base, sh := range cp.shadow {
			if off := carryValidatePage(carriedPage(base), sh); off >= 0 {
				return cp.id, (base &^ ir.ShadowBit) + uint64(off)
			}
		}
		return -1, 0
	}
	bases := make([]uint64, 0, len(cp.shadow))
	for base := range cp.shadow {
		bases = append(bases, base)
	}
	var violAddr uint64 // atomic CAS-once; 0 = clean
	var wg sync.WaitGroup
	chunk := (len(bases) + shards - 1) / shards
	for lo := 0; lo < len(bases); lo += chunk {
		hi := lo + chunk
		if hi > len(bases) {
			hi = len(bases)
		}
		wg.Add(1)
		go func(part []uint64) {
			defer wg.Done()
			for _, base := range part {
				if off := carryValidatePage(carriedPage(base), cp.shadow[base]); off >= 0 {
					addr := (base &^ ir.ShadowBit) + uint64(off)
					atomic.CompareAndSwapUint64(&violAddr, 0, addr)
				}
			}
		}(bases[lo:hi])
	}
	wg.Wait()
	if a := atomic.LoadUint64(&violAddr); a != 0 {
		return cp.id, a
	}
	return -1, 0
}

// run is the committer goroutine: consume quiesced intervals in order,
// eagerly validate, install, and commit each one.
func (co *committer) run() {
	defer close(co.done)
	// On any exit (clean, violation, cancellation) release workers blocked
	// in throttle.
	defer func() {
		co.mu.Lock()
		co.stopped = true
		co.mu.Unlock()
		co.cond.Broadcast()
	}()
	sp := co.sp
	rt := sp.rt
	tr := rt.Cfg.Trace
	for c := int64(0); c < co.nIntervals; c++ {
		if !co.waitQuiesced(c) {
			return
		}
		cp := sp.checkpointFor(c)
		busyStart := time.Now()
		tv := tr.Now()
		v, vaddr := co.validateInterval(cp)
		if tr.On() {
			tr.Emit(obs.Event{Kind: obs.KValidateEager, TimeNS: tv, DurNS: tr.Now() - tv,
				Invocation: sp.inv, Worker: -1, Iter: c, A: v})
		}
		if v >= 0 {
			// Cancel in-flight speculative intervals: the flag is observed
			// by every worker at its next iteration boundary. Recovery will
			// resume from lastInstalled.limit.
			sp.flag(cp.limit-1, -1, "privacy violated (cross-interval)", "", vaddr)
			tr.Instant(obs.Event{Kind: obs.KCancel,
				Invocation: sp.inv, Worker: -1, Iter: v,
				Cause: "privacy violated (cross-interval)"})
			return
		}
		bytes, err := cp.installOwnDataInto(rt.master.AS)
		if err != nil {
			co.err = err
			return
		}
		cost := bytes * SimInstallPerByte
		atomic.AddInt64(&rt.Sim.RegionTime, cost)
		atomic.AddInt64(&rt.Sim.CheckpointCost, cost)
		recs := rt.commitOne(cp)
		co.lastInstalled = cp
		co.mu.Lock()
		co.doneThrough = c + 1
		co.mu.Unlock()
		rt.noteIntervalDone(c + 1)
		co.cond.Broadcast()
		busy := int64(time.Since(busyStart))
		if co.overlapped() {
			atomic.AddInt64(&rt.Stats.OverlappedCommitNS, busy)
		}
		if tr.On() {
			tr.Emit(obs.Event{Kind: obs.KCommitAsync, TimeNS: tv, DurNS: tr.Now() - tv,
				Invocation: sp.inv, Worker: -1, Iter: c, A: bytes, B: recs})
		}
	}
}
