package specrt

// Live introspection: atomic Stats snapshots, misspeculation attribution
// (faulting address -> owning allocation site), the /spec JSON snapshot,
// and pull-style publication into an obs.Registry. Everything here is off
// the speculative hot path: sites register on master-side allocation,
// attribution happens only when a misspeculation is flagged, and metric
// collectors run only at scrape time.

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/vm"
)

// Snapshot returns an atomically loaded copy of the stats. Workers mutate
// every field with atomic adds while a region runs, so any reporting that
// may overlap execution (a /metrics scrape, the pipelined committer's
// overlap window) must read through here rather than copying the struct.
func (s *Stats) Snapshot() Stats {
	return Stats{
		Invocations:         atomic.LoadInt64(&s.Invocations),
		Checkpoints:         atomic.LoadInt64(&s.Checkpoints),
		Misspecs:            atomic.LoadInt64(&s.Misspecs),
		Recoveries:          atomic.LoadInt64(&s.Recoveries),
		SequentialFallbacks: atomic.LoadInt64(&s.SequentialFallbacks),
		PrivReadBytes:       atomic.LoadInt64(&s.PrivReadBytes),
		PrivWriteBytes:      atomic.LoadInt64(&s.PrivWriteBytes),
		PrivReadChecks:      atomic.LoadInt64(&s.PrivReadChecks),
		PrivWriteChecks:     atomic.LoadInt64(&s.PrivWriteChecks),
		SeparationChecks:    atomic.LoadInt64(&s.SeparationChecks),
		Predictions:         atomic.LoadInt64(&s.Predictions),
		DeferredIO:          atomic.LoadInt64(&s.DeferredIO),
		ProvenRangeBytes:    atomic.LoadInt64(&s.ProvenRangeBytes),
		SepAuditViolations:  atomic.LoadInt64(&s.SepAuditViolations),
		WarmSpawns:          atomic.LoadInt64(&s.WarmSpawns),
		SpawnNS:             atomic.LoadInt64(&s.SpawnNS),
		JoinNS:              atomic.LoadInt64(&s.JoinNS),
		CheckpointNS:        atomic.LoadInt64(&s.CheckpointNS),
		PrivReadNS:          atomic.LoadInt64(&s.PrivReadNS),
		PrivWriteNS:         atomic.LoadInt64(&s.PrivWriteNS),
		WorkerBusyNS:        atomic.LoadInt64(&s.WorkerBusyNS),
		RegionWallNS:        atomic.LoadInt64(&s.RegionWallNS),
		OverlappedCommitNS:  atomic.LoadInt64(&s.OverlappedCommitNS),
	}
}

// misspecKey identifies one row of the misspeculation attribution table.
type misspecKey struct {
	region string
	cause  string
	site   string
	object string
}

// trackSite records [addr, addr+size) as owned by the named allocation
// site. Called for master-side allocations and globals only.
func (rt *RT) trackSite(addr, size uint64, name string) {
	if addr == 0 || size == 0 {
		return
	}
	rt.siteMu.Lock()
	rt.siteMap.Insert(addr, addr+size, name)
	rt.siteMu.Unlock()
}

// untrackSite drops the allocation owning addr, if tracked.
func (rt *RT) untrackSite(addr uint64) {
	rt.siteMu.Lock()
	rt.siteMap.Remove(addr)
	rt.siteMu.Unlock()
}

// siteFor attributes a faulting address to its owning allocation site, or
// to "<heap>:?" when the owner is unknown (worker-local allocations are
// not tracked).
func (rt *RT) siteFor(addr uint64) string {
	rt.siteMu.Lock()
	name, ok := rt.siteMap.Lookup(addr)
	rt.siteMu.Unlock()
	if ok {
		return name
	}
	return ir.HeapOf(addr).String() + ":?"
}

// noteMisspec aggregates one detected misspeculation into the per-site
// table. addr is the faulting address (0 when the violation has no
// specific location, e.g. injected misspeculation).
func (rt *RT) noteMisspec(region, cause, site string, addr uint64) {
	obj := ""
	if addr != 0 {
		obj = rt.siteFor(addr)
	}
	k := misspecKey{region: region, cause: cause, site: site, object: obj}
	rt.missMu.Lock()
	rt.missTable[k]++
	rt.missMu.Unlock()
}

// MisspecSiteRow is one aggregated misspeculation-attribution row: how
// often a given cause fired for a given owning object, and where.
type MisspecSiteRow struct {
	// Region is the parallel region function the misspeculation occurred in.
	Region string `json:"region"`
	// Cause is the violated speculative property.
	Cause string `json:"cause"`
	// Site is the IR instruction that detected the violation, if any.
	Site string `json:"site,omitempty"`
	// Object names the allocation site (or global) owning the faulting
	// address; "<heap>:?" when unknown, "" when the cause has no address.
	Object string `json:"object,omitempty"`
	// Count is the number of misspeculations attributed to this row.
	Count int64 `json:"count"`
}

// MisspecSites returns the aggregated misspeculation attribution table,
// most frequent first.
func (rt *RT) MisspecSites() []MisspecSiteRow {
	rt.missMu.Lock()
	rows := make([]MisspecSiteRow, 0, len(rt.missTable))
	for k, n := range rt.missTable {
		rows = append(rows, MisspecSiteRow{
			Region: k.region, Cause: k.cause, Site: k.site, Object: k.object, Count: n,
		})
	}
	rt.missMu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if a.Count != b.Count {
			return a.Count > b.Count
		}
		if a.Region != b.Region {
			return a.Region < b.Region
		}
		if a.Cause != b.Cause {
			return a.Cause < b.Cause
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Site < b.Site
	})
	return rows
}

// FormatMisspecSites renders the attribution table for terminal output
// (the privateer -why-misspec report).
func FormatMisspecSites(rows []MisspecSiteRow) string {
	if len(rows) == 0 {
		return "no misspeculations recorded\n"
	}
	var sb strings.Builder
	sb.WriteString("Misspeculations by allocation site\n\n")
	header := []string{"count", "region", "cause", "object", "site"}
	widths := make([]int, len(header))
	cells := make([][]string, 0, len(rows))
	for _, r := range rows {
		cells = append(cells, []string{
			fmt.Sprintf("%d", r.Count), r.Region, r.Cause, r.Object, r.Site,
		})
	}
	for i, h := range header {
		widths[i] = len(h)
		for _, row := range cells {
			if len(row[i]) > widths[i] {
				widths[i] = len(row[i])
			}
		}
	}
	writeRow := func(row []string) {
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	for i := range header {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteString("\n")
	for _, row := range cells {
		writeRow(row)
	}
	return sb.String()
}

// noteIntervalStart publishes that some worker began interval c (the live
// pipeline-depth numerator).
func (rt *RT) noteIntervalStart(c int64) {
	for {
		cur := atomic.LoadInt64(&rt.curInterval)
		if c+1 <= cur || atomic.CompareAndSwapInt64(&rt.curInterval, cur, c+1) {
			return
		}
	}
}

// noteIntervalDone publishes the committer's retired-interval count (the
// live pipeline-depth denominator).
func (rt *RT) noteIntervalDone(done int64) {
	atomic.StoreInt64(&rt.doneInterval, done)
}

// resetIntervalDepth zeroes the live depth counters at span end.
func (rt *RT) resetIntervalDepth() {
	atomic.StoreInt64(&rt.curInterval, 0)
	atomic.StoreInt64(&rt.doneInterval, 0)
}

// pipelineDepthNow returns the number of checkpoint intervals currently in
// flight between workers and the background committer (0 outside spans and
// in synchronous mode).
func (rt *RT) pipelineDepthNow() int64 {
	if !rt.Cfg.Pipeline {
		return 0
	}
	d := atomic.LoadInt64(&rt.curInterval) - atomic.LoadInt64(&rt.doneInterval)
	if d < 0 {
		d = 0
	}
	return d
}

// SpecSnapshot is the live speculation-state document served at /spec.
type SpecSnapshot struct {
	// Stats is an atomic snapshot of the runtime counters.
	Stats Stats `json:"stats"`
	// Heaps is the master space's per-heap occupancy, in heap-tag order.
	Heaps []vm.HeapOcc `json:"heaps"`
	// Workers is the configured worker count.
	Workers int `json:"workers"`
	// Pipeline reports whether the background committer is enabled.
	Pipeline bool `json:"pipeline"`
	// PipelineDepth is the number of checkpoint intervals currently in
	// flight between workers and the committer.
	PipelineDepth int64 `json:"pipeline_depth"`
	// MisspecRate is detected misspeculations per constructed checkpoint.
	MisspecRate float64 `json:"misspec_rate"`
	// MisspecSites is the attribution table, most frequent first.
	MisspecSites []MisspecSiteRow `json:"misspec_sites"`
}

// SpecSnapshot assembles the live speculation-state document. Safe to call
// from a scrape goroutine while a region executes.
func (rt *RT) SpecSnapshot() SpecSnapshot {
	st := rt.Stats.Snapshot()
	rate := 0.0
	if st.Checkpoints > 0 {
		rate = float64(st.Misspecs) / float64(st.Checkpoints)
	}
	return SpecSnapshot{
		Stats:         st,
		Heaps:         rt.occ.Snapshot(),
		Workers:       rt.Cfg.Workers,
		Pipeline:      rt.Cfg.Pipeline,
		PipelineDepth: rt.pipelineDepthNow(),
		MisspecRate:   rate,
		MisspecSites:  rt.MisspecSites(),
	}
}

// latestRT tracks the most recently constructed metrics-enabled runtime:
// the one a live scrape should observe. Collectors and LatestSpec follow
// it, so long-lived introspection servers (privateer-bench -serve) always
// report the current run.
var latestRT atomic.Pointer[RT]

// publishedRegistries remembers which registries already carry the
// runtime's collectors, so constructing many runtimes against one registry
// (a benchmark suite) does not stack duplicate collectors.
var publishedRegistries sync.Map

// LatestSpec returns the newest metrics-enabled runtime's SpecSnapshot,
// or an empty document when none exists yet. It is the provider wired into
// obs.Server's /spec endpoint.
func LatestSpec() any {
	rt := latestRT.Load()
	if rt == nil {
		return struct{}{}
	}
	return rt.SpecSnapshot()
}

// publishMetrics registers the runtime's pull-style collectors on reg. The
// instrumented code pays nothing between scrapes: collectors read the
// runtime's atomics when /metrics or /vars is served. Histogram handles
// are per-runtime; the collector set is installed once per registry and
// follows latestRT.
func (rt *RT) publishMetrics(reg *obs.Registry) {
	rt.histRegionWall = reg.Histogram("privateer_region_wall_ns",
		"Wall-clock nanoseconds per parallel-region invocation.", nil)
	rt.histInstall = reg.Histogram("privateer_install_bytes",
		"Bytes applied to the master state per checkpoint install.", nil)
	if _, dup := publishedRegistries.LoadOrStore(reg, true); dup {
		return
	}

	type statCol struct {
		c   obs.Counter
		get func(*Stats) int64
	}
	mk := func(name, help string, get func(*Stats) int64) statCol {
		return statCol{reg.Counter("privateer_"+name, help), get}
	}
	cols := []statCol{
		mk("invocations_total", "Parallel-region entries.",
			func(s *Stats) int64 { return s.Invocations }),
		mk("checkpoints_total", "Checkpoint objects constructed.",
			func(s *Stats) int64 { return s.Checkpoints }),
		mk("misspeculations_total", "Detected misspeculations, including injected.",
			func(s *Stats) int64 { return s.Misspecs }),
		mk("recoveries_total", "Sequential recovery episodes.",
			func(s *Stats) int64 { return s.Recoveries }),
		mk("sequential_fallbacks_total", "Invocations abandoned to sequential execution.",
			func(s *Stats) int64 { return s.SequentialFallbacks }),
		mk("priv_read_bytes_total", "Privacy-checked read volume.",
			func(s *Stats) int64 { return s.PrivReadBytes }),
		mk("priv_write_bytes_total", "Privacy-checked write volume.",
			func(s *Stats) int64 { return s.PrivWriteBytes }),
		mk("priv_read_checks_total", "Dynamic privacy read checks.",
			func(s *Stats) int64 { return s.PrivReadChecks }),
		mk("priv_write_checks_total", "Dynamic privacy write checks.",
			func(s *Stats) int64 { return s.PrivWriteChecks }),
		mk("separation_checks_total", "Dynamic heap-separation checks.",
			func(s *Stats) int64 { return s.SeparationChecks }),
		mk("predictions_total", "Dynamic value-prediction checks.",
			func(s *Stats) int64 { return s.Predictions }),
		mk("deferred_io_total", "Buffered output operations.",
			func(s *Stats) int64 { return s.DeferredIO }),
		mk("proven_range_bytes_total", "Bytes wholesale-installed from statically-privatized ranges.",
			func(s *Stats) int64 { return s.ProvenRangeBytes }),
		mk("sep_audit_violations_total", "Static separation claims contradicted by the SepAudit oracle.",
			func(s *Stats) int64 { return s.SepAuditViolations }),
		mk("warm_spawns_total", "Worker spawns satisfied from the warmed pool.",
			func(s *Stats) int64 { return s.WarmSpawns }),
		mk("spawn_ns_total", "Wall-clock worker spawn time.",
			func(s *Stats) int64 { return s.SpawnNS }),
		mk("join_ns_total", "Master-side validate/install/commit critical path.",
			func(s *Stats) int64 { return s.JoinNS }),
		mk("checkpoint_ns_total", "Wall-clock worker checkpoint-merge time.",
			func(s *Stats) int64 { return s.CheckpointNS }),
		mk("worker_busy_ns_total", "Total wall-clock worker execution time.",
			func(s *Stats) int64 { return s.WorkerBusyNS }),
		mk("region_wall_ns_total", "Wall-clock time inside parallel regions.",
			func(s *Stats) int64 { return s.RegionWallNS }),
		mk("overlapped_commit_ns_total", "Committer work overlapped with execution.",
			func(s *Stats) int64 { return s.OverlappedCommitNS }),
	}

	var liveBytes, liveObjs, allocBytes [ir.NumHeaps]obs.Gauge
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		name := h.String()
		liveBytes[h] = reg.Gauge("privateer_heap_live_bytes",
			"Live (rounded) bytes per logical heap of the master space.", "heap", name)
		liveObjs[h] = reg.Gauge("privateer_heap_live_objects",
			"Live allocations per logical heap of the master space.", "heap", name)
		allocBytes[h] = reg.Gauge("privateer_heap_alloc_bytes_total",
			"Cumulative bytes ever allocated per logical heap of the master space.", "heap", name)
	}
	type vmStatCol struct {
		c   obs.Counter
		get func(*vm.Stats) *int64
	}
	mkvm := func(name, help string, get func(*vm.Stats) *int64) vmStatCol {
		return vmStatCol{reg.Counter("privateer_vm_"+name, help), get}
	}
	vmCols := []vmStatCol{
		mkvm("pages_mapped_total", "Demand-zero page instantiations (master space and its worker fleet).",
			func(s *vm.Stats) *int64 { return &s.PagesMapped }),
		mkvm("pages_copied_total", "Copy-on-write page duplications (master space and its worker fleet).",
			func(s *vm.Stats) *int64 { return &s.PagesCopied }),
		mkvm("nodes_copied_total", "Radix page-table nodes path-copied by range-COW splits.",
			func(s *vm.Stats) *int64 { return &s.NodesCopied }),
		mkvm("summary_hits_total", "Subtrees skipped outright by dirty-summary-guided page walks.",
			func(s *vm.Stats) *int64 { return &s.SummaryHits }),
	}
	ptResident := reg.Gauge("privateer_vm_resident_pages",
		"Instantiated pages in the master radix page table (refreshed at invocation boundaries).")
	ptNodes := reg.Gauge("privateer_vm_radix_nodes",
		"Reachable radix page-table nodes of the master space (refreshed at invocation boundaries).")
	ptDirty := reg.Gauge("privateer_vm_dirty_pages",
		"Master pages dirtied since its last clone (refreshed at invocation boundaries).")
	depth := reg.Gauge("privateer_pipeline_depth",
		"Checkpoint intervals in flight between workers and the committer.")
	reg.GaugeFunc("privateer_misspec_rate",
		"Detected misspeculations per constructed checkpoint.", func() float64 {
			rt := latestRT.Load()
			if rt == nil {
				return 0
			}
			st := rt.Stats.Snapshot()
			if st.Checkpoints == 0 {
				return 0
			}
			return float64(st.Misspecs) / float64(st.Checkpoints)
		})

	reg.RegisterCollector(func() {
		rt := latestRT.Load()
		if rt == nil {
			return
		}
		st := rt.Stats.Snapshot()
		for _, sc := range cols {
			sc.c.Set(sc.get(&st))
		}
		for i, row := range rt.occ.Snapshot() {
			liveBytes[i].Set(row.LiveBytes)
			liveObjs[i].Set(row.LiveObjects)
			allocBytes[i].Set(row.AllocBytes)
		}
		if vs := rt.vmStats.Load(); vs != nil {
			for _, sc := range vmCols {
				sc.c.Set(atomic.LoadInt64(sc.get(vs)))
			}
		}
		if pt := rt.ptStats.Load(); pt != nil {
			ptResident.Set(pt.ResidentPages)
			ptNodes.Set(pt.Nodes)
			ptDirty.Set(pt.DirtyPages)
		}
		depth.Set(rt.pipelineDepthNow())
		for _, ri := range rt.regions {
			ts := ri.TStats
			for _, c := range []struct {
				name string
				n    int
			}{
				{"joined", ts.Joined},
				{"eliminated", ts.Eliminated},
				{"invariant", ts.InvPromoted},
				{"dense", ts.DensePromoted},
				{"sparse", ts.SparsePromoted},
				{"redundant_uo", ts.HeapRedundantUO},
			} {
				reg.Counter("privateer_postprocess_sites_total",
					"Check sites rewritten by the transform postprocess pass, by category (static).",
					"region", ri.Outline.LoopName, "category", c.name).Set(int64(c.n))
			}
			for _, c := range []struct {
				name string
				n    int
			}{
				{"checks_discharged", ts.StaticProven},
				{"priv_marks_dropped", ts.StaticPrivMarksDropped},
				{"redux_marks_dropped", ts.StaticReduxMarksDropped},
			} {
				reg.Counter("privateer_static_sep_total",
					"Dynamic machinery discharged by the static separation prover, by category (static).",
					"region", ri.Outline.LoopName, "category", c.name).Set(int64(c.n))
			}
		}
		for _, r := range rt.MisspecSites() {
			reg.Counter("privateer_misspec_site_total",
				"Misspeculations attributed to one owning allocation site.",
				"region", r.Region, "cause", r.Cause,
				"object", r.Object, "site", r.Site).Set(r.Count)
		}
		if p := rt.Cfg.OpProf; p != nil {
			for _, r := range p.Ops() {
				reg.Counter("privateer_op_executed_total",
					"Estimated executed instructions per opcode (sampling profiler).",
					"op", r.Op).Set(r.Executed)
				reg.Counter("privateer_op_sampled_ns_total",
					"Sampled wall time attributed per opcode.",
					"op", r.Op).Set(r.SampledNS)
			}
			for _, f := range p.Funcs() {
				reg.Counter("privateer_fn_calls_total",
					"Completed activations per IR function.", "fn", f.Fn).Set(f.Calls)
				reg.Counter("privateer_fn_steps_total",
					"Inclusive executed instructions per IR function.", "fn", f.Fn).Set(f.Steps)
				reg.Counter("privateer_fn_sampled_ns_total",
					"Sampled wall time attributed per IR function.", "fn", f.Fn).Set(f.SampledNS)
			}
		}
	})
}
