package specrt

// Simulated-time cost model.
//
// The paper measures wall-clock time on a 24-core Xeon. This reproduction
// interprets IR, and the build/evaluation host may have any number of cores
// (including one), so wall-clock scaling would measure the host, not the
// system. Instead the runtime accounts deterministic *simulated time* in
// units of interpreted instructions ("steps"):
//
//   - each executed IR instruction costs 1 step;
//   - runtime services cost the constants below, calibrated to the
//     relative magnitudes the paper reports (fork-based spawn is expensive,
//     inline privacy checks cost a few instructions per byte, checkpoint
//     merging scans shadow pages);
//   - a parallel span's simulated time is
//     spawn + max over workers(steps + validation costs) + install/commit,
//     i.e. workers genuinely overlap and the slowest worker plus the
//     serial sections bound the region (Amdahl accounting);
//   - sequential recovery executes serially and adds its steps directly.
//
// Whole-program speedup (Figures 6, 7, 9) is then
// steps(best sequential) / simulated-time(parallel), a deterministic,
// host-independent quantity whose *shape* tracks the paper's wall-clock
// results.
const (
	// SimSpawnPerWorker models fork latency and address-space setup.
	SimSpawnPerWorker = 2500
	// SimJoinPerWorker models worker-completed signalling.
	SimJoinPerWorker = 400
	// SimPrivacyPerByte is the inline shadow-metadata update per private
	// byte accessed.
	SimPrivacyPerByte = 2
	// SimCheckpointPerByte is the merge cost per shadow byte scanned while
	// adding worker state to a checkpoint.
	SimCheckpointPerByte = 1
	// SimSeparationCheck is the pointer tag test (a few bit operations).
	SimSeparationCheck = 2
	// SimPredict is a value-prediction comparison.
	SimPredict = 2
	// SimShortLivedCheck is the per-iteration live-object count check.
	SimShortLivedCheck = 3
	// SimInstallPerByte is the cost of installing checkpoint bytes into
	// the main process (page-map manipulation amortized per byte).
	SimInstallPerByte = 1
	// SimCommitPerIO is the cost of committing one deferred output
	// operation.
	SimCommitPerIO = 20
)

// SimStats aggregates the simulated-time accounting of a run, for the
// speedup figures and the Figure 8 overhead breakdown.
type SimStats struct {
	// RegionTime is the simulated time of all parallel invocations.
	RegionTime int64
	// RegionCapacity is Σ workers × span time: the total computational
	// capacity of Figure 8.
	RegionCapacity int64
	// UsefulSteps is Σ over workers of interpreted instructions (the
	// original program's work).
	UsefulSteps int64
	// PrivReadCost is the simulated privacy-validation cost of reads.
	PrivReadCost int64
	// PrivWriteCost is the simulated privacy-validation cost of writes.
	PrivWriteCost int64
	// CheckpointCost is the simulated merge + install + commit cost.
	CheckpointCost int64
	// OtherCheckCost covers separation checks, predictions and
	// short-lived counting.
	OtherCheckCost int64
	// SpawnCost is the simulated fork cost.
	SpawnCost int64
	// RecoverySteps counts serial recovery re-execution.
	RecoverySteps int64
	// SeqSteps counts master-process execution outside parallel regions.
	SeqSteps int64
}

// Time returns the whole program's simulated execution time.
func (s *SimStats) Time() int64 { return s.SeqSteps + s.RegionTime + s.RecoverySteps }

// IdleCost returns the capacity lost to spawn latency, imbalance, join and
// serial sections inside regions: Figure 8's "Spawn/Join" category.
func (s *SimStats) IdleCost() int64 {
	used := s.UsefulSteps + s.PrivReadCost + s.PrivWriteCost +
		s.CheckpointCost + s.OtherCheckCost
	idle := s.RegionCapacity - used
	if idle < 0 {
		idle = 0
	}
	return idle
}
