package specrt

import (
	"fmt"
	"math"

	"privateer/internal/ir"
)

// Shadow metadata codes (section 5.1). Every byte of private memory has a
// corresponding shadow byte holding one of these codes; timestamps encode
// the iteration relative to the last checkpoint.
const (
	// MetaLiveIn marks a byte untouched since the parallel region began.
	MetaLiveIn byte = 0
	// MetaOldWrite marks a byte written before the last checkpoint.
	MetaOldWrite byte = 1
	// MetaReadLiveIn marks a byte whose live-in value was read; full
	// validation is deferred to the next checkpoint.
	MetaReadLiveIn byte = 2
	// MetaTSBase is the timestamp of the first iteration after a
	// checkpoint: code 3+(i-i0).
	MetaTSBase byte = 3
)

// MaxCheckpointPeriod bounds iterations per checkpoint so that timestamps
// fit a byte: the paper triggers a checkpoint at least every 253 iterations.
const MaxCheckpointPeriod = 253

// TimestampFor encodes iteration iter relative to checkpoint base i0.
func TimestampFor(iter, i0 int64) byte { return byte(MetaTSBase + byte(iter-i0)) }

// wordHasTS reports whether any byte of the little-endian metadata word w
// is a timestamp (>= MetaTSBase). Bulk shadow scans use it to skip eight
// untouched-or-old-write bytes at a time: the first term catches any byte
// with a bit above position 1 set (value >= 4), the second catches the
// only remaining >= 3 pattern, 0b11. The shifted cross-lane bits cannot
// produce a false positive because they land outside the 0x01 lane mask
// unless bit 1 of the same byte is set.
func wordHasTS(w uint64) bool {
	return w&0xFCFCFCFCFCFCFCFC != 0 || w&(w>>1)&0x0101010101010101 != 0
}

// wordTouched reports whether any byte of the little-endian metadata word
// w records a speculative access (anything but MetaLiveIn=0b00 and
// MetaOldWrite=0b01): some byte has a bit above position 0 set.
func wordTouched(w uint64) bool {
	return w&0xFEFEFEFEFEFEFEFE != 0
}

// ReadTransition implements the "Read" rows of Table 2: given the byte's
// metadata and the current iteration timestamp, it returns the new metadata
// and whether the access misspeculates (a loop-carried flow dependence was
// observed, or would be unverifiable).
func ReadTransition(meta, ts byte) (byte, bool) {
	switch meta {
	case MetaLiveIn:
		return MetaReadLiveIn, false // read a live-in value
	case MetaOldWrite:
		return meta, true // loop-carried flow dependence
	case MetaReadLiveIn:
		return MetaReadLiveIn, false // read a live-in value again
	default:
		if meta == ts {
			return meta, false // intra-iteration (private) flow
		}
		return meta, true // 2 < a < ts: loop-carried flow dependence
	}
}

// WriteTransition implements the "Write" rows of Table 2.
func WriteTransition(meta, ts byte) (byte, bool) {
	switch meta {
	case MetaLiveIn, MetaOldWrite:
		return ts, false // overwrite a live-in value / an old write
	case MetaReadLiveIn:
		// Overwriting a byte that looked live-in cannot be verified
		// without inter-worker communication; conservatively misspeculate
		// (the paper's acknowledged potential false positive).
		return ts, true
	default:
		return ts, false // overwrite a recent write
	}
}

// ResetMeta implements the checkpoint reset: timestamps collapse to
// old-write, the other codes persist.
func ResetMeta(meta byte) byte {
	if meta >= MetaTSBase {
		return MetaOldWrite
	}
	return meta
}

// MergeByte applies one worker's shadow summary for a byte onto a
// checkpoint's combined view, using the same transition rules (the second
// phase of privacy validation, section 5.2). It returns the new combined
// metadata, whether the worker's data value should replace the checkpoint's,
// and whether the merge detects a violation.
func MergeByte(combined, workerMeta byte) (newMeta byte, takeData, misspec bool) {
	switch workerMeta {
	case MetaLiveIn, MetaOldWrite:
		// Untouched this interval, or already merged at an earlier
		// checkpoint: nothing to add.
		return combined, false, false
	case MetaReadLiveIn:
		// The worker read this byte as live-in; if any other contribution
		// wrote it, privacy cannot be guaranteed.
		if combined == MetaOldWrite || combined >= MetaTSBase {
			return combined, false, true
		}
		return MetaReadLiveIn, false, false
	default: // a timestamp
		if combined == MetaReadLiveIn {
			// Another worker read the live-in value this interval.
			return combined, false, true
		}
		if combined < MetaTSBase || workerMeta >= combined {
			// First write, or a later iteration's write: take the data.
			return workerMeta, true, false
		}
		// An already-merged later iteration wins; drop this write.
		return combined, false, false
	}
}

// Identity returns the identity element bytes for a reduction operator at
// the given element size.
func Identity(op ir.ReduxKind, elemSize int64) ([]byte, error) {
	buf := make([]byte, elemSize)
	switch op {
	case ir.ReduxAddI64, ir.ReduxAddF64:
		return buf, nil // zero
	case ir.ReduxMinI64:
		putUint(buf, uint64(math.MaxInt64))
	case ir.ReduxMaxI64:
		putUint(buf, uint64(uint64(1)<<63)) // MinInt64 bit pattern
	case ir.ReduxMinF64:
		putUint(buf, math.Float64bits(math.Inf(1)))
	case ir.ReduxMaxF64:
		putUint(buf, math.Float64bits(math.Inf(-1)))
	default:
		return nil, fmt.Errorf("specrt: no identity for reduction op %s", op)
	}
	return buf, nil
}

// Combine folds src into dst elementwise with the reduction operator.
func Combine(op ir.ReduxKind, elemSize int64, dst, src []byte) error {
	if len(dst) != len(src) || len(dst)%int(elemSize) != 0 {
		return fmt.Errorf("specrt: combine size mismatch: %d vs %d (elem %d)",
			len(dst), len(src), elemSize)
	}
	for off := 0; off < len(dst); off += int(elemSize) {
		d := getUint(dst[off : off+int(elemSize)])
		s := getUint(src[off : off+int(elemSize)])
		var r uint64
		switch op {
		case ir.ReduxAddI64:
			r = d + s
		case ir.ReduxAddF64:
			r = math.Float64bits(math.Float64frombits(d) + math.Float64frombits(s))
		case ir.ReduxMinI64:
			r = uint64(minI64(int64(d), int64(s)))
		case ir.ReduxMaxI64:
			r = uint64(maxI64(int64(d), int64(s)))
		case ir.ReduxMinF64:
			r = math.Float64bits(math.Min(math.Float64frombits(d), math.Float64frombits(s)))
		case ir.ReduxMaxF64:
			r = math.Float64bits(math.Max(math.Float64frombits(d), math.Float64frombits(s)))
		default:
			return fmt.Errorf("specrt: cannot combine with op %s", op)
		}
		putUint(dst[off:off+int(elemSize)], r)
	}
	return nil
}

func putUint(b []byte, v uint64) {
	for i := range b {
		b[i] = byte(v >> (8 * i))
	}
}

func getUint(b []byte) uint64 {
	var v uint64
	for i := range b {
		v |= uint64(b[i]) << (8 * i)
	}
	// Sign-extension is unnecessary: operations are performed at the
	// element width for adds (wrap-around matches), and min/max users in
	// this codebase use full 8-byte elements.
	return v
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
