package transform

import (
	"testing"

	"privateer/internal/analysis"
	"privateer/internal/classify"
	"privateer/internal/deps"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/profiling"
	"privateer/internal/vm"
)

// buildDijkstraLike builds a miniature of the paper's Figure 2: a reused
// queue head, a reused table initialized every iteration, a read-only input
// array, short-lived nodes and deferred output.
func buildDijkstraLike(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("mini")
	const n = 6
	table := m.NewGlobal("table", n*8)
	input := m.NewGlobal("input", n*8)
	for i := 0; i < n; i++ {
		input.Init = append(input.Init, byte(i+1), 0, 0, 0, 0, 0, 0, 0)
	}
	head := m.NewGlobal("head", 8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("src", b.I(0), b.I(n), func(sv *ir.Instr) {
		// init table
		b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
			slot := b.Add(b.Global(table), b.Mul(b.Ld(iv), b.I(8)))
			b.Store(b.I(1000000), slot, 8)
		})
		// push one node; node->next = head reads the queue pointer left
		// NULL by the previous iteration (the paper's enqueueQ pattern),
		// a carried flow dependence removed by value prediction.
		node := b.Malloc("node", b.I(16))
		b.Store(b.Ld(sv), node, 8)
		b.Store(b.LoadPtr(b.Global(head)), b.Add(node, b.I(8)), 8)
		b.Store(node, b.Global(head), 8)
		// drain queue
		b.While(func() ir.Value { return b.Ne(b.LoadPtr(b.Global(head)), b.P(0)) }, func() {
			cur := b.LoadPtr(b.Global(head))
			v := b.Load(cur, 8)
			slot := b.Add(b.Global(table), b.Mul(b.SRem(v, b.I(n)), b.I(8)))
			b.Store(b.Load(b.Add(b.Global(input), b.Mul(b.SRem(v, b.I(n)), b.I(8))), 8), slot, 8)
			b.Store(b.P(0), b.Global(head), 8)
			b.Free(cur)
		})
		b.Print("%d\n", b.Load(b.Global(table), 8))
	})
	b.Ret(b.Load(b.Global(table), 8))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

// pipeline runs profile→classify→plan→transform on main's outer loop.
func pipeline(t *testing.T, m *ir.Module) *Result {
	t.Helper()
	prof, err := profiling.Run(m)
	if err != nil {
		t.Fatalf("profiling: %v", err)
	}
	var outer *ir.Loop
	for _, l := range prof.AllLoops {
		if l.Depth == 1 && l.Header.Fn.Name == "main" {
			outer = l
		}
	}
	if outer == nil {
		t.Fatal("no outer loop")
	}
	a := classify.Classify(outer, prof)
	plan := deps.SpeculativeBlockers(outer, prof, a)
	if len(plan.Blockers) > 0 {
		t.Fatalf("blockers: %v\nassignment:\n%s", plan.Blockers, a)
	}
	pt := analysis.ComputePointsTo(m)
	res, err := Apply(m, outer, prof, a, plan, pt)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return res
}

func TestTransformInsertsChecksAndMovesAllocation(t *testing.T) {
	m := buildDijkstraLike(t)
	res := pipeline(t, m)
	st := res.Stats
	if st.GlobalsMoved < 3 {
		t.Errorf("globals moved = %d, want >= 3", st.GlobalsMoved)
	}
	if st.AllocSitesReplaced < 1 {
		t.Errorf("alloc sites replaced = %d, want >= 1", st.AllocSitesReplaced)
	}
	if st.PrivacyReads == 0 || st.PrivacyWrites == 0 {
		t.Errorf("privacy checks missing: reads=%d writes=%d", st.PrivacyReads, st.PrivacyWrites)
	}
	if st.SeparationChecks+st.SeparationElided == 0 {
		t.Error("no separation checks considered")
	}
	if st.Predicts == 0 {
		t.Error("no value-prediction checks inserted (head should be predictable)")
	}
	// The malloc site must now be an h_alloc into the short-lived heap.
	foundHAlloc := false
	m.Funcs["main"].Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpHAlloc && in.Heap == ir.HeapShortLived {
			foundHAlloc = true
		}
	})
	if !foundHAlloc {
		t.Error("node malloc not rewritten into short-lived h_alloc")
	}
}

func TestTransformedModuleRunsSequentially(t *testing.T) {
	// The transformed program, run sequentially with default hooks (checks
	// validate against real tags, predictions hold), must produce the
	// same result and output as the original.
	orig := buildDijkstraLike(t)
	itOrig := interp.New(orig, vm.NewAddressSpace())
	wantVal, err := itOrig.Run()
	if err != nil {
		t.Fatalf("original run: %v", err)
	}
	wantOut := itOrig.Out.String()

	m := buildDijkstraLike(t)
	pipeline(t, m)
	it := interp.New(m, vm.NewAddressSpace())
	gotVal, err := it.Run()
	if err != nil {
		t.Fatalf("transformed run: %v", err)
	}
	if gotVal != wantVal {
		t.Errorf("transformed result %d, want %d", gotVal, wantVal)
	}
	if it.Out.String() != wantOut {
		t.Errorf("transformed output %q, want %q", it.Out.String(), wantOut)
	}
}

func TestTransformRejectsBlockedLoop(t *testing.T) {
	// A genuine recurrence must be rejected by Apply.
	m := ir.NewModule("recur")
	tbl := m.NewGlobal("tbl", 65*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(1), b.I(64), func(iv *ir.Instr) {
		prev := b.Add(b.Global(tbl), b.Mul(b.Sub(b.Ld(iv), b.I(1)), b.I(8)))
		cur := b.Add(b.Global(tbl), b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Add(b.Load(prev, 8), b.I(1)), cur, 8)
	})
	b.Ret(b.Load(b.Global(tbl), 8))
	ir.PromoteAllocas(f)
	prof, err := profiling.Run(m)
	if err != nil {
		t.Fatal(err)
	}
	var outer *ir.Loop
	for _, l := range prof.AllLoops {
		if l.Depth == 1 {
			outer = l
		}
	}
	a := classify.Classify(outer, prof)
	plan := deps.SpeculativeBlockers(outer, prof, a)
	pt := analysis.ComputePointsTo(m)
	if _, err := Apply(m, outer, prof, a, plan, pt); err == nil {
		t.Error("Apply accepted a loop with blockers")
	}
}

func TestColdBlockGuards(t *testing.T) {
	m := ir.NewModule("cold")
	data := m.NewGlobal("data", 8*8)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(8), func(iv *ir.Instr) {
		slot := b.Add(b.Global(data), b.Mul(b.Ld(iv), b.I(8)))
		b.Store(b.Ld(iv), slot, 8)
		b.If(b.SGt(b.Ld(iv), b.I(100)), func() {
			b.Store(b.I(-1), b.Global(data), 8) // cold path
		}, nil)
	})
	b.Ret(b.Load(b.Global(data), 8))
	ir.PromoteAllocas(f)
	res := pipeline(t, m)
	if res.Stats.ColdGuards == 0 {
		t.Error("cold branch not guarded")
	}
	// Sequentially the cold path is still never taken, so execution works.
	it := interp.New(m, vm.NewAddressSpace())
	if _, err := it.Run(); err != nil {
		t.Errorf("transformed run failed: %v", err)
	}
}

func TestStackArrayPrivatization(t *testing.T) {
	// An alvinn-style stack array written then read each iteration, living
	// in a helper called from the loop.
	m := ir.NewModule("stack")
	out := m.NewGlobal("out", 8)
	helper := m.NewFunc("work", ir.I64)
	hp := helper.NewParam("i", ir.I64)
	{
		hb := ir.NewBuilder(helper)
		arr := hb.Alloca("scratch", 16*8)
		hb.For("j", hb.I(0), hb.I(16), func(jv *ir.Instr) {
			slot := hb.Add(arr, hb.Mul(hb.Ld(jv), hb.I(8)))
			hb.Store(hb.Add(hp, hb.Ld(jv)), slot, 8)
		})
		acc := hb.Local("acc")
		hb.St(hb.I(0), acc)
		hb.For("k", hb.I(0), hb.I(16), func(kv *ir.Instr) {
			slot := hb.Add(arr, hb.Mul(hb.Ld(kv), hb.I(8)))
			hb.St(hb.Add(hb.Ld(acc), hb.Load(slot, 8)), acc)
		})
		hb.Ret(hb.Ld(acc))
	}
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(10), func(iv *ir.Instr) {
		b.Store(b.Call(helper, b.Ld(iv)), b.Global(out), 8)
	})
	b.Ret(b.Load(b.Global(out), 8))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	res := pipeline(t, m)
	// The stack array must be h_alloc'd now (short-lived: created and
	// destroyed within one call, hence one iteration).
	replaced := false
	m.Funcs["work"].Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpHAlloc {
			replaced = true
		}
	})
	if !replaced {
		t.Errorf("stack array not rewritten (stats: %+v)", res.Stats)
	}
	// And deallocated at exit.
	deallocs := 0
	m.Funcs["work"].Instrs(func(in *ir.Instr) {
		if in.Op == ir.OpHDealloc {
			deallocs++
		}
	})
	if deallocs == 0 {
		t.Error("no h_dealloc at function exit")
	}
	// Still runs correctly.
	it := interp.New(m, vm.NewAddressSpace())
	v, err := it.Run()
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(9*16 + 120) // i=9: sum of 9+j for j=0..15
	if v != want {
		t.Errorf("result %d, want %d", v, want)
	}
}
