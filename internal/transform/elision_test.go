package transform

import (
	"testing"

	"privateer/internal/deps"
	"privateer/internal/ir"
)

func TestLoadFreeAddress(t *testing.T) {
	m := ir.NewModule("lf")
	g := m.NewGlobal("g", 64)
	f := m.NewFunc("main", ir.I64)
	p := f.NewParam("p", ir.Ptr)
	b := ir.NewBuilder(f)

	direct := b.Global(g)
	arith := b.Add(b.Global(g), b.Mul(b.I(3), b.I(8)))
	viaLoad := b.LoadPtr(b.Global(g))
	viaLoadArith := b.Add(viaLoad, b.I(8))
	viaParam := b.Add(p, b.I(8))
	alloc := b.Malloc("m", b.I(16))
	b.Ret(b.I(0))

	cases := []struct {
		name string
		v    ir.Value
		want bool
	}{
		{"global", direct, true},
		{"global+arith", arith, true},
		{"loaded pointer", viaLoad, false},
		{"loaded pointer+arith", viaLoadArith, false},
		{"parameter", viaParam, false},
		{"allocation", alloc, true},
	}
	for _, c := range cases {
		if got := loadFreeAddress(c.v); got != c.want {
			t.Errorf("%s: loadFreeAddress = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestPostprocessSummaryGolden pins the exact rendering of the pass
// counters: Table 3 style output must be stable across runs.
func TestPostprocessSummaryGolden(t *testing.T) {
	st := &Stats{Joined: 1, Eliminated: 2, InvPromoted: 3,
		DensePromoted: 4, SparsePromoted: 5, HeapRedundantUO: 6}
	want := "joined=1 eliminated=2 invariant=3 dense=4 sparse=5 redundant-uo=6"
	if got := st.PostprocessSummary(); got != want {
		t.Errorf("PostprocessSummary()\n got %q\nwant %q", got, want)
	}
	if got, want := (&Stats{}).PostprocessSummary(),
		"joined=0 eliminated=0 invariant=0 dense=0 sparse=0 redundant-uo=0"; got != want {
		t.Errorf("zero PostprocessSummary()\n got %q\nwant %q", got, want)
	}
}

// TestSitesSummaryGolden pins SitesPerHeap rendering: the counts live in a
// map, so the renderer must impose heap-kind order or the output would
// jitter between runs.
func TestSitesSummaryGolden(t *testing.T) {
	st := &Stats{SitesPerHeap: map[ir.HeapKind]int{
		ir.HeapReadOnly:   7,
		ir.HeapPrivate:    12,
		ir.HeapShortLived: 3,
		ir.HeapRedux:      0, // zero entries are omitted
	}}
	want := "private=12 short-lived=3 read-only=7"
	for i := 0; i < 16; i++ { // map order must never leak through
		if got := st.SitesSummary(); got != want {
			t.Fatalf("SitesSummary() iteration %d\n got %q\nwant %q", i, got, want)
		}
	}
	if got := (&Stats{}).SitesSummary(); got != "-" {
		t.Errorf("empty SitesSummary() = %q, want -", got)
	}
}

func plan(v, c, io bool) *deps.Plan {
	return &deps.Plan{NeedsValuePrediction: v, NeedsControlSpec: c, NeedsIODeferral: io}
}

func TestExtrasRendering(t *testing.T) {
	st := &Stats{}
	if got := st.Extras(plan(false, false, false)); got != "-" {
		t.Errorf("no extras: %q", got)
	}
	if got := st.Extras(plan(true, true, true)); got != "Value, Control, I/O" {
		t.Errorf("all extras: %q", got)
	}
	if got := st.Extras(plan(false, true, false)); got != "Control" {
		t.Errorf("control only: %q", got)
	}
}
