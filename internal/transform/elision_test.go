package transform

import (
	"testing"

	"privateer/internal/deps"
	"privateer/internal/ir"
)

func TestLoadFreeAddress(t *testing.T) {
	m := ir.NewModule("lf")
	g := m.NewGlobal("g", 64)
	f := m.NewFunc("main", ir.I64)
	p := f.NewParam("p", ir.Ptr)
	b := ir.NewBuilder(f)

	direct := b.Global(g)
	arith := b.Add(b.Global(g), b.Mul(b.I(3), b.I(8)))
	viaLoad := b.LoadPtr(b.Global(g))
	viaLoadArith := b.Add(viaLoad, b.I(8))
	viaParam := b.Add(p, b.I(8))
	alloc := b.Malloc("m", b.I(16))
	b.Ret(b.I(0))

	cases := []struct {
		name string
		v    ir.Value
		want bool
	}{
		{"global", direct, true},
		{"global+arith", arith, true},
		{"loaded pointer", viaLoad, false},
		{"loaded pointer+arith", viaLoadArith, false},
		{"parameter", viaParam, false},
		{"allocation", alloc, true},
	}
	for _, c := range cases {
		if got := loadFreeAddress(c.v); got != c.want {
			t.Errorf("%s: loadFreeAddress = %v, want %v", c.name, got, c.want)
		}
	}
}

func plan(v, c, io bool) *deps.Plan {
	return &deps.Plan{NeedsValuePrediction: v, NeedsControlSpec: c, NeedsIODeferral: io}
}

func TestExtrasRendering(t *testing.T) {
	st := &Stats{}
	if got := st.Extras(plan(false, false, false)); got != "-" {
		t.Errorf("no extras: %q", got)
	}
	if got := st.Extras(plan(true, true, true)); got != "Value, Control, I/O" {
		t.Errorf("all extras: %q", got)
	}
	if got := st.Extras(plan(false, true, false)); got != "Control" {
		t.Errorf("control only: %q", got)
	}
}
