package transform

// The postprocess pass runs after check insertion and removes or batches
// dynamic checks the instrumented region no longer needs, mirroring the
// original compiler's Postprocess step and its STATISTIC counters:
//
//   - join (numJoined): runs of per-access privacy checks on adjacent
//     bytes collapse into one span-level mark;
//   - eliminate (numEliminated): a privacy check dominated by an equal or
//     wider check on the same address is dropped;
//   - invariant promotion (numInvPromoted): a loop-invariant check that
//     executes every iteration hoists to the preheader;
//   - dense/sparse promotion (numDensePromoted / numSparsePromoted): a
//     check whose address is affine in a counted loop's induction
//     variable becomes one span mark in the preheader, with the element
//     count computed dynamically (limit - init), so a zero-trip loop
//     degenerates to a runtime no-op;
//   - redundant underlying-object checks (numHeapRedundantUO): a
//     check_heap dominated by a check of the same underlying object and
//     heap is dropped — logical heaps are contiguous address ranges far
//     wider than any object, so one tag test covers every interior
//     pointer derived from the same base.
//
// Soundness rules the pass must never relax:
//
//   - a write check dominated by a READ check is never eliminated: the
//     write transition on a read-live-in byte is the conservative
//     misspeculation detector;
//   - a write mark never moves earlier across a read (or read mark) of
//     potentially-overlapping bytes: marking before the read would hide
//     the read-live-in state the merge relies on;
//   - a write mark is never emitted on a path where the marked bytes
//     might not be written: a spurious write mark makes the merge commit
//     the worker's (stale) copy of those bytes. Read marks may appear on
//     extra paths — the worst case is a false misspeculation, which
//     recovery makes invisible;
//   - nothing moves out of the parallel loop itself: after outlining,
//     code above the loop runs on the master, where privacy hooks are
//     not installed.

import (
	"privateer/internal/analysis"
	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// postprocess runs the elision/promotion pass over every region function.
func (tr *transformer) postprocess() {
	for _, f := range tr.regionFuncs() {
		tr.postprocessFunc(f)
	}
}

func (tr *transformer) postprocessFunc(f *ir.Function) {
	f.Recompute()
	dt := ir.BuildDomTree(f)
	loops := ir.FindLoops(f, dt)
	pp := &postpass{tr: tr, f: f, dt: dt, loops: loops,
		loopsOf: map[*ir.Block][]*ir.Loop{}}
	for _, l := range loops {
		for _, b := range l.Blocks {
			pp.loopsOf[b] = append(pp.loopsOf[b], l)
		}
	}
	pp.eliminate()
	pp.join()
	pp.promote()
}

type postpass struct {
	tr      *transformer
	f       *ir.Function
	dt      *ir.DomTree
	loops   []*ir.Loop
	loopsOf map[*ir.Block][]*ir.Loop
}

// parallelLoop returns the parallel loop when f is its host function: the
// one loop checks must never leave.
func (pp *postpass) parallelLoop() *ir.Loop {
	if pp.f != pp.tr.loop.Header.Fn {
		return nil
	}
	for _, l := range pp.loops {
		if l.Header == pp.tr.loop.Header {
			return l
		}
	}
	return nil
}

// sameLoopSet reports whether a and b belong to exactly the same loops.
func (pp *postpass) sameLoopSet(a, b *ir.Block) bool {
	la, lb := pp.loopsOf[a], pp.loopsOf[b]
	if len(la) != len(lb) {
		return false
	}
	for _, l := range la {
		if !l.Contains(b) {
			return false
		}
	}
	return true
}

// loopSubset reports whether every loop containing a also contains b.
// A nil a (parameters, globals) is contained in no loop.
func (pp *postpass) loopSubset(a, b *ir.Block) bool {
	if a == nil {
		return true
	}
	for _, l := range pp.loopsOf[a] {
		if !l.Contains(b) {
			return false
		}
	}
	return true
}

func defBlock(v ir.Value) *ir.Block {
	if in, ok := v.(*ir.Instr); ok {
		return in.Blk
	}
	return nil
}

// ---------------------------------------------------------------------------
// Elimination: dominated privacy checks and redundant-UO heap checks.

type checkSite struct {
	in  *ir.Instr
	idx int // position in its block at collection time
}

// covers reports whether dominator site d makes site c redundant, assuming
// both use the same SSA address (or underlying object) value v. Same-block
// order is always sufficient: one block execution is one dynamic instance
// of every value it uses. Across blocks, d must dominate c from within the
// same set of loops (each entry to their shared innermost loop then
// executes d before c), and v must not be defined in a loop that excludes
// d (its instance would be refreshed without a covering re-check).
func (pp *postpass) covers(d, c checkSite, v ir.Value) bool {
	if d.in.Blk == c.in.Blk {
		return d.idx < c.idx
	}
	return pp.dt.Dominates(d.in.Blk, c.in.Blk) &&
		pp.sameLoopSet(d.in.Blk, c.in.Blk) &&
		pp.loopSubset(defBlock(v), d.in.Blk)
}

func (pp *postpass) eliminate() {
	type privKey struct{ addr ir.Value }
	type heapKey struct {
		uo ir.Value
		h  ir.HeapKind
	}
	priv := map[privKey][]checkSite{}
	heap := map[heapKey][]checkSite{}
	for _, b := range pp.f.Blocks {
		for i, in := range b.Instrs {
			switch in.Op {
			case ir.OpPrivateRead, ir.OpPrivateWrite:
				k := privKey{in.Args[0]}
				priv[k] = append(priv[k], checkSite{in, i})
			case ir.OpCheckHeap:
				k := heapKey{underlyingObject(in.Args[0]), in.Heap}
				heap[k] = append(heap[k], checkSite{in, i})
			}
		}
	}
	dead := map[*ir.Instr]bool{}
	for k, sites := range priv {
		for _, c := range sites {
			for _, d := range sites {
				if d.in == c.in || dead[d.in] || dead[c.in] {
					continue
				}
				// A read never covers a write: the write transition on a
				// read-live-in byte is the conservative misspec detector.
				if d.in.Op == ir.OpPrivateRead && c.in.Op == ir.OpPrivateWrite {
					continue
				}
				if d.in.Size < c.in.Size {
					continue
				}
				if pp.covers(d, c, k.addr) {
					dead[c.in] = true
					pp.tr.stats.Eliminated++
					break
				}
			}
		}
	}
	for k, sites := range heap {
		for _, c := range sites {
			for _, d := range sites {
				if d.in == c.in || dead[d.in] || dead[c.in] {
					continue
				}
				if pp.covers(d, c, k.uo) {
					dead[c.in] = true
					pp.tr.stats.HeapRedundantUO++
					break
				}
			}
		}
	}
	pp.removeDead(dead)
}

func (pp *postpass) removeDead(dead map[*ir.Instr]bool) {
	if len(dead) == 0 {
		return
	}
	for _, b := range pp.f.Blocks {
		out := b.Instrs[:0]
		for _, in := range b.Instrs {
			if !dead[in] {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
}

// underlyingObject strips constant-preserving address arithmetic down to
// the base SSA value: the allocation or global whose heap tag every
// derived interior pointer shares. It is the shared analysis.UnderlyingObject
// walk, aliased here for the pass's internal call sites.
func underlyingObject(v ir.Value) ir.Value {
	return analysis.UnderlyingObject(v)
}

// baseOffset peels constant displacements: v == base + offset.
func baseOffset(v ir.Value) (ir.Value, int64) {
	off := int64(0)
	for {
		in, ok := v.(*ir.Instr)
		if !ok {
			return v, off
		}
		switch in.Op {
		case ir.OpAdd:
			if c, isC := constOf(in.Args[1]); isC {
				v, off = in.Args[0], off+c
				continue
			}
			if c, isC := constOf(in.Args[0]); isC {
				v, off = in.Args[1], off+c
				continue
			}
		case ir.OpSub:
			if c, isC := constOf(in.Args[1]); isC {
				v, off = in.Args[0], off-c
				continue
			}
		}
		return v, off
	}
}

func constOf(v ir.Value) (int64, bool) {
	if in, ok := v.(*ir.Instr); ok && in.Op == ir.OpConst {
		return int64(in.Const), true
	}
	return 0, false
}

// ---------------------------------------------------------------------------
// Join: adjacent-byte privacy checks collapse into one span mark.

// joinBarrier reports whether in stops a run of privacy checks of the
// given kind from being joined across it. Checkpoint merges happen only at
// iteration boundaries, so moving a mark earlier within a block is
// observable only through the transition rules: a read mark must not cross
// a write (or write mark) to possibly-overlapping bytes — it would record
// read-live-in for a byte the iteration had already written — and a write
// mark must not cross a read (or read mark) — it would hide the
// read-live-in state the merge relies on. Pure writes (store, memset) are
// therefore transparent to write runs, and pure reads (load) to read runs.
func joinBarrier(in *ir.Instr, isWrite bool) bool {
	switch in.Op {
	case ir.OpCall, ir.OpBuiltin, ir.OpPrint, ir.OpMalloc, ir.OpFree,
		ir.OpAlloca, ir.OpHAlloc, ir.OpHDealloc, ir.OpReduxWrite,
		ir.OpMisspec, ir.OpMemCopy: // memcopy both reads and writes
		return true
	case ir.OpStore, ir.OpMemSet, ir.OpPrivateWrite, ir.OpPrivateWriteSpan:
		return !isWrite
	case ir.OpLoad, ir.OpPrivateRead, ir.OpPrivateReadSpan:
		return isWrite
	}
	return false
}

type joinRun struct {
	checks []*ir.Instr
	base   ir.Value
	start  int64 // first byte offset from base
	next   int64 // one past the last covered offset
}

func (pp *postpass) join() {
	for _, b := range pp.f.Blocks {
		pp.joinBlock(b)
	}
}

func (pp *postpass) joinBlock(b *ir.Block) {
	bld := ir.NewBuilder(pp.f)
	bld.SetBlock(b)
	var runs [2]joinRun // 0 = reads, 1 = writes
	dead := map[*ir.Instr]bool{}
	repl := map[*ir.Instr][]*ir.Instr{} // first check -> span sequence

	flush := func(k int) {
		r := &runs[k]
		if len(r.checks) >= 2 {
			op := ir.OpPrivateReadSpan
			if k == 1 {
				op = ir.OpPrivateWriteSpan
			}
			count := makeConst(bld, uint64(r.next-r.start), ir.I64)
			stride := makeConst(bld, 1, ir.I64)
			span := makeSpan(bld, op, r.checks[0].Args[0], count, stride, 1)
			repl[r.checks[0]] = []*ir.Instr{count, stride, span}
			for _, c := range r.checks {
				dead[c] = true
			}
			pp.tr.stats.Joined += len(r.checks) - 1
		}
		r.checks, r.base = nil, nil
	}

	snapshot := append([]*ir.Instr(nil), b.Instrs...)
	for _, in := range snapshot {
		switch in.Op {
		case ir.OpPrivateRead, ir.OpPrivateWrite:
			k := 0
			if in.Op == ir.OpPrivateWrite {
				k = 1
			}
			// A mark of one kind barriers runs of the other kind, exactly
			// as the access it guards would (see joinBarrier).
			flush(1 - k)
			base, off := baseOffset(in.Args[0])
			r := &runs[k]
			if len(r.checks) > 0 && base == r.base && off == r.next {
				r.checks = append(r.checks, in)
				r.next = off + in.Size
			} else {
				flush(k)
				// Runs start at the check's own address so the span can
				// reuse it verbatim (no new address arithmetic).
				r.checks = []*ir.Instr{in}
				r.base, r.start, r.next = base, off, off+in.Size
			}
		default:
			if joinBarrier(in, false) {
				flush(0)
			}
			if joinBarrier(in, true) {
				flush(1)
			}
		}
	}
	flush(0)
	flush(1)

	if len(dead) == 0 {
		return
	}
	out := make([]*ir.Instr, 0, len(b.Instrs))
	for _, in := range b.Instrs {
		if seq, ok := repl[in]; ok {
			for _, s := range seq {
				s.Blk = b
			}
			out = append(out, seq...)
		}
		if !dead[in] {
			out = append(out, in)
		}
	}
	b.Instrs = out
}

// ---------------------------------------------------------------------------
// Promotion: per-iteration checks move to the loop preheader, as an
// invariant single check or as a span covering the loop's whole footprint.

// preheaderOf returns the loop's unique outside predecessor, provided that
// block cannot bypass the loop (its terminator is an unconditional branch
// to the header): code placed there runs exactly when the loop is entered.
func preheaderOf(l *ir.Loop) *ir.Block {
	var ph *ir.Block
	for _, p := range l.Header.Preds() {
		if l.Contains(p) {
			continue
		}
		if ph != nil {
			return nil
		}
		ph = p
	}
	if ph == nil {
		return nil
	}
	t := ph.Terminator()
	if t == nil || t.Op != ir.OpBr || len(t.Targets) != 1 || t.Targets[0] != l.Header {
		return nil
	}
	return ph
}

// singleExitThroughHeader reports whether the only way out of l is the
// header's exit test: then the body runs for every IV value in
// [init, limit) and a span covering that range marks exactly the bytes
// the loop touches.
func singleExitThroughHeader(l *ir.Loop) bool {
	for _, b := range l.Blocks {
		if b == l.Header {
			continue
		}
		for _, s := range b.Succs() {
			if !l.Contains(s) {
				return false
			}
		}
	}
	return true
}

// dominatesAllLatches reports whether blk executes on every trip of l.
func (pp *postpass) dominatesAllLatches(l *ir.Loop, blk *ir.Block) bool {
	for _, latch := range l.Latches {
		if !pp.dt.Dominates(blk, latch) {
			return false
		}
	}
	return true
}

// loopInvariant reports whether v is computed outside l.
func loopInvariant(l *ir.Loop, v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	return !ok || !l.ContainsInstr(in)
}

// addrObjects resolves a check address to its may-point-to object set.
// Addresses built by this pass (span address arithmetic) postdate the
// points-to analysis, so the query strips derived arithmetic down to the
// underlying base value first — the base shares the objects of every
// interior pointer derived from it.
func (pp *postpass) addrObjects(addr ir.Value) profiling.ObjectSet {
	return pp.tr.pt.ValueObjects(pp.f, underlyingObject(addr))
}

// mayReadPrivateRange reports whether any private read in l could touch
// the bytes a promoted write span would mark. Promoting a write past such
// a read would hide its read-live-in state from the merge.
func (pp *postpass) mayReadPrivateRange(l *ir.Loop, writeAddr ir.Value) bool {
	wObjs := pp.addrObjects(writeAddr)
	if wObjs[analysis.Unknown] {
		return true
	}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpPrivateRead && in.Op != ir.OpPrivateReadSpan {
				continue
			}
			rObjs := pp.addrObjects(in.Args[0])
			if rObjs[analysis.Unknown] {
				return true
			}
			for o := range rObjs {
				if wObjs[o] {
					return true
				}
			}
		}
	}
	return false
}

// provablyEntered reports whether l's body executes at least once: a
// canonical IV with constant bounds init < limit.
func provablyEntered(iv *ir.InductionVar) bool {
	if iv == nil {
		return false
	}
	lo, okLo := constOf(iv.Init)
	hi, okHi := constOf(iv.Limit)
	return okLo && okHi && lo < hi
}

func (pp *postpass) promote() {
	par := pp.parallelLoop()
	// Innermost loops first: a check hoisted into a preheader nested in an
	// outer loop is a fresh candidate when the outer loop's turn comes.
	ordered := append([]*ir.Loop(nil), pp.loops...)
	for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
		ordered[i], ordered[j] = ordered[j], ordered[i]
	}
	for _, l := range ordered {
		if l == par {
			continue // never move a check out of the parallel loop itself
		}
		if par != nil && !par.Contains(l.Header) {
			continue // outside the region: nothing instrumented to promote
		}
		pp.promoteLoop(l)
	}
}

func (pp *postpass) promoteLoop(l *ir.Loop) {
	ph := preheaderOf(l)
	if ph == nil {
		return
	}
	iv := ir.FindInductionVar(l)
	singleExit := singleExitThroughHeader(l)
	entered := provablyEntered(iv)

	bld := ir.NewBuilder(pp.f)
	bld.SetBlock(ph)
	dead := map[*ir.Instr]bool{}
	var seq []*ir.Instr // instructions to splice into the preheader

	for _, b := range l.Blocks {
		if pp.childLoopOf(l, b) != nil {
			continue // runs more than once per trip; its own loop handles it
		}
		if !pp.dominatesAllLatches(l, b) {
			continue // conditional: promoting a write mark would be unsound,
			// and promoting a read mark invites needless misspecs
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPrivateRead, ir.OpPrivateWrite:
			case ir.OpPrivateReadSpan, ir.OpPrivateWriteSpan:
				pp.hoistSpan(l, in, entered, singleExit, dead, &seq)
				continue
			case ir.OpCheckHeap:
				// Stateless tag test: safe to hoist whenever invariant.
				if loopInvariant(l, in.Args[0]) {
					dead[in] = true
					seq = append(seq, in)
					pp.tr.stats.InvPromoted++
				}
				continue
			default:
				continue
			}
			isWrite := in.Op == ir.OpPrivateWrite
			if loopInvariant(l, in.Args[0]) {
				// Invariant hoist. A hoisted write mark asserts "this
				// iteration writes these bytes", so the loop must provably
				// run and no in-loop read may see them first.
				if isWrite && (!entered || !singleExit ||
					pp.mayReadPrivateRange(l, in.Args[0])) {
					continue
				}
				dead[in] = true
				seq = append(seq, in)
				pp.tr.stats.InvPromoted++
				continue
			}
			if iv == nil || b == l.Header {
				// The header runs once more than the body (the failing exit
				// test); a span over [init, limit) would drop that last
				// execution's mark.
				continue
			}
			aff, ok := analysis.DecomposeAffine(l, iv, in.Args[0])
			if !ok || aff.Stride <= 0 {
				continue
			}
			if isWrite && (!singleExit || pp.mayReadPrivateRange(l, in.Args[0])) {
				continue
			}
			span := pp.makeAffineSpan(bld, l, iv, aff, in)
			if span == nil {
				continue
			}
			dead[in] = true
			seq = append(seq, span...)
			if aff.Stride == in.Size {
				pp.tr.stats.DensePromoted++
			} else {
				pp.tr.stats.SparsePromoted++
			}
		}
	}
	if len(seq) == 0 {
		return
	}
	pp.removeDead(dead)
	// Splice before the preheader terminator. Hoisted checks keep their
	// identity; freshly built span sequences were emitted detached.
	term := ph.Terminator()
	ti := indexOf(ph.Instrs, term)
	ph.Instrs = append(ph.Instrs[:ti:ti], append(seq, ph.Instrs[ti:]...)...)
	for _, in := range seq {
		in.Blk = ph
	}
}

// hoistSpan moves a span mark that is invariant in l — typically one an
// earlier promotion placed in an inner loop's preheader, which still
// executes once per trip of l — up to l's own preheader, where it runs
// once per entry. Re-marking the same bytes with the same iteration
// timestamp is idempotent, so the hoisted span is exactly the first
// trip's mark, provided the loop provably runs. A write span must also
// not move above in-loop reads of the same bytes (the usual soundness
// rule), and a read span must not move above in-loop writes: a read mark
// landing before a write to the same byte would misspeculate every
// iteration.
func (pp *postpass) hoistSpan(l *ir.Loop, in *ir.Instr, entered, singleExit bool,
	dead map[*ir.Instr]bool, seq *[]*ir.Instr) {
	if !entered || dead[in] {
		return
	}
	if in.Op == ir.OpPrivateWriteSpan {
		if !singleExit || pp.mayReadPrivateRange(l, in.Args[0]) {
			return
		}
	} else if pp.mayWritePrivateRange(l, in.Args[0]) {
		return
	}
	// The span's operands (the address arithmetic and count/stride
	// constants built next to it) move along when they are pure.
	var moved []*ir.Instr
	for _, a := range in.Args {
		if !pp.hoistablePure(l, a, dead, &moved) {
			return
		}
	}
	for _, m := range moved {
		dead[m] = true
		*seq = append(*seq, m)
	}
	dead[in] = true
	*seq = append(*seq, in)
	pp.tr.stats.InvPromoted++
}

// hoistablePure reports whether v is available at l's preheader: already
// invariant, or a side-effect-free computation over hoistable operands.
// Qualifying in-loop instructions are appended to moved in dependency
// order (operands first). planned holds instructions already scheduled to
// move by an earlier hoist from the same loop.
func (pp *postpass) hoistablePure(l *ir.Loop, v ir.Value,
	planned map[*ir.Instr]bool, moved *[]*ir.Instr) bool {
	in, ok := v.(*ir.Instr)
	if !ok || !l.ContainsInstr(in) || planned[in] {
		return true
	}
	for _, m := range *moved {
		if m == in {
			return true
		}
	}
	switch in.Op {
	case ir.OpConst, ir.OpGlobal:
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor,
		ir.OpShl, ir.OpLShr, ir.OpAShr, ir.OpPtrToInt, ir.OpIntToPtr:
		// Division and remainder stay put: hoisting could introduce a
		// divide-by-zero trap the loop body never reaches.
		for _, a := range in.Args {
			if !pp.hoistablePure(l, a, planned, moved) {
				return false
			}
		}
	default:
		return false
	}
	*moved = append(*moved, in)
	return true
}

// mayWritePrivateRange reports whether any private write in l could touch
// the bytes a hoisted read span would mark. Hoisting a read mark above
// such a write records read-live-in for bytes the iteration writes,
// misspeculating every iteration.
func (pp *postpass) mayWritePrivateRange(l *ir.Loop, readAddr ir.Value) bool {
	rObjs := pp.addrObjects(readAddr)
	if rObjs[analysis.Unknown] {
		return true
	}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpPrivateWrite && in.Op != ir.OpPrivateWriteSpan {
				continue
			}
			wObjs := pp.addrObjects(in.Args[0])
			if wObjs[analysis.Unknown] {
				return true
			}
			for o := range wObjs {
				if rObjs[o] {
					return true
				}
			}
		}
	}
	return false
}

// childLoopOf returns the child loop of l containing b, or nil.
func (pp *postpass) childLoopOf(l *ir.Loop, b *ir.Block) *ir.Loop {
	for _, c := range l.Children {
		if c.Contains(b) {
			return c
		}
	}
	return nil
}

// makeAffineSpan materializes, detached, the preheader computation for a
// span covering check `in` across all iterations of l: count = limit-init
// (non-positive for a zero-trip loop, making the span a runtime no-op),
// start = base + stride*init + offset. Returns nil when the affine base
// cannot be named at the preheader.
func (pp *postpass) makeAffineSpan(bld *ir.Builder, l *ir.Loop, iv *ir.InductionVar,
	aff analysis.Affine, in *ir.Instr) []*ir.Instr {
	var seq []*ir.Instr
	emit := func(x *ir.Instr) *ir.Instr {
		seq = append(seq, detach(bld, x))
		return x
	}

	var base ir.Value
	switch bv := aff.Base.(type) {
	case nil:
		base = nil
	case *ir.Global:
		base = emit(bld.Global(bv))
	case ir.Value:
		if !loopInvariant(l, bv) {
			return nil
		}
		base = bv
	default:
		return nil
	}

	count := emit(bld.Sub(iv.Limit, iv.Init))
	strideC := emit(bld.I(aff.Stride))
	scaled := emit(bld.Mul(iv.Init, strideC))
	var addr ir.Value
	if base != nil {
		addr = emit(bld.Add(base, scaled))
	} else {
		addr = scaled
	}
	if aff.Offset != 0 {
		off := emit(bld.I(aff.Offset))
		addr = emit(bld.Add(addr, off))
	}
	op := ir.OpPrivateReadSpan
	if in.Op == ir.OpPrivateWrite {
		op = ir.OpPrivateWriteSpan
	}
	seq = append(seq, makeSpan(bld, op, addr, count, strideC, in.Size))
	return seq
}

func makeSpan(bld *ir.Builder, op ir.Op, addr, count, stride ir.Value, size int64) *ir.Instr {
	var in *ir.Instr
	if op == ir.OpPrivateReadSpan {
		in = bld.PrivateReadSpan(addr, count, stride, size)
	} else {
		in = bld.PrivateWriteSpan(addr, count, stride, size)
	}
	return detach(bld, in)
}
