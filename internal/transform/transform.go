// Package transform implements the Privateer privatizing transformation
// (sections 4.4-4.6 of the paper). Given a selected loop, its heap
// assignment and its speculation plan, it rewrites the module in place:
//
//   - allocation sites are re-routed into logical heaps (globals via their
//     heap attribute — the "initializer before main" — and malloc/alloca
//     sites via h_alloc/h_dealloc);
//   - separation checks (check_heap) are inserted at pointer definitions in
//     the parallel region, except where static points-to analysis proves
//     them (those are elided, as in the paper);
//   - privacy checks (private_read/private_write) guard every access to
//     private-heap objects;
//   - reduction updates are marked (redux_write) so the runtime can
//     register reduction objects for identity initialization and merging;
//   - value-prediction checks guard stable loads; and
//   - cold blocks are fenced with misspec for control speculation.
package transform

import (
	"fmt"
	"sort"
	"strings"

	"privateer/internal/analysis"
	"privateer/internal/classify"
	"privateer/internal/deps"
	"privateer/internal/ir"
	"privateer/internal/profiling"
)

// Stats counts what the transformation did, feeding Table 3's "Static
// Allocation Sites" and "Extras" columns.
type Stats struct {
	// GlobalsMoved counts globals re-routed into logical heaps.
	GlobalsMoved int
	// AllocSitesReplaced counts malloc/alloca sites turned into h_alloc.
	AllocSitesReplaced int
	// FreesReplaced counts free sites turned into h_dealloc.
	FreesReplaced int
	// SeparationChecks counts inserted check_heap instructions.
	SeparationChecks int
	// SeparationElided counts checks proved statically and omitted.
	SeparationElided int
	// PrivacyReads and PrivacyWrites count inserted privacy checks.
	PrivacyReads  int // check_priv_read sites
	PrivacyWrites int // check_priv_write sites
	// ReduxMarks counts inserted redux_write markers.
	ReduxMarks int
	// Predicts counts inserted value-prediction checks.
	Predicts int
	// ColdGuards counts blocks fenced by control speculation.
	ColdGuards int
	// SitesPerHeap counts static allocation sites (globals + dynamic
	// sites) per assigned heap.
	SitesPerHeap map[ir.HeapKind]int

	// Postprocess-pass counters; the names mirror the reference
	// compiler's Postprocess.cpp STATISTICs.

	// Joined counts privacy checks folded into an adjacent span
	// (numJoined).
	Joined int
	// Eliminated counts privacy checks removed because a dominating
	// check on the same address covers them (numEliminated).
	Eliminated int
	// InvPromoted counts loop-invariant checks hoisted to a preheader
	// (numInvPromoted).
	InvPromoted int
	// DensePromoted and SparsePromoted count affine per-iteration
	// checks replaced by one preheader span, unit-stride or strided
	// (numDensePromoted / numSparsePromoted).
	DensePromoted  int // unit-stride span promotions
	SparsePromoted int // strided span promotions
	// HeapRedundantUO counts separation checks removed because an
	// earlier check covers the same underlying object
	// (numHeapRedundantUO).
	HeapRedundantUO int

	// Static-separation-prover counters. These are distinct from the
	// elision counters above: an elided check was provably going to pass
	// but the object's classification still rested on the profile; a
	// proven object's classification itself is a compile-time fact, so
	// its whole dynamic mechanism is dropped.

	// StaticProven counts separation checks dropped because every object
	// the address can reference is statically proven for its heap
	// (numStaticProven; compare SeparationElided = numEliminated).
	StaticProven int
	// StaticPrivMarksDropped counts privacy marks dropped on proven
	// covered-write objects (the runtime installs their final ranges
	// wholesale instead of tracking per-access shadow marks).
	StaticPrivMarksDropped int
	// StaticReduxMarksDropped counts redux markers dropped on proven
	// reduction objects (registration is allocation-driven, so merging
	// still happens; only the per-store marker work disappears).
	StaticReduxMarksDropped int
	// ProvenByRule counts the region's statically-proven objects per
	// proof rule.
	ProvenByRule map[analysis.ProofRule]int
}

// SepSummary renders the static-separation counters deterministically.
func (s *Stats) SepSummary() string {
	var rules []string
	for _, r := range analysis.Rules {
		if n := s.ProvenByRule[r]; n > 0 {
			rules = append(rules, fmt.Sprintf("%s=%d", r, n))
		}
	}
	ruleStr := "-"
	if len(rules) > 0 {
		ruleStr = strings.Join(rules, " ")
	}
	return fmt.Sprintf("proven-checks=%d priv-marks-dropped=%d redux-marks-dropped=%d rules: %s",
		s.StaticProven, s.StaticPrivMarksDropped, s.StaticReduxMarksDropped, ruleStr)
}

// PostprocessSummary renders the postprocess-pass counters in a fixed
// order, for logs and the dump tool.
func (s *Stats) PostprocessSummary() string {
	return fmt.Sprintf("joined=%d eliminated=%d invariant=%d dense=%d sparse=%d redundant-uo=%d",
		s.Joined, s.Eliminated, s.InvPromoted, s.DensePromoted, s.SparsePromoted, s.HeapRedundantUO)
}

// SitesSummary renders SitesPerHeap deterministically, in heap-kind
// order (map iteration order would jitter between runs).
func (s *Stats) SitesSummary() string {
	var parts []string
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		if n := s.SitesPerHeap[h]; n > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", h, n))
		}
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// Extras renders the Table 3 "Extras" column.
func (s *Stats) Extras(plan *deps.Plan) string {
	var parts []string
	if plan.NeedsValuePrediction {
		parts = append(parts, "Value")
	}
	if plan.NeedsControlSpec {
		parts = append(parts, "Control")
	}
	if plan.NeedsIODeferral {
		parts = append(parts, "I/O")
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, ", ")
}

// Result describes one transformed parallel region.
type Result struct {
	// Mod is the transformed module (mutated in place).
	Mod *ir.Module
	// Loop is the parallel region.
	Loop *ir.Loop
	// Assignment is the heap assignment in force.
	Assignment *classify.Assignment
	// Plan is the speculation plan in force.
	Plan *deps.Plan
	// Stats summarizes the rewrite.
	Stats *Stats
}

// Options tunes the transformation, for ablation studies.
type Options struct {
	// DisableElision inserts every separation check, even those static
	// analysis proves (quantifies the value of check elision).
	DisableElision bool
	// DisablePostprocess skips the elision & promotion pass that runs
	// after check insertion (quantifies its value).
	DisablePostprocess bool
}

// Apply performs the full privatizing transformation for loop l of mod.
// The module's loop structures must be the ones prof and a were computed
// over. Apply returns an error if the plan still has blockers.
func Apply(mod *ir.Module, l *ir.Loop, prof *profiling.Profile,
	a *classify.Assignment, plan *deps.Plan, pt *analysis.PointsTo) (*Result, error) {
	return ApplyOpts(mod, l, prof, a, plan, pt, Options{})
}

// ApplyOpts is Apply with explicit options.
func ApplyOpts(mod *ir.Module, l *ir.Loop, prof *profiling.Profile,
	a *classify.Assignment, plan *deps.Plan, pt *analysis.PointsTo, opts Options) (*Result, error) {
	if len(plan.Blockers) > 0 {
		return nil, fmt.Errorf("transform: loop %s has %d blockers; first: %s",
			l, len(plan.Blockers), plan.Blockers[0])
	}
	st := &Stats{SitesPerHeap: map[ir.HeapKind]int{}, ProvenByRule: map[analysis.ProofRule]int{}}
	if a.Sep != nil {
		st.ProvenByRule = a.Sep.CountByRule()
	}
	tr := &transformer{mod: mod, loop: l, prof: prof, assign: a, plan: plan, pt: pt, stats: st, opts: opts}
	tr.replaceAllocation()
	tr.insertChecks()
	tr.insertColdGuards()
	if !opts.DisablePostprocess {
		tr.postprocess()
	}
	if err := ir.Verify(mod); err != nil {
		return nil, fmt.Errorf("transform: broken module: %w", err)
	}
	return &Result{Mod: mod, Loop: l, Assignment: a, Plan: plan, Stats: st}, nil
}

type transformer struct {
	mod    *ir.Module
	loop   *ir.Loop
	prof   *profiling.Profile
	assign *classify.Assignment
	plan   *deps.Plan
	pt     *analysis.PointsTo
	stats  *Stats
	opts   Options

	// inserts collects pending instruction insertions per block.
	inserts map[*ir.Block][]insertion
}

type insertion struct {
	before *ir.Instr // anchor
	after  bool      // insert after the anchor instead of before
	instr  *ir.Instr
}

// regionFuncs returns the loop's own function plus every function
// transitively callable from the loop body (the shared ir.RegionFuncs
// summary).
func (tr *transformer) regionFuncs() []*ir.Function {
	return ir.RegionFuncs(tr.loop)
}

// inRegion reports whether in executes within the parallel region: inside
// the loop body, or anywhere in a function callable from it.
func (tr *transformer) inRegion(in *ir.Instr) bool {
	if in.Blk.Fn == tr.loop.Header.Fn {
		return tr.loop.ContainsInstr(in)
	}
	for _, f := range tr.regionFuncs()[1:] {
		if in.Blk.Fn == f {
			return true
		}
	}
	return false
}

// replaceAllocation implements section 4.4.
func (tr *transformer) replaceAllocation() {
	// Globals: attribute assignment; the interpreter's global layout is
	// the pre-main initializer.
	for _, oh := range tr.assign.Objects() {
		tr.stats.SitesPerHeap[oh.Heap]++
		if g := oh.Object.Global; g != nil {
			g.Heap = oh.Heap
			tr.stats.GlobalsMoved++
			continue
		}
		site := oh.Object.Site
		if site == nil {
			continue
		}
		switch site.Op {
		case ir.OpMalloc:
			site.Op = ir.OpHAlloc
			site.Heap = oh.Heap
			tr.stats.AllocSitesReplaced++
		case ir.OpAlloca:
			tr.replaceAlloca(site, oh.Heap)
			tr.stats.AllocSitesReplaced++
		case ir.OpHAlloc:
			site.Heap = oh.Heap // already replaced by an earlier region
		}
	}
	// Frees of rewritten objects become h_dealloc when the target heap is
	// unambiguous.
	for _, f := range tr.mod.SortedFuncs() {
		f.Instrs(func(in *ir.Instr) {
			if in.Op != ir.OpFree {
				return
			}
			h, unique := tr.uniqueHeap(in)
			if unique && h != ir.HeapSystem {
				in.Op = ir.OpHDealloc
				in.Heap = h
				tr.stats.FreesReplaced++
			}
		})
	}
}

// replaceAlloca rewrites a stack allocation into h_alloc plus h_dealloc at
// every exit of its function.
func (tr *transformer) replaceAlloca(site *ir.Instr, h ir.HeapKind) {
	f := site.Blk.Fn
	b := ir.NewBuilder(f)
	// Size becomes an explicit constant operand.
	b.SetBlock(site.Blk)
	size := b.I(site.Size)
	// Pull the const out of the block tail and park it right before the
	// site.
	blk := site.Blk
	blk.Instrs = blk.Instrs[:len(blk.Instrs)-1]
	idx := indexOf(blk.Instrs, site)
	blk.Instrs = append(blk.Instrs[:idx], append([]*ir.Instr{size}, blk.Instrs[idx:]...)...)
	size.Blk = blk

	site.Op = ir.OpHAlloc
	site.Heap = h
	site.Args = []ir.Value{size}
	site.Size = 0

	// Deallocate at every return.
	for _, blk := range f.Blocks {
		term := blk.Terminator()
		if term == nil || term.Op != ir.OpRet {
			continue
		}
		b.SetBlock(blk)
		// Emit then relocate before the terminator.
		d := b.HDealloc(site, h)
		blk.Instrs = blk.Instrs[:len(blk.Instrs)-1]
		ti := indexOf(blk.Instrs, term)
		blk.Instrs = append(blk.Instrs[:ti], append([]*ir.Instr{d}, blk.Instrs[ti:]...)...)
		d.Blk = blk
	}
}

func indexOf(instrs []*ir.Instr, in *ir.Instr) int {
	for i, x := range instrs {
		if x == in {
			return i
		}
	}
	return len(instrs)
}

// uniqueHeap returns the single heap that in's profiled pointer targets
// occupy, if unique.
func (tr *transformer) uniqueHeap(in *ir.Instr) (ir.HeapKind, bool) {
	objs := tr.prof.MapPointerToObjects(in)
	if len(objs) == 0 {
		return ir.HeapSystem, false
	}
	var h ir.HeapKind
	first := true
	for o := range objs {
		oh := tr.assign.HeapOf(o)
		if first {
			h, first = oh, false
		} else if oh != h {
			return ir.HeapSystem, false
		}
	}
	return h, true
}

// staticallySeparated reports whether static analysis alone proves that
// addr (used in function f) only references heap h, allowing the check to
// be elided (section 4.5: "other checks are proved successful at compile
// time"). Elision requires both that the points-to set lands in one heap
// and that the address is computed without dereferencing memory: pointers
// loaded from the heap (linked-structure traversals, published arrays) keep
// their checks, as they do in the paper, where exactly those addresses are
// beyond the static analysis.
func (tr *transformer) staticallySeparated(f *ir.Function, addr ir.Value, h ir.HeapKind) bool {
	if tr.opts.DisableElision {
		return false
	}
	if !loadFreeAddress(addr) {
		return false
	}
	objs := tr.pt.ValueObjects(f, addr)
	if objs[analysis.Unknown] {
		return false
	}
	for o := range objs {
		if tr.assign.HeapOf(o) != h {
			return false
		}
	}
	return len(objs) > 0
}

// provenObjects reports whether addr's points-to set is Unknown-free,
// nonempty, and every object in it satisfies pred. All static-separation
// drops funnel through this: a single opaque target keeps the full
// dynamic machinery.
func (tr *transformer) provenObjects(f *ir.Function, addr ir.Value, pred func(profiling.Object) bool) bool {
	if tr.assign.Sep == nil {
		return false
	}
	objs := tr.pt.ValueObjects(f, addr)
	if objs[analysis.Unknown] || len(objs) == 0 {
		return false
	}
	for o := range objs {
		if !pred(o) {
			return false
		}
	}
	return true
}

// staticProven reports whether the separation check for addr against heap
// h is discharged by the separation prover: every referenceable object is
// assigned to h and carries a proof for h. Unlike staticallySeparated
// (elision), this does not require a load-free address — the points-to
// sets of loaded pointers are still conservative, and the proof covers
// the claim itself, not just the check's outcome.
func (tr *transformer) staticProven(f *ir.Function, addr ir.Value, h ir.HeapKind) bool {
	return tr.provenObjects(f, addr, func(o profiling.Object) bool {
		return tr.assign.HeapOf(o) == h && tr.assign.Sep.ProvenFor(o, h)
	})
}

// privMarksDroppable reports whether privacy marks for an access to addr
// can be dropped: every referenceable object is a statically privatized
// private object — proven covered-write AND fully overwritten every
// iteration, so the runtime can install each interval's final content
// wholesale from the worker that ran the interval's last iteration.
// (Affine-disjoint and merely-covered proofs do NOT qualify — their
// workers still rely on per-byte write marks to merge results.)
func (tr *transformer) privMarksDroppable(f *ir.Function, addr ir.Value) bool {
	return tr.provenObjects(f, addr, func(o profiling.Object) bool {
		return tr.assign.Sep.StaticallyPrivatized(o) && tr.assign.HeapOf(o) == ir.HeapPrivate
	})
}

// reduxMarksDroppable reports whether redux markers for a store to addr
// can be dropped: every referenceable object is a proven reduction.
// Reduction registration (identity init + merge) is allocation-driven,
// so only the per-store marker disappears.
func (tr *transformer) reduxMarksDroppable(f *ir.Function, addr ir.Value) bool {
	return tr.provenObjects(f, addr, func(o profiling.Object) bool {
		return tr.assign.HeapOf(o) == ir.HeapRedux && tr.assign.Sep.ProvenFor(o, ir.HeapRedux)
	})
}

// loadFreeAddress reports whether v is computed from globals, allocation
// results and arithmetic only — no loads, calls or parameters.
func loadFreeAddress(v ir.Value) bool {
	seen := map[*ir.Instr]bool{}
	var walk func(v ir.Value) bool
	walk = func(v ir.Value) bool {
		in, isInstr := v.(*ir.Instr)
		if !isInstr {
			return false // parameters: the callee cannot prove the caller
		}
		if seen[in] {
			return true
		}
		seen[in] = true
		switch in.Op {
		case ir.OpGlobal, ir.OpConst, ir.OpAlloca, ir.OpMalloc, ir.OpHAlloc:
			return true
		case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpShl, ir.OpAnd, ir.OpOr,
			ir.OpXor, ir.OpLShr, ir.OpAShr, ir.OpSRem, ir.OpSDiv,
			ir.OpPtrToInt, ir.OpIntToPtr, ir.OpSelect, ir.OpPhi:
			for _, a := range in.Args {
				if !walk(a) {
					return false
				}
			}
			return true
		default:
			return false // loads, calls: opaque to the static analysis
		}
	}
	return walk(v)
}

func (tr *transformer) queueInsert(anchor *ir.Instr, after bool, in *ir.Instr) {
	if tr.inserts == nil {
		tr.inserts = map[*ir.Block][]insertion{}
	}
	in.Blk = anchor.Blk
	tr.inserts[anchor.Blk] = append(tr.inserts[anchor.Blk], insertion{anchor, after, in})
}

func (tr *transformer) flushInserts() {
	for blk, ins := range tr.inserts {
		out := make([]*ir.Instr, 0, len(blk.Instrs)+len(ins))
		for _, cur := range blk.Instrs {
			for _, q := range ins {
				if q.before == cur && !q.after {
					out = append(out, q.instr)
				}
			}
			out = append(out, cur)
			for _, q := range ins {
				if q.before == cur && q.after {
					out = append(out, q.instr)
				}
			}
		}
		blk.Instrs = out
	}
	tr.inserts = nil
}

// insertChecks implements sections 4.5 and 4.6 plus value prediction.
func (tr *transformer) insertChecks() {
	funcs := tr.regionFuncs()
	// One separation check per (pointer definition, heap): the paper
	// traces each use back to its static definition and checks there.
	type checkKey struct {
		val ir.Value
		h   ir.HeapKind
	}
	checked := map[checkKey]bool{}
	newInstr := func(f *ir.Function) *ir.Builder { return ir.NewBuilder(f) }

	for _, f := range funcs {
		bld := newInstr(f)
		f.Instrs(func(in *ir.Instr) {
			if !tr.inRegion(in) {
				return
			}
			var addr ir.Value
			var size int64
			isWrite := false
			switch in.Op {
			case ir.OpLoad:
				addr, size = in.Args[0], in.Size
			case ir.OpStore:
				addr, size, isWrite = in.Args[1], in.Size, true
			case ir.OpMemSet:
				addr, size, isWrite = in.Args[0], 8, true
			case ir.OpHDealloc, ir.OpFree:
				addr, size = in.Args[0], 0
			default:
				return
			}
			h, unique := tr.uniqueHeap(in)
			if !unique {
				return // never profiled, or spans heaps: no single tag to check
			}
			// Separation check at the pointer definition.
			key := checkKey{addr, h}
			if !checked[key] {
				checked[key] = true
				if tr.staticProven(f, addr, h) {
					tr.stats.StaticProven++
				} else if tr.staticallySeparated(f, addr, h) {
					tr.stats.SeparationElided++
				} else {
					chk := makeCheck(bld, addr, h)
					if def, isInstr := addr.(*ir.Instr); isInstr && def.Blk.Fn == f {
						tr.queueInsert(def, true, chk)
					} else {
						tr.queueInsert(in, false, chk)
					}
					tr.stats.SeparationChecks++
				}
			}
			// Privacy checks on private-heap accesses. Value-predicted
			// loads are exempt: their result is validated against the
			// predicted constant (section 6.1's dijkstra queue pattern),
			// so they do not count as reads of earlier iterations' values
			// and must not mark shadow bytes read-live-in.
			if _, predicted := tr.assign.PredictableLoads[in]; predicted {
				return
			}
			if h == ir.HeapPrivate && size > 0 {
				if tr.privMarksDroppable(f, addr) {
					tr.stats.StaticPrivMarksDropped++
				} else if in.Op == ir.OpMemSet {
					// A memset covers Args[1] bytes, not one fixed-size
					// word: mark the whole span (a fixed-width check here
					// would leave the tail bytes unwatched).
					one := makeConst(bld, 1, ir.I64)
					span := makeSpan(bld, ir.OpPrivateWriteSpan, addr, in.Args[1], one, 1)
					tr.queueInsert(in, false, one)
					tr.queueInsert(in, false, span)
					tr.stats.PrivacyWrites++
				} else if isWrite {
					pw := makePriv(bld, ir.OpPrivateWrite, addr, size)
					tr.queueInsert(in, false, pw)
					tr.stats.PrivacyWrites++
				} else {
					pr := makePriv(bld, ir.OpPrivateRead, addr, size)
					tr.queueInsert(in, false, pr)
					tr.stats.PrivacyReads++
				}
			}
			// Reduction markers on redux-heap stores.
			if h == ir.HeapRedux && isWrite {
				if tr.reduxMarksDroppable(f, addr) {
					tr.stats.StaticReduxMarksDropped++
				} else {
					kind := tr.reduxKindFor(in)
					rw := makeRedux(bld, addr, size, kind)
					tr.queueInsert(in, false, rw)
					tr.stats.ReduxMarks++
				}
			}
		})
	}
	tr.flushInserts()
	// Value prediction (the paper's queue-empty speculation): for each
	// predicted location, the start of every iteration validates that the
	// previous iteration left the predicted constant there (an untracked
	// validation load + predict) and re-establishes it with a tracked
	// store. In-body loads then read a same-iteration value, so privacy
	// validation accepts them, and the carried dependence is gone.
	if tr.plan.NeedsValuePrediction {
		tr.insertPredictions()
	}
}

// insertPredictions emits, at the top of the loop's body entry block (after
// phis), one validate-and-reestablish sequence per predicted location.
func (tr *transformer) insertPredictions() {
	iv := ir.FindInductionVar(tr.loop)
	if iv == nil {
		return
	}
	entry := iv.BodyEntry
	f := entry.Fn
	bld := ir.NewBuilder(f)
	bld.SetBlock(entry)
	var seq []*ir.Instr
	emit := func(in *ir.Instr) *ir.Instr {
		seq = append(seq, detach(bld, in))
		return in
	}
	for _, p := range tr.assign.Predictions {
		g := emit(bld.Global(p.Global))
		addr := ir.Value(g)
		if p.Offset != 0 {
			off := emit(bld.I(int64(p.Offset)))
			addr = emit(bld.Add(g, off))
		}
		// Validation load: deliberately NOT privacy-checked — it verifies
		// the previous iteration's final value rather than consuming it.
		var ld *ir.Instr
		if p.Typ == ir.F64 {
			ld = emit(bld.LoadF(addr))
		} else {
			ld = emit(bld.Load(addr, p.Size))
		}
		c := emit(makeIntConst(bld, p.Value, p.Typ))
		emit(bld.Predict(ld, c))
		// Re-establish the value with a tracked store. Storing the loaded
		// value back is semantics-neutral even when checks are disabled
		// (recovery); under speculation the predict above guarantees it
		// equals the constant.
		if p.Global.Heap == ir.HeapPrivate {
			emit(bld.PrivateWrite(addr, p.Size))
			tr.stats.PrivacyWrites++
		}
		emit(bld.Store(ld, addr, p.Size))
		tr.stats.Predicts++
	}
	// Splice after any phis at the top of the body entry.
	n := 0
	for n < len(entry.Instrs) && entry.Instrs[n].Op == ir.OpPhi {
		n++
	}
	rest := append([]*ir.Instr(nil), entry.Instrs[n:]...)
	entry.Instrs = append(entry.Instrs[:n], append(seq, rest...)...)
	for _, in := range seq {
		in.Blk = entry
	}
}

func makeIntConst(bld *ir.Builder, v uint64, t ir.Type) *ir.Instr {
	if t == ir.Ptr {
		return bld.P(v)
	}
	return bld.I(int64(v))
}

// reduxKindFor finds the reduction operator of a redux store from the
// assignment.
func (tr *transformer) reduxKindFor(st *ir.Instr) ir.ReduxKind {
	for o := range tr.prof.MapPointerToObjects(st) {
		if k, ok := tr.assign.ReduxOps[o]; ok && k != ir.ReduxNone {
			return k
		}
	}
	return ir.ReduxAddI64
}

// insertColdGuards fences never-executed blocks with misspec (control
// speculation).
func (tr *transformer) insertColdGuards() {
	blocks := append([]*ir.Block(nil), tr.plan.ColdBlocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Name < blocks[j].Name })
	for _, blk := range blocks {
		bld := ir.NewBuilder(blk.Fn)
		bld.SetBlock(blk)
		g := makeMisspec(bld)
		// Place after any phis, before everything else.
		n := 0
		for n < len(blk.Instrs) && blk.Instrs[n].Op == ir.OpPhi {
			n++
		}
		blk.Instrs = append(blk.Instrs[:n:n], append([]*ir.Instr{g}, blk.Instrs[n:]...)...)
		g.Blk = blk
		tr.stats.ColdGuards++
	}
}

// The make* helpers emit an instruction with the builder (to get fresh IDs)
// and immediately detach it from the builder's block so the caller can
// place it explicitly.
func detach(bld *ir.Builder, in *ir.Instr) *ir.Instr {
	blk := bld.B
	blk.Instrs = blk.Instrs[:len(blk.Instrs)-1]
	return in
}

func makeCheck(bld *ir.Builder, addr ir.Value, h ir.HeapKind) *ir.Instr {
	return detach(bld, bld.CheckHeap(addr, h))
}

func makePriv(bld *ir.Builder, op ir.Op, addr ir.Value, size int64) *ir.Instr {
	var in *ir.Instr
	if op == ir.OpPrivateRead {
		in = bld.PrivateRead(addr, size)
	} else {
		in = bld.PrivateWrite(addr, size)
	}
	return detach(bld, in)
}

func makeRedux(bld *ir.Builder, addr ir.Value, size int64, k ir.ReduxKind) *ir.Instr {
	return detach(bld, bld.ReduxWrite(addr, size, k))
}

func makePredict(bld *ir.Builder, actual, expected ir.Value) *ir.Instr {
	return detach(bld, bld.Predict(actual, expected))
}

func makeConst(bld *ir.Builder, v uint64, t ir.Type) *ir.Instr {
	var c *ir.Instr
	if t == ir.Ptr {
		c = bld.P(v)
	} else {
		c = bld.I(int64(v))
	}
	return detach(bld, c)
}

func makeMisspec(bld *ir.Builder) *ir.Instr {
	return detach(bld, bld.Misspec())
}
