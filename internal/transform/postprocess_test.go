package transform

import (
	"testing"

	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/vm"
)

// buildElisionExercises builds a program whose body trips every postprocess
// rewrite category at least once:
//
//   - a unit-stride inner loop writing a privatized array (dense promotion),
//   - a stride-2 inner loop (sparse promotion),
//   - a scalar read of a privatized global invariant in the inner loop
//     (invariant hoist),
//   - a duplicate read of the same address (dominated-check elimination),
//   - reads of adjacent words through one base value (span join),
//   - a callee taking the array as a pointer parameter and writing two
//     adjacent words through it (write join, plus two dynamic separation
//     checks on the same underlying object — redundant-UO elimination;
//     parameters are not load-free, so those checks survive the static
//     elision that swallows global-addressed ones).
func buildElisionExercises(t *testing.T) *ir.Module {
	t.Helper()
	m := ir.NewModule("elide")
	buf := m.NewGlobal("buf", 16*8)
	strided := m.NewGlobal("strided", 16*8)
	scale := m.NewGlobal("scale", 8)
	out := m.NewGlobal("out", 8)

	helper := m.NewFunc("fill_pair", ir.Void)
	hp := helper.NewParam("p", ir.Ptr)
	hb := ir.NewBuilder(helper)
	hb.Store(hb.I(7), hp, 8)
	hb.Store(hb.I(9), hb.Add(hp, hb.I(8)), 8)
	hb.Ret()

	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	b.For("i", b.I(0), b.I(24), func(iv *ir.Instr) {
		sc := b.Global(scale)
		b.Store(b.Add(b.Ld(iv), b.I(1)), sc, 8)
		b.For("j", b.I(0), b.I(16), func(jv *ir.Instr) {
			slot := b.Add(b.Global(buf), b.Mul(b.Ld(jv), b.I(8)))
			b.Store(b.Mul(b.Ld(jv), b.Load(sc, 8)), slot, 8)
		})
		b.For("k", b.I(0), b.I(8), func(kv *ir.Instr) {
			slot := b.Add(b.Global(strided), b.Mul(b.Ld(kv), b.I(16)))
			b.Store(b.Ld(iv), slot, 8)
		})
		b.Call(helper, b.Global(buf))
		g0 := b.Global(buf)
		v0 := b.Load(g0, 8)
		v0b := b.Load(g0, 8)
		v1 := b.Load(b.Add(g0, b.I(8)), 8)
		sum := b.Add(b.Add(v0, v0b), v1)
		b.Store(b.Add(sum, b.Load(b.Add(b.Global(strided), b.I(16)), 8)), b.Global(out), 8)
	})
	b.Ret(b.Load(b.Global(out), 8))
	if err := ir.Verify(m); err != nil {
		t.Fatal(err)
	}
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

// TestPostprocessCounters checks every rewrite category fires on the
// purpose-built program and that span checks materialize in the IR.
func TestPostprocessCounters(t *testing.T) {
	m := buildElisionExercises(t)
	res := pipeline(t, m)
	st := res.Stats
	for _, c := range []struct {
		name string
		n    int
	}{
		{"Joined", st.Joined},
		{"Eliminated", st.Eliminated},
		{"InvPromoted", st.InvPromoted},
		{"DensePromoted", st.DensePromoted},
		{"SparsePromoted", st.SparsePromoted},
		{"HeapRedundantUO", st.HeapRedundantUO},
	} {
		if c.n < 1 {
			t.Errorf("%s = %d, want >= 1 (summary: %s)", c.name, c.n, st.PostprocessSummary())
		}
	}
	spans := 0
	for _, fn := range m.SortedFuncs() {
		fn.Instrs(func(in *ir.Instr) {
			if in.Op == ir.OpPrivateReadSpan || in.Op == ir.OpPrivateWriteSpan {
				spans++
			}
		})
	}
	if spans == 0 {
		t.Error("no span checks in the transformed IR")
	}
}

// TestPostprocessPreservesSequentialSemantics runs the fully postprocessed
// module sequentially (default hooks treat checks as no-ops that validate
// against real tags) and compares against the untransformed program.
func TestPostprocessPreservesSequentialSemantics(t *testing.T) {
	orig := buildElisionExercises(t)
	want, err := interp.New(orig, vm.NewAddressSpace()).Run()
	if err != nil {
		t.Fatal(err)
	}
	m := buildElisionExercises(t)
	pipeline(t, m)
	got, err := interp.New(m, vm.NewAddressSpace()).Run()
	if err != nil {
		t.Fatalf("transformed module: %v", err)
	}
	if got != want {
		t.Errorf("transformed result %d, want %d", got, want)
	}
}
