// Package randprog generates random programs for differential testing of
// the speculative runtime. A generated program is a counted loop over a set
// of global arrays with a mix of the access patterns Privateer classifies:
// scratch arrays written before read within each iteration (private),
// read-only tables, add/min reductions, short-lived heap nodes, deferred
// output, and optionally a value-predicted flag location.
//
// By construction the loop satisfies the privatization and reduction
// criteria, so the pipeline must select it and the speculative execution
// must reproduce the sequential output exactly. With Violate set, one read
// escapes the written prefix of a scratch array, introducing a genuine
// cross-iteration flow dependence that the profile cannot see on the
// training prefix — the runtime must detect it and recover, still producing
// the sequential output.
package randprog

import (
	"fmt"
	"math/rand"

	"privateer/internal/ir"
)

// Config controls generation.
type Config struct {
	// Seed drives all random choices.
	Seed int64
	// Iterations is the loop trip count.
	Iterations int64
	// Scratch and ReadOnly are array lengths (elements).
	Scratch, ReadOnly int64
	// Stmts is the number of body statements.
	Stmts int
	// Violate plants one read-before-write of scratch state in iterations
	// >= Iterations/2 (so a profile over the first half misses it).
	Violate bool
	// ViolateSelect changes the planted violation's shape: the stale read
	// goes through an unconditional load whose slot address is chosen by a
	// Select on the iteration index, instead of a guarded branch. Control
	// speculation cannot shield a branch-free violation, so it must be
	// caught by the privacy checks themselves — or, when those were
	// discharged by an (unsound) static proof, by the SepAudit oracle.
	// Only meaningful together with Violate.
	ViolateSelect bool
	// Spread, when non-zero, rotates every scratch slot index by i*Spread
	// (mod Scratch) so each iteration touches a different window of the
	// array. The per-iteration write-before-read discipline is unchanged —
	// the rotation is injective — but the loop's footprint becomes sparse
	// across the whole scratch array instead of a fixed handful of slots
	// (the soak lane's huge-page-table shape).
	Spread int64
	// DigestStride, when > 1, makes the final digest loop sample every
	// DigestStride-th scratch slot instead of all of them, keeping the
	// sequential epilogue from dominating the profile when Scratch is huge.
	DigestStride int64
}

// DefaultConfig returns a medium-sized configuration for seed.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:       seed,
		Iterations: 24,
		Scratch:    10,
		ReadOnly:   8,
		Stmts:      12,
	}
}

// TrainTrips returns the profiling trip count for cfg: the prefix that
// excludes any planted violation.
func TrainTrips(cfg Config) uint64 { return uint64(cfg.Iterations / 2) }

// Generate builds the random module for cfg. Run the module with a single
// argument: the trip count (cfg.Iterations for the full run).
func Generate(cfg Config) *ir.Module {
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := ir.NewModule(fmt.Sprintf("rand%d", cfg.Seed))

	scratch := m.NewGlobal("scratch", cfg.Scratch*8)
	table := m.NewGlobal("table", cfg.ReadOnly*8)
	init := make([]byte, cfg.ReadOnly*8)
	for i := range init {
		init[i] = byte(rng.Intn(256))
	}
	table.Init = init
	sum := m.NewGlobal("sum", 8)
	best := m.NewGlobal("best", 8)
	best.Init = []byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}
	out := m.NewGlobal("out", 8)

	// The trip count is a parameter so that profiling can run a prefix of
	// the iteration space (TrainTrips) while measurement runs it all: a
	// planted violation in the second half is then invisible to the
	// profile, exactly the scenario speculation must catch at run time.
	f := m.NewFunc("main", ir.I64)
	n := f.NewParam("n", ir.I64)
	b := ir.NewBuilder(f)

	// written tracks which scratch slots the current iteration has already
	// defined, so reads stay iteration-private.
	b.For("i", b.I(0), n, func(iv *ir.Instr) {
		written := []int64{}
		slotAddr := func(k int64) ir.Value {
			if cfg.Spread > 0 {
				idx := b.SRem(b.Add(b.I(k), b.Mul(b.Ld(iv), b.I(cfg.Spread))), b.I(cfg.Scratch))
				return b.Add(b.Global(scratch), b.Mul(idx, b.I(8)))
			}
			return b.Add(b.Global(scratch), b.I(k*8))
		}
		// A value expression over the induction variable, constants, the
		// read-only table and already-written scratch slots.
		var expr func(depth int) ir.Value
		expr = func(depth int) ir.Value {
			choice := rng.Intn(6)
			if depth > 2 {
				choice = rng.Intn(2)
			}
			switch choice {
			case 0:
				return b.I(int64(rng.Intn(100)))
			case 1:
				return b.Ld(iv)
			case 2: // read-only table lookup at i-dependent index
				idx := b.SRem(b.Add(b.Ld(iv), b.I(int64(rng.Intn(5)))), b.I(cfg.ReadOnly))
				return b.Load(b.Add(b.Global(table), b.Mul(idx, b.I(8))), 8)
			case 3: // read a scratch slot written earlier this iteration
				if len(written) == 0 {
					return b.Ld(iv)
				}
				return b.Load(slotAddr(written[rng.Intn(len(written))]), 8)
			case 4:
				return b.Add(expr(depth+1), expr(depth+1))
			default:
				return b.Mul(expr(depth+1), b.I(int64(1+rng.Intn(7))))
			}
		}

		// Guarantee at least one scratch write up front so reductions have
		// private inputs available.
		first := int64(rng.Intn(int(cfg.Scratch)))
		b.Store(expr(0), slotAddr(first), 8)
		written = append(written, first)

		for s := 0; s < cfg.Stmts; s++ {
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // scratch write
				k := int64(rng.Intn(int(cfg.Scratch)))
				b.Store(expr(0), slotAddr(k), 8)
				written = append(written, k)
			case 4, 5: // sum reduction
				addr := b.Global(sum)
				b.Store(b.Add(b.Load(addr, 8), expr(0)), addr, 8)
			case 6: // min reduction
				addr := b.Global(best)
				cur := b.Load(addr, 8)
				v := expr(0)
				b.Store(b.Select(b.SLt(v, cur), v, cur), addr, 8)
			case 7: // short-lived node
				n := b.Malloc("node", b.I(16))
				b.Store(expr(0), n, 8)
				addr := b.Global(sum)
				b.Store(b.Add(b.Load(addr, 8), b.Load(n, 8)), addr, 8)
				b.Free(n)
			case 8: // deferred output
				b.Print("i=%d v=%d\n", b.Ld(iv), expr(0))
			default: // last-value write (privatized, read after loop)
				b.Store(expr(0), b.Global(out), 8)
			}
		}

		if cfg.Violate {
			// Read a slot this iteration has NOT written, but only in the
			// second half of the iteration space: the paper's "profile
			// missed it" scenario. The value read flows from the previous
			// iteration: a true privacy violation.
			unwritten := int64(-1)
			for k := int64(0); k < cfg.Scratch; k++ {
				seen := false
				for _, w := range written {
					if w == k {
						seen = true
					}
				}
				if !seen {
					unwritten = k
					break
				}
			}
			switch {
			case unwritten >= 0 && cfg.ViolateSelect && len(written) > 0:
				// Branch-free variant: in the trained half the Select
				// resolves to a slot this iteration wrote (a sound
				// read-after-write), past the horizon it resolves to the
				// unwritten slot — same load instruction, different target.
				slot := b.Select(b.SLt(b.Ld(iv), b.I(cfg.Iterations/2)),
					b.I(written[0]), b.I(unwritten))
				stale := b.Load(b.Add(b.Global(scratch),
					b.Mul(b.SRem(b.Add(slot, b.Mul(b.Ld(iv), b.I(cfg.Spread))), b.I(cfg.Scratch)), b.I(8))), 8)
				addr := b.Global(out)
				b.Store(b.Add(b.Load(addr, 8), stale), addr, 8)
			case unwritten >= 0:
				b.If(b.SGe(b.Ld(iv), b.I(cfg.Iterations/2)), func() {
					stale := b.Load(slotAddr(unwritten), 8)
					addr := b.Global(out)
					b.Store(b.Add(b.Load(addr, 8), stale), addr, 8)
				}, nil)
			}
		}
	})
	// Deterministic digest of final state.
	stride := cfg.DigestStride
	if stride < 1 {
		stride = 1
	}
	acc := b.Local("acc")
	b.St(b.I(0), acc)
	b.For("d", b.I(0), b.I(cfg.Scratch/stride), func(dv *ir.Instr) {
		slot := b.Mul(b.Ld(dv), b.I(stride))
		v := b.Load(b.Add(b.Global(scratch), b.Mul(slot, b.I(8))), 8)
		b.St(b.Add(b.Mul(b.Ld(acc), b.I(31)), v), acc)
	})
	b.St(b.Add(b.Ld(acc), b.Load(b.Global(sum), 8)), acc)
	b.St(b.Add(b.Ld(acc), b.Load(b.Global(best), 8)), acc)
	b.St(b.Add(b.Ld(acc), b.Load(b.Global(out), 8)), acc)
	b.Print("digest %d\n", b.Ld(acc))
	b.Ret(b.Ld(acc))

	if err := ir.Verify(m); err != nil {
		panic(fmt.Sprintf("randprog: generated invalid module (seed %d): %v", cfg.Seed, err))
	}
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}
