package randprog

import (
	"testing"

	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/specrt"
)

// elisionToggle is the soak lanes' elision knob: it reproducibly disables
// the transform postprocess pass for a third of the seeds, so the random
// sweeps exercise the unelided per-access checks and the joined/promoted
// span checks alike.
func elisionToggle(seed int64) bool { return seed%3 == 0 }

// runDifferential executes one seed: sequential reference, then speculative
// runs across worker counts, asserting identical results and output.
// Returns how many speculative runs reported misspeculation.
func runDifferential(t *testing.T, cfg Config, workers []int, inject float64) int64 {
	t.Helper()
	full := uint64(cfg.Iterations)
	seqVal, seqOut, err := core.RunSequential(Generate(cfg), full)
	if err != nil {
		t.Fatalf("seed %d: sequential: %v", cfg.Seed, err)
	}
	par, err := core.Parallelize(Generate(cfg), core.Options{
		TrainArgs:          []uint64{TrainTrips(cfg)},
		DisablePostprocess: elisionToggle(cfg.Seed),
	})
	if err != nil {
		t.Fatalf("seed %d: parallelize: %v", cfg.Seed, err)
	}
	if len(par.Regions) == 0 {
		// Some random programs legitimately fail selection (e.g. the
		// generated body has a pattern our refinements cannot remove);
		// that is a compile-time outcome, not a soundness bug.
		t.Skipf("seed %d: no region selected:\n%s", cfg.Seed, par.Summary())
	}
	var misspecs int64
	for _, w := range workers {
		rt, gotVal, err := core.Run(par, specrt.Config{
			Workers: w, MisspecRate: inject, Seed: uint64(cfg.Seed),
		}, full)
		if err != nil {
			t.Fatalf("seed %d workers=%d: %v", cfg.Seed, w, err)
		}
		if gotVal != seqVal {
			t.Errorf("seed %d workers=%d: result %d, want %d (misspecs=%d)",
				cfg.Seed, w, int64(gotVal), int64(seqVal), rt.Stats.Misspecs)
		}
		if rt.Output() != seqOut {
			t.Errorf("seed %d workers=%d: output mismatch (misspecs=%d)\n got: %.300s\nwant: %.300s",
				cfg.Seed, w, rt.Stats.Misspecs, rt.Output(), seqOut)
		}
		misspecs += rt.Stats.Misspecs
	}
	return misspecs
}

// TestDifferentialClean: random privatizable programs, many seeds, must run
// speculatively without misspeculation and match sequential exactly.
func TestDifferentialClean(t *testing.T) {
	selected := 0
	for seed := int64(1); seed <= 30; seed++ {
		cfg := DefaultConfig(seed)
		t.Run("seed"+itoa(seed), func(t *testing.T) {
			m := runDifferential(t, cfg, []int{3, 7}, 0)
			if m != 0 {
				t.Errorf("seed %d: clean program misspeculated %d times", seed, m)
			}
			selected++
		})
	}
	if selected == 0 {
		t.Fatal("no random program survived selection")
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// TestDifferentialWithInjection: injected misspeculation must never change
// results (recovery restores sequential semantics).
func TestDifferentialWithInjection(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		cfg := DefaultConfig(seed)
		t.Run("seed"+itoa(seed), func(t *testing.T) {
			runDifferential(t, cfg, []int{5}, 0.15)
		})
	}
}

// TestDifferentialViolation: a genuine privacy violation hidden from the
// profile must be caught at run time (or rejected at compile time), and the
// final output must still equal the sequential run.
func TestDifferentialViolation(t *testing.T) {
	detected := 0
	ran := 0
	for seed := int64(1); seed <= 20; seed++ {
		cfg := DefaultConfig(seed)
		cfg.Violate = true
		full := uint64(cfg.Iterations)
		seqVal, seqOut, err := core.RunSequential(Generate(cfg), full)
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		par, err := core.Parallelize(Generate(cfg), core.Options{
			TrainArgs: []uint64{TrainTrips(cfg)},
		})
		if err != nil {
			t.Fatalf("seed %d: parallelize: %v", seed, err)
		}
		if len(par.Regions) == 0 {
			continue // rejected at compile time: also sound
		}
		ran++
		rt, gotVal, err := core.Run(par, specrt.Config{Workers: 5, CheckpointPeriod: 3}, full)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if gotVal != seqVal || rt.Output() != seqOut {
			t.Errorf("seed %d: UNSOUND: result %d vs %d, misspecs=%d",
				seed, int64(gotVal), int64(seqVal), rt.Stats.Misspecs)
		}
		if rt.Stats.Misspecs > 0 {
			detected++
		}
	}
	if ran == 0 {
		t.Skip("every violating program was rejected at compile time")
	}
	t.Logf("violating programs: %d ran speculatively, %d detected at run time", ran, detected)
	if detected == 0 {
		t.Error("no violation was ever detected at run time (suspicious)")
	}
}

// FuzzDifferential exposes the differential test to `go test -fuzz`: any
// seed (with or without a planted violation) must yield sequential-equal
// results under speculation.
func FuzzDifferential(f *testing.F) {
	f.Add(int64(1), false)
	f.Add(int64(2), true)
	f.Add(int64(99), false)
	f.Fuzz(func(t *testing.T, seed int64, violate bool) {
		if seed == 0 {
			seed = 1
		}
		cfg := DefaultConfig(seed)
		cfg.Violate = violate
		full := uint64(cfg.Iterations)
		seqVal, seqOut, err := core.RunSequential(Generate(cfg), full)
		if err != nil {
			t.Fatal(err)
		}
		par, err := core.Parallelize(Generate(cfg), core.Options{
			TrainArgs: []uint64{TrainTrips(cfg)},
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Regions) == 0 {
			return
		}
		rt, gotVal, err := core.Run(par, specrt.Config{Workers: 4}, full)
		if err != nil {
			t.Fatal(err)
		}
		if gotVal != seqVal || rt.Output() != seqOut {
			t.Fatalf("seed %d violate=%v: speculative run diverged (misspecs=%d)",
				seed, violate, rt.Stats.Misspecs)
		}
	})
}

// TestOptimizerOnRandomPrograms: ir.Optimize must preserve the behaviour of
// every generated program.
func TestOptimizerOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		cfg := DefaultConfig(seed)
		full := uint64(cfg.Iterations)
		wantVal, wantOut, err := core.RunSequential(Generate(cfg), full)
		if err != nil {
			t.Fatal(err)
		}
		m := Generate(cfg)
		ir.OptimizeModule(m)
		gotVal, gotOut, err := core.RunSequential(m, full)
		if err != nil {
			t.Fatalf("seed %d optimized: %v", seed, err)
		}
		if gotVal != wantVal || gotOut != wantOut {
			t.Errorf("seed %d: optimizer changed behaviour", seed)
		}
	}
}

// TestParserOnRandomPrograms: textual round trips preserve the behaviour of
// every generated program.
func TestParserOnRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 15; seed++ {
		cfg := DefaultConfig(seed)
		full := uint64(cfg.Iterations)
		wantVal, wantOut, err := core.RunSequential(Generate(cfg), full)
		if err != nil {
			t.Fatal(err)
		}
		text := ir.FormatModule(Generate(cfg))
		m, err := ir.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		gotVal, gotOut, err := core.RunSequential(m, full)
		if err != nil {
			t.Fatalf("seed %d parsed: %v", seed, err)
		}
		if gotVal != wantVal || gotOut != wantOut {
			t.Errorf("seed %d: parser changed behaviour", seed)
		}
	}
}
