package randprog

import (
	"os"
	"strings"
	"testing"

	"privateer/internal/core"
	"privateer/internal/specrt"
)

// The soak lane runs the full speculate/validate/recover cycle over random
// programs whose scratch state spans hundreds of sparse pages — the radix
// page table's range-COW and dirty-summary paths under concurrency (the
// suite is expected to run with -race). A few seeds run unconditionally so
// CI exercises the lane; PRIVATEER_SOAK=1 widens the seed range and the
// scratch footprint for long-form soaking.

// soakConfig scales the generator to a sparse multi-hundred-page scratch
// array: Spread rotates each iteration's slot window across the whole
// array, so worker spaces split scattered radix subtrees instead of a dense
// prefix, and DigestStride keeps the sequential epilogue cold enough that
// the main loop still wins selection.
func soakConfig(seed int64, long bool) Config {
	cfg := Config{
		Seed:         seed,
		Iterations:   192,
		Scratch:      1 << 15, // 32k elements = 256KiB = 64 pages
		ReadOnly:     1 << 10,
		Stmts:        12,
		Spread:       61,
		DigestStride: 64,
	}
	if long {
		cfg.Iterations = 256
		cfg.Scratch = 1 << 17 // 1MiB = 256 pages
		cfg.DigestStride = 256
	}
	return cfg
}

// soakSeeds picks the lane width: a CI-sized handful by default, a wide
// sweep under PRIVATEER_SOAK=1.
func soakSeeds(long bool) (int64, int64) {
	if long {
		return 1, 40
	}
	return 1, 6
}

// TestSoakSpeculation: clean speculation over sparse huge scratch state must
// match the sequential reference at several worker counts.
func TestSoakSpeculation(t *testing.T) {
	long := os.Getenv("PRIVATEER_SOAK") == "1"
	lo, hi := soakSeeds(long)
	for seed := lo; seed <= hi; seed++ {
		cfg := soakConfig(seed, long)
		t.Run("seed"+itoa(seed), func(t *testing.T) {
			runDifferential(t, cfg, []int{3, 8}, 0)
		})
	}
}

// TestSoakRecovery: injected misspeculation forces the validate/recover
// path — checkpoint rollback plus sequential re-execution — over the same
// sparse footprint; results must still be sequential-equal.
func TestSoakRecovery(t *testing.T) {
	long := os.Getenv("PRIVATEER_SOAK") == "1"
	lo, hi := soakSeeds(long)
	for seed := lo; seed <= hi; seed++ {
		cfg := soakConfig(seed, long)
		t.Run("seed"+itoa(seed), func(t *testing.T) {
			runDifferential(t, cfg, []int{5}, 0.15)
		})
	}
}

// TestSoakSepAudit: the runtime separation-audit oracle rides along on
// clean soak seeds — organically proven objects must produce zero
// violations while results stay sequential-equal, at every worker count.
func TestSoakSepAudit(t *testing.T) {
	long := os.Getenv("PRIVATEER_SOAK") == "1"
	lo, hi := soakSeeds(long)
	for seed := lo; seed <= hi; seed++ {
		cfg := soakConfig(seed, long)
		t.Run("seed"+itoa(seed), func(t *testing.T) {
			full := uint64(cfg.Iterations)
			seqVal, seqOut, err := core.RunSequential(Generate(cfg), full)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			par, err := core.Parallelize(Generate(cfg), core.Options{
				TrainArgs:          []uint64{TrainTrips(cfg)},
				DisablePostprocess: elisionToggle(seed),
			})
			if err != nil {
				t.Fatalf("parallelize: %v", err)
			}
			if len(par.Regions) == 0 {
				t.Skipf("no region selected:\n%s", par.Summary())
			}
			rt, gotVal, err := core.Run(par, specrt.Config{Workers: 5, SepAudit: true}, full)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if n := rt.Stats.SepAuditViolations; n > 0 {
				t.Errorf("sound proofs flagged %d time(s):\n%s", n,
					strings.Join(rt.SepAuditReport(), "\n"))
			}
			if gotVal != seqVal || rt.Output() != seqOut {
				t.Errorf("result %d, want %d (misspecs=%d)",
					int64(gotVal), int64(seqVal), rt.Stats.Misspecs)
			}
		})
	}
}

// TestSoakSepAuditCatchesPlantedProof: an unsound covered-write proof
// planted on the scratch array drops its privacy marks, so the generated
// violation (a read-before-write past the training horizon) would corrupt
// the run silently — the soak lane's SepAudit oracle must flag it.
func TestSoakSepAuditCatchesPlantedProof(t *testing.T) {
	long := os.Getenv("PRIVATEER_SOAK") == "1"
	lo, hi := soakSeeds(long)
	planted, caught := 0, 0
	for seed := lo; seed <= hi; seed++ {
		cfg := soakConfig(seed, long)
		cfg.Violate = true
		cfg.ViolateSelect = true // branch-free: control speculation cannot shield it
		full := uint64(cfg.Iterations)
		par, err := core.Parallelize(Generate(cfg), core.Options{
			TrainArgs:   []uint64{TrainTrips(cfg)},
			PlantProofs: map[string]string{"@scratch": "covered"},
		})
		if err != nil {
			t.Fatalf("seed %d: parallelize: %v", seed, err)
		}
		took := false
		for _, ri := range par.Regions {
			if ri.TStats.StaticPrivMarksDropped > 0 {
				took = true
			}
		}
		if !took {
			continue // region rejected or scratch not privatized: plant inert
		}
		planted++
		rt, _, err := core.Run(par, specrt.Config{Workers: 5, SepAudit: true}, full)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if rt.Stats.SepAuditViolations > 0 {
			caught++
		} else {
			t.Errorf("seed %d: planted unsound proof not flagged (misspecs=%d)",
				seed, rt.Stats.Misspecs)
		}
	}
	if planted == 0 {
		t.Skip("plant never took effect on any soak seed")
	}
	t.Logf("planted proofs caught on %d/%d seed(s)", caught, planted)
}

// TestSoakViolation: planted privacy violations over the sparse footprint
// must be rejected at compile time or caught at run time, never silently
// corrupt results.
func TestSoakViolation(t *testing.T) {
	long := os.Getenv("PRIVATEER_SOAK") == "1"
	lo, hi := soakSeeds(long)
	ran := 0
	for seed := lo; seed <= hi; seed++ {
		cfg := soakConfig(seed, long)
		cfg.Violate = true
		full := uint64(cfg.Iterations)
		seqVal, seqOut, err := core.RunSequential(Generate(cfg), full)
		if err != nil {
			t.Fatalf("seed %d: sequential: %v", seed, err)
		}
		par, err := core.Parallelize(Generate(cfg), core.Options{
			TrainArgs:          []uint64{TrainTrips(cfg)},
			DisablePostprocess: elisionToggle(seed),
		})
		if err != nil {
			t.Fatalf("seed %d: parallelize: %v", seed, err)
		}
		if len(par.Regions) == 0 {
			continue // rejected at compile time: also sound
		}
		ran++
		rt, gotVal, err := core.Run(par, specrt.Config{Workers: 5, CheckpointPeriod: 3}, full)
		if err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if gotVal != seqVal || rt.Output() != seqOut {
			t.Errorf("seed %d: UNSOUND: result %d vs %d, misspecs=%d",
				seed, int64(gotVal), int64(seqVal), rt.Stats.Misspecs)
		}
	}
	if ran == 0 {
		t.Skip("every violating program was rejected at compile time")
	}
}
