// Package audit cross-examines the static separation prover: every proof
// the compile pipeline attaches to a parallel region is re-checked against
// three independent oracles, and any claim a single oracle contradicts is
// reported loudly. The layers are deliberately redundant — a bug in the
// prover itself (modeled by core.Options.PlantProofs) must be caught by at
// least one of them before a proven object's dropped dynamic machinery can
// silently corrupt a run:
//
//  1. Re-derivation: the pipeline runs a second time without planted
//     proofs; any shipped claim the independent run does not reproduce is
//     unsupported.
//  2. Profile contradiction: a fresh instrumented interpretation of the
//     untransformed program on the audit input provides ground truth — a
//     write into a proven read-only object, a loop-carried flow dependence
//     through a statically-privatized object, or an escaping "iteration-
//     local" object each contradict the corresponding rule directly.
//  3. Runtime oracle: the transformed program runs under specrt.Config
//     .SepAudit, whose per-access hooks (and the retained read-only page
//     protection) flag any speculative access that violates a claim while
//     it happens.
package audit

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"privateer/internal/analysis"
	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/profiling"
	"privateer/internal/specrt"
)

// Claim is one static separation proof shipped with a parallel region,
// identified by name so it can be checked against independently built
// modules.
type Claim struct {
	// Loop names the region the proof is scoped to.
	Loop string `json:"loop"`
	// Object names the proven object (profiling.Object.String form).
	Object string `json:"object"`
	// Rule is the winning proof rule.
	Rule analysis.ProofRule `json:"rule"`
}

// Violation is one audit finding: a claim contradicted by an oracle layer.
type Violation struct {
	// Claim is the contradicted proof ("*" fields for whole-run findings).
	Claim Claim `json:"claim"`
	// Layer names the oracle that fired: rederive, profile, or runtime.
	Layer string `json:"layer"`
	// Detail explains the contradiction.
	Detail string `json:"detail"`
}

// Report is the outcome of auditing one program.
type Report struct {
	// Claims lists every static proof that was audited, sorted.
	Claims []Claim `json:"claims"`
	// Violations lists every contradicted claim (empty = all claims held).
	Violations []Violation `json:"violations"`
	// RuntimeDetails carries the raw SepAudit oracle lines, bounded.
	RuntimeDetails []string `json:"runtime_details,omitempty"`
	// Misspecs is the audited run's misspeculation count (informational:
	// recoveries are sound, but a proven object should never cause one).
	Misspecs int64 `json:"misspecs"`
}

// OK reports whether every audited claim survived all three oracles.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Format renders the report for terminal output.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "audited %d static separation claim(s)\n", len(r.Claims))
	for _, c := range r.Claims {
		fmt.Fprintf(&sb, "  claim  %-10s %-24s loop %s\n", c.Rule, c.Object, c.Loop)
	}
	if r.OK() {
		sb.WriteString("all claims consistent with the dynamic oracles\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%d VIOLATION(S):\n", len(r.Violations))
	for _, v := range r.Violations {
		fmt.Fprintf(&sb, "  [%s] %s %s: %s\n", v.Layer, v.Claim.Rule, v.Claim.Object, v.Detail)
	}
	for _, d := range r.RuntimeDetails {
		fmt.Fprintf(&sb, "    runtime: %s\n", d)
	}
	return sb.String()
}

// normalizeObj maps an object name rendered after outlining back to its
// pre-transform form: an allocation site inside the region body prints as
// "__iter_<fn>_<seq>:site" once the body is outlined, and the outline
// sequence number is process-global, so two pipeline runs over the same
// program disagree on it. Claims must compare by the original "<fn>:site".
func normalizeObj(name string) string {
	fn, site, ok := strings.Cut(name, ":")
	if !ok || !strings.HasPrefix(fn, "__iter_") {
		return name
	}
	base := strings.TrimPrefix(fn, "__iter_")
	if i := strings.LastIndex(base, "_"); i > 0 {
		if _, err := strconv.Atoi(base[i+1:]); err == nil {
			return base[:i] + ":" + site
		}
	}
	return name
}

// claims extracts the shipped proofs of every selected region, by name.
func claims(par *core.Parallelized) []Claim {
	var out []Claim
	for _, rep := range par.Reports {
		if !rep.Selected || rep.Assignment == nil || rep.Assignment.Sep == nil {
			continue
		}
		for o, rule := range rep.Assignment.Sep.Proven {
			out = append(out, Claim{Loop: rep.Loop, Object: normalizeObj(o.String()), Rule: rule})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Loop != b.Loop {
			return a.Loop < b.Loop
		}
		if a.Object != b.Object {
			return a.Object < b.Object
		}
		return a.Rule < b.Rule
	})
	return out
}

// Run audits the program produced by build: it parallelizes with opts
// (claims under test, including any planted proofs), re-derives without
// plants, profiles a fresh untransformed module for ground truth, and
// executes the transformed program under the runtime SepAudit oracle.
// build must return a fresh module per call. args are the program's entry
// arguments for the audited execution (TrainArgs in opts still drive the
// training profile).
func Run(build func() *ir.Module, opts core.Options, cfg specrt.Config, args ...uint64) (*Report, error) {
	par, err := core.Parallelize(build(), opts)
	if err != nil {
		return nil, fmt.Errorf("audit: parallelize: %w", err)
	}
	rep := &Report{Claims: claims(par)}
	if len(rep.Claims) == 0 {
		return rep, nil
	}

	// Layer 1: independent re-derivation without planted proofs.
	cleanOpts := opts
	cleanOpts.PlantProofs = nil
	clean, err := core.Parallelize(build(), cleanOpts)
	if err != nil {
		return nil, fmt.Errorf("audit: clean parallelize: %w", err)
	}
	derived := map[Claim]bool{}
	for _, c := range claims(clean) {
		derived[c] = true
	}
	for _, c := range rep.Claims {
		if !derived[c] {
			rep.Violations = append(rep.Violations, Violation{Claim: c, Layer: "rederive",
				Detail: "independent prover run does not reproduce this claim"})
		}
	}

	// Layer 2: ground truth from a fresh profile of the untransformed
	// module on the audited input. Claims match by name across modules.
	fresh := build()
	profArgs := args
	if len(profArgs) == 0 {
		profArgs = opts.TrainArgs
	}
	prof, err := profiling.Run(fresh, profArgs...)
	if err != nil {
		return nil, fmt.Errorf("audit: profile: %w", err)
	}
	rep.Violations = append(rep.Violations, profileViolations(rep.Claims, fresh, prof)...)

	// Layer 3: the runtime SepAudit oracle over the transformed program,
	// plus a bit-identical comparison against the elision-only baseline
	// build (full dynamic machinery, same worker count and fold order —
	// the sequential reference is unsuitable here because FP reductions
	// legitimately refold across workers).
	cfg.SepAudit = true
	baseOpts := opts
	baseOpts.PlantProofs = nil
	baseOpts.DisableStaticSep = true
	basePar, err := core.Parallelize(build(), baseOpts)
	if err != nil {
		return nil, fmt.Errorf("audit: baseline parallelize: %w", err)
	}
	baseRT, baseVal, err := core.Run(basePar, cfg, args...)
	if err != nil {
		return nil, fmt.Errorf("audit: baseline run: %w", err)
	}
	rt, got, err := core.Run(par, cfg, args...)
	if err != nil {
		return nil, fmt.Errorf("audit: speculative run: %w", err)
	}
	rep.Misspecs = rt.Stats.Misspecs
	rep.RuntimeDetails = rt.SepAuditReport()
	if n := rt.Stats.SepAuditViolations; n > 0 {
		rep.Violations = append(rep.Violations, Violation{
			Claim: Claim{Loop: "*", Object: "*", Rule: "*"}, Layer: "runtime",
			Detail: fmt.Sprintf("SepAudit oracle flagged %d access(es) violating a static claim", n)})
	}
	if got != baseVal || rt.Output() != baseRT.Output() {
		rep.Violations = append(rep.Violations, Violation{
			Claim: Claim{Loop: "*", Object: "*", Rule: "*"}, Layer: "runtime",
			Detail: fmt.Sprintf("proven build diverged from the elision-only baseline (%d vs %d)", got, baseVal)})
	}
	return rep, nil
}

// profileViolations checks each claim against the fresh profile: the
// profile observed the actual execution, so any contradiction here is a
// definite counterexample to the static proof.
func profileViolations(cs []Claim, mod *ir.Module, prof *profiling.Profile) []Violation {
	loops := map[string]*ir.Loop{}
	for _, l := range prof.AllLoops {
		loops[l.String()] = l
	}
	objs := map[string]profiling.Object{}
	for _, set := range prof.PointsTo {
		for o := range set {
			objs[o.String()] = o
		}
	}
	for _, name := range mod.GlobalNames() {
		g := mod.Globals[name]
		o := profiling.Object{Global: g}
		objs[o.String()] = o
	}

	var out []Violation
	for _, c := range cs {
		l := loops[c.Loop]
		if l == nil {
			continue // loop shape changed between builds; nothing to check
		}
		o, known := objs[c.Object]
		bad := func(detail string) {
			out = append(out, Violation{Claim: c, Layer: "profile", Detail: detail})
		}
		switch c.Rule {
		case analysis.RuleReadOnly:
			if !known {
				break
			}
			writes, _ := ir.RegionMemOps(l)
			for _, w := range writes {
				if prof.PointsTo[w][o] {
					bad(fmt.Sprintf("region write %s targeted the object during profiling", w))
					break
				}
			}
		case analysis.RuleIterLocal:
			if known && !prof.IsShortLived(o, l) {
				bad("object outlived an iteration (or was accessed outside its allocating iteration)")
			}
		case analysis.RuleCoveredWrite, analysis.RuleAffineDisjoint:
			for _, d := range prof.CarriedFlow[l] {
				if d.Object.String() == c.Object {
					bad(fmt.Sprintf("loop-carried flow dependence observed %d time(s): %s -> %s",
						d.Count, d.Src.Format(), d.Dst.Format()))
					break
				}
			}
		case analysis.RuleRedux:
			// The reduction shape is syntactic (re-derived in layer 1); the
			// profile cross-check is that no *foreign* carried flow rides
			// the object — a reduction's own carried chain is expected and
			// folds associatively, anything else does not.
		}
	}
	return out
}
