package audit

import (
	"strings"
	"testing"

	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/progs"
	"privateer/internal/specrt"
)

// buildSelectTarget builds the planted-proof target: a store through a
// Select pointer that only reaches cfg (profile-classified read-only) past
// the training horizon. See the core package's planted-proof test for why
// this shape defeats both control speculation and the static prover.
func buildSelectTarget() *ir.Module {
	m := ir.NewModule("auditv")
	cfg := m.NewGlobal("cfg", 8)
	cfg.Init = []byte{9, 0, 0, 0, 0, 0, 0, 0}
	scratch := m.NewGlobal("scratch", 8)
	out := m.NewGlobal("out", 8)
	f := m.NewFunc("main", ir.I64)
	f.NewParam("n", ir.I64)
	b := ir.NewBuilder(f)
	nv := f.Params[0]
	b.For("i", b.I(0), nv, func(iv *ir.Instr) {
		v := b.Load(b.Global(cfg), 8)
		outAddr := b.Global(out)
		b.Store(b.Add(b.Load(outAddr, 8), v), outAddr, 8)
		tgt := b.Select(b.SLt(b.Ld(iv), b.I(20)), b.Global(scratch), b.Global(cfg))
		b.Store(b.Ld(iv), tgt, 8)
	})
	b.Ret(b.Load(b.Global(out), 8))
	ir.PromoteAllocas(f)
	return m
}

func TestAuditCleanPrograms(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			in := p.Train
			rep, err := Run(func() *ir.Module { return p.Build(in) },
				core.Options{}, specrt.Config{Workers: 4})
			if err != nil {
				t.Fatal(err)
			}
			if !rep.OK() {
				t.Errorf("sound proofs flagged:\n%s", rep.Format())
			}
		})
	}
}

func TestAuditCatchesPlantedProof(t *testing.T) {
	rep, err := Run(buildSelectTarget, core.Options{
		TrainArgs:   []uint64{16},
		PlantProofs: map[string]string{"@cfg": "readonly"},
	}, specrt.Config{Workers: 4}, 32)
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("planted unsound proof not caught:\n%s", rep.Format())
	}
	layers := map[string]bool{}
	for _, v := range rep.Violations {
		layers[v.Layer] = true
	}
	if !layers["rederive"] {
		t.Error("re-derivation layer missed the planted claim")
	}
	if !layers["runtime"] {
		t.Error("runtime SepAudit layer missed the planted claim")
	}
	if !strings.Contains(rep.Format(), "VIOLATION") {
		t.Error("report does not shout about the violation")
	}
}

func TestAuditProfileLayerCatchesLiveContradiction(t *testing.T) {
	// Audited on the full input (args=32), the fresh profile itself
	// observes the write into cfg, so the profile layer fires too — the
	// planted read-only claim names an object the audit profile saw a
	// region write target.
	rep, err := Run(buildSelectTarget, core.Options{
		TrainArgs:   []uint64{16},
		PlantProofs: map[string]string{"@cfg": "readonly"},
	}, specrt.Config{Workers: 4}, 32)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, v := range rep.Violations {
		if v.Layer == "profile" && v.Claim.Object == "@cfg" {
			found = true
		}
	}
	if !found {
		t.Errorf("profile layer did not contradict the planted claim:\n%s", rep.Format())
	}
}
