package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
)

// Server is the live introspection HTTP server. It exposes the metrics
// registry in Prometheus text form at /metrics, an expvar-style JSON dump
// at /vars, a speculation-state JSON snapshot at /spec, and the standard
// Go profiling handlers under /debug/pprof/. It uses only the standard
// library and its own mux, so it never collides with http.DefaultServeMux.
type Server struct {
	reg   *Registry
	spec  atomic.Value // func() any
	ready atomic.Value // func() bool
	mux   *http.ServeMux
	srv   *http.Server
	ln    net.Listener
}

// NewServer returns a server exposing reg. reg may be nil (the metric
// endpoints then serve empty documents).
func NewServer(reg *Registry) *Server {
	s := &Server{reg: reg, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleIndex)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/vars", s.handleVars)
	s.mux.HandleFunc("/spec", s.handleSpec)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// SetSpec installs the provider for the /spec endpoint. The function is
// called per request and its result rendered as JSON; it must be safe for
// concurrent use. Passing nil restores the empty document.
func (s *Server) SetSpec(fn func() any) {
	s.spec.Store(fn)
}

// SetReady installs the readiness probe backing /readyz. The function is
// called per request and must be safe for concurrent use; returning false
// turns /readyz into a 503 so load balancers stop routing (the region
// service flips it during drain). With no probe installed the server always
// reports ready.
func (s *Server) SetReady(fn func() bool) {
	s.ready.Store(fn)
}

// Handle mounts handler at pattern on the server's private mux, alongside
// the built-in introspection endpoints. The region service uses it to
// expose its submit/poll API through the same listener. Patterns follow
// http.ServeMux semantics; registering a pattern twice panics, as it does
// on any ServeMux. Call before Start.
func (s *Server) Handle(pattern string, handler http.Handler) {
	s.mux.Handle(pattern, handler)
}

// Handler returns the server's mux, for embedding or tests.
func (s *Server) Handler() http.Handler { return s.mux }

// Start listens on addr (host:port; port 0 picks a free port) and serves
// in a background goroutine. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux}
	go func() { _ = s.srv.Serve(ln) }()
	return ln.Addr().String(), nil
}

// Close stops the listener and server. Safe if Start never ran.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// handleIndex lists the available endpoints.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "privateer introspection endpoints:")
	fmt.Fprintln(w, "  /metrics      Prometheus text metrics")
	fmt.Fprintln(w, "  /vars         expvar-style JSON metrics")
	fmt.Fprintln(w, "  /spec         live speculation state (JSON)")
	fmt.Fprintln(w, "  /healthz      liveness probe (always 200 while serving)")
	fmt.Fprintln(w, "  /readyz       readiness probe (503 while draining)")
	fmt.Fprintln(w, "  /debug/pprof/ Go runtime profiles")
}

// handleHealthz is the liveness probe: if the server can answer at all, it
// is live.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 200 while the installed probe (if
// any) reports ready, 503 otherwise.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fn, _ := s.ready.Load().(func() bool)
	if fn != nil && !fn() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleMetrics serves the Prometheus text exposition.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteProm(w)
}

// handleVars serves the expvar-style JSON snapshot.
func (s *Server) handleVars(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_ = s.reg.WriteVars(w)
}

// handleSpec serves the speculation-state snapshot from the installed
// provider, or an empty object when none is installed.
func (s *Server) handleSpec(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	fn, _ := s.spec.Load().(func() any)
	if fn == nil {
		fmt.Fprintln(w, "{}")
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(fn())
}
