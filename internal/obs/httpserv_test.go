package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get issues one request against the server's handler and returns the
// response.
func get(t *testing.T, s *Server, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec
}

// TestServerEndpoints: all four endpoint groups must answer 200 with the
// right content type and body shape, and unknown paths must 404.
func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_serve_total", "h").Add(9)
	s := NewServer(reg)

	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("/metrics content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "t_serve_total 9") {
		t.Errorf("/metrics body missing series:\n%s", rec.Body.String())
	}

	rec = get(t, s, "/vars")
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/vars not JSON: %v", err)
	}
	if vars["t_serve_total"] != float64(9) {
		t.Errorf("/vars t_serve_total = %v", vars["t_serve_total"])
	}

	// /spec without a provider serves an empty document; with one, the
	// provider's value rendered as JSON.
	rec = get(t, s, "/spec")
	if strings.TrimSpace(rec.Body.String()) != "{}" {
		t.Errorf("/spec without provider = %q, want {}", rec.Body.String())
	}
	s.SetSpec(func() any { return map[string]int{"workers": 3} })
	rec = get(t, s, "/spec")
	var spec map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &spec); err != nil {
		t.Fatalf("/spec not JSON: %v", err)
	}
	if spec["workers"] != 3 {
		t.Errorf("/spec workers = %d, want 3", spec["workers"])
	}

	rec = get(t, s, "/debug/pprof/")
	if rec.Code != http.StatusOK {
		t.Errorf("/debug/pprof/ status %d", rec.Code)
	}
	rec = get(t, s, "/")
	if !strings.Contains(rec.Body.String(), "/metrics") {
		t.Errorf("index does not list endpoints:\n%s", rec.Body.String())
	}
	if rec := get(t, s, "/nonexistent"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown path status %d, want 404", rec.Code)
	}
}

// TestServerNilRegistry: the metric endpoints must serve (empty) documents
// when the server was built without a registry.
func TestServerNilRegistry(t *testing.T) {
	s := NewServer(nil)
	if rec := get(t, s, "/metrics"); rec.Code != http.StatusOK {
		t.Errorf("/metrics status %d with nil registry", rec.Code)
	}
	rec := get(t, s, "/vars")
	var vars map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("/vars not JSON with nil registry: %v", err)
	}
}

// TestServerStartClose: Start must bind (port 0 picks a free port), serve
// over real TCP, and Close must stop it. Close without Start is a no-op.
func TestServerStartClose(t *testing.T) {
	if err := NewServer(nil).Close(); err != nil {
		t.Fatalf("Close before Start: %v", err)
	}
	reg := NewRegistry()
	reg.Counter("t_tcp_total", "h").Inc()
	s := NewServer(reg)
	addr, err := s.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "t_tcp_total 1") {
		t.Errorf("served metrics missing series:\n%s", body)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after Close")
	}
}
