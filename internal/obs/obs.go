package obs

import (
	"fmt"
	"time"
)

// Kind identifies one speculation-lifecycle event type.
type Kind uint8

const (
	// KRegionInvoke is one parallel-region invocation (A=lo, B=hi; spans
	// the whole invocation).
	KRegionInvoke Kind = iota
	// KSpanStart opens one speculative span (A=start iteration,
	// B=checkpoint period).
	KSpanStart
	// KSpanEnd closes a span (A=misspeculated iteration, -1 for clean).
	KSpanEnd
	// KWorkerSpawn is one worker's address-space clone + interpreter setup.
	KWorkerSpawn
	// KWorkerJoin is one worker's completion (DurNS = busy time).
	KWorkerJoin
	// KCheckpoint is the construction of one checkpoint object
	// (Iter=checkpoint id, A=base, B=limit).
	KCheckpoint
	// KContribute is one worker's state merge into a checkpoint
	// (Iter=checkpoint id, A=shadow bytes scanned).
	KContribute
	// KValidate is a cross-interval privacy validation pass
	// (A=violating checkpoint id, -1 for clean).
	KValidate
	// KInstall applies a checkpoint chain to the master space (A=bytes).
	KInstall
	// KCommit commits a checkpoint chain's deferred output (A=records).
	KCommit
	// KPhase is a privacy-phase transition (Cause = phase name: "fast",
	// "validate", "recover", "commit").
	KPhase
	// KMisspec is a detected misspeculation (Iter=iteration, Cause=reason,
	// Site=the instruction that fired, if any, A=the faulting address when
	// the violation concerns a specific memory location, 0 otherwise).
	KMisspec
	// KRecovery is one sequential recovery episode (A=from, B=to).
	KRecovery
	// KSeqFallback abandons an invocation's remainder to sequential
	// execution after the recovery budget is spent (A=from, B=hi).
	KSeqFallback
	// KCOWCopy is one copy-on-write page duplication (A=page base address).
	KCOWCopy
	// KTLBFlush is a software-TLB flush (Cause = trigger).
	KTLBFlush
	// KProtFault is a memory-protection fault (A=address, Cause=reason).
	KProtFault
	// KMark is a generic labeled span (Cause = label); the benchmark
	// harness uses it to bracket whole benchmarks.
	KMark
	// KValidateEager is a pipelined per-interval validation performed by the
	// background committer while workers may still be executing
	// (Iter=checkpoint id, A=violating checkpoint id or -1).
	KValidateEager
	// KCommitAsync is an overlapped install+commit of one quiesced
	// checkpoint by the background committer (Iter=checkpoint id,
	// A=bytes installed, B=deferred-output records committed).
	KCommitAsync
	// KCancel is a committer-initiated cancellation of in-flight
	// speculative intervals after eager validation found a violation
	// (Iter=violating checkpoint id, Cause=reason).
	KCancel
	// KSpawn is one span's whole fleet spawn as a single span (A=spawns
	// satisfied from the warmed pool, B=fleet size, Cause="warm", "cold" or
	// "mixed"); the per-worker KWorkerSpawn instants fall inside it.
	KSpawn
	// KJobPhase is a service-level job-lifecycle phase span (Cause = phase
	// name, e.g. "queued"); the region service emits it around lifecycle
	// stages the runtime itself cannot see.
	KJobPhase

	numKinds = int(KJobPhase) + 1
)

var kindNames = [numKinds]string{
	KRegionInvoke:  "region-invoke",
	KSpanStart:     "span-start",
	KSpanEnd:       "span-end",
	KWorkerSpawn:   "worker-spawn",
	KWorkerJoin:    "worker-join",
	KCheckpoint:    "checkpoint",
	KContribute:    "contribute",
	KValidate:      "validate",
	KInstall:       "install",
	KCommit:        "commit",
	KPhase:         "phase",
	KMisspec:       "misspec",
	KRecovery:      "recovery",
	KSeqFallback:   "seq-fallback",
	KCOWCopy:       "cow-copy",
	KTLBFlush:      "tlb-flush",
	KProtFault:     "prot-fault",
	KMark:          "mark",
	KValidateEager: "validate-eager",
	KCommitAsync:   "commit-async",
	KCancel:        "cancel",
	KSpawn:         "spawn",
	KJobPhase:      "job-phase",
}

// String names the kind for human-readable output.
func (k Kind) String() string {
	if int(k) < numKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Event is one structured trace record. Which fields are meaningful depends
// on Kind (see the Kind constants); unused scalar fields are zero or -1.
type Event struct {
	// Kind is the event type.
	Kind Kind
	// TimeNS is the event's start time in nanoseconds since the tracer was
	// created.
	TimeNS int64
	// DurNS is the duration for span-like events; 0 marks an instant.
	DurNS int64
	// Invocation is the parallel-region invocation sequence number the
	// event belongs to, or -1 outside any invocation.
	Invocation int64
	// Worker is the emitting worker id, or -1 for the master/runtime.
	Worker int
	// Iter is the iteration or checkpoint id the event refers to, or -1.
	Iter int64
	// A and B are kind-specific scalars (ranges, byte counts, periods).
	A, B int64
	// Cause is a kind-specific label (misspeculation reason, phase name,
	// TLB-flush trigger).
	Cause string
	// Site locates the triggering instruction, when one exists.
	Site string
}

// Sink receives emitted events. Implementations must be safe for
// concurrent Emit calls: workers emit from their own goroutines.
type Sink interface {
	Emit(ev Event)
}

// Tracer stamps and forwards events to a Sink. A nil *Tracer is the
// disabled tracer: every method is a no-op, so instrumentation sites cost
// one branch when tracing is off.
type Tracer struct {
	sink  Sink
	start time.Time
}

// NewTracer returns a tracer forwarding into sink. A nil sink yields a
// disabled tracer.
func NewTracer(sink Sink) *Tracer {
	if sink == nil {
		return nil
	}
	return &Tracer{sink: sink, start: time.Now()}
}

// On reports whether the tracer is active. Callers on hot paths should
// guard event construction with it.
func (t *Tracer) On() bool { return t != nil }

// Now returns nanoseconds since the tracer started (0 when disabled).
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.start))
}

// Emit forwards ev to the sink. Safe on a nil tracer.
func (t *Tracer) Emit(ev Event) {
	if t == nil {
		return
	}
	t.sink.Emit(ev)
}

// Instant emits a duration-less event stamped now.
func (t *Tracer) Instant(ev Event) {
	if t == nil {
		return
	}
	ev.TimeNS = t.Now()
	t.sink.Emit(ev)
}
