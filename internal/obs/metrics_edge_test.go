package obs

import (
	"strings"
	"testing"
)

// TestSummarizeEmptyStream: an empty (or nil) event stream folds to no
// buckets, and FormatSummary still renders a headline.
func TestSummarizeEmptyStream(t *testing.T) {
	if ms := Summarize(nil); len(ms) != 0 {
		t.Errorf("Summarize(nil) = %d buckets, want 0", len(ms))
	}
	if ms := Summarize([]Event{}); len(ms) != 0 {
		t.Errorf("Summarize(empty) = %d buckets, want 0", len(ms))
	}
	out := FormatSummary(nil)
	if !strings.Contains(out, "0 recorded") {
		t.Errorf("empty summary headline wrong:\n%s", out)
	}
	if strings.Contains(out, "Per-invocation") {
		t.Error("empty summary must not render a per-invocation table")
	}
}

// TestSummarizeNegativeInvocationsFold: every negative invocation number
// denotes "outside any invocation" and must share the single -1 bucket,
// rendered as "-" by FormatSummary.
func TestSummarizeNegativeInvocationsFold(t *testing.T) {
	events := []Event{
		{Kind: KCOWCopy, Invocation: -1},
		{Kind: KTLBFlush, Invocation: -7},
		{Kind: KProtFault, Invocation: -2},
	}
	ms := Summarize(events)
	if len(ms) != 1 {
		t.Fatalf("got %d buckets, want 1 shared outside-bucket", len(ms))
	}
	m := ms[0]
	if m.Invocation != -1 || m.COWCopies != 1 || m.TLBFlushes != 1 || m.ProtFaults != 1 {
		t.Errorf("outside bucket wrong: %+v", m)
	}
	sum := FormatSummary(events)
	if !strings.Contains(sum, "\n-") {
		t.Errorf("outside bucket not rendered as '-':\n%s", sum)
	}
}

// TestSummarizeInterleavedInvocations: events arriving interleaved across
// invocations (the live stream order under concurrent workers) must still
// fold into per-invocation buckets, sorted by invocation number.
func TestSummarizeInterleavedInvocations(t *testing.T) {
	events := []Event{
		{Kind: KSpanStart, Invocation: 1},
		{Kind: KRegionInvoke, DurNS: 10, Invocation: 0},
		{Kind: KMisspec, Invocation: 1},
		{Kind: KCheckpoint, Invocation: 0},
		{Kind: KRegionInvoke, DurNS: 20, Invocation: 1},
		{Kind: KCheckpoint, Invocation: 1},
		{Kind: KMisspec, Invocation: 0},
		{Kind: KCOWCopy, Invocation: -1},
		{Kind: KCheckpoint, Invocation: 0},
	}
	ms := Summarize(events)
	if len(ms) != 3 {
		t.Fatalf("got %d buckets, want 3", len(ms))
	}
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Invocation >= ms[i].Invocation {
			t.Fatalf("buckets out of order: %d before %d", ms[i-1].Invocation, ms[i].Invocation)
		}
	}
	m0, m1 := ms[1], ms[2]
	if m0.Invocation != 0 || m0.Checkpoints != 2 || m0.Misspecs != 1 || m0.WallNS != 10 {
		t.Errorf("invocation 0 wrong: %+v", m0)
	}
	if m1.Invocation != 1 || m1.Spans != 1 || m1.Checkpoints != 1 || m1.Misspecs != 1 || m1.WallNS != 20 {
		t.Errorf("invocation 1 wrong: %+v", m1)
	}
}

// TestCollectorPublishMetrics: the trace-stream health metrics must track
// the ring through wraparound, so a /metrics scrape reveals truncated
// traces.
func TestCollectorPublishMetrics(t *testing.T) {
	c := NewCollector(4)
	reg := NewRegistry()
	c.PublishMetrics(reg)
	scrape := func() string {
		var sb strings.Builder
		reg.WriteProm(&sb)
		return sb.String()
	}
	for i := 0; i < 3; i++ {
		c.Emit(Event{Kind: KMark})
	}
	out := scrape()
	for _, want := range []string{
		"privateer_trace_events_total 3",
		"privateer_trace_dropped_events 0",
		"privateer_trace_ring_capacity 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("pre-wrap scrape missing %q:\n%s", want, out)
		}
	}
	for i := 0; i < 3; i++ {
		c.Emit(Event{Kind: KMark})
	}
	out = scrape()
	for _, want := range []string{
		"privateer_trace_events_total 6",
		"privateer_trace_dropped_events 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("post-wrap scrape missing %q:\n%s", want, out)
		}
	}
	if dropped := c.Dropped(); dropped != 2 {
		t.Errorf("Dropped() = %d, want 2", dropped)
	}
	// PublishMetrics must tolerate nil receivers and nil registries.
	(*Collector)(nil).PublishMetrics(reg)
	c.PublishMetrics(nil)
}
