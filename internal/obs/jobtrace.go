package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// WriteJobTrace renders one job's event stream as a Chrome trace_event JSON
// document. On top of the raw runtime events (as WriteChromeTrace emits
// them) it adds process/thread metadata naming the job, and synthesizes one
// summary slice per lifecycle phase on dedicated phase rows, so the queue
// wait / spawn / run / validate / merge / commit decomposition is readable
// at a glance in chrome://tracing without hunting through worker lanes.
func WriteJobTrace(w io.Writer, jobID string, events []Event) error {
	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)+2*len(PhaseNames)+2),
		DisplayTimeUnit: "ns",
	}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: 1, TID: 0,
		Args: map[string]any{"name": "job " + jobID},
	})
	for _, ev := range events {
		out.TraceEvents = append(out.TraceEvents, chromeEventOf(ev))
	}
	for i, ps := range SummarizePhases(events) {
		tid := int64(100 + i)
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "thread_name", Phase: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": "phase: " + ps.Phase},
			},
			chromeEvent{
				Name:  "phase: " + ps.Phase,
				Cat:   "phase",
				Phase: "X",
				TS:    float64(ps.FirstNS) / 1e3,
				Dur:   max(float64(ps.LastNS-ps.FirstNS)/1e3, 0.001),
				PID:   1,
				TID:   tid,
				Args:  map[string]any{"ns": ps.NS, "count": ps.Count},
			})
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: job trace encode: %w", err)
	}
	return nil
}
