package obs

import (
	"fmt"
	"sort"
	"strings"
)

// InvocationMetrics is the per-invocation metrics snapshot: every
// speculation-lifecycle count for one parallel-region invocation, folded
// from the event stream. Events outside any invocation (Invocation < 0)
// aggregate under invocation -1.
type InvocationMetrics struct {
	// Invocation is the region invocation sequence number (-1 = outside).
	Invocation int64
	// Spans counts speculative spans attempted.
	Spans int64
	// Workers counts worker spawns.
	Workers int64
	// Checkpoints counts checkpoint objects constructed.
	Checkpoints int64
	// Contributions counts worker merges into checkpoints.
	Contributions int64
	// Validations counts cross-interval validation passes.
	Validations int64
	// EagerValidations counts per-interval validations performed by the
	// pipelined committer while workers were (potentially) still executing.
	EagerValidations int64
	// AsyncCommits counts checkpoints installed and committed by the
	// pipelined committer.
	AsyncCommits int64
	// Cancels counts committer-initiated cancellations of in-flight
	// speculative intervals.
	Cancels int64
	// Misspecs counts detected misspeculations.
	Misspecs int64
	// Recoveries counts sequential recovery episodes.
	Recoveries int64
	// Fallbacks counts invocations abandoned to sequential execution.
	Fallbacks int64
	// InstalledBytes totals checkpoint bytes installed into the master.
	InstalledBytes int64
	// CommittedIO totals deferred output records committed.
	CommittedIO int64
	// COWCopies counts copy-on-write page duplications.
	COWCopies int64
	// TLBFlushes counts software-TLB invalidations.
	TLBFlushes int64
	// ProtFaults counts page-protection faults.
	ProtFaults int64
	// WallNS is the invocation's wall-clock duration (from its
	// region-invoke event), when one was recorded.
	WallNS int64
}

// Summarize folds an event stream into per-invocation metrics, ordered by
// invocation number.
func Summarize(events []Event) []InvocationMetrics {
	byInv := map[int64]*InvocationMetrics{}
	get := func(inv int64) *InvocationMetrics {
		if inv < 0 {
			inv = -1
		}
		m := byInv[inv]
		if m == nil {
			m = &InvocationMetrics{Invocation: inv}
			byInv[inv] = m
		}
		return m
	}
	for _, ev := range events {
		m := get(ev.Invocation)
		switch ev.Kind {
		case KRegionInvoke:
			m.WallNS += ev.DurNS
		case KSpanStart:
			m.Spans++
		case KWorkerSpawn:
			m.Workers++
		case KCheckpoint:
			m.Checkpoints++
		case KContribute:
			m.Contributions++
		case KValidate:
			m.Validations++
		case KMisspec:
			m.Misspecs++
		case KRecovery:
			m.Recoveries++
		case KSeqFallback:
			m.Fallbacks++
		case KInstall:
			m.InstalledBytes += ev.A
		case KCommit:
			m.CommittedIO += ev.A
		case KValidateEager:
			m.EagerValidations++
		case KCommitAsync:
			m.AsyncCommits++
			m.InstalledBytes += ev.A
			m.CommittedIO += ev.B
		case KCancel:
			m.Cancels++
		case KCOWCopy:
			m.COWCopies++
		case KTLBFlush:
			m.TLBFlushes++
		case KProtFault:
			m.ProtFaults++
		}
	}
	out := make([]InvocationMetrics, 0, len(byInv))
	for _, m := range byInv {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Invocation < out[j].Invocation })
	return out
}

// CountByKind tallies the event stream per kind.
func CountByKind(events []Event) map[Kind]int64 {
	counts := map[Kind]int64{}
	for _, ev := range events {
		counts[ev.Kind]++
	}
	return counts
}

// FormatSummary renders the event stream as two aligned tables: totals per
// event kind, then the per-invocation metrics snapshot.
func FormatSummary(events []Event) string {
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("Speculation events (%d recorded)\n\n", len(events)))

	counts := CountByKind(events)
	kinds := make([]Kind, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	rows := make([][]string, 0, len(kinds))
	for _, k := range kinds {
		rows = append(rows, []string{k.String(), fmt.Sprintf("%d", counts[k])})
	}
	sb.WriteString(alignTable([]string{"event", "count"}, rows))

	ms := Summarize(events)
	if len(ms) == 0 {
		return sb.String()
	}
	sb.WriteString("\nPer-invocation metrics\n\n")
	rows = rows[:0]
	for _, m := range ms {
		inv := fmt.Sprintf("%d", m.Invocation)
		if m.Invocation < 0 {
			inv = "-"
		}
		rows = append(rows, []string{
			inv,
			fmt.Sprintf("%d", m.Spans),
			fmt.Sprintf("%d", m.Workers),
			fmt.Sprintf("%d", m.Checkpoints),
			fmt.Sprintf("%d", m.Misspecs),
			fmt.Sprintf("%d", m.Recoveries),
			fmt.Sprintf("%d", m.Fallbacks),
			fmt.Sprintf("%d", m.InstalledBytes),
			fmt.Sprintf("%d", m.CommittedIO),
			fmt.Sprintf("%d", m.COWCopies),
			fmt.Sprintf("%.3f", float64(m.WallNS)/1e6),
		})
	}
	sb.WriteString(alignTable([]string{
		"inv", "spans", "spawns", "ckpts", "misspec", "recover",
		"fallback", "inst B", "io", "cow", "wall ms"}, rows))
	return sb.String()
}

// alignTable renders rows with aligned columns (the same layout the bench
// package prints, duplicated here to keep obs dependency-free).
func alignTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	for i := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteString("\n")
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}
