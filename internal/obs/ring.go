package obs

import "sync"

// DefaultCapacity is the Collector's ring size when none is given: large
// enough to hold a full micro-scale run, small enough (a few MB) to leave
// resident without thought.
const DefaultCapacity = 1 << 14

// Collector is a fixed-capacity ring-buffered Sink: when full, the oldest
// events are overwritten, so a long run keeps its most recent window. The
// backing buffer grows lazily up to the capacity, so many small streams (the
// region service keeps one Collector per job) cost only what they record. It
// is safe for concurrent Emit from worker goroutines.
type Collector struct {
	mu       sync.Mutex
	buf      []Event
	capacity int
	next     int   // overwrite cursor once the buffer has filled
	total    int64 // events ever emitted (including overwritten)
	wrapped  bool
}

// NewCollector returns a collector holding up to capacity events;
// capacity <= 0 selects DefaultCapacity.
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{capacity: capacity}
}

// Emit records ev, overwriting the oldest event when the ring is full.
func (c *Collector) Emit(ev Event) {
	c.mu.Lock()
	if len(c.buf) < c.capacity {
		c.buf = append(c.buf, ev)
	} else {
		c.buf[c.next] = ev
		c.next++
		if c.next == c.capacity {
			c.next = 0
		}
		c.wrapped = true
	}
	c.total++
	c.mu.Unlock()
}

// Events returns a snapshot of the retained events in emission order
// (oldest first).
func (c *Collector) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.wrapped {
		return append([]Event(nil), c.buf...)
	}
	out := make([]Event, 0, len(c.buf))
	out = append(out, c.buf[c.next:]...)
	return append(out, c.buf[:c.next]...)
}

// Len returns the number of events currently retained.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}

// Total returns the number of events ever emitted, including any that the
// ring has since overwritten.
func (c *Collector) Total() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dropped returns how many events were overwritten before they could be
// read.
func (c *Collector) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.wrapped {
		return 0
	}
	return c.total - int64(len(c.buf))
}

// PublishMetrics registers trace-stream health metrics on reg: total
// emitted events and events the ring overwrote before they could be read
// (dropped_events), so truncated traces are detectable from /metrics.
func (c *Collector) PublishMetrics(reg *Registry) {
	if c == nil || reg == nil {
		return
	}
	total := reg.Gauge("privateer_trace_events_total",
		"Trace events ever emitted into the collector ring, including overwritten ones.")
	dropped := reg.Gauge("privateer_trace_dropped_events",
		"Trace events overwritten by ring wraparound before they could be read.")
	capacity := reg.Gauge("privateer_trace_ring_capacity",
		"Capacity of the trace collector ring in events.")
	reg.RegisterCollector(func() {
		total.Set(c.Total())
		dropped.Set(c.Dropped())
		c.mu.Lock()
		capacity.Set(int64(c.capacity))
		c.mu.Unlock()
	})
}

// Reset discards every retained event.
func (c *Collector) Reset() {
	c.mu.Lock()
	c.buf = c.buf[:0]
	c.next = 0
	c.total = 0
	c.wrapped = false
	c.mu.Unlock()
}
