// Package obs is the speculation-lifecycle observability layer: a
// low-overhead structured event tracer plus derived metrics for the
// Privateer runtime.
//
// The paper's evaluation (section 6) attributes runtime cost to individual
// speculation events — worker spawns, privacy checks, checkpoint merges,
// misspeculation, recovery. The runtime emits those events as typed Event
// values through a Tracer; with no tracer attached every instrumentation
// site is a single nil check. Events flow into a Sink — usually the
// ring-buffered Collector — and can be exported as a Chrome trace_event
// JSON file (chrometrace.go) or folded into per-invocation metrics
// (metrics.go).
//
// Emission is safe from any goroutine: the runtime's workers and the
// pipelined committer (KValidateEager, KCommitAsync, KCancel) trace
// concurrently with the master. Events from one goroutine are ordered;
// events from different goroutines interleave by arrival, so consumers
// that need a deterministic sequence must filter to kinds emitted by a
// single logical thread (see specrt's golden-sequence tests).
//
// The package deliberately imports nothing from the rest of the repository
// so every layer (vm, doall, specrt, bench) can emit into it without
// dependency cycles.
package obs
