package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestCollectorLazyGrowth: the ring must allocate only what it records —
// a collector with a large capacity and three events retains three events —
// and still wrap correctly once the capacity is reached.
func TestCollectorLazyGrowth(t *testing.T) {
	c := NewCollector(1 << 20)
	for i := 0; i < 3; i++ {
		c.Emit(Event{Kind: KMark, Iter: int64(i)})
	}
	if c.Len() != 3 || c.Dropped() != 0 {
		t.Fatalf("len %d dropped %d, want 3, 0", c.Len(), c.Dropped())
	}

	small := NewCollector(4)
	for i := 0; i < 10; i++ {
		small.Emit(Event{Kind: KMark, Iter: int64(i)})
	}
	if small.Len() != 4 {
		t.Fatalf("len %d after wrap, want 4", small.Len())
	}
	if small.Total() != 10 || small.Dropped() != 6 {
		t.Fatalf("total %d dropped %d, want 10, 6", small.Total(), small.Dropped())
	}
	evs := small.Events()
	for i, ev := range evs {
		if want := int64(6 + i); ev.Iter != want {
			t.Fatalf("event %d has iter %d, want %d (oldest-first order)", i, ev.Iter, want)
		}
	}
}

// TestCollectorConcurrentOverflow (-race): concurrent emitters into a
// small ring must never lose count — total equals emissions, dropped
// equals total minus capacity.
func TestCollectorConcurrentOverflow(t *testing.T) {
	const goroutines, perG = 8, 500
	c := NewCollector(64)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				c.Emit(Event{Kind: KMark, Worker: g, Iter: int64(i)})
			}
		}(g)
	}
	wg.Wait()
	if c.Total() != goroutines*perG {
		t.Fatalf("total %d, want %d", c.Total(), goroutines*perG)
	}
	if got, want := c.Dropped(), int64(goroutines*perG-64); got != want {
		t.Fatalf("dropped %d, want %d", got, want)
	}
	if c.Len() != 64 {
		t.Fatalf("retained %d, want 64", c.Len())
	}
}

// TestSummarizePhases: events must fold into the right phases with summed
// durations, and phases with no events must be absent.
func TestSummarizePhases(t *testing.T) {
	events := []Event{
		{Kind: KJobPhase, Cause: PhaseQueued, TimeNS: 0, DurNS: 100},
		{Kind: KSpawn, TimeNS: 100, DurNS: 50},
		{Kind: KWorkerJoin, TimeNS: 150, DurNS: 400},
		{Kind: KWorkerJoin, TimeNS: 150, DurNS: 300},
		{Kind: KValidate, TimeNS: 600, DurNS: 30},
		{Kind: KValidateEager, TimeNS: 640, DurNS: 20},
		{Kind: KContribute, TimeNS: 500, DurNS: 10},
		{Kind: KInstall, TimeNS: 700, DurNS: 25},
		{Kind: KCommit, TimeNS: 725, DurNS: 15},
		{Kind: KRecovery, TimeNS: 800, DurNS: 60},
		{Kind: KCOWCopy, TimeNS: 10}, // outside the taxonomy
	}
	spans := SummarizePhases(events)
	got := PhaseTotals(spans)
	want := map[string]int64{
		PhaseQueued: 100, PhaseSpawn: 50, PhaseRun: 700,
		PhaseValidate: 50, PhaseMerge: 10, PhaseCommit: 40, PhaseRecovery: 60,
	}
	if len(got) != len(want) {
		t.Fatalf("phases %v, want %v", got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("phase %s = %d, want %d", k, got[k], v)
		}
	}
	// Presentation order must follow PhaseNames.
	for i, ps := range spans {
		if ps.Phase != PhaseNames[i] {
			t.Errorf("span %d is %s, want %s", i, ps.Phase, PhaseNames[i])
		}
	}
	if len(SummarizePhases(nil)) != 0 {
		t.Error("empty stream must yield no phases")
	}
}

// TestWriteJobTrace: the job trace document must be valid Chrome
// trace_event JSON carrying the raw events plus named metadata and one
// synthesized summary slice per phase.
func TestWriteJobTrace(t *testing.T) {
	events := []Event{
		{Kind: KJobPhase, Cause: PhaseQueued, TimeNS: 0, DurNS: 100, Worker: -1, Invocation: -1, Iter: -1},
		{Kind: KSpawn, TimeNS: 100, DurNS: 50, Worker: -1, Iter: -1, Cause: "warm", A: 4, B: 4},
		{Kind: KWorkerJoin, TimeNS: 150, DurNS: 400, Worker: 0, Iter: -1},
	}
	var buf bytes.Buffer
	if err := WriteJobTrace(&buf, "j000042", events); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Cat   string         `json:"cat"`
			Phase string         `json:"ph"`
			TID   int64          `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("job trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var procName, phaseRows, phaseSlices int
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Phase == "M" && ev.Name == "process_name":
			procName++
			if name := ev.Args["name"]; name != "job j000042" {
				t.Errorf("process_name %v, want job j000042", name)
			}
		case ev.Phase == "M" && ev.Name == "thread_name" && ev.TID >= 100:
			phaseRows++
		case ev.Phase == "X" && ev.Cat == "phase":
			phaseSlices++
			if !strings.HasPrefix(ev.Name, "phase: ") {
				t.Errorf("phase slice named %q", ev.Name)
			}
		}
	}
	if procName != 1 {
		t.Errorf("%d process_name records, want 1", procName)
	}
	if phaseRows != 3 || phaseSlices != 3 {
		t.Errorf("%d phase rows, %d phase slices, want 3 each (queued, spawn, run)", phaseRows, phaseSlices)
	}
	// Raw events ride along untouched.
	if len(doc.TraceEvents) != 1+len(events)+2*3 {
		t.Errorf("%d trace events, want %d", len(doc.TraceEvents), 1+len(events)+2*3)
	}
}

// TestFlightRecorder: the ring must evict oldest-first, snapshot
// newest-first, and count by reason across evictions.
func TestFlightRecorder(t *testing.T) {
	fr := NewFlightRecorder(2)
	for i := 0; i < 3; i++ {
		fr.Record(Postmortem{JobID: fmt.Sprintf("j%d", i), Reason: "misspec"})
	}
	fr.Record(Postmortem{JobID: "j3", Reason: "failed"})
	st := fr.State()
	if st.Total != 4 || st.Retained != 2 || st.Capacity != 2 {
		t.Fatalf("total %d retained %d cap %d, want 4, 2, 2", st.Total, st.Retained, st.Capacity)
	}
	if st.Postmortems[0].JobID != "j3" || st.Postmortems[1].JobID != "j2" {
		t.Fatalf("snapshot order %s, %s; want j3, j2 (newest first)",
			st.Postmortems[0].JobID, st.Postmortems[1].JobID)
	}
	if st.ByReason["misspec"] != 3 || st.ByReason["failed"] != 1 {
		t.Fatalf("by-reason %v", st.ByReason)
	}

	// Metrics surface through a registry scrape.
	reg := NewRegistry()
	fr.PublishMetrics(reg)
	var buf bytes.Buffer
	reg.WriteProm(&buf)
	out := buf.String()
	if !strings.Contains(out, "privateer_flight_retained 2") {
		t.Errorf("missing retained gauge:\n%s", out)
	}
	if !strings.Contains(out, `privateer_flight_postmortems_total{reason="misspec"} 3`) {
		t.Errorf("missing per-reason counter:\n%s", out)
	}

	// A nil recorder is inert everywhere.
	var nilFR *FlightRecorder
	nilFR.Record(Postmortem{})
	if nilFR.Total() != 0 || nilFR.Snapshot() != nil {
		t.Error("nil recorder must be inert")
	}
	nilFR.PublishMetrics(reg)
}

// TestHealthzReadyz: /healthz always answers 200; /readyz follows the
// installed probe and defaults to ready without one.
func TestHealthzReadyz(t *testing.T) {
	s := NewServer(NewRegistry())
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("/healthz status %d", rec.Code)
	}
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz with no probe: status %d, want 200", rec.Code)
	}
	ready := true
	s.SetReady(func() bool { return ready })
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("/readyz ready: status %d", rec.Code)
	}
	ready = false
	rec := get(t, s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz draining: status %d, want 503", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "draining") {
		t.Errorf("/readyz draining body %q", rec.Body.String())
	}
}

// TestHistogramExpositionThroughHandler: a histogram scraped through the
// real /metrics handler must carry a +Inf bucket, _sum and _count — and a
// mistyped series under the same family (the exposition gap) must render
// as an empty histogram rather than a bare invalid line.
func TestHistogramExpositionThroughHandler(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_lat_ns", "latency", LatencyBuckets, "tenant", "a")
	h.Observe(5000)
	h.Observe(1 << 35)
	// Provoke the gap: a counter registration against the histogram name
	// creates a series with no *Histogram under the histogram family.
	reg.Counter("t_lat_ns", "latency", "tenant", "b").Add(7)

	s := NewServer(reg)
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`t_lat_ns_bucket{tenant="a",le="+Inf"} 2`,
		`t_lat_ns_sum{tenant="a"}`,
		`t_lat_ns_count{tenant="a"} 2`,
		`t_lat_ns_bucket{tenant="b",le="+Inf"} 0`,
		`t_lat_ns_sum{tenant="b"} 0`,
		`t_lat_ns_count{tenant="b"} 0`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q:\n%s", want, body)
		}
	}
	// Every non-comment line must parse as "name{labels} value" — the
	// same shape gate CI runs against the live endpoint.
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Errorf("bad exposition line %q", line)
		}
	}
}
