package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestNilTracerIsInert: every method must be a no-op on the disabled
// tracer — the runtime calls them unguarded on cold paths.
func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	if tr.On() {
		t.Error("nil tracer reports On")
	}
	if tr.Now() != 0 {
		t.Error("nil tracer Now != 0")
	}
	tr.Emit(Event{Kind: KMisspec})
	tr.Instant(Event{Kind: KMisspec})
	if NewTracer(nil) != nil {
		t.Error("NewTracer(nil) should be the disabled tracer")
	}
}

// TestCollectorRingWrap: overflow must keep the newest events, report the
// drop count, and preserve emission order.
func TestCollectorRingWrap(t *testing.T) {
	c := NewCollector(4)
	for i := 0; i < 10; i++ {
		c.Emit(Event{Kind: KMisspec, Iter: int64(i)})
	}
	evs := c.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(6 + i); ev.Iter != want {
			t.Errorf("event %d: iter %d, want %d", i, ev.Iter, want)
		}
	}
	if c.Total() != 10 {
		t.Errorf("total %d, want 10", c.Total())
	}
	if c.Dropped() != 6 {
		t.Errorf("dropped %d, want 6", c.Dropped())
	}
	c.Reset()
	if len(c.Events()) != 0 || c.Total() != 0 || c.Dropped() != 0 {
		t.Error("reset did not clear the collector")
	}
}

// TestCollectorConcurrentEmit: workers emit from their own goroutines.
func TestCollectorConcurrentEmit(t *testing.T) {
	c := NewCollector(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				c.Emit(Event{Kind: KContribute, Worker: w})
			}
		}(w)
	}
	wg.Wait()
	if c.Total() != 800 {
		t.Errorf("total %d, want 800", c.Total())
	}
}

// TestChromeTraceShape: the export must be valid JSON with the
// trace_event envelope, complete slices for durations and instants
// otherwise.
func TestChromeTraceShape(t *testing.T) {
	events := []Event{
		{Kind: KRegionInvoke, TimeNS: 1000, DurNS: 5000, Invocation: 0, Worker: -1, Iter: -1, A: 0, B: 40},
		{Kind: KMisspec, TimeNS: 2000, Invocation: 0, Worker: 2, Iter: 7, Cause: "privacy violated (fast phase)"},
		{Kind: KMark, TimeNS: 0, DurNS: 100, Invocation: -1, Worker: -1, Iter: -1, Cause: "dispatch"},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("chrome trace is not valid JSON")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("exported %d events, want 3", len(doc.TraceEvents))
	}
	if ph := doc.TraceEvents[0]["ph"]; ph != "X" {
		t.Errorf("duration event phase %v, want X", ph)
	}
	if ph := doc.TraceEvents[1]["ph"]; ph != "i" {
		t.Errorf("instant event phase %v, want i", ph)
	}
	if name := doc.TraceEvents[1]["name"]; !strings.Contains(name.(string), "misspec") {
		t.Errorf("misspec event name %v", name)
	}
	if name := doc.TraceEvents[2]["name"]; name != "dispatch" {
		t.Errorf("mark event name %v, want bare label", name)
	}
}

// TestSummarizeMetrics: per-invocation folding must attribute counts to the
// right invocation and bucket unscoped events under -1.
func TestSummarizeMetrics(t *testing.T) {
	events := []Event{
		{Kind: KRegionInvoke, DurNS: 100, Invocation: 0},
		{Kind: KSpanStart, Invocation: 0},
		{Kind: KWorkerSpawn, Invocation: 0},
		{Kind: KWorkerSpawn, Invocation: 0},
		{Kind: KMisspec, Invocation: 0},
		{Kind: KRecovery, Invocation: 0},
		{Kind: KInstall, A: 64, Invocation: 0},
		{Kind: KCommit, A: 3, Invocation: 0},
		{Kind: KSeqFallback, Invocation: 1},
		{Kind: KCOWCopy, Invocation: -1},
	}
	ms := Summarize(events)
	if len(ms) != 3 {
		t.Fatalf("got %d invocation buckets, want 3", len(ms))
	}
	if ms[0].Invocation != -1 || ms[0].COWCopies != 1 {
		t.Errorf("unscoped bucket wrong: %+v", ms[0])
	}
	m0 := ms[1]
	if m0.Spans != 1 || m0.Workers != 2 || m0.Misspecs != 1 || m0.Recoveries != 1 ||
		m0.InstalledBytes != 64 || m0.CommittedIO != 3 || m0.WallNS != 100 {
		t.Errorf("invocation 0 metrics wrong: %+v", m0)
	}
	if ms[2].Fallbacks != 1 {
		t.Errorf("invocation 1 fallbacks %d, want 1", ms[2].Fallbacks)
	}

	sum := FormatSummary(events)
	for _, want := range []string{"region-invoke", "seq-fallback", "Per-invocation"} {
		if !strings.Contains(sum, want) {
			t.Errorf("summary missing %q:\n%s", want, sum)
		}
	}
}
