package obs

// Job lifecycle phases. The region service decomposes a job's wall time the
// way the paper's cost model decomposes speculation overhead: privatization
// (spawn), execution (run), validation, merge, commit, and recovery — plus
// the service-side queue wait the runtime itself cannot see. Each phase is
// derived from the kinds of events the runtime already emits, so the
// breakdown needs no second instrumentation layer.

const (
	// PhaseQueued is the time between job submission and a runner picking
	// the job up (KJobPhase events with Cause "queued").
	PhaseQueued = "queued"
	// PhaseSpawn covers worker privatization: address-space clone or warm
	// reclone plus interpreter setup (KSpawn fleet spans).
	PhaseSpawn = "spawn"
	// PhaseRun covers speculative worker execution (KWorkerJoin busy spans).
	PhaseRun = "run"
	// PhaseValidate covers privacy validation passes, both synchronous and
	// eager-pipelined (KValidate, KValidateEager).
	PhaseValidate = "validate"
	// PhaseMerge covers worker state merges into checkpoints (KContribute).
	PhaseMerge = "merge"
	// PhaseCommit covers checkpoint installs and deferred-output commits,
	// both synchronous and overlapped (KInstall, KCommit, KCommitAsync).
	PhaseCommit = "commit"
	// PhaseRecovery covers sequential re-execution after misspeculation and
	// whole-invocation sequential fallback (KRecovery, KSeqFallback).
	PhaseRecovery = "recovery"
)

// PhaseNames lists every job lifecycle phase in presentation order.
var PhaseNames = []string{
	PhaseQueued, PhaseSpawn, PhaseRun,
	PhaseValidate, PhaseMerge, PhaseCommit, PhaseRecovery,
}

// PhaseOf maps an event to the lifecycle phase it contributes to, or ""
// when the event is outside the phase taxonomy (COW faults, TLB flushes,
// marks, and other micro-events remain visible in the raw trace but do not
// enter the phase breakdown).
func PhaseOf(ev Event) string {
	switch ev.Kind {
	case KJobPhase:
		return ev.Cause
	case KSpawn:
		return PhaseSpawn
	case KWorkerJoin:
		return PhaseRun
	case KValidate, KValidateEager:
		return PhaseValidate
	case KContribute:
		return PhaseMerge
	case KInstall, KCommit, KCommitAsync:
		return PhaseCommit
	case KRecovery, KSeqFallback:
		return PhaseRecovery
	}
	return ""
}

// PhaseSpan aggregates every event of one phase within a job trace.
type PhaseSpan struct {
	// Phase is the lifecycle phase name.
	Phase string `json:"phase"`
	// Count is the number of contributing events.
	Count int64 `json:"count"`
	// NS is the summed duration of the contributing spans in nanoseconds.
	NS int64 `json:"ns"`
	// FirstNS is the earliest contributing event's start time.
	FirstNS int64 `json:"first_ns"`
	// LastNS is the latest contributing event's end time.
	LastNS int64 `json:"last_ns"`
}

// SummarizePhases folds a job's event stream into its per-phase breakdown,
// in PhaseNames order, omitting phases no event contributed to.
func SummarizePhases(events []Event) []PhaseSpan {
	byPhase := map[string]*PhaseSpan{}
	for _, ev := range events {
		ph := PhaseOf(ev)
		if ph == "" {
			continue
		}
		ps := byPhase[ph]
		if ps == nil {
			ps = &PhaseSpan{Phase: ph, FirstNS: ev.TimeNS}
			byPhase[ph] = ps
		}
		ps.Count++
		ps.NS += ev.DurNS
		if ev.TimeNS < ps.FirstNS {
			ps.FirstNS = ev.TimeNS
		}
		if end := ev.TimeNS + ev.DurNS; end > ps.LastNS {
			ps.LastNS = end
		}
	}
	out := make([]PhaseSpan, 0, len(byPhase))
	for _, name := range PhaseNames {
		if ps, ok := byPhase[name]; ok {
			out = append(out, *ps)
		}
	}
	// Phases outside the canonical list (unexpected KJobPhase causes)
	// still surface, after the known ones.
	known := map[string]bool{}
	for _, name := range PhaseNames {
		known[name] = true
	}
	for _, ev := range events {
		if ph := PhaseOf(ev); ph != "" && !known[ph] {
			known[ph] = true
			out = append(out, *byPhase[ph])
		}
	}
	return out
}

// PhaseTotals reduces a breakdown to a phase→nanoseconds map, the form
// JobView carries.
func PhaseTotals(spans []PhaseSpan) map[string]int64 {
	if len(spans) == 0 {
		return nil
	}
	out := make(map[string]int64, len(spans))
	for _, ps := range spans {
		out[ps.Phase] = ps.NS
	}
	return out
}
