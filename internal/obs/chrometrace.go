package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// Chrome trace_event export. The output loads directly in Chrome's
// about://tracing (or Perfetto's legacy importer): events with a duration
// become complete ("X") slices, instants become "i" marks. Threads map the
// runtime's actors — tid 0 is the master/runtime, tid w+1 is worker w — so
// worker activity, checkpoint merges and misspeculations line up visually
// the way Figure 8 attributes them numerically.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	PID   int64          `json:"pid"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// chromeName renders an event's display name: the kind, refined by the
// cause label when one exists.
func chromeName(ev Event) string {
	if ev.Cause == "" {
		return ev.Kind.String()
	}
	if ev.Kind == KMark {
		return ev.Cause
	}
	return ev.Kind.String() + ": " + ev.Cause
}

func chromeArgs(ev Event) map[string]any {
	args := map[string]any{}
	if ev.Invocation >= 0 {
		args["invocation"] = ev.Invocation
	}
	if ev.Iter >= 0 {
		args["iter"] = ev.Iter
	}
	if ev.A != 0 {
		args["a"] = ev.A
	}
	if ev.B != 0 {
		args["b"] = ev.B
	}
	if ev.Site != "" {
		args["site"] = ev.Site
	}
	if len(args) == 0 {
		return nil
	}
	return args
}

// chromeEventOf converts one obs event into its trace_event form: spans
// become complete ("X") slices, instants become thread-scoped "i" marks.
func chromeEventOf(ev Event) chromeEvent {
	ce := chromeEvent{
		Name: chromeName(ev),
		Cat:  ev.Kind.String(),
		TS:   float64(ev.TimeNS) / 1e3,
		PID:  1,
		TID:  int64(ev.Worker) + 1,
		Args: chromeArgs(ev),
	}
	if ev.DurNS > 0 {
		ce.Phase = "X"
		ce.Dur = float64(ev.DurNS) / 1e3
	} else {
		ce.Phase = "i"
		ce.Scope = "t"
	}
	return ce
}

// WriteChromeTrace renders events as a Chrome trace_event JSON document.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ns"}
	for _, ev := range events {
		out.TraceEvents = append(out.TraceEvents, chromeEventOf(ev))
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("obs: chrome trace encode: %w", err)
	}
	return nil
}
