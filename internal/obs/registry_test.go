package obs

import (
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"
)

// TestCounterGaugeBasics: handles for the same (name, labels) share one
// series, and Add/Inc/Set/Value behave atomically.
func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("t_ops_total", "ops")
	c2 := reg.Counter("t_ops_total", "ops")
	c1.Add(3)
	c2.Inc()
	if got := c1.Value(); got != 4 {
		t.Errorf("counter value %d, want 4 (handles must share the series)", got)
	}
	g := reg.Gauge("t_depth", "depth")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Errorf("gauge value %d, want 5", got)
	}
	c1.Set(10)
	if got := c2.Value(); got != 10 {
		t.Errorf("counter after Set %d, want 10", got)
	}
}

// TestLabelsDistinguishSeries: different label values are different series,
// and label order does not matter (keys are sorted into the series key).
func TestLabelsDistinguishSeries(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("t_labeled_total", "h", "op", "add")
	b := reg.Counter("t_labeled_total", "h", "op", "sub")
	a.Add(1)
	b.Add(2)
	if a.Value() == b.Value() {
		t.Error("distinct label values must be distinct series")
	}
	x := reg.Counter("t_pair_total", "h", "k1", "v1", "k2", "v2")
	y := reg.Counter("t_pair_total", "h", "k2", "v2", "k1", "v1")
	x.Inc()
	if got := y.Value(); got != 1 {
		t.Errorf("reordered labels read %d, want 1 (same series)", got)
	}
}

// TestNilRegistrySafe: every constructor and writer must be a no-op on a
// nil registry, and the inert handles must tolerate use.
func TestNilRegistrySafe(t *testing.T) {
	var reg *Registry
	c := reg.Counter("t_x", "h")
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Error("inert counter must read 0")
	}
	g := reg.Gauge("t_y", "h")
	g.Set(3)
	if g.Value() != 0 {
		t.Error("inert gauge must read 0")
	}
	h := reg.Histogram("t_z", "h", nil)
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram must be inert")
	}
	reg.GaugeFunc("t_f", "h", func() float64 { return 1 })
	reg.RegisterCollector(func() {})
	reg.WriteProm(io.Discard)
	if err := reg.WriteVars(io.Discard); err != nil {
		t.Errorf("WriteVars on nil registry: %v", err)
	}
}

// TestWritePromFormat: exposition output carries HELP/TYPE headers, sorted
// families, and escaped label values.
func TestWritePromFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("t_b_total", "second family").Add(2)
	reg.Counter("t_a_total", "first family", "path", "a\\b\"c\nd").Inc()
	reg.GaugeFunc("t_c_rate", "computed", func() float64 { return 0.5 })
	var sb strings.Builder
	reg.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		"# HELP t_a_total first family\n",
		"# TYPE t_a_total counter\n",
		`t_a_total{path="a\\b\"c\nd"} 1`,
		"t_b_total 2",
		"# TYPE t_c_rate gauge\n",
		"t_c_rate 0.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Index(out, "t_a_total") > strings.Index(out, "t_b_total") {
		t.Error("families must be sorted by name")
	}
}

// TestHistogramExposition: buckets are cumulative, +Inf closes the series,
// and sum/count lines agree with the observations.
func TestHistogramExposition(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_lat_ns", "latency", []float64{10, 100})
	for _, v := range []int64{5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 3 || h.Sum() != 555 {
		t.Fatalf("count/sum = %d/%d, want 3/555", h.Count(), h.Sum())
	}
	var sb strings.Builder
	reg.WriteProm(&sb)
	out := sb.String()
	for _, want := range []string{
		`t_lat_ns_bucket{le="10"} 1`,
		`t_lat_ns_bucket{le="100"} 2`,
		`t_lat_ns_bucket{le="+Inf"} 3`,
		"t_lat_ns_sum 555",
		"t_lat_ns_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram exposition missing %q:\n%s", want, out)
		}
	}
}

// TestCollectorsRunOnScrape: registered collectors must run before every
// export so pull-style metrics are fresh, and WriteVars must emit valid
// JSON including the runtime baseline vars.
func TestCollectorsRunOnScrape(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("t_pull", "pulled at scrape")
	src := int64(0)
	reg.RegisterCollector(func() { g.Set(src) })
	src = 41
	var sb strings.Builder
	reg.WriteProm(&sb)
	if !strings.Contains(sb.String(), "t_pull 41") {
		t.Errorf("collector did not run before WriteProm:\n%s", sb.String())
	}
	src = 42
	sb.Reset()
	if err := reg.WriteVars(&sb); err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &vars); err != nil {
		t.Fatalf("WriteVars is not valid JSON: %v", err)
	}
	if vars["t_pull"] != float64(42) {
		t.Errorf("vars t_pull = %v, want 42", vars["t_pull"])
	}
	if _, ok := vars["go_goroutines"]; !ok {
		t.Error("vars missing go_goroutines")
	}
}

// TestRegistryConcurrentUse: handle updates, series creation, and scrapes
// must be safe to run concurrently (exercised under -race in CI).
func TestRegistryConcurrentUse(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_conc_hist", "h", nil)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("t_conc_total", "h", "worker", string(rune('a'+w)))
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			reg.WriteProm(io.Discard)
			_ = reg.WriteVars(io.Discard)
		}
	}()
	wg.Wait()
	if h.Count() != 4000 {
		t.Errorf("histogram count %d, want 4000", h.Count())
	}
}
