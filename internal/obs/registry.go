package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry is a lock-cheap metrics registry. Metric handles (Counter,
// Gauge, Histogram) are resolved once, up front, under the registry lock;
// after that every update is a single atomic add, so handles are safe to
// use from worker hot paths. Scrapes (WriteProm, WriteVars) run registered
// collector callbacks first, so subsystems that already keep atomic
// counters can publish pull-style at scrape time for zero steady-state
// cost.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []func()
}

// family is one metric name: its metadata plus every labeled series.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge", "histogram"
	mu     sync.Mutex
	series map[string]*series
}

// series is one (name, labels) time series.
type series struct {
	labels string // rendered `{k="v",...}` or ""
	val    int64  // atomic; int64 counters/gauges
	fval   uint64 // atomic; math.Float64bits for func-backed gauges
	fn     func() float64
	hist   *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// RegisterCollector adds a callback run (under the registry lock) before
// every scrape. Collectors pull values out of subsystem-owned atomics and
// push them into gauges/counters, so the instrumented code pays nothing
// between scrapes.
func (r *Registry) RegisterCollector(fn func()) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// getFamily finds or creates the named family. The first registration
// fixes help and type; later registrations with a different type reuse the
// existing family unchanged.
func (r *Registry) getFamily(name, help, typ string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ, series: map[string]*series{}}
		r.families[name] = f
	}
	return f
}

// getSeries finds or creates the series for the rendered label set.
func (f *family) getSeries(labels string) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[labels]
	if s == nil {
		s = &series{labels: labels}
		f.series[labels] = s
	}
	return s
}

// renderLabels turns alternating key, value pairs into the exposition-form
// label block, escaping values. Keys are sorted for a stable series key.
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, (len(kv)+1)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var sb strings.Builder
	sb.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.k)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabel(p.v))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var sb strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	return sb.String()
}

// Counter is a monotonically increasing int64 metric handle. The zero
// Counter is inert: Add and Inc are no-ops, Value returns 0.
type Counter struct{ s *series }

// Add increments the counter by n.
func (c Counter) Add(n int64) {
	if c.s != nil {
		atomic.AddInt64(&c.s.val, n)
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Set stores the counter's value directly. It exists for pull-style
// collectors that mirror an externally maintained monotone total at scrape
// time; values must never decrease.
func (c Counter) Set(v int64) {
	if c.s != nil {
		atomic.StoreInt64(&c.s.val, v)
	}
}

// Value returns the current count.
func (c Counter) Value() int64 {
	if c.s == nil {
		return 0
	}
	return atomic.LoadInt64(&c.s.val)
}

// Gauge is a settable int64 metric handle. The zero Gauge is inert.
type Gauge struct{ s *series }

// Set stores the gauge value.
func (g Gauge) Set(v int64) {
	if g.s != nil {
		atomic.StoreInt64(&g.s.val, v)
	}
}

// Add adjusts the gauge by delta.
func (g Gauge) Add(delta int64) {
	if g.s != nil {
		atomic.AddInt64(&g.s.val, delta)
	}
}

// Value returns the current gauge value.
func (g Gauge) Value() int64 {
	if g.s == nil {
		return 0
	}
	return atomic.LoadInt64(&g.s.val)
}

// Counter registers (or finds) a counter series. labels are alternating
// key, value pairs. Safe on a nil registry (returns an inert handle).
func (r *Registry) Counter(name, help string, labels ...string) Counter {
	if r == nil {
		return Counter{}
	}
	f := r.getFamily(name, help, "counter")
	return Counter{s: f.getSeries(renderLabels(labels))}
}

// Gauge registers (or finds) a gauge series. Safe on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...string) Gauge {
	if r == nil {
		return Gauge{}
	}
	f := r.getFamily(name, help, "gauge")
	return Gauge{s: f.getSeries(renderLabels(labels))}
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape
// time. Safe on a nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	f := r.getFamily(name, help, "gauge")
	s := f.getSeries(renderLabels(labels))
	s.fn = fn
}

// Histogram is a fixed-bucket histogram with atomic counts. Buckets are
// cumulative at export, per the Prometheus exposition format.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; +Inf implied
	counts []int64   // atomic; len(bounds)+1, last is the +Inf bucket
	sum    int64     // atomic; sum of observed values
	n      int64     // atomic; observation count
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, float64(v))
	atomic.AddInt64(&h.counts[i], 1)
	atomic.AddInt64(&h.sum, v)
	atomic.AddInt64(&h.n, 1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.n)
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return atomic.LoadInt64(&h.sum)
}

// DefBuckets is the default histogram bucket layout: powers of four from
// 256 up, wide enough for byte counts and nanosecond durations alike.
var DefBuckets = []float64{
	256, 1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10,
	1 << 20, 4 << 20, 16 << 20, 64 << 20, 256 << 20, 1 << 30,
}

// LatencyBuckets is the bucket layout for nanosecond latency histograms:
// powers of four from ~4 µs to ~69 s, wide enough that queue-dominated
// service jobs (p99 approaching a minute under oversubscription) still land
// below the +Inf bucket.
var LatencyBuckets = []float64{
	1 << 12, 1 << 14, 1 << 16, 1 << 18, 1 << 20, 1 << 22, 1 << 24,
	1 << 26, 1 << 28, 1 << 30, 1 << 32, 1 << 34, 1 << 36,
}

// Histogram registers (or finds) a histogram series with the given upper
// bounds (nil means DefBuckets). Safe on a nil registry (returns nil,
// which Observe tolerates).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.getFamily(name, help, "histogram")
	s := f.getSeries(renderLabels(labels))
	f.mu.Lock()
	defer f.mu.Unlock()
	if s.hist == nil {
		s.hist = &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
	}
	return s.hist
}

// snapshotFamilies runs registered collectors (outside the registry lock,
// so they may register new series) and returns the families sorted by
// name.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	cols := make([]func(), len(r.collectors))
	copy(cols, r.collectors)
	r.mu.Unlock()
	for _, fn := range cols {
		fn()
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// formatValue renders a float in exposition form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// WriteProm writes every metric in the Prometheus text exposition format
// (version 0.0.4). Collector callbacks run first. Safe on a nil registry.
func (r *Registry) WriteProm(w io.Writer) {
	if r == nil {
		return
	}
	for _, f := range r.snapshotFamilies() {
		f.mu.Lock()
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ)
		for _, k := range keys {
			s := f.series[k]
			switch {
			case f.typ == "histogram":
				// Every series under a histogram-typed family must render
				// in histogram form — including series created by a
				// mistyped registration that carry no *Histogram — or the
				// exposition emits bare lines that scrapers reject.
				writeHist(w, f.name, s)
			case s.fn != nil:
				fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
			default:
				fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, atomic.LoadInt64(&s.val))
			}
		}
		f.mu.Unlock()
	}
}

// writeHist emits one histogram series: cumulative buckets, sum, count. A
// series with no histogram attached (a mistyped registration under a
// histogram family) renders as an empty histogram — a lone +Inf bucket,
// zero sum and count — which is still format-valid.
func writeHist(w io.Writer, name string, s *series) {
	h := s.hist
	base := strings.TrimSuffix(strings.TrimPrefix(s.labels, "{"), "}")
	joint := func(le string) string {
		if base == "" {
			return fmt.Sprintf(`{le="%s"}`, le)
		}
		return fmt.Sprintf(`{%s,le="%s"}`, base, le)
	}
	if h == nil {
		fmt.Fprintf(w, "%s_bucket%s 0\n", name, joint("+Inf"))
		fmt.Fprintf(w, "%s_sum%s 0\n", name, s.labels)
		fmt.Fprintf(w, "%s_count%s 0\n", name, s.labels)
		return
	}
	var cum int64
	for i, b := range h.bounds {
		cum += atomic.LoadInt64(&h.counts[i])
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, joint(formatValue(b)), cum)
	}
	cum += atomic.LoadInt64(&h.counts[len(h.bounds)])
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, joint("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %d\n", name, s.labels, h.Sum())
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, h.Count())
}

// WriteVars writes an expvar-style JSON snapshot: every series keyed by
// "name{labels}", plus basic Go runtime stats. Collector callbacks run
// first. Safe on a nil registry.
func (r *Registry) WriteVars(w io.Writer) error {
	vars := map[string]any{}
	if r != nil {
		for _, f := range r.snapshotFamilies() {
			f.mu.Lock()
			for _, s := range f.series {
				key := f.name + s.labels
				switch {
				case s.hist != nil:
					vars[key] = map[string]int64{"count": s.hist.Count(), "sum": s.hist.Sum()}
				case s.fn != nil:
					vars[key] = s.fn()
				default:
					vars[key] = atomic.LoadInt64(&s.val)
				}
			}
			f.mu.Unlock()
		}
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	vars["go_goroutines"] = runtime.NumGoroutine()
	vars["go_heap_alloc_bytes"] = ms.HeapAlloc
	vars["go_total_alloc_bytes"] = ms.TotalAlloc
	vars["go_num_gc"] = ms.NumGC
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(vars)
}
