package obs

import "sync"

// Flight recorder: an always-on, bounded postmortem buffer. When a job
// misspeculates, falls back to sequential execution, fails, or is rejected
// at admission, the service snapshots the tail of the job's event stream
// plus its misspeculation→allocation-site attribution into the recorder, so
// an operator arriving after the fact still has the evidence — the same
// motivation as a cockpit flight recorder: the interesting window is the
// one just before things went wrong.

// DefaultFlightEntries is the number of postmortems retained when the
// configuration does not say otherwise.
const DefaultFlightEntries = 32

// DefaultPostmortemEvents bounds the per-postmortem event snapshot: the
// last N events of the job's trace ring.
const DefaultPostmortemEvents = 256

// MisspecAttribution is one row of misspeculation attribution carried into
// a postmortem: which region, cause, instruction site, and allocation-site
// object the violations clustered on. It mirrors the runtime's
// misspeculation-site table without importing it.
type MisspecAttribution struct {
	// Region is the parallel region the misspeculations occurred in.
	Region string `json:"region"`
	// Cause is the misspeculation reason label.
	Cause string `json:"cause"`
	// Site is the faulting instruction, when one was identified.
	Site string `json:"site,omitempty"`
	// Object is the allocation site of the object the violation touched,
	// when the faulting address resolved to a live object.
	Object string `json:"object,omitempty"`
	// Count is how many misspeculations share this attribution.
	Count int64 `json:"count"`
}

// Postmortem is one captured failure record.
type Postmortem struct {
	// JobID is the failed job's id ("" for admission rejections, which
	// never received one).
	JobID string `json:"job_id,omitempty"`
	// Tenant is the submitting tenant.
	Tenant string `json:"tenant"`
	// Prog is the submitted program.
	Prog string `json:"prog"`
	// Input is the submitted input class.
	Input string `json:"input"`
	// Reason classifies the capture: "misspec", "fallback", "failed" or
	// "rejected".
	Reason string `json:"reason"`
	// Error is the job error or rejection message, when there was one.
	Error string `json:"error,omitempty"`
	// UnixNS is the capture time in nanoseconds since the Unix epoch.
	UnixNS int64 `json:"unix_ns"`
	// Misspecs counts the run's detected misspeculations.
	Misspecs int64 `json:"misspecs"`
	// Fallbacks counts the run's sequential fallbacks.
	Fallbacks int64 `json:"fallbacks"`
	// Events is the tail of the job's trace ring at capture time.
	Events []Event `json:"events,omitempty"`
	// TotalEvents is how many events the job emitted in all.
	TotalEvents int64 `json:"total_events"`
	// DroppedEvents is how many of those the bounded ring had already
	// overwritten and the recorder therefore could not capture.
	DroppedEvents int64 `json:"dropped_events"`
	// Phases is the job's phase-latency breakdown at capture time.
	Phases []PhaseSpan `json:"phases,omitempty"`
	// Attribution maps the misspeculations to allocation sites.
	Attribution []MisspecAttribution `json:"attribution,omitempty"`
}

// FlightRecorder retains the last N postmortems in a ring.
type FlightRecorder struct {
	mu      sync.Mutex
	buf     []Postmortem
	cap     int
	next    int
	total   int64
	wrapped bool

	byReason map[string]int64
}

// NewFlightRecorder returns a recorder retaining up to entries postmortems;
// entries <= 0 selects DefaultFlightEntries.
func NewFlightRecorder(entries int) *FlightRecorder {
	if entries <= 0 {
		entries = DefaultFlightEntries
	}
	return &FlightRecorder{cap: entries, byReason: map[string]int64{}}
}

// Record captures pm, evicting the oldest postmortem when full.
func (fr *FlightRecorder) Record(pm Postmortem) {
	if fr == nil {
		return
	}
	fr.mu.Lock()
	if len(fr.buf) < fr.cap {
		fr.buf = append(fr.buf, pm)
	} else {
		fr.buf[fr.next] = pm
		fr.next++
		if fr.next == fr.cap {
			fr.next = 0
		}
		fr.wrapped = true
	}
	fr.total++
	fr.byReason[pm.Reason]++
	fr.mu.Unlock()
}

// Snapshot returns the retained postmortems, newest first.
func (fr *FlightRecorder) Snapshot() []Postmortem {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]Postmortem, 0, len(fr.buf))
	if fr.wrapped {
		for i := fr.next - 1; i >= 0; i-- {
			out = append(out, fr.buf[i])
		}
		for i := len(fr.buf) - 1; i >= fr.next; i-- {
			out = append(out, fr.buf[i])
		}
	} else {
		for i := len(fr.buf) - 1; i >= 0; i-- {
			out = append(out, fr.buf[i])
		}
	}
	return out
}

// Total returns how many postmortems were ever recorded, including evicted
// ones.
func (fr *FlightRecorder) Total() int64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// FlightState is the JSON document /debug/flight serves.
type FlightState struct {
	// Capacity is the recorder's ring size.
	Capacity int `json:"capacity"`
	// Total counts postmortems ever recorded, evictions included.
	Total int64 `json:"total"`
	// Retained is len(Postmortems).
	Retained int `json:"retained"`
	// ByReason counts recorded postmortems per reason label.
	ByReason map[string]int64 `json:"by_reason,omitempty"`
	// Postmortems lists the retained captures, newest first.
	Postmortems []Postmortem `json:"postmortems"`
}

// State snapshots the recorder for serving.
func (fr *FlightRecorder) State() FlightState {
	if fr == nil {
		return FlightState{}
	}
	pms := fr.Snapshot()
	fr.mu.Lock()
	st := FlightState{
		Capacity:    fr.cap,
		Total:       fr.total,
		Retained:    len(pms),
		ByReason:    make(map[string]int64, len(fr.byReason)),
		Postmortems: pms,
	}
	for k, v := range fr.byReason {
		st.ByReason[k] = v
	}
	fr.mu.Unlock()
	return st
}

// PublishMetrics registers flight-recorder health metrics on reg: the
// running count of postmortems per reason and the retained-buffer size.
func (fr *FlightRecorder) PublishMetrics(reg *Registry) {
	if fr == nil || reg == nil {
		return
	}
	retained := reg.Gauge("privateer_flight_retained",
		"Postmortems currently retained in the flight recorder ring.")
	reg.RegisterCollector(func() {
		fr.mu.Lock()
		n := int64(len(fr.buf))
		reasons := make(map[string]int64, len(fr.byReason))
		for reason, v := range fr.byReason {
			reasons[reason] = v
		}
		fr.mu.Unlock()
		retained.Set(n)
		// Collectors run outside the registry lock, so registering the
		// per-reason series lazily at scrape time is safe.
		for reason, v := range reasons {
			reg.Counter("privateer_flight_postmortems_total",
				"Postmortems ever recorded by the flight recorder, by reason.",
				"reason", reason).Set(v)
		}
	})
}
