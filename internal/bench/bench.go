// Package bench regenerates every table and figure of the paper's
// evaluation (section 6): Table 1 (technique comparison), Table 3 (dynamic
// program details), Figure 6 (whole-program speedups), Figure 7 (Privateer
// vs DOALL-only), Figure 8 (overhead breakdown) and Figure 9 (sensitivity
// to misspeculation).
//
// Speedups are reported in deterministic simulated time (see
// specrt/sim.go): the host machine's core count does not affect results,
// only the modeled 24-worker machine does. Shapes — who wins, scaling
// trends, where DOALL-only fails — are the quantities reproduced; absolute
// factors depend on the cost model, not on the authors' testbed.
package bench

import (
	"fmt"
	"math"
	"strings"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/obs"
	"privateer/internal/progs"
	"privateer/internal/specrt"
	"privateer/internal/vm"
)

// Config selects inputs and sweep points.
type Config struct {
	// Input is the input class for measurements ("train", "ref", "alt").
	Input string
	// WorkerCounts is Figure 6's sweep.
	WorkerCounts []int
	// Fig8Workers is Figure 8's sweep.
	Fig8Workers []int
	// MisspecRates is Figure 9's sweep (fraction of iterations).
	MisspecRates []float64
	// FixedWorkers is the machine size for Figures 7 and 9 (the paper's
	// 24-core machine).
	FixedWorkers int
	// Programs restricts the benchmark set (nil = all five).
	Programs []string
	// Trace receives speculation-lifecycle events from every speculative
	// run the suite performs (nil disables tracing).
	Trace *obs.Tracer
	// Metrics, when non-nil, is threaded into every speculative run so a
	// live introspection server can observe the suite as it executes.
	Metrics *obs.Registry
	// OpProf, when non-nil, is the sampling opcode profiler threaded into
	// every speculative run.
	OpProf *interp.OpProfiler
}

// DefaultConfig mirrors the paper's evaluation points.
func DefaultConfig() Config {
	return Config{
		Input:        "ref",
		WorkerCounts: []int{1, 4, 8, 12, 16, 20, 24},
		Fig8Workers:  []int{4, 8, 12, 16, 20, 24},
		// The paper sweeps 0.01%-1% on loops of >= 1000 iterations
		// (expected 0.1-10 misspeculations). These loops run 48-192
		// iterations, so the rates are rescaled to land in the same
		// expected-misspeculation regime.
		MisspecRates: []float64{0, 0.01, 0.03, 0.10},
		FixedWorkers: 24,
	}
}

// QuickConfig is a scaled-down configuration for tests.
func QuickConfig() Config {
	return Config{
		Input:        "train",
		WorkerCounts: []int{1, 4, 8},
		Fig8Workers:  []int{4, 8},
		MisspecRates: []float64{0, 0.10},
		FixedWorkers: 8,
	}
}

// prepared caches the compiled artifacts for one benchmark so every figure
// reuses one profile+transform.
type prepared struct {
	prog     *progs.Program
	input    progs.Input
	seqSteps int64
	par      *core.Parallelized
	static   *core.StaticParallelized
	trace    *obs.Tracer
	metrics  *obs.Registry
	opprof   *interp.OpProfiler
}

// Suite prepares all benchmarks once and runs the experiments.
type Suite struct {
	// Cfg is the configuration in force.
	Cfg      Config
	programs []*prepared
}

// NewSuite compiles every benchmark (sequential baseline, Privateer
// pipeline, DOALL-only pipeline) for the configured input.
func NewSuite(cfg Config) (*Suite, error) {
	s := &Suite{Cfg: cfg}
	for _, p := range progs.All() {
		if len(cfg.Programs) > 0 && !containsString(cfg.Programs, p.Name) {
			continue
		}
		pr, err := prepare(p, cfg.Input)
		if err != nil {
			return nil, err
		}
		pr.trace = cfg.Trace
		pr.metrics = cfg.Metrics
		pr.opprof = cfg.OpProf
		s.programs = append(s.programs, pr)
	}
	return s, nil
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func inputFor(p *progs.Program, name string) progs.Input {
	switch name {
	case "train":
		return p.Train
	case "alt":
		return p.Alt
	case "huge":
		return p.Huge
	default:
		return p.Ref
	}
}

// seqStepsOf measures the unmodified program's simulated time.
func seqStepsOf(p *progs.Program, in progs.Input) (int64, error) {
	seqIt := interp.New(p.Build(in), vm.NewAddressSpace())
	if _, err := seqIt.Run(); err != nil {
		return 0, fmt.Errorf("%s sequential: %w", p.Name, err)
	}
	return seqIt.Steps, nil
}

func prepare(p *progs.Program, inputName string) (*prepared, error) {
	in := inputFor(p, inputName)
	// Best sequential execution: the unmodified program.
	seqIt := interp.New(p.Build(in), vm.NewAddressSpace())
	if _, err := seqIt.Run(); err != nil {
		return nil, fmt.Errorf("%s sequential: %w", p.Name, err)
	}
	par, err := core.Parallelize(p.Build(in), core.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s parallelize: %w", p.Name, err)
	}
	static, err := core.ParallelizeStatic(p.Build(in), core.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s static parallelize: %w", p.Name, err)
	}
	return &prepared{prog: p, input: in, seqSteps: seqIt.Steps, par: par, static: static}, nil
}

// runPrivateer executes the speculative build and returns the runtime.
func (pr *prepared) runPrivateer(cfg specrt.Config) (*specrt.RT, error) {
	if cfg.Trace == nil {
		cfg.Trace = pr.trace
	}
	if cfg.Metrics == nil {
		cfg.Metrics = pr.metrics
	}
	if cfg.OpProf == nil {
		cfg.OpProf = pr.opprof
	}
	rt, _, err := core.Run(pr.par, cfg)
	return rt, err
}

// speedup is seq simulated time over parallel simulated time.
func (pr *prepared) speedup(rt *specrt.RT) float64 {
	t := rt.Sim.Time()
	if t <= 0 {
		return 0
	}
	return float64(pr.seqSteps) / float64(t)
}

// staticSpeedup runs the DOALL-only build at the given worker count.
func (pr *prepared) staticSpeedup(workers int) (float64, error) {
	run, err := core.RunStatic(pr.static, workers)
	if err != nil {
		return 0, err
	}
	t := run.SimTime()
	if t <= 0 {
		return 0, nil
	}
	return float64(pr.seqSteps) / float64(t), nil
}

func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		sum += math.Log(x)
	}
	return math.Exp(sum / float64(len(xs)))
}

// table renders rows with aligned columns.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	for i := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	sb.WriteString("\n")
	for _, r := range rows {
		writeRow(r)
	}
	return sb.String()
}
