package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/progs"
	"privateer/internal/specrt"
	"privateer/internal/vm"
)

// The elision experiment measures what the transform postprocess pass buys:
// joining adjacent privacy checks into spans, eliminating dominated checks,
// hoisting invariant checks, promoting affine per-iteration checks to one
// preheader span, and dropping separation checks whose underlying object was
// already checked. The "before" build disables only the postprocess pass
// (core.Options.DisablePostprocess); everything else — allocation routing,
// check insertion, outlining, the runtime — is identical, so the wall-clock
// delta isolates the pass. Every row asserts the elided run reproduces the
// unelided run byte for byte, and compares both against the sequential
// reference.

// ElisionRow is one benchmark program run speculatively with the postprocess
// pass disabled ("before") and enabled ("after").
type ElisionRow struct {
	// Name and Input identify the workload.
	Name  string `json:"name"`
	Input string `json:"input"`
	// Workers is the speculative worker count used.
	Workers int `json:"workers"`

	// Static pass counters, summed over the program's parallel regions
	// (zero in the before build by construction).
	Joined          int `json:"joined"`
	Eliminated      int `json:"eliminated"`
	InvPromoted     int `json:"inv_promoted"`
	DensePromoted   int `json:"dense_promoted"`
	SparsePromoted  int `json:"sparse_promoted"`
	HeapRedundantUO int `json:"heap_redundant_uo"`

	// BeforeNS / AfterNS are the speculative-run wall clocks (minimum over
	// elisionReps runs) and Speedup is BeforeNS / AfterNS. Wall clock
	// measures the interpreter on this host — noisy, and dominated by
	// interpretation on compute-bound programs — so the headline numbers
	// are the deterministic simulated-time ones below (see sim.go for why
	// the repo reports simulated time everywhere).
	BeforeNS int64   `json:"before_ns"`
	AfterNS  int64   `json:"after_ns"`
	SeqNS    int64   `json:"seq_ns"`
	Speedup  float64 `json:"speedup"`
	// BeforeSim / AfterSim are the whole-program simulated times of the
	// two builds and SimSpeedup their ratio — the deterministic,
	// host-independent effect of the pass. SeqSteps is the unmodified
	// sequential program's step count, and EndToEnd is
	// SeqSteps / AfterSim: the paper's Figure 6 whole-program speedup,
	// measured on the elided build.
	BeforeSim  int64   `json:"before_sim"`
	AfterSim   int64   `json:"after_sim"`
	SeqSteps   int64   `json:"seq_steps"`
	SimSpeedup float64 `json:"sim_speedup"`
	EndToEnd   float64 `json:"end_to_end"`

	// BeforeChecks / AfterChecks count dynamic privacy checks executed
	// (reads + writes; a span counts once however many bytes it covers).
	BeforeChecks int64 `json:"before_checks"`
	AfterChecks  int64 `json:"after_checks"`
	// BeforePrivNS / AfterPrivNS are the wall clocks inside those checks.
	BeforePrivNS int64 `json:"before_priv_ns"`
	AfterPrivNS  int64 `json:"after_priv_ns"`

	// BaselineMatch reports whether the elided run reproduced the unelided
	// run's return value and output byte for byte (must always hold).
	BaselineMatch bool `json:"baseline_match"`
	// SeqMatch additionally compares both against the sequential reference
	// (false only for FP-reduction fold-order differences, as elsewhere).
	SeqMatch bool `json:"seq_match"`
}

// ElisionReport bundles the elision experiment's measurements.
type ElisionReport struct {
	// Input is the program input class measured ("huge" unless -quick).
	Input string `json:"input"`
	// Programs holds one row per benchmark.
	Programs []ElisionRow `json:"programs"`
}

// JSON renders the report machine-readably.
func (r *ElisionReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Format renders the report as an aligned before/after table.
func (r *ElisionReport) Format() string {
	var sb strings.Builder
	sb.WriteString("Check elision & span promotion: postprocess pass off vs on (wall clock)\n\n")
	rows := make([][]string, 0, len(r.Programs))
	for _, m := range r.Programs {
		base := "yes"
		if !m.BaselineMatch {
			base = "NO"
		}
		seq := "yes"
		if !m.SeqMatch {
			seq = "fp-bits"
		}
		rows = append(rows, []string{
			m.Name,
			m.Input,
			fmt.Sprintf("%d", m.Joined),
			fmt.Sprintf("%d", m.Eliminated),
			fmt.Sprintf("%d", m.InvPromoted),
			fmt.Sprintf("%d", m.DensePromoted),
			fmt.Sprintf("%d", m.SparsePromoted),
			fmt.Sprintf("%d", m.HeapRedundantUO),
			fmt.Sprintf("%d", m.BeforeChecks),
			fmt.Sprintf("%d", m.AfterChecks),
			fmt.Sprintf("%.1f", float64(m.BeforeNS)/1e6),
			fmt.Sprintf("%.1f", float64(m.AfterNS)/1e6),
			fmt.Sprintf("%.2fx", m.Speedup),
			fmt.Sprintf("%.2fx", m.SimSpeedup),
			fmt.Sprintf("%.2fx", m.EndToEnd),
			base,
			seq,
		})
	}
	sb.WriteString(fmt.Sprintf("programs (%s inputs, %d workers): counters are static sites, checks are dynamic,\n"+
		"elide columns are wall clock / simulated time, end-to-end is the Figure 6 metric on the elided build\n",
		r.Input, scaleWorkers))
	sb.WriteString(table([]string{
		"program", "input", "join", "elim", "inv", "dense", "sparse", "uo",
		"before checks", "after checks", "before ms", "after ms", "elide",
		"elide (sim)", "end-to-end", "=base", "=seq"}, rows))
	if best := r.bestSpeedup(); best > 0 {
		sb.WriteString(fmt.Sprintf("\nheadline: elision cuts dynamic checks up to %.0fx and speculative "+
			"wall clock up to %.1fx;\n", r.bestCheckCut(), best))
		if worst := r.worstEndToEnd(); worst >= 1 {
			sb.WriteString(fmt.Sprintf("every elided run beats sequential end-to-end (worst %.1fx) "+
				"and is bit-identical to the unelided build\n", worst))
		} else {
			sb.WriteString(fmt.Sprintf("every row is bit-identical to the unelided build "+
				"(end-to-end bottoms at %.1fx — these inputs are too small to amortize spawn)\n", worst))
		}
	}
	return sb.String()
}

func (r *ElisionReport) bestSpeedup() float64 {
	best := 0.0
	for _, m := range r.Programs {
		if m.Speedup > best {
			best = m.Speedup
		}
	}
	return best
}

func (r *ElisionReport) worstEndToEnd() float64 {
	worst := 0.0
	for _, m := range r.Programs {
		if worst == 0 || m.EndToEnd < worst {
			worst = m.EndToEnd
		}
	}
	return worst
}

func (r *ElisionReport) bestCheckCut() float64 {
	best := 0.0
	for _, m := range r.Programs {
		if m.AfterChecks > 0 {
			if cut := float64(m.BeforeChecks) / float64(m.AfterChecks); cut > best {
				best = cut
			}
		}
	}
	return best
}

// elisionReps: wall-clock minima over this many speculative runs per mode.
const elisionReps = 3

// elisionRun parallelizes a freshly built module with the given postprocess
// setting and times core.Run, returning the best wall clock, the last run's
// output/result, the last run's privacy-check stats, and the summed static
// pass counters. build must return a fresh module per call (the
// transformation mutates in place).
func elisionRun(build func() *ir.Module, disable bool, workers, reps int) (row elisionModeResult, err error) {
	par, err := core.Parallelize(build(), core.Options{DisablePostprocess: disable})
	if err != nil {
		return row, err
	}
	for _, ri := range par.Regions {
		st := ri.TStats
		row.Joined += st.Joined
		row.Eliminated += st.Eliminated
		row.InvPromoted += st.InvPromoted
		row.DensePromoted += st.DensePromoted
		row.SparsePromoted += st.SparsePromoted
		row.HeapRedundantUO += st.HeapRedundantUO
	}
	row.NS = -1
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		rt, ret, rerr := core.Run(par, specrt.Config{Workers: workers})
		d := time.Since(t0).Nanoseconds()
		if rerr != nil {
			return row, rerr
		}
		if row.NS < 0 || d < row.NS {
			row.NS = d
		}
		row.Out, row.Ret = rt.Output(), ret
		row.Sim = rt.Sim.Time()
		st := rt.Stats.Snapshot()
		row.Checks = st.PrivReadChecks + st.PrivWriteChecks
		row.PrivNS = st.PrivReadNS + st.PrivWriteNS
	}
	return row, nil
}

type elisionModeResult struct {
	NS     int64
	Sim    int64
	Out    string
	Ret    uint64
	Checks int64
	PrivNS int64

	Joined, Eliminated, InvPromoted                int
	DensePromoted, SparsePromoted, HeapRedundantUO int
}

// RunElision measures the elision experiment: one row per configured
// benchmark, before/after the postprocess pass. quick lowers the repetition
// count (the input class comes from cfg — the driver defaults it to "huge").
func RunElision(cfg Config, quick bool) (*ElisionReport, error) {
	reps := elisionReps
	if quick {
		reps = 1
	}
	rep := &ElisionReport{Input: cfg.Input}
	for _, p := range progs.All() {
		if len(cfg.Programs) > 0 && !containsString(cfg.Programs, p.Name) {
			continue
		}
		in := inputFor(p, cfg.Input)
		row := ElisionRow{Name: p.Name, Input: in.Name, Workers: scaleWorkers}

		t0 := time.Now()
		seqIt := interp.New(p.Build(in), vm.NewAddressSpace())
		seqRet, err := seqIt.Run()
		row.SeqNS = time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("%s sequential: %w", p.Name, err)
		}
		seqOut := seqIt.Out.String()
		row.SeqSteps = seqIt.Steps

		build := func() *ir.Module { return p.Build(in) }
		before, err := elisionRun(build, true, scaleWorkers, reps)
		if err != nil {
			return nil, fmt.Errorf("%s before: %w", p.Name, err)
		}
		after, err := elisionRun(build, false, scaleWorkers, reps)
		if err != nil {
			return nil, fmt.Errorf("%s after: %w", p.Name, err)
		}

		row.Joined, row.Eliminated = after.Joined, after.Eliminated
		row.InvPromoted = after.InvPromoted
		row.DensePromoted, row.SparsePromoted = after.DensePromoted, after.SparsePromoted
		row.HeapRedundantUO = after.HeapRedundantUO
		row.BeforeNS, row.AfterNS = before.NS, after.NS
		row.Speedup = nsRatio(before.NS, after.NS)
		row.BeforeSim, row.AfterSim = before.Sim, after.Sim
		row.SimSpeedup = nsRatio(before.Sim, after.Sim)
		row.EndToEnd = nsRatio(row.SeqSteps, after.Sim)
		row.BeforeChecks, row.AfterChecks = before.Checks, after.Checks
		row.BeforePrivNS, row.AfterPrivNS = before.PrivNS, after.PrivNS
		row.BaselineMatch = before.Out == after.Out && before.Ret == after.Ret
		row.SeqMatch = row.BaselineMatch && after.Ret == seqRet && after.Out == seqOut
		rep.Programs = append(rep.Programs, row)
	}
	return rep, nil
}
