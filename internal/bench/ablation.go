package bench

import (
	"fmt"

	"privateer/internal/core"
	"privateer/internal/progs"
	"privateer/internal/specrt"
)

// Ablations quantify the design choices DESIGN.md calls out:
//
//   - checkpoint period (section 5.2: "checkpoints are only collected and
//     validated after a large number of iterations — this reduces overhead
//     in the common case, but discards and recomputes a larger amount of
//     work upon misspeculation");
//   - static check elision (section 4.5: "other checks are proved
//     successful at compile time and are elided");
//   - value prediction (section 6.1: dijkstra's queue pattern is only
//     privatizable with it).

// CheckpointAblationRow is one (period, rate) measurement.
type CheckpointAblationRow struct {
	// Period is the checkpoint interval in iterations.
	Period int64
	// CleanSpeedup is the speedup with no misspeculation.
	CleanSpeedup float64
	// MisspecSpeedup is the speedup with injected misspeculation.
	MisspecSpeedup float64
	// Misspecs is the observed misspeculation count in the injected run.
	Misspecs int64
}

// CheckpointAblationResult sweeps the checkpoint period for one program.
type CheckpointAblationResult struct {
	Program string
	Workers int
	Rate    float64
	Rows    []CheckpointAblationRow
}

// AblationCheckpointPeriod sweeps the checkpoint period on one program,
// measuring both the clean overhead (small periods validate and merge more
// often) and the recovery cost under misspeculation (large periods discard
// more work).
func (s *Suite) AblationCheckpointPeriod(program string, periods []int64, rate float64) (*CheckpointAblationResult, error) {
	var pr *prepared
	for _, p := range s.programs {
		if p.prog.Name == program {
			pr = p
		}
	}
	if pr == nil {
		return nil, fmt.Errorf("program %q not in suite", program)
	}
	res := &CheckpointAblationResult{Program: program, Workers: s.Cfg.FixedWorkers, Rate: rate}
	for _, k := range periods {
		clean, err := pr.runPrivateer(specrt.Config{
			Workers: s.Cfg.FixedWorkers, CheckpointPeriod: k,
		})
		if err != nil {
			return nil, err
		}
		dirty, err := pr.runPrivateer(specrt.Config{
			Workers: s.Cfg.FixedWorkers, CheckpointPeriod: k,
			MisspecRate: rate, Seed: 0xFEED,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, CheckpointAblationRow{
			Period:         k,
			CleanSpeedup:   pr.speedup(clean),
			MisspecSpeedup: pr.speedup(dirty),
			Misspecs:       dirty.Stats.Snapshot().Misspecs,
		})
	}
	return res, nil
}

// Format renders the sweep.
func (r *CheckpointAblationResult) Format() string {
	header := []string{"Period", "Clean", fmt.Sprintf("Misspec %.3g%%", r.Rate*100), "Misspecs"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Period),
			fmt.Sprintf("%.2fx", row.CleanSpeedup),
			fmt.Sprintf("%.2fx", row.MisspecSpeedup),
			fmt.Sprintf("%d", row.Misspecs),
		})
	}
	return fmt.Sprintf("Ablation: checkpoint period (%s, %d workers)\n", r.Program, r.Workers) +
		table(header, rows)
}

// ElisionAblationRow compares check counts and speedup with and without
// static elision for one program.
type ElisionAblationRow struct {
	Program string
	// ChecksWith/ChecksWithout are dynamic separation-check counts.
	ChecksWith    int64
	ChecksWithout int64
	// SpeedupWith/SpeedupWithout at the fixed machine size.
	SpeedupWith    float64
	SpeedupWithout float64
}

// ElisionAblationResult quantifies static check elision.
type ElisionAblationResult struct {
	Workers int
	Rows    []ElisionAblationRow
}

// AblationElision compiles each benchmark twice — with and without static
// elision of separation checks — and compares dynamic check counts and
// speedups.
func AblationElision(cfg Config) (*ElisionAblationResult, error) {
	res := &ElisionAblationResult{Workers: cfg.FixedWorkers}
	for _, p := range progs.All() {
		if len(cfg.Programs) > 0 && !containsString(cfg.Programs, p.Name) {
			continue
		}
		in := inputFor(p, cfg.Input)
		row := ElisionAblationRow{Program: p.Name}
		for _, disable := range []bool{false, true} {
			pr, err := prepareOpts(p, in, core.Options{DisableElision: disable})
			if err != nil {
				return nil, err
			}
			rt, err := pr.runPrivateer(specrt.Config{Workers: cfg.FixedWorkers})
			if err != nil {
				return nil, err
			}
			if disable {
				row.ChecksWithout = rt.Stats.Snapshot().SeparationChecks
				row.SpeedupWithout = pr.speedup(rt)
			} else {
				row.ChecksWith = rt.Stats.Snapshot().SeparationChecks
				row.SpeedupWith = pr.speedup(rt)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders the comparison.
func (r *ElisionAblationResult) Format() string {
	header := []string{"Program", "Checks (elided)", "Checks (all)", "Speedup (elided)", "Speedup (all)"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Program,
			fmt.Sprintf("%d", row.ChecksWith),
			fmt.Sprintf("%d", row.ChecksWithout),
			fmt.Sprintf("%.2fx", row.SpeedupWith),
			fmt.Sprintf("%.2fx", row.SpeedupWithout),
		})
	}
	return fmt.Sprintf("Ablation: static separation-check elision (%d workers)\n", r.Workers) +
		table(header, rows)
}

// ValuePredAblationRow records whether the hottest loop survives selection
// without value prediction, and how much execution time the selected
// regions cover in each configuration.
type ValuePredAblationRow struct {
	Program string
	// HotWith/HotWithout: is the hottest loop selected?
	HotWith    bool
	HotWithout bool
	// CoverageWith/CoverageWithout: selected regions' share of profiled
	// execution time (percent).
	CoverageWith    float64
	CoverageWithout float64
	// Reason is the hottest loop's rejection reason without prediction.
	Reason string
}

// ValuePredAblationResult quantifies the enabling effect of value
// prediction (dijkstra's queue pattern requires it, per section 6.1).
type ValuePredAblationResult struct {
	Rows []ValuePredAblationRow
}

// AblationValuePrediction compiles every benchmark with value prediction
// disabled and reports which hot loops stop being parallelizable.
func AblationValuePrediction(cfg Config) (*ValuePredAblationResult, error) {
	res := &ValuePredAblationResult{}
	for _, p := range progs.All() {
		if len(cfg.Programs) > 0 && !containsString(cfg.Programs, p.Name) {
			continue
		}
		in := inputFor(p, "train")
		with, err := core.Parallelize(p.Build(in), core.Options{})
		if err != nil {
			return nil, err
		}
		without, err := core.Parallelize(p.Build(in), core.Options{DisableValuePrediction: true})
		if err != nil {
			return nil, err
		}
		row := ValuePredAblationRow{Program: p.Name}
		row.HotWith, row.CoverageWith, _ = hottestFate(with)
		row.HotWithout, row.CoverageWithout, row.Reason = hottestFate(without)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// hottestFate reports whether the hottest profiled loop was selected, the
// selected regions' coverage of execution time, and the hottest loop's
// rejection reason.
func hottestFate(par *core.Parallelized) (hotSelected bool, coveragePct float64, reason string) {
	var total, covered int64
	first := true
	for _, rep := range par.Reports {
		if total < rep.Steps {
			total = rep.Steps // reports are hottest-first; total ~ hottest loop
		}
		if rep.Selected {
			covered += rep.Steps
		}
		if first {
			hotSelected = rep.Selected
			reason = rep.Reason
			first = false
		}
	}
	if total > 0 {
		coveragePct = 100 * float64(covered) / float64(total)
		if coveragePct > 100 {
			coveragePct = 100
		}
	}
	return hotSelected, coveragePct, reason
}

// Format renders the comparison.
func (r *ValuePredAblationResult) Format() string {
	header := []string{"Program", "Hot loop (with VP)", "Hot loop (no VP)", "Coverage with/without", "Rejection without VP"}
	var rows [][]string
	for _, row := range r.Rows {
		fate := func(b bool) string {
			if b {
				return "selected"
			}
			return "rejected"
		}
		rows = append(rows, []string{
			row.Program,
			fate(row.HotWith),
			fate(row.HotWithout),
			fmt.Sprintf("%.0f%% / %.0f%%", row.CoverageWith, row.CoverageWithout),
			row.Reason,
		})
	}
	return "Ablation: value prediction's enabling effect\n" + table(header, rows)
}

// prepareOpts is prepare with explicit pipeline options.
func prepareOpts(p *progs.Program, in progs.Input, opts core.Options) (*prepared, error) {
	seqSteps, err := seqStepsOf(p, in)
	if err != nil {
		return nil, err
	}
	par, err := core.Parallelize(p.Build(in), opts)
	if err != nil {
		return nil, fmt.Errorf("%s parallelize: %w", p.Name, err)
	}
	return &prepared{prog: p, input: in, seqSteps: seqSteps, par: par}, nil
}
