package bench

import (
	"encoding/json"
	"testing"
)

// TestScaleExperiment runs the scale experiment in its quick shape on two
// programs and checks the claims the report makes: lazy clones beat eager
// ones, dirty walks visit the same pages in both modes (enforced inside
// scaleCloneRow), summaries record skips, and both speculative modes
// reproduce each other bit for bit.
func TestScaleExperiment(t *testing.T) {
	cfg := QuickConfig()
	cfg.Programs = []string{"dijkstra", "enc-md5"}
	rep, err := RunScale(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Clone) == 0 || len(rep.Programs) != 2 {
		t.Fatalf("unexpected report shape: %d clone rows, %d program rows",
			len(rep.Clone), len(rep.Programs))
	}
	for _, row := range rep.Clone {
		if row.LazyCloneNS <= 0 || row.EagerCloneNS <= 0 {
			t.Errorf("pages=%d: unmeasured clone (eager=%d lazy=%d)",
				row.Pages, row.EagerCloneNS, row.LazyCloneNS)
		}
		if row.CloneSpeedup <= 1 {
			t.Errorf("pages=%d: lazy clone not faster (%.2fx)", row.Pages, row.CloneSpeedup)
		}
	}
	// The largest quick size must show summary skips: 2048 resident pages
	// with a 64-page contiguous dirty run spans 1 of 16 populated leaves.
	last := rep.Clone[len(rep.Clone)-1]
	if last.SummaryHits == 0 {
		t.Errorf("pages=%d: dirty walk recorded no summary hits", last.Pages)
	}
	for _, row := range rep.Programs {
		if !row.BaselineMatch {
			t.Errorf("%s: lazy run diverged from flat-eager baseline", row.Name)
		}
		if !row.SeqMatch {
			t.Errorf("%s: speculative runs diverged from sequential", row.Name)
		}
		if row.ResidentPages <= 0 || row.RadixNodes <= 0 {
			t.Errorf("%s: empty page-table stats: %+v", row.Name, row)
		}
	}
	// The report must round-trip through its JSON form.
	var back ScaleReport
	if err := json.Unmarshal([]byte(rep.JSON()), &back); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(back.Programs) != len(rep.Programs) {
		t.Fatalf("JSON round trip lost rows")
	}
	if rep.Format() == "" {
		t.Fatal("empty Format()")
	}
}
