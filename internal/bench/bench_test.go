package bench

import (
	"strings"
	"testing"
)

// quickSuite is shared across tests (compilation is the expensive part).
var quickSuite *Suite

func suite(t *testing.T) *Suite {
	t.Helper()
	if quickSuite == nil {
		s, err := NewSuite(QuickConfig())
		if err != nil {
			t.Fatal(err)
		}
		quickSuite = s
	}
	return quickSuite
}

func TestTable1Static(t *testing.T) {
	tab := Table1()
	for _, want := range []string{"Privateer (this repo)", "heap separation", "LRPD"} {
		if !strings.Contains(tab, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable3Shapes(t *testing.T) {
	r, err := suite(t).Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(r.Rows))
	}
	byName := map[string]Table3Row{}
	for _, row := range r.Rows {
		byName[row.Program] = row
	}
	// Paper-shape assertions.
	if row := byName["052.alvinn"]; row.Redux != 3 || row.Private != 4 || row.ShortLived != 0 {
		t.Errorf("alvinn row off: %+v", row)
	}
	if row := byName["dijkstra"]; row.ShortLived != 1 || !strings.Contains(row.Extras, "Value") {
		t.Errorf("dijkstra row off: %+v", row)
	}
	if row := byName["enc-md5"]; row.Private != 2 || row.ReadOnly != 4 {
		t.Errorf("enc-md5 row off: %+v", row)
	}
	for _, row := range r.Rows {
		if row.Invocations < 1 || row.Checkpoints < 1 {
			t.Errorf("%s: no runtime activity: %+v", row.Program, row)
		}
	}
	if !strings.Contains(r.Format(), "Table 3") {
		t.Error("format header missing")
	}
}

func TestFig6And7Shapes(t *testing.T) {
	s := suite(t)
	f6, err := s.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Geomeans) != len(s.Cfg.WorkerCounts) {
		t.Fatalf("geomeans = %d", len(f6.Geomeans))
	}
	// More workers must help overall on the sweep's low end: geomean at
	// the largest count exceeds the 1-worker geomean.
	if f6.Geomeans[len(f6.Geomeans)-1] <= f6.Geomeans[0] {
		t.Errorf("no scaling: geomeans %v", f6.Geomeans)
	}
	f7, err := s.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	doall, priv := f7.Geomeans()
	if priv <= doall {
		t.Errorf("Privateer (%.2fx) must beat DOALL-only (%.2fx)", priv, doall)
	}
	// The per-program paper stories.
	if f7.DOALLOnly["dijkstra"] > 1.01 {
		t.Errorf("dijkstra DOALL-only should not speed up: %.2fx", f7.DOALLOnly["dijkstra"])
	}
	if f7.Privateer["dijkstra"] <= f7.DOALLOnly["dijkstra"] {
		t.Error("privatization must enable dijkstra")
	}
}

func TestFig8CapacityAccounting(t *testing.T) {
	r, err := suite(t).Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for name, bds := range r.Breakdowns {
		for _, b := range bds {
			total := b.UsefulPct + b.PrivReadPct + b.PrivWritePct +
				b.CheckptPct + b.OtherPct + b.SpawnJoinPct
			if total < 95 || total > 105 {
				t.Errorf("%s workers=%d: capacity categories sum to %.1f%%", name, b.Workers, total)
			}
			if b.UsefulPct <= 0 {
				t.Errorf("%s workers=%d: no useful work", name, b.Workers)
			}
		}
	}
}

func TestFig9Degrades(t *testing.T) {
	r, err := suite(t).Fig9()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range r.ProgramOrder {
		sp := r.Speedups[name]
		ms := r.Misspecs[name]
		if ms[0] != 0 {
			t.Errorf("%s: misspecs at rate 0: %d", name, ms[0])
		}
		last := len(sp) - 1
		if ms[last] > 0 && sp[last] >= sp[0] {
			t.Errorf("%s: misspeculation did not degrade: %v (misspecs %v)", name, sp, ms)
		}
	}
}

func TestAblationValuePrediction(t *testing.T) {
	r, err := AblationValuePrediction(QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]ValuePredAblationRow{}
	for _, row := range r.Rows {
		byName[row.Program] = row
	}
	d := byName["dijkstra"]
	if !d.HotWith || d.HotWithout {
		t.Errorf("dijkstra: hot loop with=%v without=%v, want true/false", d.HotWith, d.HotWithout)
	}
	if d.CoverageWithout >= d.CoverageWith {
		t.Errorf("dijkstra coverage should collapse without VP: %.0f%% vs %.0f%%",
			d.CoverageWith, d.CoverageWithout)
	}
	if md5 := byName["enc-md5"]; !md5.HotWith || !md5.HotWithout {
		t.Error("enc-md5 does not need value prediction")
	}
}

func TestAblationElision(t *testing.T) {
	cfg := QuickConfig()
	cfg.Programs = []string{"dijkstra"}
	r, err := AblationElision(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 1 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	row := r.Rows[0]
	if row.ChecksWithout <= row.ChecksWith {
		t.Errorf("disabling elision must add checks: %d vs %d", row.ChecksWithout, row.ChecksWith)
	}
	if row.SpeedupWithout > row.SpeedupWith {
		t.Errorf("extra checks should not speed things up: %.2f vs %.2f",
			row.SpeedupWithout, row.SpeedupWith)
	}
}

func TestAblationCheckpointPeriod(t *testing.T) {
	s := suite(t)
	r, err := s.AblationCheckpointPeriod("dijkstra", []int64{1, 4, 16}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	// Clean speedup improves (or at worst holds) with longer periods:
	// fewer merges.
	if r.Rows[0].CleanSpeedup > r.Rows[2].CleanSpeedup {
		t.Errorf("per-iteration checkpoints should not beat long periods: %+v", r.Rows)
	}
	if !strings.Contains(r.Format(), "checkpoint period") {
		t.Error("format header missing")
	}
}
