package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/progs"
	"privateer/internal/specrt"
	"privateer/internal/vm"
)

// The scale experiment measures what the radix page table buys over the
// flat-table organization it replaced: O(1) range-COW clones instead of
// full-table copies, and dirty-summary-guided scans instead of full
// resident-set walks. The flat baseline is reproduced by vm's EagerClone
// mode (specrt.Config.EagerClone), which is semantically identical to the
// lazy radix path — every run here doubles as an equivalence check, and the
// five paper programs must be bit-identical between the two modes.
//
// Two row families:
//
//   - vm micro rows: synthetic address spaces at growing resident-page
//     counts; Clone() wall clock in both modes, then a dirty-page walk over
//     a child that touched a handful of pages (the checkpoint-merge shape:
//     summaries skip untouched subtrees, the flat walk cannot).
//   - program rows: each benchmark's huge input (~100x ref footprint). The
//     sequential master space gives resident pages/radix occupancy and
//     single-clone cost; full speculative runs in both modes give the
//     accumulated spawn, checkpoint-merge and join wall clock, plus the
//     summary-hit and node-copy counters from the shared vm stats block.

// ScaleCloneRow is one synthetic address-space size: clone cost and
// dirty-walk cost, flat-eager versus radix-lazy. Timings are minima over
// scaleReps runs.
type ScaleCloneRow struct {
	// Pages is the resident private-heap page count of the parent space.
	Pages int64 `json:"pages"`
	// LiveObjects is the parent's live allocation count (the allocator
	// state an eager clone deep-copies and a lazy clone shares).
	LiveObjects int64 `json:"live_objects"`
	// EagerCloneNS / LazyCloneNS are the Clone() wall clocks.
	EagerCloneNS int64 `json:"eager_clone_ns"`
	LazyCloneNS  int64 `json:"lazy_clone_ns"`
	// CloneSpeedup is EagerCloneNS / LazyCloneNS.
	CloneSpeedup float64 `json:"clone_speedup"`
	// DirtyPages is how many pages the child touched before the walk.
	DirtyPages int64 `json:"dirty_pages"`
	// EagerWalkNS / LazyWalkNS are the DirtyPages() wall clocks: a full
	// resident-set scan versus a summary-guided descent.
	EagerWalkNS int64 `json:"eager_walk_ns"`
	LazyWalkNS  int64 `json:"lazy_walk_ns"`
	// WalkSpeedup is EagerWalkNS / LazyWalkNS.
	WalkSpeedup float64 `json:"walk_speedup"`
	// SummaryHits counts subtrees the lazy walk skipped as clean or stale.
	SummaryHits int64 `json:"summary_hits"`
}

// ScaleProgRow is one benchmark program at the scaled input, run
// speculatively in both memory-system modes.
type ScaleProgRow struct {
	// Name and Input identify the workload ("huge" is the ~100x class).
	Name  string `json:"name"`
	Input string `json:"input"`
	// Workers is the speculative worker count used.
	Workers int `json:"workers"`
	// SeqSteps is the sequential instruction count (work scale).
	SeqSteps int64 `json:"seq_steps"`
	// ResidentPages and RadixNodes describe the master table after the
	// sequential run (the footprint scale; peak resident for these
	// programs, which never free pages).
	ResidentPages int64 `json:"resident_pages"`
	RadixNodes    int64 `json:"radix_nodes"`
	// EagerCloneNS / LazyCloneNS time one Clone() of that master space —
	// the per-worker spawn cost a parallel region pays.
	EagerCloneNS int64 `json:"eager_clone_ns"`
	LazyCloneNS  int64 `json:"lazy_clone_ns"`
	// CloneSpeedup is EagerCloneNS / LazyCloneNS.
	CloneSpeedup float64 `json:"clone_speedup"`
	// EagerSpawnNS / LazySpawnNS are Stats.SpawnNS accumulated over the
	// whole speculative run (every worker clone in every span).
	EagerSpawnNS int64 `json:"eager_spawn_ns"`
	LazySpawnNS  int64 `json:"lazy_spawn_ns"`
	// EagerCheckpointNS / LazyCheckpointNS are Stats.CheckpointNS: worker
	// time merging shadow state into checkpoints.
	EagerCheckpointNS int64 `json:"eager_checkpoint_ns"`
	LazyCheckpointNS  int64 `json:"lazy_checkpoint_ns"`
	// EagerJoinNS / LazyJoinNS are Stats.JoinNS: the master-side
	// validate/install/commit critical path.
	EagerJoinNS int64 `json:"eager_join_ns"`
	LazyJoinNS  int64 `json:"lazy_join_ns"`
	// SummaryHits and NodesCopied are the lazy run's vm counters: subtrees
	// skipped by dirty-summary walks and radix nodes path-copied by
	// range-COW splits.
	SummaryHits int64 `json:"summary_hits"`
	NodesCopied int64 `json:"nodes_copied"`
	// BaselineMatch reports whether the lazy run reproduced the flat-eager
	// baseline's return value and output byte for byte (must always hold).
	BaselineMatch bool `json:"baseline_match"`
	// SeqMatch reports whether both modes reproduced the sequential
	// reference exactly (false only for FP-reduction programs, where the
	// documented worker-id fold order differs in the last float bits).
	SeqMatch bool `json:"seq_match"`
}

// ScaleReport bundles the scale experiment's measurements.
type ScaleReport struct {
	// Input is the program input class measured ("huge" unless -quick).
	Input string `json:"input"`
	// Clone holds the vm micro rows, smallest space first.
	Clone []ScaleCloneRow `json:"clone"`
	// Programs holds one row per benchmark.
	Programs []ScaleProgRow `json:"programs"`
}

// JSON renders the report machine-readably.
func (r *ScaleReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Format renders the report as aligned tables with a headline speedup line.
func (r *ScaleReport) Format() string {
	var sb strings.Builder
	sb.WriteString("Sparse memory system at scale: flat eager baseline vs radix lazy (wall clock)\n\n")

	rows := make([][]string, 0, len(r.Clone))
	for _, m := range r.Clone {
		rows = append(rows, []string{
			fmt.Sprintf("%d", m.Pages),
			fmt.Sprintf("%d", m.LiveObjects),
			fmt.Sprintf("%.1f", float64(m.EagerCloneNS)/1e3),
			fmt.Sprintf("%.1f", float64(m.LazyCloneNS)/1e3),
			fmt.Sprintf("%.1fx", m.CloneSpeedup),
			fmt.Sprintf("%d", m.DirtyPages),
			fmt.Sprintf("%.1f", float64(m.EagerWalkNS)/1e3),
			fmt.Sprintf("%.1f", float64(m.LazyWalkNS)/1e3),
			fmt.Sprintf("%.1fx", m.WalkSpeedup),
			fmt.Sprintf("%d", m.SummaryHits),
		})
	}
	sb.WriteString("vm micro: Clone() and DirtyPages() on synthetic spaces\n")
	sb.WriteString(table([]string{
		"pages", "objects", "eager clone us", "lazy clone us", "speedup",
		"dirty", "eager walk us", "lazy walk us", "speedup", "summary hits"}, rows))
	sb.WriteString("\n")

	rows = rows[:0]
	for _, m := range r.Programs {
		base := "yes"
		if !m.BaselineMatch {
			base = "NO"
		}
		seq := "yes"
		if !m.SeqMatch {
			seq = "fp-bits"
		}
		rows = append(rows, []string{
			m.Name,
			m.Input,
			fmt.Sprintf("%d", m.ResidentPages),
			fmt.Sprintf("%d", m.RadixNodes),
			fmt.Sprintf("%.1f", float64(m.EagerCloneNS)/1e3),
			fmt.Sprintf("%.1f", float64(m.LazyCloneNS)/1e3),
			fmt.Sprintf("%.1fx", m.CloneSpeedup),
			fmt.Sprintf("%.1f", float64(m.EagerSpawnNS)/1e6),
			fmt.Sprintf("%.1f", float64(m.LazySpawnNS)/1e6),
			fmt.Sprintf("%.1f", float64(m.EagerCheckpointNS)/1e6),
			fmt.Sprintf("%.1f", float64(m.LazyCheckpointNS)/1e6),
			fmt.Sprintf("%d", m.SummaryHits),
			base,
			seq,
		})
	}
	sb.WriteString(fmt.Sprintf("programs (%s inputs, %d workers): spawn/merge accumulated over the run\n",
		r.Input, scaleWorkers))
	sb.WriteString(table([]string{
		"program", "input", "pages", "nodes", "eager clone us", "lazy clone us",
		"speedup", "eager spawn ms", "lazy spawn ms", "eager merge ms",
		"lazy merge ms", "summary hits", "=base", "=seq"}, rows))

	if best := r.bestCloneSpeedup(); best > 0 {
		sb.WriteString(fmt.Sprintf("\nheadline: clone cost improved up to %.0fx; "+
			"dirty walks skip clean subtrees (up to %.0fx)\n",
			best, r.bestWalkSpeedup()))
	}
	return sb.String()
}

func (r *ScaleReport) bestCloneSpeedup() float64 {
	best := 0.0
	for _, m := range r.Clone {
		if m.CloneSpeedup > best {
			best = m.CloneSpeedup
		}
	}
	for _, m := range r.Programs {
		if m.CloneSpeedup > best {
			best = m.CloneSpeedup
		}
	}
	return best
}

func (r *ScaleReport) bestWalkSpeedup() float64 {
	best := 0.0
	for _, m := range r.Clone {
		if m.WalkSpeedup > best {
			best = m.WalkSpeedup
		}
	}
	return best
}

// Scale experiment shape: timing minima over scaleReps repetitions; child
// spaces touch scaleDirty pages before the dirty walk; speculative runs use
// scaleWorkers workers (the host-sized default — oversubscription would put
// scheduler noise into the wall-clock columns).
const (
	scaleReps    = 7
	scaleDirty   = 64
	scaleWorkers = 8
)

// scaleMicroSizes picks the synthetic resident-set sizes: up to 32k pages
// (128 MiB of page data) in the full configuration.
func scaleMicroSizes(quick bool) []int64 {
	if quick {
		return []int64{256, 2048}
	}
	return []int64{1024, 8192, 32768}
}

// scaleSpace builds a parent address space with the given resident
// private-heap page count and live short-lived allocation count.
func scaleSpace(pages, objects int64) (*vm.AddressSpace, error) {
	as := vm.NewAddressSpace()
	for i := int64(0); i < pages; i++ {
		addr := ir.HeapPrivate.Base() + uint64(i)*vm.PageSize
		if err := as.Write(addr, 8, uint64(i)*2654435761); err != nil {
			return nil, err
		}
	}
	for i := int64(0); i < objects; i++ {
		if _, err := as.Alloc(ir.HeapShortLived, 64); err != nil {
			return nil, err
		}
	}
	return as, nil
}

// minCloneNS times Clone() in the given mode, minimum over reps.
func minCloneNS(as *vm.AddressSpace, eager bool, reps int) int64 {
	prev := as.EagerClone
	as.EagerClone = eager
	best := int64(-1)
	for r := 0; r < reps; r++ {
		t0 := time.Now()
		c := as.Clone()
		d := time.Since(t0).Nanoseconds()
		_ = c
		if best < 0 || d < best {
			best = d
		}
	}
	as.EagerClone = prev
	return best
}

// minDirtyWalkNS clones the parent in the given mode, dirties a contiguous
// run of `touch` pages (the checkpoint-merge shape: a worker's span touches
// a localized slice of a huge resident set), and times DirtyPages(),
// minimum over reps. Returns the walk time, the visited-page count of the
// last walk, and the summary hits the last lazy walk recorded.
func minDirtyWalkNS(parent *vm.AddressSpace, eager bool, pages, touch int64,
	reps int) (ns, visited, hits int64, err error) {
	prev := parent.EagerClone
	defer func() { parent.EagerClone = prev }()
	parent.EagerClone = eager
	best := int64(-1)
	for r := 0; r < reps; r++ {
		c := parent.Clone()
		for i := int64(0); i < touch; i++ {
			addr := ir.HeapPrivate.Base() + uint64(i)*vm.PageSize
			if werr := c.Write(addr, 8, uint64(i)); werr != nil {
				return 0, 0, 0, werr
			}
		}
		h0 := c.Stats.SummaryHits
		n := int64(0)
		t0 := time.Now()
		c.DirtyPages(func(base uint64, data []byte) { n++ })
		d := time.Since(t0).Nanoseconds()
		visited = n
		hits = c.Stats.SummaryHits - h0
		if best < 0 || d < best {
			best = d
		}
	}
	return best, visited, hits, nil
}

// scaleCloneRow measures one synthetic space size.
func scaleCloneRow(pages int64) (ScaleCloneRow, error) {
	objects := pages / 4
	row := ScaleCloneRow{Pages: pages, LiveObjects: objects, DirtyPages: scaleDirty}
	parent, err := scaleSpace(pages, objects)
	if err != nil {
		return row, err
	}
	row.EagerCloneNS = minCloneNS(parent, true, scaleReps)
	row.LazyCloneNS = minCloneNS(parent, false, scaleReps)
	row.CloneSpeedup = nsRatio(row.EagerCloneNS, row.LazyCloneNS)

	touch := row.DirtyPages
	if touch > pages {
		touch = pages
		row.DirtyPages = pages
	}
	eagerNS, eagerSeen, _, err := minDirtyWalkNS(parent, true, pages, touch, scaleReps)
	if err != nil {
		return row, err
	}
	lazyNS, lazySeen, hits, err := minDirtyWalkNS(parent, false, pages, touch, scaleReps)
	if err != nil {
		return row, err
	}
	if eagerSeen != lazySeen {
		return row, fmt.Errorf("dirty-walk mismatch at %d pages: eager visited %d, lazy %d",
			pages, eagerSeen, lazySeen)
	}
	row.EagerWalkNS, row.LazyWalkNS, row.SummaryHits = eagerNS, lazyNS, hits
	row.WalkSpeedup = nsRatio(eagerNS, lazyNS)
	return row, nil
}

func nsRatio(eager, lazy int64) float64 {
	if lazy <= 0 {
		return 0
	}
	return float64(eager) / float64(lazy)
}

// scaleProgRow runs one benchmark sequentially (for the reference output and
// the master-space clone probe) and then speculatively in both memory-system
// modes.
func scaleProgRow(p *progs.Program, inputName string) (ScaleProgRow, error) {
	in := inputFor(p, inputName)
	row := ScaleProgRow{Name: p.Name, Input: in.Name, Workers: scaleWorkers}

	seqIt := interp.New(p.Build(in), vm.NewAddressSpace())
	seqRet, err := seqIt.Run()
	if err != nil {
		return row, fmt.Errorf("%s sequential: %w", p.Name, err)
	}
	seqOut := seqIt.Out.String()
	row.SeqSteps = seqIt.Steps
	pt := seqIt.AS.PageTable()
	row.ResidentPages = pt.ResidentPages
	row.RadixNodes = pt.Nodes
	row.EagerCloneNS = minCloneNS(seqIt.AS, true, scaleReps)
	row.LazyCloneNS = minCloneNS(seqIt.AS, false, scaleReps)
	row.CloneSpeedup = nsRatio(row.EagerCloneNS, row.LazyCloneNS)

	par, err := core.Parallelize(p.Build(in), core.Options{})
	if err != nil {
		return row, fmt.Errorf("%s parallelize: %w", p.Name, err)
	}
	var outs [2]string
	var rets [2]uint64
	for i, eager := range []bool{true, false} {
		rt, ret, err := core.Run(par, specrt.Config{
			Workers: scaleWorkers, EagerClone: eager,
		})
		if err != nil {
			return row, fmt.Errorf("%s eager=%v: %w", p.Name, eager, err)
		}
		outs[i], rets[i] = rt.Output(), ret
		st := rt.Stats.Snapshot()
		if eager {
			row.EagerSpawnNS = st.SpawnNS
			row.EagerCheckpointNS = st.CheckpointNS
			row.EagerJoinNS = st.JoinNS
		} else {
			row.LazySpawnNS = st.SpawnNS
			row.LazyCheckpointNS = st.CheckpointNS
			row.LazyJoinNS = st.JoinNS
			vs := rt.Master().AS.Stats
			row.SummaryHits = vs.SummaryHits
			row.NodesCopied = vs.NodesCopied
		}
	}
	row.BaselineMatch = outs[0] == outs[1] && rets[0] == rets[1]
	row.SeqMatch = row.BaselineMatch && rets[1] == seqRet && outs[1] == seqOut
	return row, nil
}

// RunScale measures the scale experiment: vm micro rows plus one row per
// configured benchmark. quick shrinks the synthetic sizes (the input class
// comes from cfg — the driver defaults it to "huge" for this experiment).
func RunScale(cfg Config, quick bool) (*ScaleReport, error) {
	rep := &ScaleReport{Input: cfg.Input}
	for _, pages := range scaleMicroSizes(quick) {
		row, err := scaleCloneRow(pages)
		if err != nil {
			return nil, err
		}
		rep.Clone = append(rep.Clone, row)
	}
	for _, p := range progs.All() {
		if len(cfg.Programs) > 0 && !containsString(cfg.Programs, p.Name) {
			continue
		}
		row, err := scaleProgRow(p, cfg.Input)
		if err != nil {
			return nil, err
		}
		rep.Programs = append(rep.Programs, row)
	}
	return rep, nil
}
