package bench

import (
	"fmt"

	"privateer/internal/specrt"
)

// Fig6Result holds whole-program speedups over best sequential execution
// for each worker count (the paper's Figure 6).
type Fig6Result struct {
	// WorkerCounts is the sweep.
	WorkerCounts []int
	// Speedups maps program name to one speedup per worker count.
	Speedups map[string][]float64
	// ProgramOrder preserves Table 3 ordering.
	ProgramOrder []string
	// Geomeans is the geometric mean per worker count.
	Geomeans []float64
}

// Fig6 measures speculative speedups across the worker sweep.
func (s *Suite) Fig6() (*Fig6Result, error) {
	res := &Fig6Result{
		WorkerCounts: s.Cfg.WorkerCounts,
		Speedups:     map[string][]float64{},
	}
	for _, pr := range s.programs {
		res.ProgramOrder = append(res.ProgramOrder, pr.prog.Name)
		for _, w := range s.Cfg.WorkerCounts {
			rt, err := pr.runPrivateer(specrt.Config{Workers: w})
			if err != nil {
				return nil, fmt.Errorf("fig6 %s workers=%d: %w", pr.prog.Name, w, err)
			}
			res.Speedups[pr.prog.Name] = append(res.Speedups[pr.prog.Name], pr.speedup(rt))
		}
	}
	for i := range s.Cfg.WorkerCounts {
		var xs []float64
		for _, name := range res.ProgramOrder {
			xs = append(xs, res.Speedups[name][i])
		}
		res.Geomeans = append(res.Geomeans, geomean(xs))
	}
	return res, nil
}

// Format renders the figure as a table.
func (r *Fig6Result) Format() string {
	header := []string{"Program"}
	for _, w := range r.WorkerCounts {
		header = append(header, fmt.Sprintf("%dw", w))
	}
	var rows [][]string
	for _, name := range r.ProgramOrder {
		row := []string{name}
		for _, v := range r.Speedups[name] {
			row = append(row, fmt.Sprintf("%.2fx", v))
		}
		rows = append(rows, row)
	}
	gm := []string{"geomean"}
	for _, v := range r.Geomeans {
		gm = append(gm, fmt.Sprintf("%.2fx", v))
	}
	rows = append(rows, gm)
	return "Figure 6: whole-program speedup vs best sequential (simulated time)\n" +
		table(header, rows)
}

// Fig7Result compares DOALL-only against Privateer at the full machine
// size (the paper's Figure 7).
type Fig7Result struct {
	// Workers is the machine size.
	Workers int
	// ProgramOrder preserves ordering.
	ProgramOrder []string
	// DOALLOnly and Privateer are the speedups.
	DOALLOnly map[string]float64
	Privateer map[string]float64
	// StaticLoops counts loops the static baseline parallelized.
	StaticLoops map[string]int
}

// Fig7 measures the enabling effect of Privateer.
func (s *Suite) Fig7() (*Fig7Result, error) {
	res := &Fig7Result{
		Workers:     s.Cfg.FixedWorkers,
		DOALLOnly:   map[string]float64{},
		Privateer:   map[string]float64{},
		StaticLoops: map[string]int{},
	}
	for _, pr := range s.programs {
		res.ProgramOrder = append(res.ProgramOrder, pr.prog.Name)
		sp, err := pr.staticSpeedup(s.Cfg.FixedWorkers)
		if err != nil {
			return nil, fmt.Errorf("fig7 %s doall-only: %w", pr.prog.Name, err)
		}
		res.DOALLOnly[pr.prog.Name] = sp
		res.StaticLoops[pr.prog.Name] = len(pr.static.Regions)
		rt, err := pr.runPrivateer(specrt.Config{Workers: s.Cfg.FixedWorkers})
		if err != nil {
			return nil, fmt.Errorf("fig7 %s privateer: %w", pr.prog.Name, err)
		}
		res.Privateer[pr.prog.Name] = pr.speedup(rt)
	}
	return res, nil
}

// Geomeans returns (doallOnly, privateer) geometric means.
func (r *Fig7Result) Geomeans() (float64, float64) {
	var a, b []float64
	for _, name := range r.ProgramOrder {
		a = append(a, r.DOALLOnly[name])
		b = append(b, r.Privateer[name])
	}
	return geomean(a), geomean(b)
}

// Format renders the figure.
func (r *Fig7Result) Format() string {
	header := []string{"Program", "DOALL-only", "Privateer", "static loops"}
	var rows [][]string
	for _, name := range r.ProgramOrder {
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.2fx", r.DOALLOnly[name]),
			fmt.Sprintf("%.2fx", r.Privateer[name]),
			fmt.Sprintf("%d", r.StaticLoops[name]),
		})
	}
	ga, gb := r.Geomeans()
	rows = append(rows, []string{"geomean", fmt.Sprintf("%.2fx", ga), fmt.Sprintf("%.2fx", gb), ""})
	return fmt.Sprintf("Figure 7: enabling effect of Privateer at %d workers\n", r.Workers) +
		table(header, rows)
}

// Fig8Breakdown is one program × worker-count overhead decomposition,
// normalized to total computational capacity (percent).
type Fig8Breakdown struct {
	Workers      int
	UsefulPct    float64
	PrivReadPct  float64
	PrivWritePct float64
	CheckptPct   float64
	OtherPct     float64
	SpawnJoinPct float64
}

// Fig8Result holds the overhead breakdowns (the paper's Figure 8).
type Fig8Result struct {
	// ProgramOrder preserves ordering.
	ProgramOrder []string
	// Breakdowns maps program to one breakdown per worker count.
	Breakdowns map[string][]Fig8Breakdown
}

// Fig8 measures the overhead decomposition across worker counts.
func (s *Suite) Fig8() (*Fig8Result, error) {
	res := &Fig8Result{Breakdowns: map[string][]Fig8Breakdown{}}
	for _, pr := range s.programs {
		res.ProgramOrder = append(res.ProgramOrder, pr.prog.Name)
		for _, w := range s.Cfg.Fig8Workers {
			rt, err := pr.runPrivateer(specrt.Config{Workers: w})
			if err != nil {
				return nil, fmt.Errorf("fig8 %s workers=%d: %w", pr.prog.Name, w, err)
			}
			sim := rt.Sim
			cap := float64(sim.RegionCapacity)
			if cap <= 0 {
				cap = 1
			}
			pct := func(v int64) float64 { return 100 * float64(v) / cap }
			other := sim.OtherCheckCost
			res.Breakdowns[pr.prog.Name] = append(res.Breakdowns[pr.prog.Name], Fig8Breakdown{
				Workers:      w,
				UsefulPct:    pct(sim.UsefulSteps),
				PrivReadPct:  pct(sim.PrivReadCost),
				PrivWritePct: pct(sim.PrivWriteCost),
				CheckptPct:   pct(sim.CheckpointCost),
				OtherPct:     pct(other),
				SpawnJoinPct: pct(sim.IdleCost()),
			})
		}
	}
	return res, nil
}

// Format renders the breakdowns.
func (r *Fig8Result) Format() string {
	var out string
	out += "Figure 8: breakdown of overheads on parallel performance (% of capacity)\n"
	header := []string{"Program", "Workers", "Useful", "PrivR", "PrivW", "Checkpt", "Checks", "Spawn/Join"}
	var rows [][]string
	for _, name := range r.ProgramOrder {
		for _, b := range r.Breakdowns[name] {
			rows = append(rows, []string{
				name, fmt.Sprintf("%d", b.Workers),
				fmt.Sprintf("%.1f%%", b.UsefulPct),
				fmt.Sprintf("%.1f%%", b.PrivReadPct),
				fmt.Sprintf("%.1f%%", b.PrivWritePct),
				fmt.Sprintf("%.1f%%", b.CheckptPct),
				fmt.Sprintf("%.1f%%", b.OtherPct),
				fmt.Sprintf("%.1f%%", b.SpawnJoinPct),
			})
		}
	}
	return out + table(header, rows)
}

// Fig9Result holds speedup degradation under injected misspeculation (the
// paper's Figure 9).
type Fig9Result struct {
	// Workers is the machine size.
	Workers int
	// Rates is the injected per-iteration misspeculation probability sweep.
	Rates []float64
	// ProgramOrder preserves ordering.
	ProgramOrder []string
	// Speedups maps program to one speedup per rate.
	Speedups map[string][]float64
	// Misspecs maps program to observed misspeculation counts per rate.
	Misspecs map[string][]int64
}

// Fig9 measures sensitivity to misspeculation.
func (s *Suite) Fig9() (*Fig9Result, error) {
	res := &Fig9Result{
		Workers:  s.Cfg.FixedWorkers,
		Rates:    s.Cfg.MisspecRates,
		Speedups: map[string][]float64{},
		Misspecs: map[string][]int64{},
	}
	for _, pr := range s.programs {
		res.ProgramOrder = append(res.ProgramOrder, pr.prog.Name)
		for _, rate := range s.Cfg.MisspecRates {
			rt, err := pr.runPrivateer(specrt.Config{
				Workers: s.Cfg.FixedWorkers, MisspecRate: rate, Seed: 0xC0FFEE,
			})
			if err != nil {
				return nil, fmt.Errorf("fig9 %s rate=%g: %w", pr.prog.Name, rate, err)
			}
			res.Speedups[pr.prog.Name] = append(res.Speedups[pr.prog.Name], pr.speedup(rt))
			res.Misspecs[pr.prog.Name] = append(res.Misspecs[pr.prog.Name], rt.Stats.Snapshot().Misspecs)
		}
	}
	return res, nil
}

// Format renders the figure.
func (r *Fig9Result) Format() string {
	header := []string{"Program"}
	for _, rate := range r.Rates {
		header = append(header, fmt.Sprintf("%.3g%%", rate*100))
	}
	var rows [][]string
	for _, name := range r.ProgramOrder {
		row := []string{name}
		for i, v := range r.Speedups[name] {
			row = append(row, fmt.Sprintf("%.2fx(%d)", v, r.Misspecs[name][i]))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Figure 9: performance degradation with misspeculation at %d workers\n"+
		"(speedup, with observed misspeculation count in parentheses)\n", r.Workers) +
		table(header, rows)
}
