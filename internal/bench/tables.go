package bench

import (
	"fmt"

	"privateer/internal/ir"
	"privateer/internal/specrt"
)

// Table1 renders the paper's qualitative comparison of privatization and
// reduction schemes (Table 1). The matrix is static — it documents where
// Privateer sits relative to prior work; this repository implements the
// Privateer row (and, as its baseline, the "static analysis only" column).
func Table1() string {
	header := []string{"Technique", "Automatic", "Ptr+DynAlloc",
		"Priv.Criterion", "Priv.Layout", "Redux.Criterion", "Redux.Layout"}
	rows := [][]string{
		{"Paralax", "no", "-", "annotations", "-", "-", "-"},
		{"TL2 / Intel STM", "no", "-", "logs", "-", "-", "-"},
		{"PD / LRPD / R-LRPD", "yes", "no", "dynamic/spec", "arrays only", "spec", "arrays only"},
		{"Hybrid Analysis", "yes", "no", "hybrid", "arrays only", "hybrid", "arrays only"},
		{"Array Expansion / ASSA / DSA", "yes", "no", "static", "arrays only", "-", "-"},
		{"STMLite+LLVM", "yes", "yes", "logs", "logs", "static only", "static only"},
		{"CorD+Objects", "yes", "yes", "typed objects", "typed objects", "static only", "static only"},
		{"Privateer (this repo)", "yes", "yes", "speculative", "heap separation", "speculative", "heap separation"},
	}
	return "Table 1: comparison with privatization and reduction schemes\n" +
		table(header, rows)
}

// Table3Row is one program's dynamic details (the paper's Table 3).
type Table3Row struct {
	Program     string
	Invocations int64
	Checkpoints int64
	PrivR       int64
	PrivW       int64
	Private     int
	ShortLived  int
	ReadOnly    int
	Redux       int
	Unrestrict  int
	Extras      string
}

// Table3Result holds the per-program dynamic details.
type Table3Result struct {
	Rows []Table3Row
	// Workers is the worker count used for the measurement run.
	Workers int
}

// Table3 runs every program once and collects the dynamic statistics.
func (s *Suite) Table3() (*Table3Result, error) {
	workers := 4
	res := &Table3Result{Workers: workers}
	for _, pr := range s.programs {
		rt, err := pr.runPrivateer(specrt.Config{Workers: workers})
		if err != nil {
			return nil, fmt.Errorf("table3 %s: %w", pr.prog.Name, err)
		}
		st := rt.Stats.Snapshot()
		row := Table3Row{
			Program:     pr.prog.Name,
			Invocations: st.Invocations,
			Checkpoints: st.Checkpoints,
			PrivR:       st.PrivReadBytes,
			PrivW:       st.PrivWriteBytes,
		}
		for _, ri := range pr.par.Regions {
			st := ri.TStats
			row.Private += st.SitesPerHeap[ir.HeapPrivate]
			row.ShortLived += st.SitesPerHeap[ir.HeapShortLived]
			row.ReadOnly += st.SitesPerHeap[ir.HeapReadOnly]
			row.Redux += st.SitesPerHeap[ir.HeapRedux]
			row.Unrestrict += st.SitesPerHeap[ir.HeapUnrestricted]
			if row.Extras == "" {
				row.Extras = st.Extras(ri.Plan)
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Format renders Table 3.
func (r *Table3Result) Format() string {
	header := []string{"Program", "Invoc", "Checkpt", "PrivR", "PrivW",
		"Private", "Short", "ReadOnly", "Redux", "Unrestr", "Extras"}
	var rows [][]string
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Program,
			fmt.Sprintf("%d", row.Invocations),
			fmt.Sprintf("%d", row.Checkpoints),
			humanBytes(row.PrivR),
			humanBytes(row.PrivW),
			fmt.Sprintf("%d", row.Private),
			fmt.Sprintf("%d", row.ShortLived),
			fmt.Sprintf("%d", row.ReadOnly),
			fmt.Sprintf("%d", row.Redux),
			fmt.Sprintf("%d", row.Unrestrict),
			row.Extras,
		})
	}
	return fmt.Sprintf("Table 3: privatized and parallelized program details (%d workers)\n", r.Workers) +
		table(header, rows)
}

func humanBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// All runs every experiment and concatenates the formatted results.
func (s *Suite) All() (string, error) {
	out := Table1() + "\n"
	t3, err := s.Table3()
	if err != nil {
		return out, err
	}
	out += t3.Format() + "\n"
	f6, err := s.Fig6()
	if err != nil {
		return out, err
	}
	out += f6.Format() + "\n"
	f7, err := s.Fig7()
	if err != nil {
		return out, err
	}
	out += f7.Format() + "\n"
	f8, err := s.Fig8()
	if err != nil {
		return out, err
	}
	out += f8.Format() + "\n"
	f9, err := s.Fig9()
	if err != nil {
		return out, err
	}
	out += f9.Format()
	return out, nil
}
