package bench

import (
	"runtime"
	"testing"

	"privateer/internal/core"
	"privateer/internal/specrt"
)

// TestPipelineDeterminismAcrossGOMAXPROCS: the pipelined committer's
// observable behavior — result, committed output, and the simulated-time
// accounting — must not depend on how many hardware threads the host
// schedules the span onto. Misspeculation-free by construction, so the
// simulated accounting is exactly reproducible (see specrt.Config.Pipeline).
func TestPipelineDeterminismAcrossGOMAXPROCS(t *testing.T) {
	par, seqRet, seqOut, err := preparePipelineSynthetic()
	if err != nil {
		t.Fatal(err)
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)

	type observed struct {
		ret uint64
		out string
		sim specrt.SimStats
	}
	var runs []observed
	for _, gmp := range []int{1, 4} {
		runtime.GOMAXPROCS(gmp)
		rt, ret, err := core.Run(par, specrt.Config{
			Workers: pipelineWorkers, CheckpointPeriod: pipelinePeriod, Pipeline: true,
		})
		if err != nil {
			t.Fatalf("GOMAXPROCS=%d: %v", gmp, err)
		}
		if rt.Stats.Misspecs != 0 {
			t.Fatalf("GOMAXPROCS=%d: unexpected misspeculation", gmp)
		}
		runs = append(runs, observed{ret: ret, out: rt.Output(), sim: rt.Sim})
	}
	for i, r := range runs {
		if r.ret != seqRet {
			t.Errorf("run %d: result %d, want sequential %d", i, r.ret, seqRet)
		}
		if r.out != seqOut {
			t.Errorf("run %d: output diverged from sequential reference", i)
		}
	}
	if runs[0].sim != runs[1].sim {
		t.Errorf("simulated accounting depends on GOMAXPROCS:\n 1: %+v\n 4: %+v",
			runs[0].sim, runs[1].sim)
	}
}

// TestPipelineExperimentSmoke runs the report end to end on the synthetic
// workload: outputs must match the sequential reference in both modes and
// the run must be misspeculation-free. The reduction percentage itself is a
// wall-clock quantity asserted by the CI bench smoke, not here.
func TestPipelineExperimentSmoke(t *testing.T) {
	par, seqRet, seqOut, err := preparePipelineSynthetic()
	if err != nil {
		t.Fatal(err)
	}
	row, err := measurePipeline("synthetic", par, seqRet, seqOut,
		pipelineWorkers, pipelinePeriod, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !row.OutputMatch {
		t.Error("pipelined output diverged from the synchronous output")
	}
	if !row.SeqMatch {
		t.Error("parallel output diverged from the sequential reference")
	}
	if row.Misspecs != 0 {
		t.Errorf("unexpected misspeculations: %d", row.Misspecs)
	}
	if row.SyncJoinNS <= 0 || row.PipeJoinNS < 0 {
		t.Errorf("join timings not recorded: sync=%d pipe=%d", row.SyncJoinNS, row.PipeJoinNS)
	}
}
