package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/progs"
	"privateer/internal/service"
	"privateer/internal/specrt"
)

// The service experiment measures the multi-tenant region service under a
// synthetic many-client load: a fleet of clients (one tenant each) submits
// region invocations round-robin over the benchmark programs, retrying on
// admission backpressure, while a sampler records queue depth over time.
// Every job's output is compared against a solo run of the same program
// through the same parallel pipeline — the service must be bit-identical
// under contention. A second row family isolates what the warmed worker
// pool buys: per program, accumulated Stats.SpawnNS on a cold runtime
// versus one reusing pooled address spaces.

// Service experiment shape: the full configuration drives serviceClients
// clients (the ISSUE's 1k-client load); quick shrinks the fleet for CI.
// Each client submits serviceJobsPerClient jobs; spawn rows repeat each
// configuration serviceSpawnReps times and keep the minimum.
const (
	serviceClients       = 1000
	serviceClientsQuick  = 64
	serviceJobsPerClient = 2
	serviceSpawnReps     = 3
	serviceWorkers       = 4
	serviceConcurrency   = 8
	serviceQueueDepth    = 256
)

// ServiceQueueSample is one queue-depth observation during the load run.
type ServiceQueueSample struct {
	// AtMS is milliseconds since the load began.
	AtMS int64 `json:"at_ms"`
	// Depth is the admitted-but-not-running job count at that instant.
	Depth int `json:"depth"`
	// Inflight is the number of invocations executing at that instant.
	Inflight int64 `json:"inflight"`
}

// ServiceSpawnRow isolates the warmed-pool benefit for one program:
// accumulated worker-spawn time with cold clones versus pooled reuse.
type ServiceSpawnRow struct {
	// Name and Input identify the workload.
	Name  string `json:"name"`
	Input string `json:"input"`
	// ColdSpawnNS is Stats.SpawnNS for a run that clones every worker
	// space from scratch (no pool); WarmSpawnNS is the same figure for a
	// run drawing from an already-warmed pool. Minima over reps.
	ColdSpawnNS int64 `json:"cold_spawn_ns"`
	WarmSpawnNS int64 `json:"warm_spawn_ns"`
	// SpawnSpeedup is ColdSpawnNS / WarmSpawnNS.
	SpawnSpeedup float64 `json:"spawn_speedup"`
	// WarmSpawns counts worker spawns the warm run satisfied from the
	// pool (must be > 0 for the row to mean anything).
	WarmSpawns int64 `json:"warm_spawns"`
	// Identical reports whether the warm run reproduced the cold run's
	// return value and output byte for byte.
	Identical bool `json:"identical"`
}

// ServiceReport is the service experiment's result document
// (BENCH_service.json in CI).
type ServiceReport struct {
	// Clients, Workers, Concurrency and QueueDepth echo the load shape.
	Clients     int `json:"clients"`
	Workers     int `json:"workers"`
	Concurrency int `json:"concurrency"`
	QueueDepth  int `json:"queue_depth"`
	// Jobs is the number of invocations completed by the load run.
	Jobs int `json:"jobs"`
	// DurationNS is the load run's wall clock; RegionsPerSec the
	// resulting throughput.
	DurationNS    int64   `json:"duration_ns"`
	RegionsPerSec float64 `json:"regions_per_sec"`
	// P50NS/P99NS/P999NS are submit-to-done latency percentiles.
	P50NS  int64 `json:"p50_ns"`
	P99NS  int64 `json:"p99_ns"`
	P999NS int64 `json:"p999_ns"`
	// Retries counts submissions refused by backpressure (queue-full or
	// quota) and retried by the clients.
	Retries int64 `json:"retries"`
	// Mismatches counts jobs whose output diverged from the solo
	// reference (must be 0).
	Mismatches int `json:"mismatches"`
	// PoolReuses totals warmed-pool reuse across all programs during the
	// load run.
	PoolReuses int64 `json:"pool_reuses"`
	// MaxQueueDepth is the deepest queue observation; Queue holds the
	// sampled depth-over-time series.
	MaxQueueDepth int                  `json:"max_queue_depth"`
	Queue         []ServiceQueueSample `json:"queue"`
	// Spawn holds the per-program warm-versus-cold spawn-cost rows.
	Spawn []ServiceSpawnRow `json:"spawn"`
}

// JSON renders the report machine-readably.
func (r *ServiceReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Format renders the report as aligned tables with a headline line.
func (r *ServiceReport) Format() string {
	var sb strings.Builder
	sb.WriteString("Multi-tenant region service under synthetic load\n\n")
	sb.WriteString(fmt.Sprintf(
		"load: %d clients x %d jobs, %d runner(s) x %d workers, queue depth %d\n",
		r.Clients, serviceJobsPerClient, r.Concurrency, r.Workers, r.QueueDepth))
	sb.WriteString(fmt.Sprintf(
		"throughput: %d regions in %.2fs = %.1f regions/sec (%d backpressure retries)\n",
		r.Jobs, float64(r.DurationNS)/1e9, r.RegionsPerSec, r.Retries))
	sb.WriteString(fmt.Sprintf("latency: p50 %.2fms  p99 %.2fms  p99.9 %.2fms\n",
		float64(r.P50NS)/1e6, float64(r.P99NS)/1e6, float64(r.P999NS)/1e6))
	sb.WriteString(fmt.Sprintf("queue: max depth %d over %d samples; pool reuses %d\n",
		r.MaxQueueDepth, len(r.Queue), r.PoolReuses))
	if r.Mismatches == 0 {
		sb.WriteString("isolation: every tenant output bit-identical to its solo run\n")
	} else {
		sb.WriteString(fmt.Sprintf("isolation: %d OUTPUT MISMATCHES\n", r.Mismatches))
	}

	rows := make([][]string, 0, len(r.Spawn))
	for _, m := range r.Spawn {
		id := "yes"
		if !m.Identical {
			id = "NO"
		}
		rows = append(rows, []string{
			m.Name, m.Input,
			fmt.Sprintf("%.1f", float64(m.ColdSpawnNS)/1e3),
			fmt.Sprintf("%.1f", float64(m.WarmSpawnNS)/1e3),
			fmt.Sprintf("%.1fx", m.SpawnSpeedup),
			fmt.Sprintf("%d", m.WarmSpawns),
			id,
		})
	}
	sb.WriteString("\nwarmed pool: accumulated worker-spawn cost, cold clone vs pooled reuse\n")
	sb.WriteString(table([]string{
		"program", "input", "cold spawn us", "warm spawn us", "speedup",
		"warm spawns", "=cold"}, rows))
	return sb.String()
}

// percentile returns the p-quantile (0..1) of sorted latencies.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// serviceLoad drives the client fleet against an in-process service and
// fills in the report's throughput, latency, queue and isolation fields.
func serviceLoad(rep *ServiceReport, programs []*progs.Program, inputName string) error {
	svc := service.New(service.Config{
		Workers:     rep.Workers,
		Concurrency: rep.Concurrency,
		QueueDepth:  rep.QueueDepth,
	})
	defer svc.Drain()

	// Solo references: one quiet run per program before the load begins.
	refs := make(map[string]service.JobView, len(programs))
	for _, p := range programs {
		j, err := svc.Submit("reference", p.Name, inputName)
		if err != nil {
			return fmt.Errorf("solo %s: %w", p.Name, err)
		}
		<-j.Done()
		v := svc.View(j)
		if v.State != service.StateDone {
			return fmt.Errorf("solo %s: %s (%s)", p.Name, v.State, v.Error)
		}
		refs[p.Name] = v
	}

	// Queue-depth sampler, running until the load finishes.
	stopSampler := make(chan struct{})
	var samplerDone sync.WaitGroup
	var mu sync.Mutex // guards rep.Queue and rep.MaxQueueDepth
	start := time.Now()
	samplerDone.Add(1)
	go func() {
		defer samplerDone.Done()
		tick := time.NewTicker(5 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-tick.C:
				sn := svc.Snapshot()
				mu.Lock()
				rep.Queue = append(rep.Queue, ServiceQueueSample{
					AtMS:     time.Since(start).Milliseconds(),
					Depth:    sn.QueueDepth,
					Inflight: sn.Inflight,
				})
				if sn.QueueDepth > rep.MaxQueueDepth {
					rep.MaxQueueDepth = sn.QueueDepth
				}
				mu.Unlock()
			}
		}
	}()

	// The client fleet: every client is its own tenant and submits
	// serviceJobsPerClient jobs round-robin over the programs, retrying
	// (briefly parked) whenever admission pushes back.
	var retries atomic.Int64
	var mismatches atomic.Int64
	latencies := make([]int64, rep.Clients*serviceJobsPerClient)
	var wg sync.WaitGroup
	for c := 0; c < rep.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			tenant := fmt.Sprintf("client-%04d", c)
			for k := 0; k < serviceJobsPerClient; k++ {
				p := programs[(c+k)%len(programs)]
				var job *service.Job
				for {
					j, err := svc.Submit(tenant, p.Name, inputName)
					if err == nil {
						job = j
						break
					}
					var full *service.QueueFullError
					var quota *service.QuotaError
					if errors.As(err, &full) || errors.As(err, &quota) {
						retries.Add(1)
						time.Sleep(time.Millisecond)
						continue
					}
					mismatches.Add(1) // hard admission failure: count as broken
					return
				}
				t0 := time.Now()
				<-job.Done()
				latencies[c*serviceJobsPerClient+k] = time.Since(t0).Nanoseconds()
				v := svc.View(job)
				ref := refs[p.Name]
				if v.State != service.StateDone || v.Ret != ref.Ret || v.Output != ref.Output {
					mismatches.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	rep.DurationNS = time.Since(start).Nanoseconds()
	close(stopSampler)
	samplerDone.Wait()

	rep.Jobs = rep.Clients * serviceJobsPerClient
	rep.RegionsPerSec = float64(rep.Jobs) / (float64(rep.DurationNS) / 1e9)
	rep.Retries = retries.Load()
	rep.Mismatches = int(mismatches.Load())
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	rep.P50NS = percentile(latencies, 0.50)
	rep.P99NS = percentile(latencies, 0.99)
	rep.P999NS = percentile(latencies, 0.999)
	for _, pv := range svc.Snapshot().Programs {
		rep.PoolReuses += pv.Pool.Reuses
	}
	// Long load runs accumulate thousands of 5 ms samples; thin the series
	// to a bounded depth-over-time curve (MaxQueueDepth is exact either way).
	const maxSamples = 256
	if n := len(rep.Queue); n > maxSamples {
		thin := make([]ServiceQueueSample, 0, maxSamples)
		for i := 0; i < maxSamples; i++ {
			thin = append(thin, rep.Queue[i*n/maxSamples])
		}
		rep.Queue = thin
	}
	return nil
}

// serviceSpawnRow measures one program's accumulated worker-spawn cost in
// both spawn modes. Cold runs clone from scratch each time; the warm
// figure comes from a pool pre-warmed by a discarded priming run.
func serviceSpawnRow(p *progs.Program, inputName string) (ServiceSpawnRow, error) {
	in := inputFor(p, inputName)
	row := ServiceSpawnRow{Name: p.Name, Input: in.Name}
	par, err := core.Parallelize(p.Build(in), core.Options{})
	if err != nil {
		return row, fmt.Errorf("%s parallelize: %w", p.Name, err)
	}
	prog := interp.SharedProgram(par.Mod)

	var coldRet, warmRet uint64
	var coldOut, warmOut string
	row.ColdSpawnNS = -1
	for rep := 0; rep < serviceSpawnReps; rep++ {
		rt, ret, err := core.Run(par, specrt.Config{Workers: serviceWorkers, Program: prog})
		if err != nil {
			return row, fmt.Errorf("%s cold: %w", p.Name, err)
		}
		coldRet, coldOut = ret, rt.Output()
		if ns := rt.Stats.Snapshot().SpawnNS; row.ColdSpawnNS < 0 || ns < row.ColdSpawnNS {
			row.ColdSpawnNS = ns
		}
	}

	pool := specrt.NewWorkerPool(0)
	row.WarmSpawnNS = -1
	for rep := 0; rep < serviceSpawnReps+1; rep++ {
		rt, ret, err := core.Run(par, specrt.Config{Workers: serviceWorkers, Program: prog, Pool: pool})
		if err != nil {
			return row, fmt.Errorf("%s warm: %w", p.Name, err)
		}
		if rep == 0 {
			continue // priming run: the pool is still cold
		}
		warmRet, warmOut = ret, rt.Output()
		st := rt.Stats.Snapshot()
		if row.WarmSpawnNS < 0 || st.SpawnNS < row.WarmSpawnNS {
			row.WarmSpawnNS = st.SpawnNS
			row.WarmSpawns = st.WarmSpawns
		}
	}
	row.SpawnSpeedup = nsRatio(row.ColdSpawnNS, row.WarmSpawnNS)
	row.Identical = coldRet == warmRet && coldOut == warmOut
	return row, nil
}

// RunService measures the region service: the many-client load run plus
// one warm-versus-cold spawn row per configured benchmark. quick shrinks
// the client fleet; the input class comes from cfg (train under -quick).
func RunService(cfg Config, quick bool) (*ServiceReport, error) {
	rep := &ServiceReport{
		Clients:     serviceClients,
		Workers:     serviceWorkers,
		Concurrency: serviceConcurrency,
		QueueDepth:  serviceQueueDepth,
	}
	if quick {
		rep.Clients = serviceClientsQuick
	}
	inputName := cfg.Input
	var selected []*progs.Program
	for _, p := range progs.All() {
		if len(cfg.Programs) > 0 && !containsString(cfg.Programs, p.Name) {
			continue
		}
		selected = append(selected, p)
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("no benchmarks selected")
	}
	if err := serviceLoad(rep, selected, inputName); err != nil {
		return nil, err
	}
	for _, p := range selected {
		row, err := serviceSpawnRow(p, inputName)
		if err != nil {
			return nil, err
		}
		rep.Spawn = append(rep.Spawn, row)
	}
	return rep, nil
}
