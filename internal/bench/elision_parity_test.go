package bench

import (
	"testing"

	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/progs"
)

// TestElisionParity is the differential parity gate for the postprocess
// pass: for every benchmark program the elided/promoted build must
// reproduce the unelided build byte for byte — same return value, same
// printed output — while executing no more dynamic privacy checks. The
// test compiles under both dispatch modes; the slowpath CI lane runs it
// with -tags=slowpath, so the tree-walk reference executor arbitrates the
// comparison there.
func TestElisionParity(t *testing.T) {
	for _, p := range progs.All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			in := p.Train
			build := func() *ir.Module { return p.Build(in) }
			before, err := elisionRun(build, true, 4, 1)
			if err != nil {
				t.Fatalf("unelided: %v", err)
			}
			after, err := elisionRun(build, false, 4, 1)
			if err != nil {
				t.Fatalf("elided: %v", err)
			}
			if after.Ret != before.Ret || after.Out != before.Out {
				t.Errorf("elided build diverged from unelided: ret %#x vs %#x, output %d vs %d bytes",
					after.Ret, before.Ret, len(after.Out), len(before.Out))
			}
			if after.Checks > before.Checks {
				t.Errorf("elided build ran more checks (%d) than unelided (%d)",
					after.Checks, before.Checks)
			}
			seqRet, seqOut, err := core.RunSequential(p.Build(in))
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			// Float-result programs may differ from sequential in fold order
			// (reduction reassociation); everything else must match exactly.
			if !p.FloatResult && (after.Ret != seqRet || after.Out != seqOut) {
				t.Errorf("elided build diverged from sequential: ret %#x vs %#x",
					after.Ret, seqRet)
			}
		})
	}
}
