package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/obs"
	"privateer/internal/vm"
)

// Microbenchmarks isolate the execution core's hot paths so refactors can be
// compared before/after on the same host: the interpreter dispatch loop with
// zero hooks, the load/store path, COW address-space cloning, and the worker
// spawn sequence (clone + interpreter setup + layout adoption). Unlike the
// paper figures these are wall-clock measurements — they characterize the
// reproduction's engine, not the modeled machine.

// MicroResult is one microbenchmark measurement.
type MicroResult struct {
	// Name identifies the benchmark.
	Name string `json:"name"`
	// Unit names what one op is (instruction, memop, clone, spawn).
	Unit string `json:"unit"`
	// Ops is the number of operations timed.
	Ops int64 `json:"ops"`
	// WallNS is the total wall-clock time in nanoseconds.
	WallNS int64 `json:"wall_ns"`
	// NSPerOp is WallNS / Ops.
	NSPerOp float64 `json:"ns_per_op"`
	// OpsPerSec is the derived throughput.
	OpsPerSec float64 `json:"ops_per_sec"`
}

// MicroReport bundles all microbenchmark results.
type MicroReport struct {
	// Results lists one entry per benchmark.
	Results []MicroResult `json:"results"`
}

// JSON renders the report as machine-readable JSON.
func (r *MicroReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Format renders the report as an aligned table.
func (r *MicroReport) Format() string {
	rows := make([][]string, 0, len(r.Results))
	for _, m := range r.Results {
		rows = append(rows, []string{
			m.Name, m.Unit,
			fmt.Sprintf("%d", m.Ops),
			fmt.Sprintf("%.1f", m.NSPerOp),
			fmt.Sprintf("%.2f M", m.OpsPerSec/1e6),
		})
	}
	var sb strings.Builder
	sb.WriteString("Microbenchmarks (execution core, wall clock)\n\n")
	sb.WriteString(table([]string{"benchmark", "unit", "ops", "ns/op", "ops/s"}, rows))
	return sb.String()
}

// result guards against the compiler or a future refactor eliding benchmark
// work.
var microSink uint64

// dispatchModule builds a register-only arithmetic loop: after alloca
// promotion the body is pure SSA dispatch with no memory traffic, so steps
// per second measure the interpreter's instruction-dispatch throughput.
func dispatchModule(n int64) *ir.Module {
	mod := ir.NewModule("micro-dispatch")
	f := mod.NewFunc("main", ir.I64)
	bd := ir.NewBuilder(f)
	acc := bd.Local("acc")
	bd.St(bd.I(0), acc)
	bd.For("i", bd.I(0), bd.I(n), func(iv *ir.Instr) {
		i := bd.Ld(iv)
		s := bd.Ld(acc)
		t1 := bd.Mul(i, bd.I(3))
		t2 := bd.Xor(s, t1)
		t3 := bd.Shl(t2, bd.I(1))
		t4 := bd.Add(t3, bd.LShr(t2, bd.I(17)))
		t5 := bd.Sub(t4, bd.And(i, bd.I(255)))
		bd.St(t5, acc)
	})
	bd.Ret(bd.Ld(acc))
	ir.PromoteAllocas(f)
	f.Recompute()
	return mod
}

// loadStoreModule builds a loop whose body is dominated by aligned 8-byte
// loads and stores into a 2-page malloc'd buffer.
func loadStoreModule(n int64) *ir.Module {
	mod := ir.NewModule("micro-loadstore")
	f := mod.NewFunc("main", ir.I64)
	bd := ir.NewBuilder(f)
	buf := bd.Local("buf")
	bd.St(bd.Malloc("buf", bd.I(8192)), buf)
	bd.For("i", bd.I(0), bd.I(n), func(iv *ir.Instr) {
		i := bd.Ld(iv)
		off := bd.Mul(bd.And(i, bd.I(1023)), bd.I(8))
		p := bd.Add(bd.LdP(buf), off)
		v := bd.Load(p, 8)
		bd.Store(bd.Add(v, i), p, 8)
	})
	bd.Ret(bd.Load(bd.LdP(buf), 8))
	ir.PromoteAllocas(f)
	f.Recompute()
	return mod
}

// memOpsOf counts the executed load+store instructions of loadStoreModule's
// body so the load/store benchmark reports ns per memory access.
const loadStoreMemOpsPerIter = 2

// runModule interprets mod once with zero hooks and returns the interpreter.
func runModule(mod *ir.Module) (*interp.Interp, error) {
	it := interp.New(mod, vm.NewAddressSpace())
	v, err := it.Run()
	microSink += v
	return it, err
}

// microDispatch measures zero-hook dispatch throughput in interpreted
// instructions per second.
func microDispatch() (MicroResult, error) {
	const n = 400000
	mod := dispatchModule(n)
	var ops int64
	var wall time.Duration
	for wall < 300*time.Millisecond {
		m := mod
		if ops > 0 {
			m = dispatchModule(n) // fresh module: no cross-run warm state
		}
		t0 := time.Now()
		it, err := runModule(m)
		if err != nil {
			return MicroResult{}, fmt.Errorf("micro dispatch: %w", err)
		}
		wall += time.Since(t0)
		ops += it.Steps
	}
	return mkResult("dispatch", "instr", ops, wall), nil
}

// microDispatchShared measures dispatch throughput when one module is reused
// across runs (the worker situation: per-function setup amortized away).
func microDispatchShared() (MicroResult, error) {
	const n = 400000
	mod := dispatchModule(n)
	var ops int64
	var wall time.Duration
	for wall < 300*time.Millisecond {
		t0 := time.Now()
		it, err := runModule(mod)
		if err != nil {
			return MicroResult{}, fmt.Errorf("micro dispatch-warm: %w", err)
		}
		wall += time.Since(t0)
		ops += it.Steps
	}
	return mkResult("dispatch-warm", "instr", ops, wall), nil
}

// microLoadStore measures the aligned 8-byte load/store path in memory
// accesses per second.
func microLoadStore() (MicroResult, error) {
	const n = 300000
	mod := loadStoreModule(n)
	var ops int64
	var wall time.Duration
	for wall < 300*time.Millisecond {
		t0 := time.Now()
		_, err := runModule(mod)
		if err != nil {
			return MicroResult{}, fmt.Errorf("micro loadstore: %w", err)
		}
		wall += time.Since(t0)
		ops += n * loadStoreMemOpsPerIter
	}
	return mkResult("loadstore", "memop", ops, wall), nil
}

// microCOWClone measures cloning an address space with 512 instantiated
// pages, plus the COW resolution of a single page write in the child.
func microCOWClone() (MicroResult, error) {
	const pages = 512
	as := vm.NewAddressSpace()
	base := ir.HeapSystem.Base() + vm.PageSize
	for p := uint64(0); p < pages; p++ {
		if err := as.Write(base+p*vm.PageSize, 8, p); err != nil {
			return MicroResult{}, fmt.Errorf("micro cow-clone setup: %w", err)
		}
	}
	var ops int64
	var wall time.Duration
	for wall < 200*time.Millisecond {
		t0 := time.Now()
		c := as.Clone()
		if err := c.Write(base, 8, uint64(ops)); err != nil {
			return MicroResult{}, fmt.Errorf("micro cow-clone: %w", err)
		}
		wall += time.Since(t0)
		v, _ := c.Read(base, 8)
		microSink += v
		ops++
	}
	return mkResult("cow-clone", "clone", ops, wall), nil
}

// microWorkerSpawn measures the worker spawn sequence the speculative
// runtime performs per worker: COW clone of the master space, interpreter
// construction, and global-layout adoption.
func microWorkerSpawn() (MicroResult, error) {
	mod := loadStoreModule(64)
	master := interp.New(mod, vm.NewAddressSpace())
	if _, err := master.Run(); err != nil {
		return MicroResult{}, fmt.Errorf("micro worker-spawn setup: %w", err)
	}
	// Touch a realistic number of pages so the clone is not trivially empty.
	base := ir.HeapSystem.Base() + vm.PageSize
	for p := uint64(0); p < 256; p++ {
		if err := master.AS.Write(base+p*vm.PageSize, 8, p); err != nil {
			return MicroResult{}, fmt.Errorf("micro worker-spawn touch: %w", err)
		}
	}
	layout := master.GlobalLayout()
	var ops int64
	var wall time.Duration
	for wall < 200*time.Millisecond {
		t0 := time.Now()
		as := master.AS.Clone()
		it := interp.New(mod, as)
		it.AdoptLayout(layout)
		wall += time.Since(t0)
		microSink += uint64(it.Steps)
		ops++
	}
	return mkResult("worker-spawn", "spawn", ops, wall), nil
}

func mkResult(name, unit string, ops int64, wall time.Duration) MicroResult {
	ns := wall.Nanoseconds()
	r := MicroResult{Name: name, Unit: unit, Ops: ops, WallNS: ns}
	if ops > 0 && ns > 0 {
		r.NSPerOp = float64(ns) / float64(ops)
		r.OpsPerSec = float64(ops) / (float64(ns) / 1e9)
	}
	return r
}

// RunMicro executes every microbenchmark and returns the report.
func RunMicro() (*MicroReport, error) { return RunMicroTraced(nil) }

// RunMicroTraced is RunMicro with a span mark per benchmark on tr. The
// benchmarks' own address spaces stay untraced — the marks bracket each
// measurement without perturbing the measured paths.
func RunMicroTraced(tr *obs.Tracer) (*MicroReport, error) {
	benches := []func() (MicroResult, error){
		microDispatch,
		microDispatchShared,
		microLoadStore,
		microCOWClone,
		microWorkerSpawn,
	}
	rep := &MicroReport{}
	for _, b := range benches {
		t0 := tr.Now()
		r, err := b()
		if err != nil {
			return nil, err
		}
		if tr.On() {
			tr.Emit(obs.Event{Kind: obs.KMark, TimeNS: t0, DurNS: tr.Now() - t0,
				Invocation: -1, Worker: -1, Iter: -1, Cause: r.Name})
		}
		rep.Results = append(rep.Results, r)
	}
	return rep, nil
}
