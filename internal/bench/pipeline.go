package bench

import (
	"encoding/json"
	"fmt"
	"strings"

	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/progs"
	"privateer/internal/specrt"
	"privateer/internal/vm"
)

// The pipeline experiment measures what the pipelined validator/committer
// (specrt.Config.Pipeline) buys: the master-side critical path after workers
// quiesce — Stats.JoinNS, covering chain validation, checkpoint install, and
// deferred-output commit — compared between the synchronous barrier model
// and the background committer, on misspeculation-free workloads. The
// pipelined output must be byte-identical to the synchronous output on every
// workload — the committer moves work off the critical path, never changes
// it — and both are compared against the sequential reference as well
// (expected to match everywhere except FP-reduction programs, where the
// documented worker-id fold order differs from sequential in the last bits).
//
// The headline row is a synthetic checkpoint-heavy workload (many dirty
// private pages per interval plus deferred output every iteration) where
// validation and commit dominate the join; the five paper benchmarks ride
// along as context rows.

// PipelineRow is one workload's sync-vs-pipelined measurement. Timing
// fields are minima over Repeats runs (wall-clock noise suppression); the
// overlap figure comes from the pipelined run with the minimal join.
type PipelineRow struct {
	// Name identifies the workload ("synthetic" or a benchmark program).
	Name string `json:"name"`
	// Workers and Period are the span shape used.
	Workers int   `json:"workers"`
	Period  int64 `json:"period"`
	// Repeats is the number of runs each timing is minimized over.
	Repeats int `json:"repeats"`
	// SyncJoinNS is the synchronous master critical path (validate + install
	// + commit after quiesce).
	SyncJoinNS int64 `json:"sync_join_ns"`
	// PipeJoinNS is the pipelined drain: whatever the committer had not
	// already overlapped with execution.
	PipeJoinNS int64 `json:"pipe_join_ns"`
	// OverlappedNS is validate/install/commit time the committer performed
	// while workers were still executing.
	OverlappedNS int64 `json:"overlapped_ns"`
	// ReductionPct is 100 * (1 - PipeJoinNS/SyncJoinNS).
	ReductionPct float64 `json:"reduction_pct"`
	// OutputMatch reports whether the pipelined mode reproduced the
	// synchronous mode's return value and output byte for byte (the pipeline
	// equivalence claim; must always hold).
	OutputMatch bool `json:"output_match"`
	// SeqMatch reports whether both modes reproduced the sequential
	// reference exactly. False only for FP-reduction workloads, where the
	// deterministic worker-id fold order differs from the sequential fold in
	// the last float bits (identical in both modes).
	SeqMatch bool `json:"seq_match"`
	// Misspecs totals misspeculations across all measured runs (expected 0:
	// the workloads are misspeculation-free).
	Misspecs int64 `json:"misspecs"`
}

// PipelineReport bundles the pipeline experiment's measurements.
type PipelineReport struct {
	// Rows lists one entry per workload; Rows[0] is the synthetic headline.
	Rows []PipelineRow `json:"rows"`
}

// JSON renders the report machine-readably.
func (r *PipelineReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Format renders the report as an aligned table.
func (r *PipelineReport) Format() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, m := range r.Rows {
		match := "yes"
		if !m.OutputMatch {
			match = "NO"
		}
		seq := "yes"
		if !m.SeqMatch {
			seq = "fp-bits"
		}
		rows = append(rows, []string{
			m.Name,
			fmt.Sprintf("%d", m.Workers),
			fmt.Sprintf("%d", m.Period),
			fmt.Sprintf("%.3f", float64(m.SyncJoinNS)/1e6),
			fmt.Sprintf("%.3f", float64(m.PipeJoinNS)/1e6),
			fmt.Sprintf("%.3f", float64(m.OverlappedNS)/1e6),
			fmt.Sprintf("%.1f%%", m.ReductionPct),
			match,
			seq,
		})
	}
	var sb strings.Builder
	sb.WriteString("Pipelined checkpoint validation & commit (master critical path, wall clock)\n\n")
	sb.WriteString(table([]string{
		"workload", "workers", "k", "sync join ms", "pipe join ms",
		"overlapped ms", "reduction", "pipe=sync", "=seq"}, rows))
	return sb.String()
}

// pipelineModule builds the synthetic checkpoint-heavy workload: every
// iteration stores its index into writesPerIter slots spread one page apart
// across a large private table (many dirty shadow pages per interval — the
// validation and install scans dominate) and prints one deferred-output
// line (the commit stream is non-trivial). Slot values depend only on the
// writing iteration, so last-writer-wins selection by timestamp reproduces
// the sequential final state exactly.
func pipelineModule(n, pages, writesPerIter int64) *ir.Module {
	m := ir.NewModule("pipeline-writer")
	table := m.NewGlobal("table", pages*vm.PageSize)
	f := m.NewFunc("main", ir.I64)
	b := ir.NewBuilder(f)
	stride := pages / writesPerIter
	if stride < 1 {
		stride = 1
	}
	b.For("i", b.I(0), b.I(n), func(iv *ir.Instr) {
		i := b.Ld(iv)
		b.For("j", b.I(0), b.I(writesPerIter), func(jv *ir.Instr) {
			slot := b.SRem(b.Add(i, b.Mul(b.Ld(jv), b.I(stride))), b.I(pages))
			addr := b.Add(b.Global(table), b.Mul(slot, b.I(vm.PageSize)))
			b.Store(i, addr, 8)
		})
		b.Print("i=%d\n", i)
	})
	acc := b.Local("acc")
	b.St(b.I(0), acc)
	b.For("p", b.I(0), b.I(pages), func(pv *ir.Instr) {
		v := b.Load(b.Add(b.Global(table), b.Mul(b.Ld(pv), b.I(vm.PageSize))), 8)
		b.St(b.Add(b.Mul(b.Ld(acc), b.I(31)), v), acc)
	})
	b.Ret(b.Ld(acc))
	for _, fn := range m.SortedFuncs() {
		ir.PromoteAllocas(fn)
	}
	return m
}

// Synthetic workload shape: 8 intervals of 48 iterations, 8 page-spread
// writes per iteration over a 32-page table.
const (
	pipelineIters   = 384
	pipelinePages   = 32
	pipelineWrites  = 8
	pipelinePeriod  = 48
	pipelineWorkers = 8
)

// measurePipeline runs one parallelized workload in both modes repeats
// times and folds the minima into a row. seqOut and seqRet are the
// sequential reference the outputs must reproduce.
func measurePipeline(name string, par *core.Parallelized, seqRet uint64, seqOut string,
	workers int, period int64, repeats int) (PipelineRow, error) {
	row := PipelineRow{
		Name: name, Workers: workers, Period: period,
		Repeats: repeats, OutputMatch: true, SeqMatch: true,
	}
	var syncRet uint64
	var syncOut string
	for _, pipeline := range []bool{false, true} {
		best := int64(-1)
		var bestOverlap int64
		for r := 0; r < repeats; r++ {
			rt, ret, err := core.Run(par, specrt.Config{
				Workers: workers, CheckpointPeriod: period, Pipeline: pipeline,
			})
			if err != nil {
				return row, fmt.Errorf("%s pipeline=%v: %w", name, pipeline, err)
			}
			if !pipeline && r == 0 {
				syncRet, syncOut = ret, rt.Output()
			}
			if ret != seqRet || rt.Output() != seqOut {
				row.SeqMatch = false
			}
			if pipeline && (ret != syncRet || rt.Output() != syncOut) {
				row.OutputMatch = false
			}
			st := rt.Stats.Snapshot()
			row.Misspecs += st.Misspecs
			if j := st.JoinNS; best < 0 || j < best {
				best = j
				bestOverlap = st.OverlappedCommitNS
			}
		}
		if pipeline {
			row.PipeJoinNS = best
			row.OverlappedNS = bestOverlap
		} else {
			row.SyncJoinNS = best
		}
	}
	if row.SyncJoinNS > 0 {
		row.ReductionPct = 100 * (1 - float64(row.PipeJoinNS)/float64(row.SyncJoinNS))
	}
	return row, nil
}

// preparePipelineSynthetic compiles the synthetic workload and its
// sequential reference (shared by RunPipeline and the determinism test).
func preparePipelineSynthetic() (*core.Parallelized, uint64, string, error) {
	mod := pipelineModule(pipelineIters, pipelinePages, pipelineWrites)
	seqIt := interp.New(pipelineModule(pipelineIters, pipelinePages, pipelineWrites), vm.NewAddressSpace())
	var seqOut strings.Builder
	seqIt.Hooks.OnPrint = func(in *ir.Instr, text string) bool {
		seqOut.WriteString(text)
		return true
	}
	seqRet, err := seqIt.Run()
	if err != nil {
		return nil, 0, "", fmt.Errorf("pipeline synthetic sequential: %w", err)
	}
	par, err := core.Parallelize(mod, core.Options{})
	if err != nil {
		return nil, 0, "", fmt.Errorf("pipeline synthetic parallelize: %w", err)
	}
	return par, seqRet, seqOut.String(), nil
}

// RunPipeline measures the pipelined committer against the synchronous
// barrier on the synthetic headline workload plus the configured benchmark
// programs.
func RunPipeline(cfg Config) (*PipelineReport, error) {
	rep := &PipelineReport{}
	par, seqRet, seqOut, err := preparePipelineSynthetic()
	if err != nil {
		return nil, err
	}
	row, err := measurePipeline("synthetic", par, seqRet, seqOut,
		pipelineWorkers, pipelinePeriod, 5)
	if err != nil {
		return nil, err
	}
	rep.Rows = append(rep.Rows, row)

	for _, p := range progs.All() {
		if len(cfg.Programs) > 0 && !containsString(cfg.Programs, p.Name) {
			continue
		}
		in := inputFor(p, cfg.Input)
		seqRet, seqOut, err := core.RunSequential(p.Build(in))
		if err != nil {
			return nil, fmt.Errorf("%s sequential: %w", p.Name, err)
		}
		par, err := core.Parallelize(p.Build(in), core.Options{})
		if err != nil {
			return nil, fmt.Errorf("%s parallelize: %w", p.Name, err)
		}
		row, err := measurePipeline(p.Name, par, seqRet, seqOut,
			cfg.FixedWorkers, 0, 3)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
