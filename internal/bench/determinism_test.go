package bench

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"privateer/internal/core"
	"privateer/internal/progs"
	"privateer/internal/specrt"
)

// The determinism golden file pins the observable execution of all five
// benchmark programs — printed output, step counts, and simulated time — for
// both the sequential interpreter and the speculative runtime. Any refactor
// of the execution core (decoder, TLB, scheduler) must leave every field
// byte-identical; regenerate only for intentional semantic changes, with
//
//	go test ./internal/bench -run TestDeterminismGolden -update-golden

var updateGolden = flag.Bool("update-golden", false,
	"rewrite the determinism golden file from the current implementation")

// detRecord is the pinned observable behavior of one benchmark program.
type detRecord struct {
	Program      string `json:"program"`
	SeqResult    uint64 `json:"seq_result"`
	SeqSteps     int64  `json:"seq_steps"`
	SeqOutSHA    string `json:"seq_output_sha256"`
	RTResult     uint64 `json:"rt_result"`
	RTOutSHA     string `json:"rt_output_sha256"`
	MasterSteps  int64  `json:"master_steps"`
	UsefulSteps  int64  `json:"useful_steps"`
	SimTime      int64  `json:"sim_time"`
	Misspecs     int64  `json:"misspecs"`
	Recoveries   int64  `json:"recoveries"`
	Invocations  int64  `json:"invocations"`
	DoallResult  uint64 `json:"doall_result"`
	DoallOutSHA  string `json:"doall_output_sha256"`
	DoallSimTime int64  `json:"doall_sim_time"`
}

func sha(s string) string {
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}

// detWorkers is the fixed machine size for the golden runs.
const detWorkers = 8

func computeDeterminism(t *testing.T) []detRecord {
	t.Helper()
	var out []detRecord
	for _, p := range progs.All() {
		in := p.Train
		seqRet, seqOut, err := core.RunSequential(p.Build(in))
		if err != nil {
			t.Fatalf("%s sequential: %v", p.Name, err)
		}
		seqSteps, err := seqStepsOf(p, in)
		if err != nil {
			t.Fatalf("%s seq steps: %v", p.Name, err)
		}
		par, err := core.Parallelize(p.Build(in), core.Options{})
		if err != nil {
			t.Fatalf("%s parallelize: %v", p.Name, err)
		}
		rt, rtRet, err := core.Run(par, specrt.Config{Workers: detWorkers})
		if err != nil {
			t.Fatalf("%s speculative run: %v", p.Name, err)
		}
		static, err := core.ParallelizeStatic(p.Build(in), core.Options{})
		if err != nil {
			t.Fatalf("%s static parallelize: %v", p.Name, err)
		}
		srun, err := core.RunStatic(static, detWorkers)
		if err != nil {
			t.Fatalf("%s doall run: %v", p.Name, err)
		}
		out = append(out, detRecord{
			Program:      p.Name,
			SeqResult:    seqRet,
			SeqSteps:     seqSteps,
			SeqOutSHA:    sha(seqOut),
			RTResult:     rtRet,
			RTOutSHA:     sha(rt.Output()),
			MasterSteps:  rt.Sim.SeqSteps,
			UsefulSteps:  rt.Sim.UsefulSteps,
			SimTime:      rt.Sim.Time(),
			Misspecs:     rt.Stats.Misspecs,
			Recoveries:   rt.Stats.Recoveries,
			Invocations:  rt.Stats.Invocations,
			DoallResult:  srun.Ret,
			DoallOutSHA:  sha(srun.Output),
			DoallSimTime: srun.SimTime(),
		})
	}
	return out
}

func goldenPath() string {
	return filepath.Join("testdata", "determinism_golden.json")
}

func TestDeterminismGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full five-benchmark determinism run")
	}
	got := computeDeterminism(t)
	if *updateGolden {
		b, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath(), append(b, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath())
		return
	}
	raw, err := os.ReadFile(goldenPath())
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update-golden): %v", err)
	}
	var want []detRecord
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatalf("parsing golden file: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d programs, golden has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("%s: determinism mismatch\n got  %+v\n want %+v",
				got[i].Program, got[i], want[i])
		}
	}
}
