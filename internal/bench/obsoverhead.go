package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"privateer/internal/interp"
	"privateer/internal/service"
	"privateer/internal/vm"
)

// The obsoverhead experiment quantifies what observability costs where it
// could hurt: the sampling per-opcode profiler on the interpreter's hottest
// path, and per-job flight-recorder tracing on the region service's job
// path. Each comparison runs the same workload with the instrument detached
// and attached, interleaving rounds so host-side drift (frequency scaling,
// GC) hits both configurations equally, and reports the relative slowdown.
// The acceptance bar is <5% overhead for both rows.

// ObsOverheadReport is the profiler-overhead measurement.
type ObsOverheadReport struct {
	// BaselineNSPerOp is dispatch cost with no profiler attached.
	BaselineNSPerOp float64 `json:"baseline_ns_per_op"`
	// ProfiledNSPerOp is dispatch cost with the sampling profiler attached.
	ProfiledNSPerOp float64 `json:"profiled_ns_per_op"`
	// OverheadPct is the relative slowdown in percent.
	OverheadPct float64 `json:"overhead_pct"`
	// SampleEvery is the profiler's sampling period in instructions.
	SampleEvery int64 `json:"sample_every"`
	// BaselineOps and ProfiledOps are the instructions executed per leg.
	BaselineOps int64 `json:"baseline_ops"`
	// ProfiledOps is the instruction count of the profiled leg.
	ProfiledOps int64 `json:"profiled_ops"`
	// ProfiledExecuted is the profiler's estimated executed-instruction
	// total. It trails ProfiledOps by at most one sampling window per
	// profiled run (the unattributed tail after each run's last sample) —
	// a self-check that sampling attribution covers the stream.
	ProfiledExecuted int64 `json:"profiled_executed"`
	// ServiceBaselineNSPerJob is the region service's per-job cost with
	// per-job tracing disabled.
	ServiceBaselineNSPerJob float64 `json:"service_baseline_ns_per_job"`
	// ServiceTracedNSPerJob is the per-job cost with the flight recorder's
	// per-job tracing (the default) enabled.
	ServiceTracedNSPerJob float64 `json:"service_traced_ns_per_job"`
	// ServiceOverheadPct is the service-path tracing slowdown in percent.
	ServiceOverheadPct float64 `json:"service_overhead_pct"`
	// ServiceJobs is the number of jobs each service leg executed.
	ServiceJobs int64 `json:"service_jobs"`
}

// JSON renders the report as machine-readable JSON.
func (r *ObsOverheadReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Format renders the report for terminal output.
func (r *ObsOverheadReport) Format() string {
	var sb strings.Builder
	sb.WriteString("Opcode-profiler overhead (dispatch microbenchmark, wall clock)\n\n")
	rows := [][]string{
		{"baseline", fmt.Sprintf("%.1f", r.BaselineNSPerOp), "-"},
		{fmt.Sprintf("profiled (1/%d)", r.SampleEvery),
			fmt.Sprintf("%.1f", r.ProfiledNSPerOp),
			fmt.Sprintf("%+.1f%%", r.OverheadPct)},
	}
	sb.WriteString(table([]string{"configuration", "ns/instr", "overhead"}, rows))
	sb.WriteString(fmt.Sprintf("\nService-path tracing (%d jobs per leg, wall clock)\n\n",
		r.ServiceJobs))
	srows := [][]string{
		{"untraced", fmt.Sprintf("%.0f", r.ServiceBaselineNSPerJob), "-"},
		{"traced", fmt.Sprintf("%.0f", r.ServiceTracedNSPerJob),
			fmt.Sprintf("%+.1f%%", r.ServiceOverheadPct)},
	}
	sb.WriteString(table([]string{"configuration", "ns/job", "overhead"}, srows))
	return sb.String()
}

// obsOverheadRound interprets the dispatch module once with prof attached
// (nil = baseline) and returns executed instructions and wall time.
func obsOverheadRound(prof *interp.OpProfiler) (int64, time.Duration, error) {
	mod := dispatchModule(400000)
	it := interp.New(mod, vm.NewAddressSpace())
	it.Prof = prof
	t0 := time.Now()
	v, err := it.Run()
	wall := time.Since(t0)
	microSink += v
	return it.Steps, wall, err
}

// RunObsOverhead measures the sampling profiler's dispatch overhead. Rounds
// alternate baseline/profiled so slow drift affects both legs equally, and
// each leg's estimate is the minimum ns/instr over its rounds — the
// standard microbenchmark reduction, since interference (scheduler, GC,
// frequency scaling) only ever adds time.
func RunObsOverhead() (*ObsOverheadReport, error) {
	const rounds = 8
	prof := interp.NewOpProfiler(interp.DefaultSampleEvery)
	var baseOps, profOps int64
	baseBest := math.Inf(1)
	profBest := math.Inf(1)
	// One untimed warmup per leg primes code paths and the page allocator.
	// The warmup uses a throwaway profiler so the measured one's executed
	// total reflects only the timed rounds.
	if _, _, err := obsOverheadRound(nil); err != nil {
		return nil, fmt.Errorf("obsoverhead warmup: %w", err)
	}
	if _, _, err := obsOverheadRound(interp.NewOpProfiler(interp.DefaultSampleEvery)); err != nil {
		return nil, fmt.Errorf("obsoverhead warmup: %w", err)
	}
	for i := 0; i < rounds; i++ {
		ops, wall, err := obsOverheadRound(nil)
		if err != nil {
			return nil, fmt.Errorf("obsoverhead baseline: %w", err)
		}
		baseOps += ops
		if ns := float64(wall.Nanoseconds()) / float64(ops); ns < baseBest {
			baseBest = ns
		}
		ops, wall, err = obsOverheadRound(prof)
		if err != nil {
			return nil, fmt.Errorf("obsoverhead profiled: %w", err)
		}
		profOps += ops
		if ns := float64(wall.Nanoseconds()) / float64(ops); ns < profBest {
			profBest = ns
		}
	}
	rep := &ObsOverheadReport{
		SampleEvery:      interp.DefaultSampleEvery,
		BaselineOps:      baseOps,
		ProfiledOps:      profOps,
		ProfiledExecuted: prof.TotalExecuted(),
		BaselineNSPerOp:  baseBest,
		ProfiledNSPerOp:  profBest,
	}
	if rep.BaselineNSPerOp > 0 {
		rep.OverheadPct = (rep.ProfiledNSPerOp - rep.BaselineNSPerOp) /
			rep.BaselineNSPerOp * 100
	}
	if err := measureServiceOverhead(rep); err != nil {
		return nil, err
	}
	return rep, nil
}

// obsServiceJob pushes one job through svc and returns its wall time.
// Serial submission keeps queue wait out of the measurement: the cost
// under test is the per-job service machinery (ring allocation, event
// emission, phase summarization), not scheduling.
func obsServiceJob(svc *service.Service) (time.Duration, error) {
	t0 := time.Now()
	job, err := svc.Submit("bench", "dijkstra", "train")
	if err != nil {
		return 0, err
	}
	<-job.Done()
	wall := time.Since(t0)
	v := svc.View(job)
	if v.State != service.StateDone {
		return 0, fmt.Errorf("job %s %s: %s", job.ID, v.State, v.Error)
	}
	return wall, nil
}

// measureServiceOverhead fills in the service-path tracing rows: the same
// job stream through two real services, one with per-job tracing disabled
// and one with the always-on default. Each iteration runs a small batch
// of jobs through both legs back to back (order flipping every iteration)
// and the overhead estimate is the median of the per-pair batch-mean
// deltas over the median baseline: batching averages out per-job
// scheduling jitter, which is far larger than the per-job tracing cost,
// while pairing cancels the slow host drift the batches share.
func measureServiceOverhead(rep *ObsOverheadReport) error {
	const (
		batches      = 16
		jobsPerBatch = 6
		benchSeed    = 0xC0FFEE
		poolWorkers  = 4
	)
	mk := func(traceCap int) *service.Service {
		return service.New(service.Config{
			Workers: poolWorkers, Concurrency: 1,
			TraceCapacity: traceCap, Seed: benchSeed,
		})
	}
	baseSvc, tracedSvc := mk(-1), mk(0)
	defer baseSvc.Drain()
	defer tracedSvc.Drain()
	// Untimed warmups absorb program compilation and pool warming, which
	// would otherwise land entirely on each leg's first batch.
	for i := 0; i < 2; i++ {
		if _, err := obsServiceJob(baseSvc); err != nil {
			return fmt.Errorf("obsoverhead service warmup: %w", err)
		}
		if _, err := obsServiceJob(tracedSvc); err != nil {
			return fmt.Errorf("obsoverhead service warmup: %w", err)
		}
	}
	batch := func(svc *service.Service) (float64, error) {
		var total time.Duration
		for j := 0; j < jobsPerBatch; j++ {
			wall, err := obsServiceJob(svc)
			if err != nil {
				return 0, err
			}
			total += wall
		}
		return float64(total.Nanoseconds()) / jobsPerBatch, nil
	}
	baseNS := make([]float64, 0, batches)
	deltaNS := make([]float64, 0, batches)
	for i := 0; i < batches; i++ {
		legs := []*service.Service{baseSvc, tracedSvc}
		if i%2 == 1 {
			legs[0], legs[1] = legs[1], legs[0]
		}
		var pairNS [2]float64
		for li, svc := range legs {
			ns, err := batch(svc)
			if err != nil {
				return fmt.Errorf("obsoverhead service leg: %w", err)
			}
			pairNS[li] = ns
		}
		b, t := pairNS[0], pairNS[1]
		if i%2 == 1 {
			b, t = t, b
		}
		baseNS = append(baseNS, b)
		deltaNS = append(deltaNS, t-b)
	}
	base := median(baseNS)
	delta := median(deltaNS)
	rep.ServiceJobs = batches * jobsPerBatch
	rep.ServiceBaselineNSPerJob = base
	rep.ServiceTracedNSPerJob = base + delta
	if base > 0 {
		rep.ServiceOverheadPct = delta / base * 100
	}
	return nil
}

// median returns the middle value of xs (mean of the middle two for even
// lengths); 0 for an empty slice.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
