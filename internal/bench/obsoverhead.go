package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"time"

	"privateer/internal/interp"
	"privateer/internal/vm"
)

// The obsoverhead experiment quantifies what the sampling per-opcode
// profiler costs on the interpreter's hottest path. It runs the same
// register-only dispatch microbenchmark with the profiler detached and
// attached, interleaving rounds so host-side drift (frequency scaling, GC)
// hits both configurations equally, and reports the relative slowdown. The
// acceptance bar for the profiler is <5% dispatch overhead.

// ObsOverheadReport is the profiler-overhead measurement.
type ObsOverheadReport struct {
	// BaselineNSPerOp is dispatch cost with no profiler attached.
	BaselineNSPerOp float64 `json:"baseline_ns_per_op"`
	// ProfiledNSPerOp is dispatch cost with the sampling profiler attached.
	ProfiledNSPerOp float64 `json:"profiled_ns_per_op"`
	// OverheadPct is the relative slowdown in percent.
	OverheadPct float64 `json:"overhead_pct"`
	// SampleEvery is the profiler's sampling period in instructions.
	SampleEvery int64 `json:"sample_every"`
	// BaselineOps and ProfiledOps are the instructions executed per leg.
	BaselineOps int64 `json:"baseline_ops"`
	// ProfiledOps is the instruction count of the profiled leg.
	ProfiledOps int64 `json:"profiled_ops"`
	// ProfiledExecuted is the profiler's estimated executed-instruction
	// total. It trails ProfiledOps by at most one sampling window per
	// profiled run (the unattributed tail after each run's last sample) —
	// a self-check that sampling attribution covers the stream.
	ProfiledExecuted int64 `json:"profiled_executed"`
}

// JSON renders the report as machine-readable JSON.
func (r *ObsOverheadReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Format renders the report for terminal output.
func (r *ObsOverheadReport) Format() string {
	var sb strings.Builder
	sb.WriteString("Opcode-profiler overhead (dispatch microbenchmark, wall clock)\n\n")
	rows := [][]string{
		{"baseline", fmt.Sprintf("%.1f", r.BaselineNSPerOp), "-"},
		{fmt.Sprintf("profiled (1/%d)", r.SampleEvery),
			fmt.Sprintf("%.1f", r.ProfiledNSPerOp),
			fmt.Sprintf("%+.1f%%", r.OverheadPct)},
	}
	sb.WriteString(table([]string{"configuration", "ns/instr", "overhead"}, rows))
	return sb.String()
}

// obsOverheadRound interprets the dispatch module once with prof attached
// (nil = baseline) and returns executed instructions and wall time.
func obsOverheadRound(prof *interp.OpProfiler) (int64, time.Duration, error) {
	mod := dispatchModule(400000)
	it := interp.New(mod, vm.NewAddressSpace())
	it.Prof = prof
	t0 := time.Now()
	v, err := it.Run()
	wall := time.Since(t0)
	microSink += v
	return it.Steps, wall, err
}

// RunObsOverhead measures the sampling profiler's dispatch overhead. Rounds
// alternate baseline/profiled so slow drift affects both legs equally, and
// each leg's estimate is the minimum ns/instr over its rounds — the
// standard microbenchmark reduction, since interference (scheduler, GC,
// frequency scaling) only ever adds time.
func RunObsOverhead() (*ObsOverheadReport, error) {
	const rounds = 8
	prof := interp.NewOpProfiler(interp.DefaultSampleEvery)
	var baseOps, profOps int64
	baseBest := math.Inf(1)
	profBest := math.Inf(1)
	// One untimed warmup per leg primes code paths and the page allocator.
	// The warmup uses a throwaway profiler so the measured one's executed
	// total reflects only the timed rounds.
	if _, _, err := obsOverheadRound(nil); err != nil {
		return nil, fmt.Errorf("obsoverhead warmup: %w", err)
	}
	if _, _, err := obsOverheadRound(interp.NewOpProfiler(interp.DefaultSampleEvery)); err != nil {
		return nil, fmt.Errorf("obsoverhead warmup: %w", err)
	}
	for i := 0; i < rounds; i++ {
		ops, wall, err := obsOverheadRound(nil)
		if err != nil {
			return nil, fmt.Errorf("obsoverhead baseline: %w", err)
		}
		baseOps += ops
		if ns := float64(wall.Nanoseconds()) / float64(ops); ns < baseBest {
			baseBest = ns
		}
		ops, wall, err = obsOverheadRound(prof)
		if err != nil {
			return nil, fmt.Errorf("obsoverhead profiled: %w", err)
		}
		profOps += ops
		if ns := float64(wall.Nanoseconds()) / float64(ops); ns < profBest {
			profBest = ns
		}
	}
	rep := &ObsOverheadReport{
		SampleEvery:      interp.DefaultSampleEvery,
		BaselineOps:      baseOps,
		ProfiledOps:      profOps,
		ProfiledExecuted: prof.TotalExecuted(),
		BaselineNSPerOp:  baseBest,
		ProfiledNSPerOp:  profBest,
	}
	if rep.BaselineNSPerOp > 0 {
		rep.OverheadPct = (rep.ProfiledNSPerOp - rep.BaselineNSPerOp) /
			rep.BaselineNSPerOp * 100
	}
	return rep, nil
}
