package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"privateer/internal/analysis"
	"privateer/internal/core"
	"privateer/internal/interp"
	"privateer/internal/ir"
	"privateer/internal/progs"
	"privateer/internal/specrt"
	"privateer/internal/vm"
)

// The staticsep experiment measures what the static separation prover buys
// on top of the postprocess elision pass: objects proven read-only,
// iteration-private, or reduction-shaped at compile time run with no
// separation checks, no privacy marks, and no per-byte merge walks. The
// "before" build disables only the prover (core.Options.DisableStaticSep) —
// allocation routing, elision, outlining, and the runtime are identical, so
// the delta isolates the proofs. Every row asserts the proven build
// reproduces the elision-only build byte for byte, and compares both
// against the sequential reference.

// StaticSepRow is one benchmark program run speculatively with the static
// separation prover disabled ("before") and enabled ("after").
type StaticSepRow struct {
	// Name and Input identify the workload.
	Name  string `json:"name"`
	Input string `json:"input"`
	// Workers is the speculative worker count used.
	Workers int `json:"workers"`

	// ProvenObjects counts the objects the prover discharged across the
	// program's parallel regions, and ProvenByRule breaks them down by
	// winning rule (readonly/iterlocal/covered/affine/redux).
	ProvenObjects int            `json:"proven_objects"`
	ProvenByRule  map[string]int `json:"proven_by_rule"`
	// ChecksDischarged counts separation-check sites dropped, and
	// PrivMarksDropped / ReduxMarksDropped the per-access privacy marks
	// and redux markers the proofs made unnecessary (static sites).
	ChecksDischarged  int `json:"checks_discharged"`
	PrivMarksDropped  int `json:"priv_marks_dropped"`
	ReduxMarksDropped int `json:"redux_marks_dropped"`

	// BeforeChecks / AfterChecks count residual dynamic checks executed
	// (privacy reads + writes + separation checks).
	BeforeChecks int64 `json:"before_checks"`
	AfterChecks  int64 `json:"after_checks"`
	// ProvenRangeBytes is the proven-object footprint installed wholesale
	// per interval instead of via tracked privacy metadata.
	ProvenRangeBytes int64 `json:"proven_range_bytes"`

	// BeforeNS / AfterNS are speculative-run wall clocks (minimum over
	// staticSepReps runs); Speedup is BeforeNS / AfterNS. As everywhere in
	// the repo the deterministic headline is simulated time: BeforeSim /
	// AfterSim / SimSpeedup, plus EndToEnd = SeqSteps / AfterSim (the
	// Figure 6 metric measured on the proven build).
	BeforeNS   int64   `json:"before_ns"`
	AfterNS    int64   `json:"after_ns"`
	SeqNS      int64   `json:"seq_ns"`
	Speedup    float64 `json:"speedup"`
	BeforeSim  int64   `json:"before_sim"`
	AfterSim   int64   `json:"after_sim"`
	SeqSteps   int64   `json:"seq_steps"`
	SimSpeedup float64 `json:"sim_speedup"`
	EndToEnd   float64 `json:"end_to_end"`

	// BaselineMatch reports whether the proven build reproduced the
	// elision-only build's return value and output byte for byte (must
	// always hold — the gate the driver enforces).
	BaselineMatch bool `json:"baseline_match"`
	// SeqMatch additionally compares both against the sequential reference
	// (false only for FP-reduction fold-order differences, as elsewhere).
	SeqMatch bool `json:"seq_match"`
}

// StaticSepReport bundles the staticsep experiment's measurements.
type StaticSepReport struct {
	// Input is the program input class measured ("huge" unless -quick).
	Input string `json:"input"`
	// Programs holds one row per benchmark.
	Programs []StaticSepRow `json:"programs"`
}

// JSON renders the report machine-readably.
func (r *StaticSepReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return "{}"
	}
	return string(b)
}

// Format renders the report as an aligned before/after table.
func (r *StaticSepReport) Format() string {
	var sb strings.Builder
	sb.WriteString("Static separation prover: proofs off vs on (elision enabled in both builds)\n\n")
	rows := make([][]string, 0, len(r.Programs))
	for _, m := range r.Programs {
		base := "yes"
		if !m.BaselineMatch {
			base = "NO"
		}
		seq := "yes"
		if !m.SeqMatch {
			seq = "fp-bits"
		}
		rules := make([]string, 0, len(analysis.Rules))
		for _, rule := range analysis.Rules {
			if n := m.ProvenByRule[string(rule)]; n > 0 {
				rules = append(rules, fmt.Sprintf("%s:%d", rule, n))
			}
		}
		rows = append(rows, []string{
			m.Name,
			m.Input,
			fmt.Sprintf("%d", m.ProvenObjects),
			strings.Join(rules, " "),
			fmt.Sprintf("%d", m.ChecksDischarged),
			fmt.Sprintf("%d", m.PrivMarksDropped),
			fmt.Sprintf("%d", m.BeforeChecks),
			fmt.Sprintf("%d", m.AfterChecks),
			fmt.Sprintf("%.1f", float64(m.BeforeNS)/1e6),
			fmt.Sprintf("%.1f", float64(m.AfterNS)/1e6),
			fmt.Sprintf("%.2fx", m.Speedup),
			fmt.Sprintf("%.2fx", m.SimSpeedup),
			fmt.Sprintf("%.2fx", m.EndToEnd),
			base,
			seq,
		})
	}
	sb.WriteString(fmt.Sprintf("programs (%s inputs, %d workers): proven/discharged/dropped are static sites,\n"+
		"checks are residual dynamic checks, prove columns are wall clock / simulated time\n",
		r.Input, scaleWorkers))
	sb.WriteString(table([]string{
		"program", "input", "proven", "rules", "chk-", "marks-",
		"before checks", "after checks", "before ms", "after ms", "prove",
		"prove (sim)", "end-to-end", "=base", "=seq"}, rows))
	discharging := 0
	var bestCut float64
	for _, m := range r.Programs {
		if m.ProvenObjects > 0 {
			discharging++
		}
		if m.AfterChecks > 0 && m.BeforeChecks > 0 {
			if cut := float64(m.BeforeChecks) / float64(m.AfterChecks); cut > bestCut {
				bestCut = cut
			}
		}
	}
	if discharging > 0 {
		sb.WriteString(fmt.Sprintf("\nheadline: %d/%d programs statically discharge at least one object class; "+
			"residual dynamic checks drop up to %.1fx,\nevery proven run is bit-identical to the elision-only build\n",
			discharging, len(r.Programs), bestCut))
	}
	return sb.String()
}

// staticSepReps: wall-clock minima over this many speculative runs per mode.
const staticSepReps = 3

// staticSepModeResult is one build's measurements (prover off or on).
type staticSepModeResult struct {
	NS     int64
	Sim    int64
	Out    string
	Ret    uint64
	Checks int64

	ProvenObjects     int
	ProvenByRule      map[string]int
	ChecksDischarged  int
	PrivMarksDropped  int
	ReduxMarksDropped int
	ProvenRangeBytes  int64
}

// staticSepRun parallelizes a freshly built module with the given prover
// setting and times core.Run, returning the best wall clock, the last run's
// output/result and residual-check counts, and the summed static proof
// counters. build must return a fresh module per call.
func staticSepRun(build func() *ir.Module, disable bool, workers, reps int) (row staticSepModeResult, err error) {
	par, err := core.Parallelize(build(), core.Options{DisableStaticSep: disable})
	if err != nil {
		return row, err
	}
	row.ProvenByRule = map[string]int{}
	for _, ri := range par.Regions {
		st := ri.TStats
		row.ChecksDischarged += st.StaticProven
		row.PrivMarksDropped += st.StaticPrivMarksDropped
		row.ReduxMarksDropped += st.StaticReduxMarksDropped
		for rule, n := range st.ProvenByRule {
			row.ProvenObjects += n
			row.ProvenByRule[string(rule)] += n
		}
	}
	row.NS = -1
	for i := 0; i < reps; i++ {
		t0 := time.Now()
		rt, ret, rerr := core.Run(par, specrt.Config{Workers: workers})
		d := time.Since(t0).Nanoseconds()
		if rerr != nil {
			return row, rerr
		}
		if row.NS < 0 || d < row.NS {
			row.NS = d
		}
		row.Out, row.Ret = rt.Output(), ret
		row.Sim = rt.Sim.Time()
		st := rt.Stats.Snapshot()
		row.Checks = st.PrivReadChecks + st.PrivWriteChecks + st.SeparationChecks
		row.ProvenRangeBytes = st.ProvenRangeBytes
	}
	return row, nil
}

// RunStaticSep measures the staticsep experiment: one row per configured
// benchmark, prover off ("before" — the elision-only build of the previous
// PR) versus on. quick lowers the repetition count (the input class comes
// from cfg — the driver defaults it to "huge").
func RunStaticSep(cfg Config, quick bool) (*StaticSepReport, error) {
	reps := staticSepReps
	if quick {
		reps = 1
	}
	rep := &StaticSepReport{Input: cfg.Input}
	for _, p := range progs.All() {
		if len(cfg.Programs) > 0 && !containsString(cfg.Programs, p.Name) {
			continue
		}
		in := inputFor(p, cfg.Input)
		row := StaticSepRow{Name: p.Name, Input: in.Name, Workers: scaleWorkers}

		t0 := time.Now()
		seqIt := interp.New(p.Build(in), vm.NewAddressSpace())
		seqRet, err := seqIt.Run()
		row.SeqNS = time.Since(t0).Nanoseconds()
		if err != nil {
			return nil, fmt.Errorf("%s sequential: %w", p.Name, err)
		}
		seqOut := seqIt.Out.String()
		row.SeqSteps = seqIt.Steps

		build := func() *ir.Module { return p.Build(in) }
		before, err := staticSepRun(build, true, scaleWorkers, reps)
		if err != nil {
			return nil, fmt.Errorf("%s before: %w", p.Name, err)
		}
		after, err := staticSepRun(build, false, scaleWorkers, reps)
		if err != nil {
			return nil, fmt.Errorf("%s after: %w", p.Name, err)
		}

		row.ProvenObjects = after.ProvenObjects
		row.ProvenByRule = after.ProvenByRule
		row.ChecksDischarged = after.ChecksDischarged
		row.PrivMarksDropped = after.PrivMarksDropped
		row.ReduxMarksDropped = after.ReduxMarksDropped
		row.ProvenRangeBytes = after.ProvenRangeBytes
		row.BeforeNS, row.AfterNS = before.NS, after.NS
		row.Speedup = nsRatio(before.NS, after.NS)
		row.BeforeSim, row.AfterSim = before.Sim, after.Sim
		row.SimSpeedup = nsRatio(before.Sim, after.Sim)
		row.EndToEnd = nsRatio(row.SeqSteps, after.Sim)
		row.BeforeChecks, row.AfterChecks = before.Checks, after.Checks
		row.BaselineMatch = before.Out == after.Out && before.Ret == after.Ret
		row.SeqMatch = row.BaselineMatch && after.Ret == seqRet && after.Out == seqOut
		rep.Programs = append(rep.Programs, row)
	}
	return rep, nil
}
