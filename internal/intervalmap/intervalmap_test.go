package intervalmap

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestInsertLookup(t *testing.T) {
	var m Map[string]
	m.Insert(100, 200, "a")
	m.Insert(300, 400, "b")
	cases := []struct {
		addr uint64
		want string
		ok   bool
	}{
		{99, "", false}, {100, "a", true}, {150, "a", true}, {199, "a", true},
		{200, "", false}, {250, "", false}, {300, "b", true}, {399, "b", true},
		{400, "", false},
	}
	for _, c := range cases {
		got, ok := m.Lookup(c.addr)
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%d) = %q,%v; want %q,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestInsertReplacesOverlap(t *testing.T) {
	var m Map[string]
	m.Insert(100, 200, "a")
	m.Insert(150, 250, "b") // overlaps tail of a
	if v, _ := m.Lookup(120); v != "a" {
		t.Errorf("head remnant lost: %q", v)
	}
	if v, _ := m.Lookup(180); v != "b" {
		t.Errorf("overlap not replaced: %q", v)
	}
	if v, _ := m.Lookup(240); v != "b" {
		t.Errorf("extension lost: %q", v)
	}
}

func TestInsertSwallowsContained(t *testing.T) {
	var m Map[string]
	m.Insert(100, 110, "x")
	m.Insert(120, 130, "y")
	m.Insert(90, 140, "big")
	for _, a := range []uint64{95, 105, 125, 139} {
		if v, _ := m.Lookup(a); v != "big" {
			t.Errorf("Lookup(%d) = %q, want big", a, v)
		}
	}
	if m.Len() != 1 {
		t.Errorf("Len = %d, want 1", m.Len())
	}
}

func TestInsertSplitsContainer(t *testing.T) {
	var m Map[string]
	m.Insert(100, 200, "outer")
	m.Insert(140, 160, "inner")
	if v, _ := m.Lookup(120); v != "outer" {
		t.Errorf("left remnant: %q", v)
	}
	if v, _ := m.Lookup(150); v != "inner" {
		t.Errorf("inner: %q", v)
	}
	if v, _ := m.Lookup(180); v != "outer" {
		t.Errorf("right remnant: %q", v)
	}
}

func TestRemove(t *testing.T) {
	var m Map[int]
	m.Insert(10, 20, 1)
	m.Insert(20, 30, 2)
	v, ok := m.Remove(15)
	if !ok || v != 1 {
		t.Fatalf("Remove(15) = %d,%v", v, ok)
	}
	if _, ok := m.Lookup(15); ok {
		t.Error("interval still present after Remove")
	}
	if v, ok := m.Lookup(25); !ok || v != 2 {
		t.Error("unrelated interval disturbed")
	}
	if _, ok := m.Remove(15); ok {
		t.Error("second Remove should fail")
	}
}

func TestBoundsAndEach(t *testing.T) {
	var m Map[string]
	m.Insert(5, 10, "a")
	m.Insert(10, 15, "b")
	lo, hi, ok := m.Bounds(12)
	if !ok || lo != 10 || hi != 15 {
		t.Errorf("Bounds(12) = %d,%d,%v", lo, hi, ok)
	}
	var order []string
	m.Each(func(lo, hi uint64, v string) bool {
		order = append(order, v)
		return true
	})
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("Each order = %v", order)
	}
}

func TestEmptyIntervalIgnored(t *testing.T) {
	var m Map[string]
	m.Insert(10, 10, "z")
	if m.Len() != 0 {
		t.Error("empty interval inserted")
	}
}

// Property: after a random series of non-overlapping inserts and removes,
// lookups agree with a reference map implemented by brute force.
func TestAgainstReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var m Map[int]
		type ref struct {
			lo, hi uint64
			v      int
		}
		var refs []ref
		for op := 0; op < 200; op++ {
			switch rng.Intn(3) {
			case 0, 1: // insert
				lo := uint64(rng.Intn(1000))
				hi := lo + uint64(1+rng.Intn(50))
				v := rng.Int()
				m.Insert(lo, hi, v)
				// Remove overlapped portions from refs.
				var next []ref
				for _, r := range refs {
					if r.hi <= lo || r.lo >= hi {
						next = append(next, r)
						continue
					}
					if r.lo < lo {
						next = append(next, ref{r.lo, lo, r.v})
					}
					if r.hi > hi {
						next = append(next, ref{hi, r.hi, r.v})
					}
				}
				refs = append(next, ref{lo, hi, v})
			case 2: // remove
				a := uint64(rng.Intn(1000))
				m.Remove(a)
				for i, r := range refs {
					if a >= r.lo && a < r.hi {
						refs = append(refs[:i], refs[i+1:]...)
						break
					}
				}
			}
		}
		for a := uint64(0); a < 1100; a += 7 {
			got, ok := m.Lookup(a)
			var want int
			wantOK := false
			for _, r := range refs {
				if a >= r.lo && a < r.hi {
					want, wantOK = r.v, true
				}
			}
			if ok != wantOK || (ok && got != want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
