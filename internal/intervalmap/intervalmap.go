// Package intervalmap provides an ordered map from half-open address
// intervals [lo, hi) to values. The Privateer pointer-to-object profiler
// uses it to resolve any dynamic pointer to the name of the memory object
// occupying that address range (section 4.1 of the paper, after Wu et al.).
package intervalmap

import "sort"

// Map associates non-overlapping half-open intervals with values of type V.
// The zero value is an empty map. Not safe for concurrent use.
type Map[V any] struct {
	ivs []interval[V]
}

type interval[V any] struct {
	lo, hi uint64
	val    V
}

// Len returns the number of intervals in the map.
func (m *Map[V]) Len() int { return len(m.ivs) }

// search returns the index of the first interval with lo > addr.
func (m *Map[V]) search(addr uint64) int {
	return sort.Search(len(m.ivs), func(i int) bool { return m.ivs[i].lo > addr })
}

// Insert adds the interval [lo, hi) with value v, replacing any existing
// intervals it overlaps. Inserting an empty interval is a no-op.
func (m *Map[V]) Insert(lo, hi uint64, v V) {
	if lo >= hi {
		return
	}
	// Find the overlap span [first, last) of existing intervals.
	first := sort.Search(len(m.ivs), func(i int) bool { return m.ivs[i].hi > lo })
	last := sort.Search(len(m.ivs), func(i int) bool { return m.ivs[i].lo >= hi })
	repl := []interval[V]{{lo, hi, v}}
	// Preserve the non-overlapping remnants of boundary intervals.
	if first < len(m.ivs) && m.ivs[first].lo < lo {
		head := m.ivs[first]
		head.hi = lo
		repl = append([]interval[V]{head}, repl...)
	}
	if last > 0 && last-1 < len(m.ivs) && m.ivs[last-1].hi > hi {
		tail := m.ivs[last-1]
		tail.lo = hi
		repl = append(repl, tail)
	}
	m.ivs = append(m.ivs[:first], append(repl, m.ivs[last:]...)...)
}

// Remove deletes any interval containing addr and returns its value.
func (m *Map[V]) Remove(addr uint64) (V, bool) {
	var zero V
	i := m.search(addr)
	if i == 0 {
		return zero, false
	}
	i--
	if addr >= m.ivs[i].hi {
		return zero, false
	}
	v := m.ivs[i].val
	m.ivs = append(m.ivs[:i], m.ivs[i+1:]...)
	return v, true
}

// Lookup returns the value of the interval containing addr.
func (m *Map[V]) Lookup(addr uint64) (V, bool) {
	var zero V
	i := m.search(addr)
	if i == 0 {
		return zero, false
	}
	i--
	if addr >= m.ivs[i].hi {
		return zero, false
	}
	return m.ivs[i].val, true
}

// Bounds returns the interval containing addr.
func (m *Map[V]) Bounds(addr uint64) (lo, hi uint64, ok bool) {
	i := m.search(addr)
	if i == 0 {
		return 0, 0, false
	}
	i--
	if addr >= m.ivs[i].hi {
		return 0, 0, false
	}
	return m.ivs[i].lo, m.ivs[i].hi, true
}

// Each calls visit for every interval in ascending address order; returning
// false stops the walk.
func (m *Map[V]) Each(visit func(lo, hi uint64, v V) bool) {
	for _, iv := range m.ivs {
		if !visit(iv.lo, iv.hi, iv.val) {
			return
		}
	}
}
