package ir_test

import (
	"os"
	"testing"

	"privateer/internal/core"
	"privateer/internal/ir"
	"privateer/internal/specrt"
)

// TestCheckedInTextualProgram parses testdata/histogram.pir — a hand-written
// textual-IR program with a histogram array reduction and a max reduction —
// and runs it through the whole pipeline: sequential, then speculative, with
// identical results.
func TestCheckedInTextualProgram(t *testing.T) {
	text, err := os.ReadFile("testdata/histogram.pir")
	if err != nil {
		t.Fatal(err)
	}
	seqMod, err := ir.Parse(string(text))
	if err != nil {
		t.Fatal(err)
	}
	seqVal, seqOut, err := core.RunSequential(seqMod)
	if err != nil {
		t.Fatal(err)
	}
	if seqOut == "" {
		t.Fatal("no output")
	}
	par, err := core.Parallelize(ir.MustParse(string(text)), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(par.Regions) != 1 {
		t.Fatalf("regions = %d:\n%s", len(par.Regions), par.Summary())
	}
	rt, got, err := core.Run(par, specrt.Config{Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if got != seqVal || rt.Output() != seqOut {
		t.Errorf("parallel %d %q vs sequential %d %q (misspecs=%d)",
			got, rt.Output(), seqVal, seqOut, rt.Stats.Misspecs)
	}
	if rt.Stats.Misspecs != 0 {
		t.Errorf("misspeculations: %d", rt.Stats.Misspecs)
	}
}
