module histogram
global @data [512 bytes] heap=read-only init=0301040105090206050305080907090302030804060206030308030205020808050901090705090804050902050307050809050906020806050805050807050901000102020303040405050606070708080900010202030304040505060607070808090001020203030404050506060707080809000102020303040405050606070708080900010203040506070809000102030405060708090001020304050607080900010203040506070809000102030405060708090001020304050607080901020304050607080900010203040506070809010203040506070809000102030405060708090102030405060708090001020304050607080900010203040506070809000102030405

global @hist [80 bytes]
global @maxv [8 bytes]

func @main() i64 {
entry:
	%zero = const 0
	%lim = const 512
	br label head
head:
	%i = phi %zero [entry], %next [tail]
	%c = slt %i, %lim
	condbr %c, label body, label done
body:
	%dbase = global @data
	%daddr = add %dbase, %i
	%v = load.1 %daddr
	%hbase = global @hist
	%eight = const 8
	%ten = const 10
	%bucket = srem %v, %ten
	%off = mul %bucket, %eight
	%haddr = add %hbase, %off
	%old = load.8 %haddr
	%one = const 1
	%new = add %old, %one
	store.8 %new, %haddr
	%mbase = global @maxv
	%mold = load.8 %mbase
	%bigger = sgt %v, %mold
	%mnew = select %bigger, %v, %mold
	store.8 %mnew, %mbase
	br label tail
tail:
	%next = add %i, %one
	br label head
done:
	%hb = global @hist
	%h0 = load.8 %hb
	%mb = global @maxv
	%mx = load.8 %mb
	print "hist[0]=%d max=%d\n" %h0, %mx
	%hundred = const 100
	%scaled = mul %mx, %hundred
	%res = add %scaled, %h0
	ret %res
}
