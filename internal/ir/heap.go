package ir

import "fmt"

// HeapKind names one of Privateer's logical heaps (section 4.2). A heap
// assignment maps every memory object of a loop to exactly one HeapKind; at
// run time all objects of a heap live in a fixed virtual address range whose
// tag is embedded in address bits 44-46, so separation can be validated by
// bit arithmetic on the pointer alone (section 5.1).
type HeapKind uint8

const (
	// HeapSystem holds objects outside any heap assignment: the stack,
	// unclassified globals, and all memory outside parallel regions.
	HeapSystem HeapKind = iota
	// HeapPrivate holds objects speculated to satisfy the Privatization
	// Criterion: no read returns a value written in an earlier iteration.
	HeapPrivate
	// HeapRedux holds accumulators updated only by a single associative,
	// commutative operator (the Reduction Criterion).
	HeapRedux
	// HeapShortLived holds objects allocated and freed within a single
	// iteration (object lifetime speculation).
	HeapShortLived
	// HeapReadOnly holds objects that are only read inside the loop.
	HeapReadOnly
	// HeapUnrestricted holds objects that partake in genuine loop-carried
	// dependences; a loop whose footprint touches it cannot be DOALLed.
	HeapUnrestricted
	// HeapShadow is the metadata heap paired with HeapPrivate. Its tag
	// differs from HeapPrivate's in exactly one bit, so the shadow address
	// of a private byte is computed with a single OR.
	HeapShadow

	// NumHeaps is the count of distinct heap kinds.
	NumHeaps = 7
)

// Tag bit layout: bits 44-46 of a virtual address hold the 3-bit heap tag,
// giving each heap 16 TB of allocation (the paper's layout).
const (
	// TagShift is the bit position of the heap tag within an address.
	TagShift = 44
	// TagMask extracts the heap tag after shifting.
	TagMask = 0x7
	// ShadowBit is the single bit distinguishing the shadow heap's tag
	// (0b101) from the private heap's (0b001).
	ShadowBit = uint64(1) << 46
)

// tag values are chosen so that private (001) and shadow (101) differ only
// in bit 46, as the paper requires for the one-instruction shadow lookup.
var heapTags = [NumHeaps]uint64{
	HeapSystem:       0,
	HeapPrivate:      1, // 0b001
	HeapRedux:        2, // 0b010
	HeapShortLived:   3, // 0b011
	HeapReadOnly:     4, // 0b100
	HeapShadow:       5, // 0b101 = private | (1<<2)
	HeapUnrestricted: 6, // 0b110
}

// Tag returns the 3-bit heap tag assigned to h.
func (h HeapKind) Tag() uint64 { return heapTags[h] }

// Base returns the lowest virtual address of h's 16 TB region.
func (h HeapKind) Base() uint64 { return heapTags[h] << TagShift }

// TagOf extracts the heap tag from a virtual address.
func TagOf(addr uint64) uint64 { return (addr >> TagShift) & TagMask }

// HeapOf maps a virtual address to the heap kind owning it.
func HeapOf(addr uint64) HeapKind {
	switch TagOf(addr) {
	case 1:
		return HeapPrivate
	case 2:
		return HeapRedux
	case 3:
		return HeapShortLived
	case 4:
		return HeapReadOnly
	case 5:
		return HeapShadow
	case 6:
		return HeapUnrestricted
	default:
		return HeapSystem
	}
}

// ShadowAddr returns the metadata address paired with the private address p.
// It is a single bit-wise OR, mirroring the paper's encoding.
func ShadowAddr(p uint64) uint64 { return p | ShadowBit }

func (h HeapKind) String() string {
	switch h {
	case HeapSystem:
		return "system"
	case HeapPrivate:
		return "private"
	case HeapRedux:
		return "redux"
	case HeapShortLived:
		return "short-lived"
	case HeapReadOnly:
		return "read-only"
	case HeapUnrestricted:
		return "unrestricted"
	case HeapShadow:
		return "shadow"
	}
	return fmt.Sprintf("heap(%d)", uint8(h))
}
