package ir

// PromoteAllocas rewrites promotable stack slots into SSA registers
// (the classic mem2reg pass): it places phi nodes at iterated dominance
// frontiers of the slots' stores and renames loads to the reaching
// definition. Front-end-style code that keeps every scalar local in an
// alloca (as Builder's structured helpers emit) becomes pruned SSA, so loop
// analyses see register dependences instead of spurious memory traffic and
// the canonical induction variable of counted loops becomes a header phi.
//
// An alloca is promotable when it is 8 bytes and is used only as the address
// of whole-slot loads and stores. Slots whose address escapes (passed to a
// call, stored to memory, offset arithmetic) keep their memory form.
func PromoteAllocas(f *Function) {
	f.Recompute()
	dt := BuildDomTree(f)

	// Identify promotable allocas.
	type slotInfo struct {
		alloca   *Instr
		defBlks  []*Block
		typ      Type
		anyStore bool
	}
	slots := map[*Instr]*slotInfo{}
	f.Instrs(func(in *Instr) {
		if in.Op == OpAlloca && in.Size == 8 && dt.Reachable(in.Blk) {
			slots[in] = &slotInfo{alloca: in, typ: I64}
		}
	})
	if len(slots) == 0 {
		return
	}
	// Disqualify escaping slots; record defining blocks and a value type.
	f.Instrs(func(in *Instr) {
		for i, a := range in.Args {
			s, isSlot := a.(*Instr)
			if !isSlot {
				continue
			}
			info := slots[s]
			if info == nil {
				continue
			}
			ok := (in.Op == OpLoad && i == 0 && in.Size == 8) ||
				(in.Op == OpStore && i == 1 && in.Size == 8)
			if !ok {
				delete(slots, s)
				continue
			}
			if in.Op == OpStore {
				info.anyStore = true
				info.defBlks = append(info.defBlks, in.Blk)
				if in.Args[0].Type() != I64 {
					info.typ = in.Args[0].Type()
				}
			} else if in.Typ != I64 {
				info.typ = in.Typ
			}
		}
	})
	if len(slots) == 0 {
		return
	}

	df := dt.DominanceFrontiers()

	// Phi placement at iterated dominance frontiers.
	// phiFor[block][slot] is the phi carrying the slot in that block.
	phiFor := make([]map[*Instr]*Instr, len(f.Blocks))
	for _, info := range slots {
		hasPhi := make([]bool, len(f.Blocks))
		work := append([]*Block(nil), info.defBlks...)
		inWork := make([]bool, len(f.Blocks))
		for _, b := range work {
			inWork[b.Index] = true
		}
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, d := range df[b.Index] {
				if hasPhi[d.Index] {
					continue
				}
				hasPhi[d.Index] = true
				phi := f.newInstr(OpPhi, info.typ)
				phi.Blk = d
				phi.Name = info.alloca.Name + ".phi"
				d.Instrs = append([]*Instr{phi}, d.Instrs...)
				if phiFor[d.Index] == nil {
					phiFor[d.Index] = map[*Instr]*Instr{}
				}
				phiFor[d.Index][info.alloca] = phi
				if !inWork[d.Index] {
					inWork[d.Index] = true
					work = append(work, d)
				}
			}
		}
	}

	// Undef value for slots read before any store on some path.
	undef := f.newInstr(OpConst, I64)
	undef.Const = 0
	undef.Name = "undef"
	undef.Blk = f.Entry()
	f.Entry().Instrs = append([]*Instr{undef}, f.Entry().Instrs...)

	// Renaming walk over the dominator tree.
	children := make([][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		if id := dt.IDom(b); id != nil {
			children[id.Index] = append(children[id.Index], b)
		}
	}
	replaced := map[*Instr]Value{} // deleted load -> reaching value
	dead := map[*Instr]bool{}      // instructions to remove

	var rename func(b *Block, reaching map[*Instr]Value)
	rename = func(b *Block, reaching map[*Instr]Value) {
		// Child blocks get a copy; mutate our own map freely.
		local := make(map[*Instr]Value, len(reaching))
		for k, v := range reaching {
			local[k] = v
		}
		for slot, phi := range phiFor[b.Index] {
			local[slot] = phi
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case OpLoad:
				if s, okSlot := in.Args[0].(*Instr); okSlot {
					if _, promoted := slots[s]; promoted {
						v := local[s]
						if v == nil {
							v = undef
						}
						replaced[in] = v
						dead[in] = true
					}
				}
			case OpStore:
				if s, okSlot := in.Args[1].(*Instr); okSlot {
					if _, promoted := slots[s]; promoted {
						local[s] = in.Args[0]
						dead[in] = true
					}
				}
			}
		}
		for _, succ := range b.Succs() {
			for slot, phi := range phiFor[succ.Index] {
				v := local[slot]
				if v == nil {
					v = undef
				}
				AddIncoming(phi, v, b)
			}
		}
		for _, c := range children[b.Index] {
			rename(c, local)
		}
	}
	rename(f.Entry(), map[*Instr]Value{})

	// Resolve replacement chains (a store operand may itself be a deleted
	// load of another slot).
	var resolve func(v Value) Value
	resolve = func(v Value) Value {
		in, isInstr := v.(*Instr)
		if !isInstr {
			return v
		}
		if r, isReplaced := replaced[in]; isReplaced {
			r = resolve(r)
			replaced[in] = r
			return r
		}
		return v
	}

	// Rewrite operands and drop dead loads/stores and promoted allocas.
	for slot := range slots {
		dead[slot] = true
	}
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if dead[in] {
				continue
			}
			for i, a := range in.Args {
				in.Args[i] = resolve(a)
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	prunePhis(f)
	f.Recompute()
}

// prunePhis removes phi nodes that are dead or only feed cycles of other
// dead phis; semi-pruned phi placement routinely creates such cycles for
// slots that are fully re-initialized before use (an inner loop counter seen
// from an outer loop header, for example), and a dead phi in a loop header
// would otherwise masquerade as a loop-carried scalar dependence.
func prunePhis(f *Function) {
	// A phi is live if reachable (through phi operands) from a use by any
	// non-phi instruction.
	live := map[*Instr]bool{}
	var markLive func(v Value)
	markLive = func(v Value) {
		in, isInstr := v.(*Instr)
		if !isInstr || in.Op != OpPhi || live[in] {
			return
		}
		live[in] = true
		for _, a := range in.Args {
			markLive(a)
		}
	}
	f.Instrs(func(in *Instr) {
		if in.Op == OpPhi {
			return
		}
		for _, a := range in.Args {
			markLive(a)
		}
	})
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == OpPhi && !live[in] {
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
}
