package ir

import "sort"

// DomTree is a dominator tree over a function's CFG, computed with the
// Cooper-Harvey-Kennedy iterative algorithm on reverse postorder.
type DomTree struct {
	fn *Function
	// idom[b.Index] is the immediate dominator's index; entry maps to
	// itself; unreachable blocks map to -1.
	idom []int
	// rpo is the reverse postorder of reachable blocks.
	rpo []*Block
	// rpoNum[b.Index] is b's position in rpo, or -1 if unreachable.
	rpoNum []int
}

// BuildDomTree computes the dominator tree of f. The function's predecessor
// lists must be current (call f.Recompute first).
func BuildDomTree(f *Function) *DomTree {
	n := len(f.Blocks)
	dt := &DomTree{fn: f, idom: make([]int, n), rpoNum: make([]int, n)}
	for i := range dt.idom {
		dt.idom[i] = -1
		dt.rpoNum[i] = -1
	}

	// Postorder DFS from entry.
	visited := make([]bool, n)
	var post []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b.Index] = true
		for _, s := range b.Succs() {
			if !visited[s.Index] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(f.Entry())
	dt.rpo = make([]*Block, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		dt.rpoNum[post[i].Index] = len(dt.rpo)
		dt.rpo = append(dt.rpo, post[i])
	}

	entry := f.Entry()
	dt.idom[entry.Index] = entry.Index
	for changed := true; changed; {
		changed = false
		for _, b := range dt.rpo[1:] {
			var newIdom *Block
			for _, p := range b.Preds() {
				if dt.idom[p.Index] == -1 {
					continue // not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = dt.intersect(p, newIdom)
				}
			}
			if newIdom != nil && dt.idom[b.Index] != newIdom.Index {
				dt.idom[b.Index] = newIdom.Index
				changed = true
			}
		}
	}
	return dt
}

func (dt *DomTree) intersect(a, b *Block) *Block {
	f := dt.fn
	for a != b {
		for dt.rpoNum[a.Index] > dt.rpoNum[b.Index] {
			a = f.Blocks[dt.idom[a.Index]]
		}
		for dt.rpoNum[b.Index] > dt.rpoNum[a.Index] {
			b = f.Blocks[dt.idom[b.Index]]
		}
	}
	return a
}

// IDom returns b's immediate dominator, or nil for the entry block and
// unreachable blocks.
func (dt *DomTree) IDom(b *Block) *Block {
	i := dt.idom[b.Index]
	if i == -1 || i == b.Index {
		return nil
	}
	return dt.fn.Blocks[i]
}

// Dominates reports whether a dominates b (reflexively).
func (dt *DomTree) Dominates(a, b *Block) bool {
	if dt.idom[b.Index] == -1 {
		return false // b unreachable
	}
	for {
		if a == b {
			return true
		}
		i := dt.idom[b.Index]
		if i == b.Index {
			return false // reached entry
		}
		b = dt.fn.Blocks[i]
	}
}

// Reachable reports whether b is reachable from the entry block.
func (dt *DomTree) Reachable(b *Block) bool { return dt.idom[b.Index] != -1 }

// RPO returns the reverse postorder of reachable blocks.
func (dt *DomTree) RPO() []*Block { return dt.rpo }

// DominanceFrontiers computes the dominance frontier of every block
// (Cytron et al.), used by PromoteAllocas for phi placement.
func (dt *DomTree) DominanceFrontiers() [][]*Block {
	f := dt.fn
	df := make([][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		if len(b.Preds()) < 2 || !dt.Reachable(b) {
			continue
		}
		for _, p := range b.Preds() {
			if !dt.Reachable(p) {
				continue
			}
			runner := p
			for runner != dt.fn.Blocks[dt.idom[b.Index]] {
				if !containsBlock(df[runner.Index], b) {
					df[runner.Index] = append(df[runner.Index], b)
				}
				next := dt.idom[runner.Index]
				if next == runner.Index {
					break
				}
				runner = f.Blocks[next]
			}
		}
	}
	return df
}

func containsBlock(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// Loop is a natural loop: the header plus every block that can reach a back
// edge source without leaving the loop.
type Loop struct {
	// Header is the loop entry block (target of the back edges).
	Header *Block
	// Blocks is the loop body including the header, in deterministic order.
	Blocks []*Block
	// Latches are the sources of back edges into Header.
	Latches []*Block
	// Exits are blocks outside the loop that are successors of loop blocks.
	Exits []*Block
	// Parent is the innermost enclosing loop, or nil.
	Parent *Loop
	// Children are the loops immediately nested inside this one.
	Children []*Loop
	// Depth is the nesting depth (outermost loops have depth 1).
	Depth int

	blockSet map[*Block]bool
}

// Contains reports whether b belongs to the loop body.
func (l *Loop) Contains(b *Block) bool { return l.blockSet[b] }

// ContainsInstr reports whether in is inside the loop body.
func (l *Loop) ContainsInstr(in *Instr) bool { return l.blockSet[in.Blk] }

// String returns a short description for diagnostics.
func (l *Loop) String() string {
	return l.Header.Fn.Name + ":" + l.Header.Name
}

// FindLoops detects all natural loops of f and returns them outermost-first,
// with parent/child nesting resolved. Irreducible control flow (a branch
// into a loop body that bypasses the header) is not detected as a loop,
// matching standard natural-loop analysis.
func FindLoops(f *Function, dt *DomTree) []*Loop {
	// Collect back edges: b -> h where h dominates b.
	type backEdge struct{ src, head *Block }
	var edges []backEdge
	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			continue
		}
		for _, s := range b.Succs() {
			if dt.Dominates(s, b) {
				edges = append(edges, backEdge{b, s})
			}
		}
	}
	// Merge back edges sharing a header into one loop.
	byHeader := map[*Block]*Loop{}
	var loops []*Loop
	for _, e := range edges {
		l := byHeader[e.head]
		if l == nil {
			l = &Loop{Header: e.head, blockSet: map[*Block]bool{e.head: true}}
			byHeader[e.head] = l
			loops = append(loops, l)
		}
		l.Latches = append(l.Latches, e.src)
		// Walk predecessors backwards from the latch until the header.
		stack := []*Block{e.src}
		for len(stack) > 0 {
			b := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if l.blockSet[b] {
				continue
			}
			l.blockSet[b] = true
			for _, p := range b.Preds() {
				if dt.Reachable(p) {
					stack = append(stack, p)
				}
			}
		}
	}
	// Deterministic block order and exit computation.
	for _, l := range loops {
		for _, b := range f.Blocks {
			if l.blockSet[b] {
				l.Blocks = append(l.Blocks, b)
			}
		}
		seen := map[*Block]bool{}
		for _, b := range l.Blocks {
			for _, s := range b.Succs() {
				if !l.blockSet[s] && !seen[s] {
					seen[s] = true
					l.Exits = append(l.Exits, s)
				}
			}
		}
	}
	// Nesting: loop A is inside loop B if B contains A's header and A != B.
	// The innermost such B is the parent.
	sort.Slice(loops, func(i, j int) bool { return len(loops[i].Blocks) > len(loops[j].Blocks) })
	for _, l := range loops {
		for _, candidate := range loops {
			if candidate == l || !candidate.blockSet[l.Header] {
				continue
			}
			if l.Parent == nil || len(candidate.Blocks) < len(l.Parent.Blocks) {
				l.Parent = candidate
			}
		}
	}
	for _, l := range loops {
		if l.Parent != nil {
			l.Parent.Children = append(l.Parent.Children, l)
		}
	}
	var setDepth func(l *Loop, d int)
	setDepth = func(l *Loop, d int) {
		l.Depth = d
		for _, c := range l.Children {
			setDepth(c, d+1)
		}
	}
	for _, l := range loops {
		if l.Parent == nil {
			setDepth(l, 1)
		}
	}
	return loops
}

// InductionVar describes a canonical induction variable: a header phi that
// starts at Init on loop entry and advances by +1 each trip, with the loop
// exiting when IV < Limit fails. This is the shape DOALL requires.
type InductionVar struct {
	// Phi is the header phi carrying the IV.
	Phi *Instr
	// Init is the IV's value on loop entry.
	Init Value
	// Limit is the exclusive upper bound.
	Limit Value
	// Cmp is the comparison governing the exit branch.
	Cmp *Instr
	// ExitBlock is the block control reaches when the loop finishes.
	ExitBlock *Block
	// BodyEntry is the successor taken while the loop continues.
	BodyEntry *Block
}

// FindInductionVar recognizes the canonical counted-loop pattern in l:
//
//	header: iv = phi [init, preheader], [iv.next, latch]
//	        c = slt iv, limit
//	        condbr c, body, exit
//	latch:  iv.next = add iv, 1
//
// It returns nil if the loop does not match. Limit and Init must be defined
// outside the loop (loop-invariant).
func FindInductionVar(l *Loop) *InductionVar {
	header := l.Header
	term := header.Terminator()
	if term == nil || term.Op != OpCondBr {
		return nil
	}
	cmp, ok := term.Args[0].(*Instr)
	if !ok || cmp.Op != OpSLt || cmp.Blk != header {
		return nil
	}
	phi, ok := cmp.Args[0].(*Instr)
	if !ok || phi.Op != OpPhi || phi.Blk != header {
		return nil
	}
	limit := cmp.Args[1]
	if li, isInstr := limit.(*Instr); isInstr && l.ContainsInstr(li) {
		return nil // limit must be loop-invariant
	}
	if len(phi.Args) != 2 {
		return nil
	}
	var init Value
	var step *Instr
	for i, in := range phi.Args {
		pred := phi.Preds[i]
		if l.Contains(pred) {
			s, isInstr := in.(*Instr)
			if !isInstr {
				return nil
			}
			step = s
		} else {
			init = in
		}
	}
	if step == nil || init == nil {
		return nil
	}
	if ii, isInstr := init.(*Instr); isInstr && l.ContainsInstr(ii) {
		return nil
	}
	// step must be iv + 1.
	if step.Op != OpAdd || len(step.Args) != 2 || step.Args[0] != Value(phi) {
		return nil
	}
	one, isConst := step.Args[1].(*Instr)
	if !isConst || one.Op != OpConst || one.Const != 1 {
		return nil
	}
	body, exit := term.Targets[0], term.Targets[1]
	if !l.Contains(body) || l.Contains(exit) {
		return nil
	}
	return &InductionVar{Phi: phi, Init: init, Limit: limit, Cmp: cmp, ExitBlock: exit, BodyEntry: body}
}
