package ir

import "fmt"

// Verify checks structural well-formedness of the module: every block ends
// in exactly one terminator, phis agree with predecessors, operand counts
// match opcodes, calls match callee signatures, and all referenced blocks,
// globals and functions belong to the module. It returns the first problem
// found, or nil.
func Verify(m *Module) error {
	if m.Entry() == nil {
		return fmt.Errorf("module %s: no entry function %q", m.Name, m.EntryName)
	}
	for _, name := range m.FuncNames() {
		if err := verifyFunc(m.Funcs[name]); err != nil {
			return err
		}
	}
	return nil
}

func verifyFunc(f *Function) error {
	f.Recompute()
	errf := func(in *Instr, format string, args ...interface{}) error {
		loc := f.Name
		if in != nil && in.Blk != nil {
			loc += "." + in.Blk.Name
		}
		return fmt.Errorf("%s: %s: %s", loc, instrString(in, nil), fmt.Sprintf(format, args...))
	}
	if len(f.Blocks) == 0 {
		return fmt.Errorf("%s: no blocks", f.Name)
	}
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("%s.%s: empty block", f.Name, b.Name)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return errf(in, "block does not end in a terminator")
				}
				return errf(in, "terminator in block interior")
			}
			if in.Blk != b {
				return errf(in, "wrong block back-pointer")
			}
			for _, a := range in.Args {
				if a == nil {
					return errf(in, "nil operand")
				}
			}
			if err := verifyArity(in, errf); err != nil {
				return err
			}
			switch in.Op {
			case OpPhi:
				if i > 0 && b.Instrs[i-1].Op != OpPhi {
					return errf(in, "phi after non-phi instruction")
				}
				if len(in.Args) != len(in.Preds) {
					return errf(in, "phi args/preds mismatch: %d vs %d", len(in.Args), len(in.Preds))
				}
				for _, p := range in.Preds {
					if !containsBlock(b.Preds(), p) {
						return errf(in, "phi incoming from non-predecessor %s", p.Name)
					}
				}
			case OpCall:
				if in.Callee == nil {
					return errf(in, "call with nil callee")
				}
				if f.Mod.Funcs[in.Callee.Name] != in.Callee {
					return errf(in, "callee %q not in module", in.Callee.Name)
				}
				if len(in.Args) != len(in.Callee.Params) {
					return errf(in, "call arity %d, callee %q wants %d",
						len(in.Args), in.Callee.Name, len(in.Callee.Params))
				}
			case OpGlobal:
				if in.GlobalRef == nil || f.Mod.Globals[in.GlobalRef.Name] != in.GlobalRef {
					return errf(in, "global reference not in module")
				}
			case OpLoad, OpStore, OpPrivateRead, OpPrivateWrite,
				OpPrivateReadSpan, OpPrivateWriteSpan:
				switch in.Size {
				case 1, 2, 4, 8:
				default:
					return errf(in, "bad access size %d", in.Size)
				}
			case OpRet:
				if f.RetType == Void && len(in.Args) != 0 {
					return errf(in, "value return from void function")
				}
				if f.RetType != Void && len(in.Args) != 1 {
					return errf(in, "missing return value")
				}
			case OpCondBr, OpBr:
				for _, t := range in.Targets {
					if t.Fn != f {
						return errf(in, "branch to block of another function")
					}
				}
			}
		}
	}
	return nil
}

func verifyArity(in *Instr, errf func(*Instr, string, ...interface{}) error) error {
	want := -1
	switch in.Op {
	case OpConst, OpFConst, OpAlloca, OpGlobal, OpMisspec:
		want = 0
	case OpSIToFP, OpFPToSI, OpFree, OpMalloc, OpHAlloc, OpHDealloc, OpCheckHeap,
		OpPrivateRead, OpPrivateWrite, OpReduxWrite, OpLoad, OpPtrToInt, OpIntToPtr:
		want = 1
	case OpBr:
		want = 0
	case OpAdd, OpSub, OpMul, OpSDiv, OpUDiv, OpSRem, OpURem, OpAnd, OpOr, OpXor,
		OpShl, OpLShr, OpAShr, OpEq, OpNe, OpSLt, OpSLe, OpSGt, OpSGe, OpULt, OpUGe,
		OpFAdd, OpFSub, OpFMul, OpFDiv, OpFEq, OpFLt, OpFLe, OpFGt, OpFGe,
		OpStore, OpPredict:
		want = 2
	case OpSelect, OpMemSet, OpMemCopy, OpPrivateReadSpan, OpPrivateWriteSpan:
		want = 3
	case OpCondBr:
		want = 1
	case OpInvalid:
		return errf(in, "invalid opcode")
	}
	if want >= 0 && len(in.Args) != want {
		return errf(in, "op %s wants %d operands, has %d", in.Op, want, len(in.Args))
	}
	switch in.Op {
	case OpBr:
		// Br has zero value operands; re-check targets instead.
		if len(in.Args) != 0 || len(in.Targets) != 1 {
			return errf(in, "br wants 0 operands and 1 target")
		}
	case OpCondBr:
		if len(in.Targets) != 2 {
			return errf(in, "condbr wants 2 targets")
		}
	}
	return nil
}
