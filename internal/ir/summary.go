package ir

// Region summaries: a parallel region is a loop body plus everything
// transitively callable from it. Several stages need this view — the
// transformer instruments region instructions, and the static separation
// prover reasons about the region's complete set of memory effects,
// including callee write sets.

// RegionFuncs returns l's enclosing function followed by every function
// transitively callable from inside l's body, in deterministic discovery
// order.
func RegionFuncs(l *Loop) []*Function {
	seen := map[*Function]bool{l.Header.Fn: true}
	order := []*Function{l.Header.Fn}
	var scan func(f *Function)
	scan = func(f *Function) {
		if seen[f] {
			return
		}
		seen[f] = true
		order = append(order, f)
		f.Instrs(func(in *Instr) {
			if in.Op == OpCall {
				scan(in.Callee)
			}
		})
	}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			if in.Op == OpCall {
				scan(in.Callee)
			}
		}
	}
	return order
}

// RegionMemOps collects the memory-touching instructions that can execute
// inside l's region: writes (store, memset, memcopy, free, h_dealloc) and
// reads (load, memcopy source). Instructions in l's own function count only
// when inside the loop body; instructions in callees count entirely — a
// callee reachable from the loop may run any of its blocks. Deallocations
// count as writes: freeing an object inside a region is a mutation any
// read-only or privacy proof must observe.
func RegionMemOps(l *Loop) (writes, reads []*Instr) {
	collect := func(in *Instr) {
		switch in.Op {
		case OpStore, OpMemSet, OpFree, OpHDealloc:
			writes = append(writes, in)
		case OpLoad:
			reads = append(reads, in)
		case OpMemCopy:
			writes = append(writes, in)
			reads = append(reads, in)
		}
	}
	for _, b := range l.Blocks {
		for _, in := range b.Instrs {
			collect(in)
		}
	}
	for _, f := range RegionFuncs(l)[1:] {
		f.Instrs(collect)
	}
	return writes, reads
}

// FuncsMayRead reports, for each function in the module, whether it (or a
// transitive callee) contains an instruction that may read memory. The
// separation prover uses it to decide which call sites are read points for
// an object without re-walking call graphs per query.
func FuncsMayRead(m *Module) map[*Function]bool {
	out := map[*Function]bool{}
	var visit func(f *Function, stack map[*Function]bool) bool
	visit = func(f *Function, stack map[*Function]bool) bool {
		if v, ok := out[f]; ok {
			return v
		}
		if stack[f] {
			return false // cycle: resolved by another path or stays false
		}
		stack[f] = true
		defer delete(stack, f)
		reads := false
		f.Instrs(func(in *Instr) {
			if reads {
				return
			}
			switch in.Op {
			case OpLoad, OpMemCopy:
				reads = true
			case OpCall:
				if visit(in.Callee, stack) {
					reads = true
				}
			}
		})
		out[f] = reads
		return reads
	}
	for _, f := range m.SortedFuncs() {
		visit(f, map[*Function]bool{})
	}
	return out
}
