package ir

import "testing"

func countOps(f *Function, op Op) int {
	n := 0
	f.Instrs(func(in *Instr) {
		if in.Op == op {
			n++
		}
	})
	return n
}

func TestFoldArithmetic(t *testing.T) {
	m := NewModule("fold")
	f := m.NewFunc("main", I64)
	b := NewBuilder(f)
	x := b.Add(b.I(2), b.I(3))              // 5
	y := b.Mul(x, b.I(4))                   // 20
	z := b.Sub(y, b.SDiv(b.I(100), b.I(5))) // 0
	w := b.Select(b.Eq(z, b.I(0)), b.I(42), b.I(7))
	b.Ret(w)
	Optimize(f)
	if err := Verify(m); err != nil {
		t.Fatal(err)
	}
	// Everything folds to a single constant return.
	term := f.Entry().Terminator()
	c, ok := constValue(term.Args[0])
	if !ok || c != 42 {
		t.Fatalf("folded return = %v\n%s", term.Args[0], FormatFunc(f))
	}
	// Only the surviving constant(s) and ret remain.
	if got := len(f.Entry().Instrs); got > 3 {
		t.Errorf("%d instructions survive, want <= 3:\n%s", got, FormatFunc(f))
	}
}

func TestIdentities(t *testing.T) {
	m := NewModule("id")
	f := m.NewFunc("main", I64)
	p := f.NewParam("p", I64)
	b := NewBuilder(f)
	a := b.Add(p, b.I(0)) // = p
	c := b.Mul(a, b.I(1)) // = p
	d := b.Shl(c, b.I(0)) // = p
	b.Ret(d)
	Optimize(f)
	term := f.Entry().Terminator()
	if term.Args[0] != Value(p) {
		t.Errorf("identities not collapsed: ret %v", term.Args[0])
	}
}

func TestDivByZeroNotFolded(t *testing.T) {
	m := NewModule("div0")
	f := m.NewFunc("main", I64)
	b := NewBuilder(f)
	d := b.SDiv(b.I(1), b.I(0)) // traps at run time: must survive
	b.Ret(b.I(7))
	_ = d
	Optimize(f)
	if countOps(f, OpSDiv) != 1 {
		t.Error("trapping division was removed or folded")
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := NewModule("dce")
	g := m.NewGlobal("g", 8)
	f := m.NewFunc("main", I64)
	b := NewBuilder(f)
	dead := b.Add(b.I(1), b.I(2)) // unused
	_ = dead
	b.Store(b.I(5), b.Global(g), 8) // effect: stays
	mallocd := b.Malloc("obj", b.I(8))
	_ = mallocd // allocation site: stays (it is a named object)
	b.Print("x\n")
	b.Ret(b.I(0))
	Optimize(f)
	if countOps(f, OpStore) != 1 || countOps(f, OpMalloc) != 1 || countOps(f, OpPrint) != 1 {
		t.Errorf("side effects removed:\n%s", FormatFunc(f))
	}
	if countOps(f, OpAdd) != 0 {
		t.Error("dead add survived")
	}
}

func TestOptimizeLoopKeepsSemantics(t *testing.T) {
	build := func() *Function {
		m := NewModule("l")
		g := m.NewGlobal("sum", 8)
		f := m.NewFunc("main", I64)
		b := NewBuilder(f)
		b.For("i", b.I(0), b.I(10), func(iv *Instr) {
			addr := b.Global(g)
			v := b.Mul(b.Ld(iv), b.Add(b.I(2), b.I(3))) // foldable factor
			b.Store(b.Add(b.Load(addr, 8), v), addr, 8)
		})
		b.Ret(b.Load(b.Global(g), 8))
		PromoteAllocas(f)
		return f
	}
	f := build()
	before := 0
	f.Instrs(func(*Instr) { before++ })
	Optimize(f)
	after := 0
	f.Instrs(func(*Instr) { after++ })
	if after >= before {
		t.Errorf("no shrink: %d -> %d", before, after)
	}
	if err := Verify(f.Mod); err != nil {
		t.Fatalf("broken after optimize: %v\n%s", err, FormatFunc(f))
	}
	// The loop structure must survive.
	f.Recompute()
	dt := BuildDomTree(f)
	if len(FindLoops(f, dt)) != 1 {
		t.Error("loop destroyed")
	}
}
