package ir

import "math"

// Builder constructs IR with a current-insertion-point model, plus
// structured-control-flow helpers (If, While, For) so benchmark programs can
// be written in a C-like embedded style. The helpers emit scalar locals as
// allocas, exactly as an unoptimized front end would; PromoteAllocas later
// rewrites them into SSA registers.
type Builder struct {
	// F is the function under construction.
	F *Function
	// B is the current insertion block.
	B *Block

	blockSeq int
}

// NewBuilder returns a builder positioned at f's entry block.
func NewBuilder(f *Function) *Builder {
	return &Builder{F: f, B: f.Entry()}
}

// SetBlock moves the insertion point to b.
func (bd *Builder) SetBlock(b *Block) { bd.B = b }

// NewBlock creates a fresh block with a unique name derived from prefix.
func (bd *Builder) NewBlock(prefix string) *Block {
	bd.blockSeq++
	return bd.F.NewBlock(prefix + "." + itoa(bd.blockSeq))
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// emit appends in to the current block and returns it.
func (bd *Builder) emit(in *Instr) *Instr {
	in.Blk = bd.B
	bd.B.Instrs = append(bd.B.Instrs, in)
	return in
}

// I emits a 64-bit integer constant.
func (bd *Builder) I(v int64) *Instr {
	in := bd.F.newInstr(OpConst, I64)
	in.Const = uint64(v)
	return bd.emit(in)
}

// P emits a pointer constant (normally only 0, the null pointer).
func (bd *Builder) P(v uint64) *Instr {
	in := bd.F.newInstr(OpConst, Ptr)
	in.Const = v
	return bd.emit(in)
}

// Flt emits a float constant.
func (bd *Builder) Flt(v float64) *Instr {
	in := bd.F.newInstr(OpFConst, F64)
	in.Const = math.Float64bits(v)
	return bd.emit(in)
}

func (bd *Builder) bin(op Op, t Type, a, b Value) *Instr {
	return bd.emit(bd.F.newInstr(op, t, a, b))
}

// Integer arithmetic. The result adopts Ptr if either operand is a pointer,
// matching C pointer arithmetic after lowering.
func (bd *Builder) intType(a, b Value) Type {
	if a.Type() == Ptr || b.Type() == Ptr {
		return Ptr
	}
	return I64
}

// Add emits integer/pointer addition.
func (bd *Builder) Add(a, b Value) *Instr { return bd.bin(OpAdd, bd.intType(a, b), a, b) }

// Sub emits integer/pointer subtraction.
func (bd *Builder) Sub(a, b Value) *Instr { return bd.bin(OpSub, bd.intType(a, b), a, b) }

// Mul emits integer multiplication.
func (bd *Builder) Mul(a, b Value) *Instr { return bd.bin(OpMul, I64, a, b) }

// SDiv emits signed division.
func (bd *Builder) SDiv(a, b Value) *Instr { return bd.bin(OpSDiv, I64, a, b) }

// UDiv emits unsigned division.
func (bd *Builder) UDiv(a, b Value) *Instr { return bd.bin(OpUDiv, I64, a, b) }

// SRem emits signed remainder.
func (bd *Builder) SRem(a, b Value) *Instr { return bd.bin(OpSRem, I64, a, b) }

// URem emits unsigned remainder.
func (bd *Builder) URem(a, b Value) *Instr { return bd.bin(OpURem, I64, a, b) }

// And emits bitwise AND.
func (bd *Builder) And(a, b Value) *Instr { return bd.bin(OpAnd, I64, a, b) }

// Or emits bitwise OR.
func (bd *Builder) Or(a, b Value) *Instr { return bd.bin(OpOr, I64, a, b) }

// Xor emits bitwise XOR.
func (bd *Builder) Xor(a, b Value) *Instr { return bd.bin(OpXor, I64, a, b) }

// Shl emits a left shift.
func (bd *Builder) Shl(a, b Value) *Instr { return bd.bin(OpShl, I64, a, b) }

// LShr emits a logical right shift.
func (bd *Builder) LShr(a, b Value) *Instr { return bd.bin(OpLShr, I64, a, b) }

// AShr emits an arithmetic right shift.
func (bd *Builder) AShr(a, b Value) *Instr { return bd.bin(OpAShr, I64, a, b) }

// Comparisons (result is i64 0/1).

// Eq emits an equality comparison.
func (bd *Builder) Eq(a, b Value) *Instr { return bd.bin(OpEq, I64, a, b) }

// Ne emits an inequality comparison.
func (bd *Builder) Ne(a, b Value) *Instr { return bd.bin(OpNe, I64, a, b) }

// SLt emits signed less-than.
func (bd *Builder) SLt(a, b Value) *Instr { return bd.bin(OpSLt, I64, a, b) }

// SLe emits signed less-or-equal.
func (bd *Builder) SLe(a, b Value) *Instr { return bd.bin(OpSLe, I64, a, b) }

// SGt emits signed greater-than.
func (bd *Builder) SGt(a, b Value) *Instr { return bd.bin(OpSGt, I64, a, b) }

// SGe emits signed greater-or-equal.
func (bd *Builder) SGe(a, b Value) *Instr { return bd.bin(OpSGe, I64, a, b) }

// ULt emits unsigned less-than.
func (bd *Builder) ULt(a, b Value) *Instr { return bd.bin(OpULt, I64, a, b) }

// UGe emits unsigned greater-or-equal.
func (bd *Builder) UGe(a, b Value) *Instr { return bd.bin(OpUGe, I64, a, b) }

// Float arithmetic.

// FAdd emits float addition.
func (bd *Builder) FAdd(a, b Value) *Instr { return bd.bin(OpFAdd, F64, a, b) }

// FSub emits float subtraction.
func (bd *Builder) FSub(a, b Value) *Instr { return bd.bin(OpFSub, F64, a, b) }

// FMul emits float multiplication.
func (bd *Builder) FMul(a, b Value) *Instr { return bd.bin(OpFMul, F64, a, b) }

// FDiv emits float division.
func (bd *Builder) FDiv(a, b Value) *Instr { return bd.bin(OpFDiv, F64, a, b) }

// FEq emits float equality.
func (bd *Builder) FEq(a, b Value) *Instr { return bd.bin(OpFEq, I64, a, b) }

// FLt emits float less-than.
func (bd *Builder) FLt(a, b Value) *Instr { return bd.bin(OpFLt, I64, a, b) }

// FLe emits float less-or-equal.
func (bd *Builder) FLe(a, b Value) *Instr { return bd.bin(OpFLe, I64, a, b) }

// FGt emits float greater-than.
func (bd *Builder) FGt(a, b Value) *Instr { return bd.bin(OpFGt, I64, a, b) }

// FGe emits float greater-or-equal.
func (bd *Builder) FGe(a, b Value) *Instr { return bd.bin(OpFGe, I64, a, b) }

// SIToFP converts a signed integer to float.
func (bd *Builder) SIToFP(a Value) *Instr { return bd.emit(bd.F.newInstr(OpSIToFP, F64, a)) }

// FPToSI converts a float to a signed integer, truncating.
func (bd *Builder) FPToSI(a Value) *Instr { return bd.emit(bd.F.newInstr(OpFPToSI, I64, a)) }

// PtrToInt reinterprets a pointer as an integer.
func (bd *Builder) PtrToInt(a Value) *Instr { return bd.emit(bd.F.newInstr(OpPtrToInt, I64, a)) }

// IntToPtrVal reinterprets an integer as a pointer (the unrestricted casts
// the paper's setting permits).
func (bd *Builder) IntToPtrVal(a Value) *Instr { return bd.emit(bd.F.newInstr(OpIntToPtr, Ptr, a)) }

// Select returns a if cond is nonzero, else b.
func (bd *Builder) Select(cond, a, b Value) *Instr {
	return bd.emit(bd.F.newInstr(OpSelect, a.Type(), cond, a, b))
}

// Memory operations.

// Load emits an integer load of size bytes (zero-extended).
func (bd *Builder) Load(ptr Value, size int64) *Instr {
	in := bd.F.newInstr(OpLoad, I64, ptr)
	in.Size = size
	return bd.emit(in)
}

// LoadPtr emits an 8-byte load whose result is typed as a pointer.
func (bd *Builder) LoadPtr(ptr Value) *Instr {
	in := bd.F.newInstr(OpLoad, Ptr, ptr)
	in.Size = 8
	return bd.emit(in)
}

// LoadF emits an 8-byte float load.
func (bd *Builder) LoadF(ptr Value) *Instr {
	in := bd.F.newInstr(OpLoad, F64, ptr)
	in.Size = 8
	in.Float = true
	return bd.emit(in)
}

// Store emits a store of the low size bytes of val to ptr.
func (bd *Builder) Store(val, ptr Value, size int64) *Instr {
	in := bd.F.newInstr(OpStore, Void, val, ptr)
	in.Size = size
	return bd.emit(in)
}

// StoreF emits an 8-byte float store.
func (bd *Builder) StoreF(val, ptr Value) *Instr {
	in := bd.F.newInstr(OpStore, Void, val, ptr)
	in.Size = 8
	in.Float = true
	return bd.emit(in)
}

// Alloca emits a stack allocation of size bytes named name.
func (bd *Builder) Alloca(name string, size int64) *Instr {
	in := bd.F.newInstr(OpAlloca, Ptr)
	in.Size = size
	in.Name = name
	return bd.emit(in)
}

// Malloc emits a heap allocation of size bytes; name labels the allocation
// site for the pointer-to-object profiler.
func (bd *Builder) Malloc(name string, size Value) *Instr {
	in := bd.F.newInstr(OpMalloc, Ptr, size)
	in.Name = name
	return bd.emit(in)
}

// Free emits a heap release of the object at ptr.
func (bd *Builder) Free(ptr Value) *Instr {
	return bd.emit(bd.F.newInstr(OpFree, Void, ptr))
}

// Global emits the address of module global g.
func (bd *Builder) Global(g *Global) *Instr {
	in := bd.F.newInstr(OpGlobal, Ptr)
	in.GlobalRef = g
	return bd.emit(in)
}

// MemSet fills n bytes at ptr with byte value b.
func (bd *Builder) MemSet(ptr, n, b Value) *Instr {
	return bd.emit(bd.F.newInstr(OpMemSet, Void, ptr, n, b))
}

// MemCopy copies n bytes from src to dst.
func (bd *Builder) MemCopy(dst, src, n Value) *Instr {
	return bd.emit(bd.F.newInstr(OpMemCopy, Void, dst, src, n))
}

// Calls and I/O.

// Call emits a direct call to f.
func (bd *Builder) Call(f *Function, args ...Value) *Instr {
	in := bd.F.newInstr(OpCall, f.RetType, args...)
	in.Callee = f
	return bd.emit(in)
}

// Builtin emits a call to the named runtime builtin (sqrt, exp, log, ...).
func (bd *Builder) Builtin(name string, t Type, args ...Value) *Instr {
	in := bd.F.newInstr(OpBuiltin, t, args...)
	in.Builtin = name
	return bd.emit(in)
}

// Print emits formatted output. The format string uses %d for integers and
// %f/%g for floats, one verb per argument, interpreted by the runtime.
func (bd *Builder) Print(format string, args ...Value) *Instr {
	in := bd.F.newInstr(OpPrint, Void, args...)
	in.Str = format
	return bd.emit(in)
}

// Terminators.

// Ret emits a return; pass no argument for void functions.
func (bd *Builder) Ret(vals ...Value) *Instr {
	return bd.emit(bd.F.newInstr(OpRet, Void, vals...))
}

// Br emits an unconditional branch to target.
func (bd *Builder) Br(target *Block) *Instr {
	in := bd.F.newInstr(OpBr, Void)
	in.Targets = []*Block{target}
	return bd.emit(in)
}

// CondBr branches to then if cond is nonzero, otherwise to els.
func (bd *Builder) CondBr(cond Value, then, els *Block) *Instr {
	in := bd.F.newInstr(OpCondBr, Void, cond)
	in.Targets = []*Block{then, els}
	return bd.emit(in)
}

// Phi emits a phi node; add incoming edges with AddIncoming.
func (bd *Builder) Phi(t Type) *Instr {
	return bd.emit(bd.F.newInstr(OpPhi, t))
}

// AddIncoming records that phi receives v when control arrives from pred.
func AddIncoming(phi *Instr, v Value, pred *Block) {
	phi.Args = append(phi.Args, v)
	phi.Preds = append(phi.Preds, pred)
}

// --- Privateer intrinsics (inserted by the privatizing transformation) ---

// HAlloc emits an allocation of size bytes from logical heap h.
func (bd *Builder) HAlloc(name string, size Value, h HeapKind) *Instr {
	in := bd.F.newInstr(OpHAlloc, Ptr, size)
	in.Heap = h
	in.Name = name
	return bd.emit(in)
}

// HDealloc emits a release of ptr back to logical heap h.
func (bd *Builder) HDealloc(ptr Value, h HeapKind) *Instr {
	in := bd.F.newInstr(OpHDealloc, Void, ptr)
	in.Heap = h
	return bd.emit(in)
}

// CheckHeap emits a separation check: misspeculate unless ptr's address tag
// matches h.
func (bd *Builder) CheckHeap(ptr Value, h HeapKind) *Instr {
	in := bd.F.newInstr(OpCheckHeap, Void, ptr)
	in.Heap = h
	return bd.emit(in)
}

// PrivateRead emits a privacy check covering a load of size bytes at ptr.
func (bd *Builder) PrivateRead(ptr Value, size int64) *Instr {
	in := bd.F.newInstr(OpPrivateRead, Void, ptr)
	in.Size = size
	return bd.emit(in)
}

// PrivateWrite emits a privacy check covering a store of size bytes at ptr.
func (bd *Builder) PrivateWrite(ptr Value, size int64) *Instr {
	in := bd.F.newInstr(OpPrivateWrite, Void, ptr)
	in.Size = size
	return bd.emit(in)
}

// PrivateReadSpan emits a span privacy check covering reads of count
// elements of size bytes starting at ptr, consecutive elements stride
// bytes apart.
func (bd *Builder) PrivateReadSpan(ptr, count, stride Value, size int64) *Instr {
	in := bd.F.newInstr(OpPrivateReadSpan, Void, ptr, count, stride)
	in.Size = size
	return bd.emit(in)
}

// PrivateWriteSpan emits a span privacy check covering writes of count
// elements of size bytes starting at ptr, consecutive elements stride
// bytes apart.
func (bd *Builder) PrivateWriteSpan(ptr, count, stride Value, size int64) *Instr {
	in := bd.F.newInstr(OpPrivateWriteSpan, Void, ptr, count, stride)
	in.Size = size
	return bd.emit(in)
}

// ReduxWrite emits a reduction-update marker for size bytes at ptr using
// operator k.
func (bd *Builder) ReduxWrite(ptr Value, size int64, k ReduxKind) *Instr {
	in := bd.F.newInstr(OpReduxWrite, Void, ptr)
	in.Size = size
	in.Redux = k
	return bd.emit(in)
}

// Predict emits a value-prediction check: misspeculate if actual != expected.
func (bd *Builder) Predict(actual, expected Value) *Instr {
	return bd.emit(bd.F.newInstr(OpPredict, Void, actual, expected))
}

// Misspec emits an unconditional misspeculation signal.
func (bd *Builder) Misspec() *Instr {
	return bd.emit(bd.F.newInstr(OpMisspec, Void))
}

// --- Structured control flow (C-like embedded DSL) ---

// Local declares an 8-byte scalar local variable as an alloca in the entry
// block (so PromoteAllocas can turn it into an SSA register) and returns its
// address.
func (bd *Builder) Local(name string) *Instr {
	in := bd.F.newInstr(OpAlloca, Ptr)
	in.Size = 8
	in.Name = name
	// Insert at the top of the entry block, before any terminator.
	entry := bd.F.Entry()
	in.Blk = entry
	entry.Instrs = append([]*Instr{in}, entry.Instrs...)
	return in
}

// Ld loads the 8-byte integer local at addr.
func (bd *Builder) Ld(addr Value) *Instr { return bd.Load(addr, 8) }

// LdP loads the pointer local at addr.
func (bd *Builder) LdP(addr Value) *Instr { return bd.LoadPtr(addr) }

// LdF loads the float local at addr.
func (bd *Builder) LdF(addr Value) *Instr { return bd.LoadF(addr) }

// St stores the 8-byte value v to the local at addr.
func (bd *Builder) St(v, addr Value) *Instr {
	if v.Type() == F64 {
		return bd.StoreF(v, addr)
	}
	return bd.Store(v, addr, 8)
}

// If emits a two-armed conditional; either arm may be nil.
func (bd *Builder) If(cond Value, then func(), els func()) {
	thenB := bd.NewBlock("if.then")
	exitB := bd.NewBlock("if.end")
	elsB := exitB
	if els != nil {
		elsB = bd.NewBlock("if.else")
	}
	bd.CondBr(cond, thenB, elsB)
	bd.SetBlock(thenB)
	if then != nil {
		then()
	}
	if bd.B.Terminator() == nil {
		bd.Br(exitB)
	}
	if els != nil {
		bd.SetBlock(elsB)
		els()
		if bd.B.Terminator() == nil {
			bd.Br(exitB)
		}
	}
	bd.SetBlock(exitB)
}

// While emits a while loop. cond is evaluated in a fresh header block each
// trip; body runs while it is nonzero.
func (bd *Builder) While(cond func() Value, body func()) {
	header := bd.NewBlock("while.head")
	bodyB := bd.NewBlock("while.body")
	exitB := bd.NewBlock("while.end")
	bd.Br(header)
	bd.SetBlock(header)
	bd.CondBr(cond(), bodyB, exitB)
	bd.SetBlock(bodyB)
	body()
	if bd.B.Terminator() == nil {
		bd.Br(header)
	}
	bd.SetBlock(exitB)
}

// For emits the canonical counted loop `for (name=lo; name<hi; name++)`.
// The induction variable lives in a local; body receives its address so the
// body can load the current trip value with Ld.
func (bd *Builder) For(name string, lo, hi Value, body func(iv *Instr)) {
	iv := bd.Local(name)
	bd.St(lo, iv)
	header := bd.NewBlock("for.head")
	bodyB := bd.NewBlock("for.body")
	exitB := bd.NewBlock("for.end")
	bd.Br(header)
	bd.SetBlock(header)
	bd.CondBr(bd.SLt(bd.Ld(iv), hi), bodyB, exitB)
	bd.SetBlock(bodyB)
	body(iv)
	if bd.B.Terminator() == nil {
		bd.St(bd.Add(bd.Ld(iv), bd.I(1)), iv)
		bd.Br(header)
	}
	bd.SetBlock(exitB)
}
