package ir

import (
	"encoding/hex"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse reads the textual IR produced by FormatModule back into a Module.
// The grammar is exactly the printer's output: a module header, global
// declarations, and functions of labeled basic blocks. Parse and
// FormatModule round-trip: Parse(FormatModule(m)) formats identically and
// executes identically.
//
// Value names are per-function (%v12, %node, %argc); forward references
// (phis, loop-carried values) are resolved in a second pass.
func Parse(text string) (*Module, error) {
	p := &parser{lines: strings.Split(text, "\n")}
	return p.parse()
}

// MustParse is Parse for tests and tools with trusted input.
func MustParse(text string) *Module {
	m, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return m
}

type parser struct {
	lines []string
	pos   int
	mod   *Module
}

type pendingRef struct {
	instr *Instr
	argIx int
	name  string
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ir parse: line %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		p.pos++
		if line != "" {
			return line, true
		}
	}
	return "", false
}

func (p *parser) peek() (string, bool) {
	save := p.pos
	line, ok := p.next()
	p.pos = save
	return line, ok
}

func (p *parser) parse() (*Module, error) {
	line, ok := p.next()
	if !ok || !strings.HasPrefix(line, "module ") {
		return nil, p.errf("expected 'module <name>'")
	}
	fields := strings.Fields(line)
	p.mod = NewModule(fields[1])
	for _, f := range fields[2:] {
		if name, found := strings.CutPrefix(f, "entry="); found {
			p.mod.EntryName = name
		}
	}
	for {
		line, ok := p.peek()
		if !ok {
			break
		}
		switch {
		case strings.HasPrefix(line, "global "):
			p.next()
			if err := p.parseGlobal(line); err != nil {
				return nil, err
			}
		case strings.HasPrefix(line, "func "):
			p.next()
			if err := p.parseFunc(line); err != nil {
				return nil, err
			}
		default:
			return nil, p.errf("unexpected top-level line %q", line)
		}
	}
	// Call results adopt the callee's (now known) return type.
	for _, name := range p.mod.FuncNames() {
		p.mod.Funcs[name].Instrs(func(in *Instr) {
			if in.Op == OpCall && in.Typ != Void && in.Callee != nil {
				in.Typ = in.Callee.RetType
			}
		})
	}
	if err := Verify(p.mod); err != nil {
		return nil, fmt.Errorf("ir parse: %w", err)
	}
	return p.mod, nil
}

// parseGlobal handles: global @name [N bytes] heap=private init=<hex>
func (p *parser) parseGlobal(line string) error {
	fields := strings.Fields(line)
	if len(fields) < 3 || !strings.HasPrefix(fields[1], "@") {
		return p.errf("bad global declaration %q", line)
	}
	name := fields[1][1:]
	sizeTok := strings.TrimPrefix(fields[2], "[")
	size, err := strconv.ParseInt(sizeTok, 10, 64)
	if err != nil {
		return p.errf("bad global size in %q", line)
	}
	g := p.mod.NewGlobal(name, size)
	for _, f := range fields[4:] {
		if h, found := strings.CutPrefix(f, "heap="); found {
			k, err := heapByName(h)
			if err != nil {
				return p.errf("%v", err)
			}
			g.Heap = k
		}
		if ih, found := strings.CutPrefix(f, "init="); found {
			raw, err := hex.DecodeString(ih)
			if err != nil {
				return p.errf("bad init hex: %v", err)
			}
			g.Init = raw
		}
	}
	return nil
}

func heapByName(s string) (HeapKind, error) {
	for h := HeapKind(0); h < NumHeaps; h++ {
		if h.String() == s {
			return h, nil
		}
	}
	return HeapSystem, fmt.Errorf("unknown heap %q", s)
}

func typeByName(s string) (Type, error) {
	switch s {
	case "void":
		return Void, nil
	case "i64":
		return I64, nil
	case "f64":
		return F64, nil
	case "ptr":
		return Ptr, nil
	}
	return Void, fmt.Errorf("unknown type %q", s)
}

// parseFunc handles: func @name(%a i64, %b ptr) i64 { ... }
func (p *parser) parseFunc(header string) error {
	rest := strings.TrimPrefix(header, "func @")
	open := strings.IndexByte(rest, '(')
	closeIx := strings.LastIndexByte(rest, ')')
	if open < 0 || closeIx < open {
		return p.errf("bad function header %q", header)
	}
	name := rest[:open]
	paramText := rest[open+1 : closeIx]
	tail := strings.Fields(rest[closeIx+1:])
	if len(tail) < 2 || tail[len(tail)-1] != "{" {
		return p.errf("function header %q must end with a return type and '{'", header)
	}
	ret, err := typeByName(tail[0])
	if err != nil {
		return p.errf("%v", err)
	}
	// Functions may be referenced before definition; fetch or create.
	f := p.mod.Funcs[name]
	if f == nil {
		f = p.mod.NewFunc(name, ret)
	} else {
		f.RetType = ret
	}
	f.Blocks = nil

	values := map[string]Value{}
	if paramText != "" {
		for _, pt := range strings.Split(paramText, ",") {
			parts := strings.Fields(strings.TrimSpace(pt))
			if len(parts) != 2 || !strings.HasPrefix(parts[0], "%") {
				return p.errf("bad parameter %q", pt)
			}
			ty, err := typeByName(parts[1])
			if err != nil {
				return p.errf("%v", err)
			}
			// Re-declare parameters only on first definition.
			pname := parts[0][1:]
			var prm *Param
			for _, existing := range f.Params {
				if existing.String() == parts[0] {
					prm = existing
				}
			}
			if prm == nil {
				prm = f.NewParam(pname, ty)
			}
			values[pname] = prm
		}
	}

	blocks := map[string]*Block{}
	getBlock := func(name string) *Block {
		if b, ok := blocks[name]; ok {
			return b
		}
		b := f.NewBlock(name)
		blocks[name] = b
		return b
	}
	var cur *Block
	var pending []pendingRef
	var labelOrder []string

	for {
		line, ok := p.next()
		if !ok {
			return p.errf("unterminated function %q", name)
		}
		if line == "}" {
			break
		}
		if strings.HasSuffix(line, ":") && !strings.HasPrefix(line, "%") &&
			!strings.ContainsAny(line, " \t") {
			label := strings.TrimSuffix(line, ":")
			cur = getBlock(label)
			labelOrder = append(labelOrder, label)
			continue
		}
		if cur == nil {
			return p.errf("instruction before any block label: %q", line)
		}
		in, err := p.parseInstr(f, line, values, getBlock, &pending)
		if err != nil {
			return err
		}
		in.Blk = cur
		cur.Instrs = append(cur.Instrs, in)
	}

	// Blocks appear in label-definition order, regardless of when branch
	// targets first referenced them.
	if len(labelOrder) != len(f.Blocks) {
		for name := range blocks {
			found := false
			for _, l := range labelOrder {
				if l == name {
					found = true
				}
			}
			if !found {
				return p.errf("branch to undefined block %q in function %s", name, f.Name)
			}
		}
	}
	ordered := make([]*Block, 0, len(labelOrder))
	for _, l := range labelOrder {
		ordered = append(ordered, blocks[l])
	}
	f.Blocks = ordered

	// Resolve forward references.
	for _, ref := range pending {
		v, ok := values[ref.name]
		if !ok {
			return p.errf("undefined value %%%s in function %s", ref.name, name)
		}
		ref.instr.Args[ref.argIx] = v
	}
	// Infer types for values whose type is not syntactically evident
	// (phis and selects inherit from their operands).
	for changed := true; changed; {
		changed = false
		f.Instrs(func(in *Instr) {
			if (in.Op == OpPhi || in.Op == OpSelect) && in.Typ == I64 {
				start := 0
				if in.Op == OpSelect {
					start = 1
				}
				for _, a := range in.Args[start:] {
					if a != nil && a.Type() != I64 && a.Type() != Void {
						in.Typ = a.Type()
						changed = true
						break
					}
				}
			}
		})
	}
	f.Recompute()
	return nil
}

// opByName resolves an opcode mnemonic, with size/float/redux suffixes for
// memory operations ("load.8f", "store.4", "redux_write.8.add.i64").
func opByName(tok string) (op Op, size int64, float bool, redux ReduxKind, err error) {
	base := tok
	if dot := strings.IndexByte(tok, '.'); dot >= 0 {
		base = tok[:dot]
		suffix := tok[dot+1:]
		if base == "redux_write" {
			parts := strings.SplitN(suffix, ".", 2)
			size, err = strconv.ParseInt(parts[0], 10, 64)
			if err != nil {
				return OpInvalid, 0, false, ReduxNone, fmt.Errorf("bad redux size in %q", tok)
			}
			if len(parts) == 2 {
				redux, err = reduxByName(parts[1])
				if err != nil {
					return OpInvalid, 0, false, ReduxNone, err
				}
			}
		} else {
			if strings.HasSuffix(suffix, "f") {
				float = true
				suffix = strings.TrimSuffix(suffix, "f")
			}
			size, err = strconv.ParseInt(suffix, 10, 64)
			if err != nil {
				return OpInvalid, 0, false, ReduxNone, fmt.Errorf("bad size suffix in %q", tok)
			}
		}
	}
	for o := Op(1); o < opCount; o++ {
		if o.String() == base {
			return o, size, float, redux, nil
		}
	}
	return OpInvalid, 0, false, ReduxNone, fmt.Errorf("unknown opcode %q", tok)
}

func reduxByName(s string) (ReduxKind, error) {
	for k := ReduxNone; k <= ReduxMaxF64; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return ReduxNone, fmt.Errorf("unknown reduction op %q", s)
}

// parseInstr parses one instruction line.
func (p *parser) parseInstr(f *Function, line string, values map[string]Value,
	getBlock func(string) *Block, pending *[]pendingRef) (*Instr, error) {

	resultName := ""
	if strings.HasPrefix(line, "%") {
		eq := strings.Index(line, " = ")
		if eq < 0 {
			return nil, p.errf("expected '=' in %q", line)
		}
		resultName = line[1:eq]
		line = line[eq+3:]
	}

	// Opcode token.
	sp := strings.IndexAny(line, " \t")
	opTok := line
	rest := ""
	if sp >= 0 {
		opTok = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	op, size, float, redux, err := opByName(opTok)
	if err != nil {
		return nil, p.errf("%v", err)
	}

	in := f.newInstr(op, Void)
	in.Size = size
	in.Float = float
	in.Redux = redux
	in.Name = resultName

	// Print format string.
	if op == OpPrint {
		if !strings.HasPrefix(rest, `"`) {
			return nil, p.errf("print needs a quoted format: %q", line)
		}
		str, remainder, err := cutQuoted(rest)
		if err != nil {
			return nil, p.errf("%v", err)
		}
		in.Str = str
		rest = strings.TrimSpace(remainder)
	}

	// Tokenize the remaining operands by commas (top-level; no nesting in
	// this grammar).
	var toks []string
	for _, t := range strings.Split(rest, ",") {
		t = strings.TrimSpace(t)
		if t != "" {
			toks = append(toks, t)
		}
	}

	resultType := I64
	addArg := func(tok string) error {
		switch {
		case strings.HasPrefix(tok, "%"):
			name := tok[1:]
			if v, ok := values[name]; ok {
				in.Args = append(in.Args, v)
			} else {
				in.Args = append(in.Args, nil)
				*pending = append(*pending, pendingRef{in, len(in.Args) - 1, name})
			}
			return nil
		default:
			return fmt.Errorf("unexpected operand %q", tok)
		}
	}

	i := 0
	takeFirst := func() (string, bool) {
		if i < len(toks) {
			t := toks[i]
			i++
			return t, true
		}
		return "", false
	}

	switch op {
	case OpConst:
		tok, _ := takeFirst()
		parts := strings.Fields(tok)
		if len(parts) == 0 {
			return nil, p.errf("const needs a value")
		}
		v, err := strconv.ParseInt(parts[0], 10, 64)
		if err != nil {
			uv, uerr := strconv.ParseUint(parts[0], 10, 64)
			if uerr != nil {
				return nil, p.errf("bad const %q", parts[0])
			}
			v = int64(uv)
		}
		in.Const = uint64(v)
		if len(parts) == 2 && parts[1] == "ptr" {
			resultType = Ptr
		}
	case OpFConst:
		tok, _ := takeFirst()
		fv, err := strconv.ParseFloat(strings.Fields(tok)[0], 64)
		if err != nil {
			return nil, p.errf("bad fconst %q", tok)
		}
		in.Const = math.Float64bits(fv)
		resultType = F64
	case OpAlloca:
		tok, _ := takeFirst()
		sz, err := strconv.ParseInt(strings.Fields(tok)[0], 10, 64)
		if err != nil {
			return nil, p.errf("bad alloca size %q", tok)
		}
		in.Size = sz
		resultType = Ptr
	case OpGlobal:
		tok, _ := takeFirst()
		gname := strings.TrimPrefix(strings.Fields(tok)[0], "@")
		g := p.mod.Globals[gname]
		if g == nil {
			return nil, p.errf("unknown global @%s", gname)
		}
		in.GlobalRef = g
		resultType = Ptr
	default:
		// Leading non-value annotations: @callee, !builtin, [heap].
		for i < len(toks) {
			head := toks[i]
			fields := strings.Fields(head)
			consumedAnnotations := 0
			for len(fields) > 0 {
				switch {
				case strings.HasPrefix(fields[0], "@") && op == OpCall:
					callee := p.mod.Funcs[fields[0][1:]]
					if callee == nil {
						// Forward function reference: create a stub that
						// a later "func" line completes.
						callee = p.mod.NewFunc(fields[0][1:], Void)
					}
					in.Callee = callee
					fields = fields[1:]
					consumedAnnotations++
				case strings.HasPrefix(fields[0], "!") && op == OpBuiltin:
					in.Builtin = fields[0][1:]
					fields = fields[1:]
					consumedAnnotations++
				case strings.HasPrefix(fields[0], "["):
					h := strings.Trim(fields[0], "[]")
					k, err := heapByName(h)
					if err != nil {
						return nil, p.errf("%v", err)
					}
					in.Heap = k
					fields = fields[1:]
					consumedAnnotations++
				default:
					goto annotationsDone
				}
			}
		annotationsDone:
			if consumedAnnotations > 0 {
				if len(fields) == 0 {
					i++
					continue
				}
				toks[i] = strings.Join(fields, " ")
			}
			break
		}
		// Remaining tokens: operands, labels, phi incoming.
		for {
			tok, ok := takeFirst()
			if !ok {
				break
			}
			fields := strings.Fields(tok)
			switch {
			case fields[0] == "label":
				if len(fields) != 2 {
					return nil, p.errf("bad label operand %q", tok)
				}
				in.Targets = append(in.Targets, getBlock(fields[1]))
			case strings.HasPrefix(fields[0], "%"):
				if err := addArg(fields[0]); err != nil {
					return nil, p.errf("%v", err)
				}
				// Phi incoming block: "%v [pred]".
				if len(fields) == 2 && strings.HasPrefix(fields[1], "[") {
					in.Preds = append(in.Preds, getBlock(strings.Trim(fields[1], "[]")))
				} else if len(fields) != 1 {
					return nil, p.errf("unexpected trailing tokens in %q", tok)
				}
			default:
				return nil, p.errf("unexpected operand %q", tok)
			}
		}
	}

	// Result typing by opcode convention.
	switch op {
	case OpMalloc, OpHAlloc, OpIntToPtr:
		resultType = Ptr
	case OpFAdd, OpFSub, OpFMul, OpFDiv, OpSIToFP:
		resultType = F64
	case OpLoad:
		if in.Float {
			resultType = F64
		}
	case OpBuiltin:
		resultType = F64
	}
	if resultName != "" {
		in.Typ = resultType
		values[resultName] = in
	} else {
		in.Typ = Void
	}
	return in, nil
}

// cutQuoted splits a Go-quoted string prefix from the rest of the line.
func cutQuoted(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", fmt.Errorf("expected quoted string")
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			unq, err := strconv.Unquote(s[:i+1])
			if err != nil {
				return "", "", fmt.Errorf("bad quoted string: %v", err)
			}
			return unq, s[i+1:], nil
		}
	}
	return "", "", fmt.Errorf("unterminated quoted string")
}
