// Package ir defines the intermediate representation used by the Privateer
// reproduction: a typed, SSA-style IR for a C-like language with unrestricted
// pointers, loads and stores of arbitrary widths, dynamic allocation, calls,
// and explicit control flow.
//
// The IR deliberately mirrors the abstraction level of the paper's LLVM
// substrate: memory is a flat, byte-addressed space; pointers are plain
// 64-bit words; allocation sites (malloc, alloca, globals) are the unit at
// which the pointer-to-object profiler names objects; and natural loops,
// dominator trees and induction variables are recovered from the CFG exactly
// as a mid-end pass pipeline would.
//
// Programs may be written in a relaxed, non-SSA style (scalar locals as
// allocas, as a front end would emit them); the PromoteAllocas pass (mem2reg)
// rewrites them into pruned SSA so that loop analyses see register
// dependences rather than spurious memory traffic.
package ir

import "fmt"

// Type classifies the value produced by an instruction. The IR is
// word-oriented: integers and pointers are 64-bit words and floats are IEEE
// binary64 carried in the same word, so Type exists for analysis and
// verification rather than for storage layout.
type Type uint8

const (
	// Void is the type of instructions that produce no value.
	Void Type = iota
	// I64 is a 64-bit integer.
	I64
	// F64 is an IEEE-754 binary64 floating point number, stored bitwise in
	// a 64-bit word.
	F64
	// Ptr is a 64-bit virtual address into the simulated address space.
	Ptr
)

func (t Type) String() string {
	switch t {
	case Void:
		return "void"
	case I64:
		return "i64"
	case F64:
		return "f64"
	case Ptr:
		return "ptr"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Op enumerates instruction opcodes.
type Op uint8

const (
	// OpInvalid is the zero Op; a verifier error if it appears.
	OpInvalid Op = iota

	// Constants and conversions.
	OpConst  // integer or pointer constant (Const field)
	OpFConst // float constant (Const field holds the bit pattern)
	OpSIToFP // signed int -> float
	OpFPToSI // float -> signed int (truncating)

	// Integer arithmetic (operands and result I64 or Ptr).
	OpAdd
	OpSub
	OpMul
	OpSDiv
	OpUDiv
	OpSRem
	OpURem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Integer comparisons (result I64, 0 or 1).
	OpEq
	OpNe
	OpSLt
	OpSLe
	OpSGt
	OpSGe
	OpULt
	OpUGe

	// Float arithmetic and comparisons.
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpFEq
	OpFLt
	OpFLe
	OpFGt
	OpFGe

	// OpSelect returns Args[1] if Args[0] is nonzero, else Args[2].
	OpSelect

	// Memory.
	OpLoad     // load Size bytes from Args[0]; Float reinterprets as F64
	OpStore    // store low Size bytes of Args[0] to Args[1]
	OpAlloca   // stack allocation of Size bytes; one object per dynamic execution
	OpMalloc   // heap allocation of Args[0] bytes
	OpFree     // release the object at Args[0]
	OpGlobal   // address of the module global named by Global
	OpMemSet   // fill Args[1] bytes at Args[0] with byte Args[2]
	OpMemCopy  // copy Args[2] bytes from Args[1] to Args[0]
	OpPtrToInt // reinterpret pointer as integer
	OpIntToPtr // reinterpret integer as pointer (unrestricted casts)

	// Calls.
	OpCall    // direct call to Callee with Args
	OpBuiltin // call to a named runtime builtin (sqrt, exp, log, ...)
	OpPrint   // formatted output; Str is the format, Args the values

	// Control flow (block terminators).
	OpRet    // return Args[0] (or nothing if len(Args)==0)
	OpBr     // unconditional branch to Targets[0]
	OpCondBr // branch to Targets[0] if Args[0]!=0 else Targets[1]

	// OpPhi selects the incoming value matching the predecessor block;
	// Args aligns with Preds.
	OpPhi

	// Privateer intrinsics, inserted by the privatizing transformation
	// (sections 4.4-4.6 of the paper). They are ordinary instructions so
	// analyses see them, and the interpreter routes them to the runtime.
	OpHAlloc       // allocate Args[0] bytes from logical heap Heap
	OpHDealloc     // free Args[0] from logical heap Heap
	OpCheckHeap    // separation check: Args[0] must lie in logical heap Heap
	OpPrivateRead  // privacy check before a load of Size bytes at Args[0]
	OpPrivateWrite // privacy check before a store of Size bytes at Args[0]
	OpReduxWrite   // reduction update marker: Args[0] address, Size bytes, ReduxKind op
	OpPredict      // value prediction check: misspeculate if Args[0] != Args[1]
	OpMisspec      // unconditionally signal misspeculation

	// Span-level privacy marks, produced by the postprocess elision pass
	// (Postprocess.cpp's joined/promoted private ops): one mark covers
	// Args[1] elements of Size bytes starting at Args[0], consecutive
	// elements Args[2] bytes apart. A dense span has stride == Size; a
	// count <= 0 is a runtime no-op.
	OpPrivateReadSpan  // span privacy check before reads
	OpPrivateWriteSpan // span privacy check before writes

	opCount
)

// NumOps is the number of distinct opcodes (including OpInvalid), for
// sizing per-opcode tables such as the interpreter's profiler counters.
const NumOps = int(opCount)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpConst:   "const", OpFConst: "fconst", OpSIToFP: "sitofp", OpFPToSI: "fptosi",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpSDiv: "sdiv", OpUDiv: "udiv",
	OpSRem: "srem", OpURem: "urem", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpEq: "eq", OpNe: "ne", OpSLt: "slt", OpSLe: "sle", OpSGt: "sgt",
	OpSGe: "sge", OpULt: "ult", OpUGe: "uge",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFEq: "feq", OpFLt: "flt", OpFLe: "fle", OpFGt: "fgt", OpFGe: "fge",
	OpSelect: "select",
	OpLoad:   "load", OpStore: "store", OpAlloca: "alloca", OpMalloc: "malloc",
	OpFree: "free", OpGlobal: "global", OpMemSet: "memset", OpMemCopy: "memcopy",
	OpPtrToInt: "ptrtoint", OpIntToPtr: "inttoptr",
	OpCall: "call", OpBuiltin: "builtin", OpPrint: "print",
	OpRet: "ret", OpBr: "br", OpCondBr: "condbr", OpPhi: "phi",
	OpHAlloc: "h_alloc", OpHDealloc: "h_dealloc", OpCheckHeap: "check_heap",
	OpPrivateRead: "private_read", OpPrivateWrite: "private_write",
	OpReduxWrite: "redux_write", OpPredict: "predict", OpMisspec: "misspec",
	OpPrivateReadSpan: "private_read_span", OpPrivateWriteSpan: "private_write_span",
}

func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsTerminator reports whether the op must end a basic block.
func (o Op) IsTerminator() bool {
	return o == OpRet || o == OpBr || o == OpCondBr
}

// Reads reports whether the op reads program memory.
func (o Op) Reads() bool { return o == OpLoad || o == OpMemCopy }

// Writes reports whether the op writes program memory.
func (o Op) Writes() bool {
	return o == OpStore || o == OpMemSet || o == OpMemCopy
}

// ReduxKind identifies the associative, commutative operator of a reduction
// (section 3, Reduction Criterion). The identity value of the operator
// initializes the reduction heap when a parallel region is entered.
type ReduxKind uint8

const (
	// ReduxNone marks a non-reduction access.
	ReduxNone ReduxKind = iota
	// ReduxAddI64 is integer sum.
	ReduxAddI64
	// ReduxAddF64 is floating-point sum.
	ReduxAddF64
	// ReduxMinI64 is integer minimum.
	ReduxMinI64
	// ReduxMaxI64 is integer maximum.
	ReduxMaxI64
	// ReduxMinF64 is floating-point minimum.
	ReduxMinF64
	// ReduxMaxF64 is floating-point maximum.
	ReduxMaxF64
)

func (k ReduxKind) String() string {
	switch k {
	case ReduxNone:
		return "none"
	case ReduxAddI64:
		return "add.i64"
	case ReduxAddF64:
		return "add.f64"
	case ReduxMinI64:
		return "min.i64"
	case ReduxMaxI64:
		return "max.i64"
	case ReduxMinF64:
		return "min.f64"
	case ReduxMaxF64:
		return "max.f64"
	}
	return fmt.Sprintf("redux(%d)", uint8(k))
}
