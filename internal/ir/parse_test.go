package ir

import (
	"testing"
)

const sampleIR = `
module sample
global @table [64 bytes] heap=private
global @seed [8 bytes] init=2a00000000000000

func @bump(%x i64) i64 {
entry:
	%v1 = const 1
	%v2 = add %x, %v1
	ret %v2
}

func @main() i64 {
entry:
	%g = global @table
	%s = global @seed
	%init = load.8 %s
	br label head
head:
	%i = phi %zero [entry], %next [body]
	%zero = const 0
	%lim = const 8
	%c = slt %i, %lim
	condbr %c, label body, label done
body:
	%off = mul %i, %eight
	%eight = const 8
	%slot = add %g, %off
	%val = call @bump %i
	store.8 %val, %slot
	%next = add %i, %one
	%one = const 1
	br label head
done:
	%r = load.8 %g
	ret %r
}
`

// Note: sampleIR deliberately uses forward references (%zero before its
// definition, %next from the loop body) — legal SSA as long as definitions
// dominate uses at execution time is not required for parsing; the verifier
// only checks structure.

func TestParseSample(t *testing.T) {
	m, err := Parse(sampleIR)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "sample" {
		t.Errorf("module name %q", m.Name)
	}
	g := m.Globals["table"]
	if g == nil || g.Size != 64 || g.Heap != HeapPrivate {
		t.Fatalf("global table wrong: %+v", g)
	}
	if seed := m.Globals["seed"]; seed == nil || len(seed.Init) != 8 || seed.Init[0] != 0x2a {
		t.Fatalf("global seed init wrong: %+v", seed)
	}
	f := m.Funcs["main"]
	if f == nil || len(f.Blocks) != 4 {
		t.Fatalf("main blocks = %v", f)
	}
	// The phi must reference the body-defined %next.
	var phi *Instr
	f.Instrs(func(in *Instr) {
		if in.Op == OpPhi {
			phi = in
		}
	})
	if phi == nil || len(phi.Args) != 2 || phi.Args[1] == nil {
		t.Fatalf("phi not resolved: %v", phi)
	}
}

func TestParseFormatFixpoint(t *testing.T) {
	m, err := Parse(sampleIR)
	if err != nil {
		t.Fatal(err)
	}
	once := FormatModule(m)
	m2, err := Parse(once)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, once)
	}
	twice := FormatModule(m2)
	if once != twice {
		t.Errorf("format not a fixpoint:\n--- once ---\n%s\n--- twice ---\n%s", once, twice)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                    // no module
		"module x\nbogus line",                // junk
		"module x\nglobal @g [z bytes]",       // bad size
		"module x\nfunc @f() i64 {\nentry:\n", // unterminated
		"module x\nfunc @f() i64 {\nentry:\n\t%v1 = frobnicate %v0\n}\n",          // bad opcode
		"module x\nfunc @f() i64 {\nentry:\n\t%v1 = global @nope\n\tret %v1\n}\n", // unknown global
		"module x\nfunc @f() void {\nentry:\n\t%v1 = const 1\n}\n",                // no terminator
	}
	for i, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("case %d: bad input accepted:\n%s", i, src)
		}
	}
}

func TestParsePrintAndIntrinsics(t *testing.T) {
	src := `
module intr
func @main() void {
entry:
	%sz = const 32
	%p = h_alloc [short-lived] %sz
	check_heap [short-lived] %p
	private_read.8 %p
	private_write.4 %p
	redux_write.8.add.f64 %p
	%x = load.8f %p
	%y = fconst 1.5
	predict %x, %y
	print "x=%g bytes\n" %x
	h_dealloc [short-lived] %p
	ret
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var halloc, rw, pr *Instr
	m.Funcs["main"].Instrs(func(in *Instr) {
		switch in.Op {
		case OpHAlloc:
			halloc = in
		case OpReduxWrite:
			rw = in
		case OpPrint:
			pr = in
		}
	})
	if halloc == nil || halloc.Heap != HeapShortLived {
		t.Errorf("h_alloc heap wrong: %v", halloc)
	}
	if rw == nil || rw.Size != 8 || rw.Redux != ReduxAddF64 {
		t.Errorf("redux_write wrong: %+v", rw)
	}
	if pr == nil || pr.Str != "x=%g bytes\n" || len(pr.Args) != 1 {
		t.Errorf("print wrong: %+v", pr)
	}
	// Round-trip the intrinsics too.
	once := FormatModule(m)
	if _, err := Parse(once); err != nil {
		t.Fatalf("reparse: %v\n%s", err, once)
	}
}

func TestParsePreservesNegativeAndFloatConsts(t *testing.T) {
	src := `
module c
func @main() f64 {
entry:
	%a = const -42
	%b = fconst -2.5e-09
	%c = sitofp %a
	%d = fadd %b, %c
	ret %d
}
`
	m, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	once := FormatModule(m)
	m2 := MustParse(once)
	if FormatModule(m2) != once {
		t.Error("const round-trip unstable")
	}
	var neg *Instr
	m.Funcs["main"].Instrs(func(in *Instr) {
		if in.Op == OpConst {
			neg = in
		}
	})
	if int64(neg.Const) != -42 {
		t.Errorf("negative const = %d", int64(neg.Const))
	}
}

func TestParseDuplicateNamesStayDistinct(t *testing.T) {
	// Two instructions whose source-level Name collides print with
	// distinct id suffixes and parse back as distinct values.
	m := NewModule("dup")
	f := m.NewFunc("main", I64)
	b := NewBuilder(f)
	x1 := b.I(1)
	x1.Name = "x"
	x2 := b.I(2)
	x2.Name = "x"
	b.Ret(b.Add(x1, x2))
	text := FormatModule(m)
	m2, err := Parse(text)
	if err != nil {
		t.Fatalf("%v\n%s", err, text)
	}
	if FormatModule(m2) != text {
		t.Error("duplicate-name round trip unstable")
	}
}
