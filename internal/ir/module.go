package ir

import (
	"fmt"
	"sort"
)

// Value is anything an instruction can consume as an operand: a parameter or
// another instruction's result.
type Value interface {
	// ValueID returns a function-unique identifier, used for dense maps.
	ValueID() int
	// Type returns the value's IR type.
	Type() Type
	// String returns a printable SSA name such as %v12 or %argc.
	String() string
}

// Param is a formal parameter of a Function.
type Param struct {
	id   int
	name string
	typ  Type
	// Index is the zero-based parameter position.
	Index int
	// Fn is the function declaring this parameter.
	Fn *Function
}

// ValueID implements Value.
func (p *Param) ValueID() int { return p.id }

// Type implements Value.
func (p *Param) Type() Type { return p.typ }

func (p *Param) String() string { return "%" + p.name }

// Global is a module-level memory object: a named, fixed-size region
// optionally carrying initial bytes. Globals are the static allocation sites
// that the paper's pre-main initializer re-routes into logical heaps.
type Global struct {
	// Name is the unique symbol name.
	Name string
	// Size is the object size in bytes.
	Size int64
	// Init holds the initial contents; shorter than Size means
	// zero-filled tail. Nil means all zeros.
	Init []byte
	// Heap is the logical heap assigned by the privatizing transformation;
	// HeapSystem before any assignment.
	Heap HeapKind
}

// Instr is a single IR instruction. The representation is uniform (one
// struct for every opcode, discriminated by Op) so that analyses can walk
// operands generically; opcode-specific payload lives in the auxiliary
// fields below.
type Instr struct {
	id int
	// Op is the opcode.
	Op Op
	// Typ is the result type (Void for instructions producing no value).
	Typ Type
	// Args are the value operands.
	Args []Value
	// Blk is the containing basic block.
	Blk *Block

	// Const carries the literal for OpConst/OpFConst (float bit pattern).
	Const uint64
	// Size is the access width in bytes for loads, stores and privacy
	// checks, and the object size for OpAlloca.
	Size int64
	// Float marks loads/stores whose value should be interpreted as F64.
	Float bool
	// Callee is the target of OpCall.
	Callee *Function
	// Builtin is the runtime function name for OpBuiltin.
	Builtin string
	// Str is the format string of OpPrint.
	Str string
	// GlobalRef names the module global for OpGlobal.
	GlobalRef *Global
	// Targets are successor blocks of terminators.
	Targets []*Block
	// Preds aligns with Args for OpPhi: Args[i] flows in from Preds[i].
	Preds []*Block
	// Heap is the logical heap operand of h_alloc/h_dealloc/check_heap.
	Heap HeapKind
	// Redux is the reduction operator of OpReduxWrite.
	Redux ReduxKind
	// Name optionally labels the instruction (allocation-site names).
	Name string
}

// ValueID implements Value.
func (in *Instr) ValueID() int { return in.id }

// Type implements Value.
func (in *Instr) Type() Type { return in.Typ }

func (in *Instr) String() string {
	if in.Name != "" {
		return "%" + in.Name
	}
	return fmt.Sprintf("%%v%d", in.id)
}

// Block is a basic block: a straight-line instruction sequence ending in a
// terminator.
type Block struct {
	// Name labels the block in printed IR.
	Name string
	// Fn is the containing function.
	Fn *Function
	// Instrs are the block's instructions in order; the last is the
	// terminator once the block is complete.
	Instrs []*Instr
	// Index is the block's position in Fn.Blocks.
	Index int

	preds []*Block
}

// Terminator returns the block's final instruction, or nil if the block is
// still under construction.
func (b *Block) Terminator() *Instr {
	if n := len(b.Instrs); n > 0 && b.Instrs[n-1].Op.IsTerminator() {
		return b.Instrs[n-1]
	}
	return nil
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	if t := b.Terminator(); t != nil {
		return t.Targets
	}
	return nil
}

// Preds returns the block's predecessors, valid after Function.Recompute.
func (b *Block) Preds() []*Block { return b.preds }

func (b *Block) String() string { return b.Name }

// Function is an IR function: parameters, basic blocks and a return type.
type Function struct {
	// Name is the unique symbol name.
	Name string
	// Params are the formal parameters.
	Params []*Param
	// RetType is the return type (Void for none).
	RetType Type
	// Blocks lists the basic blocks; Blocks[0] is the entry.
	Blocks []*Block
	// Mod is the containing module.
	Mod *Module

	nextID int
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block { return f.Blocks[0] }

// NewBlock appends a fresh, empty block named name to the function.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{Name: name, Fn: f, Index: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	return b
}

// NewParam appends a parameter to the function signature.
func (f *Function) NewParam(name string, t Type) *Param {
	p := &Param{id: f.nextID, name: name, typ: t, Index: len(f.Params), Fn: f}
	f.nextID++
	f.Params = append(f.Params, p)
	return p
}

// newInstr allocates an instruction with a fresh ID, unattached to a block.
func (f *Function) newInstr(op Op, t Type, args ...Value) *Instr {
	in := &Instr{id: f.nextID, Op: op, Typ: t, Args: args}
	f.nextID++
	return in
}

// NumValues returns an upper bound on value IDs in the function, for dense
// side tables.
func (f *Function) NumValues() int { return f.nextID }

// EnsureIDCapacity raises the function's value-ID horizon to at least n.
// Outlining moves instructions between functions without renumbering them;
// the destination must reserve the source's ID space.
func (f *Function) EnsureIDCapacity(n int) {
	if n > f.nextID {
		f.nextID = n
	}
}

// Recompute rebuilds derived structure: block indices and predecessor lists.
// Call it after any CFG edit and before dominator or loop analysis.
func (f *Function) Recompute() {
	for i, b := range f.Blocks {
		b.Index = i
		b.preds = b.preds[:0]
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			s.preds = append(s.preds, b)
		}
	}
}

// Instrs calls visit for every instruction in the function, in block order.
func (f *Function) Instrs(visit func(*Instr)) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			visit(in)
		}
	}
}

// Module is a whole program: functions, globals, and the designated entry
// point ("main").
type Module struct {
	// Name labels the module in diagnostics.
	Name string
	// Funcs maps function names to functions.
	Funcs map[string]*Function
	// Globals maps global names to globals.
	Globals map[string]*Global
	// EntryName is the function executed first (default "main").
	EntryName string

	funcOrder   []string
	globalOrder []string
}

// NewModule returns an empty module named name with entry point "main".
func NewModule(name string) *Module {
	return &Module{
		Name:      name,
		Funcs:     map[string]*Function{},
		Globals:   map[string]*Global{},
		EntryName: "main",
	}
}

// NewFunc creates, registers and returns a function with the given name and
// return type.
func (m *Module) NewFunc(name string, ret Type) *Function {
	if _, dup := m.Funcs[name]; dup {
		panic(fmt.Sprintf("ir: duplicate function %q", name))
	}
	f := &Function{Name: name, RetType: ret, Mod: m}
	f.NewBlock("entry")
	m.Funcs[name] = f
	m.funcOrder = append(m.funcOrder, name)
	return f
}

// NewGlobal creates, registers and returns a global of size bytes.
func (m *Module) NewGlobal(name string, size int64) *Global {
	if _, dup := m.Globals[name]; dup {
		panic(fmt.Sprintf("ir: duplicate global %q", name))
	}
	g := &Global{Name: name, Size: size}
	m.Globals[name] = g
	m.globalOrder = append(m.globalOrder, name)
	return g
}

// Entry returns the module's entry function, or nil if undefined.
func (m *Module) Entry() *Function { return m.Funcs[m.EntryName] }

// FuncNames returns function names in declaration order.
func (m *Module) FuncNames() []string { return m.funcOrder }

// GlobalNames returns global names in declaration order.
func (m *Module) GlobalNames() []string { return m.globalOrder }

// SortedFuncs returns the functions sorted by name, for deterministic
// iteration in analyses and tests.
func (m *Module) SortedFuncs() []*Function {
	names := append([]string(nil), m.funcOrder...)
	sort.Strings(names)
	fs := make([]*Function, len(names))
	for i, n := range names {
		fs[i] = m.Funcs[n]
	}
	return fs
}
