package ir

import "math"

// Optimize runs a small mid-end pass pipeline over f until a fixpoint:
// constant folding, algebraic simplification, copy and phi simplification,
// and dead-code elimination. It preserves execution behaviour exactly
// (including traps: division by a non-constant zero is never folded away,
// and memory or side-effecting instructions are never removed).
//
// The pass is optional — the Privateer pipeline operates on unoptimized IR
// just as well — but front-end output (the builder's structured helpers)
// carries redundant constants and dead address arithmetic that this removes,
// like any mid-end would before profile instrumentation.
func Optimize(f *Function) {
	for changed := true; changed; {
		changed = foldConstants(f)
		if eliminateDeadCode(f) {
			changed = true
		}
	}
	f.Recompute()
}

// constValue reports whether v is an integer/float constant.
func constValue(v Value) (uint64, bool) {
	in, ok := v.(*Instr)
	if !ok || (in.Op != OpConst && in.Op != OpFConst) {
		return 0, false
	}
	return in.Const, true
}

// foldConstants replaces instructions with constant or simpler equivalents.
// Folded instructions are rewritten in place into OpConst/OpFConst, so uses
// need no rewriting; DCE later removes the newly dead operand chains.
func foldConstants(f *Function) bool {
	changed := false
	// replaceWith rewires every use of in to v (a simplification target).
	uses := map[Value][]*Instr{}
	f.Instrs(func(in *Instr) {
		for _, a := range in.Args {
			uses[a] = append(uses[a], in)
		}
	})
	replaceWith := func(in *Instr, v Value) {
		for _, user := range uses[in] {
			for i, a := range user.Args {
				if a == Value(in) {
					user.Args[i] = v
				}
			}
			uses[v] = append(uses[v], user)
		}
		changed = true
	}
	toConst := func(in *Instr, val uint64, float bool) {
		in.Op = OpConst
		if float {
			in.Op = OpFConst
		}
		in.Const = val
		in.Args = nil
		changed = true
	}

	f.Instrs(func(in *Instr) {
		if in.Op == OpConst || in.Op == OpFConst {
			return
		}
		// Phi with one distinct incoming value simplifies to that value.
		if in.Op == OpPhi {
			var only Value
			same := true
			for _, a := range in.Args {
				if a == Value(in) {
					continue // self-reference
				}
				if only == nil {
					only = a
				} else if only != a {
					same = false
				}
			}
			if same && only != nil {
				replaceWith(in, only)
			}
			return
		}

		// Gather constant operands.
		var c [3]uint64
		allConst := len(in.Args) > 0 && len(in.Args) <= 3
		for i, a := range in.Args {
			v, ok := constValue(a)
			if !ok {
				allConst = false
				break
			}
			c[i] = v
		}

		// Algebraic identities that need only one constant operand.
		switch in.Op {
		case OpAdd, OpOr, OpXor, OpSub, OpShl, OpLShr, OpAShr:
			if v, ok := constValue(in.Args[1]); ok && v == 0 {
				replaceWith(in, in.Args[0])
				return
			}
			if in.Op == OpAdd {
				if v, ok := constValue(in.Args[0]); ok && v == 0 {
					replaceWith(in, in.Args[1])
					return
				}
			}
		case OpMul:
			if v, ok := constValue(in.Args[1]); ok && v == 1 {
				replaceWith(in, in.Args[0])
				return
			}
			if v, ok := constValue(in.Args[0]); ok && v == 1 {
				replaceWith(in, in.Args[1])
				return
			}
		case OpSelect:
			if v, ok := constValue(in.Args[0]); ok {
				if v != 0 {
					replaceWith(in, in.Args[1])
				} else {
					replaceWith(in, in.Args[2])
				}
				return
			}
			if in.Args[1] == in.Args[2] {
				replaceWith(in, in.Args[1])
				return
			}
		}
		if !allConst {
			return
		}

		b2u := func(b bool) uint64 {
			if b {
				return 1
			}
			return 0
		}
		fa, fb := math.Float64frombits(c[0]), math.Float64frombits(c[1])
		switch in.Op {
		case OpAdd:
			toConst(in, c[0]+c[1], false)
		case OpSub:
			toConst(in, c[0]-c[1], false)
		case OpMul:
			toConst(in, c[0]*c[1], false)
		case OpSDiv:
			if c[1] != 0 {
				toConst(in, uint64(int64(c[0])/int64(c[1])), false)
			}
		case OpUDiv:
			if c[1] != 0 {
				toConst(in, c[0]/c[1], false)
			}
		case OpSRem:
			if c[1] != 0 {
				toConst(in, uint64(int64(c[0])%int64(c[1])), false)
			}
		case OpURem:
			if c[1] != 0 {
				toConst(in, c[0]%c[1], false)
			}
		case OpAnd:
			toConst(in, c[0]&c[1], false)
		case OpOr:
			toConst(in, c[0]|c[1], false)
		case OpXor:
			toConst(in, c[0]^c[1], false)
		case OpShl:
			toConst(in, c[0]<<(c[1]&63), false)
		case OpLShr:
			toConst(in, c[0]>>(c[1]&63), false)
		case OpAShr:
			toConst(in, uint64(int64(c[0])>>(c[1]&63)), false)
		case OpEq:
			toConst(in, b2u(c[0] == c[1]), false)
		case OpNe:
			toConst(in, b2u(c[0] != c[1]), false)
		case OpSLt:
			toConst(in, b2u(int64(c[0]) < int64(c[1])), false)
		case OpSLe:
			toConst(in, b2u(int64(c[0]) <= int64(c[1])), false)
		case OpSGt:
			toConst(in, b2u(int64(c[0]) > int64(c[1])), false)
		case OpSGe:
			toConst(in, b2u(int64(c[0]) >= int64(c[1])), false)
		case OpULt:
			toConst(in, b2u(c[0] < c[1]), false)
		case OpUGe:
			toConst(in, b2u(c[0] >= c[1]), false)
		case OpFAdd:
			toConst(in, math.Float64bits(fa+fb), true)
		case OpFSub:
			toConst(in, math.Float64bits(fa-fb), true)
		case OpFMul:
			toConst(in, math.Float64bits(fa*fb), true)
		case OpFDiv:
			toConst(in, math.Float64bits(fa/fb), true)
		case OpFEq:
			toConst(in, b2u(fa == fb), false)
		case OpFLt:
			toConst(in, b2u(fa < fb), false)
		case OpFLe:
			toConst(in, b2u(fa <= fb), false)
		case OpFGt:
			toConst(in, b2u(fa > fb), false)
		case OpFGe:
			toConst(in, b2u(fa >= fb), false)
		case OpSIToFP:
			toConst(in, math.Float64bits(float64(int64(c[0]))), true)
		case OpFPToSI:
			toConst(in, uint64(int64(fa)), false)
		case OpPtrToInt, OpIntToPtr:
			toConst(in, c[0], false)
		}
	})
	return changed
}

// sideEffectFree reports whether removing an unused in cannot change
// behaviour.
func sideEffectFree(in *Instr) bool {
	switch in.Op {
	case OpConst, OpFConst, OpSIToFP, OpFPToSI,
		OpAdd, OpSub, OpMul, OpAnd, OpOr, OpXor, OpShl, OpLShr, OpAShr,
		OpEq, OpNe, OpSLt, OpSLe, OpSGt, OpSGe, OpULt, OpUGe,
		OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpFEq, OpFLt, OpFLe, OpFGt, OpFGe,
		OpSelect, OpGlobal, OpPtrToInt, OpIntToPtr, OpLoad, OpPhi:
		return true
	case OpSDiv, OpUDiv, OpSRem, OpURem:
		// Division traps on zero divisors; only remove when the divisor
		// is a nonzero constant.
		v, ok := constValue(in.Args[1])
		return ok && v != 0
	default:
		// Stores, allocations (they are named objects), frees, calls,
		// prints, checks and terminators stay.
		return false
	}
}

// eliminateDeadCode removes unused side-effect-free instructions.
func eliminateDeadCode(f *Function) bool {
	used := map[Value]bool{}
	f.Instrs(func(in *Instr) {
		for _, a := range in.Args {
			used[a] = true
		}
	})
	changed := false
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Typ != Void && !used[in] && sideEffectFree(in) {
				changed = true
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	return changed
}

// OptimizeModule optimizes every function of m.
func OptimizeModule(m *Module) {
	for _, f := range m.SortedFuncs() {
		Optimize(f)
	}
}
