package ir

import (
	"fmt"
	"math"
	"strings"
)

// namer assigns unique printable names to the values of one function.
// Source-level names (allocation sites, promoted slots) are kept when
// unique and suffixed _2, _3, ... on collision; unnamed values print as
// %v<id>. The textual grammar (see Parse) is therefore unambiguous, and
// Parse∘FormatModule is a fixpoint.
type namer map[Value]string

func buildNamer(f *Function) namer {
	nm := namer{}
	used := map[string]int{}
	claim := func(v Value, base string) {
		used[base]++
		if n := used[base]; n > 1 {
			base = fmt.Sprintf("%s_%d", base, n)
			// The suffixed form must itself be unique.
			for used[base] > 0 {
				base += "x"
			}
			used[base]++
		}
		nm[v] = "%" + base
	}
	for _, p := range f.Params {
		claim(p, strings.TrimPrefix(p.String(), "%"))
	}
	f.Instrs(func(in *Instr) {
		if in.Typ == Void {
			return
		}
		if in.Name != "" {
			claim(in, in.Name)
		} else {
			claim(in, fmt.Sprintf("v%d", in.id))
		}
	})
	return nm
}

func (nm namer) of(v Value) string {
	if nm != nil {
		if s, ok := nm[v]; ok {
			return s
		}
	}
	return v.String()
}

// instrString renders one instruction in the textual IR syntax.
func instrString(in *Instr, nm namer) string {
	if in == nil {
		return "<nil>"
	}
	var sb strings.Builder
	if in.Typ != Void {
		fmt.Fprintf(&sb, "%s = ", nm.of(in))
	}
	sb.WriteString(in.Op.String())
	switch in.Op {
	case OpConst:
		fmt.Fprintf(&sb, " %d", int64(in.Const))
		if in.Typ == Ptr {
			sb.WriteString(" ptr")
		}
	case OpFConst:
		fmt.Fprintf(&sb, " %g", math.Float64frombits(in.Const))
	case OpLoad, OpStore, OpPrivateRead, OpPrivateWrite,
		OpPrivateReadSpan, OpPrivateWriteSpan:
		fmt.Fprintf(&sb, ".%d", in.Size)
		if in.Float {
			sb.WriteString("f")
		}
	case OpReduxWrite:
		fmt.Fprintf(&sb, ".%d.%s", in.Size, in.Redux)
	case OpAlloca:
		fmt.Fprintf(&sb, " %d", in.Size)
	case OpGlobal:
		fmt.Fprintf(&sb, " @%s", in.GlobalRef.Name)
	case OpCall:
		fmt.Fprintf(&sb, " @%s", in.Callee.Name)
	case OpBuiltin:
		fmt.Fprintf(&sb, " !%s", in.Builtin)
	case OpPrint:
		fmt.Fprintf(&sb, " %q", in.Str)
	}
	switch in.Op {
	case OpHAlloc, OpHDealloc, OpCheckHeap:
		fmt.Fprintf(&sb, " [%s]", in.Heap)
	}
	for i, a := range in.Args {
		if i == 0 {
			sb.WriteString(" ")
		} else {
			sb.WriteString(", ")
		}
		sb.WriteString(nm.of(a))
		if in.Op == OpPhi && i < len(in.Preds) {
			fmt.Fprintf(&sb, " [%s]", in.Preds[i].Name)
		}
	}
	for i, t := range in.Targets {
		if i == 0 && len(in.Args) == 0 {
			sb.WriteString(" ")
		} else {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "label %s", t.Name)
	}
	return sb.String()
}

// Format renders the instruction for diagnostics, using raw value names.
func (in *Instr) Format() string { return instrString(in, nil) }

// FormatFunc renders a whole function as text.
func FormatFunc(f *Function) string {
	nm := buildNamer(f)
	var sb strings.Builder
	fmt.Fprintf(&sb, "func @%s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %s", nm.of(p), p.Type())
	}
	fmt.Fprintf(&sb, ") %s {\n", f.RetType)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			fmt.Fprintf(&sb, "\t%s\n", instrString(in, nm))
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

// FormatModule renders the whole module as text, globals first. The output
// round-trips through Parse.
func FormatModule(m *Module) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "module %s", m.Name)
	if m.EntryName != "main" {
		fmt.Fprintf(&sb, " entry=%s", m.EntryName)
	}
	sb.WriteString("\n")
	for _, name := range m.GlobalNames() {
		g := m.Globals[name]
		fmt.Fprintf(&sb, "global @%s [%d bytes]", g.Name, g.Size)
		if g.Heap != HeapSystem {
			fmt.Fprintf(&sb, " heap=%s", g.Heap)
		}
		if len(g.Init) > 0 {
			fmt.Fprintf(&sb, " init=%x", g.Init)
		}
		sb.WriteString("\n")
	}
	for _, name := range m.FuncNames() {
		sb.WriteString("\n")
		sb.WriteString(FormatFunc(m.Funcs[name]))
	}
	return sb.String()
}
