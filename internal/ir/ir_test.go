package ir

import (
	"strings"
	"testing"
)

func TestHeapTagLayout(t *testing.T) {
	// Private (001) and shadow (101) must differ in exactly one bit.
	diff := HeapPrivate.Tag() ^ HeapShadow.Tag()
	if diff == 0 || diff&(diff-1) != 0 {
		t.Fatalf("private/shadow tags differ in %b bits, want one bit", diff)
	}
	if ShadowAddr(HeapPrivate.Base()) != HeapShadow.Base() {
		t.Fatalf("ShadowAddr(private base) = %#x, want shadow base %#x",
			ShadowAddr(HeapPrivate.Base()), HeapShadow.Base())
	}
	// Tags must be unique across heaps.
	seen := map[uint64]HeapKind{}
	for h := HeapKind(0); h < NumHeaps; h++ {
		if prev, dup := seen[h.Tag()]; dup {
			t.Fatalf("heaps %s and %s share tag %d", prev, h, h.Tag())
		}
		seen[h.Tag()] = h
	}
}

func TestHeapOfRoundTrip(t *testing.T) {
	for h := HeapKind(0); h < NumHeaps; h++ {
		addr := h.Base() + 12345
		if got := HeapOf(addr); got != h {
			t.Errorf("HeapOf(%s base + offset) = %s", h, got)
		}
		if got := TagOf(addr); got != h.Tag() {
			t.Errorf("TagOf(%s) = %d, want %d", h, got, h.Tag())
		}
	}
}

func TestBuilderProducesVerifiableModule(t *testing.T) {
	m := NewModule("test")
	g := m.NewGlobal("counter", 8)
	f := m.NewFunc("main", I64)
	b := NewBuilder(f)
	addr := b.Global(g)
	b.Store(b.I(5), addr, 8)
	v := b.Load(addr, 8)
	b.Ret(b.Add(v, b.I(2)))
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	b.I(1) // no terminator
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted block without terminator")
	}
}

func TestVerifyCatchesInteriorTerminator(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	b.Ret()
	b.I(1)
	b.Ret()
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted terminator in block interior")
	}
}

func TestVerifyCatchesCallArityMismatch(t *testing.T) {
	m := NewModule("bad")
	callee := m.NewFunc("callee", Void)
	callee.NewParam("x", I64)
	NewBuilder(callee).Ret()
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	b.Call(callee) // missing argument
	b.Ret()
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted arity mismatch")
	}
}

func TestVerifyCatchesVoidReturnWithValue(t *testing.T) {
	m := NewModule("bad")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	b.Ret(b.I(1))
	if err := Verify(m); err == nil {
		t.Fatal("Verify accepted value return from void function")
	}
}

// buildDiamond builds entry -> {left,right} -> join and returns the blocks.
func buildDiamond(t *testing.T) (*Function, *Block, *Block, *Block, *Block) {
	t.Helper()
	m := NewModule("diamond")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	left := b.NewBlock("left")
	right := b.NewBlock("right")
	join := b.NewBlock("join")
	cond := b.I(1)
	b.CondBr(cond, left, right)
	b.SetBlock(left)
	b.Br(join)
	b.SetBlock(right)
	b.Br(join)
	b.SetBlock(join)
	b.Ret()
	f.Recompute()
	return f, f.Entry(), left, right, join
}

func TestDomTreeDiamond(t *testing.T) {
	f, entry, left, right, join := buildDiamond(t)
	dt := BuildDomTree(f)
	if dt.IDom(entry) != nil {
		t.Errorf("entry idom = %v, want nil", dt.IDom(entry))
	}
	for _, b := range []*Block{left, right, join} {
		if dt.IDom(b) != entry {
			t.Errorf("idom(%s) = %v, want entry", b.Name, dt.IDom(b))
		}
	}
	if !dt.Dominates(entry, join) {
		t.Error("entry should dominate join")
	}
	if dt.Dominates(left, join) {
		t.Error("left must not dominate join")
	}
	if !dt.Dominates(join, join) {
		t.Error("dominance must be reflexive")
	}
}

func TestDominanceFrontierDiamond(t *testing.T) {
	f, _, left, right, join := buildDiamond(t)
	dt := BuildDomTree(f)
	df := dt.DominanceFrontiers()
	for _, b := range []*Block{left, right} {
		if len(df[b.Index]) != 1 || df[b.Index][0] != join {
			t.Errorf("DF(%s) = %v, want [join]", b.Name, df[b.Index])
		}
	}
	if len(df[join.Index]) != 0 {
		t.Errorf("DF(join) = %v, want empty", df[join.Index])
	}
}

// buildCountedLoop emits `for (i=0; i<n; i++) body` with the builder DSL and
// promotes allocas, returning the function.
func buildCountedLoop(t *testing.T, n int64) *Function {
	t.Helper()
	m := NewModule("loop")
	g := m.NewGlobal("sum", 8)
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	b.For("i", b.I(0), b.I(n), func(iv *Instr) {
		addr := b.Global(g)
		b.Store(b.Add(b.Load(addr, 8), b.Ld(iv)), addr, 8)
	})
	b.Ret()
	if err := Verify(m); err != nil {
		t.Fatalf("pre-mem2reg Verify: %v", err)
	}
	PromoteAllocas(f)
	if err := Verify(m); err != nil {
		t.Fatalf("post-mem2reg Verify: %v", err)
	}
	return f
}

func TestMem2RegRemovesScalarAllocas(t *testing.T) {
	f := buildCountedLoop(t, 10)
	f.Instrs(func(in *Instr) {
		if in.Op == OpAlloca {
			t.Errorf("alloca %s survived mem2reg", in.Name)
		}
	})
	// The loop counter must now be a phi in some block.
	phis := 0
	f.Instrs(func(in *Instr) {
		if in.Op == OpPhi {
			phis++
		}
	})
	if phis == 0 {
		t.Fatal("no phi created by mem2reg")
	}
}

func TestMem2RegKeepsEscapingAllocas(t *testing.T) {
	m := NewModule("escape")
	callee := m.NewFunc("use", Void)
	callee.NewParam("p", Ptr)
	NewBuilder(callee).Ret()
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	arr := b.Alloca("arr", 64) // array: not promotable (size != 8)
	esc := b.Local("esc")
	b.St(b.I(1), esc)
	b.Call(callee, esc) // address escapes
	b.Store(b.I(2), arr, 8)
	b.Ret()
	PromoteAllocas(f)
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	var kept []string
	f.Instrs(func(in *Instr) {
		if in.Op == OpAlloca {
			kept = append(kept, in.Name)
		}
	})
	if len(kept) != 2 {
		t.Fatalf("kept allocas %v, want [arr esc] in some order", kept)
	}
}

func TestFindLoopsAndInductionVar(t *testing.T) {
	f := buildCountedLoop(t, 100)
	f.Recompute()
	dt := BuildDomTree(f)
	loops := FindLoops(f, dt)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Depth != 1 || l.Parent != nil {
		t.Errorf("loop depth=%d parent=%v, want depth 1 no parent", l.Depth, l.Parent)
	}
	iv := FindInductionVar(l)
	if iv == nil {
		t.Fatal("canonical induction variable not recognized")
	}
	if iv.Phi.Op != OpPhi {
		t.Errorf("IV is %s, want phi", iv.Phi.Op)
	}
	lim, isInstr := iv.Limit.(*Instr)
	if !isInstr || lim.Op != OpConst || lim.Const != 100 {
		t.Errorf("limit = %v, want const 100", iv.Limit)
	}
	init, isInstr := iv.Init.(*Instr)
	if !isInstr || init.Op != OpConst || init.Const != 0 {
		t.Errorf("init = %v, want const 0", iv.Init)
	}
}

func TestFindLoopsNested(t *testing.T) {
	m := NewModule("nest")
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	g := m.NewGlobal("acc", 8)
	b.For("i", b.I(0), b.I(4), func(_ *Instr) {
		b.For("j", b.I(0), b.I(4), func(_ *Instr) {
			addr := b.Global(g)
			b.Store(b.Add(b.Load(addr, 8), b.I(1)), addr, 8)
		})
	})
	b.Ret()
	PromoteAllocas(f)
	f.Recompute()
	dt := BuildDomTree(f)
	loops := FindLoops(f, dt)
	if len(loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(loops))
	}
	var outer, inner *Loop
	for _, l := range loops {
		if l.Parent == nil {
			outer = l
		} else {
			inner = l
		}
	}
	if outer == nil || inner == nil {
		t.Fatal("nesting not resolved")
	}
	if inner.Parent != outer || inner.Depth != 2 {
		t.Errorf("inner parent/depth wrong: %v / %d", inner.Parent, inner.Depth)
	}
	if !outer.Contains(inner.Header) {
		t.Error("outer loop must contain inner header")
	}
	if len(outer.Children) != 1 || outer.Children[0] != inner {
		t.Errorf("outer children = %v", outer.Children)
	}
}

func TestWhileAndIfLowering(t *testing.T) {
	m := NewModule("ctl")
	g := m.NewGlobal("out", 8)
	f := m.NewFunc("main", Void)
	b := NewBuilder(f)
	n := b.Local("n")
	b.St(b.I(10), n)
	b.While(func() Value { return b.SGt(b.Ld(n), b.I(0)) }, func() {
		b.If(b.Eq(b.SRem(b.Ld(n), b.I(2)), b.I(0)), func() {
			addr := b.Global(g)
			b.Store(b.Add(b.Load(addr, 8), b.Ld(n)), addr, 8)
		}, nil)
		b.St(b.Sub(b.Ld(n), b.I(1)), n)
	})
	b.Ret()
	if err := Verify(m); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	PromoteAllocas(f)
	if err := Verify(m); err != nil {
		t.Fatalf("post-mem2reg Verify: %v", err)
	}
	f.Recompute()
	dt := BuildDomTree(f)
	if n := len(FindLoops(f, dt)); n != 1 {
		t.Fatalf("found %d loops, want 1", n)
	}
}

func TestFormatModule(t *testing.T) {
	f := buildCountedLoop(t, 3)
	text := FormatModule(f.Mod)
	for _, want := range []string{"module loop", "global @sum", "func @main", "phi", "condbr"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted module missing %q:\n%s", want, text)
		}
	}
}

func TestOpStringAndTerminators(t *testing.T) {
	if OpAdd.String() != "add" || OpCheckHeap.String() != "check_heap" {
		t.Error("op names wrong")
	}
	for _, o := range []Op{OpRet, OpBr, OpCondBr} {
		if !o.IsTerminator() {
			t.Errorf("%s should be a terminator", o)
		}
	}
	if OpAdd.IsTerminator() {
		t.Error("add is not a terminator")
	}
	if !OpLoad.Reads() || !OpStore.Writes() || !OpMemCopy.Reads() || !OpMemCopy.Writes() {
		t.Error("read/write classification wrong")
	}
}
