package vm

import (
	"sync"
	"testing"

	"privateer/internal/ir"
)

// TestConcurrentCloneIsolation pins the lazy-clone invariant the pipelined
// committer depends on (see the package comment): a parent address space
// and clones taken from it may be written concurrently, each by its own
// owner goroutine, without data races — shared page-table maps are never
// mutated, so every write materializes private structure first. Run under
// -race this is the concurrent-install safety proof; the value checks
// assert full isolation in both directions.
func TestConcurrentCloneIsolation(t *testing.T) {
	const (
		workers = 4
		pages   = 64
		rounds  = 50
	)
	base := ir.HeapPrivate.Base()
	parent := NewAddressSpace()
	for p := uint64(0); p < pages; p++ {
		if err := parent.Write(base+p*PageSize, 8, p); err != nil {
			t.Fatal(err)
		}
	}
	children := make([]*AddressSpace, workers)
	for w := range children {
		children[w] = parent.Clone()
	}

	var wg sync.WaitGroup
	// The "committer": installs into the parent while children execute.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			for p := uint64(0); p < pages; p++ {
				if err := parent.Write(base+p*PageSize, 8, 1_000_000+uint64(r)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	// The "workers": each writes its own pattern into its own clone.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := uint64(10_000 * (w + 1))
			for r := 0; r < rounds; r++ {
				for p := uint64(0); p < pages; p++ {
					addr := base + p*PageSize
					if err := children[w].Write(addr, 8, mine+uint64(r)); err != nil {
						t.Error(err)
						return
					}
					v, err := children[w].Read(addr, 8)
					if err != nil {
						t.Error(err)
						return
					}
					if v != mine+uint64(r) {
						t.Errorf("worker %d saw %d at page %d, want %d (isolation broken)",
							w, v, p, mine+uint64(r))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Parent sees only its own final installs.
	for p := uint64(0); p < pages; p++ {
		v, err := parent.Read(base+p*PageSize, 8)
		if err != nil {
			t.Fatal(err)
		}
		if v != 1_000_000+uint64(rounds-1) {
			t.Errorf("parent page %d holds %d, want %d", p, v, 1_000_000+uint64(rounds-1))
		}
	}
}
