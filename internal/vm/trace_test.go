package vm

import (
	"testing"

	"privateer/internal/ir"
	"privateer/internal/obs"
)

// TestPageLayerTraceEvents: the vm layer must report COW duplications, TLB
// flushes (with their cause) and protection faults through the tracer, and
// clones must inherit it.
func TestPageLayerTraceEvents(t *testing.T) {
	col := obs.NewCollector(0)
	as := NewAddressSpace()
	as.Trace = obs.NewTracer(col)

	base := ir.HeapSystem.Base() + PageSize
	if err := as.Write(base, 8, 42); err != nil {
		t.Fatal(err)
	}

	c := as.Clone() // emits tlb-flush("clone"); child inherits the tracer
	c.TraceWorker = 3
	if err := c.Write(base, 8, 7); err != nil { // COW duplication in the child
		t.Fatal(err)
	}

	as.SetProt(ir.HeapReadOnly, ProtRead) // tlb-flush("setprot")
	roAddr := ir.HeapReadOnly.Base() + PageSize
	if err := as.Write(roAddr, 8, 1); err == nil { // protection fault
		t.Fatal("write to read-only heap succeeded")
	}

	events := col.Events()
	counts := obs.CountByKind(events)
	if counts[obs.KCOWCopy] == 0 {
		t.Error("no cow-copy event for the child's COW write")
	}
	if counts[obs.KTLBFlush] < 2 {
		t.Errorf("tlb-flush events %d, want >= 2 (clone + setprot)", counts[obs.KTLBFlush])
	}
	if counts[obs.KProtFault] != 1 {
		t.Errorf("prot-fault events %d, want 1", counts[obs.KProtFault])
	}
	var sawClone, sawSetProt bool
	for _, ev := range events {
		switch ev.Kind {
		case obs.KTLBFlush:
			sawClone = sawClone || ev.Cause == "clone"
			sawSetProt = sawSetProt || ev.Cause == "setprot"
		case obs.KCOWCopy:
			if ev.Worker != 3 {
				t.Errorf("cow-copy attributed to worker %d, want 3", ev.Worker)
			}
			if ev.A != int64(base&^uint64(PageSize-1)) {
				t.Errorf("cow-copy page base %#x, want %#x", ev.A, base&^uint64(PageSize-1))
			}
		case obs.KProtFault:
			if ev.A != int64(roAddr) {
				t.Errorf("prot-fault addr %#x, want %#x", ev.A, roAddr)
			}
		}
	}
	if !sawClone || !sawSetProt {
		t.Errorf("tlb-flush causes missing: clone=%v setprot=%v", sawClone, sawSetProt)
	}

	// An untraced space must stay silent and cost only nil checks.
	before := col.Total()
	quiet := NewAddressSpace()
	if err := quiet.Write(base, 8, 1); err != nil {
		t.Fatal(err)
	}
	quiet.SetProt(ir.HeapReadOnly, ProtRead)
	if col.Total() != before {
		t.Error("untraced address space emitted events")
	}
}
