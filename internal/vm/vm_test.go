package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"privateer/internal/ir"
)

func TestReadWriteRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	addr := ir.HeapSystem.Base() + 2*PageSize + 17
	for _, size := range []int64{1, 2, 4, 8} {
		val := uint64(0x1122334455667788) & sizeMask(size)
		if err := as.Write(addr, size, val); err != nil {
			t.Fatalf("Write size %d: %v", size, err)
		}
		got, err := as.Read(addr, size)
		if err != nil {
			t.Fatalf("Read size %d: %v", size, err)
		}
		if got != val {
			t.Errorf("size %d: got %#x want %#x", size, got, val)
		}
	}
}

func TestReadWriteCrossPage(t *testing.T) {
	as := NewAddressSpace()
	addr := ir.HeapSystem.Base() + 3*PageSize - 3 // straddles a page boundary
	want := uint64(0xdeadbeefcafebabe)
	if err := as.Write(addr, 8, want); err != nil {
		t.Fatal(err)
	}
	got, err := as.Read(addr, 8)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("cross-page read = %#x, want %#x", got, want)
	}
}

func TestFloatRoundTrip(t *testing.T) {
	as := NewAddressSpace()
	addr := ir.HeapPrivate.Base() + PageSize
	if err := as.WriteF64(addr, 3.25); err != nil {
		t.Fatal(err)
	}
	got, err := as.ReadF64(addr)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3.25 {
		t.Errorf("got %v want 3.25", got)
	}
}

func TestNullPageFaults(t *testing.T) {
	as := NewAddressSpace()
	if _, err := as.Read(0, 8); err == nil {
		t.Error("null load should fault")
	}
	if err := as.Write(8, 8, 1); err == nil {
		t.Error("near-null store should fault")
	}
}

func TestProtectionEnforced(t *testing.T) {
	as := NewAddressSpace()
	addr, err := as.Alloc(ir.HeapReadOnly, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := as.Write(addr, 8, 42); err != nil {
		t.Fatalf("write before protection: %v", err)
	}
	as.SetProt(ir.HeapReadOnly, ProtRead)
	if err := as.Write(addr, 8, 43); err == nil {
		t.Error("store to read-only heap should fault")
	}
	if v, err := as.Read(addr, 8); err != nil || v != 42 {
		t.Errorf("read after protect = %d, %v; want 42, nil", v, err)
	}
	as.SetProt(ir.HeapReadOnly, ProtNone)
	if _, err := as.Read(addr, 8); err == nil {
		t.Error("load from PROT_NONE heap should fault")
	}
}

func TestAllocTagInvariant(t *testing.T) {
	as := NewAddressSpace()
	heaps := []ir.HeapKind{ir.HeapPrivate, ir.HeapRedux, ir.HeapShortLived,
		ir.HeapReadOnly, ir.HeapUnrestricted, ir.HeapShadow}
	for _, h := range heaps {
		for i := 0; i < 100; i++ {
			addr, err := as.Alloc(h, uint64(1+i*37))
			if err != nil {
				t.Fatal(err)
			}
			if ir.HeapOf(addr) != h {
				t.Fatalf("Alloc(%s) returned address in %s heap", h, ir.HeapOf(addr))
			}
			if ir.TagOf(addr) != h.Tag() {
				t.Fatalf("Alloc(%s) tag = %d, want %d", h, ir.TagOf(addr), h.Tag())
			}
		}
	}
}

// Property: every allocation from every heap carries the heap's tag, and
// distinct live objects never overlap.
func TestAllocProperties(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) > 200 {
			sizes = sizes[:200]
		}
		as := NewAddressSpace()
		type obj struct{ base, size uint64 }
		var live []obj
		for i, s := range sizes {
			h := ir.HeapKind(1 + i%5) // skip HeapSystem
			addr, err := as.Alloc(h, uint64(s))
			if err != nil {
				return false
			}
			if ir.HeapOf(addr) != h {
				return false
			}
			size := uint64(s)
			if size == 0 {
				size = 1
			}
			for _, o := range live {
				if addr < o.base+o.size && o.base < addr+size {
					return false // overlap
				}
			}
			live = append(live, obj{addr, size})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFreeAndReuse(t *testing.T) {
	as := NewAddressSpace()
	a, _ := as.Alloc(ir.HeapShortLived, 100)
	if as.LiveObjects(ir.HeapShortLived) != 1 {
		t.Fatalf("live = %d, want 1", as.LiveObjects(ir.HeapShortLived))
	}
	if err := as.Free(a); err != nil {
		t.Fatal(err)
	}
	if as.LiveObjects(ir.HeapShortLived) != 0 {
		t.Fatalf("live after free = %d, want 0", as.LiveObjects(ir.HeapShortLived))
	}
	b, _ := as.Alloc(ir.HeapShortLived, 100)
	if a != b {
		t.Errorf("free list not reused: %#x then %#x", a, b)
	}
	if err := as.Free(b); err != nil {
		t.Fatal(err)
	}
	if err := as.Free(b); err == nil {
		t.Error("double free should error")
	}
}

func TestCloneIsolation(t *testing.T) {
	parent := NewAddressSpace()
	addr, _ := parent.Alloc(ir.HeapPrivate, 8)
	if err := parent.Write(addr, 8, 111); err != nil {
		t.Fatal(err)
	}
	child := parent.Clone()

	// Child initially sees parent's value.
	if v, _ := child.Read(addr, 8); v != 111 {
		t.Fatalf("child initial read = %d, want 111", v)
	}
	// Child writes are invisible to parent.
	if err := child.Write(addr, 8, 222); err != nil {
		t.Fatal(err)
	}
	if v, _ := parent.Read(addr, 8); v != 111 {
		t.Errorf("parent sees child write: %d", v)
	}
	// Parent writes after clone are invisible to child.
	if err := parent.Write(addr, 8, 333); err != nil {
		t.Fatal(err)
	}
	if v, _ := child.Read(addr, 8); v != 222 {
		t.Errorf("child sees parent write: %d", v)
	}
	if child.Stats.PagesCopied == 0 {
		t.Error("expected at least one COW page copy in child")
	}
}

// Property: a clone agrees with its parent on all addresses written before
// the clone, and diverges only where one of them writes afterwards.
func TestCloneCOWProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		parent := NewAddressSpace()
		base, _ := parent.Alloc(ir.HeapPrivate, 4*PageSize)
		before := map[uint64]uint64{}
		for i := 0; i < 50; i++ {
			a := base + uint64(rng.Intn(4*PageSize-8))
			v := rng.Uint64()
			if parent.Write(a, 8, v) != nil {
				return false
			}
			before[a] = v
		}
		child := parent.Clone()
		// Disjoint writes after the clone.
		childWrites := map[uint64]uint64{}
		for i := 0; i < 25; i++ {
			a := base + uint64(rng.Intn(4*PageSize-8))
			v := rng.Uint64()
			if child.Write(a, 8, v) != nil {
				return false
			}
			childWrites[a] = v
		}
		// Parent must be unchanged at all pre-clone addresses not
		// overwritten by itself.
		for a, v := range before {
			got, err := parent.Read(a, 8)
			if err != nil || got != v {
				// a later pre-clone write may overlap; recompute by replay
				// is overkill: only exact-address map is tracked, and
				// overlapping 8-byte writes at different addresses can
				// legitimately clobber. Accept only exact matches when no
				// overlap occurred.
				overlap := false
				for b := range before {
					if b != a && b < a+8 && a < b+8 {
						overlap = true
					}
				}
				if !overlap {
					return false
				}
			}
		}
		// Child sees its own writes.
		for a, v := range childWrites {
			got, err := child.Read(a, 8)
			if err != nil {
				return false
			}
			overlap := false
			for b := range childWrites {
				if b != a && b < a+8 && a < b+8 {
					overlap = true
				}
			}
			if !overlap && got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCloneSharesUntouchedPages(t *testing.T) {
	parent := NewAddressSpace()
	base, _ := parent.Alloc(ir.HeapReadOnly, 64*PageSize)
	for p := uint64(0); p < 64; p++ {
		if err := parent.Write(base+p*PageSize, 8, p); err != nil {
			t.Fatal(err)
		}
	}
	child := parent.Clone()
	// Reading must not copy pages.
	for p := uint64(0); p < 64; p++ {
		if v, _ := child.Read(base+p*PageSize, 8); v != p {
			t.Fatalf("page %d content wrong: %d", p, v)
		}
	}
	if child.Stats.PagesCopied != 0 {
		t.Errorf("reads caused %d page copies, want 0", child.Stats.PagesCopied)
	}
	if err := child.Write(base, 8, 999); err != nil {
		t.Fatal(err)
	}
	if child.Stats.PagesCopied != 1 {
		t.Errorf("one write caused %d page copies, want 1", child.Stats.PagesCopied)
	}
}

func TestResetHeap(t *testing.T) {
	as := NewAddressSpace()
	a, _ := as.Alloc(ir.HeapShortLived, 64)
	if err := as.Write(a, 8, 7); err != nil {
		t.Fatal(err)
	}
	as.ResetHeap(ir.HeapShortLived)
	if as.LiveObjects(ir.HeapShortLived) != 0 {
		t.Error("reset heap should have no live objects")
	}
	b, _ := as.Alloc(ir.HeapShortLived, 64)
	if b != a {
		t.Errorf("reset heap should restart at the same base: %#x vs %#x", b, a)
	}
	if v, _ := as.Read(b, 8); v != 0 {
		t.Errorf("reset heap must be zero-filled, got %d", v)
	}
}

func TestCopyHeapFrom(t *testing.T) {
	src := NewAddressSpace()
	a, _ := src.Alloc(ir.HeapPrivate, 16)
	if err := src.Write(a, 8, 42); err != nil {
		t.Fatal(err)
	}
	dst := NewAddressSpace()
	// Make dst diverge first.
	b, _ := dst.Alloc(ir.HeapPrivate, 16)
	if err := dst.Write(b, 8, 1); err != nil {
		t.Fatal(err)
	}
	dst.CopyHeapFrom(src, ir.HeapPrivate)
	if v, _ := dst.Read(a, 8); v != 42 {
		t.Errorf("after CopyHeapFrom, read = %d, want 42", v)
	}
	// Allocator state must match src: next alloc must not collide.
	c, err := dst.Alloc(ir.HeapPrivate, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("allocator state not copied: returned a live object's address")
	}
	// COW: writing in dst must not disturb src.
	if err := dst.Write(a, 8, 77); err != nil {
		t.Fatal(err)
	}
	if v, _ := src.Read(a, 8); v != 42 {
		t.Errorf("src disturbed by dst write: %d", v)
	}
}

func TestHeapPagesVisitsOnlyHeap(t *testing.T) {
	as := NewAddressSpace()
	p1, _ := as.Alloc(ir.HeapPrivate, 8)
	r1, _ := as.Alloc(ir.HeapRedux, 8)
	if err := as.Write(p1, 8, 1); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(r1, 8, 2); err != nil {
		t.Fatal(err)
	}
	count := 0
	as.HeapPages(ir.HeapPrivate, func(base uint64, data []byte) {
		count++
		if ir.HeapOf(base) != ir.HeapPrivate {
			t.Errorf("visited page %#x outside private heap", base)
		}
	})
	if count == 0 {
		t.Error("no private pages visited")
	}
}

func TestShadowAddressPairing(t *testing.T) {
	as := NewAddressSpace()
	p, _ := as.Alloc(ir.HeapPrivate, 128)
	s := ir.ShadowAddr(p)
	if ir.HeapOf(s) != ir.HeapShadow {
		t.Fatalf("shadow of private address lands in %s", ir.HeapOf(s))
	}
	// Writing metadata at the shadow address must not disturb the private
	// byte, and vice versa.
	if err := as.Write(p, 1, 0xAA); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(s, 1, 0x02); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Read(p, 1); v != 0xAA {
		t.Errorf("private byte disturbed: %#x", v)
	}
	if v, _ := as.Read(s, 1); v != 0x02 {
		t.Errorf("shadow byte wrong: %#x", v)
	}
}

func TestHeapExhaustionDetected(t *testing.T) {
	as := NewAddressSpace()
	// Artificially push the bump pointer near the end of the heap.
	hs := as.heaps[ir.HeapPrivate]
	hs.brk = ir.HeapPrivate.Base() + (uint64(1) << ir.TagShift) - PageSize
	if _, err := as.Alloc(ir.HeapPrivate, 2*PageSize); err == nil {
		t.Error("allocation past heap end should fail")
	}
}
