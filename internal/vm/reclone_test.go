package vm

import (
	"bytes"
	"testing"

	"privateer/internal/ir"
)

// buildParent allocates a few objects across two heaps and scribbles
// recognizable data into them, returning the space and the addresses.
func buildParent(t *testing.T) (*AddressSpace, []uint64) {
	t.Helper()
	as := NewAddressSpace()
	var addrs []uint64
	for i := 0; i < 8; i++ {
		h := ir.HeapUnrestricted
		if i%2 == 1 {
			h = ir.HeapPrivate
		}
		a, err := as.Alloc(h, 256)
		if err != nil {
			t.Fatalf("alloc: %v", err)
		}
		buf := make([]byte, 256)
		for j := range buf {
			buf[j] = byte(i*31 + j)
		}
		if err := as.WriteBytes(a, buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		addrs = append(addrs, a)
	}
	return as, addrs
}

// readAll snapshots the contents of every object.
func readAll(t *testing.T, as *AddressSpace, addrs []uint64) [][]byte {
	t.Helper()
	var out [][]byte
	for _, a := range addrs {
		buf := make([]byte, 256)
		if err := as.ReadBytes(a, buf); err != nil {
			t.Fatalf("read %#x: %v", a, err)
		}
		out = append(out, buf)
	}
	return out
}

// TestRecloneEquivalentToCloneSharingStats drives one space through a
// dirty-then-pooled-then-recloned cycle and checks it is indistinguishable
// from a fresh CloneSharingStats clone: same reads, same isolation, same
// shared Stats structure.
func TestRecloneEquivalentToCloneSharingStats(t *testing.T) {
	parent, addrs := buildParent(t)

	// A pooled space with history: clone an unrelated parent, mutate it
	// heavily, then release it back to "the pool".
	other, oaddrs := buildParent(t)
	pooled := other.CloneSharingStats()
	for _, a := range oaddrs {
		if err := pooled.WriteBytes(a, make([]byte, 256)); err != nil {
			t.Fatalf("dirty pooled: %v", err)
		}
	}
	if _, err := pooled.Alloc(ir.HeapUnrestricted, 4096); err != nil {
		t.Fatalf("dirty alloc: %v", err)
	}
	pooled.Release()

	// Re-target the pooled space at the real parent and compare against a
	// conventional clone.
	pooled.RecloneFrom(parent)
	fresh := parent.CloneSharingStats()

	want := readAll(t, parent, addrs)
	for i, got := range readAll(t, pooled, addrs) {
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("recloned space disagrees with parent at object %d", i)
		}
	}
	if pooled.Stats != parent.Stats {
		t.Fatalf("recloned space does not share the parent's Stats")
	}
	if fresh.Stats != parent.Stats {
		t.Fatalf("fresh clone does not share the parent's Stats")
	}

	// Allocator state must match a fresh clone: same brk, same live counts.
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		if pooled.Brk(h) != fresh.Brk(h) {
			t.Fatalf("heap %v brk: reclone %#x, fresh clone %#x", h, pooled.Brk(h), fresh.Brk(h))
		}
		if pooled.LiveObjects(h) != fresh.LiveObjects(h) {
			t.Fatalf("heap %v live objects: reclone %d, fresh clone %d",
				h, pooled.LiveObjects(h), fresh.LiveObjects(h))
		}
	}

	// COW isolation both ways: writes in the recloned space must not reach
	// the parent, and parent writes after the clone point must not reach it.
	if err := pooled.WriteBytes(addrs[0], bytes.Repeat([]byte{0xAA}, 256)); err != nil {
		t.Fatalf("write in reclone: %v", err)
	}
	buf := make([]byte, 256)
	if err := parent.ReadBytes(addrs[0], buf); err != nil {
		t.Fatalf("parent read: %v", err)
	}
	if !bytes.Equal(buf, want[0]) {
		t.Fatalf("write in recloned space leaked into the parent")
	}
	if err := parent.WriteBytes(addrs[1], bytes.Repeat([]byte{0xBB}, 256)); err != nil {
		t.Fatalf("parent write: %v", err)
	}
	if err := pooled.ReadBytes(addrs[1], buf); err != nil {
		t.Fatalf("reclone read: %v", err)
	}
	if !bytes.Equal(buf, want[1]) {
		t.Fatalf("parent write after reclone leaked into the recloned space")
	}

	// Allocations in the recloned space must not collide with the parent's.
	a1, err := pooled.Alloc(ir.HeapUnrestricted, 64)
	if err != nil {
		t.Fatalf("reclone alloc: %v", err)
	}
	a2, err := fresh.Alloc(ir.HeapUnrestricted, 64)
	if err != nil {
		t.Fatalf("fresh alloc: %v", err)
	}
	if a1 != a2 {
		t.Fatalf("reclone allocates %#x where a fresh clone allocates %#x", a1, a2)
	}
}

// TestRecloneEagerBaseline checks the flat-eager compatibility path.
func TestRecloneEagerBaseline(t *testing.T) {
	parent, addrs := buildParent(t)
	parent.EagerClone = true
	pooled := NewAddressSpace()
	pooled.Release()
	pooled.RecloneFrom(parent)
	if !pooled.EagerClone {
		t.Fatalf("recloned space did not inherit EagerClone")
	}
	want := readAll(t, parent, addrs)
	for i, got := range readAll(t, pooled, addrs) {
		if !bytes.Equal(got, want[i]) {
			t.Fatalf("eager reclone disagrees with parent at object %d", i)
		}
	}
}

// TestReleaseDropsState checks that a released space holds no pages or
// allocator entries from its previous life, so a pool does not pin dead
// invocations' memory.
func TestReleaseDropsState(t *testing.T) {
	parent, addrs := buildParent(t)
	w := parent.CloneSharingStats()
	w.Release()
	if w.Stats == parent.Stats {
		t.Fatalf("released space still shares the parent's Stats")
	}
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		if n := w.LiveObjects(h); n != 0 {
			t.Fatalf("released space reports %d live objects on heap %v", n, h)
		}
	}
	pages := 0
	w.DirtyPages(func(base uint64, data []byte) { pages++ })
	if pages != 0 {
		t.Fatalf("released space still holds %d dirty pages", pages)
	}
	// Reads demand-map zero pages, so the old contents being unreachable
	// shows up as zeros, not a fault.
	buf := make([]byte, 8)
	if err := w.ReadBytes(addrs[0], buf); err != nil {
		t.Fatalf("read in released space: %v", err)
	}
	if !bytes.Equal(buf, make([]byte, 8)) {
		t.Fatalf("released space still maps the old parent's pages")
	}
	if sz := w.ObjectSize(addrs[0]); sz != 0 {
		t.Fatalf("released space still tracks the old allocation (%d bytes)", sz)
	}
}
