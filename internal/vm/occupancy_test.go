package vm

import (
	"testing"

	"privateer/internal/ir"
)

// row finds heap h's snapshot row.
func row(t *testing.T, o *HeapOccupancy, h ir.HeapKind) HeapOcc {
	t.Helper()
	for _, r := range o.Snapshot() {
		if r.Heap == h.String() {
			return r
		}
	}
	t.Fatalf("no snapshot row for heap %v", h)
	return HeapOcc{}
}

// TestOccupancyAllocFree: the mirror must track live bytes/objects through
// alloc and free, and cumulative alloc bytes must never decrease.
func TestOccupancyAllocFree(t *testing.T) {
	as := NewAddressSpace()
	as.Occ = NewHeapOccupancy()
	a, err := as.Alloc(ir.HeapPrivate, 100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := as.Alloc(ir.HeapPrivate, 50)
	if err != nil {
		t.Fatal(err)
	}
	r := row(t, as.Occ, ir.HeapPrivate)
	if r.LiveObjects != 2 {
		t.Errorf("live objects %d, want 2", r.LiveObjects)
	}
	if r.LiveBytes < 150 {
		t.Errorf("live bytes %d, want >= 150 (rounded sizes)", r.LiveBytes)
	}
	if r.AllocBytes != 150 {
		t.Errorf("alloc bytes %d, want 150 (requested sizes)", r.AllocBytes)
	}
	if err := as.Free(a); err != nil {
		t.Fatal(err)
	}
	r = row(t, as.Occ, ir.HeapPrivate)
	if r.LiveObjects != 1 {
		t.Errorf("live objects after free %d, want 1", r.LiveObjects)
	}
	if r.AllocBytes != 150 {
		t.Errorf("alloc bytes after free %d, must stay cumulative", r.AllocBytes)
	}
	if err := as.Free(b); err != nil {
		t.Fatal(err)
	}
	r = row(t, as.Occ, ir.HeapPrivate)
	if r.LiveObjects != 0 || r.LiveBytes != 0 {
		t.Errorf("after freeing everything: %+v, want zero live state", r)
	}
}

// TestOccupancyResyncOnBulkOps: heap reset and wholesale heap copy replace
// allocator state behind the mirror's back, so both must resync it.
func TestOccupancyResyncOnBulkOps(t *testing.T) {
	as := NewAddressSpace()
	as.Occ = NewHeapOccupancy()
	if _, err := as.Alloc(ir.HeapPrivate, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Alloc(ir.HeapPrivate, 64); err != nil {
		t.Fatal(err)
	}
	as.ResetHeap(ir.HeapPrivate)
	if r := row(t, as.Occ, ir.HeapPrivate); r.LiveObjects != 0 || r.LiveBytes != 0 {
		t.Errorf("after ResetHeap: %+v, want zero live state", r)
	}

	src := NewAddressSpace()
	if _, err := src.Alloc(ir.HeapPrivate, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Alloc(ir.HeapPrivate, 32); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Alloc(ir.HeapPrivate, 32); err != nil {
		t.Fatal(err)
	}
	as.CopyHeapFrom(src, ir.HeapPrivate)
	if r := row(t, as.Occ, ir.HeapPrivate); r.LiveObjects != 3 {
		t.Errorf("after CopyHeapFrom: %d live objects, want 3", r.LiveObjects)
	}
}

// TestOccupancyCloneDoesNotInherit: worker clones must not share the
// master's mirror — their speculative allocations would corrupt the live
// numbers the scrape reports for the master space.
func TestOccupancyCloneDoesNotInherit(t *testing.T) {
	as := NewAddressSpace()
	as.Occ = NewHeapOccupancy()
	if _, err := as.Alloc(ir.HeapPrivate, 40); err != nil {
		t.Fatal(err)
	}
	cl := as.Clone()
	if cl.Occ != nil {
		t.Fatal("clone inherited the occupancy mirror")
	}
	if _, err := cl.Alloc(ir.HeapPrivate, 4096); err != nil {
		t.Fatal(err)
	}
	r := row(t, as.Occ, ir.HeapPrivate)
	if r.LiveObjects != 1 || r.AllocBytes != 40 {
		t.Errorf("clone allocation leaked into master mirror: %+v", r)
	}
}

// TestOccupancyNilSnapshot: a nil mirror reads as empty.
func TestOccupancyNilSnapshot(t *testing.T) {
	var o *HeapOccupancy
	if o.Snapshot() != nil {
		t.Error("nil occupancy must snapshot to nil")
	}
}
