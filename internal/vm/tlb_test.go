package vm

import (
	"testing"

	"privateer/internal/ir"
)

// The software TLB must never outlive the mappings it caches. Each test in
// this file first warms a translation, then performs the operation that is
// required to invalidate it, and finally checks that the next access behaves
// as if the TLB did not exist.

func TestTLBSetProtInvalidation(t *testing.T) {
	as := NewAddressSpace()
	addr, _ := as.Alloc(ir.HeapReadOnly, 64)
	if err := as.Write(addr, 8, 42); err != nil {
		t.Fatal(err)
	}
	// Warm both read and write translations.
	if _, err := as.Read(addr, 8); err != nil {
		t.Fatal(err)
	}
	as.SetProt(ir.HeapReadOnly, ProtRead)
	if err := as.Write(addr, 8, 43); err == nil {
		t.Error("store through cached write translation after SetProt(ProtRead) must fault")
	}
	if v, err := as.Read(addr, 8); err != nil || v != 42 {
		t.Errorf("read after protect = %d, %v; want 42, nil", v, err)
	}
	as.SetProt(ir.HeapReadOnly, ProtNone)
	if _, err := as.Read(addr, 8); err == nil {
		t.Error("load through cached read translation after SetProt(ProtNone) must fault")
	}
	// Re-enable and confirm the value survived the protection round-trip.
	as.SetProt(ir.HeapReadOnly, ProtReadWrite)
	if v, err := as.Read(addr, 8); err != nil || v != 42 {
		t.Errorf("read after re-enable = %d, %v; want 42, nil", v, err)
	}
}

func TestTLBResetHeapInvalidation(t *testing.T) {
	as := NewAddressSpace()
	addr, _ := as.Alloc(ir.HeapShortLived, 64)
	if err := as.Write(addr, 8, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Read(addr, 8); v != 7 {
		t.Fatalf("warm-up read = %d, want 7", v)
	}
	as.ResetHeap(ir.HeapShortLived)
	b, _ := as.Alloc(ir.HeapShortLived, 64)
	if b != addr {
		t.Fatalf("reset heap should restart at the same base: %#x vs %#x", b, addr)
	}
	// A stale TLB entry would still point at the old page holding 7.
	if v, _ := as.Read(b, 8); v != 0 {
		t.Errorf("read after ResetHeap = %d, want 0 (stale TLB entry?)", v)
	}
	if err := as.Write(b, 8, 9); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Read(b, 8); v != 9 {
		t.Errorf("write after ResetHeap lost: read = %d, want 9", v)
	}
}

func TestTLBCopyHeapFromInvalidation(t *testing.T) {
	src := NewAddressSpace()
	addr, _ := src.Alloc(ir.HeapPrivate, 16)
	if err := src.Write(addr, 8, 42); err != nil {
		t.Fatal(err)
	}
	dst := NewAddressSpace()
	// dst diverges at the same address and warms its own translations.
	if err := dst.Write(addr, 8, 1); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Read(addr, 8); v != 1 {
		t.Fatalf("dst warm-up read = %d, want 1", v)
	}
	dst.CopyHeapFrom(src, ir.HeapPrivate)
	// dst's cached translations pointed at its old private page.
	if v, _ := dst.Read(addr, 8); v != 42 {
		t.Errorf("dst read after CopyHeapFrom = %d, want 42 (stale TLB entry?)", v)
	}
	// src's cached *write* translation pointed at a page that is now shared
	// with dst; a store through it would corrupt dst's view.
	if err := src.Write(addr, 8, 77); err != nil {
		t.Fatal(err)
	}
	if v, _ := dst.Read(addr, 8); v != 42 {
		t.Errorf("src write leaked into dst: read = %d, want 42", v)
	}
	if v, _ := src.Read(addr, 8); v != 77 {
		t.Errorf("src read-back = %d, want 77", v)
	}
}

func TestTLBCOWResolutionInClone(t *testing.T) {
	parent := NewAddressSpace()
	addr, _ := parent.Alloc(ir.HeapPrivate, 8)
	if err := parent.Write(addr, 8, 111); err != nil {
		t.Fatal(err)
	}
	child := parent.Clone()
	// Child read caches a translation to the page it still shares with the
	// parent.
	if v, _ := child.Read(addr, 8); v != 111 {
		t.Fatalf("child initial read = %d, want 111", v)
	}
	// The write COW-resolves; both the write and the earlier read
	// translation must now name the private duplicate.
	if err := child.Write(addr, 8, 222); err != nil {
		t.Fatal(err)
	}
	if v, _ := child.Read(addr, 8); v != 222 {
		t.Errorf("child read after COW resolve = %d, want 222 (stale read entry?)", v)
	}
	if v, _ := parent.Read(addr, 8); v != 111 {
		t.Errorf("parent disturbed by child write: %d", v)
	}
	// The parent's pre-clone write translation was flushed at Clone time;
	// writing through it now must COW-resolve, not hit the shared page.
	if err := parent.Write(addr, 8, 333); err != nil {
		t.Fatal(err)
	}
	if v, _ := child.Read(addr, 8); v != 222 {
		t.Errorf("parent write leaked into child: %d", v)
	}
}

func TestTLBCrossPageUnaligned(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(ir.HeapPrivate, 4*PageSize)
	// Warm single-page translations on both sides of the boundary.
	if err := as.Write(base+PageSize-8, 8, 0x1111111111111111); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(base+PageSize, 8, 0x2222222222222222); err != nil {
		t.Fatal(err)
	}
	// A straddling access must take the byte path and see both halves.
	straddle := base + PageSize - 3
	want := uint64(0x2222222222111111)
	if v, err := as.Read(straddle, 8); err != nil || v != want {
		t.Errorf("cross-page read = %#x, %v; want %#x, nil", v, err, want)
	}
	// A straddling write updates both pages even with warm TLB entries.
	if err := as.Write(straddle, 8, 0xaabbccddeeff0011); err != nil {
		t.Fatal(err)
	}
	if v, _ := as.Read(straddle, 8); v != 0xaabbccddeeff0011 {
		t.Errorf("cross-page read-back = %#x", v)
	}
	// Odd sizes (3, 5, 6, 7) stay off the fast path; verify round-trip.
	for _, size := range []int64{3, 5, 6, 7} {
		val := uint64(0x1122334455667788) & sizeMask(size)
		if err := as.Write(base+17, size, val); err != nil {
			t.Fatalf("odd size %d write: %v", size, err)
		}
		if v, _ := as.Read(base+17, size); v != val {
			t.Errorf("odd size %d: got %#x want %#x", size, v, val)
		}
	}
}

// Lazy cloning must not change the observable PagesCopied/PagesMapped
// accounting: reads stay free, each first write to a shared page costs
// exactly one copy, and DirtyPages reports nothing until a write happens.
func TestLazyClonePagesCopiedSemantics(t *testing.T) {
	parent := NewAddressSpace()
	base, _ := parent.Alloc(ir.HeapPrivate, 8*PageSize)
	for p := uint64(0); p < 8; p++ {
		if err := parent.Write(base+p*PageSize, 8, p+1); err != nil {
			t.Fatal(err)
		}
	}
	child := parent.Clone()
	for p := uint64(0); p < 8; p++ {
		if v, _ := child.Read(base+p*PageSize, 8); v != p+1 {
			t.Fatalf("page %d content wrong: %d", p, v)
		}
	}
	if child.Stats.PagesCopied != 0 {
		t.Errorf("reads caused %d page copies, want 0", child.Stats.PagesCopied)
	}
	dirty := 0
	child.DirtyPages(func(base uint64, data []byte) { dirty++ })
	if dirty != 0 {
		t.Errorf("DirtyPages visited %d pages before any write, want 0", dirty)
	}
	if err := child.Write(base, 8, 999); err != nil {
		t.Fatal(err)
	}
	if child.Stats.PagesCopied != 1 {
		t.Errorf("one write caused %d page copies, want 1", child.Stats.PagesCopied)
	}
	child.DirtyPages(func(pb uint64, data []byte) {
		dirty++
		if pb != base&^uint64(PageSize-1) {
			t.Errorf("DirtyPages visited %#x, want %#x", pb, base&^uint64(PageSize-1))
		}
	})
	if dirty != 1 {
		t.Errorf("DirtyPages visited %d pages after one write, want 1", dirty)
	}
	// Rewriting the same page must not double-count.
	if err := child.Write(base+8, 8, 1000); err != nil {
		t.Fatal(err)
	}
	if child.Stats.PagesCopied != 1 {
		t.Errorf("second write to same page: %d copies, want 1", child.Stats.PagesCopied)
	}
}

// CloneSharingStats children account their page events into the parent's
// Stats structure, so fork-style overhead counts aggregate across a worker
// fleet (the paper's Figure 8 accounting).
func TestCloneSharingStatsAggregates(t *testing.T) {
	parent := NewAddressSpace()
	base, _ := parent.Alloc(ir.HeapPrivate, 4*PageSize)
	for p := uint64(0); p < 4; p++ {
		if err := parent.Write(base+p*PageSize, 8, p); err != nil {
			t.Fatal(err)
		}
	}
	copiedBefore := parent.Stats.PagesCopied
	mappedBefore := parent.Stats.PagesMapped

	children := []*AddressSpace{parent.CloneSharingStats(), parent.CloneSharingStats()}
	for i, c := range children {
		if c.Stats != parent.Stats {
			t.Fatalf("child %d has its own Stats; want the parent's", i)
		}
		// One COW resolution per child.
		if err := c.Write(base+uint64(i)*PageSize, 8, 100+uint64(i)); err != nil {
			t.Fatal(err)
		}
		// One demand-zero instantiation per child.
		if err := c.Write(base+uint64(4+i)*PageSize, 8, 200+uint64(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := parent.Stats.PagesCopied - copiedBefore; got != 2 {
		t.Errorf("aggregated PagesCopied delta = %d, want 2", got)
	}
	if got := parent.Stats.PagesMapped - mappedBefore; got != 2 {
		t.Errorf("aggregated PagesMapped delta = %d, want 2", got)
	}
	// Isolation still holds despite the shared accounting.
	if v, _ := parent.Read(base, 8); v != 0 {
		t.Errorf("parent disturbed by child writes: %d", v)
	}
	if v, _ := children[0].Read(base, 8); v != 100 {
		t.Errorf("child 0 lost its write: %d", v)
	}
}
