package vm

import (
	"fmt"
	"math/rand"
	"testing"

	"privateer/internal/ir"
)

// TestHeapSlotRangeCoversTags checks the root-slot geometry: every heap's
// 16 contiguous top-level slots must cover exactly its 16 TB address range.
func TestHeapSlotRangeCoversTags(t *testing.T) {
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		lo, hi := heapSlotRange(h)
		if hi-lo != radixFanout/(1<<heapTagBits) {
			t.Errorf("%s: slot range [%d,%d) has width %d, want 16", h, lo, hi, hi-lo)
		}
		wantLo := (h.Base() >> PageShift) >> uint((radixLevels-1)*radixBits)
		if lo != wantLo {
			t.Errorf("%s: slot range starts at %d, want %d", h, lo, wantLo)
		}
		// The first and last pages of the heap must index into the range.
		first := slotOf(h.Base()>>PageShift, 0)
		last := slotOf((h.Base()+(uint64(1)<<ir.TagShift)-PageSize)>>PageShift, 0)
		if first != lo || last != hi-1 {
			t.Errorf("%s: first/last page slots %d/%d, want %d/%d", h, first, last, lo, hi-1)
		}
	}
}

// TestCloneCostIndependentOfLiveObjects pins the lazy allocator clone
// (satellite of the radix refactor): spawning a worker from a parent with
// 20k live objects must allocate exactly as much as spawning from a parent
// with 20 — the free/objects maps are shared, not deep-copied.
func TestCloneCostIndependentOfLiveObjects(t *testing.T) {
	spawnAllocs := func(liveObjects int) float64 {
		parent := NewAddressSpace()
		for i := 0; i < liveObjects; i++ {
			if _, err := parent.Alloc(ir.HeapPrivate, 64); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(20, func() { parent.Clone() })
	}
	small, large := spawnAllocs(20), spawnAllocs(20000)
	if small != large {
		t.Errorf("Clone allocations grew with live objects: %v (20 objects) vs %v (20000 objects)",
			small, large)
	}
	// And the clone must still see and manage the parent's allocations.
	parent := NewAddressSpace()
	addrs := make([]uint64, 100)
	for i := range addrs {
		a, _ := parent.Alloc(ir.HeapPrivate, 48)
		addrs[i] = a
	}
	child := parent.Clone()
	if child.LiveObjects(ir.HeapPrivate) != 100 {
		t.Fatalf("child sees %d live objects, want 100", child.LiveObjects(ir.HeapPrivate))
	}
	if err := child.Free(addrs[0]); err != nil {
		t.Fatal(err)
	}
	if got, err := child.Alloc(ir.HeapPrivate, 48); err != nil || got != addrs[0] {
		t.Errorf("child free-list reuse: got %#x, %v; want %#x", got, err, addrs[0])
	}
	// The child's mutations must not leak back into the parent.
	if parent.LiveObjects(ir.HeapPrivate) != 100 {
		t.Errorf("parent live count disturbed by child: %d", parent.LiveObjects(ir.HeapPrivate))
	}
	if parent.ObjectSize(addrs[0]) == 0 {
		t.Error("parent lost object freed only in the child")
	}
}

// TestPostCloneMutationCostIndependentOfLiveObjects pins the other half of
// the lazy allocator clone (the per-span reset cost this PR fixes): the
// FIRST Alloc/Free after a clone must not deep-copy the shared free/objects
// maps, so its cost is independent of how many objects the parent holds
// live. The overlay chain makes the whole clone+mutate cycle O(1).
func TestPostCloneMutationCostIndependentOfLiveObjects(t *testing.T) {
	cycleAllocs := func(liveObjects int) float64 {
		parent := NewAddressSpace()
		for i := 0; i < liveObjects; i++ {
			if _, err := parent.Alloc(ir.HeapPrivate, 64); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(20, func() {
			child := parent.Clone()
			a, err := child.Alloc(ir.HeapPrivate, 48)
			if err != nil {
				t.Fatal(err)
			}
			if err := child.Free(a); err != nil {
				t.Fatal(err)
			}
		})
	}
	small, large := cycleAllocs(20), cycleAllocs(20000)
	if small != large {
		t.Errorf("post-clone mutation allocations grew with live objects: %v (20 objects) vs %v (20000 objects)",
			small, large)
	}

	// Functional check across the overlay chain: LIFO free-list order must
	// hold through clone boundaries and tombstoned reallocation.
	parent := NewAddressSpace()
	var a [4]uint64
	for i := range a {
		a[i], _ = parent.Alloc(ir.HeapPrivate, 48)
	}
	parent.Free(a[3])
	parent.Free(a[2]) // parent free list (oldest first): a3, a2
	child := parent.Clone()
	if got, _ := child.Alloc(ir.HeapPrivate, 48); got != a[2] {
		t.Errorf("child pop 1 = %#x, want %#x (LIFO through the shared base)", got, a[2])
	}
	grand := child.Clone() // chain depth 2: child's consumption must carry over
	if got, _ := grand.Alloc(ir.HeapPrivate, 48); got != a[3] {
		t.Errorf("grandchild pop = %#x, want %#x (consumption not inherited)", got, a[3])
	}
	grand.Free(a[0]) // tombstone a base object, then reallocate it
	if got, _ := grand.Alloc(ir.HeapPrivate, 48); got != a[0] {
		t.Errorf("tombstoned base object not reallocated: got %#x, want %#x", got, a[0])
	}
	if grand.ObjectSize(a[0]) == 0 {
		t.Error("reallocated object reads as dead through the tombstone")
	}
	// The parent still sees its own free list untouched by descendants.
	if got, _ := parent.Alloc(ir.HeapPrivate, 48); got != a[2] {
		t.Errorf("parent pop disturbed by descendants: got %#x, want %#x", got, a[2])
	}
	// A heap reset stays O(1) and fully detaches from the shared chain.
	resetAllocs := testing.AllocsPerRun(20, func() { child.ResetHeap(ir.HeapPrivate) })
	if resetAllocs > 4 {
		t.Errorf("ResetHeap allocates %v times, want O(1)", resetAllocs)
	}
	if child.LiveObjects(ir.HeapPrivate) != 0 {
		t.Errorf("reset heap still reports %d live objects", child.LiveObjects(ir.HeapPrivate))
	}
}

// TestAllocatorSharingIsCopiedBeforeMutation exercises the parent-side half
// of the lazy allocator clone: the parent allocating after a clone must not
// disturb the child's shared view.
func TestAllocatorSharingIsCopiedBeforeMutation(t *testing.T) {
	parent := NewAddressSpace()
	a, _ := parent.Alloc(ir.HeapPrivate, 32)
	child := parent.Clone()
	if err := parent.Free(a); err != nil {
		t.Fatal(err)
	}
	if child.ObjectSize(a) == 0 {
		t.Error("parent Free leaked into child's shared allocator state")
	}
	b, _ := parent.Alloc(ir.HeapPrivate, 32)
	if b != a {
		t.Errorf("parent free-list reuse broken after lazy clone: %#x vs %#x", b, a)
	}
	if child.LiveObjects(ir.HeapPrivate) != 1 {
		t.Errorf("child live count disturbed: %d", child.LiveObjects(ir.HeapPrivate))
	}
}

// TestPostCloneMaterializationIsolation is the regression test for the
// stale-translation hazard around deferred materialization (satellite 2):
// a space that keeps serving reads through translations cached while its
// table was shared must never observe the other side's post-clone writes,
// in either materialization order.
func TestPostCloneMaterializationIsolation(t *testing.T) {
	setup := func() (*AddressSpace, *AddressSpace, uint64, uint64) {
		parent := NewAddressSpace()
		base, _ := parent.Alloc(ir.HeapPrivate, 2*PageSize)
		a, b := base, base+PageSize
		if err := parent.Write(a, 8, 11); err != nil {
			t.Fatal(err)
		}
		if err := parent.Write(b, 8, 22); err != nil {
			t.Fatal(err)
		}
		return parent, parent.Clone(), a, b
	}

	// Child materializes first (writes), parent follows.
	parent, child, a, b := setup()
	if v, _ := parent.Read(a, 8); v != 11 { // warm parent's post-clone read TLB
		t.Fatalf("parent warm-up read = %d", v)
	}
	if err := child.Write(a, 8, 1111); err != nil {
		t.Fatal(err)
	}
	if v, _ := parent.Read(a, 8); v != 11 {
		t.Errorf("child write visible through parent translation: %d, want 11", v)
	}
	if err := parent.Write(b, 8, 2222); err != nil { // parent materializes now
		t.Fatal(err)
	}
	if v, _ := parent.Read(a, 8); v != 11 {
		t.Errorf("parent read of a after materialization = %d, want 11", v)
	}
	if v, _ := child.Read(b, 8); v != 22 {
		t.Errorf("parent write visible in child: %d, want 22", v)
	}
	if v, _ := child.Read(a, 8); v != 1111 {
		t.Errorf("child lost its own write: %d", v)
	}

	// Parent materializes first, child follows; the child's cached
	// translations predate the parent's write.
	parent, child, a, b = setup()
	if v, _ := child.Read(a, 8); v != 11 { // warm child's read TLB
		t.Fatalf("child warm-up read = %d", v)
	}
	if err := parent.Write(a, 8, 3333); err != nil {
		t.Fatal(err)
	}
	if v, _ := child.Read(a, 8); v != 11 {
		t.Errorf("parent write visible through child translation: %d, want 11", v)
	}
	if err := child.Write(b, 8, 4444); err != nil {
		t.Fatal(err)
	}
	if v, _ := parent.Read(b, 8); v != 22 {
		t.Errorf("child write visible in parent: %d, want 22", v)
	}
	if v, _ := parent.Read(a, 8); v != 3333 {
		t.Errorf("parent lost its own write: %d", v)
	}
}

// TestDirtyHeapPagesSummaryGuided checks both halves of the dirty-summary
// contract: the walk visits exactly the pages touched since the clone, and
// it skips shared subtrees without descending (counted as summary hits).
func TestDirtyHeapPagesSummaryGuided(t *testing.T) {
	parent := NewAddressSpace()
	base, _ := parent.Alloc(ir.HeapPrivate, 512*PageSize)
	for p := uint64(0); p < 512; p++ {
		if err := parent.Write(base+p*PageSize, 8, p); err != nil {
			t.Fatal(err)
		}
	}
	roBase, _ := parent.Alloc(ir.HeapReadOnly, 64*PageSize)
	for p := uint64(0); p < 64; p++ {
		if err := parent.Write(roBase+p*PageSize, 8, p); err != nil {
			t.Fatal(err)
		}
	}
	child := parent.CloneSharingStats()
	touched := map[uint64]bool{}
	for _, p := range []uint64{0, 1, 130, 131, 300, 511} {
		if err := child.Write(base+p*PageSize, 8, 9000+p); err != nil {
			t.Fatal(err)
		}
		touched[(base+p*PageSize)&^uint64(PageSize-1)] = true
	}
	hitsBefore := child.Stats.SummaryHits
	got := map[uint64]bool{}
	child.DirtyHeapPages(ir.HeapPrivate, func(pb uint64, data []byte) { got[pb] = true })
	if len(got) != len(touched) {
		t.Errorf("dirty walk visited %d pages, want %d", len(got), len(touched))
	}
	for pb := range touched {
		if !got[pb] {
			t.Errorf("dirty walk missed touched page %#x", pb)
		}
	}
	if hits := child.Stats.SummaryHits - hitsBefore; hits <= 0 {
		t.Errorf("summary-guided walk skipped no subtrees (hits = %d)", hits)
	}
	// The shadow heap is untouched: its walk must visit nothing.
	child.DirtyHeapPages(ir.HeapShadow, func(pb uint64, data []byte) {
		t.Errorf("dirty walk of untouched heap visited %#x", pb)
	})
}

// TestEagerCloneBaselineEquivalence runs the same access pattern through
// the default lazy mode and the EagerClone flat-table baseline and demands
// identical contents, dirty sets, and copy accounting — the two modes may
// differ only in cost.
func TestEagerCloneBaselineEquivalence(t *testing.T) {
	run := func(eager bool) (map[uint64]uint64, map[uint64]bool, int64) {
		parent := NewAddressSpace()
		parent.EagerClone = eager
		base, _ := parent.Alloc(ir.HeapPrivate, 64*PageSize)
		for p := uint64(0); p < 64; p++ {
			if err := parent.Write(base+p*PageSize, 8, p+1); err != nil {
				t.Fatal(err)
			}
		}
		child := parent.Clone()
		for _, p := range []uint64{3, 17, 42} {
			if err := child.Write(base+p*PageSize, 8, 100+p); err != nil {
				t.Fatal(err)
			}
		}
		vals := map[uint64]uint64{}
		for p := uint64(0); p < 64; p++ {
			vc, _ := child.Read(base+p*PageSize, 8)
			vp, _ := parent.Read(base+p*PageSize, 8)
			vals[p] = vc<<32 | vp
		}
		dirty := map[uint64]bool{}
		child.DirtyPages(func(pb uint64, data []byte) { dirty[pb] = true })
		return vals, dirty, child.Stats.PagesCopied
	}
	lazyVals, lazyDirty, lazyCopied := run(false)
	eagerVals, eagerDirty, eagerCopied := run(true)
	if fmt.Sprint(lazyVals) != fmt.Sprint(eagerVals) {
		t.Error("lazy and eager modes disagree on memory contents")
	}
	if len(lazyDirty) != 3 || fmt.Sprint(lazyDirty) != fmt.Sprint(eagerDirty) {
		t.Errorf("dirty sets differ: lazy %v, eager %v", lazyDirty, eagerDirty)
	}
	if lazyCopied != eagerCopied {
		t.Errorf("PagesCopied differs: lazy %d, eager %d", lazyCopied, eagerCopied)
	}
}

// TestPageTableStats sanity-checks the introspection walk used by
// privateer-dump -pagetable and the scale experiment.
func TestPageTableStats(t *testing.T) {
	as := NewAddressSpace()
	base, _ := as.Alloc(ir.HeapPrivate, 10*PageSize)
	for p := uint64(0); p < 10; p++ {
		if err := as.Write(base+p*PageSize, 8, p); err != nil {
			t.Fatal(err)
		}
	}
	ro, _ := as.Alloc(ir.HeapReadOnly, PageSize)
	if err := as.Write(ro, 8, 1); err != nil {
		t.Fatal(err)
	}
	st := as.PageTable()
	if st.Levels != radixLevels || st.Fanout != radixFanout {
		t.Errorf("geometry = %d/%d, want %d/%d", st.Levels, st.Fanout, radixLevels, radixFanout)
	}
	if st.HeapResident[ir.HeapPrivate] != 10 {
		t.Errorf("private resident = %d, want 10", st.HeapResident[ir.HeapPrivate])
	}
	if st.HeapResident[ir.HeapReadOnly] != 1 {
		t.Errorf("read-only resident = %d, want 1", st.HeapResident[ir.HeapReadOnly])
	}
	if st.ResidentPages != 11 {
		t.Errorf("resident = %d, want 11", st.ResidentPages)
	}
	if st.DirtyPages != 11 {
		t.Errorf("dirty = %d, want 11 (never cloned)", st.DirtyPages)
	}
	if st.OwnedNodes != st.Nodes {
		t.Errorf("never-cloned space owns %d of %d nodes, want all", st.OwnedNodes, st.Nodes)
	}
	child := as.Clone()
	cst := child.PageTable()
	if cst.DirtyPages != 0 {
		t.Errorf("fresh clone dirty = %d, want 0", cst.DirtyPages)
	}
	if cst.ResidentPages != 11 {
		t.Errorf("fresh clone resident = %d, want 11", cst.ResidentPages)
	}
	if cst.OwnedNodes != 0 {
		t.Errorf("fresh clone owns %d nodes, want 0", cst.OwnedNodes)
	}
}

// flatModel is the pre-refactor reference semantics: a flat page map with
// whole-table materialization on first post-clone mutation.
type flatModel struct {
	pages  map[uint64][]byte
	shared bool
}

func (m *flatModel) own() {
	if !m.shared {
		return
	}
	n := make(map[uint64][]byte, len(m.pages))
	for k, v := range m.pages {
		n[k] = append([]byte(nil), v...)
	}
	m.pages, m.shared = n, false
}

func (m *flatModel) write(addr uint64, val byte) {
	m.own()
	pn := addr >> PageShift
	pg, ok := m.pages[pn]
	if !ok {
		pg = make([]byte, PageSize)
		m.pages[pn] = pg
	}
	pg[addr&(PageSize-1)] = val
}

func (m *flatModel) read(addr uint64) byte {
	if pg, ok := m.pages[addr>>PageShift]; ok {
		return pg[addr&(PageSize-1)]
	}
	return 0
}

func (m *flatModel) clone() *flatModel {
	m.shared = true
	return &flatModel{pages: m.pages, shared: true}
}

// TestRadixDifferentialVsFlatModel drives a random interleaving of writes,
// reads, clones, and heap resets through the radix table and the flat
// reference model in lockstep, across a family of spaces related by
// cloning. Any divergence is a COW or translation bug.
func TestRadixDifferentialVsFlatModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type pair struct {
		as *AddressSpace
		fm *flatModel
	}
	heaps := []ir.HeapKind{ir.HeapPrivate, ir.HeapReadOnly, ir.HeapShortLived}
	spaces := []pair{{NewAddressSpace(), &flatModel{pages: map[uint64][]byte{}}}}
	randAddr := func() uint64 {
		h := heaps[rng.Intn(len(heaps))]
		// Spread across ~1000 pages with irregular strides so several radix
		// leaves and interior splits are exercised.
		return h.Base() + PageSize + uint64(rng.Intn(1000*PageSize))
	}
	for step := 0; step < 30000; step++ {
		p := spaces[rng.Intn(len(spaces))]
		switch op := rng.Intn(100); {
		case op < 55: // write
			addr := randAddr()
			val := byte(rng.Intn(256))
			if err := p.as.Write(addr, 1, uint64(val)); err != nil {
				t.Fatalf("step %d: write %#x: %v", step, addr, err)
			}
			p.fm.write(addr, val)
		case op < 90: // read
			addr := randAddr()
			got, err := p.as.Read(addr, 1)
			if err != nil {
				t.Fatalf("step %d: read %#x: %v", step, addr, err)
			}
			if want := p.fm.read(addr); byte(got) != want {
				t.Fatalf("step %d: read %#x = %d, model says %d", step, addr, got, want)
			}
		case op < 97 && len(spaces) < 12: // clone
			spaces = append(spaces, pair{p.as.Clone(), p.fm.clone()})
		default: // reset one heap
			h := heaps[rng.Intn(len(heaps))]
			p.as.ResetHeap(h)
			p.fm.own()
			lo, hi := h.Base()>>PageShift, (h.Base()+(uint64(1)<<ir.TagShift))>>PageShift
			for k := range p.fm.pages {
				if k >= lo && k < hi {
					delete(p.fm.pages, k)
				}
			}
		}
	}
	// Final sweep: every byte the models may disagree on.
	for i, p := range spaces {
		for pn, pg := range p.fm.pages {
			base := pn << PageShift
			for off := 0; off < PageSize; off += 97 {
				got, err := p.as.Read(base+uint64(off), 1)
				if err != nil {
					t.Fatalf("space %d: final read %#x: %v", i, base+uint64(off), err)
				}
				if byte(got) != pg[off] {
					t.Fatalf("space %d: final read %#x = %d, model says %d",
						i, base+uint64(off), got, pg[off])
				}
			}
		}
	}
}

// TestInterpTLBFastPathRevalidated re-checks the TLB contract against the
// radix walk: a read translation warmed through a shared subtree must keep
// working after the subtree is split by an unrelated write to the same
// leaf, and the split must not move pages out from under cached entries.
func TestInterpTLBFastPathRevalidated(t *testing.T) {
	parent := NewAddressSpace()
	base, _ := parent.Alloc(ir.HeapPrivate, 8*PageSize)
	for p := uint64(0); p < 8; p++ {
		if err := parent.Write(base+p*PageSize, 8, 10+p); err != nil {
			t.Fatal(err)
		}
	}
	child := parent.Clone()
	// Warm read translations for pages 0..7 through the shared subtree.
	for p := uint64(0); p < 8; p++ {
		if v, _ := child.Read(base+p*PageSize, 8); v != 10+p {
			t.Fatalf("warm-up read page %d = %d", p, v)
		}
	}
	// Split the leaf with a write to page 3; the other cached translations
	// still point at pages the child legitimately shares.
	if err := child.Write(base+3*PageSize, 8, 999); err != nil {
		t.Fatal(err)
	}
	for p := uint64(0); p < 8; p++ {
		want := 10 + p
		if p == 3 {
			want = 999
		}
		if v, _ := child.Read(base+p*PageSize, 8); v != want {
			t.Errorf("post-split read page %d = %d, want %d", p, v, want)
		}
	}
	// And a parent write to a cached-in-child page must not tear through:
	// the parent COW-resolves its own copy.
	if err := parent.Write(base+5*PageSize, 8, 555); err != nil {
		t.Fatal(err)
	}
	if v, _ := child.Read(base+5*PageSize, 8); v != 15 {
		t.Errorf("parent write leaked through child's cached translation: %d", v)
	}
}
