package vm

import (
	"testing"

	"privateer/internal/ir"
)

func TestStatsCounters(t *testing.T) {
	as := NewAddressSpace()
	a, _ := as.Alloc(ir.HeapPrivate, 64)
	if err := as.Write(a, 8, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Read(a, 8); err != nil {
		t.Fatal(err)
	}
	if as.Stats.BytesWritten < 8 || as.Stats.BytesRead < 8 {
		t.Errorf("stats = %+v", as.Stats)
	}
	if as.Stats.PagesMapped == 0 {
		t.Error("no pages mapped")
	}
}

func TestProtStringsAndQueries(t *testing.T) {
	if ProtNone.String() != "---" || ProtRead.String() != "r--" || ProtReadWrite.String() != "rw-" {
		t.Error("prot strings wrong")
	}
	as := NewAddressSpace()
	as.SetProt(ir.HeapReadOnly, ProtRead)
	if as.ProtOf(ir.HeapReadOnly) != ProtRead {
		t.Error("ProtOf mismatch")
	}
}

func TestBrkAndAllocatedBytes(t *testing.T) {
	as := NewAddressSpace()
	b0 := as.Brk(ir.HeapShortLived)
	if _, err := as.Alloc(ir.HeapShortLived, 100); err != nil {
		t.Fatal(err)
	}
	if as.Brk(ir.HeapShortLived) <= b0 {
		t.Error("brk did not advance")
	}
	if as.AllocatedBytes(ir.HeapShortLived) != 100 {
		t.Errorf("allocated bytes = %d", as.AllocatedBytes(ir.HeapShortLived))
	}
	if as.ObjectSize(b0) == 0 {
		t.Error("object size of live allocation is zero")
	}
}

func TestFaultError(t *testing.T) {
	as := NewAddressSpace()
	as.SetProt(ir.HeapReadOnly, ProtRead)
	addr := ir.HeapReadOnly.Base() + PageSize
	err := as.Write(addr, 8, 1)
	if err == nil {
		t.Fatal("expected fault")
	}
	f, ok := err.(*Fault)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if !f.Write || f.Addr != addr {
		t.Errorf("fault fields: %+v", f)
	}
	if msg := f.Error(); msg == "" {
		t.Error("empty fault message")
	}
}

func TestDirtyPagesOnlyPrivatePages(t *testing.T) {
	parent := NewAddressSpace()
	a, _ := parent.Alloc(ir.HeapPrivate, 3*PageSize)
	for p := uint64(0); p < 3; p++ {
		if err := parent.Write(a+p*PageSize, 8, p); err != nil {
			t.Fatal(err)
		}
	}
	child := parent.Clone()
	// Untouched child: no dirty pages.
	count := 0
	child.DirtyPages(func(base uint64, data []byte) { count++ })
	if count != 0 {
		t.Errorf("fresh clone has %d dirty pages", count)
	}
	if err := child.Write(a, 8, 99); err != nil {
		t.Fatal(err)
	}
	count = 0
	child.DirtyPages(func(base uint64, data []byte) { count++ })
	if count != 1 {
		t.Errorf("dirty pages = %d, want 1", count)
	}
}

func TestPageDataVisibility(t *testing.T) {
	as := NewAddressSpace()
	addr := ir.HeapPrivate.Base() + 10*PageSize
	if _, ok := as.PageData(addr); ok {
		t.Error("untouched page reported present")
	}
	if err := as.Write(addr, 8, 5); err != nil {
		t.Fatal(err)
	}
	data, ok := as.PageData(addr)
	if !ok || data[0] != 5 {
		t.Errorf("page data = %v, %v", ok, data[:8])
	}
}

func TestZeroSizeAlloc(t *testing.T) {
	as := NewAddressSpace()
	a, err := as.Alloc(ir.HeapPrivate, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := as.Alloc(ir.HeapPrivate, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("zero-size allocations alias")
	}
}
