package vm

import (
	"sync/atomic"

	"privateer/internal/ir"
)

// HeapOccupancy mirrors one address space's per-heap allocator totals in
// atomic counters, so a live introspection scrape can read occupancy while
// the owning goroutine allocates. The allocator's own heapState stays
// single-owner and lock-free; attaching an occupancy costs two atomic adds
// per Alloc/Free. Attach it to the master space only — clones never
// inherit it.
type HeapOccupancy struct {
	liveBytes  [ir.NumHeaps]int64 // atomic; rounded bytes currently live
	liveObjs   [ir.NumHeaps]int64 // atomic; live allocation count
	allocBytes [ir.NumHeaps]int64 // atomic; bytes ever requested
}

// NewHeapOccupancy returns zeroed occupancy counters.
func NewHeapOccupancy() *HeapOccupancy { return &HeapOccupancy{} }

// HeapOcc is one heap's occupancy snapshot row.
type HeapOcc struct {
	// Heap is the logical heap name ("private", "redux", ...).
	Heap string `json:"heap"`
	// LiveBytes is the rounded byte total of live objects.
	LiveBytes int64 `json:"live_bytes"`
	// LiveObjects is the live allocation count.
	LiveObjects int64 `json:"live_objects"`
	// AllocBytes is the cumulative bytes ever requested.
	AllocBytes int64 `json:"alloc_bytes"`
}

// Snapshot returns one row per logical heap, in heap-tag order.
func (o *HeapOccupancy) Snapshot() []HeapOcc {
	if o == nil {
		return nil
	}
	out := make([]HeapOcc, 0, int(ir.NumHeaps))
	for h := ir.HeapKind(0); h < ir.NumHeaps; h++ {
		out = append(out, HeapOcc{
			Heap:        h.String(),
			LiveBytes:   atomic.LoadInt64(&o.liveBytes[h]),
			LiveObjects: atomic.LoadInt64(&o.liveObjs[h]),
			AllocBytes:  atomic.LoadInt64(&o.allocBytes[h]),
		})
	}
	return out
}

// alloc records one allocation of size requested bytes, rounded rounded.
func (o *HeapOccupancy) alloc(h ir.HeapKind, size, rounded uint64) {
	atomic.AddInt64(&o.liveBytes[h], int64(rounded))
	atomic.AddInt64(&o.liveObjs[h], 1)
	atomic.AddInt64(&o.allocBytes[h], int64(size))
}

// free records one release of a rounded-size object.
func (o *HeapOccupancy) free(h ir.HeapKind, rounded uint64) {
	atomic.AddInt64(&o.liveBytes[h], -int64(rounded))
	atomic.AddInt64(&o.liveObjs[h], -1)
}

// resync rebuilds heap h's live counters from allocator state, after bulk
// operations (heap reset, checkpoint install) replace the heap wholesale.
func (o *HeapOccupancy) resync(h ir.HeapKind, hs *heapState) {
	var bytes int64
	hs.eachObject(func(_, sz uint64) {
		bytes += int64(sz)
	})
	atomic.StoreInt64(&o.liveBytes[h], bytes)
	atomic.StoreInt64(&o.liveObjs[h], int64(hs.liveCount))
	atomic.StoreInt64(&o.allocBytes[h], int64(hs.allocBytes))
}
