// Package vm simulates the virtual-memory substrate the Privateer runtime
// is built on: per-process page tables, copy-on-write page duplication, page
// protections, and logical heaps placed at fixed virtual addresses whose
// 3-bit heap tag occupies address bits 44-46.
//
// The paper implements this with POSIX shm_open/mmap and worker processes;
// here each worker owns an AddressSpace value backed by a five-level radix
// page table (see pagetable.go). The heap tag forms the top bits of the
// root index, so each logical heap is a contiguous range of root slots and
// heap-granular scans and resets are range operations. Cloning an
// AddressSpace is O(1) range-COW: both sides take fresh ownership epochs,
// which marks every existing subtree shared, and the first write through
// either side path-copies just the nodes on the way down — a worker's
// writes are isolated from its parent exactly as fork-style COW isolates
// processes, and "several calls to mmap" during recovery becomes copying
// page-table entries from a checkpoint. Per-subtree dirty summaries,
// maintained on the store path, let DirtyPages and DirtyHeapPages collect a
// space's touched pages in O(touched) rather than O(resident).
//
// # Concurrency
//
// An AddressSpace is not a concurrent data structure: each one has exactly
// one owner goroutine, and only that owner may call its methods. What makes
// concurrent speculation sound anyway is the range-COW invariant:
//
//	a radix node reachable from two or more address spaces (a stale
//	epoch) is never mutated — the first write through any referencing
//	space path-copies the shared nodes into privately owned ones first.
//
// Clone therefore only issues fresh epochs, and a parent and its clones can
// execute concurrently without locks: writes on either side split shared
// subtrees (and then copy pages) privately before mutating, so no goroutine
// ever observes another's mutation through shared structure. This is what
// lets the pipelined committer (internal/specrt) install checkpoint data
// into the master space while worker goroutines are still executing against
// clones taken from it: the shared subtrees are frozen, and the master's
// writes materialize private ones. TestConcurrentCloneIsolation pins this
// under the race detector.
package vm
