// Package vm simulates the virtual-memory substrate the Privateer runtime
// is built on: per-process page tables, copy-on-write page duplication, page
// protections, and logical heaps placed at fixed virtual addresses whose
// 3-bit heap tag occupies address bits 44-46.
//
// The paper implements this with POSIX shm_open/mmap and worker processes;
// here each worker owns an AddressSpace value. Cloning an AddressSpace marks
// every page copy-on-write, so a worker's writes are isolated from its
// parent exactly as fork-style COW isolates processes, and "several calls to
// mmap" during recovery becomes copying page-table entries from a checkpoint.
//
// # Concurrency
//
// An AddressSpace is not a concurrent data structure: each one has exactly
// one owner goroutine, and only that owner may call its methods. What makes
// concurrent speculation sound anyway is the lazy-clone invariant:
//
//	a heap's page-table map that is referenced by two or more address
//	spaces is never mutated — the first write through any referencing
//	space materializes a private copy of that map first.
//
// Clone therefore only bumps reference counts, and a parent and its clones
// can execute concurrently without locks: writes on either side copy page
// tables (and then pages) privately before mutating, so no goroutine ever
// observes another's mutation through shared structure. This is what lets
// the pipelined committer (internal/specrt) install checkpoint data into
// the master space while worker goroutines are still executing against
// clones taken from it: the shared maps are frozen, and the master's
// writes materialize private ones. TestConcurrentCloneIsolation pins this
// under the race detector.
package vm
